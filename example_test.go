package bbrnash_test

import (
	"fmt"
	"time"

	"bbrnash"
)

// Predict the bandwidth split between one CUBIC and one BBR flow at a
// 50 Mbps bottleneck with a 3 BDP buffer (the paper's hand-checkable
// reference point: an exact 25/25 split).
func ExamplePredict() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	p, err := bbrnash.Predict(bbrnash.Scenario{
		Capacity: capacity,
		Buffer:   bbrnash.BufferBytes(capacity, rtt, 3),
		RTT:      rtt,
		NumCubic: 1,
		NumBBR:   1,
	}, bbrnash.Synchronized)
	if err != nil {
		panic(err)
	}
	fmt.Printf("BBR %.1f Mbps, CUBIC %.1f Mbps, RTT+ %v\n",
		p.AggBBR.Mbit(), p.AggCubic.Mbit(), p.RTTPlus)
	// Output: BBR 25.0 Mbps, CUBIC 25.0 Mbps, RTT+ 80ms
}

// Predict where the CUBIC/BBR mix stabilizes for 50 same-RTT flows — the
// paper's central question.
func ExamplePredictNashRegion() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	region, err := bbrnash.PredictNashRegion(bbrnash.NashScenario{
		Capacity: capacity,
		Buffer:   bbrnash.BufferBytes(capacity, rtt, 3),
		RTT:      rtt,
		N:        50,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("equilibrium: %.0f-%.0f of 50 flows stay on CUBIC\n",
		region.CubicLow(), region.CubicHigh())
	// Output: equilibrium: 17-25 of 50 flows stay on CUBIC
}

// Evaluate the Ware et al. (IMC 2019) baseline model the paper compares
// against.
func ExamplePredictWare() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	p, err := bbrnash.PredictWare(bbrnash.WareScenario{
		Capacity: capacity,
		Buffer:   bbrnash.BufferBytes(capacity, rtt, 10),
		RTT:      rtt,
		NumBBR:   1,
		Duration: 2 * time.Minute,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Ware et al. predict BBR gets %.1f Mbps\n", p.AggBBR.Mbit())
	// Output: Ware et al. predict BBR gets 25.8 Mbps
}

// Classify where a configuration sits relative to the model's validity
// domain.
func ExampleScenario_regimes() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	for _, bdp := range []float64{0.5, 10, 150} {
		p, err := bbrnash.Predict(bbrnash.Scenario{
			Capacity: capacity,
			Buffer:   bbrnash.BufferBytes(capacity, rtt, bdp),
			RTT:      rtt,
			NumCubic: 1,
			NumBBR:   1,
		}, bbrnash.Synchronized)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%.1f BDP: %v\n", bdp, p.Regime)
	}
	// Output:
	// 0.5 BDP: shallow(<1BDP)
	// 10.0 BDP: valid
	// 150.0 BDP: ultra-deep(>100BDP)
}
