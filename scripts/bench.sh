#!/usr/bin/env bash
# Reproducible packet-engine benchmark (see DESIGN.md §13).
#
# Runs BenchmarkEngine — the frozen three-scenario suite in
# internal/netsim/engine_bench_test.go, where each op advances a warmed
# simulation by one simulated second — and emits one machine-readable JSON
# record: per scenario the best-of-count wall time per simulated second,
# live events per simulated second, ns/event, events/sec of wall time and
# allocs/event, plus the git SHA, go version and benchmark settings.
#
# Usage:
#   ./scripts/bench.sh                  # print the record to stdout
#   ./scripts/bench.sh -o BENCH_0006.json -l typed-engine
#                                       # append the record to a JSON array
#   BENCH_TIME=60x BENCH_COUNT=1 ./scripts/bench.sh   # quicker, noisier
#
# The -o file holds a JSON array of records; successive runs append, so a
# baseline measured on one commit and a candidate measured on another live
# in the same file and any consumer can compute ratios.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=""
LABEL="current"
while getopts "o:l:" opt; do
	case "$opt" in
	o) OUT=$OPTARG ;;
	l) LABEL=$OPTARG ;;
	*) echo "usage: $0 [-o out.json] [-l label]" >&2; exit 2 ;;
	esac
done

BENCH_TIME=${BENCH_TIME:-600x}
BENCH_COUNT=${BENCH_COUNT:-3}
SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DIRTY=false
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then DIRTY=true; fi
GOVER=$(go env GOVERSION)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

RAW=$(go test ./internal/netsim -run '^$' -bench BenchmarkEngine \
	-benchtime "$BENCH_TIME" -benchmem -count "$BENCH_COUNT")

RECORD=$(printf '%s\n' "$RAW" | awk \
	-v label="$LABEL" -v sha="$SHA" -v dirty="$DIRTY" -v gover="$GOVER" \
	-v date="$DATE" -v benchtime="$BENCH_TIME" -v count="$BENCH_COUNT" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEngine\// {
	name = $1
	sub(/^BenchmarkEngine\//, "", name)
	sub(/-[0-9]+$/, "", name)
	ns = $3; ev = $5; bytes = $7; allocs = $9
	if (!(name in best) || ns < best[name]) {
		best[name] = ns; events[name] = ev
		bop[name] = bytes; aop[name] = allocs
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
}
END {
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"git_sha\": \"%s\",\n", sha
	printf "    \"dirty\": %s,\n", dirty
	printf "    \"date\": \"%s\",\n", date
	printf "    \"go\": \"%s\",\n", gover
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"benchtime\": \"%s\",\n", benchtime
	printf "    \"count\": %s,\n", count
	printf "    \"scenarios\": [\n"
	tns = 0; tev = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		ns = best[name]; ev = events[name]
		tns += ns; tev += ev
		printf "      {\n"
		printf "        \"scenario\": \"%s\",\n", name
		printf "        \"ns_per_sim_second\": %d,\n", ns
		printf "        \"events_per_sim_second\": %d,\n", ev
		printf "        \"ns_per_event\": %.2f,\n", ns / ev
		printf "        \"events_per_wall_second\": %d,\n", ev * 1e9 / ns
		printf "        \"allocs_per_event\": %.4f,\n", aop[name] / ev
		printf "        \"bytes_per_op\": %s\n", bop[name]
		printf "      }%s\n", (i < n ? "," : "")
	}
	printf "    ],\n"
	printf "    \"suite_events_per_wall_second\": %d\n", tev * 1e9 / tns
	printf "  }"
}')

if [ -z "$OUT" ]; then
	printf '%s\n' "$RECORD"
	exit 0
fi

if [ ! -s "$OUT" ]; then
	printf '[\n%s\n]\n' "$RECORD" >"$OUT"
else
	# Append to the existing JSON array: drop the closing bracket line,
	# join with a comma, re-terminate.
	tmp=$(mktemp)
	sed '$d' "$OUT" >"$tmp"
	{ cat "$tmp"; printf ',\n%s\n]\n' "$RECORD"; } >"$OUT.new"
	mv "$OUT.new" "$OUT"
	rm -f "$tmp"
fi
echo "appended $LABEL record to $OUT" >&2
