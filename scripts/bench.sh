#!/usr/bin/env bash
# Reproducible benchmarks (see DESIGN.md §13 and §14).
#
# Two suites, selected with -s:
#
#   engine (default): BenchmarkEngine — the frozen three-scenario suite in
#   internal/netsim/engine_bench_test.go, where each op advances a warmed
#   simulation by one simulated second. The record carries per scenario the
#   best-of-count wall time per simulated second, live events per simulated
#   second, ns/event, events/sec of wall time and allocs/event.
#
#   backends: BenchmarkBackendScenario — the packet engine and the fluid
#   fast path each running the same complete scenarios
#   (internal/exp/backend_bench_test.go). The record carries per scenario
#   each backend's ns per scenario and scenarios per second, plus the
#   packet/fluid speedup.
#
#   topology: BenchmarkTopology — the same flows over a single bottleneck
#   and over the 3-link parking-lot chain whose middle link is that
#   bottleneck (internal/netsim/topology_bench_test.go). Same per-scenario
#   fields as the engine suite, plus the chain/single ns-per-event ratio —
#   the per-hop cost of multi-link forwarding.
#
# Both records carry the git SHA, go version and benchmark settings.
#
# Usage:
#   ./scripts/bench.sh                  # engine record to stdout
#   ./scripts/bench.sh -s backends -o BENCH_0007.json -l fluid-fast-path
#                                       # append the record to a JSON array
#   BENCH_TIME=60x BENCH_COUNT=1 ./scripts/bench.sh   # quicker, noisier
#
# The -o file holds a JSON array of records; successive runs append, so a
# baseline measured on one commit and a candidate measured on another live
# in the same file and any consumer can compute ratios.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=""
LABEL="current"
SUITE="engine"
while getopts "o:l:s:" opt; do
	case "$opt" in
	o) OUT=$OPTARG ;;
	l) LABEL=$OPTARG ;;
	s) SUITE=$OPTARG ;;
	*) echo "usage: $0 [-s engine|backends|topology] [-o out.json] [-l label]" >&2; exit 2 ;;
	esac
done

case "$SUITE" in
engine)   BENCH_TIME=${BENCH_TIME:-600x} ;;
backends) BENCH_TIME=${BENCH_TIME:-2x} ;;
topology) BENCH_TIME=${BENCH_TIME:-600x} ;;
*) echo "bench.sh: unknown suite '$SUITE' (want engine, backends or topology)" >&2; exit 2 ;;
esac
BENCH_COUNT=${BENCH_COUNT:-3}
SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DIRTY=false
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then DIRTY=true; fi
GOVER=$(go env GOVERSION)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

if [ "$SUITE" = backends ]; then
	RAW=$(go test ./internal/exp -run '^$' -bench BenchmarkBackendScenario \
		-benchtime "$BENCH_TIME" -benchmem -count "$BENCH_COUNT")

	RECORD=$(printf '%s\n' "$RAW" | awk \
		-v label="$LABEL" -v sha="$SHA" -v dirty="$DIRTY" -v gover="$GOVER" \
		-v date="$DATE" -v benchtime="$BENCH_TIME" -v count="$BENCH_COUNT" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkBackendScenario\// {
		name = $1
		sub(/^BenchmarkBackendScenario\//, "", name)
		sub(/-[0-9]+$/, "", name)
		split(name, parts, "/")
		scen = parts[1]; bk = parts[2]
		ns = $3
		key = scen SUBSEP bk
		if (!(key in best) || ns < best[key]) best[key] = ns
		if (!(scen in seen)) { order[++n] = scen; seen[scen] = 1 }
	}
	END {
		printf "  {\n"
		printf "    \"label\": \"%s\",\n", label
		printf "    \"suite\": \"backends\",\n"
		printf "    \"git_sha\": \"%s\",\n", sha
		printf "    \"dirty\": %s,\n", dirty
		printf "    \"date\": \"%s\",\n", date
		printf "    \"go\": \"%s\",\n", gover
		printf "    \"cpu\": \"%s\",\n", cpu
		printf "    \"benchtime\": \"%s\",\n", benchtime
		printf "    \"count\": %s,\n", count
		printf "    \"scenarios\": [\n"
		maxsp = 0
		for (i = 1; i <= n; i++) {
			scen = order[i]
			pns = best[scen SUBSEP "packet"]; fns = best[scen SUBSEP "fluid"]
			sp = (fns > 0 ? pns / fns : 0)
			if (sp > maxsp) maxsp = sp
			printf "      {\n"
			printf "        \"scenario\": \"%s\",\n", scen
			printf "        \"packet_ns_per_scenario\": %.0f,\n", pns
			printf "        \"fluid_ns_per_scenario\": %.0f,\n", fns
			printf "        \"packet_scenarios_per_second\": %.2f,\n", 1e9 / pns
			printf "        \"fluid_scenarios_per_second\": %.2f,\n", 1e9 / fns
			printf "        \"speedup\": %.1f\n", sp
			printf "      }%s\n", (i < n ? "," : "")
		}
		printf "    ],\n"
		printf "    \"max_speedup\": %.1f\n", maxsp
		printf "  }"
	}')

	if [ -z "$OUT" ]; then
		printf '%s\n' "$RECORD"
		exit 0
	fi
	if [ ! -s "$OUT" ]; then
		printf '[\n%s\n]\n' "$RECORD" >"$OUT"
	else
		tmp=$(mktemp)
		sed '$d' "$OUT" >"$tmp"
		{ cat "$tmp"; printf ',\n%s\n]\n' "$RECORD"; } >"$OUT.new"
		mv "$OUT.new" "$OUT"
		rm -f "$tmp"
	fi
	echo "appended $LABEL backends record to $OUT" >&2
	exit 0
fi

if [ "$SUITE" = topology ]; then
	RAW=$(go test ./internal/netsim -run '^$' -bench BenchmarkTopology \
		-benchtime "$BENCH_TIME" -benchmem -count "$BENCH_COUNT")

	RECORD=$(printf '%s\n' "$RAW" | awk \
		-v label="$LABEL" -v sha="$SHA" -v dirty="$DIRTY" -v gover="$GOVER" \
		-v date="$DATE" -v benchtime="$BENCH_TIME" -v count="$BENCH_COUNT" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkTopology\// {
		name = $1
		sub(/^BenchmarkTopology\//, "", name)
		sub(/-[0-9]+$/, "", name)
		ns = $3; ev = $5; bytes = $7; allocs = $9
		if (!(name in best) || ns < best[name]) {
			best[name] = ns; events[name] = ev
			bop[name] = bytes; aop[name] = allocs
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
	}
	END {
		printf "  {\n"
		printf "    \"label\": \"%s\",\n", label
		printf "    \"suite\": \"topology\",\n"
		printf "    \"git_sha\": \"%s\",\n", sha
		printf "    \"dirty\": %s,\n", dirty
		printf "    \"date\": \"%s\",\n", date
		printf "    \"go\": \"%s\",\n", gover
		printf "    \"cpu\": \"%s\",\n", cpu
		printf "    \"benchtime\": \"%s\",\n", benchtime
		printf "    \"count\": %s,\n", count
		printf "    \"scenarios\": [\n"
		for (i = 1; i <= n; i++) {
			name = order[i]
			ns = best[name]; ev = events[name]
			printf "      {\n"
			printf "        \"scenario\": \"%s\",\n", name
			printf "        \"ns_per_sim_second\": %d,\n", ns
			printf "        \"events_per_sim_second\": %d,\n", ev
			printf "        \"ns_per_event\": %.2f,\n", ns / ev
			printf "        \"events_per_wall_second\": %d,\n", ev * 1e9 / ns
			printf "        \"allocs_per_event\": %.4f,\n", aop[name] / ev
			printf "        \"bytes_per_op\": %s\n", bop[name]
			printf "      }%s\n", (i < n ? "," : "")
		}
		printf "    ],\n"
		s = best["single"] / events["single"]
		c = best["chain3"] / events["chain3"]
		printf "    \"chain_ns_per_event_over_single\": %.2f\n", (s > 0 ? c / s : 0)
		printf "  }"
	}')

	if [ -z "$OUT" ]; then
		printf '%s\n' "$RECORD"
		exit 0
	fi
	if [ ! -s "$OUT" ]; then
		printf '[\n%s\n]\n' "$RECORD" >"$OUT"
	else
		tmp=$(mktemp)
		sed '$d' "$OUT" >"$tmp"
		{ cat "$tmp"; printf ',\n%s\n]\n' "$RECORD"; } >"$OUT.new"
		mv "$OUT.new" "$OUT"
		rm -f "$tmp"
	fi
	echo "appended $LABEL topology record to $OUT" >&2
	exit 0
fi

RAW=$(go test ./internal/netsim -run '^$' -bench BenchmarkEngine \
	-benchtime "$BENCH_TIME" -benchmem -count "$BENCH_COUNT")

RECORD=$(printf '%s\n' "$RAW" | awk \
	-v label="$LABEL" -v sha="$SHA" -v dirty="$DIRTY" -v gover="$GOVER" \
	-v date="$DATE" -v benchtime="$BENCH_TIME" -v count="$BENCH_COUNT" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEngine\// {
	name = $1
	sub(/^BenchmarkEngine\//, "", name)
	sub(/-[0-9]+$/, "", name)
	ns = $3; ev = $5; bytes = $7; allocs = $9
	if (!(name in best) || ns < best[name]) {
		best[name] = ns; events[name] = ev
		bop[name] = bytes; aop[name] = allocs
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
}
END {
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"git_sha\": \"%s\",\n", sha
	printf "    \"dirty\": %s,\n", dirty
	printf "    \"date\": \"%s\",\n", date
	printf "    \"go\": \"%s\",\n", gover
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"benchtime\": \"%s\",\n", benchtime
	printf "    \"count\": %s,\n", count
	printf "    \"scenarios\": [\n"
	tns = 0; tev = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		ns = best[name]; ev = events[name]
		tns += ns; tev += ev
		printf "      {\n"
		printf "        \"scenario\": \"%s\",\n", name
		printf "        \"ns_per_sim_second\": %d,\n", ns
		printf "        \"events_per_sim_second\": %d,\n", ev
		printf "        \"ns_per_event\": %.2f,\n", ns / ev
		printf "        \"events_per_wall_second\": %d,\n", ev * 1e9 / ns
		printf "        \"allocs_per_event\": %.4f,\n", aop[name] / ev
		printf "        \"bytes_per_op\": %s\n", bop[name]
		printf "      }%s\n", (i < n ? "," : "")
	}
	printf "    ],\n"
	printf "    \"suite_events_per_wall_second\": %d\n", tev * 1e9 / tns
	printf "  }"
}')

if [ -z "$OUT" ]; then
	printf '%s\n' "$RECORD"
	exit 0
fi

if [ ! -s "$OUT" ]; then
	printf '[\n%s\n]\n' "$RECORD" >"$OUT"
else
	# Append to the existing JSON array: drop the closing bracket line,
	# join with a comma, re-terminate.
	tmp=$(mktemp)
	sed '$d' "$OUT" >"$tmp"
	{ cat "$tmp"; printf ',\n%s\n]\n' "$RECORD"; } >"$OUT.new"
	mv "$OUT.new" "$OUT"
	rm -f "$tmp"
fi
echo "appended $LABEL record to $OUT" >&2
