#!/usr/bin/env bash
# Journal-replay smoke test (see DESIGN.md, "Fault injection & resumable
# sweeps"): start a replicated bbrsim sweep with a -resume journal, kill
# it mid-sweep with SIGKILL (no cleanup runs, the worst case), resume
# with the same journal, and assert the resumed output is byte-identical
# to an uninterrupted run — the replicates completed before the kill are
# served from the journal instead of re-simulating.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/bbrsim" ./cmd/bbrsim

args=(-flows bbr:2,cubic:2 -capacity 50 -rtt 40 -buffer 2
      -duration 90s -runs 16 -workers 2 -seed 7)

# Uninterrupted reference run (no journal), with traces.
"$tmp/bbrsim" "${args[@]}" -trace "$tmp/trace-ref" > "$tmp/reference.out"

journaled() {
    if [ -f "$tmp/journal.jsonl" ]; then wc -l < "$tmp/journal.jsonl"; else echo 0; fi
}

# The same sweep with a journal, SIGKILLed once a few replicates have
# been journaled. If the sweep wins the race and finishes first, the
# resume below simply replays everything — the assertions still hold.
"$tmp/bbrsim" "${args[@]}" -resume "$tmp/journal.jsonl" -trace "$tmp/trace-journal" > "$tmp/killed.out" &
pid=$!
for _ in $(seq 1 300); do
    [ "$(journaled)" -ge 2 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

completed=$(journaled)
echo "resume smoke: killed sweep after $completed journaled replicate(s)"
if [ "$completed" -eq 0 ]; then
    echo "resume smoke: FAILED — nothing was journaled before the kill" >&2
    exit 1
fi

# Resume and compare, ignoring only the timing/hit-count summary line. The
# resumed run writes into the same trace directory: journal hits skip
# re-tracing (their traces were written before their journal records, so
# they are already on disk), fresh replicates fill in the rest.
"$tmp/bbrsim" "${args[@]}" -resume "$tmp/journal.jsonl" -trace "$tmp/trace-journal" \
    -report "$tmp/report.json" > "$tmp/resumed.out"

filter() { grep -v "wall time" "$1"; }
if ! diff <(filter "$tmp/reference.out") <(filter "$tmp/resumed.out"); then
    echo "resume smoke: FAILED — resumed output differs from uninterrupted run" >&2
    exit 1
fi
hits=$(grep -oE '[0-9]+ journal hits' "$tmp/resumed.out" | grep -oE '^[0-9]+' || echo 0)
if [ "${hits:-0}" -eq 0 ]; then
    echo "resume smoke: FAILED — resumed run never hit the journal" >&2
    exit 1
fi
echo "resume smoke: resumed output identical to uninterrupted run ($hits journal hits)"

# Trace determinism through the kill/resume cycle: every trace file from the
# uninterrupted reference run must exist, byte-identical, in the journaled
# run's trace directory — whether it was written before the SIGKILL or by
# the resumed sweep.
ref_count=$(ls "$tmp/trace-ref"/trace-* | wc -l)
jrn_count=$(ls "$tmp/trace-journal"/trace-* | wc -l)
if [ "$ref_count" -eq 0 ] || [ "$ref_count" -ne "$jrn_count" ]; then
    echo "resume smoke: FAILED — trace file counts differ (reference $ref_count, journaled $jrn_count)" >&2
    exit 1
fi
for ref in "$tmp/trace-ref"/trace-*; do
    if ! cmp -s "$ref" "$tmp/trace-journal/$(basename "$ref")"; then
        echo "resume smoke: FAILED — trace $(basename "$ref") differs after kill/resume" >&2
        exit 1
    fi
done
if ! grep -q '"outcome": "ok"' "$tmp/report.json"; then
    echo "resume smoke: FAILED — run report missing ok outcome" >&2
    exit 1
fi
echo "resume smoke: $ref_count trace files byte-identical across kill/resume, run report ok"
