#!/usr/bin/env bash
# Full tier-1 verification recipe (see ROADMAP.md, "Tier-1 verify").
# Run from the repository root: ./scripts/verify.sh
#
# The race pass covers the concurrent fan-out, cache, invariant-audit and
# scenario-key code, and — via internal/netsim and internal/exp — the
# multi-link topology property tests and trace goldens; the exp simulations
# take ~10 minutes under the race detector, hence the explicit timeout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (runner, exp, check, scenario, netsim, telemetry, fluid, serve, game, adopt)"
go test -race -timeout 1800s \
	./internal/runner ./internal/exp ./internal/check ./internal/scenario ./internal/netsim \
	./internal/telemetry ./internal/fluid ./internal/serve ./internal/game ./internal/adopt

echo "== engine benchmark smoke + allocation guard"
go test ./internal/netsim -run TestSteadyStateZeroAllocs \
	-bench 'BenchmarkEngine|BenchmarkTopology' -benchtime 1x -count=1

echo "== topology example smoke (multi-bottleneck specs under -strict audit)"
for ex in examples/parkinglot-3link.json examples/access-core.json; do
	go run ./cmd/bbrsim -scenario "$ex" -strict >/dev/null
done

echo "== fluid crossval smoke (divergence report schema)"
REPORT=$(go run ./cmd/crossval -buffers 2,6 -mixes 1:1 -duration 2s 2>/dev/null)
for field in schema_version key_version buffer_bdp regime rel_err_bbr rel_err_cubic \
	diverged points max_rel_err mean_rel_err worst_point; do
	if ! printf '%s' "$REPORT" | grep -q "\"$field\""; then
		echo "crossval smoke: report is missing field \"$field\"" >&2
		exit 1
	fi
done

echo "== adoption-dynamics smoke (tiny population, 3 generations, trajectory schema)"
TRAJ=$(go run ./cmd/adopt -capacity 50 -buffer 3 -agents 200 -generations 3 \
	-algs cubic,bbr -shares 0.7,0.3 -simflows 6 -seed 7 2>/dev/null)
if [ "$(printf '%s\n' "$TRAJ" | wc -l)" -ne 4 ]; then
	echo "adopt smoke: expected 4 trajectory records, got:" >&2
	printf '%s\n' "$TRAJ" >&2
	exit 1
fi
for field in generation classes rtt_ms counts shares sim_counts payoffs_mbps \
	mean_payoff_mbps fixed_point; do
	if ! printf '%s' "$TRAJ" | grep -q "\"$field\""; then
		echo "adopt smoke: trajectory is missing field \"$field\"" >&2
		exit 1
	fi
done

echo "== journal-replay smoke test (kill a sweep mid-flight, resume, diff)"
./scripts/resume_smoke.sh

echo "== bbrserve chaos smoke test (kill -9 the service mid-sweep, restart, diff)"
./scripts/serve_smoke.sh

echo "verify: all green"
