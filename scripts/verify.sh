#!/usr/bin/env bash
# Full tier-1 verification recipe (see ROADMAP.md, "Tier-1 verify").
# Run from the repository root: ./scripts/verify.sh
#
# The race pass covers the concurrent fan-out, cache, invariant-audit and
# scenario-key code; the exp simulations take ~10 minutes under the race
# detector, hence the explicit timeout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (runner, exp, check, scenario, netsim, telemetry)"
go test -race -timeout 1800s \
	./internal/runner ./internal/exp ./internal/check ./internal/scenario ./internal/netsim \
	./internal/telemetry

echo "== engine benchmark smoke + allocation guard"
go test ./internal/netsim -run TestSteadyStateZeroAllocs \
	-bench BenchmarkEngine -benchtime 1x -count=1

echo "== journal-replay smoke test (kill a sweep mid-flight, resume, diff)"
./scripts/resume_smoke.sh

echo "verify: all green"
