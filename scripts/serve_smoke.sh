#!/usr/bin/env bash
# bbrserve chaos smoke test (see DESIGN.md §16): run a sweep through the
# service, SIGKILL the server mid-sweep (no cleanup runs, the worst case),
# restart it on the same cache+journal, and assert every resubmitted spec
# answers byte-identically to an uninterrupted reference server — including
# trace files. Also proves the advisory store lock (a second server on the
# same store fails loudly), overload shedding (429 + Retry-After from a
# saturated queue), graceful SIGTERM drain (cache persisted), and the
# machine-readable /stats surface.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/bbrserve" ./cmd/bbrserve

# Six specs differing only in seed, derived from the example scenario.
nspecs=6
for i in $(seq 1 "$nspecs"); do
    sed "s/\"seed\": 1/\"seed\": $i/" examples/mix-3bbr-2cubic.json > "$tmp/spec-$i.json"
done

# start_server <logfile> <args...>: launches bbrserve on an ephemeral port
# and parses the printed listen address. Sets SRV_PID and SRV_ADDR.
start_server() {
    local log=$1; shift
    "$tmp/bbrserve" -addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
    SRV_PID=$!
    pids+=("$SRV_PID")
    SRV_ADDR=""
    for _ in $(seq 1 200); do
        SRV_ADDR=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$log")
        [ -n "$SRV_ADDR" ] && return 0
        if ! kill -0 "$SRV_PID" 2>/dev/null; then
            echo "serve smoke: FAILED — server died on startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.05
    done
    echo "serve smoke: FAILED — server never printed its listen address" >&2
    exit 1
}

journaled() {
    if [ -f "$1" ]; then wc -l < "$1"; else echo 0; fi
}

# --- Phase 1: uninterrupted reference run ------------------------------------
start_server "$tmp/ref.log" -cache "$tmp/ref-cache.json" -trace "$tmp/trace-ref"
ref_addr=$SRV_ADDR; ref_pid=$SRV_PID
for i in $(seq 1 "$nspecs"); do
    curl -sS --max-time 120 -d @"$tmp/spec-$i.json" "http://$ref_addr/run" > "$tmp/ref-$i.json"
    grep -q '"result"' "$tmp/ref-$i.json" || {
        echo "serve smoke: FAILED — reference run $i returned no result: $(cat "$tmp/ref-$i.json")" >&2
        exit 1
    }
done
curl -sS "http://$ref_addr/healthz" | grep -q ok
kill "$ref_pid" && wait "$ref_pid" 2>/dev/null || true
echo "serve smoke: reference server answered $nspecs specs"

# --- Phase 2: SIGKILL mid-sweep, restart, byte-identical recovery ------------
store=$tmp/chaos
mkdir -p "$store"
start_server "$tmp/chaos.log" -cache "$store/cache.json" -resume "$store/journal.jsonl" -trace "$tmp/trace-chaos" -workers 2
chaos_addr=$SRV_ADDR; chaos_pid=$SRV_PID
for i in $(seq 1 "$nspecs"); do
    curl -sS --max-time 10 -d @"$tmp/spec-$i.json" "http://$chaos_addr/run?wait=0" > /dev/null
done
# Kill once a couple of results are journaled but (with luck) not all; if
# the sweep wins the race, the restart simply replays everything — the
# assertions below still hold.
for _ in $(seq 1 600); do
    [ "$(journaled "$store/journal.jsonl")" -ge 2 ] && break
    kill -0 "$chaos_pid" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true
completed=$(journaled "$store/journal.jsonl")
echo "serve smoke: SIGKILLed server after $completed journaled result(s)"
if [ "$completed" -eq 0 ]; then
    echo "serve smoke: FAILED — nothing was journaled before the kill" >&2
    exit 1
fi

# kill -9 ran no cleanup, yet the restart must succeed (the kernel released
# the advisory lock with the process) and replay the journal.
start_server "$tmp/restart.log" -cache "$store/cache.json" -resume "$store/journal.jsonl" -trace "$tmp/trace-chaos" -workers 2
re_addr=$SRV_ADDR; re_pid=$SRV_PID
grep -q "replayed journal" "$tmp/restart.log" || true
for i in $(seq 1 "$nspecs"); do
    curl -sS --max-time 120 -d @"$tmp/spec-$i.json" "http://$re_addr/run" > "$tmp/re-$i.json"
    if ! cmp -s "$tmp/ref-$i.json" "$tmp/re-$i.json"; then
        echo "serve smoke: FAILED — spec $i differs after kill/restart:" >&2
        diff "$tmp/ref-$i.json" "$tmp/re-$i.json" >&2 || true
        exit 1
    fi
done
stats=$(curl -sS "http://$re_addr/stats")
hits=$(printf '%s' "$stats" | grep -oE '"journal_hits":[0-9]+' | grep -oE '[0-9]+')
if [ "${hits:-0}" -eq 0 ]; then
    echo "serve smoke: FAILED — restarted server never hit the journal: $stats" >&2
    exit 1
fi
for field in queue_depth shed worker_restarts cache_hit_rate latency_count; do
    printf '%s' "$stats" | grep -q "\"$field\"" || {
        echo "serve smoke: FAILED — /stats missing \"$field\": $stats" >&2
        exit 1
    }
done
echo "serve smoke: $nspecs specs byte-identical across kill -9/restart ($hits journal hits)"

# Trace determinism through the crash: every reference trace file exists,
# byte-identical, in the chaos run's directory.
ref_count=$(ls "$tmp/trace-ref"/trace-* | wc -l)
chaos_count=$(ls "$tmp/trace-chaos"/trace-* | wc -l)
if [ "$ref_count" -eq 0 ] || [ "$ref_count" -ne "$chaos_count" ]; then
    echo "serve smoke: FAILED — trace counts differ (reference $ref_count, chaos $chaos_count)" >&2
    exit 1
fi
for ref in "$tmp/trace-ref"/trace-*; do
    if ! cmp -s "$ref" "$tmp/trace-chaos/$(basename "$ref")"; then
        echo "serve smoke: FAILED — trace $(basename "$ref") differs after kill/restart" >&2
        exit 1
    fi
done
echo "serve smoke: $ref_count trace files byte-identical across kill/restart"

# --- Phase 3: advisory store lock --------------------------------------------
# A second server on the live store must fail loudly, not corrupt it.
if "$tmp/bbrserve" -addr 127.0.0.1:0 -cache "$store/cache.json" > "$tmp/lock.log" 2>&1; then
    echo "serve smoke: FAILED — second server acquired a locked store" >&2
    exit 1
fi
grep -q "another process owns this store" "$tmp/lock.log" || {
    echo "serve smoke: FAILED — lock refusal not explained:" >&2
    cat "$tmp/lock.log" >&2
    exit 1
}
echo "serve smoke: second server on the same store refused loudly"

# --- Phase 4: graceful drain persists the cache ------------------------------
kill -TERM "$re_pid"
for _ in $(seq 1 200); do
    kill -0 "$re_pid" 2>/dev/null || break
    sleep 0.05
done
wait "$re_pid" 2>/dev/null || true
grep -q "drained" "$tmp/restart.log" || {
    echo "serve smoke: FAILED — SIGTERM did not drain:" >&2
    cat "$tmp/restart.log" >&2
    exit 1
}
if ! grep -q '"v":' "$store/cache.json" 2>/dev/null && ! [ -s "$store/cache.json" ]; then
    echo "serve smoke: FAILED — drain did not persist the cache" >&2
    exit 1
fi
echo "serve smoke: SIGTERM drained and persisted the cache"

# --- Phase 5: overload sheds with 429 ----------------------------------------
start_server "$tmp/shed.log" -workers 1 -queue 1
shed_addr=$SRV_ADDR; shed_pid=$SRV_PID
accepted=0; shed=0
for i in $(seq 101 112); do
    sed "s/\"seed\": 1/\"seed\": $i/" examples/mix-3bbr-2cubic.json > "$tmp/shed-spec.json"
    code=$(curl -sS -o /dev/null -w '%{http_code}' --max-time 10 \
        -d @"$tmp/shed-spec.json" "http://$shed_addr/run?wait=0")
    case "$code" in
    202) accepted=$((accepted + 1)) ;;
    429) shed=$((shed + 1)) ;;
    *)
        echo "serve smoke: FAILED — unexpected status $code under overload" >&2
        exit 1
        ;;
    esac
done
if [ "$shed" -eq 0 ] || [ "$accepted" -eq 0 ]; then
    echo "serve smoke: FAILED — overload outcomes accepted=$accepted shed=$shed (want both > 0)" >&2
    exit 1
fi
curl -sS "http://$shed_addr/stats" | grep -qE '"shed":[1-9]' || {
    echo "serve smoke: FAILED — /stats does not report the shedding" >&2
    exit 1
}
kill -9 "$shed_pid" 2>/dev/null || true
wait "$shed_pid" 2>/dev/null || true
echo "serve smoke: overload shed $shed of $((accepted + shed)) submissions with 429"
echo "serve smoke: all green"
