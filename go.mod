module bbrnash

go 1.22
