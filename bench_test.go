// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus micro-benchmarks of the substrate and ablation benchmarks for the
// design choices called out in DESIGN.md.
//
// Each BenchmarkFigXX runs the corresponding figure generator and prints
// its summary notes once; the full series (CSV + ASCII chart) comes from
// `go run ./cmd/figures -fig <id>`. Benchmarks default to a reduced scale
// so the whole suite finishes on one core; set BBRNASH_BENCH_SCALE=quick or
// =full to rerun closer to the paper's protocol (full takes hours).
//
// Nash-equilibrium payoff measurements always use the paper's two-minute
// flows regardless of scale (see exp.FindNE), so the equilibrium positions
// these benchmarks print are directly comparable to Figures 9-11.
package bbrnash_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/cc/reno"
	"bbrnash/internal/core"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/exp"
	"bbrnash/internal/netsim"
	"bbrnash/internal/numeric"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// benchScale returns the scale benchmarks run at. The NE searches (figures
// 9-11) get a narrower sweep because each payoff evaluation is a two-minute
// 30-50 flow simulation.
func benchScale(heavy bool) exp.Scale {
	name := os.Getenv("BBRNASH_BENCH_SCALE")
	if name == "" {
		s := exp.Smoke
		if heavy {
			s.SweepPoints = 2
		}
		return s
	}
	s, err := exp.ScaleByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

func benchmarkFigure(b *testing.B, id string, heavy bool) {
	fig, err := exp.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale(heavy)
	for i := 0; i < b.N; i++ {
		res, err := fig.Generate(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, note := range res.Notes {
				fmt.Printf("  fig %s [%s scale]: %s\n", id, scale.Name, note)
			}
		}
	}
}

// One benchmark per figure in the paper's evaluation.

func BenchmarkFig01(b *testing.B)  { benchmarkFigure(b, "1", false) }
func BenchmarkFig03a(b *testing.B) { benchmarkFigure(b, "3a", false) }
func BenchmarkFig03b(b *testing.B) { benchmarkFigure(b, "3b", false) }
func BenchmarkFig03c(b *testing.B) { benchmarkFigure(b, "3c", false) }
func BenchmarkFig03d(b *testing.B) { benchmarkFigure(b, "3d", false) }
func BenchmarkFig04a(b *testing.B) { benchmarkFigure(b, "4a", false) }
func BenchmarkFig04b(b *testing.B) { benchmarkFigure(b, "4b", false) }
func BenchmarkFig05a(b *testing.B) { benchmarkFigure(b, "5a", false) }
func BenchmarkFig05b(b *testing.B) { benchmarkFigure(b, "5b", false) }
func BenchmarkFig05c(b *testing.B) { benchmarkFigure(b, "5c", false) }
func BenchmarkFig05d(b *testing.B) { benchmarkFigure(b, "5d", false) }
func BenchmarkFig06(b *testing.B)  { benchmarkFigure(b, "6", false) }
func BenchmarkFig07(b *testing.B)  { benchmarkFigure(b, "7", false) }
func BenchmarkFig08(b *testing.B)  { benchmarkFigure(b, "8", false) }
func BenchmarkFig09a(b *testing.B) { benchmarkFigure(b, "9a", true) }
func BenchmarkFig09b(b *testing.B) { benchmarkFigure(b, "9b", true) }
func BenchmarkFig09c(b *testing.B) { benchmarkFigure(b, "9c", true) }
func BenchmarkFig09d(b *testing.B) { benchmarkFigure(b, "9d", true) }
func BenchmarkFig09e(b *testing.B) { benchmarkFigure(b, "9e", true) }
func BenchmarkFig09f(b *testing.B) { benchmarkFigure(b, "9f", true) }
func BenchmarkFig10(b *testing.B)  { benchmarkFigure(b, "10", true) }
func BenchmarkFig11a(b *testing.B) { benchmarkFigure(b, "11a", true) }
func BenchmarkFig11b(b *testing.B) { benchmarkFigure(b, "11b", true) }
func BenchmarkFig12(b *testing.B)  { benchmarkFigure(b, "12", false) }

// Micro-benchmarks of the substrate.

// BenchmarkEventLoop measures raw discrete-event throughput.
func BenchmarkEventLoop(b *testing.B) {
	var loop eventsim.Loop
	count := 0
	var tick func()
	tick = func() {
		count++
		loop.After(time.Microsecond, tick)
	}
	loop.After(0, tick)
	b.ResetTimer()
	loop.Run(eventsim.At(time.Duration(b.N) * time.Microsecond))
	if count == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkNetsimSecond measures how fast the simulator advances one second
// of a loaded 10-flow bottleneck (reported as events per op).
func BenchmarkNetsimSecond(b *testing.B) {
	n, err := netsim.New(netsim.Config{
		Capacity: 100 * units.Mbps,
		Buffer:   units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 3),
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Algorithm: bbr.New}); err != nil {
			b.Fatal(err)
		}
		if _, err := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Algorithm: cubic.New}); err != nil {
			b.Fatal(err)
		}
	}
	n.Run(5 * time.Second) // warm up
	start := n.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(time.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(n.Events()-start)/float64(b.N), "events/op")
}

// BenchmarkModelPredict measures one closed-form model evaluation.
func BenchmarkModelPredict(b *testing.B) {
	s := core.Scenario{
		Capacity: 100 * units.Mbps,
		Buffer:   units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 10),
		RTT:      40 * time.Millisecond,
		NumCubic: 25, NumBBR: 25,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Predict(s, core.Synchronized); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNashPredict measures a full model-side NE region computation.
func BenchmarkNashPredict(b *testing.B) {
	ns := core.NashScenario{
		Capacity: 100 * units.Mbps,
		Buffer:   units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 10),
		RTT:      40 * time.Millisecond,
		N:        50,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictNashRegion(ns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxFilter measures the windowed-max filter BBR leans on.
func BenchmarkMaxFilter(b *testing.B) {
	f := cc.NewMaxFilter(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(eventsim.Time(i), float64(i%97))
	}
}

// Ablation benchmarks for the design choices in DESIGN.md §7. Each runs a
// head-to-head and reports the outcome as metrics (and a printed line).

// BenchmarkAblationCwndGain shows that BBR's 2xBDP in-flight cap is the
// mechanism behind its bandwidth share: raising or lowering the cap moves
// the share against CUBIC accordingly.
func BenchmarkAblationCwndGain(b *testing.B) {
	for _, gain := range []float64{1.0, 2.0, 3.0} {
		gain := gain
		b.Run(fmt.Sprintf("gain%.0f", gain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := netsim.New(netsim.Config{
					Capacity: 50 * units.Mbps,
					Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 5),
				})
				if err != nil {
					b.Fatal(err)
				}
				ctor := func(p cc.Params) cc.Algorithm {
					return bbr.NewWithOptions(p, bbr.WithCwndGain(gain), bbr.WithCycleOffset(0))
				}
				fb, err := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Algorithm: cubic.New}); err != nil {
					b.Fatal(err)
				}
				n.Run(60 * time.Second)
				share := float64(fb.Stats().Throughput) / (50e6)
				b.ReportMetric(share, "bbr-share")
				if i == 0 {
					fmt.Printf("  ablation cwnd gain %.0f: BBR share %.2f of link\n", gain, share)
				}
			}
		})
	}
}

// BenchmarkAblationModelApproximation quantifies the paper's b_b+b_c=B
// simplification by comparing the published closed form to the exact-form
// variant (core.PredictExact) across the buffer sweep.
func BenchmarkAblationModelApproximation(b *testing.B) {
	s := core.Scenario{
		Capacity: 50 * units.Mbps, RTT: 40 * time.Millisecond, NumCubic: 1, NumBBR: 1,
	}
	grid := numeric.Arange(2, 40, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var maxDiff float64
		for _, bdp := range grid {
			s.Buffer = units.BufferBytes(s.Capacity, s.RTT, bdp)
			pub, err := core.Predict(s, core.Synchronized)
			if err != nil {
				b.Fatal(err)
			}
			exact, err := core.PredictExact(s, core.Synchronized)
			if err != nil {
				b.Fatal(err)
			}
			diff := float64(pub.AggBBR-exact.AggBBR) / float64(s.Capacity)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxDiff {
				maxDiff = diff
			}
		}
		b.ReportMetric(100*maxDiff, "max-diff-%capacity")
		if i == 0 {
			fmt.Printf("  ablation approximation: published vs exact form differ by at most %.1f%% of capacity\n", 100*maxDiff)
		}
	}
}

// BenchmarkAblationSyncBound checks which synchronization bound tracks the
// simulator in the paper's Figure 4 setting. Like the paper's §2.4
// observation ("empirical results are generally much closer to the case
// where CUBIC flows are synchronized"), our measurements hug the
// synchronized bound: BBR's collective ProbeRTT exits overflow the buffer
// and synchronize the CUBIC backoffs (§5, "Forced synchronization").
func BenchmarkAblationSyncBound(b *testing.B) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	grid := []float64{3, 8, 15, 25}
	for i := 0; i < b.N; i++ {
		closerToDesync := 0
		for _, bdp := range grid {
			buf := units.BufferBytes(capacity, rtt, bdp)
			iv, err := core.PredictInterval(core.Scenario{
				Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: 5, NumBBR: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := exp.RunMix(exp.MixConfig{
				Capacity: capacity, Buffer: buf, RTT: rtt,
				Duration: 2 * time.Minute, NumX: 5, NumCubic: 5, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			dSync := abs(float64(res.PerFlowX - iv.Sync.PerBBR))
			dDesync := abs(float64(res.PerFlowX - iv.Desync.PerBBR))
			if dDesync < dSync {
				closerToDesync++
			}
		}
		b.ReportMetric(float64(closerToDesync)/float64(len(grid)), "frac-closer-desync")
		if i == 0 {
			fmt.Printf("  ablation sync bound: %d/%d points closer to the de-synchronized bound\n",
				closerToDesync, len(grid))
		}
	}
}

// BenchmarkAblationFastConvergence compares two-flow CUBIC convergence with
// the fast-convergence heuristic on and off.
func BenchmarkAblationFastConvergence(b *testing.B) {
	run := func(fast bool) float64 {
		n, err := netsim.New(netsim.Config{
			Capacity: 50 * units.Mbps,
			Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 2),
		})
		if err != nil {
			b.Fatal(err)
		}
		ctor := cubic.New
		if !fast {
			ctor = func(p cc.Params) cc.Algorithm {
				return cubic.NewWithOptions(p, cubic.WithoutFastConvergence())
			}
		}
		fa, _ := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor})
		fb, _ := n.AddFlow(netsim.FlowConfig{RTT: 40 * time.Millisecond, Start: 10 * time.Second, Algorithm: ctor})
		n.Run(70 * time.Second)
		ta, tb := float64(fa.Stats().Throughput), float64(fb.Stats().Throughput)
		return (ta + tb) * (ta + tb) / (2 * (ta*ta + tb*tb)) // Jain index
	}
	for i := 0; i < b.N; i++ {
		on := run(true)
		off := run(false)
		b.ReportMetric(on, "jain-fastconv")
		b.ReportMetric(off, "jain-nofastconv")
		if i == 0 {
			fmt.Printf("  ablation fast convergence: Jain %.3f with vs %.3f without\n", on, off)
		}
	}
}

// BenchmarkAblationCubicVsReno reproduces the historical transition the
// paper discusses in §5: CUBIC outgrows Reno on a high-BDP path, which is
// why that switch was an easy call compared to CUBIC vs BBR.
func BenchmarkAblationCubicVsReno(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunMix(exp.MixConfig{
			Capacity: 100 * units.Mbps,
			Buffer:   units.BufferBytes(100*units.Mbps, 80*time.Millisecond, 1),
			RTT:      80 * time.Millisecond,
			Duration: 2 * time.Minute,
			X:        reno.New,
			NumX:     1, NumCubic: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(res.AggCubic) / float64(res.AggX)
		b.ReportMetric(ratio, "cubic/reno")
		if i == 0 {
			fmt.Printf("  ablation cubic vs reno at high BDP: CUBIC/Reno throughput ratio %.2f\n", ratio)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Runner benchmarks: the same sweep through the parallel fan-out at one
// worker and at GOMAXPROCS workers, so BENCH_*.json captures the speedup
// trajectory. Each op runs the sweep twice against a fresh cache — the
// second pass is served from memory — so "cache-hit-rate" reports the
// memoization half of the optimization (0.5 = every rerun scenario hit).

// runnerSweep is the benchmark workload: a 4-point buffer sweep, two
// jittered trials per point, short flows.
func runnerSweep(b *testing.B, s exp.Scale) {
	_, err := s.SweepMix(21, 4, func(i int) exp.MixConfig {
		return exp.MixConfig{
			Capacity: 50 * units.Mbps,
			Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, float64(2*i+1)),
			RTT:      40 * time.Millisecond,
			Duration: 4 * time.Second,
			NumX:     1, NumCubic: 1,
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// runnerScale builds the workload's scale at the given worker count with a
// fresh cache.
func runnerScale(workers int) exp.Scale {
	return exp.Scale{
		Trials: 2,
		Pool:   runner.NewPool(workers),
		Cache:  runner.NewCache(),
	}
}

func BenchmarkRunnerSerial(b *testing.B) {
	var hitRate float64
	for i := 0; i < b.N; i++ {
		s := runnerScale(1)
		runnerSweep(b, s)
		runnerSweep(b, s)
		hitRate = s.Cache.HitRate()
	}
	b.ReportMetric(hitRate, "cache-hit-rate")
}

func BenchmarkRunnerParallel(b *testing.B) {
	// Serial baseline for the speedup metric, measured outside the timer.
	start := time.Now()
	serial := runnerScale(1)
	runnerSweep(b, serial)
	runnerSweep(b, serial)
	baseline := time.Since(start)

	var hitRate float64
	b.ResetTimer()
	start = time.Now()
	for i := 0; i < b.N; i++ {
		s := runnerScale(0) // GOMAXPROCS workers
		runnerSweep(b, s)
		runnerSweep(b, s)
		hitRate = s.Cache.HitRate()
	}
	perOp := time.Since(start) / time.Duration(b.N)
	b.StopTimer()
	b.ReportMetric(hitRate, "cache-hit-rate")
	if perOp > 0 {
		b.ReportMetric(float64(baseline)/float64(perOp), "speedup")
	}
}

// BenchmarkScalingLargeN probes §5's open question — do the predictions
// hold for hundreds of concurrent flows? — with a 200-flow, 1 Gbps
// bottleneck at the model's predicted equilibrium. The reported metric is
// the per-flow BBR/CUBIC payoff ratio there (≈1 at a true equilibrium).
func BenchmarkScalingLargeN(b *testing.B) {
	const n = 200
	const rtt = 40 * time.Millisecond
	capacity := units.Gbps
	buf := units.BufferBytes(capacity, rtt, 3)
	pt, err := core.PredictNash(core.NashScenario{
		Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
	}, core.Synchronized)
	if err != nil {
		b.Fatal(err)
	}
	nb := int(pt.BBRFlows + 0.5)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunMix(exp.MixConfig{
			Capacity: capacity, Buffer: buf, RTT: rtt,
			Duration: 2 * time.Minute, NumX: nb, NumCubic: n - nb, Seed: 99,
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(res.PerFlowX) / float64(res.PerFlowCubic)
		b.ReportMetric(ratio, "bbr/cubic-at-NE")
		if i == 0 {
			fmt.Printf("  scaling: N=200 at model NE (%d BBR): per-flow BBR/CUBIC = %.2f (1.0 = equilibrium)\n", nb, ratio)
		}
	}
}
