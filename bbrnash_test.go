package bbrnash_test

import (
	"math"
	"testing"
	"time"

	"bbrnash"
)

// The facade must expose a working end-to-end path: model prediction,
// simulation, and agreement between the two.
func TestFacadePredictAndSimulate(t *testing.T) {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	buf := bbrnash.BufferBytes(capacity, rtt, 5)

	p, err := bbrnash.Predict(bbrnash.Scenario{
		Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: 1, NumBBR: 1,
	}, bbrnash.Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggBBR <= 0 || p.AggBBR >= capacity {
		t.Fatalf("model AggBBR = %v", p.AggBBR)
	}

	n, err := bbrnash.NewNetwork(bbrnash.NetworkConfig{Capacity: capacity, Buffer: buf})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := n.AddFlow(bbrnash.FlowConfig{Name: "bbr", RTT: rtt, Algorithm: bbrnash.BBR})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddFlow(bbrnash.FlowConfig{Name: "cubic", RTT: rtt, Algorithm: bbrnash.CUBIC}); err != nil {
		t.Fatal(err)
	}
	n.Run(60 * time.Second)
	got := float64(fb.Stats().Throughput)
	want := float64(p.AggBBR)
	if math.Abs(got-want)/want > 0.35 {
		t.Errorf("sim %v vs model %v differ by more than 35%%", got, want)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	ctors := map[string]bbrnash.AlgorithmConstructor{
		"cubic": bbrnash.CUBIC, "reno": bbrnash.NewReno, "bbr": bbrnash.BBR,
		"bbrv2": bbrnash.BBRv2, "copa": bbrnash.Copa, "vivace": bbrnash.Vivace,
	}
	for want, ctor := range ctors {
		if got := ctor(bbrnash.AlgorithmParams{}).Name(); got != want {
			t.Errorf("constructor name = %q, want %q", got, want)
		}
		byName, err := bbrnash.AlgorithmByName(want)
		if err != nil {
			t.Errorf("AlgorithmByName(%q): %v", want, err)
			continue
		}
		if byName(bbrnash.AlgorithmParams{}).Name() != want {
			t.Errorf("registry mismatch for %q", want)
		}
	}
}

func TestFacadeNash(t *testing.T) {
	region, err := bbrnash.PredictNashRegion(bbrnash.NashScenario{
		Capacity: 100 * bbrnash.Mbps,
		Buffer:   bbrnash.BufferBytes(100*bbrnash.Mbps, 40*time.Millisecond, 5),
		RTT:      40 * time.Millisecond,
		N:        20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if region.CubicLow() < 0 || region.CubicHigh() > 20 {
		t.Errorf("region out of range: [%v, %v]", region.CubicLow(), region.CubicHigh())
	}
}

func TestFacadeFigures(t *testing.T) {
	if len(bbrnash.Figures()) != 24 {
		t.Errorf("expected 24 figures, got %d", len(bbrnash.Figures()))
	}
	if _, err := bbrnash.FigureByID("7"); err != nil {
		t.Error(err)
	}
}

func TestFacadeScales(t *testing.T) {
	// Every scale uses the paper's 2-minute flows (shorter flows bias BBR
	// down); scales differ in trials and sweep density instead.
	for _, s := range []bbrnash.ExperimentScale{bbrnash.FullScale, bbrnash.QuickScale, bbrnash.SmokeScale} {
		if s.FlowDuration != 2*time.Minute {
			t.Errorf("%s scale FlowDuration = %v, want 2m", s.Name, s.FlowDuration)
		}
	}
	if bbrnash.SmokeScale.Trials >= bbrnash.FullScale.Trials {
		t.Error("smoke scale should run fewer trials than full")
	}
	if !bbrnash.FullScale.Exhaustive {
		t.Error("full scale should use exhaustive NE scans")
	}
}
