// Quickstart: predict how one CUBIC and one BBR flow split a bottleneck,
// then check the prediction against the packet-level simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bbrnash"
)

func main() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps
	buffer := bbrnash.BufferBytes(capacity, rtt, 5) // 5x the BDP

	// 1. Ask the analytical model.
	pred, err := bbrnash.Predict(bbrnash.Scenario{
		Capacity: capacity,
		Buffer:   buffer,
		RTT:      rtt,
		NumCubic: 1,
		NumBBR:   1,
	}, bbrnash.Synchronized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:     BBR %.1f Mbps vs CUBIC %.1f Mbps (RTT+ = %v)\n",
		pred.AggBBR.Mbit(), pred.AggCubic.Mbit(), pred.RTTPlus)

	// 2. Run the same scenario in the simulator.
	net, err := bbrnash.NewNetwork(bbrnash.NetworkConfig{Capacity: capacity, Buffer: buffer})
	if err != nil {
		log.Fatal(err)
	}
	bbrFlow, err := net.AddFlow(bbrnash.FlowConfig{Name: "bbr", RTT: rtt, Algorithm: bbrnash.BBR})
	if err != nil {
		log.Fatal(err)
	}
	cubicFlow, err := net.AddFlow(bbrnash.FlowConfig{Name: "cubic", RTT: rtt, Algorithm: bbrnash.CUBIC})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(2 * time.Minute)
	fmt.Printf("simulator: BBR %.1f Mbps vs CUBIC %.1f Mbps (link %.0f%% utilized)\n",
		bbrFlow.Stats().Throughput.Mbit(), cubicFlow.Stats().Throughput.Mbit(),
		100*net.Link().Utilization)
}
