// Nash equilibrium: predict the stable CUBIC/BBR mix for a bottleneck and
// verify it empirically (§4 of the paper).
//
// The program predicts the equilibrium band with the analytical model, then
// plays the congestion-control choice game in the simulator: starting from
// the predicted distribution it follows unilateral switching incentives
// until no flow can gain by changing algorithm.
//
// Run with:
//
//	go run ./examples/nash-equilibrium
package main

import (
	"fmt"
	"log"
	"time"

	"bbrnash"
)

func main() {
	const (
		rtt = 40 * time.Millisecond
		n   = 20
	)
	capacity := 100 * bbrnash.Mbps

	for _, bufBDP := range []float64{2, 8, 25} {
		buffer := bbrnash.BufferBytes(capacity, rtt, bufBDP)

		region, err := bbrnash.PredictNashRegion(bbrnash.NashScenario{
			Capacity: capacity, Buffer: buffer, RTT: rtt, N: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("buffer %4.0f BDP: model predicts equilibrium at %4.1f-%4.1f CUBIC flows of %d",
			bufBDP, region.CubicLow(), region.CubicHigh(), n)

		res, err := bbrnash.FindNE(bbrnash.NESearchConfig{
			Capacity: capacity,
			Buffer:   buffer,
			RTT:      rtt,
			N:        n,
			Duration: 30 * time.Second, // lifted automatically for deep buffers
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("; observed:")
		for _, k := range res.EquilibriaX {
			fmt.Printf(" %d", n-k)
		}
		fmt.Printf(" (in %d simulations)\n", res.Simulations)
	}

	fmt.Println("\ndeeper buffers shift the equilibrium toward CUBIC — the paper's Figure 9 trend.")
	fmt.Println("because the equilibria are mixed, BBR is unlikely to fully displace CUBIC.")
}
