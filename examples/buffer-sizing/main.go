// Buffer sizing: how does router buffer depth shape the CUBIC/BBR balance?
//
// Buffer sizing rules of thumb (1 BDP, BDP/sqrt(N), "tiny buffers") assume
// loss-based congestion control; the paper (§1, §5) argues BBR forces the
// question open again. This example sweeps the buffer from shallow to
// ultra-deep for a fixed flow population and reports who wins at each
// depth, which regime the analytical model assigns, and where the
// equilibrium mix settles.
//
// Run with:
//
//	go run ./examples/buffer-sizing
package main

import (
	"fmt"
	"log"
	"time"

	"bbrnash"
)

func main() {
	const rtt = 40 * time.Millisecond
	capacity := 50 * bbrnash.Mbps

	fmt.Printf("one CUBIC vs one BBR flow at %v / %v\n\n", capacity, rtt)
	fmt.Printf("%10s %10s %12s %12s %22s\n", "buffer", "BBR(sim)", "BBR(model)", "queue delay", "model regime")

	for _, bufBDP := range []float64{0.5, 1, 3, 10, 30, 120} {
		buffer := bbrnash.BufferBytes(capacity, rtt, bufBDP)

		res, err := bbrnash.RunMix(bbrnash.MixConfig{
			Capacity: capacity, Buffer: buffer, RTT: rtt,
			Duration: 2 * time.Minute, NumX: 1, NumCubic: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		pred, err := bbrnash.Predict(bbrnash.Scenario{
			Capacity: capacity, Buffer: buffer, RTT: rtt, NumCubic: 1, NumBBR: 1,
		}, bbrnash.Synchronized)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.1f BDP %7.1f Mb %9.1f Mb %12v %22v\n",
			bufBDP, res.AggX.Mbit(), pred.AggBBR.Mbit(),
			res.MeanQueueDelay.Round(time.Millisecond), pred.Regime)
	}

	fmt.Println("\nshallow buffers hand the link to BBR and starve CUBIC; deep buffers do the")
	fmt.Println("opposite while bloating delay. For a 20-flow population the equilibrium mix")
	fmt.Println("moves with depth:")
	for _, bufBDP := range []float64{1, 5, 20, 40} {
		region, err := bbrnash.PredictNashRegion(bbrnash.NashScenario{
			Capacity: capacity,
			Buffer:   bbrnash.BufferBytes(capacity, rtt, bufBDP),
			RTT:      rtt,
			N:        20,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.1f BDP -> %4.1f-%4.1f of 20 flows on CUBIC at equilibrium\n",
			bufBDP, region.CubicLow(), region.CubicHigh())
	}
}
