// CDN bottleneck: should your CDN switch its senders from CUBIC to BBR?
//
// The paper's motivating scenario (§1): operators like Dropbox, YouTube and
// Spotify switched to BBR for throughput. This example models an edge
// bottleneck shared by ten CDN flows with similar RTTs (plausible because
// most traffic is served from nearby caches, §2) and asks how the benefit
// of switching changes as more of the flows make the same choice — the
// diminishing-returns effect of §3.3.
//
// Run with:
//
//	go run ./examples/cdn-bottleneck
package main

import (
	"fmt"
	"log"
	"time"

	"bbrnash"
)

func main() {
	const (
		rtt      = 40 * time.Millisecond
		numFlows = 10
	)
	capacity := 100 * bbrnash.Mbps
	buffer := bbrnash.BufferBytes(capacity, rtt, 3)
	fair := capacity.Mbit() / numFlows

	fmt.Printf("edge bottleneck: %v, %d flows, 3 BDP buffer, fair share %.1f Mbps\n\n",
		capacity, numFlows, fair)
	fmt.Printf("%-28s %14s %14s %12s\n", "scenario", "BBR per-flow", "CUBIC per-flow", "BBR gain")

	for _, numBBR := range []int{1, 2, 4, 6, 8, 9} {
		res, err := bbrnash.RunMixTrials(bbrnash.MixConfig{
			Capacity: capacity,
			Buffer:   buffer,
			RTT:      rtt,
			Duration: time.Minute,
			NumX:     numBBR,
			NumCubic: numFlows - numBBR,
		}, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		gain := res.PerFlowX.Mbit()/res.PerFlowCubic.Mbit() - 1
		fmt.Printf("%2d BBR vs %2d CUBIC %23.1f %14.1f %11.0f%%\n",
			numBBR, numFlows-numBBR, res.PerFlowX.Mbit(), res.PerFlowCubic.Mbit(), 100*gain)
	}

	region, err := bbrnash.PredictNashRegion(bbrnash.NashScenario{
		Capacity: capacity, Buffer: buffer, RTT: rtt, N: numFlows,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe early adopters win big, but the advantage shrinks as others follow.\n")
	fmt.Printf("model: switching stops paying once only %.0f-%.0f of the %d flows remain on CUBIC.\n",
		region.CubicLow(), region.CubicHigh(), numFlows)
}
