// Command bbrsim runs one bottleneck simulation and prints per-flow and
// link statistics.
//
// Usage:
//
//	bbrsim -capacity 100 -rtt 40 -buffer 3 -flows bbr:2,cubic:3 -duration 60s
//	bbrsim -flows bbr:5,cubic:5 -runs 8 -workers 4 -cache results.json -strict
//	bbrsim -scenario examples/mix-3bbr-2cubic.json -runs 4
//
// The -flows specification is a comma-separated list of name:count pairs;
// names come from the algorithm registry (-list-algorithms prints it).
// -buffer is in multiples of the BDP computed from -capacity and -rtt.
// Alternatively -scenario loads a full scenario spec from a JSON file
// (see internal/scenario), which may mix algorithms at heterogeneous RTTs
// and start offsets; the topology flags are then ignored. Either way the
// run is driven by one canonical scenario.Spec — echoed as a "scenario:"
// JSON line, ready to be saved and replayed with -scenario — whose key
// identifies results in the cache and in failure reports.
//
// With -runs > 1, replicates with distinct start-jitter seeds (pre-derived
// from the base seed) fan out across -workers cores and are reported in
// run order; -cache memoizes each replicate's statistics on disk (entries
// from other key-format generations are skipped and pruned).
//
// SIGINT/SIGTERM cancel remaining replicates (in-flight runs drain) and
// the cache is saved on every exit path. -strict audits every replicate's
// statistics against physical invariants and fails the run on violation.
//
// -resume names a crash-safe journal: every completed replicate is
// appended and fsynced as it finishes, and rerunning the same command with
// the same journal skips the completed replicates — output is
// byte-identical to an uninterrupted run because every replicate is a
// deterministic function of its scenario key. -timeout arms a per-run
// stall watchdog (a run making no simulated-time progress for that long is
// cancelled with a stall error) and -retries retries stalled or
// transiently failed runs; a retry re-derives the same seed, so it either
// reproduces the run bit-for-bit or stalls again.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/exp"
	"bbrnash/internal/plot"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		capMbps    = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs      = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP     = flag.Float64("buffer", 3, "buffer size in BDP multiples")
		flows      = flag.String("flows", "bbr:1,cubic:1", "flow spec: name:count[,name:count...]")
		duration   = flag.Duration("duration", 2*time.Minute, "flow duration")
		seed       = flag.Uint64("seed", 1, "start-jitter seed (base seed with -runs > 1)")
		jitter     = flag.Duration("jitter", 10*time.Millisecond, "max random start offset")
		ackJitter  = flag.Duration("ackjitter", 0, "max per-packet ACK path delay variation")
		specPath   = flag.String("scenario", "", "load the full scenario from this JSON file (topology flags ignored)")
		backend    = flag.String("backend", "", "execution engine: packet or fluid ('' = scenario's own backend, default packet)")
		runs       = flag.Int("runs", 1, "number of replicate runs with distinct derived seeds")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = no caching)")
		resumePath = flag.String("resume", "", "path to crash-safe resume journal; an existing journal's completed runs are skipped ('' = no journal)")
		timeout    = flag.Duration("timeout", 0, "per-run stall watchdog: cancel a run making no progress for this long (0 = off)")
		retries    = flag.Int("retries", 0, "retry a stalled or transiently failed run up to this many times (retries re-derive the same seed)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		strict     = flag.Bool("strict", false, "audit replicate statistics against physical invariants; violations fail the run")
		traceDir   = flag.String("trace", "", "write a per-replicate run trace (JSONL + CSV time series and events) into this directory ('' = no tracing)")
		traceEvery = flag.Duration("trace-interval", 0, "trace sampling interval (0 = default 100ms)")
		reportPath = flag.String("report", "", "write a machine-readable JSON run report to this file on exit ('' = no report)")
		progress   = flag.Duration("progress", 0, "print a progress line to stderr this often during the run (0 = off)")
		listAlgs   = flag.Bool("list-algorithms", false, "print the algorithm registry and exit")
	)
	flag.Parse()

	if *listAlgs {
		fmt.Println(strings.Join(scenario.Algorithms(), "\n"))
		return 0
	}

	sp, err := buildSpec(*specPath, *capMbps, *rttMs, *bufBDP, *flows, *duration, *jitter, *ackJitter)
	if err != nil {
		return fail(err)
	}
	if *backend != "" {
		sp.Backend = *backend
		if err := sp.WithDefaults().ValidateTopology(); err != nil {
			return fail(err)
		}
	}
	if sp.Seed == 0 {
		sp.Seed = *seed
	}
	if *runs < 1 {
		*runs = 1
	}

	// The -report defer is registered before any component is built and
	// reads the (nil-safe) components at exit, so interrupted and failed
	// runs still leave a machine-readable record.
	var (
		rec     *telemetry.Recorder
		cache   *runner.Cache
		journal *runner.Journal
		pool    *runner.Pool
	)
	begin := time.Now()
	if *reportPath != "" {
		defer func() {
			writeReport(*reportPath, outcomeOf(code), time.Since(begin), pool, cache, journal, rec)
		}()
	}
	if *traceDir != "" {
		if rec, err = telemetry.NewRecorder(*traceDir); err != nil {
			return fail(err)
		}
		rec.SetInterval(*traceEvery)
	}
	var prof *runner.CPUProfile
	if *cpuProfile != "" {
		if prof, err = runner.StartCPUProfile(*cpuProfile); err != nil {
			return fail(err)
		}
	}
	// Stop the profile through the same deferred single-exit cleanup that
	// saves the cache: an exit path that skips it (audit failure, interrupt)
	// would leave a truncated profile.
	defer stopProfile(prof)
	cache, err = runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	journal, err = runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()
	var audit *check.Auditor
	if *strict {
		audit = check.New()
	}

	// SIGINT/SIGTERM cancel remaining replicates; the deferred save still
	// persists every replicate that completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer saveCache(cache)

	// Pre-derive every replicate's seed before any run starts, so the
	// seed→run assignment is independent of worker count. A single run
	// keeps the base seed verbatim for compatibility with older
	// invocations.
	seeds := make([]uint64, *runs)
	seeds[0] = sp.Seed
	r := rng.New(sp.Seed)
	for i := 1; i < *runs; i++ {
		seeds[i] = r.Uint64()
	}

	pool = runner.NewPool(*workers).SetWatchdog(*timeout).SetRetry(*retries, time.Second)
	if *progress > 0 {
		pool.SetProgress(*progress, func(p runner.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "bbrsim: %d/%d replicates in %v (%d retries, %d stalls)\n",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.Retries, p.Stalls)
		})
	}
	start := time.Now()
	results, err := runner.MapCtx(ctx, pool, *runs, func(uctx context.Context, i int) (exp.SpecResult, error) {
		run := sp
		run.Seed = seeds[i]
		return runner.Protect(run.Key(), func() (exp.SpecResult, error) {
			res, _, err := exp.RunSpecCachedTraced(uctx, run, cache, journal, audit, rec)
			return res, err
		})
	})
	if err != nil {
		return report(ctx, err)
	}
	elapsed := time.Since(start)

	resolved := sp.WithDefaults()
	if resolved.MultiLink() {
		fmt.Print("topology:")
		for i, l := range resolved.Topology() {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Printf(" %s %v/%v", l.Name, l.Capacity, l.Buffer)
			if l.HasReverse() {
				fmt.Printf(" (rev %v/%v)", l.RevCapacity, l.RevBuffer)
			}
		}
		fmt.Printf("; max RTT %v, %d flows, %v simulated",
			resolved.MaxRTT(), sp.TotalFlows(), sp.Duration)
	} else {
		fmt.Printf("bottleneck: %v, buffer %v (%.1f BDP of max RTT), max RTT %v, %d flows, %v simulated",
			resolved.Capacity, resolved.Buffer,
			units.InBDP(resolved.Buffer, resolved.Capacity, resolved.MaxRTT()),
			resolved.MaxRTT(), sp.TotalFlows(), sp.Duration)
	}
	if *runs > 1 {
		fmt.Printf(" x %d runs (%d workers)", *runs, pool.Workers())
	}
	fmt.Println()
	if data, err := json.Marshal(sp); err == nil {
		fmt.Printf("scenario: %s\n", data)
	}

	for i, st := range results {
		if *runs > 1 {
			fmt.Printf("--- run %d (seed %d)\n", i+1, seeds[i])
		}
		tbl := &plot.Table{Header: []string{"flow", "algorithm", "throughput", "lost", "meanRTT", "avgQueue"}}
		for _, g := range st.Groups {
			for _, fs := range g {
				tbl.AddRow(fs.Name, fs.Algorithm,
					fmt.Sprintf("%.2f Mbps", fs.Throughput.Mbit()),
					strconv.Itoa(fs.Lost),
					fs.MeanRTT.Round(100*time.Microsecond).String(),
					fmt.Sprintf("%.0f pkts", fs.MeanQueueOccupancy.Packets()))
			}
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return fail(err)
		}
		if len(st.Links) > 1 {
			for _, ls := range st.Links {
				fmt.Printf("link %s: utilization %.1f%%, mean queue delay %v, drops %d\n",
					ls.Name, 100*ls.Utilization, ls.MeanQueueDelay.Round(100*time.Microsecond), ls.Drops)
			}
		} else {
			fmt.Printf("link: utilization %.1f%%, mean queue delay %v, drops %d\n",
				100*st.Link.Utilization, st.Link.MeanQueueDelay.Round(100*time.Microsecond), st.Link.Drops)
		}
	}
	fmt.Printf("(%d runs in %v wall time, %d cache hits", *runs, elapsed.Round(time.Millisecond), cache.Hits())
	if *resumePath != "" {
		fmt.Printf(", %d journal hits", journal.Hits())
	}
	fmt.Println(")")
	return auditVerdict(audit)
}

// buildSpec assembles the run's scenario: from the -scenario JSON file when
// given (validated on load), otherwise from the topology flags — one flow
// group per -flows entry, all at the base RTT.
func buildSpec(path string, capMbps, rttMs, bufBDP float64, flows string,
	duration, jitter, ackJitter time.Duration) (scenario.Spec, error) {
	if path != "" {
		return scenario.Load(path)
	}
	capacity := units.Rate(capMbps) * units.Mbps
	rtt := time.Duration(rttMs * float64(time.Millisecond))
	groups, err := scenario.ParseGroups(flows, rtt)
	if err != nil {
		return scenario.Spec{}, err
	}
	sp := scenario.Spec{
		Capacity:    capacity,
		Buffer:      units.BufferBytes(capacity, rtt, bufBDP),
		AckJitter:   ackJitter,
		StartJitter: jitter,
		Duration:    duration,
		Groups:      groups,
	}
	if err := sp.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// report explains a replicate failure: an interrupt exits 130, a failing
// replicate is named by its canonical scenario key, a captured panic
// includes its stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "bbrsim: interrupted; completed replicates cached (rerun with -resume to continue)")
		return 130
	}
	var st *runner.StallError
	if errors.As(err, &st) {
		fmt.Fprintln(os.Stderr, "bbrsim:", err)
		fmt.Fprintln(os.Stderr, "bbrsim: raise -timeout or add -retries if the run was merely slow")
		return 1
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "bbrsim:", err)
		fmt.Fprintf(os.Stderr, "bbrsim: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// auditVerdict reports the -strict outcome.
func auditVerdict(audit *check.Auditor) int {
	if audit == nil {
		return 0
	}
	vs := audit.Violations()
	if len(vs) == 0 {
		fmt.Println("strict audit: all invariants held")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "bbrsim: strict: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "bbrsim: strict: %d invariant violation(s)\n", len(vs))
	return 1
}

// saveCache persists replicate results; deferred so it runs on every exit
// path, including errors and interrupts.
func saveCache(cache *runner.Cache) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "bbrsim: saving cache:", err)
	}
}

// stopProfile flushes and closes the -cpuprofile file; deferred alongside
// saveCache so every exit path leaves a readable profile.
func stopProfile(prof *runner.CPUProfile) {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "bbrsim:", err)
	}
}

// outcomeOf maps the process exit code to the run report's outcome field.
func outcomeOf(code int) string {
	switch {
	case code == 0:
		return "ok"
	case code == 130:
		return "interrupted"
	default:
		return "failed"
	}
}

// writeReport persists the -report JSON; deferred so interrupted and failed
// runs still leave a record.
func writeReport(path, outcome string, wall time.Duration,
	pool *runner.Pool, cache *runner.Cache, journal *runner.Journal, rec *telemetry.Recorder) {
	if err := telemetry.Collect("bbrsim", outcome, wall, pool, cache, journal, rec).Write(path); err != nil {
		fmt.Fprintln(os.Stderr, "bbrsim:", err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "bbrsim:", err)
	return 1
}
