// Command bbrsim runs one bottleneck simulation and prints per-flow and
// link statistics.
//
// Usage:
//
//	bbrsim -capacity 100 -rtt 40 -buffer 3 -flows bbr:2,cubic:3 -duration 60s
//
// The -flows specification is a comma-separated list of name:count pairs;
// names come from the algorithm registry (cubic, reno, bbr, bbrv2, copa,
// vivace). -buffer is in multiples of the BDP computed from -capacity and
// -rtt.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/netsim"
	"bbrnash/internal/plot"
	"bbrnash/internal/rng"
	"bbrnash/internal/units"
)

func main() {
	var (
		capMbps  = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs    = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP   = flag.Float64("buffer", 3, "buffer size in BDP multiples")
		flows    = flag.String("flows", "bbr:1,cubic:1", "flow spec: name:count[,name:count...]")
		duration = flag.Duration("duration", 2*time.Minute, "flow duration")
		seed     = flag.Uint64("seed", 1, "start-jitter seed")
		jitter   = flag.Duration("jitter", 10*time.Millisecond, "max random start offset")
	)
	flag.Parse()

	capacity := units.Rate(*capMbps) * units.Mbps
	rtt := time.Duration(*rttMs * float64(time.Millisecond))
	buffer := units.BufferBytes(capacity, rtt, *bufBDP)

	n, err := netsim.New(netsim.Config{Capacity: capacity, Buffer: buffer})
	if err != nil {
		fatal(err)
	}
	specs, err := exp.ParseFlowSpec(*flows)
	if err != nil {
		fatal(err)
	}
	r := rng.New(*seed)
	var all []*netsim.Flow
	for _, spec := range specs {
		for i := 0; i < spec.Count; i++ {
			f, err := n.AddFlow(netsim.FlowConfig{
				Name:      fmt.Sprintf("%s%d", spec.Name, i),
				RTT:       rtt,
				Start:     r.Duration(*jitter),
				Algorithm: spec.Ctor,
			})
			if err != nil {
				fatal(err)
			}
			all = append(all, f)
		}
	}

	start := time.Now()
	n.Run(*duration)
	elapsed := time.Since(start)

	fmt.Printf("bottleneck: %v, buffer %v (%.1f BDP), base RTT %v, %d flows, %v simulated\n",
		capacity, buffer, *bufBDP, rtt, len(all), *duration)

	tbl := &plot.Table{Header: []string{"flow", "algorithm", "throughput", "lost", "meanRTT", "avgQueue"}}
	for _, f := range all {
		st := f.Stats()
		tbl.AddRow(st.Name, st.Algorithm,
			fmt.Sprintf("%.2f Mbps", st.Throughput.Mbit()),
			strconv.Itoa(st.Lost),
			st.MeanRTT.Round(100*time.Microsecond).String(),
			fmt.Sprintf("%.0f pkts", st.MeanQueueOccupancy.Packets()))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
	link := n.Link()
	fmt.Printf("link: utilization %.1f%%, mean queue delay %v, drops %d\n",
		100*link.Utilization, link.MeanQueueDelay.Round(100*time.Microsecond), link.Drops)
	fmt.Printf("(%d events in %v wall time)\n", n.Events(), elapsed.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bbrsim:", err)
	os.Exit(1)
}
