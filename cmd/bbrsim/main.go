// Command bbrsim runs one bottleneck simulation and prints per-flow and
// link statistics.
//
// Usage:
//
//	bbrsim -capacity 100 -rtt 40 -buffer 3 -flows bbr:2,cubic:3 -duration 60s
//	bbrsim -flows bbr:5,cubic:5 -runs 8 -workers 4 -cache results.json -strict
//
// The -flows specification is a comma-separated list of name:count pairs;
// names come from the algorithm registry (cubic, reno, bbr, bbrv2, copa,
// vivace). -buffer is in multiples of the BDP computed from -capacity and
// -rtt. With -runs > 1, replicates with distinct start-jitter seeds
// (pre-derived from -seed) fan out across -workers cores and are reported
// in run order; -cache memoizes each replicate's statistics on disk.
//
// SIGINT/SIGTERM cancel remaining replicates (in-flight runs drain) and
// the cache is saved on every exit path. -strict audits every replicate's
// statistics against physical invariants and fails the run on violation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/exp"
	"bbrnash/internal/netsim"
	"bbrnash/internal/plot"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// runStats is one replicate's cacheable outcome: everything the report
// prints, as plain JSON-safe statistics.
type runStats struct {
	Seed  uint64
	Flows []netsim.FlowStats
	Link  netsim.LinkStats
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		capMbps    = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs      = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP     = flag.Float64("buffer", 3, "buffer size in BDP multiples")
		flows      = flag.String("flows", "bbr:1,cubic:1", "flow spec: name:count[,name:count...]")
		duration   = flag.Duration("duration", 2*time.Minute, "flow duration")
		seed       = flag.Uint64("seed", 1, "start-jitter seed (base seed with -runs > 1)")
		jitter     = flag.Duration("jitter", 10*time.Millisecond, "max random start offset")
		runs       = flag.Int("runs", 1, "number of replicate runs with distinct derived seeds")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = no caching)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		strict     = flag.Bool("strict", false, "audit replicate statistics against physical invariants; violations fail the run")
	)
	flag.Parse()

	capacity := units.Rate(*capMbps) * units.Mbps
	rtt := time.Duration(*rttMs * float64(time.Millisecond))
	buffer := units.BufferBytes(capacity, rtt, *bufBDP)

	specs, err := exp.ParseFlowSpec(*flows)
	if err != nil {
		return fail(err)
	}
	if *runs < 1 {
		*runs = 1
	}
	if *cpuProfile != "" {
		stopProfile, err := runner.StartCPUProfile(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer stopProfile()
	}
	cache, err := runner.OpenCache(*cachePath)
	if err != nil {
		return fail(err)
	}
	var audit *check.Auditor
	if *strict {
		audit = check.New()
	}

	// SIGINT/SIGTERM cancel remaining replicates; the deferred save still
	// persists every replicate that completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer saveCache(cache, *cachePath)

	// Pre-derive every replicate's seed before any run starts, so the
	// seed→run assignment is independent of worker count. A single run
	// keeps -seed verbatim for compatibility with older invocations.
	seeds := make([]uint64, *runs)
	seeds[0] = *seed
	r := rng.New(*seed)
	for i := 1; i < *runs; i++ {
		seeds[i] = r.Uint64()
	}

	// Audit bounds: the conservation slack is one pipe-full (buffer plus
	// the jittered path's BDP).
	limits := check.Limits{
		Capacity: capacity,
		Buffer:   buffer,
		Pipe:     buffer + units.BDP(capacity, rtt+*jitter),
	}

	runOne := func(runSeed uint64) (runStats, error) {
		key := fmt.Sprintf("bbrsim|v1|cap=%v|buf=%d|mss=%d|rtt=%d|dur=%d|j=%d|flows=%s|seed=%d",
			float64(capacity), int64(buffer), int64(units.MSS), int64(rtt),
			int64(*duration), int64(*jitter), *flows, runSeed)
		return runner.Protect(key, func() (runStats, error) {
			var st runStats
			if cache.Get(key, &st) {
				audit.Record(check.Flows(key, limits, st.Flows, &st.Link)...)
				return st, nil
			}
			n, err := netsim.New(netsim.Config{Capacity: capacity, Buffer: buffer})
			if err != nil {
				return runStats{}, err
			}
			jr := rng.New(runSeed)
			var all []*netsim.Flow
			for _, spec := range specs {
				for i := 0; i < spec.Count; i++ {
					f, err := n.AddFlow(netsim.FlowConfig{
						Name:      fmt.Sprintf("%s%d", spec.Name, i),
						RTT:       rtt,
						Start:     jr.Duration(*jitter),
						Algorithm: spec.Ctor,
					})
					if err != nil {
						return runStats{}, err
					}
					all = append(all, f)
				}
			}
			n.Run(*duration)
			st = runStats{Seed: runSeed, Link: n.Link()}
			for _, f := range all {
				st.Flows = append(st.Flows, f.Stats())
			}
			cache.Put(key, st)
			audit.Record(check.Flows(key, limits, st.Flows, &st.Link)...)
			return st, nil
		})
	}

	pool := runner.NewPool(*workers)
	start := time.Now()
	results, err := runner.MapCtx(ctx, pool, *runs, func(_ context.Context, i int) (runStats, error) {
		return runOne(seeds[i])
	})
	if err != nil {
		return report(ctx, err)
	}
	elapsed := time.Since(start)

	numFlows := 0
	for _, spec := range specs {
		numFlows += spec.Count
	}
	fmt.Printf("bottleneck: %v, buffer %v (%.1f BDP), base RTT %v, %d flows, %v simulated",
		capacity, buffer, *bufBDP, rtt, numFlows, *duration)
	if *runs > 1 {
		fmt.Printf(" x %d runs (%d workers)", *runs, pool.Workers())
	}
	fmt.Println()

	for i, st := range results {
		if *runs > 1 {
			fmt.Printf("--- run %d (seed %d)\n", i+1, st.Seed)
		}
		tbl := &plot.Table{Header: []string{"flow", "algorithm", "throughput", "lost", "meanRTT", "avgQueue"}}
		for _, fs := range st.Flows {
			tbl.AddRow(fs.Name, fs.Algorithm,
				fmt.Sprintf("%.2f Mbps", fs.Throughput.Mbit()),
				strconv.Itoa(fs.Lost),
				fs.MeanRTT.Round(100*time.Microsecond).String(),
				fmt.Sprintf("%.0f pkts", fs.MeanQueueOccupancy.Packets()))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return fail(err)
		}
		fmt.Printf("link: utilization %.1f%%, mean queue delay %v, drops %d\n",
			100*st.Link.Utilization, st.Link.MeanQueueDelay.Round(100*time.Microsecond), st.Link.Drops)
	}
	fmt.Printf("(%d runs in %v wall time, %d cache hits)\n", *runs, elapsed.Round(time.Millisecond), cache.Hits())
	return auditVerdict(audit)
}

// report explains a replicate failure: an interrupt exits 130, a failing
// replicate is named by its canonical key, a captured panic includes its
// stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "bbrsim: interrupted; completed replicates cached")
		return 130
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "bbrsim:", err)
		fmt.Fprintf(os.Stderr, "bbrsim: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// auditVerdict reports the -strict outcome.
func auditVerdict(audit *check.Auditor) int {
	if audit == nil {
		return 0
	}
	vs := audit.Violations()
	if len(vs) == 0 {
		fmt.Println("strict audit: all invariants held")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "bbrsim: strict: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "bbrsim: strict: %d invariant violation(s)\n", len(vs))
	return 1
}

// saveCache persists replicate results; deferred so it runs on every exit
// path, including errors and interrupts.
func saveCache(cache *runner.Cache, path string) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "bbrsim: saving cache:", err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "bbrsim:", err)
	return 1
}
