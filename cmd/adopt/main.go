// Command adopt runs deterministic evolutionary dynamics over a
// population of congestion-control deployments: does a seeded mix of
// CUBIC, Reno and BBR converge toward BBR dominance, a stable
// coexistence, or something else, at this bottleneck?
//
// Usage:
//
//	adopt -capacity 100 -buffer 5 -agents 100000 -generations 100
//	adopt -algs cubic,bbr -shares 0.9,0.1 -dynamics bestresponse -noise 0.02
//	adopt -rtts 20,80 -class-weights 1,1 -out trajectory.jsonl -workers 8
//
// The trajectory is written as JSONL (one record per generation, see
// internal/adopt.Record) to -out or stdout, streamed as generations
// complete. Payoff simulations run on the fluid backend by default and
// are memoized in -cache / journaled in -resume: rerunning with the same
// journal replays the trajectory byte-identically without re-simulating,
// even after a crash. The trajectory is byte-identical at any -workers
// count. SIGINT/SIGTERM cancel the run gracefully; the cache is saved on
// every exit path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bbrnash/internal/adopt"
	"bbrnash/internal/check"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		capMbps     = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		bufBDP      = flag.Float64("buffer", 5, "buffer size in BDP multiples of the largest class RTT")
		rttsF       = flag.String("rtts", "40", "comma-separated RTT class list in milliseconds")
		weightsF    = flag.String("class-weights", "", "comma-separated class population weights ('' = uniform)")
		algsF       = flag.String("algs", "cubic,reno,bbr", "comma-separated strategy set (cc registry names)")
		sharesF     = flag.String("shares", "", "comma-separated initial algorithm shares ('' = uniform)")
		agents      = flag.Int("agents", 10000, "population size")
		generations = flag.Int("generations", 100, "revision generations")
		dynamicsF   = flag.String("dynamics", adopt.Replicator, "revision rule: replicator or bestresponse")
		noise       = flag.Float64("noise", 0, "mutation/exploration rate in [0,1]")
		revise      = flag.Float64("revise", 1, "best response: per-agent revision probability")
		simFlows    = flag.Int("simflows", 20, "flow count the population is scaled to per payoff simulation")
		durF        = flag.Duration("duration", 0, "payoff simulation length (0 = harness default; floored to the NE payoff duration)")
		seed        = flag.Uint64("seed", 1, "master seed: payoff jitter and revision draws")
		backendF    = flag.String("backend", scenario.BackendFluid, "payoff engine: fluid or packet")
		workers     = flag.Int("workers", 0, "parallel workers for the fixed-point check (0 = GOMAXPROCS); never changes the trajectory")
		cachePath   = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		resumePath  = flag.String("resume", "", "path to crash-safe resume journal: rerunning replays completed payoff simulations byte-identically ('' = no journal)")
		timeout     = flag.Duration("timeout", 0, "per-simulation stall watchdog (0 = off)")
		retries     = flag.Int("retries", 0, "retry a stalled or transiently failed simulation up to this many times")
		strict      = flag.Bool("strict", false, "audit every payoff simulation against physical invariants; violations fail the run")
		traceDir    = flag.String("trace", "", "write per-payoff-simulation run traces into this directory ('' = no tracing)")
		traceEvery  = flag.Duration("trace-interval", 0, "trace sampling interval (0 = default 100ms)")
		reportPath  = flag.String("report", "", "write a machine-readable JSON run report to this file on exit ('' = no report)")
		outPath     = flag.String("out", "", "write the JSONL trajectory to this file ('' = stdout)")
		progress    = flag.Bool("progress", false, "print a per-generation summary line to stderr")
		noCheck     = flag.Bool("no-check", false, "skip the final fixed-point equilibrium check")
		listAlgs    = flag.Bool("list-algorithms", false, "print the algorithm registry and exit")
	)
	flag.Parse()

	if *listAlgs {
		fmt.Println(strings.Join(scenario.Algorithms(), "\n"))
		return 0
	}

	rtts, err := parseFloats(*rttsF)
	if err != nil {
		return fail(fmt.Errorf("-rtts: %w", err))
	}
	weights := make([]float64, len(rtts))
	for i := range weights {
		weights[i] = 1
	}
	if *weightsF != "" {
		if weights, err = parseFloats(*weightsF); err != nil {
			return fail(fmt.Errorf("-class-weights: %w", err))
		}
		if len(weights) != len(rtts) {
			return fail(fmt.Errorf("%d class weights for %d RTT classes", len(weights), len(rtts)))
		}
	}
	classes := make([]adopt.Class, len(rtts))
	maxRTT := time.Duration(0)
	for i, ms := range rtts {
		classes[i] = adopt.Class{RTT: time.Duration(ms * float64(time.Millisecond)), Weight: weights[i]}
		if classes[i].RTT > maxRTT {
			maxRTT = classes[i].RTT
		}
	}
	algs := strings.Split(*algsF, ",")
	var shares []float64
	if *sharesF != "" {
		if shares, err = parseFloats(*sharesF); err != nil {
			return fail(fmt.Errorf("-shares: %w", err))
		}
	}
	capacity := units.Rate(*capMbps) * units.Mbps
	buffer := units.BufferBytes(capacity, maxRTT, *bufBDP)

	// The -report defer is registered before any component is built and
	// reads the (nil-safe) components at exit, so interrupted and failed
	// runs still leave a machine-readable record.
	var (
		rec     *telemetry.Recorder
		cache   *runner.Cache
		journal *runner.Journal
		pool    *runner.Pool
	)
	begin := time.Now()
	if *reportPath != "" {
		defer func() {
			if err := telemetry.Collect("adopt", outcomeOf(code), time.Since(begin),
				pool, cache, journal, rec).Write(*reportPath); err != nil {
				fmt.Fprintln(os.Stderr, "adopt:", err)
			}
		}()
	}
	if *traceDir != "" {
		if rec, err = telemetry.NewRecorder(*traceDir); err != nil {
			return fail(err)
		}
		rec.SetInterval(*traceEvery)
	}
	pool = runner.NewPool(*workers).SetWatchdog(*timeout).SetRetry(*retries, time.Second)
	cache, err = runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	journal, err = runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()
	var audit *check.Auditor
	if *strict {
		audit = check.New()
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		out = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer saveCache(cache, *cachePath)

	res, err := adopt.Run(adopt.Config{
		Capacity:    capacity,
		Buffer:      buffer,
		Classes:     classes,
		Algorithms:  algs,
		Shares:      shares,
		Agents:      *agents,
		Generations: *generations,
		Dynamics:    *dynamicsF,
		Noise:       *noise,
		ReviseProb:  *revise,
		SimFlows:    *simFlows,
		Duration:    *durF,
		Seed:        *seed,
		Backend:     *backendF,
		SkipCheck:   *noCheck,
		Pool:        pool,
		Cache:       cache,
		Journal:     journal,
		Ctx:         ctx,
		Audit:       audit,
		Trace:       rec,
		OnRecord: func(r adopt.Record) {
			if err := adopt.WriteJSONL(out, []adopt.Record{r}); err != nil {
				fmt.Fprintln(os.Stderr, "adopt:", err)
			}
			if *progress {
				fmt.Fprintf(os.Stderr, "adopt: generation %d/%d mean payoff %.3f Mbps\n",
					r.Generation, *generations, r.MeanPayoffMbps)
			}
		},
	})
	if err != nil {
		return report(ctx, err)
	}

	fmt.Fprintf(os.Stderr, "adopt: %d agents, %d generations in %v (%d simulations, %d cache hits)\n",
		*agents, *generations, time.Since(begin).Round(time.Millisecond), res.Simulations, res.CacheHits)
	final := res.Trajectory[len(res.Trajectory)-1]
	for _, st := range final.Classes {
		parts := make([]string, 0, len(algs))
		for _, a := range algs {
			parts = append(parts, fmt.Sprintf("%s %.1f%%", a, 100*st.Shares[a]))
		}
		fmt.Fprintf(os.Stderr, "adopt: class %gms final shares: %s\n", st.RTTMs, strings.Join(parts, ", "))
	}
	if !*noCheck {
		fmt.Fprintf(os.Stderr, "adopt: fixed point (per-class eps-equilibrium): %v\n", res.FixedPoint)
	}
	return auditVerdict(audit)
}

// report explains a run failure: an interrupt exits 130, a failing payoff
// simulation is named by canonical scenario key, and a captured panic
// includes its stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "adopt: interrupted; cache saved (rerun with -resume to replay completed simulations)")
		return 130
	}
	var st *runner.StallError
	if errors.As(err, &st) {
		fmt.Fprintln(os.Stderr, "adopt:", err)
		fmt.Fprintln(os.Stderr, "adopt: raise -timeout or add -retries if the simulation was merely slow")
		return 1
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "adopt:", err)
		fmt.Fprintf(os.Stderr, "adopt: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// auditVerdict reports the -strict outcome.
func auditVerdict(audit *check.Auditor) int {
	if audit == nil {
		return 0
	}
	vs := audit.Violations()
	if len(vs) == 0 {
		fmt.Fprintln(os.Stderr, "adopt: strict audit: all invariants held")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "adopt: strict: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "adopt: strict: %d invariant violation(s)\n", len(vs))
	return 1
}

// saveCache persists the memoized payoffs; deferred so it runs on every
// exit path, including errors and interrupts.
func saveCache(cache *runner.Cache, path string) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "adopt: saving cache:", err)
		return
	}
	if path != "" && cache.Misses() > 0 {
		fmt.Fprintf(os.Stderr, "adopt: cache saved to %s (%d entries)\n", path, cache.Len())
	}
}

// outcomeOf maps the process exit code to the run report's outcome field.
func outcomeOf(code int) string {
	switch {
	case code == 0:
		return "ok"
	case code == 130:
		return "interrupted"
	default:
		return "failed"
	}
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "adopt:", err)
	return 1
}
