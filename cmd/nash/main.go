// Command nash predicts and (optionally) empirically verifies the Nash
// Equilibrium distribution of CUBIC and a competing algorithm at one
// bottleneck.
//
// Usage:
//
//	nash -capacity 100 -rtt 40 -buffer 5 -n 20 -alg bbr -verify -scale quick
//	nash -n 30 -verify -workers 8 -cache results.json
//
// With -verify, the payoff-table simulations fan out across -workers
// cores and memoize per-scenario results in -cache; neither affects the
// equilibria found (see DESIGN.md, "Parallel execution & determinism").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bbrnash/internal/core"
	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

func main() {
	var (
		capMbps    = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs      = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP     = flag.Float64("buffer", 5, "buffer size in BDP multiples")
		n          = flag.Int("n", 20, "total number of flows")
		alg        = flag.String("alg", "bbr", "non-CUBIC algorithm")
		verify     = flag.Bool("verify", false, "also search for the equilibrium empirically (simulations)")
		scaleN     = flag.String("scale", "quick", "verification scale: full, quick or smoke")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	capacity := units.Rate(*capMbps) * units.Mbps
	rtt := time.Duration(*rttMs * float64(time.Millisecond))
	buffer := units.BufferBytes(capacity, rtt, *bufBDP)

	region, err := core.PredictNashRegion(core.NashScenario{
		Capacity: capacity, Buffer: buffer, RTT: rtt, N: *n,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model (for BBR): equilibrium at %.1f to %.1f CUBIC flows of %d (buffer %.1f BDP)\n",
		region.CubicLow(), region.CubicHigh(), *n, *bufBDP)

	if !*verify {
		return
	}
	if *cpuProfile != "" {
		stop, err := runner.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	scale, err := exp.ScaleByName(*scaleN)
	if err != nil {
		fatal(err)
	}
	ctor, err := exp.AlgorithmByName(*alg)
	if err != nil {
		fatal(err)
	}
	pool := runner.NewPool(*workers)
	cache, err := runner.OpenCache(*cachePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verifying empirically with %s flows (%s scale, %d trials, %d workers)...\n",
		*alg, scale.Name, scale.Trials, pool.Workers())
	start := time.Now()
	for trial := 0; trial < scale.Trials; trial++ {
		res, err := exp.FindNE(exp.NESearchConfig{
			Capacity: capacity, Buffer: buffer, RTT: rtt, N: *n,
			Duration: scale.FlowDuration, Seed: uint64(trial+1) * 1e6,
			X: ctor, Exhaustive: scale.Exhaustive,
			Pool: pool, Cache: cache,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trial %d: equilibria at", trial+1)
		for _, k := range res.EquilibriaX {
			fmt.Printf(" %d CUBIC/%d %s", *n-k, k, *alg)
		}
		fmt.Printf(" (%d simulations, %d cache hits)\n", res.Simulations, res.CacheHits)
	}
	fmt.Printf("verified in %v\n", time.Since(start).Round(time.Millisecond))
	if err := cache.Save(); err != nil {
		fatal(err)
	}
	if *cachePath != "" && cache.Misses() > 0 {
		fmt.Printf("cache saved to %s (%d entries)\n", *cachePath, cache.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nash:", err)
	os.Exit(1)
}
