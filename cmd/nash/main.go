// Command nash predicts and (optionally) empirically verifies the Nash
// Equilibrium distribution of CUBIC and a competing algorithm at one
// bottleneck.
//
// Usage:
//
//	nash -capacity 100 -rtt 40 -buffer 5 -n 20 -alg bbr -verify -scale quick
//	nash -n 30 -verify -workers 8 -cache results.json -strict
//
// With -verify, the payoff-table simulations fan out across -workers
// cores and memoize per-scenario results in -cache; neither affects the
// equilibria found (see DESIGN.md, "Parallel execution & determinism").
// SIGINT/SIGTERM cancel the search gracefully — in-flight simulations
// drain and the cache is saved on every exit path, so an interrupted
// exhaustive scan keeps its warmed payoff table. -strict audits every
// payoff simulation against physical invariants and fails the run on any
// violation.
//
// -resume names a crash-safe journal of completed payoff simulations:
// rerunning the same search with the same journal skips them, even after
// a crash or SIGKILL that lost the in-memory cache. -timeout arms a
// per-simulation stall watchdog and -retries retries stalled or
// transiently failed units; retries re-derive the same seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/core"
	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		capMbps    = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs      = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP     = flag.Float64("buffer", 5, "buffer size in BDP multiples")
		n          = flag.Int("n", 20, "total number of flows")
		alg        = flag.String("alg", "bbr", "non-CUBIC algorithm")
		verify     = flag.Bool("verify", false, "also search for the equilibrium empirically (simulations)")
		scaleN     = flag.String("scale", "quick", "verification scale: full, quick or smoke")
		backendF   = flag.String("backend", "", "execution engine for payoff simulations: packet or fluid ('' = packet)")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		resumePath = flag.String("resume", "", "path to crash-safe resume journal; an existing journal's completed payoff simulations are skipped ('' = no journal)")
		timeout    = flag.Duration("timeout", 0, "per-simulation stall watchdog: cancel a payoff unit making no progress for this long (0 = off)")
		retries    = flag.Int("retries", 0, "retry a stalled or transiently failed simulation up to this many times (retries re-derive the same seed)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		strict     = flag.Bool("strict", false, "audit every payoff simulation against physical invariants; violations fail the run")
		traceDir   = flag.String("trace", "", "write per-payoff-simulation run traces (JSONL + CSV time series and events) into this directory ('' = no tracing; needs -verify)")
		traceEvery = flag.Duration("trace-interval", 0, "trace sampling interval (0 = default 100ms)")
		reportPath = flag.String("report", "", "write a machine-readable JSON run report to this file on exit ('' = no report; needs -verify)")
		progress   = flag.Duration("progress", 0, "print a progress line to stderr this often during verification (0 = off)")
		listAlgs   = flag.Bool("list-algorithms", false, "print the algorithm registry and exit")
	)
	flag.Parse()

	if *listAlgs {
		fmt.Println(strings.Join(scenario.Algorithms(), "\n"))
		return 0
	}

	capacity := units.Rate(*capMbps) * units.Mbps
	rtt := time.Duration(*rttMs * float64(time.Millisecond))
	buffer := units.BufferBytes(capacity, rtt, *bufBDP)

	region, err := core.PredictNashRegion(core.NashScenario{
		Capacity: capacity, Buffer: buffer, RTT: rtt, N: *n,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Printf("model (for BBR): equilibrium at %.1f to %.1f CUBIC flows of %d (buffer %.1f BDP)\n",
		region.CubicLow(), region.CubicHigh(), *n, *bufBDP)

	if !*verify {
		return 0
	}
	// The -report defer is registered before any component is built and
	// reads the (nil-safe) components at exit, so interrupted and failed
	// searches still leave a machine-readable record.
	var (
		rec     *telemetry.Recorder
		cache   *runner.Cache
		journal *runner.Journal
		pool    *runner.Pool
	)
	begin := time.Now()
	if *reportPath != "" {
		defer func() {
			if err := telemetry.Collect("nash", outcomeOf(code), time.Since(begin),
				pool, cache, journal, rec).Write(*reportPath); err != nil {
				fmt.Fprintln(os.Stderr, "nash:", err)
			}
		}()
	}
	if *traceDir != "" {
		if rec, err = telemetry.NewRecorder(*traceDir); err != nil {
			return fail(err)
		}
		rec.SetInterval(*traceEvery)
	}
	var prof *runner.CPUProfile
	if *cpuProfile != "" {
		if prof, err = runner.StartCPUProfile(*cpuProfile); err != nil {
			return fail(err)
		}
	}
	// Stop the profile through the same deferred single-exit cleanup that
	// saves the cache: an exit path that skips it (audit failure, interrupt)
	// would leave a truncated profile.
	defer stopProfile(prof)
	scale, err := exp.ScaleByName(*scaleN)
	if err != nil {
		return fail(err)
	}
	if *backendF != "" {
		if err := validBackend(*backendF); err != nil {
			return fail(err)
		}
	}
	ctor, err := cc.AlgorithmByName(*alg)
	if err != nil {
		return fail(err)
	}
	pool = runner.NewPool(*workers).SetWatchdog(*timeout).SetRetry(*retries, time.Second)
	if *progress > 0 {
		pool.SetProgress(*progress, func(p runner.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "nash: %d/%d payoff simulations in %v (%d retries, %d stalls)\n",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.Retries, p.Stalls)
		})
	}
	cache, err = runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	journal, err = runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()
	var audit *check.Auditor
	if *strict {
		audit = check.New()
	}

	// SIGINT/SIGTERM cancel the search; the deferred save still persists
	// every payoff simulated so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer saveCache(cache, *cachePath)

	fmt.Printf("verifying empirically with %s flows (%s scale, %d trials, %d workers)...\n",
		*alg, scale.Name, scale.Trials, pool.Workers())
	start := time.Now()
	for trial := 0; trial < scale.Trials; trial++ {
		res, err := exp.FindNE(exp.NESearchConfig{
			Capacity: capacity, Buffer: buffer, RTT: rtt, N: *n,
			Duration: scale.FlowDuration, Seed: uint64(trial+1) * 1e6,
			X: ctor, Exhaustive: scale.Exhaustive, Backend: *backendF,
			Pool: pool, Cache: cache, Journal: journal, Ctx: ctx, Audit: audit, Trace: rec,
		})
		if err != nil {
			return report(ctx, fmt.Errorf("trial %d: %w", trial+1, err))
		}
		fmt.Printf("trial %d: equilibria at", trial+1)
		for _, k := range res.EquilibriaX {
			fmt.Printf(" %d CUBIC/%d %s", *n-k, k, *alg)
		}
		fmt.Printf(" (%d simulations, %d cache hits)\n", res.Simulations, res.CacheHits)
	}
	fmt.Printf("verified in %v\n", time.Since(start).Round(time.Millisecond))
	return auditVerdict(audit)
}

// report explains a search failure: an interrupt exits 130, a failing
// payoff simulation is named by canonical scenario key, and a captured
// panic includes its stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "nash: interrupted; in-flight simulations drained, cache saved (rerun with -resume to skip completed simulations)")
		return 130
	}
	var st *runner.StallError
	if errors.As(err, &st) {
		fmt.Fprintln(os.Stderr, "nash:", err)
		fmt.Fprintln(os.Stderr, "nash: raise -timeout or add -retries if the simulation was merely slow")
		return 1
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "nash:", err)
		fmt.Fprintf(os.Stderr, "nash: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// auditVerdict reports the -strict outcome.
func auditVerdict(audit *check.Auditor) int {
	if audit == nil {
		return 0
	}
	vs := audit.Violations()
	if len(vs) == 0 {
		fmt.Println("strict audit: all invariants held")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "nash: strict: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "nash: strict: %d invariant violation(s)\n", len(vs))
	return 1
}

// saveCache persists the memoized payoffs; deferred so it runs on every
// exit path, including errors and interrupts.
func saveCache(cache *runner.Cache, path string) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "nash: saving cache:", err)
		return
	}
	if path != "" && cache.Misses() > 0 {
		fmt.Printf("cache saved to %s (%d entries)\n", path, cache.Len())
	}
}

// stopProfile flushes and closes the -cpuprofile file; deferred alongside
// saveCache so every exit path leaves a readable profile.
func stopProfile(prof *runner.CPUProfile) {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "nash:", err)
	}
}

// outcomeOf maps the process exit code to the run report's outcome field.
func outcomeOf(code int) string {
	switch {
	case code == 0:
		return "ok"
	case code == 130:
		return "interrupted"
	default:
		return "failed"
	}
}

// validBackend rejects a -backend value that names no execution engine.
func validBackend(name string) error {
	for _, b := range scenario.Backends() {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (want %s)", name, strings.Join(scenario.Backends(), " or "))
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "nash:", err)
	return 1
}
