// Command bbrserve runs the sweep service: a long-lived HTTP API over the
// simulation harness that memoizes by canonical scenario key, coalesces
// duplicate submissions, sheds overload, and survives crashes.
//
// Usage:
//
//	bbrserve -addr 127.0.0.1:8080 -cache results.json -resume journal.jsonl
//	bbrserve -addr 127.0.0.1:0 -workers 4 -queue 64 -timeout 30s -retries 2
//
// Submit a scenario:
//
//	curl -d @examples/mix-3bbr-2cubic.json localhost:8080/run
//
// The service answers a repeated spec from the cache without re-simulating,
// runs at most one simulation per canonical key no matter how many clients
// submit it concurrently, and answers every one of them with the same
// bytes. A full queue sheds submissions with 429 + Retry-After instead of
// growing without bound.
//
// -resume makes the service crash-safe: completed runs are journaled and
// fsynced before clients are answered, so a kill -9 loses only in-flight
// work. Restarting with the same flags replays the journal and resubmitted
// specs are answered byte-identically without re-simulating
// (scripts/serve_smoke.sh proves this end to end). The advisory store lock
// makes a second bbrserve on the same cache or journal fail loudly at
// startup instead of corrupting it.
//
// SIGINT/SIGTERM drain gracefully: admission stops (readyz turns 503),
// in-flight runs finish and journal, queued submissions are failed so no
// client hangs, and the cache is persisted. -drain-timeout bounds the
// drain; past it, in-flight runs are hard-cancelled (their journaled
// predecessors stay durable). The actual listen address is printed on
// startup — with -addr :0 the kernel picks a free port — and /healthz,
// /readyz and /stats expose liveness, readiness and the full counter set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/serve"
	"bbrnash/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the actual address is printed)")
		cachePath    = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		resumePath   = flag.String("resume", "", "path to crash-safe resume journal ('' = no crash recovery)")
		traceDir     = flag.String("trace", "", "write per-run traces (JSONL + CSV) into this directory ('' = no tracing)")
		traceEvery   = flag.Duration("trace-interval", 0, "trace sampling interval (0 = default 100ms)")
		workers      = flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "submission queue depth; a full queue sheds with 429 (0 = 256)")
		timeout      = flag.Duration("timeout", 0, "per-run stall watchdog: cancel a run making no progress for this long (0 = off)")
		retries      = flag.Int("retries", 0, "retry a stalled or transiently failed run up to this many times")
		deadline     = flag.Duration("deadline", 0, "how long one request waits for its result before 504 (0 = 2m; the run continues)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM; past it in-flight runs are cancelled")
		strict       = flag.Bool("strict", false, "audit every result against physical invariants; violations fail the submission")
		reportPath   = flag.String("report", "", "write a machine-readable JSON service report on exit ('' = no report)")
	)
	flag.Parse()

	var (
		rec     *telemetry.Recorder
		cache   *runner.Cache
		journal *runner.Journal
		srv     *serve.Server
		err     error
	)
	begin := time.Now()
	if *reportPath != "" {
		defer func() {
			var pool *runner.Pool
			if srv != nil {
				pool = srv.Pool()
			}
			if err := telemetry.Collect("bbrserve", outcomeOf(code), time.Since(begin), pool, cache, journal, rec).Write(*reportPath); err != nil {
				fmt.Fprintln(os.Stderr, "bbrserve:", err)
			}
		}()
	}
	if *traceDir != "" {
		if rec, err = telemetry.NewRecorder(*traceDir); err != nil {
			return fail(err)
		}
		rec.SetInterval(*traceEvery)
	}
	cache, err = runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	journal, err = runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()
	defer saveCache(cache)
	var audit *check.Auditor
	if *strict {
		audit = check.New()
	}

	srv = serve.New(serve.Config{
		Cache:          cache,
		Journal:        journal,
		Recorder:       rec,
		Audit:          audit,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		Watchdog:       *timeout,
		Retries:        *retries,
		RequestTimeout: *deadline,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	// The actual address, so -addr :0 callers (tests, the smoke script) can
	// find the port. Printed to stdout and flushed before serving begins.
	fmt.Printf("bbrserve: listening on http://%s (%d replayed journal entries, %d cached results)\n",
		ln.Addr(), journal.Len(), cache.Len())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "bbrserve: draining")
	case err := <-serveErr:
		return fail(err)
	}

	// Graceful drain: stop accepting connections, finish (and journal) what
	// is in flight, answer or fail every waiter, then persist the cache via
	// the deferred save.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "bbrserve: http shutdown:", err)
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "bbrserve: drain cut short:", err)
		return 1
	}
	st := srv.Stats()
	fmt.Printf("bbrserve: drained (%d completed, %d failed, %d shed, %d worker restarts)\n",
		st.Completed, st.Failed, st.Shed, st.WorkerRestarts)
	return 0
}

// saveCache persists results; deferred so it runs on every exit path,
// including errors and interrupts.
func saveCache(cache *runner.Cache) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "bbrserve: saving cache:", err)
	}
}

// outcomeOf maps the process exit code to the service report's outcome.
func outcomeOf(code int) string {
	if code == 0 {
		return "ok"
	}
	return "failed"
}

func fail(err error) int {
	if errors.Is(err, runner.ErrStoreLocked) {
		fmt.Fprintln(os.Stderr, "bbrserve:", err)
		fmt.Fprintln(os.Stderr, "bbrserve: another process owns this store; point -cache/-resume elsewhere or stop it")
		return 1
	}
	fmt.Fprintln(os.Stderr, "bbrserve:", err)
	return 1
}
