// Command modelcalc evaluates the paper's analytical model (and the Ware
// et al. baseline) for one scenario, without running any simulation.
//
// Usage:
//
//	modelcalc -capacity 100 -rtt 40 -buffer 5 -ncubic 5 -nbbr 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bbrnash/internal/core"
	"bbrnash/internal/units"
)

func main() {
	var (
		capMbps = flag.Float64("capacity", 100, "bottleneck capacity in Mbps")
		rttMs   = flag.Float64("rtt", 40, "base RTT in milliseconds")
		bufBDP  = flag.Float64("buffer", 5, "buffer size in BDP multiples")
		nCubic  = flag.Int("ncubic", 1, "number of CUBIC flows")
		nBBR    = flag.Int("nbbr", 1, "number of BBR flows")
	)
	flag.Parse()

	capacity := units.Rate(*capMbps) * units.Mbps
	rtt := time.Duration(*rttMs * float64(time.Millisecond))
	buffer := units.BufferBytes(capacity, rtt, *bufBDP)
	s := core.Scenario{
		Capacity: capacity, Buffer: buffer, RTT: rtt,
		NumCubic: *nCubic, NumBBR: *nBBR,
	}

	fmt.Printf("scenario: %v link, %v base RTT, buffer %v = %.1f BDP, %d CUBIC vs %d BBR\n",
		capacity, rtt, buffer, s.BufferBDP(), s.NumCubic, s.NumBBR)

	iv, err := core.PredictInterval(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("regime: %v\n\n", iv.Sync.Regime)
	for _, p := range []core.Prediction{iv.Sync, iv.Desync} {
		fmt.Printf("%s bound:\n", p.Mode)
		fmt.Printf("  aggregate: BBR %.2f Mbps, CUBIC %.2f Mbps\n", p.AggBBR.Mbit(), p.AggCubic.Mbit())
		fmt.Printf("  per-flow:  BBR %.2f Mbps, CUBIC %.2f Mbps\n", p.PerBBR.Mbit(), p.PerCubic.Mbit())
		fmt.Printf("  BBR buffer share b_b = %.0f pkts, RTT+ = %v\n\n",
			p.BBRBuffer.Packets(), p.RTTPlus.Round(100*time.Microsecond))
	}

	if *nBBR >= 1 {
		wp, err := core.PredictWare(core.WareScenario{
			Capacity: capacity, Buffer: buffer, RTT: rtt, NumBBR: *nBBR, Duration: 2 * time.Minute,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ware et al. baseline: BBR %.2f Mbps aggregate (p = %.3f, probe time %v of 2m)\n\n",
			wp.AggBBR.Mbit(), wp.CubicFraction, wp.ProbeTime.Round(10*time.Millisecond))
	}

	n := *nCubic + *nBBR
	if n >= 2 {
		region, err := core.PredictNashRegion(core.NashScenario{
			Capacity: capacity, Buffer: buffer, RTT: rtt, N: n,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nash equilibrium for %d flows: %.1f to %.1f CUBIC flows\n",
			n, region.CubicLow(), region.CubicHigh())
		if region.Sync.AllBBR {
			fmt.Println("  (synchronized bound predicts an all-BBR equilibrium)")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelcalc:", err)
	os.Exit(1)
}
