// Command figures regenerates the paper's evaluation figures.
//
// Each figure is emitted as a CSV file (for external plotting) plus an
// ASCII chart and summary notes on stdout.
//
// Usage:
//
//	figures -fig all -scale quick -out ./figures
//	figures -fig 3a,3b -scale full
//	figures -list
//
// Scales: "full" is the paper's protocol (2-minute flows, 10 trials,
// exhaustive NE scans) and can take many hours on one core; "quick" keeps
// every figure's shape at a fraction of the cost; "smoke" is a fast sanity
// pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bbrnash/internal/exp"
)

func main() {
	var (
		figFlag   = flag.String("fig", "all", "comma-separated figure IDs (e.g. 1,3a,9f) or 'all'")
		scaleFlag = flag.String("scale", "quick", "experiment scale: full, quick or smoke")
		outFlag   = flag.String("out", "figures", "directory for CSV output ('' to skip CSVs)")
		listFlag  = flag.Bool("list", false, "list available figures and exit")
		width     = flag.Int("width", 72, "ASCII chart width")
		height    = flag.Int("height", 18, "ASCII chart height")
	)
	flag.Parse()

	if *listFlag {
		for _, f := range exp.Figures() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	scale, err := exp.ScaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	var figs []exp.Figure
	if *figFlag == "all" {
		figs = exp.Figures()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			f, err := exp.FigureByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, f := range figs {
		fmt.Printf("=== Figure %s: %s (scale %s)\n", f.ID, f.Title, scale.Name)
		start := time.Now()
		res, err := f.Generate(scale)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f.ID, err))
		}
		for i, chart := range res.Charts {
			fmt.Println(chart.RenderASCII(*width, *height))
			if *outFlag != "" {
				name := fmt.Sprintf("fig%s.csv", f.ID)
				if len(res.Charts) > 1 {
					name = fmt.Sprintf("fig%s_%d.csv", f.ID, i+1)
				}
				path := filepath.Join(*outFlag, name)
				file, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := chart.WriteCSV(file); err != nil {
					file.Close()
					fatal(err)
				}
				if err := file.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("note: %s\n", note)
		}
		fmt.Printf("figure %s done in %v\n\n", f.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
