// Command figures regenerates the paper's evaluation figures.
//
// Each figure is emitted as a CSV file (for external plotting) plus an
// ASCII chart and summary notes on stdout.
//
// Usage:
//
//	figures -fig all -scale quick -out ./figures
//	figures -fig 3a,3b -scale full -workers 8
//	figures -fig 9a -scale full -cache results.json -strict
//	figures -list
//
// Scales: "full" is the paper's protocol (2-minute flows, 10 trials,
// exhaustive NE scans); "quick" keeps every figure's shape at a fraction
// of the cost; "smoke" is a fast sanity pass. Independent simulations fan
// out across -workers cores, and -cache memoizes per-simulation results
// on disk across runs — neither changes any figure's output by a single
// byte (see DESIGN.md, "Parallel execution & determinism").
//
// Execution is fault-tolerant: SIGINT/SIGTERM cancel the run (in-flight
// simulations drain, nothing new is dispatched), a failing or panicking
// simulation is reported with its canonical scenario key, and on every
// exit path — success, error or interrupt — the -cache store is saved, so
// a multi-hour sweep never loses its warmed payoffs. -strict additionally
// audits every simulation result against physical invariants (share sums,
// byte conservation, queue bounds, NaN/Inf) and fails the run if any are
// violated.
//
// -resume names a crash-safe journal: every completed simulation is
// appended and fsynced as it finishes, so a sweep killed mid-flight —
// crash, SIGKILL, power loss — resumes from its completed units when the
// same command is rerun with the same journal, and the resumed output is
// byte-identical to an uninterrupted run. -timeout arms a per-simulation
// stall watchdog and -retries retries stalled or transiently failed units
// with exponential backoff; retries re-derive the same seed, so a retried
// unit either reproduces bit-for-bit or fails again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		figFlag    = flag.String("fig", "all", "comma-separated figure IDs (e.g. 1,3a,9f) or 'all'")
		scaleFlag  = flag.String("scale", "quick", "experiment scale: full, quick or smoke")
		backendF   = flag.String("backend", "", "execution engine for every simulation: packet or fluid ('' = packet)")
		outFlag    = flag.String("out", "figures", "directory for CSV output ('' to skip CSVs)")
		listFlag   = flag.Bool("list", false, "list available figures and exit")
		width      = flag.Int("width", 72, "ASCII chart width")
		height     = flag.Int("height", 18, "ASCII chart height")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		resumePath = flag.String("resume", "", "path to crash-safe resume journal; an existing journal's completed simulations are skipped ('' = no journal)")
		timeout    = flag.Duration("timeout", 0, "per-simulation stall watchdog: cancel a unit making no progress for this long (0 = off)")
		retries    = flag.Int("retries", 0, "retry a stalled or transiently failed simulation up to this many times (retries re-derive the same seed)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		strict     = flag.Bool("strict", false, "audit every simulation result against physical invariants; violations fail the run")
		traceDir   = flag.String("trace", "", "write per-simulation run traces (JSONL + CSV time series and events) into this directory ('' = no tracing)")
		traceEvery = flag.Duration("trace-interval", 0, "trace sampling interval (0 = default 100ms)")
		reportPath = flag.String("report", "", "write a machine-readable JSON run report to this file on exit ('' = no report)")
		progress   = flag.Duration("progress", 0, "print a progress line to stderr this often during each figure (0 = off)")
	)
	flag.Parse()

	if *listFlag {
		for _, f := range exp.Figures() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return 0
	}

	scale, err := exp.ScaleByName(*scaleFlag)
	if err != nil {
		return fail(err)
	}
	if *backendF != "" {
		if err := validBackend(*backendF); err != nil {
			return fail(err)
		}
		scale.Backend = *backendF
	}
	// The -report defer is registered before any component is built and
	// reads the (nil-safe) components at exit, so interrupted and failed
	// runs still leave a machine-readable record.
	begin := time.Now()
	if *reportPath != "" {
		defer func() {
			if err := telemetry.Collect("figures", outcomeOf(code), time.Since(begin),
				scale.Pool, scale.Cache, scale.Journal, scale.Trace).Write(*reportPath); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
		}()
	}
	if *traceDir != "" {
		rec, err := telemetry.NewRecorder(*traceDir)
		if err != nil {
			return fail(err)
		}
		scale.Trace = rec.SetInterval(*traceEvery)
	}
	scale.Pool = runner.NewPool(*workers).SetWatchdog(*timeout).SetRetry(*retries, time.Second)
	if *progress > 0 {
		scale.Pool.SetProgress(*progress, func(p runner.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "figures: %d/%d simulations in %v (%d retries, %d stalls)\n",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.Retries, p.Stalls)
		})
	}
	cache, err := runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	scale.Cache = cache
	journal, err := runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()
	scale.Journal = journal
	var audit *check.Auditor
	if *strict {
		audit = check.New()
		scale.Audit = audit
	}

	// SIGINT/SIGTERM cancel the context: the sweep stops dispatching new
	// simulations, in-flight units drain, and the deferred save below
	// still persists every memoized payoff.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale.Ctx = ctx

	// The cache is saved on every exit path — success, error or
	// interrupt — so a failed multi-hour sweep keeps its warmed payoffs.
	defer saveCache(cache, *cachePath)

	var prof *runner.CPUProfile
	if *cpuProfile != "" {
		if prof, err = runner.StartCPUProfile(*cpuProfile); err != nil {
			return fail(err)
		}
	}
	// Stop the profile through the same deferred single-exit cleanup that
	// saves the cache: an exit path that skips it (audit failure, interrupt)
	// would leave a truncated profile.
	defer stopProfile(prof)

	var figs []exp.Figure
	if *figFlag == "all" {
		figs = exp.Figures()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			f, err := exp.FigureByID(strings.TrimSpace(id))
			if err != nil {
				return fail(err)
			}
			figs = append(figs, f)
		}
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			return fail(err)
		}
	}

	total := time.Now()
	for _, f := range figs {
		fmt.Printf("=== Figure %s: %s (scale %s, %d workers)\n",
			f.ID, f.Title, scale.Name, scale.Pool.Workers())
		start := time.Now()
		jobs0, busy0 := scale.Pool.Jobs(), scale.Pool.Busy()
		hits0, misses0 := cache.Hits(), cache.Misses()
		res, err := f.Generate(scale)
		if err != nil {
			return report(ctx, fmt.Errorf("figure %s: %w", f.ID, err))
		}
		for i, chart := range res.Charts {
			fmt.Println(chart.RenderASCII(*width, *height))
			if *outFlag != "" {
				name := fmt.Sprintf("fig%s.csv", f.ID)
				if len(res.Charts) > 1 {
					name = fmt.Sprintf("fig%s_%d.csv", f.ID, i+1)
				}
				path := filepath.Join(*outFlag, name)
				file, err := os.Create(path)
				if err != nil {
					return fail(err)
				}
				if err := chart.WriteCSV(file); err != nil {
					file.Close()
					return fail(err)
				}
				if err := file.Close(); err != nil {
					return fail(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("note: %s\n", note)
		}
		wall := time.Since(start)
		fmt.Printf("figure %s done in %v (%d sims, %d cache hits%s)\n\n",
			f.ID, wall.Round(time.Millisecond),
			cache.Misses()-misses0, cache.Hits()-hits0,
			speedupNote(scale.Pool.Busy()-busy0, wall, scale.Pool.Jobs()-jobs0))
	}
	wall := time.Since(total)
	fmt.Printf("all done in %v: %d jobs, %d unique sims, %d cache hits%s\n",
		wall.Round(time.Millisecond), scale.Pool.Jobs(), cache.Misses(), cache.Hits(),
		speedupNote(scale.Pool.Busy(), wall, scale.Pool.Jobs()))
	return auditVerdict(audit)
}

// report explains a sweep failure: an interrupt is reported as such (exit
// 130), a failing unit is named by canonical scenario key, and a captured
// simulation panic includes its stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "figures: interrupted; in-flight simulations drained, partial figure discarded (rerun with -resume to skip completed simulations)")
		return 130
	}
	var st *runner.StallError
	if errors.As(err, &st) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		fmt.Fprintln(os.Stderr, "figures: raise -timeout or add -retries if the simulation was merely slow")
		return 1
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		fmt.Fprintf(os.Stderr, "figures: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// auditVerdict reports the -strict outcome: every recorded invariant
// violation, keyed by scenario, fails the run.
func auditVerdict(audit *check.Auditor) int {
	if audit == nil {
		return 0
	}
	vs := audit.Violations()
	if len(vs) == 0 {
		fmt.Println("strict audit: all invariants held")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "figures: strict: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "figures: strict: %d invariant violation(s)\n", len(vs))
	return 1
}

// saveCache persists the memoized results; deferred so it runs on every
// exit path, including errors and interrupts.
func saveCache(cache *runner.Cache, path string) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "figures: saving cache:", err)
		return
	}
	if path != "" && cache.Misses() > 0 {
		fmt.Printf("cache saved to %s (%d entries)\n", path, cache.Len())
	}
}

// stopProfile flushes and closes the -cpuprofile file; deferred alongside
// saveCache so every exit path leaves a readable profile.
func stopProfile(prof *runner.CPUProfile) {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
	}
}

// outcomeOf maps the process exit code to the run report's outcome field.
func outcomeOf(code int) string {
	switch {
	case code == 0:
		return "ok"
	case code == 130:
		return "interrupted"
	default:
		return "failed"
	}
}

// validBackend rejects a -backend value that names no execution engine.
func validBackend(name string) error {
	for _, b := range scenario.Backends() {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (want %s)", name, strings.Join(scenario.Backends(), " or "))
}

// speedupNote reports parallel efficiency: cumulative worker-busy time
// over wall-clock is the effective speedup vs running the same jobs
// serially.
func speedupNote(busy, wall time.Duration, jobs int64) string {
	if jobs == 0 || wall <= 0 || busy <= 0 {
		return ""
	}
	return fmt.Sprintf(", %.1fx speedup", float64(busy)/float64(wall))
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "figures:", err)
	return 1
}
