// Command figures regenerates the paper's evaluation figures.
//
// Each figure is emitted as a CSV file (for external plotting) plus an
// ASCII chart and summary notes on stdout.
//
// Usage:
//
//	figures -fig all -scale quick -out ./figures
//	figures -fig 3a,3b -scale full -workers 8
//	figures -fig 9a -scale full -cache results.json
//	figures -list
//
// Scales: "full" is the paper's protocol (2-minute flows, 10 trials,
// exhaustive NE scans); "quick" keeps every figure's shape at a fraction
// of the cost; "smoke" is a fast sanity pass. Independent simulations fan
// out across -workers cores, and -cache memoizes per-simulation results
// on disk across runs — neither changes any figure's output by a single
// byte (see DESIGN.md, "Parallel execution & determinism").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
)

func main() {
	var (
		figFlag    = flag.String("fig", "all", "comma-separated figure IDs (e.g. 1,3a,9f) or 'all'")
		scaleFlag  = flag.String("scale", "quick", "experiment scale: full, quick or smoke")
		outFlag    = flag.String("out", "figures", "directory for CSV output ('' to skip CSVs)")
		listFlag   = flag.Bool("list", false, "list available figures and exit")
		width      = flag.Int("width", 72, "ASCII chart width")
		height     = flag.Int("height", 18, "ASCII chart height")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *listFlag {
		for _, f := range exp.Figures() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	scale, err := exp.ScaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	scale.Pool = runner.NewPool(*workers)
	cache, err := runner.OpenCache(*cachePath)
	if err != nil {
		fatal(err)
	}
	scale.Cache = cache

	if *cpuProfile != "" {
		stop, err := runner.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	var figs []exp.Figure
	if *figFlag == "all" {
		figs = exp.Figures()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			f, err := exp.FigureByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fatal(err)
		}
	}

	total := time.Now()
	for _, f := range figs {
		fmt.Printf("=== Figure %s: %s (scale %s, %d workers)\n",
			f.ID, f.Title, scale.Name, scale.Pool.Workers())
		start := time.Now()
		jobs0, busy0 := scale.Pool.Jobs(), scale.Pool.Busy()
		hits0, misses0 := cache.Hits(), cache.Misses()
		res, err := f.Generate(scale)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f.ID, err))
		}
		for i, chart := range res.Charts {
			fmt.Println(chart.RenderASCII(*width, *height))
			if *outFlag != "" {
				name := fmt.Sprintf("fig%s.csv", f.ID)
				if len(res.Charts) > 1 {
					name = fmt.Sprintf("fig%s_%d.csv", f.ID, i+1)
				}
				path := filepath.Join(*outFlag, name)
				file, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := chart.WriteCSV(file); err != nil {
					file.Close()
					fatal(err)
				}
				if err := file.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("note: %s\n", note)
		}
		wall := time.Since(start)
		fmt.Printf("figure %s done in %v (%d sims, %d cache hits%s)\n\n",
			f.ID, wall.Round(time.Millisecond),
			cache.Misses()-misses0, cache.Hits()-hits0,
			speedupNote(scale.Pool.Busy()-busy0, wall, scale.Pool.Jobs()-jobs0))
	}
	wall := time.Since(total)
	fmt.Printf("all done in %v: %d jobs, %d unique sims, %d cache hits%s\n",
		wall.Round(time.Millisecond), scale.Pool.Jobs(), cache.Misses(), cache.Hits(),
		speedupNote(scale.Pool.Busy(), wall, scale.Pool.Jobs()))
	if err := cache.Save(); err != nil {
		fatal(err)
	}
	if *cachePath != "" && cache.Misses() > 0 {
		fmt.Printf("cache saved to %s (%d entries)\n", *cachePath, cache.Len())
	}
}

// speedupNote reports parallel efficiency: cumulative worker-busy time
// over wall-clock is the effective speedup vs running the same jobs
// serially.
func speedupNote(busy, wall time.Duration, jobs int64) string {
	if jobs == 0 || wall <= 0 || busy <= 0 {
		return ""
	}
	return fmt.Sprintf(", %.1fx speedup", float64(busy)/float64(wall))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
