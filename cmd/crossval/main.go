// Command crossval cross-validates the fluid fast path against the
// packet engine over the paper's figure grid and emits a machine-readable
// divergence report.
//
// Usage:
//
//	crossval -out report.json
//	crossval -buffers 1,5,9,13 -mixes 1:1,4:4 -duration 30s -workers 8
//	crossval -cache results.json -threshold 0.2
//
// Every (buffer, mix) grid point runs on both backends; per-point relative
// throughput errors against the packet engine are reported along with a
// grid summary. A point above -threshold is flagged as diverged — a
// finding about where the fluid idealization breaks, never an error: the
// exit code is 0 whenever the sweep itself completed. The report is
// byte-identical at any -workers count, and -cache memoizes per-simulation
// results, so a warmed figure cache satisfies the packet half for free.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		capMbps    = flag.Float64("capacity", 40, "bottleneck capacity in Mbps")
		rttMs      = flag.Float64("rtt", 40, "base RTT in milliseconds")
		duration   = flag.Duration("duration", 2*time.Minute, "flow duration per grid point")
		seed       = flag.Uint64("seed", 1, "base trial seed")
		buffers    = flag.String("buffers", "", "comma-separated buffer depths in BDP ('' = the paper's 1–50 grid)")
		mixes      = flag.String("mixes", "", "comma-separated bbr:cubic flow mixes, e.g. 1:1,2:2,4:4 ('' = default)")
		threshold  = flag.Float64("threshold", 0, "relative error above which a point is flagged diverged (0 = default 0.25)")
		trials     = flag.Int("trials", 1, "jittered trials averaged per grid point and backend")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "path to on-disk result cache ('' = in-memory only)")
		resumePath = flag.String("resume", "", "path to crash-safe resume journal ('' = no journal)")
		timeout    = flag.Duration("timeout", 0, "per-simulation stall watchdog (0 = off)")
		retries    = flag.Int("retries", 0, "retry a stalled or transiently failed simulation up to this many times")
		outPath    = flag.String("out", "", "write the JSON report to this file ('' = stdout)")
		progress   = flag.Duration("progress", 0, "print a progress line to stderr this often (0 = off)")
	)
	flag.Parse()

	bufferBDPs, err := parseFloats(*buffers)
	if err != nil {
		return fail(fmt.Errorf("-buffers: %w", err))
	}
	mixList, err := parseMixes(*mixes)
	if err != nil {
		return fail(fmt.Errorf("-mixes: %w", err))
	}

	pool := runner.NewPool(*workers).SetWatchdog(*timeout).SetRetry(*retries, time.Second)
	if *progress > 0 {
		pool.SetProgress(*progress, func(p runner.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "crossval: %d/%d simulations in %v (%d retries, %d stalls)\n",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.Retries, p.Stalls)
		})
	}
	cache, err := runner.OpenCache(*cachePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer cache.Close()
	journal, err := runner.OpenJournal(*resumePath, scenario.KeyVersion)
	if err != nil {
		return fail(err)
	}
	defer journal.Close()

	// SIGINT/SIGTERM cancel the sweep; the deferred save still persists
	// every simulation completed so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer saveCache(cache, *cachePath)

	start := time.Now()
	rep, err := exp.CrossValidate(exp.CrossValConfig{
		Capacity:   units.Rate(*capMbps) * units.Mbps,
		RTT:        time.Duration(*rttMs * float64(time.Millisecond)),
		Duration:   *duration,
		Seed:       *seed,
		BufferBDPs: bufferBDPs,
		Mixes:      mixList,
		Threshold:  *threshold,
		Scale: exp.Scale{
			Name:         "crossval",
			FlowDuration: *duration,
			Trials:       *trials,
			Pool:         pool,
			Cache:        cache,
			Journal:      journal,
			Ctx:          ctx,
		},
	})
	if err != nil {
		return report(ctx, err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	} else {
		os.Stdout.Write(data)
	}
	fmt.Fprintf(os.Stderr, "crossval: %d points, %d diverged (threshold %g), max rel err %.3f, mean %.3f, in %v\n",
		rep.Summary.Points, rep.Summary.Diverged, rep.Threshold,
		rep.Summary.MaxRelErr, rep.Summary.MeanRelErr, time.Since(start).Round(time.Millisecond))
	if rep.Summary.WorstPoint != "" {
		fmt.Fprintf(os.Stderr, "crossval: worst point: %s\n", rep.Summary.WorstPoint)
	}
	return 0
}

// parseFloats parses a comma-separated float list; "" is nil (defaults).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMixes parses "bbr:cubic" count pairs; "" is nil (defaults).
func parseMixes(s string) ([][2]int, error) {
	if s == "" {
		return nil, nil
	}
	var out [][2]int
	for _, m := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(m), ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("mix %q is not bbr:cubic", m)
		}
		nb, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		nc, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		if nb < 0 || nc < 0 {
			return nil, fmt.Errorf("mix %q has a negative count", m)
		}
		out = append(out, [2]int{nb, nc})
	}
	return out, nil
}

// report explains a sweep failure: an interrupt exits 130, a failing unit
// is named by canonical scenario key, and a captured panic includes its
// stack.
func report(ctx context.Context, err error) int {
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "crossval: interrupted; in-flight simulations drained, cache saved (rerun with -resume to skip completed simulations)")
		return 130
	}
	var ue *runner.UnitError
	if errors.As(err, &ue) && ue.Recovered != nil {
		fmt.Fprintln(os.Stderr, "crossval:", err)
		fmt.Fprintf(os.Stderr, "crossval: unit panic stack:\n%s", ue.Stack)
		return 1
	}
	return fail(err)
}

// saveCache persists the memoized results; deferred so it runs on every
// exit path, including errors and interrupts.
func saveCache(cache *runner.Cache, path string) {
	if err := cache.Save(); err != nil {
		fmt.Fprintln(os.Stderr, "crossval: saving cache:", err)
		return
	}
	if path != "" && cache.Misses() > 0 {
		fmt.Fprintf(os.Stderr, "crossval: cache saved to %s (%d entries)\n", path, cache.Len())
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "crossval:", err)
	return 1
}
