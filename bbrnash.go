// Package bbrnash reproduces "Are we heading towards a BBR-dominant
// Internet?" (Mishra, Tiu & Leong, IMC 2022) as a reusable Go library.
//
// It bundles four layers, re-exported here as the stable public API:
//
//   - An analytical model (Predict, PredictInterval, PredictWare) of the
//     bandwidth shares of CUBIC and BBR flows competing at a drop-tail
//     bottleneck, including the Ware et al. (IMC 2019) baseline.
//   - A Nash Equilibrium predictor (PredictNash, PredictNashRegion) for the
//     congestion-control choice game: the mixed CUBIC/BBR distribution from
//     which no flow gains by switching.
//   - A deterministic packet-level network simulator (NewNetwork) with
//     implementations of CUBIC, New Reno, BBRv1, BBRv2, Copa and PCC
//     Vivace, standing in for the paper's Linux testbed.
//   - The experiment harness (Figures, RunMix, FindNE) that regenerates
//     every figure in the paper's evaluation at configurable scale.
//
// # Quick start
//
//	s := bbrnash.Scenario{
//		Capacity: 100 * bbrnash.Mbps,
//		Buffer:   bbrnash.BufferBytes(100*bbrnash.Mbps, 40*time.Millisecond, 3),
//		RTT:      40 * time.Millisecond,
//		NumCubic: 5, NumBBR: 5,
//	}
//	p, err := bbrnash.Predict(s, bbrnash.Synchronized)
//	// p.PerBBR, p.PerCubic are the modeled per-flow bandwidths.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package bbrnash

import (
	"bbrnash/internal/adopt"
	"bbrnash/internal/cc"
	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/bbrv2"
	"bbrnash/internal/cc/copa"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/cc/reno"
	"bbrnash/internal/cc/vivace"
	"bbrnash/internal/check"
	"bbrnash/internal/core"
	"bbrnash/internal/exp"
	"bbrnash/internal/game"
	"bbrnash/internal/netsim"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/serve"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// Quantity types and helpers (internal/units).
type (
	// Rate is a data rate in bits per second.
	Rate = units.Rate
	// Bytes is an amount of data in bytes.
	Bytes = units.Bytes
)

// Common rate and size units.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
	KB   = units.KB
	MB   = units.MB
	// MSS is the segment size used throughout (1460 bytes).
	MSS = units.MSS
)

// BDP returns the bandwidth-delay product of a path.
var BDP = units.BDP

// BufferBytes sizes a buffer as a multiple of a path's BDP.
var BufferBytes = units.BufferBytes

// InBDP expresses a byte count in BDP multiples.
var InBDP = units.InBDP

// Analytical model (internal/core — the paper's §2 and §4).
type (
	// Scenario describes a modeled bottleneck shared by CUBIC and BBR
	// flows with one base RTT.
	Scenario = core.Scenario
	// Prediction is the model's output for one synchronization mode.
	Prediction = core.Prediction
	// Interval brackets predictions between both synchronization bounds.
	Interval = core.Interval
	// SyncMode selects the CUBIC synchronization extreme (§2.4).
	SyncMode = core.SyncMode
	// Regime classifies model validity for a scenario.
	Regime = core.Regime
	// WareScenario parameterizes the Ware et al. baseline model.
	WareScenario = core.WareScenario
	// WarePrediction is the baseline model's output.
	WarePrediction = core.WarePrediction
	// NashScenario describes the congestion-control choice game.
	NashScenario = core.NashScenario
	// NashPoint is a predicted equilibrium distribution.
	NashPoint = core.NashPoint
	// NashRegion is the equilibrium band between the two bounds.
	NashRegion = core.NashRegion
)

// Synchronization modes and validity regimes.
const (
	Synchronized    = core.Synchronized
	Desynchronized  = core.Desynchronized
	RegimeValid     = core.RegimeValid
	RegimeShallow   = core.RegimeShallow
	RegimeUltraDeep = core.RegimeUltraDeep
)

// Model entry points.
var (
	// Predict evaluates the throughput model for one sync mode.
	Predict = core.Predict
	// PredictExact evaluates the variant without the b_b+b_c≈B
	// approximation (used by the ablation benchmarks).
	PredictExact = core.PredictExact
	// PredictInterval evaluates both bounds.
	PredictInterval = core.PredictInterval
	// PredictWare evaluates the Ware et al. baseline.
	PredictWare = core.PredictWare
	// PredictNash locates the model's Nash Equilibrium.
	PredictNash = core.PredictNash
	// PredictNashRegion evaluates the equilibrium band.
	PredictNashRegion = core.PredictNashRegion
)

// Simulator (internal/netsim) and congestion control (internal/cc).
type (
	// Network is one packet-level simulation instance.
	Network = netsim.Network
	// NetworkConfig describes the bottleneck — or, via its Links field,
	// a multi-link topology that flows traverse over per-flow paths.
	NetworkConfig = netsim.Config
	// FlowConfig describes one sender.
	FlowConfig = netsim.FlowConfig
	// Flow is a sender/receiver pair attached to a Network.
	Flow = netsim.Flow
	// FlowStats is a per-flow measurement snapshot.
	FlowStats = netsim.FlowStats
	// LinkStats is a bottleneck measurement snapshot.
	LinkStats = netsim.LinkStats
	// Algorithm is the congestion-control interface.
	Algorithm = cc.Algorithm
	// AlgorithmConstructor builds an Algorithm for one flow.
	AlgorithmConstructor = cc.Constructor
	// AlgorithmParams carries per-flow constants.
	AlgorithmParams = cc.Params
)

// NewNetwork creates a simulation instance.
var NewNetwork = netsim.New

// Sampler records periodic per-flow time series (throughput, in-flight,
// buffer share); attach with NewSampler before running the simulation.
type Sampler = netsim.Sampler

// FlowSample is one sampler observation.
type FlowSample = netsim.Sample

// NewSampler attaches a Sampler to a flow.
var NewSampler = netsim.NewSampler

// LinkSampler records periodic bottleneck time series (queue depth,
// delivered throughput, effective rate); attach with NewLinkSampler before
// running the simulation.
type LinkSampler = netsim.LinkSampler

// LinkSample is one link-sampler observation.
type LinkSample = netsim.LinkSample

// NewLinkSampler attaches a LinkSampler to a network.
var NewLinkSampler = netsim.NewLinkSampler

// Congestion-control constructors, each usable as FlowConfig.Algorithm.
var (
	CUBIC   AlgorithmConstructor = cubic.New
	NewReno AlgorithmConstructor = reno.New
	BBR     AlgorithmConstructor = bbr.New
	BBRv2   AlgorithmConstructor = bbrv2.New
	Copa    AlgorithmConstructor = copa.New
	Vivace  AlgorithmConstructor = vivace.New
)

// AlgorithmByName resolves a constructor from its name ("cubic", "reno",
// "bbr", "bbrv2", "copa", "vivace").
var AlgorithmByName = cc.AlgorithmByName

// Algorithms lists the registered algorithm names in sorted order.
var Algorithms = cc.Algorithms

// Declarative scenarios (internal/scenario). A ScenarioSpec is the
// canonical description of one bottleneck experiment — the same object
// the CLIs parse, the simulator builds from, and the cache and auditor
// key results by (Spec.Key).
type (
	// ScenarioSpec is one complete declarative scenario.
	ScenarioSpec = scenario.Spec
	// ScenarioGroup is one ordered group of identical flows in a spec.
	ScenarioGroup = scenario.Group
	// ScenarioFaults is a spec's deterministic fault-injection block:
	// stochastic forward and ACK-path loss, periodic capacity flaps and
	// burst-loss episodes, all derived from the spec's seed so a faulted
	// run is exactly as reproducible as a clean one (and participates in
	// the spec's canonical key).
	ScenarioFaults = scenario.Faults
	// ScenarioLink is one named link in a multi-bottleneck topology:
	// capacity, buffer, per-link faults and an optional reverse twin that
	// serializes ACKs. A spec with no Links is the one-link special case.
	ScenarioLink = scenario.Link
	// ScenarioResult carries a spec run's per-group and link statistics.
	ScenarioResult = exp.SpecResult
)

var (
	// LoadScenario reads and validates a scenario spec from a JSON file.
	LoadScenario = scenario.Load
	// MixScenario builds the paper's canonical two-class scenario.
	MixScenario = scenario.Mix
	// RunScenario executes one scenario spec.
	RunScenario = exp.RunSpec
	// RunScenarioCached executes a spec through a ResultCache, an optional
	// ResumeJournal and an optional InvariantAuditor, keyed by the spec's
	// canonical key; the context cancels the run at simulated-second
	// boundaries.
	RunScenarioCached = exp.RunSpecCached
	// RunScenarioTraced is RunScenario with an optional TraceRecorder
	// capturing the run's trace under its canonical key.
	RunScenarioTraced = exp.RunSpecTraced
	// RunScenarioCachedTraced is RunScenarioCached with an optional
	// TraceRecorder; cache and journal hits skip re-tracing.
	RunScenarioCachedTraced = exp.RunSpecCachedTraced
)

// ScenarioKeyVersion is the canonical-key format generation used by
// Spec.Key, the result cache and the invariant auditor.
const ScenarioKeyVersion = scenario.KeyVersion

// Experiments (internal/exp) and game theory (internal/game).
type (
	// ExperimentScale selects fidelity (FullScale reproduces the paper's
	// protocol).
	ExperimentScale = exp.Scale
	// MixConfig describes one mixed-distribution run.
	MixConfig = exp.MixConfig
	// MixResult aggregates a run.
	MixResult = exp.MixResult
	// NESearchConfig describes an empirical equilibrium search.
	NESearchConfig = exp.NESearchConfig
	// NESearchResult is its outcome.
	NESearchResult = exp.NESearchResult
	// GroupNEConfig describes the multi-RTT equilibrium search (§4.5).
	GroupNEConfig = exp.GroupNEConfig
	// GroupNEResult is its outcome.
	GroupNEResult = exp.GroupNEResult
	// GroupConfig describes one multi-RTT simulation run.
	GroupConfig = exp.GroupConfig
	// GroupResult carries its per-group class averages.
	GroupResult = exp.GroupResult
	// UtilityFunc scores a flow's throughput/delay outcome (§4.3).
	UtilityFunc = exp.UtilityFunc
	// Figure is one reproducible paper artifact.
	Figure = exp.Figure
	// FigureResult is a generated figure.
	FigureResult = exp.FigureResult
	// SymmetricGame is the N-player binary-choice game of §4.1.
	SymmetricGame = game.SymmetricBinary
	// GroupGame is its multi-RTT generalization (§4.5).
	GroupGame = game.GroupSymmetric
	// PopulationGame is the symmetric game over an arbitrary strategy
	// set (profiles are per-strategy counts), the substrate of the
	// adoption dynamics' fixed-point checks.
	PopulationGame = game.MultiSymmetric
)

// Experiment scales.
var (
	FullScale  = exp.Full
	QuickScale = exp.Quick
	SmokeScale = exp.Smoke
)

// Experiment entry points.
var (
	// RunMix executes one mixed-distribution simulation.
	RunMix = exp.RunMix
	// RunMixTrials averages RunMix over jittered trials.
	RunMixTrials = exp.RunMixTrials
	// FindNE searches for empirical Nash Equilibria.
	FindNE = exp.FindNE
	// FindNEUtility is FindNE under an arbitrary utility function (§4.3).
	FindNEUtility = exp.FindNEUtility
	// LinearUtility builds α·throughput − γ·delay utilities.
	LinearUtility = exp.LinearUtility
	// ThroughputUtility is the paper's default utility.
	ThroughputUtility exp.UtilityFunc = exp.ThroughputUtility
	// RunGroups executes one multi-RTT simulation.
	RunGroups = exp.RunGroups
	// FindGroupNE searches for multi-RTT equilibria.
	FindGroupNE = exp.FindGroupNE
	// Figures returns the registry of paper figures.
	Figures = exp.Figures
	// FigureByID finds one figure.
	FigureByID = exp.FigureByID
)

// Parallel runner and result cache (internal/runner). Attach a pool and a
// cache to an ExperimentScale (or an NE search config) to fan independent
// simulations across cores and memoize their results; neither changes any
// result — see DESIGN.md, "Parallel execution & determinism".
type (
	// WorkerPool bounds how many simulations run concurrently.
	WorkerPool = runner.Pool
	// ResultCache memoizes simulation results by canonical scenario key.
	ResultCache = runner.Cache
)

var (
	// NewWorkerPool creates a pool of the given size (<= 0 means
	// GOMAXPROCS).
	NewWorkerPool = runner.NewPool
	// NewResultCache creates an empty in-memory cache.
	NewResultCache = runner.NewCache
	// OpenResultCache loads (or creates) an on-disk JSON cache.
	OpenResultCache = runner.OpenCache
)

// Fault tolerance and invariant auditing (internal/runner,
// internal/check). Sweeps and NE searches honour an optional
// context.Context (ExperimentScale.Ctx, NESearchConfig.Ctx): once it is
// cancelled no further simulations are dispatched, in-flight units drain,
// and a failing or panicking unit is reported as a *UnitError naming the
// scenario's canonical key. An InvariantAuditor attached to a scale or
// search config validates every simulation result as it is produced.
type (
	// UnitError identifies the failing unit of a sweep: submission index,
	// canonical scenario key, and the error or recovered panic + stack.
	UnitError = runner.UnitError
	// StallError reports a unit cancelled by the pool's watchdog: it made
	// no progress for a full window. Stalls are transient — with retries
	// configured the unit is re-run from the same seed.
	StallError = runner.StallError
	// TransientError marks an error as retryable by the pool.
	TransientError = runner.TransientError
	// ResumeJournal is the crash-safe write-ahead log of completed
	// simulation units: each result is appended and fsynced as it
	// finishes, so a killed sweep resumes from its completed units.
	ResumeJournal = runner.Journal
	// InvariantAuditor collects physical-invariant violations; nil
	// disables auditing.
	InvariantAuditor = check.Auditor
	// InvariantViolation is one failed invariant, keyed by scenario.
	InvariantViolation = check.Violation
	// InvariantLimits carries the bounds results are audited against.
	InvariantLimits = check.Limits
)

var (
	// OpenResumeJournal loads (or creates) an on-disk resume journal;
	// attach it to an ExperimentScale's (or search config's) Journal field.
	OpenResumeJournal = runner.OpenJournal
	// MarkTransient wraps an error so the pool's retry policy re-runs the
	// unit; Transient reports whether an error is retryable.
	MarkTransient = runner.MarkTransient
	// Transient reports whether an error would be retried by the pool.
	Transient = runner.Transient
	// UnitProgress heartbeats the pool's stall watchdog from inside a
	// long-running unit (no-op outside a watchdogged unit).
	UnitProgress = runner.Progress
	// NewInvariantAuditor creates an empty auditor; attach it to an
	// ExperimentScale's (or search config's) Audit field.
	NewInvariantAuditor = check.New
	// AuditFlows audits one simulation's per-flow and link statistics
	// against a scenario's physical bounds.
	AuditFlows = check.Flows
	// AuditLink audits one link's statistics against its own capacity
	// and buffer bounds — the per-link half of a topology audit.
	AuditLink = check.Link
)

// Run telemetry (internal/telemetry). A TraceRecorder attached to an
// ExperimentScale (or NE search config, or passed to RunScenarioTraced)
// captures every fresh simulation's per-flow and link time series plus
// discrete events as deterministic JSONL + CSV trace files keyed by
// canonical scenario key; a RunReport summarizes a sweep's execution
// (worker occupancy, retries, stalls, cache effectiveness). Tracing never
// changes a result or a cache key.
type (
	// TraceRecorder writes run traces into a directory; nil disables
	// tracing everywhere one is accepted.
	TraceRecorder = telemetry.Recorder
	// TraceCapture is one simulation's in-progress trace.
	TraceCapture = telemetry.Capture
	// TraceEvent is one discrete trace event (drop, cc state change,
	// capacity change).
	TraceEvent = telemetry.Event
	// RunReport is the machine-readable summary of one command's execution.
	RunReport = telemetry.Report
)

var (
	// NewTraceRecorder creates a recorder writing into dir.
	NewTraceRecorder = telemetry.NewRecorder
	// TraceID derives the trace file identifier for a canonical scenario
	// key; TracePaths maps a directory and key to the trace file paths.
	TraceID    = telemetry.TraceID
	TracePaths = telemetry.TracePaths
	// CollectReport assembles a RunReport from a run's (nil-safe)
	// components.
	CollectReport = telemetry.Collect
)

// The sweep service (internal/serve, cmd/bbrserve). A SweepService wraps
// the cache+journal substrate in an HTTP API: instant answers on cache
// hit, at most one execution per canonical scenario key no matter how many
// clients submit it, a bounded queue that sheds overload with 429,
// supervised workers that survive unit panics, and byte-identical crash
// recovery off the fsynced journal — see DESIGN.md §16. The cache and
// journal stores themselves take exclusive advisory file locks on open, so
// two processes sharing a store fail loudly (ErrStoreLocked) instead of
// corrupting it.
type (
	// SweepService is the long-running sweep server; mount
	// (*SweepService).Handler on an http.Server and Drain on shutdown.
	SweepService = serve.Server
	// SweepServiceConfig assembles a SweepService; only Cache is required.
	SweepServiceConfig = serve.Config
	// SweepServiceStats is the machine-readable /stats snapshot.
	SweepServiceStats = serve.Stats
)

var (
	// NewSweepService builds a service and starts its supervised workers.
	NewSweepService = serve.New
	// ErrStoreLocked reports that another live process holds the advisory
	// lock on a cache or journal path.
	ErrStoreLocked = runner.ErrStoreLocked
)

// Adoption dynamics (internal/adopt, cmd/adopt). An AdoptionConfig
// describes a population of congestion-control deployments — 10⁴–10⁶
// agents in RTT classes, each running a registry algorithm — evolving
// under replicator dynamics or noisy best response, with payoffs
// evaluated through the cached experiment harness (fluid backend by
// default). Trajectories are deterministic: byte-identical at any worker
// count and across crash/resume cycles, with the final state checked as
// a per-class eps-equilibrium — see DESIGN.md §17.
type (
	// AdoptionConfig describes one adoption-dynamics run.
	AdoptionConfig = adopt.Config
	// AdoptionClass is one RTT class of the population.
	AdoptionClass = adopt.Class
	// AdoptionResult is a completed run: trajectory, final census,
	// fixed-point verdict, simulation accounting.
	AdoptionResult = adopt.Result
	// AdoptionRecord is one JSONL trajectory record.
	AdoptionRecord = adopt.Record
	// AdoptionPopulation is the per-class algorithm census.
	AdoptionPopulation = adopt.Population
)

var (
	// RunAdoption executes the adoption dynamics.
	RunAdoption = adopt.Run
	// WriteAdoptionJSONL writes a trajectory as deterministic JSONL.
	WriteAdoptionJSONL = adopt.WriteJSONL
	// StrategyDeviations enumerates a count profile's unilateral switches.
	StrategyDeviations = game.Deviations
)
