package rng

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical values", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Errorf("Intn(%d) did not cover all values (saw %d)", n, len(seen))
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
	if v := s.Range(3, 3); v != 3 {
		t.Errorf("degenerate Range = %v, want 3", v)
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Range(1,0) did not panic")
		}
	}()
	New(1).Range(1, 0)
}

func TestDuration(t *testing.T) {
	s := New(17)
	d := 10 * time.Millisecond
	for i := 0; i < 1000; i++ {
		v := s.Duration(d)
		if v < 0 || v >= d {
			t.Fatalf("Duration out of bounds: %v", v)
		}
	}
	if v := s.Duration(0); v != 0 {
		t.Errorf("Duration(0) = %v, want 0", v)
	}
	if v := s.Duration(-time.Second); v != 0 {
		t.Errorf("Duration(-1s) = %v, want 0", v)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(19)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children produced %d identical values", same)
	}
}
