// Package rng provides a small, deterministic pseudo-random number generator
// for reproducible experiments.
//
// The generator is xoshiro256** seeded via splitmix64, the combination
// recommended by its authors for general-purpose simulation. Every trial in
// the experiment harness owns its own *Source derived from the scenario seed
// and trial index, so runs are reproducible regardless of scheduling and no
// global state is shared.
package rng

import (
	"math"
	"math/bits"
	"time"
)

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
//
// Concurrency rules at the runner boundary (internal/runner): derive every
// parallel unit's seed or child Source up front with Split, on the
// submitting goroutine, before any worker starts; then hand each worker
// its own child. A child shares no state with its parent or siblings, so
// execution order cannot change any unit's stream. The same confinement
// applies to anything that owns a Source — in particular a netsim.Network
// is never shared across goroutines; each unit builds its own from its
// pre-derived seed. See the internal/runner package example.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros is a fixed point; splitmix64 cannot
	// produce it from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state, and the parent advances, so
// successive Splits yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Duration returns a uniform duration in [0, d). A non-positive d yields 0.
func (s *Source) Duration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(s.Uint64() % uint64(d))
}

// Norm returns a standard normal variate via the polar Box-Muller method.
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
