package eventsim

import (
	"testing"
	"time"
)

// BenchmarkQueueShape compares the two event-queue configurations — the
// calendar wheel + far heap hybrid against a pure indexed 4-ary heap
// (heapOnly) — on a hold-model workload shaped like netsim's: each popped
// event reschedules itself one simulated-ACK delay ahead, with a paced
// subset using sub-millisecond holds. The population is the steady-state
// event count of a mid-sized scenario. This benchmark is the measurement
// behind the engine's queue choice (DESIGN §13).
func BenchmarkQueueShape(b *testing.B) {
	for _, shape := range []struct {
		name     string
		heapOnly bool
	}{
		{"wheel", false},
		{"heap", true},
	} {
		for _, pop := range []int{64, 512, 4096} {
			b.Run(shape.name+"/n"+itoa(pop), func(b *testing.B) {
				var l Loop
				l.heapOnly = shape.heapOnly
				l.Reserve(pop + 16)
				// Seed the population: 3/4 ACK-like holds (tens of ms),
				// 1/4 pacer-like holds (hundreds of µs), deterministic
				// spread from the slot index.
				var hold [8]time.Duration
				for i := range hold {
					if i < 6 {
						hold[i] = time.Duration(20+7*i) * time.Millisecond
					} else {
						hold[i] = time.Duration(150+400*(i-6)) * time.Microsecond
					}
				}
				var tick func()
				n := 0
				tick = func() {
					l.After(hold[n&7], tick)
					n++
				}
				for i := 0; i < pop; i++ {
					l.After(hold[i&7], tick)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Run(l.Now().Add(50 * time.Millisecond))
				}
				b.StopTimer()
				events := l.Processed()
				if b.N > 0 {
					b.ReportMetric(float64(events)/float64(b.N), "events/op")
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
