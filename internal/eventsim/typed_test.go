package eventsim

import (
	"testing"
	"time"
)

// recorder is a typed event target that logs (kind, at) pairs.
type recorder struct {
	loop  *Loop
	kinds []Kind
	times []Time
}

func (r *recorder) OnEvent(k Kind) {
	r.kinds = append(r.kinds, k)
	r.times = append(r.times, r.loop.Now())
}

func TestTypedEventsDispatchByKind(t *testing.T) {
	var l Loop
	r := &recorder{loop: &l}
	l.ScheduleEvent(At(2*time.Millisecond), 7, r)
	l.ScheduleEvent(At(1*time.Millisecond), 3, r)
	l.AfterEvent(3*time.Millisecond, 9, r)
	l.Drain()
	if len(r.kinds) != 3 || r.kinds[0] != 3 || r.kinds[1] != 7 || r.kinds[2] != 9 {
		t.Errorf("kinds = %v, want [3 7 9]", r.kinds)
	}
	if r.times[0] != At(time.Millisecond) || r.times[2] != At(3*time.Millisecond) {
		t.Errorf("times = %v", r.times)
	}
}

// Typed and closure events scheduled for the same instant interleave in
// scheduling order: the FIFO tie-break spans both representations.
func TestTypedAndClosureEventsShareTieBreak(t *testing.T) {
	var l Loop
	r := &recorder{loop: &l}
	var order []int
	at := At(5 * time.Millisecond)
	l.Schedule(at, func() { order = append(order, 0) })
	l.ScheduleEvent(at, Kind(1), funcTarget{func(k Kind) { order = append(order, int(k)) }})
	l.Schedule(at, func() { order = append(order, 2) })
	l.ScheduleEvent(at, Kind(3), funcTarget{func(k Kind) { order = append(order, int(k)) }})
	l.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-representation tie-break broken: %v", order)
		}
	}
	_ = r
}

type funcTarget struct{ f func(Kind) }

func (t funcTarget) OnEvent(k Kind) { t.f(k) }

// Satellite regression: a stopped timer's event leaves the queue
// immediately — it must not linger until its original deadline inflating
// Pending, and a re-arm must move the entry rather than add one.
func TestTimerStopRemovesPendingEvent(t *testing.T) {
	var l Loop
	tm := NewTimer(&l, func() {})
	tm.ArmAfter(10 * time.Millisecond)
	if l.Pending() != 1 {
		t.Fatalf("Pending after Arm = %d, want 1", l.Pending())
	}
	tm.Stop()
	if l.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0 (stale event lingering)", l.Pending())
	}
	// Re-arming many times keeps exactly one live entry.
	for i := 0; i < 100; i++ {
		tm.ArmAfter(time.Duration(i+1) * time.Millisecond)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending after 100 re-arms = %d, want 1", l.Pending())
	}
	// And a fired timer counts exactly once.
	if n := l.Drain(); n != 1 {
		t.Fatalf("Drain executed %d events, want 1", n)
	}
	if l.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1 (cancelled events must not count)", l.Processed())
	}
}

// A timer re-armed to the same deadline as other same-instant events fires
// in the position its *latest* arm would give it — the fresh-sequence
// semantics the old cancel-by-generation engine had.
func TestTimerRearmTakesFreshSequence(t *testing.T) {
	var l Loop
	var order []string
	tm := NewTimer(&l, func() { order = append(order, "timer") })
	at := At(10 * time.Millisecond)
	tm.Arm(at)
	l.Schedule(at, func() { order = append(order, "a") })
	tm.Arm(at) // re-arm to the same instant: now logically after "a"
	l.Schedule(at, func() { order = append(order, "b") })
	l.Drain()
	if len(order) != 3 || order[0] != "a" || order[1] != "timer" || order[2] != "b" {
		t.Errorf("order = %v, want [a timer b]", order)
	}
}

func TestPeek(t *testing.T) {
	var l Loop
	if _, _, _, ok := l.Peek(); ok {
		t.Fatal("Peek on empty loop reported an event")
	}
	r := &recorder{loop: &l}
	l.ScheduleEvent(At(4*time.Millisecond), 5, r)
	l.ScheduleEvent(At(2*time.Millisecond), 1, r)
	at, kind, target, ok := l.Peek()
	if !ok || at != At(2*time.Millisecond) || kind != 1 || target != Handler(r) {
		t.Fatalf("Peek = (%v, %d, %v, %v)", at, kind, target, ok)
	}
	l.Drain()
	if _, _, _, ok := l.Peek(); ok {
		t.Fatal("Peek after drain reported an event")
	}
}

// Reserve pre-sizes the arena: scheduling within the reserved population
// must not allocate.
func TestReservePreventsGrowth(t *testing.T) {
	var l Loop
	l.Reserve(256)
	r := &recorder{loop: &l}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 200; i++ {
			l.ScheduleEvent(l.Now().Add(time.Duration(i+1)*time.Microsecond), 0, r)
		}
		r.kinds = r.kinds[:0]
		r.times = r.times[:0]
		l.RunFor(time.Millisecond)
	})
	if allocs > 0 {
		t.Errorf("scheduling within reserved capacity allocated %.0f times per run", allocs)
	}
}

// Interleaved schedule/cancel/re-arm traffic keeps the indexed heap
// consistent: everything live fires in (at, seq) order.
func TestIndexedHeapStress(t *testing.T) {
	var l Loop
	const timers = 33
	var fired []Time
	tms := make([]*Timer, timers)
	for i := range tms {
		tms[i] = NewTimer(&l, func() { fired = append(fired, l.Now()) })
	}
	// A deterministic pseudo-random walk of arms, stops and closures.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for step := 0; step < 5000; step++ {
		tm := tms[next(timers)]
		switch next(3) {
		case 0:
			tm.ArmAfter(time.Duration(next(5000)) * time.Microsecond)
		case 1:
			tm.Stop()
		case 2:
			l.After(time.Duration(next(5000))*time.Microsecond, func() { fired = append(fired, l.Now()) })
		}
		if step%97 == 0 {
			l.RunFor(time.Duration(next(2000)) * time.Microsecond)
		}
	}
	l.Drain()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order at %d: %v then %v", i, fired[i-1], fired[i])
		}
	}
	if l.Pending() != 0 {
		t.Errorf("Pending after drain = %d", l.Pending())
	}
}
