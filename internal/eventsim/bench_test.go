package eventsim

import (
	"testing"
	"time"
)

func BenchmarkScheduleRun(b *testing.B) {
	var l Loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.After(time.Microsecond, func() {})
		if l.Pending() > 1024 {
			l.RunFor(2 * time.Millisecond)
		}
	}
	l.Drain()
}

func BenchmarkTimerRearm(b *testing.B) {
	var l Loop
	tm := NewTimer(&l, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.ArmAfter(time.Millisecond)
		if i%1024 == 1023 {
			l.RunFor(2 * time.Millisecond)
		}
	}
	l.Drain()
}
