package eventsim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunOrdersByTime(t *testing.T) {
	var l Loop
	var got []int
	l.Schedule(At(3*time.Millisecond), func() { got = append(got, 3) })
	l.Schedule(At(1*time.Millisecond), func() { got = append(got, 1) })
	l.Schedule(At(2*time.Millisecond), func() { got = append(got, 2) })
	l.Run(At(time.Second))
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var l Loop
	var got []int
	at := At(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(at, func() { got = append(got, i) })
	}
	l.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events executed out of order: %v", got)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	var l Loop
	ran := false
	l.Schedule(At(2*time.Second), func() { ran = true })
	n := l.Run(At(time.Second))
	if n != 0 || ran {
		t.Error("event beyond until should not run")
	}
	if l.Now() != At(time.Second) {
		t.Errorf("clock = %v, want 1s", l.Now())
	}
	l.Run(At(3 * time.Second))
	if !ran {
		t.Error("event within later window did not run")
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	var l Loop
	var seen Time
	l.Schedule(At(7*time.Millisecond), func() { seen = l.Now() })
	l.Drain()
	if seen != At(7*time.Millisecond) {
		t.Errorf("Now inside event = %v, want 7ms", seen)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var l Loop
	l.Schedule(At(time.Second), func() {})
	l.Run(At(2 * time.Second))
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	l.Schedule(At(time.Millisecond), func() {})
}

func TestAfterNegativeDelay(t *testing.T) {
	var l Loop
	ran := false
	l.After(-time.Second, func() { ran = true })
	l.Drain()
	if !ran {
		t.Error("After with negative delay never ran")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var l Loop
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			l.After(time.Millisecond, recurse)
		}
	}
	l.After(0, recurse)
	l.Run(At(time.Second))
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if l.Processed() != 100 {
		t.Errorf("Processed = %d, want 100", l.Processed())
	}
}

func TestRunForIsRelative(t *testing.T) {
	var l Loop
	count := 0
	for i := 1; i <= 10; i++ {
		l.Schedule(At(time.Duration(i)*time.Second), func() { count++ })
	}
	l.RunFor(5 * time.Second)
	if count != 5 {
		t.Errorf("count after first window = %d, want 5", count)
	}
	l.RunFor(5 * time.Second)
	if count != 10 {
		t.Errorf("count after second window = %d, want 10", count)
	}
}

func TestPending(t *testing.T) {
	var l Loop
	for i := 0; i < 4; i++ {
		l.Schedule(At(time.Duration(i)*time.Second), func() {})
	}
	if l.Pending() != 4 {
		t.Errorf("Pending = %d, want 4", l.Pending())
	}
	l.Drain()
	if l.Pending() != 0 {
		t.Errorf("Pending after drain = %d", l.Pending())
	}
}

func TestOrderProperty(t *testing.T) {
	// Any batch of events executes in nondecreasing time order.
	f := func(delays []uint32) bool {
		var l Loop
		var fired []Time
		for _, d := range delays {
			at := At(time.Duration(d%1e6) * time.Microsecond)
			l.Schedule(at, func() { fired = append(fired, l.Now()) })
		}
		l.Drain()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerFires(t *testing.T) {
	var l Loop
	fired := 0
	tm := NewTimer(&l, func() { fired++ })
	tm.ArmAfter(10 * time.Millisecond)
	l.RunFor(time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if _, armed := tm.Armed(); armed {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	var l Loop
	fired := 0
	tm := NewTimer(&l, func() { fired++ })
	tm.ArmAfter(10 * time.Millisecond)
	tm.Stop()
	l.RunFor(time.Second)
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
}

func TestTimerRearmReplacesDeadline(t *testing.T) {
	var l Loop
	var firedAt []Time
	tm := NewTimer(&l, func() { firedAt = append(firedAt, l.Now()) })
	tm.ArmAfter(10 * time.Millisecond)
	tm.ArmAfter(20 * time.Millisecond) // replaces the 10ms deadline
	l.RunFor(time.Second)
	if len(firedAt) != 1 || firedAt[0] != At(20*time.Millisecond) {
		t.Errorf("firedAt = %v, want [20ms]", firedAt)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	var l Loop
	count := 0
	var tm *Timer
	tm = NewTimer(&l, func() {
		count++
		if count < 5 {
			tm.ArmAfter(time.Millisecond)
		}
	})
	tm.ArmAfter(time.Millisecond)
	l.RunFor(time.Second)
	if count != 5 {
		t.Errorf("periodic timer fired %d times, want 5", count)
	}
}

func TestTimeHelpers(t *testing.T) {
	x := At(time.Second)
	if x.Add(time.Second) != At(2*time.Second) {
		t.Error("Add wrong")
	}
	if At(3*time.Second).Sub(x) != 2*time.Second {
		t.Error("Sub wrong")
	}
	if x.Seconds() != 1 {
		t.Error("Seconds wrong")
	}
	if Never.String() != "never" {
		t.Error("Never.String wrong")
	}
	if At(1500*time.Millisecond).String() != "1.5s" {
		t.Errorf("String = %q", At(1500*time.Millisecond).String())
	}
}
