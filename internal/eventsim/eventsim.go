// Package eventsim implements a deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue.
//
// Events scheduled for the same instant fire in scheduling order (FIFO
// tie-break by sequence number), which makes simulations reproducible
// independent of map iteration or scheduler behaviour.
package eventsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start of
// the run.
type Time int64

// Common timestamps.
const (
	Start Time = 0
	// Never sorts after every reachable timestamp; it marks "not scheduled".
	Never Time = 1<<63 - 1
)

// At converts a duration-from-start to an absolute timestamp.
func At(d time.Duration) Time { return Time(d) }

// Add offsets a timestamp by a duration.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration returns the time elapsed since the start of the simulation.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp in seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return t.Duration().String()
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Loop is a discrete-event simulation loop. The zero value is ready to use.
// It is not safe for concurrent use; a simulation is single-threaded by
// design and parallelism belongs at the whole-simulation level.
type Loop struct {
	now    Time
	seq    uint64
	events eventHeap
	count  uint64
}

// Now returns the current simulation time.
func (l *Loop) Now() Time { return l.now }

// Processed reports how many events have been executed so far.
func (l *Loop) Processed() uint64 { return l.count }

// Pending reports how many events are waiting in the queue.
func (l *Loop) Pending() int { return len(l.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in the caller, and silently reordering time would
// corrupt a simulation.
func (l *Loop) Schedule(at Time, fn func()) {
	if at < l.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", at, l.now))
	}
	l.seq++
	heap.Push(&l.events, event{at: at, seq: l.seq, fn: fn})
}

// After runs fn after delay d from the current time. Negative delays are
// treated as zero.
func (l *Loop) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l.Schedule(l.now.Add(d), fn)
}

// Run executes events in timestamp order until the queue empties or the
// clock would pass until. It returns the number of events executed. The
// clock is left at the later of its current value and until when the queue
// drains early, so successive Run calls observe monotonic time.
func (l *Loop) Run(until Time) uint64 {
	var n uint64
	for {
		next, ok := l.events.peek()
		if !ok || next.at > until {
			break
		}
		heap.Pop(&l.events)
		l.now = next.at
		next.fn()
		n++
		l.count++
	}
	if l.now < until {
		l.now = until
	}
	return n
}

// RunFor executes events for duration d of simulated time from now.
func (l *Loop) RunFor(d time.Duration) uint64 { return l.Run(l.now.Add(d)) }

// Drain executes all remaining events regardless of timestamp. Useful in
// tests; simulations should normally bound time with Run.
func (l *Loop) Drain() uint64 { return l.Run(Never) }

// Timer is a cancellable, re-armable scheduled callback. A Timer may be
// re-armed from within its own callback. The zero value is invalid; use
// NewTimer.
type Timer struct {
	loop *Loop
	fn   func()
	at   Time
	gen  uint64 // arming generation; stale events no-op
}

// NewTimer creates a timer on l that runs fn when it fires.
func NewTimer(l *Loop, fn func()) *Timer {
	return &Timer{loop: l, fn: fn, at: Never}
}

// Arm sets the timer to fire at absolute time at, replacing any prior
// deadline.
func (t *Timer) Arm(at Time) {
	t.gen++
	t.at = at
	gen := t.gen
	t.loop.Schedule(at, func() {
		if t.gen != gen {
			return // re-armed or stopped since
		}
		t.at = Never
		t.fn()
	})
}

// ArmAfter sets the timer to fire after d from now.
func (t *Timer) ArmAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.loop.Now().Add(d))
}

// Stop cancels any pending firing.
func (t *Timer) Stop() {
	t.gen++
	t.at = Never
}

// Armed reports whether the timer has a pending deadline, and the deadline.
func (t *Timer) Armed() (Time, bool) { return t.at, t.at != Never }
