// Package eventsim implements a deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue.
//
// Events scheduled for the same instant fire in scheduling order (FIFO
// tie-break by sequence number), which makes simulations reproducible
// independent of map iteration or scheduler behaviour.
//
// The queue is typed and allocation-free: events are flat records in a
// pooled arena, and hot-path events dispatch through a (Kind, Handler)
// pair instead of a heap-allocated closure. Scheduling a typed event
// allocates nothing once the arena has reached its steady-state size; the
// closure form (Schedule, After) remains for cold paths that fire a
// handful of times per run.
//
// Ordering is maintained by a two-tier structure chosen by benchmark (see
// DESIGN §13): events within the near horizon — the vast majority: packet
// service completions, ACK arrivals, loss detections, pacer fires — live
// in a calendar queue (a timing wheel of per-bucket lists kept sorted by
// (at, seq), with an occupancy bitmap for O(1) next-bucket scans), while
// the few far-future events (fault chains, flow restarts) live in an
// indexed 4-ary min-heap. Both tiers support in-place cancellation, so
// stale timer generations are removed rather than left to no-op and
// Pending and Processed count live events only. Dequeue compares the two
// tiers' minima on the full (at, seq) key, so the execution order is
// exactly the single-queue order.
package eventsim

import (
	"fmt"
	"math/bits"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start of
// the run.
type Time int64

// Common timestamps.
const (
	Start Time = 0
	// Never sorts after every reachable timestamp; it marks "not scheduled".
	Never Time = 1<<63 - 1
)

// At converts a duration-from-start to an absolute timestamp.
func At(d time.Duration) Time { return Time(d) }

// Add offsets a timestamp by a duration.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration returns the time elapsed since the start of the simulation.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp in seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return t.Duration().String()
}

// Kind discriminates typed events for a Handler's dispatch switch.
// Non-negative kinds belong to the caller; negative values are reserved by
// the engine (closure events, timers).
type Kind int32

const (
	kindFunc  Kind = -1 // record carries a fn closure
	kindTimer Kind = -2 // record's target is a *Timer
)

// Handler receives typed events. Implementations are typically small
// pooled objects (a packet, a flow) that switch on the kind; storing a
// pointer implementation in an event record does not allocate.
type Handler interface {
	OnEvent(k Kind)
}

// Wheel geometry. Bucket width is 1<<wheelShift nanoseconds (~33µs), and
// wheelBuckets of them span a ~268ms horizon — comfortably past the
// largest ACK delay a WAN-scale scenario schedules, so per-packet events
// essentially never fall through to the far heap. The wheel costs 36KB, a
// fraction of L2, and with packet-level event densities of tens of
// thousands per simulated second the mean bucket occupancy stays around
// one, keeping sorted insertion O(1) in practice.
const (
	wheelShift   = 15
	wheelBuckets = 8192
)

// Location sentinels for record.pos (non-negative values are far-heap
// positions).
const (
	posWheel int32 = -2
	posFree  int32 = -3
)

// entry is one far-heap element. The (at, seq) sort key lives in the heap
// itself so sifting compares contiguous memory instead of chasing arena
// indices.
type entry struct {
	at  Time
	seq uint64
	idx int32 // arena slot
}

// record is one scheduled event in the arena. Records are recycled through
// an internal free list. pos tracks where the record lives — a far-heap
// position, or posWheel with prev/next linking it into its bucket's sorted
// list — so cancellation and re-arming find it in O(1).
type record struct {
	at     Time
	seq    uint64
	target Handler
	fn     func()
	kind   Kind
	pos    int32
	prev   int32 // bucket-list links (wheel residents only); -1 terminates
	next   int32
}

// Loop is a discrete-event simulation loop. The zero value is ready to use.
// It is not safe for concurrent use; a simulation is single-threaded by
// design and parallelism belongs at the whole-simulation level.
type Loop struct {
	now   Time
	seq   uint64
	count uint64
	recs  []record // event arena; referenced by wheel lists, heap and free list
	free  []int32  // recycled arena slots
	heap  []entry  // far events (beyond the wheel horizon), 4-ary min-heap by (at, seq)

	// Calendar queue for near events.
	buckets   []int32  // head arena slot per bucket, -1 when empty
	tails     []int32  // tail arena slot per bucket; keys arrive mostly in ascending order, so inserts append in O(1)
	bits      []uint64 // bucket occupancy bitmap
	wheelLive int      // events currently in the wheel
	minVB     int64    // cached smallest at>>wheelShift among wheel residents (valid when minValid)
	minValid  bool     // invalidated when the minimum bucket empties; wheelMin rescans lazily

	// Single-slot fast lane (see ScheduleNext): the one event class that is
	// both the most frequent and guaranteed unique — a link's next service
	// completion — bypasses the wheel and the arena entirely.
	fastAt     Time
	fastSeq    uint64
	fastKind   Kind
	fastTarget Handler
	fastLive   bool

	// heapOnly forces every event into the far heap; benchmarks use it to
	// compare the pure-heap and calendar configurations on equal terms.
	heapOnly bool
}

// Now returns the current simulation time.
func (l *Loop) Now() Time { return l.now }

// Processed reports how many events have been executed so far. Cancelled
// events (stopped timers, superseded re-arms) are removed in place and are
// never counted.
func (l *Loop) Processed() uint64 { return l.count }

// Pending reports how many live events are waiting in the queue.
func (l *Loop) Pending() int {
	n := l.wheelLive + len(l.heap)
	if l.fastLive {
		n++
	}
	return n
}

// Reserve grows the queue's internal storage to hold at least n pending
// events without further allocation, and brings the wheel into existence.
// Call it before a run whose steady-state event population is known (e.g.
// from a scenario's bandwidth-delay product), so the hot loop never grows
// the arena mid-simulation.
func (l *Loop) Reserve(n int) {
	if n > cap(l.recs) {
		recs := make([]record, len(l.recs), n)
		copy(recs, l.recs)
		l.recs = recs
	}
	if n > cap(l.heap) {
		heap := make([]entry, len(l.heap), n)
		copy(heap, l.heap)
		l.heap = heap
	}
	if n > cap(l.free) {
		free := make([]int32, len(l.free), n)
		copy(free, l.free)
		l.free = free
	}
	if l.buckets == nil && !l.heapOnly {
		l.initWheel()
	}
}

func (l *Loop) initWheel() {
	l.buckets = make([]int32, wheelBuckets)
	l.tails = make([]int32, wheelBuckets)
	for i := range l.buckets {
		l.buckets[i] = -1
		l.tails[i] = -1
	}
	l.bits = make([]uint64, wheelBuckets/64)
}

// alloc takes a free arena slot (or grows the arena) and stamps its payload.
func (l *Loop) alloc(kind Kind, target Handler, fn func()) int32 {
	var idx int32
	if n := len(l.free); n > 0 {
		idx = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		idx = int32(len(l.recs))
		l.recs = append(l.recs, record{})
	}
	r := &l.recs[idx]
	r.kind = kind
	r.target = target
	r.fn = fn
	return idx
}

// release returns a slot to the free list. The slot's target and fn are
// left in place — alloc overwrites them on reuse, and the free list is LIFO
// so a released slot is the next one recycled. A handler can be retained at
// most until the queue next reaches the slot, which in a running simulation
// is the very next schedule.
func (l *Loop) release(idx int32) {
	l.recs[idx].pos = posFree
	l.free = append(l.free, idx)
}

// insert places the already-stamped slot idx at deadline at: in the wheel
// when the deadline is within the horizon, in the far heap otherwise. The
// horizon test is against the bucket of the current time, so a wheel
// resident's bucket is always within one rotation of the clock and maps to
// a unique physical bucket.
func (l *Loop) insert(idx int32, at Time) {
	r := &l.recs[idx]
	r.at = at
	r.seq = l.seq
	if !l.heapOnly {
		if l.buckets == nil {
			l.initWheel()
		}
		if (at>>wheelShift)-(l.now>>wheelShift) < wheelBuckets {
			l.wheelInsert(idx, r)
			return
		}
	}
	l.heapPush(entry{at: at, seq: r.seq, idx: idx})
}

// wheelInsert links slot idx into its bucket's (at, seq)-sorted list.
// Sequence numbers grow monotonically and deadlines cluster forward, so
// most arrivals sort after the bucket's tail; checking the tail first
// makes those (including a burst of same-instant events) O(1) instead of
// a walk of the whole list.
func (l *Loop) wheelInsert(idx int32, r *record) {
	vb := int64(r.at >> wheelShift)
	b := int(vb & (wheelBuckets - 1))
	r.pos = posWheel
	// Track the minimum virtual bucket so wheelMin is a single load in the
	// common case. A resident's virtual bucket maps to a unique physical
	// bucket (all residents sit within one rotation of the clock), so the
	// cache pins both. When the cache is stale (minValid false) it stays
	// stale — only a full scan may re-establish it.
	if l.wheelLive == 0 {
		l.minVB, l.minValid = vb, true
	} else if l.minValid && vb < l.minVB {
		l.minVB = vb
	}
	head := l.buckets[b]
	if head < 0 {
		r.prev, r.next = -1, -1
		l.buckets[b] = idx
		l.tails[b] = idx
		l.bits[b>>6] |= 1 << (b & 63)
		l.wheelLive++
		return
	}
	tail := l.tails[b]
	if t := &l.recs[tail]; t.at < r.at || (t.at == r.at && t.seq < r.seq) {
		r.prev, r.next = tail, -1
		t.next = idx
		l.tails[b] = idx
		l.wheelLive++
		return
	}
	h := &l.recs[head]
	if r.at < h.at || (r.at == h.at && r.seq < h.seq) {
		r.prev, r.next = -1, head
		h.prev = idx
		l.buckets[b] = idx
		l.wheelLive++
		return
	}
	p := head
	for {
		pn := l.recs[p].next
		if pn < 0 {
			break
		}
		n := &l.recs[pn]
		if r.at < n.at || (r.at == n.at && r.seq < n.seq) {
			break
		}
		p = pn
	}
	r.prev, r.next = p, l.recs[p].next
	if r.next >= 0 {
		l.recs[r.next].prev = idx
	} else {
		l.tails[b] = idx
	}
	l.recs[p].next = idx
	l.wheelLive++
}

// wheelRemove unlinks slot idx from its bucket list.
func (l *Loop) wheelRemove(idx int32) {
	r := &l.recs[idx]
	vb := int64(r.at >> wheelShift)
	b := int(vb & (wheelBuckets - 1))
	if r.prev >= 0 {
		l.recs[r.prev].next = r.next
	} else {
		l.buckets[b] = r.next
		if r.next < 0 {
			l.bits[b>>6] &^= 1 << (b & 63)
			if vb == l.minVB {
				// The minimum bucket just emptied; the next wheelMin rescans.
				l.minValid = false
			}
		}
	}
	if r.next >= 0 {
		l.recs[r.next].prev = r.prev
	} else {
		l.tails[b] = r.prev
	}
	l.wheelLive--
}

// wheelMin returns the arena slot of the earliest wheel event, or -1 when
// the wheel is empty. Wheel residents are always within one rotation ahead
// of the clock, so the first occupied bucket in ring order from the
// current bucket holds the minimum, and its sorted head is the event. The
// bitmap turns the ring scan into a handful of word reads.
func (l *Loop) wheelMin() int32 {
	if l.wheelLive == 0 {
		return -1
	}
	if l.minValid {
		return l.buckets[int(l.minVB&(wheelBuckets-1))]
	}
	start := int((l.now >> wheelShift) & (wheelBuckets - 1))
	w0 := start >> 6
	word := l.bits[w0] & (^uint64(0) << (start & 63))
	w := w0
	for {
		if word != 0 {
			b := w<<6 + bits.TrailingZeros64(word)
			idx := l.buckets[b]
			l.minVB = int64(l.recs[idx].at >> wheelShift)
			l.minValid = true
			return idx
		}
		w++
		if w == len(l.bits) {
			w = 0
		}
		if w == w0 {
			// Wrapped all the way: only the skipped low bits of the start
			// word remain.
			word = l.bits[w0] &^ (^uint64(0) << (start & 63))
			if word == 0 {
				return -1
			}
			continue
		}
		word = l.bits[w]
	}
}

// heapPush appends e to the far heap and restores order.
func (l *Loop) heapPush(e entry) {
	i := len(l.heap)
	l.heap = append(l.heap, e)
	l.recs[e.idx].pos = int32(i)
	l.siftUp(i)
}

// siftUp moves the entry at heap position i toward the root until its
// parent orders before it. The moved entry is held in a hole while parents
// shift down, so each step writes one entry and one position.
func (l *Loop) siftUp(i int) {
	h := l.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		pe := h[p]
		if pe.at < e.at || (pe.at == e.at && pe.seq < e.seq) {
			break
		}
		h[i] = pe
		l.recs[pe.idx].pos = int32(i)
		i = p
	}
	h[i] = e
	l.recs[e.idx].pos = int32(i)
}

// siftDown moves the entry at heap position i toward the leaves until no
// child orders before it.
func (l *Loop) siftDown(i int) {
	h := l.heap
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the least of up to four children; they are adjacent in the
		// heap slice, so this scan stays within two cache lines.
		m := c
		me := h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			je := h[j]
			if je.at < me.at || (je.at == me.at && je.seq < me.seq) {
				m, me = j, je
			}
		}
		if e.at < me.at || (e.at == me.at && e.seq < me.seq) {
			break
		}
		h[i] = me
		l.recs[me.idx].pos = int32(i)
		i = m
	}
	h[i] = e
	l.recs[e.idx].pos = int32(i)
}

// fix restores heap order for the entry at heap position i after its key
// changed or after an arbitrary entry was moved there. If siftUp moves the
// entry toward the root, the former parent now at i already bounds i's
// subtree, so the subsequent siftDown is a no-op.
func (l *Loop) fix(i int) {
	l.siftUp(i)
	l.siftDown(i)
}

// heapRemove deletes the entry at heap position i, moving the last entry
// into the hole.
func (l *Loop) heapRemove(i int) {
	n := len(l.heap) - 1
	last := l.heap[n]
	l.heap = l.heap[:n]
	if i < n {
		l.heap[i] = last
		l.recs[last.idx].pos = int32(i)
		l.fix(i)
	}
}

// detach removes the pending slot idx from whichever tier holds it,
// without releasing the arena slot.
func (l *Loop) detach(idx int32) {
	if r := &l.recs[idx]; r.pos == posWheel {
		l.wheelRemove(idx)
	} else {
		l.heapRemove(int(r.pos))
	}
}

// schedule stamps and enqueues an event, returning its arena slot.
func (l *Loop) schedule(at Time, kind Kind, target Handler, fn func()) int32 {
	if at < l.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", at, l.now))
	}
	l.seq++
	idx := l.alloc(kind, target, fn)
	l.insert(idx, at)
	return idx
}

// reschedule moves a pending event to a new deadline in place, stamping a
// fresh sequence number — exactly the tie-break a cancel-and-reschedule
// would produce, without touching the free list.
func (l *Loop) reschedule(idx int32, at Time) {
	if at < l.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", at, l.now))
	}
	l.detach(idx)
	l.seq++
	l.insert(idx, at)
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in the caller, and silently reordering time would
// corrupt a simulation. The closure form allocates on the caller's side;
// per-packet paths should use ScheduleEvent instead.
func (l *Loop) Schedule(at Time, fn func()) {
	l.schedule(at, kindFunc, nil, fn)
}

// After runs fn after delay d from the current time. Negative delays are
// treated as zero.
func (l *Loop) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l.Schedule(l.now.Add(d), fn)
}

// ScheduleEvent enqueues a typed event: at time at, target.OnEvent(kind) is
// called. Nothing is allocated once the queue has reached steady-state
// size. The kind must be non-negative; negative kinds are reserved.
func (l *Loop) ScheduleEvent(at Time, kind Kind, target Handler) {
	l.schedule(at, kind, target, nil)
}

// AfterEvent enqueues a typed event after delay d from the current time.
// Negative delays are treated as zero.
func (l *Loop) AfterEvent(d time.Duration, kind Kind, target Handler) {
	if d < 0 {
		d = 0
	}
	l.ScheduleEvent(l.now.Add(d), kind, target)
}

// ScheduleNext enqueues a typed event through the single-slot fast lane:
// no arena record, no wheel or heap insertion, one compare at dispatch.
// At most one fast-lane event may be pending per loop; scheduling a second
// panics. It exists for the tightest recurring event a simulation has —
// netsim uses it for the bottleneck's next service completion — and is
// otherwise interchangeable with ScheduleEvent, including its position in
// the (at, seq) total order.
func (l *Loop) ScheduleNext(at Time, kind Kind, target Handler) {
	if at < l.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", at, l.now))
	}
	if l.fastLive {
		panic("eventsim: ScheduleNext called with a fast-lane event already pending")
	}
	l.seq++
	l.fastAt = at
	l.fastSeq = l.seq
	l.fastKind = kind
	l.fastTarget = target
	l.fastLive = true
}

// min locates the earliest pending event across the three tiers. It returns
// the arena slot, or -1 with fast=true for the fast-lane slot, or -1 with
// fast=false for an empty queue.
func (l *Loop) min() (idx int32, fast bool) {
	at, seq := Never, ^uint64(0)
	if l.fastLive {
		at, seq, fast = l.fastAt, l.fastSeq, true
	}
	idx = -1
	if l.wheelLive > 0 {
		// Same-instant shortcut: no wheel event can precede now, so a head
		// at exactly now in the clock's own bucket is the wheel minimum
		// without a bitmap scan. Event cascades (ACK bursts, drop trains)
		// hit this constantly.
		widx := int32(-1)
		if h := l.buckets[int((l.now>>wheelShift)&(wheelBuckets-1))]; h >= 0 && l.recs[h].at == l.now {
			widx = h
		} else {
			widx = l.wheelMin()
		}
		if widx >= 0 {
			r := &l.recs[widx]
			if r.at < at || (r.at == at && r.seq < seq) {
				at, seq, idx, fast = r.at, r.seq, widx, false
			}
		}
	}
	if len(l.heap) > 0 {
		if e := l.heap[0]; e.at < at || (e.at == at && e.seq < seq) {
			idx, fast = e.idx, false
		}
	}
	return idx, fast
}

// Peek reports the next event in the queue without executing it: its time,
// kind and target (nil kind/target for closure events). Dispatch code uses
// it to coalesce work across consecutive same-target events.
func (l *Loop) Peek() (at Time, kind Kind, target Handler, ok bool) {
	idx, fast := l.min()
	if fast {
		return l.fastAt, l.fastKind, l.fastTarget, true
	}
	if idx < 0 {
		return 0, 0, nil, false
	}
	r := &l.recs[idx]
	return r.at, r.kind, r.target, true
}

// PeekSameInstant reports the earliest pending event if and only if its
// deadline is exactly the current instant; ok is false when the next event
// lies in the future. Unlike Peek it costs a constant handful of loads —
// a same-instant wheel event can only live at the head of the clock's own
// bucket — so dispatch code can afford it on every event when coalescing
// consecutive same-instant work.
func (l *Loop) PeekSameInstant() (kind Kind, target Handler, ok bool) {
	idx := int32(-1)
	var seq uint64
	if l.wheelLive > 0 {
		b := int((l.now >> wheelShift) & (wheelBuckets - 1))
		if h := l.buckets[b]; h >= 0 && l.recs[h].at == l.now {
			idx, seq = h, l.recs[h].seq
		}
	}
	if len(l.heap) > 0 {
		if e := l.heap[0]; e.at == l.now && (idx < 0 || e.seq < seq) {
			idx, seq = e.idx, e.seq
		}
	}
	if l.fastLive && l.fastAt == l.now && (idx < 0 || l.fastSeq < seq) {
		return l.fastKind, l.fastTarget, true
	}
	if idx < 0 {
		return 0, nil, false
	}
	r := &l.recs[idx]
	return r.kind, r.target, true
}

// Run executes events in timestamp order until the queue empties or the
// clock would pass until. It returns the number of events executed. The
// clock is left at the later of its current value and until when the queue
// drains early, so successive Run calls observe monotonic time.
func (l *Loop) Run(until Time) uint64 {
	var n uint64
	for {
		idx, fast := l.min()
		if fast {
			if l.fastAt > until {
				break
			}
			l.now = l.fastAt
			kind, target := l.fastKind, l.fastTarget
			l.fastTarget = nil
			l.fastLive = false
			target.OnEvent(kind)
			n++
			l.count++
			continue
		}
		if idx < 0 {
			break
		}
		r := &l.recs[idx]
		if r.at > until {
			break
		}
		l.now = r.at
		kind, target, fn := r.kind, r.target, r.fn
		// Detach the record before dispatch: the callback may schedule,
		// cancel or re-arm freely against a consistent queue.
		l.detach(idx)
		l.release(idx)
		if fn != nil {
			fn()
		} else {
			target.OnEvent(kind)
		}
		n++
		l.count++
	}
	if l.now < until {
		l.now = until
	}
	return n
}

// RunFor executes events for duration d of simulated time from now.
func (l *Loop) RunFor(d time.Duration) uint64 { return l.Run(l.now.Add(d)) }

// Drain executes all remaining events regardless of timestamp. Useful in
// tests; simulations should normally bound time with Run.
func (l *Loop) Drain() uint64 { return l.Run(Never) }

// Timer is a cancellable, re-armable scheduled callback. A Timer may be
// re-armed from within its own callback. Re-arming moves the pending entry
// within the queue and stopping removes it — a stale deadline never remains
// behind to no-op. The zero value is invalid; use NewTimer, or embed a
// Timer and call Init.
type Timer struct {
	loop   *Loop
	fn     func()
	target Handler // typed form: fires target.OnEvent(kind) when fn is nil
	kind   Kind
	id     int32 // arena slot of the pending event, or -1
	at     Time
}

// NewTimer creates a timer on l that runs fn when it fires.
func NewTimer(l *Loop, fn func()) *Timer {
	t := &Timer{}
	t.Init(l, fn)
	return t
}

// Init prepares an embedded timer in place, equivalent to NewTimer without
// the allocation. It must be called exactly once, before any Arm.
func (t *Timer) Init(l *Loop, fn func()) {
	t.loop = l
	t.fn = fn
	t.id = -1
	t.at = Never
}

// InitEvent prepares an embedded timer that fires target.OnEvent(kind)
// instead of a closure — the typed analogue of Init, avoiding the closure
// allocation per timer owner. Like Init it must be called exactly once,
// before any Arm.
func (t *Timer) InitEvent(l *Loop, kind Kind, target Handler) {
	t.loop = l
	t.kind = kind
	t.target = target
	t.id = -1
	t.at = Never
}

// OnEvent runs the callback of a timer event popped by the loop. The slot
// is cleared first so the callback may immediately re-arm. It implements
// Handler; callers never invoke it directly.
func (t *Timer) OnEvent(Kind) {
	t.id = -1
	t.at = Never
	if t.fn != nil {
		t.fn()
		return
	}
	t.target.OnEvent(t.kind)
}

// Arm sets the timer to fire at absolute time at, replacing any prior
// deadline in place.
func (t *Timer) Arm(at Time) {
	t.at = at
	if t.id >= 0 {
		t.loop.reschedule(t.id, at)
		return
	}
	t.id = t.loop.schedule(at, kindTimer, t, nil)
}

// ArmAfter sets the timer to fire after d from now.
func (t *Timer) ArmAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.loop.Now().Add(d))
}

// Stop cancels any pending firing, removing the queued event in place.
func (t *Timer) Stop() {
	if t.id >= 0 {
		t.loop.detach(t.id)
		t.loop.release(t.id)
		t.id = -1
	}
	t.at = Never
}

// Armed reports whether the timer has a pending deadline, and the deadline.
func (t *Timer) Armed() (Time, bool) { return t.at, t.at != Never }
