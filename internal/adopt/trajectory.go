package adopt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Record is one trajectory point: the population state at the start of a
// generation together with the payoffs that state earned. Maps are keyed
// by algorithm name; encoding/json sorts map keys, so a marshalled record
// is byte-deterministic and trajectories can be compared with bytes.Equal.
type Record struct {
	Generation int          `json:"generation"`
	Classes    []ClassState `json:"classes"`
	// MeanPayoffMbps is the population mean payoff: each agent weighted
	// by its class/algorithm cell's per-flow throughput.
	MeanPayoffMbps float64 `json:"mean_payoff_mbps"`
	// FixedPoint is set on the final record only: whether the final
	// scaled profile is a per-class eps-equilibrium (see Result).
	FixedPoint *bool `json:"fixed_point,omitempty"`
}

// ClassState is one RTT class's slice of a Record.
type ClassState struct {
	RTTMs float64 `json:"rtt_ms"`
	// Counts is the agent census; Shares the same as fractions of the
	// class (0 for an empty class).
	Counts map[string]int     `json:"counts"`
	Shares map[string]float64 `json:"shares"`
	// SimCounts is the probed scaled flow profile this generation's
	// payoff simulation ran with, and PayoffsMbps the per-flow throughput
	// each cell earned there.
	SimCounts   map[string]int     `json:"sim_counts"`
	PayoffsMbps map[string]float64 `json:"payoffs_mbps"`
}

// makeRecord snapshots one evaluated state.
func makeRecord(gen int, cfg Config, pop Population, sim [][]int, pay [][]float64) Record {
	rec := Record{Generation: gen, Classes: make([]ClassState, len(cfg.Classes))}
	totalPay := 0.0
	for c, cl := range cfg.Classes {
		st := ClassState{
			RTTMs:       float64(cl.RTT) / float64(time.Millisecond),
			Counts:      make(map[string]int, len(cfg.Algorithms)),
			Shares:      make(map[string]float64, len(cfg.Algorithms)),
			SimCounts:   make(map[string]int, len(cfg.Algorithms)),
			PayoffsMbps: make(map[string]float64, len(cfg.Algorithms)),
		}
		n := sum(pop.Counts[c])
		for a, name := range cfg.Algorithms {
			k := pop.Counts[c][a]
			st.Counts[name] = k
			if n > 0 {
				st.Shares[name] = float64(k) / float64(n)
			} else {
				st.Shares[name] = 0
			}
			st.SimCounts[name] = sim[c][a]
			st.PayoffsMbps[name] = pay[c][a]
			totalPay += float64(k) * pay[c][a]
		}
		rec.Classes[c] = st
	}
	if cfg.Agents > 0 {
		rec.MeanPayoffMbps = totalPay / float64(cfg.Agents)
	}
	return rec
}

// WriteJSONL writes the trajectory as one JSON object per line. The bytes
// are deterministic for a deterministic trajectory (map keys sort, float
// formatting is canonical), so two runs can be diffed at the byte level.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if err := writeRecordJSON(bw, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeRecordJSON writes one record and its newline.
func writeRecordJSON(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("adopt: encoding trajectory record %d: %w", rec.Generation, err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
