// Package adopt runs deterministic evolutionary dynamics over congestion
// control algorithm populations: the paper's §5 question — if deployments
// keep switching to whatever performs best, where does the mix of CUBIC,
// Reno and BBR settle? — asked at population scale rather than as a static
// equilibrium enumeration.
//
// A Population holds 10⁴–10⁶ agents partitioned into RTT classes, each
// agent running one algorithm from the internal/cc registry. Per
// generation the population's mixture is scaled down to a simulatable flow
// profile, evaluated through the experiment harness (internal/exp, fluid
// backend by default, memoized by canonical scenario key), and agents
// revise strategy under replicator dynamics or noisy best response. Both
// dynamics are serial and seeded, so a trajectory is byte-identical at any
// worker count; the worker pool only accelerates the final fixed-point
// check's deviation payoffs, which are cached by key and therefore
// order-insensitive.
package adopt

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/exp"
	"bbrnash/internal/game"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// Dynamics names the strategy-revision rules.
const (
	// Replicator grows each algorithm's share in proportion to its payoff
	// relative to the class mean (discrete-time replicator dynamics), with
	// Noise mixing a uniform mutation term in.
	Replicator = "replicator"
	// BestResponse has each agent independently revise with probability
	// ReviseProb per generation: a reviser picks the class's
	// highest-payoff algorithm, or with probability Noise a uniformly
	// random one.
	BestResponse = "bestresponse"
)

// Dynamics lists the valid dynamics names.
func Dynamics() []string { return []string{Replicator, BestResponse} }

// Class is one RTT class of the population: Weight is the class's fraction
// of agents (normalized over classes).
type Class struct {
	RTT    time.Duration
	Weight float64
}

// Config describes one adoption-dynamics run. The zero value is not
// runnable; Run validates and applies the documented defaults.
type Config struct {
	// Capacity and Buffer describe the shared bottleneck every payoff
	// simulation runs through.
	Capacity units.Rate
	Buffer   units.Bytes
	// Classes partitions agents into RTT classes (default: one class at
	// 40ms). An agent never changes class — only its algorithm.
	Classes []Class
	// Algorithms is the strategy set, each a cc registry name (default
	// cubic, reno, bbr — the trio the fluid backend models).
	Algorithms []string
	// Shares seeds every class's initial algorithm mixture (len must
	// match Algorithms; default uniform). Normalized over its sum.
	Shares []float64
	// Agents is the total population size (default 10000).
	Agents int
	// Generations is the number of revision steps; the trajectory has
	// Generations+1 records (states 0..Generations).
	Generations int
	// Dynamics selects the revision rule (default Replicator).
	Dynamics string
	// Noise is the mutation/exploration rate η in [0,1]: replicator mixes
	// η of the uniform distribution into each update; best response makes
	// a reviser pick uniformly at random with probability η. Default 0.
	Noise float64
	// ReviseProb is best response's per-agent revision probability
	// (default 1: every agent revises every generation).
	ReviseProb float64
	// SimFlows is the total flow count the population mixture is scaled
	// down to per payoff simulation (default 20). Must be at least
	// len(Classes)×len(Algorithms): every (class, algorithm) cell keeps
	// one probe flow even when its share rounds to zero, so invasion
	// payoffs stay defined for extinct strategies.
	SimFlows int
	// Duration is each payoff simulation's simulated time; it is floored
	// to the harness's NE payoff duration (see exp.PayoffDuration).
	Duration time.Duration
	// Seed drives everything: per-profile jitter seeds (via
	// exp.ProfileSeed, so revisiting a mixture is a cache hit) and the
	// revision draws of noisy best response.
	Seed uint64
	// Backend selects the payoff engine (default fluid — a 2-minute
	// payoff simulation costs ~20ms there, which is what makes 10⁵ agents
	// × 100 generations a minutes-scale run).
	Backend string
	// EpsFraction widens the equilibrium condition exactly as in
	// exp.NESearchConfig: a gain only counts as an incentive if it
	// exceeds EpsFraction of the fair-share rate (default 5%). The same
	// eps drives revision inertia — agents ignore sub-eps payoff gaps, the
	// paper's observation that near-equilibrium switching gains are
	// marginal — which makes eps-equilibria absorbing states of both
	// dynamics instead of centers of discretization limit cycles.
	EpsFraction float64
	// SkipCheck disables the final fixed-point check (and its deviation
	// simulations); Result.FixedPoint is then false and meaningless.
	SkipCheck bool

	// Pool parallelizes the fixed-point check's deviation payoffs; nil
	// means serial. The trajectory is identical at any worker count.
	Pool *runner.Pool
	// Cache memoizes payoff simulations by canonical scenario key (nil:
	// a run-local cache still deduplicates revisited mixtures).
	Cache *runner.Cache
	// Journal write-ahead-logs completed payoff simulations for
	// crash-safe resumption; rerunning with the same journal replays the
	// trajectory byte-identically without re-simulating.
	Journal *runner.Journal
	// Ctx cancels the run between payoff simulations.
	Ctx context.Context
	// Audit validates every payoff simulation's physical invariants.
	Audit *check.Auditor
	// Trace records fresh payoff simulations' run traces.
	Trace *telemetry.Recorder
	// OnRecord, when non-nil, observes each trajectory record as it is
	// produced (cmd/adopt streams JSONL through this).
	OnRecord func(Record)
}

// Population is the per-class algorithm census: Counts[c][a] agents of
// class c run algorithm a.
type Population struct {
	Counts [][]int
}

// Result is one completed run.
type Result struct {
	// Trajectory holds Generations+1 records: the evaluated states
	// 0..Generations.
	Trajectory []Record
	// Final is the population after the last revision step.
	Final Population
	// FixedPoint reports whether the final state's scaled flow profile is
	// an (eps-)equilibrium: no single flow in any class gains more than
	// eps by switching algorithm (checked per class with all other
	// classes frozen, via game.MultiSymmetric).
	FixedPoint bool
	// Simulations and CacheHits count this run's payoff evaluations that
	// ran fresh versus came from the cache or journal.
	Simulations int
	CacheHits   int
}

// withDefaults validates the config and fills defaults.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Capacity <= 0 {
		return cfg, fmt.Errorf("adopt: non-positive capacity %v", cfg.Capacity)
	}
	if cfg.Buffer <= 0 {
		return cfg, fmt.Errorf("adopt: non-positive buffer %v", cfg.Buffer)
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []Class{{RTT: 40 * time.Millisecond, Weight: 1}}
	}
	for i, cl := range cfg.Classes {
		if cl.RTT <= 0 {
			return cfg, fmt.Errorf("adopt: class %d has non-positive RTT %v", i, cl.RTT)
		}
		if cl.Weight <= 0 {
			return cfg, fmt.Errorf("adopt: class %d has non-positive weight %v", i, cl.Weight)
		}
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = []string{"cubic", "reno", "bbr"}
	}
	if len(cfg.Algorithms) < 2 {
		return cfg, fmt.Errorf("adopt: need at least 2 algorithms, have %v", cfg.Algorithms)
	}
	for _, name := range cfg.Algorithms {
		if _, err := cc.AlgorithmByName(name); err != nil {
			return cfg, fmt.Errorf("adopt: %w", err)
		}
	}
	if cfg.Shares == nil {
		cfg.Shares = make([]float64, len(cfg.Algorithms))
		for i := range cfg.Shares {
			cfg.Shares[i] = 1
		}
	}
	if len(cfg.Shares) != len(cfg.Algorithms) {
		return cfg, fmt.Errorf("adopt: %d shares for %d algorithms", len(cfg.Shares), len(cfg.Algorithms))
	}
	total := 0.0
	for i, s := range cfg.Shares {
		if s < 0 {
			return cfg, fmt.Errorf("adopt: negative share %v for %s", s, cfg.Algorithms[i])
		}
		total += s
	}
	if total <= 0 {
		return cfg, fmt.Errorf("adopt: shares sum to %v", total)
	}
	if cfg.Agents == 0 {
		cfg.Agents = 10000
	}
	if cfg.Agents < 1 {
		return cfg, fmt.Errorf("adopt: non-positive population %d", cfg.Agents)
	}
	if cfg.Generations < 0 {
		return cfg, fmt.Errorf("adopt: negative generations %d", cfg.Generations)
	}
	if cfg.Dynamics == "" {
		cfg.Dynamics = Replicator
	}
	if cfg.Dynamics != Replicator && cfg.Dynamics != BestResponse {
		return cfg, fmt.Errorf("adopt: unknown dynamics %q (want %q or %q)", cfg.Dynamics, Replicator, BestResponse)
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return cfg, fmt.Errorf("adopt: noise %v outside [0,1]", cfg.Noise)
	}
	if cfg.ReviseProb == 0 {
		cfg.ReviseProb = 1
	}
	if cfg.ReviseProb < 0 || cfg.ReviseProb > 1 {
		return cfg, fmt.Errorf("adopt: revise probability %v outside (0,1]", cfg.ReviseProb)
	}
	if cfg.SimFlows == 0 {
		cfg.SimFlows = 20
	}
	if cells := len(cfg.Classes) * len(cfg.Algorithms); cfg.SimFlows < cells {
		return cfg, fmt.Errorf("adopt: %d sim flows cannot cover %d (class, algorithm) probe cells", cfg.SimFlows, cells)
	}
	if cfg.Backend == "" {
		cfg.Backend = scenario.BackendFluid
	}
	if cfg.Backend != scenario.BackendPacket && cfg.Backend != scenario.BackendFluid {
		return cfg, fmt.Errorf("adopt: unknown backend %q", cfg.Backend)
	}
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	return cfg, nil
}

// initial seeds the population: agents are apportioned over classes by
// weight, then within each class over algorithms by the seed shares, both
// by largest remainder so the integer census is a pure function of the
// config.
func initial(cfg Config) Population {
	weights := make([]float64, len(cfg.Classes))
	for i, cl := range cfg.Classes {
		weights[i] = cl.Weight
	}
	perClass := apportion(cfg.Agents, weights)
	counts := make([][]int, len(cfg.Classes))
	for c := range counts {
		counts[c] = apportion(perClass[c], cfg.Shares)
	}
	return Population{Counts: counts}
}

// Run executes the adoption dynamics and reports the full trajectory.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	ev := newEvaluator(cfg)
	pop := initial(cfg)
	// Best-response revision draws: one stream per (generation, class),
	// pre-split in that serial order, so the draw sequence is a pure
	// function of the seed regardless of how payoffs were computed.
	revRoot := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)

	res := Result{Trajectory: make([]Record, 0, cfg.Generations+1)}
	for gen := 0; gen <= cfg.Generations; gen++ {
		sim := probedSimCounts(cfg, pop)
		pay, err := ev.payoffs(cfg.Ctx, sim)
		if err != nil {
			return Result{}, err
		}
		gain, err := ev.deviationGains(cfg.Ctx, sim, pay)
		if err != nil {
			return Result{}, err
		}
		rec := makeRecord(gen, cfg, pop, sim, pay)
		if gen == cfg.Generations && !cfg.SkipCheck {
			fp, err := ev.fixedPoint(cfg, pop)
			if err != nil {
				return Result{}, err
			}
			res.FixedPoint = fp
			rec.FixedPoint = &fp
		}
		res.Trajectory = append(res.Trajectory, rec)
		if cfg.OnRecord != nil {
			cfg.OnRecord(rec)
		}
		if gen == cfg.Generations {
			break
		}
		switch cfg.Dynamics {
		case Replicator:
			pop = stepReplicator(cfg, pop, pay, gain)
		case BestResponse:
			pop = stepBestResponse(cfg, pop, gain, revRoot)
		}
	}
	res.Final = pop
	res.Simulations = int(ev.sims.Load())
	res.CacheHits = int(ev.hits.Load())
	return res, nil
}

// epsMbps is the indifference band shared by the revision rules and the
// fixed-point check: EpsFraction of the scaled game's fair share.
func (cfg Config) epsMbps() float64 {
	return cfg.EpsFraction * (cfg.Capacity / units.Rate(cfg.SimFlows)).Mbit()
}

// settled reports whether no occupied strategy of class c has a deviation
// gaining more than eps — the same one-flow-switch comparison
// game.MultiSymmetric.IsEquilibrium and exp.FindNE make, which is what
// makes eps-equilibria absorbing: payoff differences *within* a profile
// are not switching incentives (the flow that switches lands in a
// different profile, usually a worse one — the paper's marginal-gains
// observation near the NE).
func settled(counts []int, gain [][]float64, eps float64) bool {
	for a, k := range counts {
		if k == 0 {
			continue
		}
		for _, g := range gain[a] {
			if g > eps {
				return false
			}
		}
	}
	return true
}

// stepReplicator applies discrete-time replicator dynamics per class:
// share′(a) ∝ share(a)·π(a)/π̄, mixed with Noise of the uniform
// distribution, re-apportioned to the class's integer census. A class with
// non-positive mean payoff keeps its census (no growth signal to follow),
// as does a settled one (no occupied strategy has a one-flow deviation
// gaining more than eps — revision inertia).
func stepReplicator(cfg Config, pop Population, pay [][]float64, gain [][][]float64) Population {
	eps := cfg.epsMbps()
	next := make([][]int, len(pop.Counts))
	for c, counts := range pop.Counts {
		n := sum(counts)
		next[c] = append([]int(nil), counts...)
		if n == 0 || settled(counts, gain[c], eps) {
			continue
		}
		mean := 0.0
		for a, k := range counts {
			mean += float64(k) / float64(n) * pay[c][a]
		}
		if mean <= 0 {
			continue
		}
		s := len(cfg.Algorithms)
		w := make([]float64, s)
		for a, k := range counts {
			w[a] = (1-cfg.Noise)*(float64(k)/float64(n))*(pay[c][a]/mean) + cfg.Noise/float64(s)
		}
		next[c] = apportion(n, w)
	}
	return Population{Counts: next}
}

// stepBestResponse has each agent revise independently: with probability
// ReviseProb it switches to its best deviation target — the algorithm
// whose one-flow-switch payoff gain is largest, ties to the lowest index —
// when that gain exceeds eps (revision inertia), except that with
// probability Noise it explores uniformly. Agents are visited in fixed
// (class, algorithm, agent) order and the per-class draw streams are
// pre-split serially, so the step is deterministic in the seed.
func stepBestResponse(cfg Config, pop Population, gain [][][]float64, root *rng.Source) Population {
	s := len(cfg.Algorithms)
	eps := cfg.epsMbps()
	next := make([][]int, len(pop.Counts))
	for c, counts := range pop.Counts {
		src := root.Split()
		next[c] = make([]int, s)
		for a, k := range counts {
			best, bestGain := a, 0.0
			for t := 0; t < s; t++ {
				if t != a && gain[c][a][t] > bestGain {
					best, bestGain = t, gain[c][a][t]
				}
			}
			if bestGain <= eps {
				best = a // sub-eps gain: not worth switching for
			}
			for i := 0; i < k; i++ {
				if src.Float64() >= cfg.ReviseProb {
					next[c][a]++ // keeps its algorithm this generation
					continue
				}
				if cfg.Noise > 0 && src.Float64() < cfg.Noise {
					next[c][src.Intn(s)]++
					continue
				}
				next[c][best]++
			}
		}
	}
	return Population{Counts: next}
}

// probedSimCounts scales the population census down to the simulated flow
// profile: SimFlows flows apportioned over every (class, algorithm) cell
// by agent count, then each empty cell is topped up to one probe flow —
// taken from the currently largest cell — so extinct and rare strategies
// still earn an invasion payoff. The result is a pure function of the
// census, which is what makes revisited mixtures cache hits.
func probedSimCounts(cfg Config, pop Population) [][]int {
	nc, na := len(cfg.Classes), len(cfg.Algorithms)
	weights := make([]float64, nc*na)
	for c := range pop.Counts {
		for a, k := range pop.Counts[c] {
			weights[c*na+a] = float64(k)
		}
	}
	flat := apportion(cfg.SimFlows, weights)
	for i := range flat {
		if flat[i] > 0 {
			continue
		}
		j := 0
		for m := 1; m < len(flat); m++ {
			if flat[m] > flat[j] {
				j = m
			}
		}
		flat[j]--
		flat[i]++
	}
	out := make([][]int, nc)
	for c := range out {
		out[c] = flat[c*na : (c+1)*na]
	}
	return out
}

// fixedPoint checks whether the final census, scaled exactly (no probes),
// is a per-class eps-equilibrium of the scaled game: for each class, no
// single flow gains more than eps (EpsFraction of the fair share) by
// switching algorithm, other classes frozen. Deviation payoffs are
// pre-warmed through the pool — the one place workers help — and the
// per-class checks then read the cache serially.
func (ev *evaluator) fixedPoint(cfg Config, pop Population) (bool, error) {
	nc, na := len(cfg.Classes), len(cfg.Algorithms)
	weights := make([]float64, nc*na)
	for c := range pop.Counts {
		for a, k := range pop.Counts[c] {
			weights[c*na+a] = float64(k)
		}
	}
	flat := apportion(cfg.SimFlows, weights)
	base := make([][]int, nc)
	for c := range base {
		base[c] = flat[c*na : (c+1)*na]
	}

	// Every profile the per-class checks will evaluate: the base plus each
	// class's unilateral deviations, other classes frozen.
	profiles := [][][]int{base}
	for c := range base {
		for _, dev := range game.Deviations(base[c]) {
			p := make([][]int, nc)
			for cc2 := range base {
				p[cc2] = base[cc2]
			}
			p[c] = dev
			profiles = append(profiles, p)
		}
	}
	if _, err := runner.MapCtx(cfg.Ctx, cfg.Pool, len(profiles), func(uctx context.Context, i int) (struct{}, error) {
		_, err := ev.payoffs(uctx, profiles[i])
		return struct{}{}, err
	}); err != nil {
		return false, err
	}

	eps := cfg.EpsFraction * (cfg.Capacity / units.Rate(cfg.SimFlows)).Mbit()
	var evalErr error
	for c := range base {
		n := sum(base[c])
		if n == 0 {
			continue
		}
		g := &game.MultiSymmetric{
			N:          n,
			Strategies: na,
			Payoff: func(s int, k []int) float64 {
				p := make([][]int, nc)
				for cc2 := range base {
					p[cc2] = base[cc2]
				}
				p[c] = k
				pay, err := ev.payoffs(cfg.Ctx, p)
				if err != nil {
					if evalErr == nil {
						evalErr = err
					}
					return 0
				}
				return pay[c][s]
			},
		}
		ok := g.IsEquilibrium(base[c], eps)
		if evalErr != nil {
			return false, evalErr
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// apportion distributes total into integer parts proportional to weights
// by the largest-remainder method, ties broken by lowest index; an
// all-zero weight vector distributes uniformly. Deterministic, exact sum.
func apportion(total int, weights []float64) []int {
	out := make([]int, len(weights))
	if total <= 0 || len(weights) == 0 {
		return out
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	if wsum <= 0 {
		for i := range weights {
			out[i] = total / len(weights)
		}
		for i := 0; i < total-sum(out); i++ {
			out[i%len(weights)]++
		}
		return out
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(weights))
	used := 0
	for i, w := range weights {
		exact := float64(total) * w / wsum
		out[i] = int(exact)
		used += out[i]
		rems[i] = rem{i, exact - float64(out[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for j := 0; j < total-used; j++ {
		out[rems[j%len(rems)].i]++
	}
	return out
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// evaluator runs payoff simulations through the experiment harness with
// per-run simulation/hit accounting (per-run, not global-counter deltas —
// the same discipline exp.FindNE uses after the cross-search attribution
// fix).
type evaluator struct {
	cfg  Config
	dur  time.Duration
	sims atomic.Int64
	hits atomic.Int64
}

func newEvaluator(cfg Config) *evaluator {
	return &evaluator{cfg: cfg, dur: exp.PayoffDuration(cfg.Duration)}
}

// spec compiles one (class, algorithm) flow-count matrix to its scenario:
// groups in class-major, algorithm-minor order (the order is part of the
// canonical key, so one run's profiles all share a key shape), jitter seed
// derived from the flattened profile via exp.ProfileSeed so any revisit of
// the same mixture — later generation, deviation check, resumed run — is a
// cache hit.
func (ev *evaluator) spec(counts [][]int) scenario.Spec {
	cfg := ev.cfg
	flat := make([]int, 0, len(counts)*len(cfg.Algorithms))
	groups := make([]scenario.Group, 0, len(counts)*len(cfg.Algorithms))
	for c := range counts {
		for a, k := range counts[c] {
			flat = append(flat, k)
			groups = append(groups, scenario.Group{
				Algorithm: cfg.Algorithms[a],
				Count:     k,
				RTT:       cfg.Classes[c].RTT,
			})
		}
	}
	return scenario.Spec{
		Capacity:    cfg.Capacity,
		Buffer:      cfg.Buffer,
		AckJitter:   scenario.DefaultAckJitter,
		StartJitter: scenario.DefaultStartJitter,
		Duration:    ev.dur,
		Seed:        exp.ProfileSeed(cfg.Seed, flat),
		Backend:     cfg.Backend,
		Groups:      groups,
	}
}

// deviationGains computes the revision signal at one evaluated profile:
// gain[c][a][t] is how much one class-c flow of algorithm a would gain by
// switching to t — its payoff in the post-switch profile minus its current
// one, the exact comparison the equilibrium checks make. Deviation
// profiles recur along a trajectory and are cached by canonical key, so
// steady states cost no fresh simulations.
func (ev *evaluator) deviationGains(ctx context.Context, sim [][]int, pay [][]float64) ([][][]float64, error) {
	na := len(ev.cfg.Algorithms)
	gain := make([][][]float64, len(sim))
	for c := range sim {
		gain[c] = make([][]float64, na)
		for a := range sim[c] {
			gain[c][a] = make([]float64, na)
			if sim[c][a] == 0 {
				continue // no flow of a to move (probes make this rare)
			}
			for t := 0; t < na; t++ {
				if t == a {
					continue
				}
				dev := make([][]int, len(sim))
				for c2 := range sim {
					dev[c2] = append([]int(nil), sim[c2]...)
				}
				dev[c][a]--
				dev[c][t]++
				devPay, err := ev.payoffs(ctx, dev)
				if err != nil {
					return nil, err
				}
				gain[c][a][t] = devPay[c][t] - pay[c][a]
			}
		}
	}
	return gain, nil
}

// payoffs evaluates one flow-count matrix and reports pay[c][a]: algorithm
// a's mean per-flow throughput in class c, in Mbps (0 for empty cells).
func (ev *evaluator) payoffs(ctx context.Context, counts [][]int) ([][]float64, error) {
	sp := ev.spec(counts)
	res, err := runner.Protect(sp.Key(), func() (exp.SpecResult, error) {
		res, hit, err := exp.RunSpecCachedTraced(ctx, sp, ev.cfg.Cache, ev.cfg.Journal, ev.cfg.Audit, ev.cfg.Trace)
		if err != nil {
			return exp.SpecResult{}, err
		}
		if hit {
			ev.hits.Add(1)
		} else {
			ev.sims.Add(1)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	na := len(ev.cfg.Algorithms)
	pay := make([][]float64, len(counts))
	for c := range counts {
		pay[c] = make([]float64, na)
		for a := range counts[c] {
			gi := c*na + a
			if gi >= len(res.Groups) {
				continue // shape drift in an old cached value degrades, not panics
			}
			stats := res.Groups[gi]
			if len(stats) == 0 {
				continue
			}
			var agg units.Rate
			for _, st := range stats {
				agg += st.Throughput
			}
			pay[c][a] = (agg / units.Rate(len(stats))).Mbit()
		}
	}
	return pay, nil
}
