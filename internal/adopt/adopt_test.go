package adopt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{10, []float64{1, 1}, []int{5, 5}},
		{10, []float64{2, 1}, []int{7, 3}},
		{7, []float64{1, 1, 1}, []int{3, 2, 2}}, // remainder ties go to lowest index
		{5, []float64{0, 0, 1}, []int{0, 0, 5}},
		{3, []float64{0, 0}, []int{2, 1}}, // zero weights distribute uniformly
		{0, []float64{1, 2}, []int{0, 0}},
		{1000000, []float64{0.333, 0.333, 0.334}, []int{333000, 333000, 334000}},
	}
	for _, tc := range cases {
		got := apportion(tc.total, tc.weights)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("apportion(%d, %v) = %v, want %v", tc.total, tc.weights, got, tc.want)
		}
		if sum(got) != tc.total {
			t.Errorf("apportion(%d, %v) sums to %d", tc.total, tc.weights, sum(got))
		}
	}
}

func TestProbedSimCountsKeepsProbes(t *testing.T) {
	cfg := Config{
		Classes:    []Class{{RTT: 20 * time.Millisecond, Weight: 1}, {RTT: 80 * time.Millisecond, Weight: 1}},
		Algorithms: []string{"cubic", "reno", "bbr"},
		SimFlows:   12,
	}
	// Class 0 is all-BBR, class 1 all-CUBIC: four cells are extinct but
	// every cell must keep a probe flow.
	pop := Population{Counts: [][]int{{0, 0, 500}, {500, 0, 0}}}
	sim := probedSimCounts(cfg, pop)
	total := 0
	for c := range sim {
		for a, k := range sim[c] {
			if k < 1 {
				t.Errorf("cell (%d,%d) has %d flows, want >= 1 probe", c, a, k)
			}
			total += k
		}
	}
	if total != cfg.SimFlows {
		t.Errorf("sim flows total %d, want %d", total, cfg.SimFlows)
	}
	// The populated cells keep the bulk.
	if sim[0][2] <= sim[0][0] || sim[1][0] <= sim[1][2] {
		t.Errorf("populated cells did not dominate: %v", sim)
	}
}

// testConfig is a fast fluid-backend run: each distinct mixture costs one
// ~20ms two-minute fluid simulation.
func testConfig() Config {
	capacity := 50 * units.Mbps
	rtt := 40 * time.Millisecond
	return Config{
		Capacity:    capacity,
		Buffer:      units.BufferBytes(capacity, rtt, 3),
		Classes:     []Class{{RTT: rtt, Weight: 1}},
		Algorithms:  []string{"cubic", "bbr"},
		Shares:      []float64{0.8, 0.2},
		Agents:      1000,
		Generations: 6,
		Dynamics:    BestResponse,
		Noise:       0.1,
		ReviseProb:  0.5,
		SimFlows:    8,
		Seed:        7,
	}
}

func trajectoryBytes(t *testing.T, res Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res.Trajectory); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The trajectory must be byte-identical at any worker count: the dynamics
// are serial and the only pooled work (fixed-point deviation payoffs) is
// cached by canonical key.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgA := testConfig()
	cfgA.Pool = runner.NewPool(1)
	resA, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig()
	cfgB.Pool = runner.NewPool(runtime.GOMAXPROCS(0))
	resB, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	a, b := trajectoryBytes(t, resA), trajectoryBytes(t, resB)
	if !bytes.Equal(a, b) {
		t.Errorf("trajectories differ between 1 worker and %d workers:\n%s\nvs\n%s",
			runtime.GOMAXPROCS(0), a, b)
	}
	if resA.FixedPoint != resB.FixedPoint {
		t.Errorf("fixed-point verdicts differ: %v vs %v", resA.FixedPoint, resB.FixedPoint)
	}
	// Replicator dynamics must be deterministic too (no rng involvement).
	cfgC := testConfig()
	cfgC.Dynamics = Replicator
	cfgC.Noise = 0.02
	resC, err := Run(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := cfgC
	cfgD.Cache = nil
	cfgD.Pool = runner.NewPool(runtime.GOMAXPROCS(0))
	resD, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trajectoryBytes(t, resC), trajectoryBytes(t, resD)) {
		t.Error("replicator trajectories differ across worker counts")
	}
}

// Rerunning against the same journal must replay the trajectory
// byte-identically with zero fresh simulations — the crash/resume story.
func TestRunResumesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "adopt.journal")
	j1, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Journal = j1
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Simulations == 0 {
		t.Fatal("first run simulated nothing")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg2 := testConfig()
	cfg2.Journal = j2 // fresh in-memory cache: only the journal carries over
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Simulations != 0 {
		t.Errorf("resumed run re-simulated %d mixtures", res2.Simulations)
	}
	if !bytes.Equal(trajectoryBytes(t, res1), trajectoryBytes(t, res2)) {
		t.Error("resumed trajectory is not byte-identical")
	}
}

// The trajectory schema: Generations+1 records, generations 0..G in
// order, every class carrying every algorithm in every map, final record
// carrying the fixed-point verdict.
func TestTrajectorySchema(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Generations = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != cfg.Generations+1 {
		t.Fatalf("%d records for %d generations", len(res.Trajectory), cfg.Generations)
	}
	for g, rec := range res.Trajectory {
		if rec.Generation != g {
			t.Errorf("record %d labeled generation %d", g, rec.Generation)
		}
		if len(rec.Classes) != len(cfg.Classes) {
			t.Fatalf("record %d has %d classes", g, len(rec.Classes))
		}
		for c, st := range rec.Classes {
			agents, flows := 0, 0
			for _, name := range cfg.Algorithms {
				for field, m := range map[string]bool{
					"counts":       hasKeyInt(st.Counts, name),
					"sim_counts":   hasKeyInt(st.SimCounts, name),
					"shares":       hasKeyFloat(st.Shares, name),
					"payoffs_mbps": hasKeyFloat(st.PayoffsMbps, name),
				} {
					if !m {
						t.Errorf("record %d class %d: %s missing %q", g, c, field, name)
					}
				}
				agents += st.Counts[name]
				flows += st.SimCounts[name]
			}
			if agents != cfg.Agents {
				t.Errorf("record %d class %d: %d agents, want %d", g, c, agents, cfg.Agents)
			}
			if flows != cfg.SimFlows {
				t.Errorf("record %d class %d: %d sim flows, want %d", g, c, flows, cfg.SimFlows)
			}
		}
		if rec.MeanPayoffMbps <= 0 {
			t.Errorf("record %d: non-positive mean payoff %v", g, rec.MeanPayoffMbps)
		}
		if last := g == len(res.Trajectory)-1; (rec.FixedPoint != nil) != last {
			t.Errorf("record %d: fixed_point present=%v, want on final record only", g, rec.FixedPoint != nil)
		}
	}
}

func hasKeyInt(m map[string]int, k string) bool {
	_, ok := m[k]
	return ok
}

func hasKeyFloat(m map[string]float64, k string) bool {
	_, ok := m[k]
	return ok
}

func TestConfigValidation(t *testing.T) {
	base := testConfig()
	for name, mut := range map[string]func(*Config){
		"no capacity":       func(c *Config) { c.Capacity = 0 },
		"no buffer":         func(c *Config) { c.Buffer = 0 },
		"bad dynamics":      func(c *Config) { c.Dynamics = "imitation" },
		"bad algorithm":     func(c *Config) { c.Algorithms = []string{"cubic", "quic"} },
		"one algorithm":     func(c *Config) { c.Algorithms = []string{"bbr"} },
		"share mismatch":    func(c *Config) { c.Shares = []float64{1} },
		"negative share":    func(c *Config) { c.Shares = []float64{-1, 2} },
		"noise > 1":         func(c *Config) { c.Noise = 1.5 },
		"simflows < cells":  func(c *Config) { c.SimFlows = 1 },
		"bad backend":       func(c *Config) { c.Backend = "quantum" },
		"negative gens":     func(c *Config) { c.Generations = -1 },
		"zero-weight class": func(c *Config) { c.Classes = []Class{{RTT: time.Millisecond, Weight: 0}} },
	} {
		cfg := base
		mut(&cfg)
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := base.withDefaults(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// Replicator dynamics cannot resurrect an extinct strategy without noise:
// a zero share has nothing to replicate.
func TestReplicatorKeepsExtinctExtinct(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Dynamics = Replicator
	cfg.Noise = 0
	cfg.Shares = []float64{1, 0} // no BBR seeded
	cfg.Generations = 3
	cfg.SkipCheck = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trajectory {
		if got := rec.Classes[0].Counts["bbr"]; got != 0 {
			t.Fatalf("generation %d resurrected %d BBR agents", rec.Generation, got)
		}
	}
}
