package adopt

import (
	"testing"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/units"
)

// The binary case closes the loop with the static theory: a CUBIC/BBR
// population's fixed point, scaled to the simulated game, must sit at (or
// next to) an equilibrium exp.FindNE enumerates for the same bottleneck.
// The two paths use independent jitter seeding (trial seeds versus profile
// seeds), so agreement is asserted within a ±2 flow tolerance rather than
// exactly.
func TestFixedPointMatchesFindNE(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 10
	capacity := 50 * units.Mbps
	rtt := 40 * time.Millisecond
	buffer := units.BufferBytes(capacity, rtt, 3)

	cfg := Config{
		Capacity:    capacity,
		Buffer:      buffer,
		Classes:     []Class{{RTT: rtt, Weight: 1}},
		Algorithms:  []string{"cubic", "bbr"},
		Shares:      []float64{0.85, 0.15}, // start far from the equilibrium
		Agents:      1000,
		Generations: 60,
		Dynamics:    Replicator,
		SimFlows:    n,
		Seed:        3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ne, err := exp.FindNE(exp.NESearchConfig{
		Capacity:   capacity,
		Buffer:     buffer,
		RTT:        rtt,
		N:          n,
		Seed:       3,
		Exhaustive: true,
		Backend:    "fluid",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ne.EquilibriaX) == 0 {
		t.Fatal("FindNE found no equilibria to validate against")
	}

	// The final census scaled exactly to the game: BBR's flow count.
	final := apportion(n, []float64{
		float64(res.Final.Counts[0][0]),
		float64(res.Final.Counts[0][1]),
	})
	bbrFlows := final[1]
	best := n + 1
	for _, k := range ne.EquilibriaX {
		if d := abs(bbrFlows - k); d < best {
			best = d
		}
	}
	t.Logf("adoption fixed point: %d/%d BBR flows (fixed_point=%v); FindNE equilibria %v",
		bbrFlows, n, res.FixedPoint, ne.EquilibriaX)
	if best > 2 {
		t.Errorf("fixed point %d BBR flows is %d away from nearest FindNE equilibrium %v",
			bbrFlows, best, ne.EquilibriaX)
	}
	if !res.FixedPoint {
		t.Error("converged binary trajectory did not report a fixed point")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
