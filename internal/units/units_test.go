package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

func TestBytesPackets(t *testing.T) {
	tests := []struct {
		name string
		b    Bytes
		want float64
	}{
		{"zero", 0, 0},
		{"one mss", MSS, 1},
		{"ten mss", 10 * MSS, 10},
		{"half mss", MSS / 2, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Packets(); !almost(got, tt.want, 1e-12) {
				t.Errorf("Packets() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWholePackets(t *testing.T) {
	tests := []struct {
		b    Bytes
		want int
	}{
		{-MSS, 0},
		{0, 0},
		{MSS, 1},
		{MSS * 1.4, 1},
		{MSS * 1.6, 2},
		{MSS * 100, 100},
	}
	for _, tt := range tests {
		if got := tt.b.WholePackets(); got != tt.want {
			t.Errorf("WholePackets(%v) = %d, want %d", tt.b, got, tt.want)
		}
	}
}

func TestPacketsBytesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		if got := PacketsBytes(n).WholePackets(); got != n {
			t.Errorf("round trip %d packets = %d", n, got)
		}
	}
}

func TestRateConversions(t *testing.T) {
	r := 100 * Mbps
	if got := r.BytesPerSecond(); got != 12.5e6 {
		t.Errorf("BytesPerSecond = %v, want 12.5e6", got)
	}
	if got := r.Mbit(); got != 100 {
		t.Errorf("Mbit = %v, want 100", got)
	}
}

func TestRateBytesIn(t *testing.T) {
	// 8 Mbps for one second moves exactly 1 MB.
	if got := (8 * Mbps).BytesIn(time.Second); got != 1e6 {
		t.Errorf("BytesIn = %v, want 1e6", got)
	}
	// 100 ms at 80 Mbps is 1 MB.
	if got := (80 * Mbps).BytesIn(100 * time.Millisecond); !almost(float64(got), 1e6, 1e-9) {
		t.Errorf("BytesIn = %v, want 1e6", got)
	}
}

func TestTimeToSend(t *testing.T) {
	// 1250 bytes at 10 Mbps (1.25 MB/s) takes 1 ms.
	got := (10 * Mbps).TimeToSend(1250)
	if got != time.Millisecond {
		t.Errorf("TimeToSend = %v, want 1ms", got)
	}
	if got := Rate(0).TimeToSend(1); got < time.Duration(math.MaxInt64) {
		t.Errorf("TimeToSend at zero rate should be huge, got %v", got)
	}
}

func TestRateOver(t *testing.T) {
	if got := RateOver(1.25e6, time.Second); got != 10*Mbps {
		t.Errorf("RateOver = %v, want 10Mbps", got)
	}
	if got := RateOver(100, 0); got != 0 {
		t.Errorf("RateOver with zero duration = %v, want 0", got)
	}
	if got := RateOver(100, -time.Second); got != 0 {
		t.Errorf("RateOver with negative duration = %v, want 0", got)
	}
}

func TestBDP(t *testing.T) {
	// 100 Mbps * 40 ms = 500 KB.
	got := BDP(100*Mbps, 40*time.Millisecond)
	if !almost(float64(got), 500e3, 1e-9) {
		t.Errorf("BDP = %v, want 500e3", got)
	}
}

func TestBufferBytesAndInBDP(t *testing.T) {
	c, rtt := 50*Mbps, 80*time.Millisecond
	for _, mult := range []float64{0.5, 1, 3, 10, 250} {
		b := BufferBytes(c, rtt, mult)
		if got := InBDP(b, c, rtt); !almost(got, mult, 1e-9) {
			t.Errorf("InBDP(BufferBytes(%v)) = %v", mult, got)
		}
	}
	if got := InBDP(100, 0, time.Second); got != 0 {
		t.Errorf("InBDP with zero capacity = %v, want 0", got)
	}
}

func TestRoundTripRateBytesProperty(t *testing.T) {
	// RateOver(r.BytesIn(d), d) == r for positive rates and durations.
	f := func(mbps uint16, ms uint16) bool {
		r := Rate(mbps%1000+1) * Mbps
		d := time.Duration(ms%5000+1) * time.Millisecond
		back := RateOver(r.BytesIn(d), d)
		return almost(float64(back), float64(r), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeToSendInverseProperty(t *testing.T) {
	// BytesIn(TimeToSend(b)) == b within nanosecond quantization error.
	f := func(kb uint16, mbps uint16) bool {
		b := Bytes(kb%10000+1) * KB
		r := Rate(mbps%1000+1) * Mbps
		back := r.BytesIn(r.TimeToSend(b))
		return almost(float64(back), float64(b), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(100 * Mbps).String(), "100.00Mbps"},
		{(2 * Gbps).String(), "2.00Gbps"},
		{(5 * Kbps).String(), "5.00Kbps"},
		{Rate(12).String(), "12bps"},
		{Bytes(1500).String(), "1.50KB"},
		{(3 * MB).String(), "3.00MB"},
		{(2 * GB).String(), "2.00GB"},
		{Bytes(12).String(), "12B"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}
