// Package units provides the quantity types shared by the simulator, the
// analytical model, and the experiment harness: byte counts, data rates,
// durations, and bandwidth-delay-product arithmetic.
//
// All conversions are explicit. Internally, rates are stored in bits per
// second and byte counts in bytes, both as float64: the analytical model in
// internal/core is continuous, and the packet simulator quantizes to whole
// packets only at its own boundary.
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is an amount of data in bytes. It is deliberately a float64: buffer
// shares and window sizes in the model are continuous quantities.
type Bytes float64

// Common byte quantities.
const (
	Byte Bytes = 1
	KB   Bytes = 1e3
	MB   Bytes = 1e6
	GB   Bytes = 1e9
)

// MSS is the maximum segment size assumed throughout the repository,
// matching a 1500-byte Ethernet MTU minus 40 bytes of IP/TCP headers.
const MSS Bytes = 1460

// AckBytes is the wire size assumed for a pure acknowledgment: 40 bytes of
// IP/TCP headers plus room for timestamp/SACK options. Reverse-direction
// links in a topology serialize ACKs at this size.
const AckBytes Bytes = 64

// Packets reports how many MSS-sized packets b corresponds to (fractional).
func (b Bytes) Packets() float64 { return float64(b / MSS) }

// WholePackets reports b as a whole number of MSS-sized packets, rounding
// to nearest and never returning a negative count.
func (b Bytes) WholePackets() int {
	if b <= 0 {
		return 0
	}
	return int(math.Round(float64(b / MSS)))
}

func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b/GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// PacketsBytes returns the byte size of n MSS-sized packets.
func PacketsBytes(n int) Bytes { return Bytes(n) * MSS }

// Rate is a data rate in bits per second.
type Rate float64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1e3
	Mbps         Rate = 1e6
	Gbps         Rate = 1e9
)

// BytesPerSecond reports the rate in bytes per second.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// Mbit reports the rate in megabits per second (the unit used in the
// paper's figures).
func (r Rate) Mbit() float64 { return float64(r / Mbps) }

func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r/Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r/Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}

// BytesIn reports how many bytes are transmitted at rate r over d.
func (r Rate) BytesIn(d time.Duration) Bytes {
	return Bytes(r.BytesPerSecond() * d.Seconds())
}

// TimeToSend reports how long transmitting b bytes takes at rate r.
// It returns a very large duration for non-positive rates.
func (r Rate) TimeToSend(b Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(b) / r.BytesPerSecond()
	return time.Duration(sec * float64(time.Second))
}

// RateOver reports the rate at which b bytes were moved over duration d.
// It returns 0 for non-positive durations.
func RateOver(b Bytes, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(b) * 8 / d.Seconds())
}

// BDP reports the bandwidth-delay product of a path with bottleneck rate c
// and round-trip propagation delay rtt.
func BDP(c Rate, rtt time.Duration) Bytes {
	return c.BytesIn(rtt)
}

// BufferBytes reports the size in bytes of a buffer holding bdpMultiple
// bandwidth-delay products on a path with bottleneck rate c and base RTT rtt.
func BufferBytes(c Rate, rtt time.Duration, bdpMultiple float64) Bytes {
	return Bytes(float64(BDP(c, rtt)) * bdpMultiple)
}

// InBDP expresses b as a multiple of the path's bandwidth-delay product.
// It returns 0 when the BDP itself is non-positive.
func InBDP(b Bytes, c Rate, rtt time.Duration) float64 {
	bdp := BDP(c, rtt)
	if bdp <= 0 {
		return 0
	}
	return float64(b / bdp)
}
