package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bbrnash/internal/scenario"
)

// The HTTP surface. Submissions and results speak one envelope so every
// reader of a key — the submitter that triggered the run, the nine
// submitters deduped onto the same flight, a later poller, a restarted
// server replaying its journal — receives byte-identical bodies: the
// result field is the stored json.Marshal of the SpecResult, never
// re-derived per request.
//
//	POST /run          submit a scenario.Spec (JSON body); waits for the
//	                   result up to the request timeout. ?wait=0 returns
//	                   202 {key,status} immediately instead.
//	GET  /result?key=  fetch a completed result (200), or 202 while the
//	                   key is queued/running, 404 when unknown.
//	GET  /watch?key=   stream progress as Server-Sent Events: queued /
//	                   running heartbeats, then one done or error event.
//	GET  /healthz      process liveness (always 200 while serving).
//	GET  /readyz       admission readiness (503 once draining).
//	GET  /stats        machine-readable Stats.
//
// Overload answers 429 with Retry-After; draining answers 503.

// maxSpecBody bounds a submitted spec; a scenario file is a few KB, so a
// megabyte is generous and keeps a hostile client from ballooning memory.
const maxSpecBody = 1 << 20

// resultEnvelope is the one response shape for completed results.
type resultEnvelope struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// statusEnvelope reports a key's pending state.
type statusEnvelope struct {
	Key    string `json:"key"`
	Status string `json:"status"` // "queued" or "running"
}

// errorEnvelope reports an admission or execution failure.
type errorEnvelope struct {
	Key   string `json:"key,omitempty"`
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /result", s.handleResult)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// decodeSpec reads and validates the submitted scenario.
func decodeSpec(r *http.Request) (scenario.Spec, error) {
	var sp scenario.Spec
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxSpecBody))
	if err := dec.Decode(&sp); err != nil {
		return scenario.Spec{}, fmt.Errorf("decoding spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// flightState names a flight's current state for status envelopes.
func flightState(fl *flight) string {
	if fl.state.Load() == flightRunning {
		return "running"
	}
	return "queued"
}

// handleRun admits a spec and (by default) waits for its result.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sp, err := decodeSpec(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorEnvelope{Error: err.Error()})
		return
	}
	raw, fl, err := s.submit(sp)
	switch {
	case err == nil && raw != nil:
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, resultEnvelope{Key: sp.Key(), Result: raw})
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Key: sp.Key(), Error: err.Error()})
		return
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Key: sp.Key(), Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorEnvelope{Key: sp.Key(), Error: err.Error()})
		return
	}
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, statusEnvelope{Key: fl.key, Status: flightState(fl)})
		return
	}
	s.respondWhenDone(w, r, fl)
}

// respondWhenDone blocks one request on its flight, bounded by the request
// timeout and the client's own departure. A timeout does not cancel the
// flight — the work is already admitted and its result will be cached; the
// client polls /result.
func (s *Server) respondWhenDone(w http.ResponseWriter, r *http.Request, fl *flight) {
	t := time.NewTimer(s.cfg.RequestTimeout)
	defer t.Stop()
	select {
	case <-fl.done:
		s.writeOutcome(w, fl)
	case <-r.Context().Done():
		// The client left; nothing useful to write.
	case <-t.C:
		writeJSON(w, http.StatusGatewayTimeout, statusEnvelope{Key: fl.key, Status: flightState(fl)})
	}
}

// writeOutcome renders a finished flight.
func (s *Server) writeOutcome(w http.ResponseWriter, fl *flight) {
	if fl.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(fl.err, errDraining) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorEnvelope{Key: fl.key, Error: fl.err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resultEnvelope{Key: fl.key, Result: fl.result})
}

// handleResult answers by key: completed results come from the cache (the
// same bytes every time), open flights report 202, unknown keys 404.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, errorEnvelope{Error: "missing key parameter"})
		return
	}
	if raw, ok := s.cfg.Cache.GetRaw(key); ok {
		writeJSON(w, http.StatusOK, resultEnvelope{Key: key, Result: raw})
		return
	}
	if fl, ok := s.lookup(key); ok {
		writeJSON(w, http.StatusAccepted, statusEnvelope{Key: key, Status: flightState(fl)})
		return
	}
	writeJSON(w, http.StatusNotFound, errorEnvelope{Key: key, Error: "unknown key"})
}

// watchHeartbeat is how often /watch emits a progress event while its
// flight runs.
const watchHeartbeat = time.Second

// handleWatch streams one key's lifecycle as Server-Sent Events.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, errorEnvelope{Error: "missing key parameter"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorEnvelope{Error: "streaming unsupported"})
		return
	}
	// A completed key streams a single done event; an unknown one errors.
	if raw, ok := s.cfg.Cache.GetRaw(key); ok {
		startSSE(w)
		writeSSE(w, "done", resultEnvelope{Key: key, Result: raw})
		flusher.Flush()
		return
	}
	fl, ok := s.lookup(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorEnvelope{Key: key, Error: "unknown key"})
		return
	}
	startSSE(w)
	writeSSE(w, flightState(fl), statusEnvelope{Key: key, Status: flightState(fl)})
	flusher.Flush()
	tick := time.NewTicker(watchHeartbeat)
	defer tick.Stop()
	last := flightState(fl)
	for {
		select {
		case <-fl.done:
			if fl.err != nil {
				writeSSE(w, "error", errorEnvelope{Key: key, Error: fl.err.Error()})
			} else {
				writeSSE(w, "done", resultEnvelope{Key: key, Result: fl.result})
			}
			flusher.Flush()
			return
		case <-tick.C:
			// Heartbeat: state transitions and liveness while running.
			cur := flightState(fl)
			if cur != last {
				last = cur
			}
			writeSSE(w, cur, statusEnvelope{Key: key, Status: cur})
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func startSSE(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
}

func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
