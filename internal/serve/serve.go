// Package serve is the long-running sweep service on top of the harness's
// cache+journal substrate (ROADMAP item 4): an HTTP API that accepts
// scenario.Spec submissions, answers instantly on cache hit, coalesces
// concurrent submissions of one canonical key into a single execution, and
// absorbs sustained overload by shedding instead of growing without bound.
//
// Robustness is the architecture, not a feature on the side:
//
//   - Single-writer-per-key: an in-process flight registry guarantees at
//     most one execution per canonical key at a time (every concurrent
//     submitter of that key waits on the same flight and receives the same
//     bytes), and the runner's advisory store locks guarantee at most one
//     process per cache/journal, so the discipline holds machine-wide.
//   - Supervision: each worker goroutine runs under a supervisor that
//     restarts it if a panic ever escapes the per-unit protection
//     (runner.Protect inside runner.MapCtx captures unit panics into typed
//     errors first, so a poisoned scenario fails its own flight without
//     taking a worker down — the restart path is the second line of
//     defense, and both are counted in Stats).
//   - Admission control: the queue is bounded; a submission that finds it
//     full is shed with HTTP 429 + Retry-After rather than queued into an
//     OOM. Shedding is loud (Stats.Shed) and cheap, and clients retry.
//   - Resilient execution: every flight runs through the runner's stall
//     watchdog and seeded retry-with-backoff machinery, so a stalled
//     simulation is cancelled, retried from its pre-derived seed, and —
//     because every unit is a deterministic function of its key — a retry
//     that succeeds is byte-identical to a first attempt that did.
//   - Crash recovery: completed flights are journaled (fsynced) before
//     their waiters are answered. A kill -9 mid-sweep loses only the units
//     in flight; on restart OpenJournal replays the completed ones, and a
//     resubmitted spec is answered with byte-identical results without
//     re-simulating (scripts/serve_smoke.sh proves this end to end,
//     including trace files).
//   - Graceful drain: Drain stops admission (readyz turns 503), lets
//     in-flight flights finish and journal, fails still-queued flights so
//     no waiter hangs, and the caller then persists the cache. Everything
//     the drain completed is durable; everything it could not is
//     re-runnable.
//
// The degradation is observable: /stats reports queue depth, shed count,
// dedup count, worker restarts, retry/stall counters, cache hit rate and
// per-key latencies in machine-readable form.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/exp"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
)

// RunFunc executes one scenario to completion. The default (Config.Run nil)
// is the full cached+journaled+traced+audited pipeline under the runner's
// watchdog/retry protection; tests substitute their own to count executions
// or inject faults. A custom RunFunc is called without the per-unit panic
// shield, so a panic in it kills the worker — which is exactly how the
// supervision tests exercise worker restarts.
type RunFunc func(ctx context.Context, sp scenario.Spec) (exp.SpecResult, error)

// Config assembles a Server. Zero values select the documented defaults;
// only Cache is required (use runner.NewCache for a purely in-memory
// service).
type Config struct {
	// Cache memoizes results by canonical key and answers repeat
	// submissions instantly. Required.
	Cache *runner.Cache
	// Journal, when set, is the crash-safe write-ahead log: every completed
	// flight is recorded (fsynced) before its waiters are answered, and a
	// restarted server replays it. Nil forfeits crash recovery.
	Journal *runner.Journal
	// Recorder, when set, writes per-run telemetry traces exactly as the
	// CLIs' -trace flag does (journal replays skip re-tracing; the files
	// were written before the journal records).
	Recorder *telemetry.Recorder
	// Audit, when set, validates every result — fresh or replayed — against
	// the physical invariants; a violation fails the flight.
	Audit *check.Auditor
	// Workers bounds concurrent executions; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the submission queue; <= 0 selects 256. A full
	// queue sheds with 429.
	QueueDepth int
	// Watchdog arms the per-attempt stall watchdog (0 = off).
	Watchdog time.Duration
	// Retries re-runs stalled or transiently failed attempts from their
	// pre-derived seeds, with exponential Backoff (default 1s base).
	Retries int
	Backoff time.Duration
	// RequestTimeout bounds how long one HTTP request waits for its flight
	// before returning 202/504 (the flight keeps running; poll /result).
	// <= 0 selects 2 minutes.
	RequestTimeout time.Duration
	// Run substitutes the execution pipeline; see RunFunc.
	Run RunFunc
}

// flight states, for progress streaming.
const (
	flightQueued int32 = iota
	flightRunning
)

// flight is one in-progress canonical key: the single execution every
// concurrent submitter of that key attaches to. result/err are set before
// done is closed and immutable afterwards.
type flight struct {
	key      string
	spec     scenario.Spec
	enqueued time.Time
	state    atomic.Int32
	done     chan struct{}
	result   json.RawMessage
	err      error
}

// KeyLatency is one completed flight's end-to-end latency (enqueue to
// answer), reported by Stats for the most recent completions.
type KeyLatency struct {
	Key       string `json:"key"`
	LatencyNS int64  `json:"latency_ns"`
}

// recentLatencies is how many per-key latencies Stats retains.
const recentLatencies = 32

// Server is the sweep service. Construct with New, mount Handler on an
// http.Server, and Drain on shutdown.
type Server struct {
	cfg   Config
	pool  *runner.Pool
	queue chan *flight

	mu      sync.Mutex
	flights map[string]*flight

	baseCtx    context.Context // cancelled only by a hard-stop Drain deadline
	baseCancel context.CancelFunc
	drain      chan struct{}
	drainOnce  sync.Once
	wg         sync.WaitGroup

	started time.Time

	enqueued  atomic.Int64
	deduped   atomic.Int64
	instant   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	restarts  atomic.Int64

	latMu    sync.Mutex
	latCount int64
	latSum   time.Duration
	latMax   time.Duration
	recent   []KeyLatency
}

// Sentinel admission errors; the HTTP layer maps them to 429 and 503.
var (
	errQueueFull = errors.New("serve: submission queue is full")
	errDraining  = errors.New("serve: server is draining")
)

// New builds the server and starts its supervised worker pool. The caller
// owns the cache and journal lifecycles (persist the cache after Drain).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       runner.NewPool(1).SetWatchdog(cfg.Watchdog).SetRetry(cfg.Retries, cfg.Backoff),
		queue:      make(chan *flight, cfg.QueueDepth),
		flights:    make(map[string]*flight),
		baseCtx:    ctx,
		baseCancel: cancel,
		drain:      make(chan struct{}),
		started:    time.Now(),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.superviseWorker()
	}
	return s
}

// submit admits one spec. Exactly one of the returns is meaningful: raw is
// the instant cache answer; fl is the (new or joined) flight to wait on;
// err is errQueueFull, errDraining, or a key-derivation failure.
func (s *Server) submit(sp scenario.Spec) (raw json.RawMessage, fl *flight, err error) {
	key := sp.Key()
	if raw, ok := s.cfg.Cache.GetRaw(key); ok {
		s.instant.Add(1)
		return raw, nil, nil
	}
	if s.Draining() {
		return nil, nil, errDraining
	}
	s.mu.Lock()
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		return nil, fl, nil
	}
	fl = &flight{key: key, spec: sp, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case s.queue <- fl:
		s.flights[key] = fl
		s.mu.Unlock()
		s.enqueued.Add(1)
		return nil, fl, nil
	default:
		s.mu.Unlock()
		s.shed.Add(1)
		return nil, nil, errQueueFull
	}
}

// lookup finds an open flight by key.
func (s *Server) lookup(key string) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl, ok := s.flights[key]
	return fl, ok
}

// superviseWorker keeps one worker slot alive: if the loop dies to an
// escaped panic it is restarted (counted in Stats.WorkerRestarts) until the
// server drains.
func (s *Server) superviseWorker() {
	defer s.wg.Done()
	for {
		if s.workerLoop() {
			return
		}
		s.restarts.Add(1)
	}
}

// workerLoop executes flights until drain; it reports false when an escaped
// panic killed it (the supervisor restarts it). The dying worker fails its
// current flight first so no waiter hangs on a closed-over goroutine.
func (s *Server) workerLoop() (clean bool) {
	var current *flight
	defer func() {
		if r := recover(); r != nil {
			if current != nil {
				s.finish(current, nil, &runner.UnitError{Key: current.key, Recovered: r, Stack: debug.Stack()})
			}
		}
	}()
	for {
		select {
		case <-s.drain:
			return true
		case fl := <-s.queue:
			current = fl
			s.execute(fl)
			current = nil
		}
	}
}

// execute runs one flight to completion and answers its waiters. The
// default pipeline goes through runner.MapCtx + runner.Protect, so a
// panicking or stalling unit becomes a typed error (retried when
// transient) instead of a dead worker; a custom Config.Run is called bare —
// see RunFunc.
func (s *Server) execute(fl *flight) {
	fl.state.Store(flightRunning)
	var res exp.SpecResult
	var err error
	if s.cfg.Run != nil {
		res, err = s.cfg.Run(s.baseCtx, fl.spec)
		if err == nil {
			// A custom pipeline bypasses RunSpecCachedTraced, so memoize here:
			// submissions arriving after this flight closes must answer from
			// the cache just as they do on the default path.
			s.cfg.Cache.Put(fl.key, res)
		}
	} else {
		var out []exp.SpecResult
		out, err = runner.MapCtx(s.baseCtx, s.pool, 1, func(ctx context.Context, _ int) (exp.SpecResult, error) {
			return runner.Protect(fl.key, func() (exp.SpecResult, error) {
				r, _, err := exp.RunSpecCachedTraced(ctx, fl.spec, s.cfg.Cache, s.cfg.Journal, s.cfg.Audit, s.cfg.Recorder)
				if err == nil && s.cfg.Audit != nil {
					if vs := s.cfg.Audit.ViolationsFor(fl.key); len(vs) > 0 {
						err = fmt.Errorf("serve: strict audit: %s", vs[0])
					}
				}
				return r, err
			})
		})
		if err == nil {
			res = out[0]
		}
	}
	if err != nil {
		s.finish(fl, nil, err)
		return
	}
	raw, merr := json.Marshal(res)
	if merr != nil {
		s.finish(fl, nil, fmt.Errorf("serve: encoding result for %s: %w", fl.key, merr))
		return
	}
	s.finish(fl, raw, nil)
}

// finish closes a flight: removes it from the registry (so a later
// submission of the key re-runs or hits the cache), publishes the outcome,
// and wakes every waiter. Latency is accounted on success only.
func (s *Server) finish(fl *flight, raw json.RawMessage, err error) {
	s.mu.Lock()
	delete(s.flights, fl.key)
	s.mu.Unlock()
	fl.result, fl.err = raw, err
	close(fl.done)
	if err != nil {
		s.failed.Add(1)
		return
	}
	s.completed.Add(1)
	lat := time.Since(fl.enqueued)
	s.latMu.Lock()
	s.latCount++
	s.latSum += lat
	if lat > s.latMax {
		s.latMax = lat
	}
	s.recent = append(s.recent, KeyLatency{Key: fl.key, LatencyNS: int64(lat)})
	if len(s.recent) > recentLatencies {
		s.recent = s.recent[len(s.recent)-recentLatencies:]
	}
	s.latMu.Unlock()
}

// Draining reports whether Drain has begun (readyz turns 503 then).
func (s *Server) Draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// Drain shuts the service down gracefully: admission stops, workers finish
// (and journal) the flights they are executing, still-queued flights are
// failed with errDraining so their waiters get an answer, and the call
// returns when every worker has exited. If ctx expires first, in-flight
// executions are hard-cancelled through the base context — anything they
// had journaled stays durable, anything unfinished is re-runnable after
// restart. The caller persists the cache and closes the journal afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drain) })
	// Fail whatever is still queued; workers race this loop for the same
	// channel, and either outcome — executed or failed-as-draining — is
	// final for each flight exactly once.
	for {
		select {
		case fl := <-s.queue:
			s.finish(fl, nil, errDraining)
			continue
		default:
		}
		break
	}
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-workersDone
		return ctx.Err()
	}
}

// Stats is the /stats payload: one machine-readable snapshot of the
// service's load, shedding, supervision and store effectiveness.
type Stats struct {
	UptimeNS      int64 `json:"uptime_ns"`
	Workers       int   `json:"workers"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	InFlight      int   `json:"in_flight"`
	Draining      bool  `json:"draining"`
	// Admission outcomes: Enqueued new flights, Deduped joins of an
	// existing flight, Instant cache answers, Shed 429s.
	Enqueued int64 `json:"enqueued"`
	Deduped  int64 `json:"deduped"`
	Instant  int64 `json:"instant"`
	Shed     int64 `json:"shed"`
	// Flight outcomes and supervision.
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	WorkerRestarts int64 `json:"worker_restarts"`
	// Resilience counters from the execution pool.
	Retries int64 `json:"retries"`
	Stalls  int64 `json:"stalls"`
	// Store effectiveness.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	JournalHits  int64   `json:"journal_hits"`
	JournalLen   int     `json:"journal_len"`
	// Per-key latency: aggregate over completed flights plus the most
	// recent completions individually.
	LatencyCount  int64        `json:"latency_count"`
	LatencyMeanNS int64        `json:"latency_mean_ns"`
	LatencyMaxNS  int64        `json:"latency_max_ns"`
	Recent        []KeyLatency `json:"recent,omitempty"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	inFlight := len(s.flights)
	s.mu.Unlock()
	st := Stats{
		UptimeNS:       int64(time.Since(s.started)),
		Workers:        s.cfg.Workers,
		QueueDepth:     len(s.queue),
		QueueCapacity:  cap(s.queue),
		InFlight:       inFlight,
		Draining:       s.Draining(),
		Enqueued:       s.enqueued.Load(),
		Deduped:        s.deduped.Load(),
		Instant:        s.instant.Load(),
		Shed:           s.shed.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		WorkerRestarts: s.restarts.Load(),
		Retries:        s.pool.Retries(),
		Stalls:         s.pool.Stalls(),
		CacheHits:      s.cfg.Cache.Hits(),
		CacheMisses:    s.cfg.Cache.Misses(),
		CacheHitRate:   s.cfg.Cache.HitRate(),
		JournalHits:    s.cfg.Journal.Hits(),
		JournalLen:     s.cfg.Journal.Len(),
	}
	s.latMu.Lock()
	st.LatencyCount = s.latCount
	if s.latCount > 0 {
		st.LatencyMeanNS = int64(s.latSum) / s.latCount
	}
	st.LatencyMaxNS = int64(s.latMax)
	st.Recent = append([]KeyLatency(nil), s.recent...)
	s.latMu.Unlock()
	return st
}

// Pool exposes the execution pool for exit reports (telemetry.Collect).
func (s *Server) Pool() *runner.Pool { return s.pool }
