package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/netsim"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// testSpec builds a cheap valid spec whose key varies with seed.
func testSpec(seed uint64) scenario.Spec {
	capacity := 10 * units.Mbps
	sp := scenario.Mix("bbr", 1, 1, capacity,
		units.BufferBytes(capacity, 20*time.Millisecond, 2),
		20*time.Millisecond, 2*time.Second)
	sp.Seed = seed
	return sp
}

// fakeResult derives a distinguishable result from the spec, so tests can
// tell whose bytes they received.
func fakeResult(sp scenario.Spec) exp.SpecResult {
	return exp.SpecResult{Link: netsim.LinkStats{Name: "fake", Drops: int(sp.Seed)}}
}

// newFakeServer builds a server over an in-memory cache with a
// caller-supplied RunFunc, and registers Drain as cleanup.
func newFakeServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// TestSubmitDedupSingleExecution is the single-writer-per-key acceptance
// test: N concurrent submitters of one identical spec trigger exactly one
// execution, and every caller receives the same bytes. Run under -race.
func TestSubmitDedupSingleExecution(t *testing.T) {
	const submitters = 64
	var runs atomic.Int64
	release := make(chan struct{})
	s := newFakeServer(t, Config{
		Workers: 4,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			runs.Add(1)
			<-release // hold the flight open until every submitter has joined
			return fakeResult(sp), nil
		},
	})
	sp := testSpec(7)

	var joined, finished sync.WaitGroup
	results := make([][]byte, submitters)
	for i := 0; i < submitters; i++ {
		joined.Add(1)
		finished.Add(1)
		go func(i int) {
			defer finished.Done()
			raw, fl, err := s.submit(sp)
			joined.Done()
			if err != nil {
				t.Errorf("submitter %d: %v", i, err)
				return
			}
			if raw == nil {
				<-fl.done
				if fl.err != nil {
					t.Errorf("submitter %d: flight failed: %v", i, fl.err)
					return
				}
				raw = fl.result
			}
			results[i] = raw
		}(i)
	}
	joined.Wait()
	close(release)
	finished.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1", n)
	}
	want, _ := json.Marshal(fakeResult(sp))
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Fatalf("submitter %d bytes = %s, want %s", i, got, want)
		}
	}
	st := s.Stats()
	if st.Enqueued != 1 {
		t.Errorf("enqueued = %d, want 1", st.Enqueued)
	}
	if st.Deduped != submitters-1 {
		t.Errorf("deduped = %d, want %d", st.Deduped, submitters-1)
	}
}

// TestLoadShedNoLossNoDuplication is the overload acceptance test: well
// over 1000 concurrent submissions against a deliberately small queue.
// Shed submitters retry until admitted; at the end every distinct key ran
// exactly once, every submitter holds the right bytes, nothing was lost,
// and the shedding is visible in Stats.
func TestLoadShedNoLossNoDuplication(t *testing.T) {
	const (
		keys          = 200
		perKey        = 6 // 1200 total submissions
		expectPerSpec = 1
	)
	var execs [keys]atomic.Int64
	s := newFakeServer(t, Config{
		Workers:    8,
		QueueDepth: 16, // small on purpose: overload must shed, not queue
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			execs[sp.Seed-1].Add(1)
			time.Sleep(time.Millisecond)
			return fakeResult(sp), nil
		},
	})

	var wg sync.WaitGroup
	errs := make(chan error, keys*perKey)
	for k := 0; k < keys; k++ {
		for c := 0; c < perKey; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				sp := testSpec(uint64(k + 1))
				want, _ := json.Marshal(fakeResult(sp))
				for {
					raw, fl, err := s.submit(sp)
					if errors.Is(err, errQueueFull) {
						time.Sleep(500 * time.Microsecond) // Retry-After, in miniature
						continue
					}
					if err != nil {
						errs <- fmt.Errorf("key %d: %v", k, err)
						return
					}
					if raw == nil {
						<-fl.done
						if fl.err != nil {
							errs <- fmt.Errorf("key %d: flight: %v", k, fl.err)
							return
						}
						raw = fl.result
					}
					if !bytes.Equal(raw, want) {
						errs <- fmt.Errorf("key %d: bytes = %s, want %s", k, raw, want)
					}
					return
				}
			}(k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for k := 0; k < keys; k++ {
		if n := execs[k].Load(); n != expectPerSpec {
			t.Errorf("key %d executed %d times, want %d", k, n, expectPerSpec)
		}
	}
	st := s.Stats()
	if st.Completed != keys {
		t.Errorf("completed = %d, want %d", st.Completed, keys)
	}
	if st.Failed != 0 {
		t.Errorf("failed = %d, want 0", st.Failed)
	}
	if st.Enqueued != keys {
		t.Errorf("enqueued = %d, want %d (one flight per key, ever)", st.Enqueued, keys)
	}
	if st.Shed == 0 {
		t.Error("shed = 0: a 16-deep queue under 1200 submissions must shed")
	}
	// Every submitter is eventually admitted exactly once (sheds are
	// retried, so they sit on top of the 1200 terminal outcomes).
	if got := st.Instant + st.Deduped + st.Enqueued; got != keys*perKey {
		t.Errorf("terminal admission outcomes sum to %d, want %d", got, keys*perKey)
	}
	if st.LatencyCount != keys || st.LatencyMaxNS <= 0 {
		t.Errorf("latency accounting: count=%d max=%d", st.LatencyCount, st.LatencyMaxNS)
	}
}

// TestWorkerPanicSupervision: a panic that escapes the per-unit shield (a
// custom RunFunc panics) fails only its own flight — typed, with the stack
// — and the supervisor restarts the worker, so the service keeps serving.
func TestWorkerPanicSupervision(t *testing.T) {
	const poisoned = 666
	s := newFakeServer(t, Config{
		Workers: 2,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			if sp.Seed == poisoned {
				panic("poisoned scenario")
			}
			return fakeResult(sp), nil
		},
	})

	_, fl, err := s.submit(testSpec(poisoned))
	if err != nil {
		t.Fatal(err)
	}
	<-fl.done
	var ue *runner.UnitError
	if !errors.As(fl.err, &ue) || ue.Recovered == nil {
		t.Fatalf("poisoned flight err = %v, want UnitError with recovered panic", fl.err)
	}
	if len(ue.Stack) == 0 {
		t.Error("panic stack not captured")
	}

	// The service is still alive: a healthy spec completes on the restarted
	// worker.
	raw, fl, err := s.submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if raw == nil {
		<-fl.done
		if fl.err != nil {
			t.Fatalf("healthy flight after restart: %v", fl.err)
		}
	}
	if n := s.Stats().WorkerRestarts; n < 1 {
		t.Errorf("worker restarts = %d, want >= 1", n)
	}
}

// TestDrainSemantics: drain stops admission, fails still-queued flights so
// no waiter hangs, and completes (and answers) the flight that was already
// executing.
func TestDrainSemantics(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{
		Cache:   runner.NewCache(),
		Workers: 1,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			started <- struct{}{}
			<-release
			return fakeResult(sp), nil
		},
	})

	_, running, err := s.submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now inside flight 1
	_, queued, err := s.submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// The queued flight is failed promptly — its waiter must not hang on a
	// server that will never run it.
	select {
	case <-queued.done:
		if !errors.Is(queued.err, errDraining) {
			t.Errorf("queued flight err = %v, want errDraining", queued.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued flight was not failed during drain")
	}
	if !s.Draining() {
		t.Error("Draining() = false during drain")
	}
	if _, _, err := s.submit(testSpec(3)); !errors.Is(err, errDraining) {
		t.Errorf("submit during drain = %v, want errDraining", err)
	}

	close(release) // let the in-flight run finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-running.done
	if running.err != nil {
		t.Errorf("in-flight run failed during graceful drain: %v", running.err)
	}
	want, _ := json.Marshal(fakeResult(testSpec(1)))
	if !bytes.Equal(running.result, want) {
		t.Errorf("in-flight result = %s, want %s", running.result, want)
	}
}

// TestDrainDeadlineCancelsInFlight: when the drain context expires, the
// base context hard-cancels in-flight executions instead of hanging
// forever; the flight fails and Drain reports the deadline.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	s := New(Config{
		Cache:   runner.NewCache(),
		Workers: 1,
		Run: func(ctx context.Context, _ scenario.Spec) (exp.SpecResult, error) {
			started <- struct{}{}
			<-ctx.Done() // a run that only a hard cancel can stop
			return exp.SpecResult{}, ctx.Err()
		},
	})
	_, fl, err := s.submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want DeadlineExceeded", err)
	}
	<-fl.done
	if fl.err == nil {
		t.Error("hard-cancelled flight reported success")
	}
}

// TestJournalReplayByteIdentity is the crash-recovery core in miniature
// (scripts/serve_smoke.sh proves the kill -9 version end to end): a result
// journaled by one server instance is replayed by the next — same bytes,
// no re-simulation — even though the cache was never saved, exactly the
// state a crash leaves behind.
func TestJournalReplayByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.json")
	journalPath := filepath.Join(dir, "journal.jsonl")
	sp := testSpec(11)

	runOnce := func() []byte {
		cache, err := runner.OpenCache(cachePath, scenario.KeyVersion)
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close() // deliberately no Save: simulate dying before it
		journal, err := runner.OpenJournal(journalPath, scenario.KeyVersion)
		if err != nil {
			t.Fatal(err)
		}
		defer journal.Close()
		s := New(Config{Cache: cache, Journal: journal, Workers: 1})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Drain(ctx)
		}()
		raw, fl, err := s.submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if raw == nil {
			<-fl.done
			if fl.err != nil {
				t.Fatal(fl.err)
			}
			raw = fl.result
		}
		if journal.Len() == 0 {
			t.Fatal("completed flight not journaled")
		}
		return raw
	}

	first := runOnce()
	second := runOnce() // a fresh instance must replay, not re-simulate

	if !bytes.Equal(first, second) {
		t.Fatalf("replayed bytes differ:\nfirst:  %s\nsecond: %s", first, second)
	}
	// The second instance answered from the journal: its value survived the
	// "crash" because Record fsyncs before the first instance answered.
	cache, err := runner.OpenCache(cachePath, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	if cache.Len() != 0 {
		t.Error("cache file was saved; the test meant to simulate a crash before Save")
	}
}

// TestFailedFlightIsRerunnable: a failed key leaves no cache entry and no
// open flight, so a later submission runs it again (and can succeed).
func TestFailedFlightIsRerunnable(t *testing.T) {
	var calls atomic.Int64
	s := newFakeServer(t, Config{
		Workers: 1,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			if calls.Add(1) == 1 {
				return exp.SpecResult{}, errors.New("transient outage")
			}
			return fakeResult(sp), nil
		},
	})
	sp := testSpec(5)
	_, fl, err := s.submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	<-fl.done
	if fl.err == nil {
		t.Fatal("first attempt should have failed")
	}
	raw, fl, err := s.submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if raw == nil {
		<-fl.done
		if fl.err != nil {
			t.Fatalf("second attempt: %v", fl.err)
		}
		raw = fl.result
	}
	want, _ := json.Marshal(fakeResult(sp))
	if !bytes.Equal(raw, want) {
		t.Errorf("second attempt bytes = %s, want %s", raw, want)
	}
	if st := s.Stats(); st.Failed != 1 || st.Completed != 1 {
		t.Errorf("failed/completed = %d/%d, want 1/1", st.Failed, st.Completed)
	}
}
