package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"bbrnash/internal/exp"
	"bbrnash/internal/scenario"
)

// postSpec submits sp to the test server and returns the response.
func postSpec(t *testing.T, ts *httptest.Server, sp scenario.Spec, query string) *http.Response {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestHTTPRunAndResult: the sync path — submit, get the envelope; submit
// again, get the identical envelope from cache with the hit header; fetch
// it a third way through /result.
func TestHTTPRunAndResult(t *testing.T) {
	s := newFakeServer(t, Config{
		Workers: 2,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			return fakeResult(sp), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sp := testSpec(3)
	wantResult, _ := json.Marshal(fakeResult(sp))

	resp := postSpec(t, ts, sp, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run status = %d", resp.StatusCode)
	}
	env := decodeBody[resultEnvelope](t, resp)
	if env.Key != sp.Key() {
		t.Errorf("key = %q, want %q", env.Key, sp.Key())
	}
	if !bytes.Equal(env.Result, wantResult) {
		t.Errorf("result = %s, want %s", env.Result, wantResult)
	}

	resp = postSpec(t, ts, sp, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat run status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Error("repeat submission did not answer from cache")
	}
	env2 := decodeBody[resultEnvelope](t, resp)
	if !bytes.Equal(env2.Result, env.Result) {
		t.Errorf("cache answer differs from first answer:\n%s\n%s", env2.Result, env.Result)
	}

	resp, err := http.Get(ts.URL + "/result?key=" + url.QueryEscape(sp.Key()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/result status = %d", resp.StatusCode)
	}
	env3 := decodeBody[resultEnvelope](t, resp)
	if !bytes.Equal(env3.Result, env.Result) {
		t.Errorf("/result bytes differ from /run bytes")
	}
}

// TestHTTPAsyncSubmit: ?wait=0 returns 202 immediately; /result reports 202
// while the flight is open and 200 with the bytes once it closes.
func TestHTTPAsyncSubmit(t *testing.T) {
	release := make(chan struct{})
	s := newFakeServer(t, Config{
		Workers: 1,
		Run: func(ctx context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return exp.SpecResult{}, ctx.Err()
			}
			return fakeResult(sp), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sp := testSpec(4)

	resp := postSpec(t, ts, sp, "?wait=0")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeBody[statusEnvelope](t, resp)
	if st.Key != sp.Key() {
		t.Errorf("key = %q, want %q", st.Key, sp.Key())
	}

	resp, err := http.Get(ts.URL + "/result?key=" + url.QueryEscape(sp.Key()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("open flight /result status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/result?key=" + url.QueryEscape(sp.Key()))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("result never became available")
		}
		time.Sleep(10 * time.Millisecond)
	}
	env := decodeBody[resultEnvelope](t, resp)
	want, _ := json.Marshal(fakeResult(sp))
	if !bytes.Equal(env.Result, want) {
		t.Errorf("result = %s, want %s", env.Result, want)
	}
}

// TestHTTPShed: a full queue answers 429 with Retry-After instead of
// accepting unbounded work.
func TestHTTPShed(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newFakeServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Run: func(ctx context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return exp.SpecResult{}, ctx.Err()
			}
			return fakeResult(sp), nil
		},
	})
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSpec(t, ts, testSpec(1), "?wait=0") // occupies the worker
	resp.Body.Close()
	<-started
	resp = postSpec(t, ts, testSpec(2), "?wait=0") // occupies the queue slot
	resp.Body.Close()

	resp = postSpec(t, ts, testSpec(3), "?wait=0") // must shed
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	if s.Stats().Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Stats().Shed)
	}
}

// TestHTTPBadRequests: malformed and invalid specs, and missing keys, are
// rejected with 400/404 rather than admitted.
func TestHTTPBadRequests(t *testing.T) {
	s := newFakeServer(t, Config{
		Workers: 1,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			return fakeResult(sp), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status = %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/result", "/watch"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s without key status = %d, want 400", path, resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + path + "?key=unknown")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s unknown key status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHTTPHealthReadyStats: liveness stays 200, readiness flips to 503 on
// drain, and /stats is a machine-readable snapshot with sane counters.
func TestHTTPHealthReadyStats(t *testing.T) {
	s := newFakeServer(t, Config{
		Workers: 1,
		Run: func(_ context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			return fakeResult(sp), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}

	resp := postSpec(t, ts, testSpec(1), "")
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[Stats](t, resp)
	if st.Workers != 1 || st.QueueCapacity != 256 {
		t.Errorf("stats workers/queue = %d/%d", st.Workers, st.QueueCapacity)
	}
	if st.Enqueued != 1 || st.Completed != 1 {
		t.Errorf("stats enqueued/completed = %d/%d, want 1/1", st.Enqueued, st.Completed)
	}
	if st.UptimeNS <= 0 {
		t.Error("uptime not reported")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz status = %d, want 200 (the process is alive)", resp.StatusCode)
	}
}

// TestHTTPWatch: the SSE stream ends with a done event carrying the same
// bytes every other reader of the key sees.
func TestHTTPWatch(t *testing.T) {
	release := make(chan struct{})
	s := newFakeServer(t, Config{
		Workers: 1,
		Run: func(ctx context.Context, sp scenario.Spec) (exp.SpecResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return exp.SpecResult{}, ctx.Err()
			}
			return fakeResult(sp), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sp := testSpec(9)

	resp := postSpec(t, ts, sp, "?wait=0")
	resp.Body.Close()

	watch, err := http.Get(ts.URL + "/watch?key=" + url.QueryEscape(sp.Key()))
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	if ct := watch.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	close(release)

	var event string
	var data []byte
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") && event == "done" {
			data = []byte(strings.TrimPrefix(line, "data: "))
			break
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if event != "done" {
		t.Fatalf("stream ended without done event (last event %q)", event)
	}
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(fakeResult(sp))
	if !bytes.Equal(env.Result, want) {
		t.Errorf("watch result = %s, want %s", env.Result, want)
	}

	// A completed key streams a single done event immediately.
	watch2, err := http.Get(ts.URL + "/watch?key=" + url.QueryEscape(sp.Key()))
	if err != nil {
		t.Fatal(err)
	}
	defer watch2.Body.Close()
	first, err := bufio.NewReader(watch2.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first, "event: done") {
		t.Errorf("completed-key watch first line = %q, want done event", first)
	}
}
