package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Advisory store locking. An on-disk Cache or Journal is a single-writer
// store: its save/compaction protocol (temp file + rename) is atomic against
// readers, but two live processes appending to one journal — or alternately
// rewriting one cache file — would silently interleave and lose each other's
// writes. Opening a store therefore takes an exclusive advisory lock on a
// sibling "<path>.lock" file and holds it until the store is closed or the
// process exits; a second open fails loudly with ErrStoreLocked instead.
//
// The lock is flock(2)-based, so the kernel releases it when the holder dies
// — SIGKILL included — and a crashed process never wedges the store. The
// .lock file itself is deliberately left on disk after release: unlinking it
// would race a concurrent acquirer into holding a lock on a dead inode,
// letting two processes both believe they own the store.

// ErrStoreLocked reports that an on-disk cache or journal is already open —
// by another process, or by another handle in this one.
var ErrStoreLocked = errors.New("store is already locked")

// lockedPaths tracks locks held within this process. flock on Linux already
// conflicts between two file descriptions in one process, but the registry
// makes the in-process double-open error deterministic on every platform
// (including ones where fileLockExcl is a no-op) and lets the error message
// name the real culprit.
var lockedPaths = struct {
	sync.Mutex
	m map[string]struct{}
}{m: make(map[string]struct{})}

// fileLock is one held store lock; release with release.
type fileLock struct {
	key string // registry key (absolute .lock path)
	f   *os.File
}

// acquireLock takes the exclusive advisory lock guarding storePath,
// creating the sibling .lock file as needed. It never blocks: a held lock
// is an immediate ErrStoreLocked.
func acquireLock(storePath string) (*fileLock, error) {
	abs, err := filepath.Abs(storePath)
	if err != nil {
		abs = storePath
	}
	key := abs + ".lock"

	lockedPaths.Lock()
	if _, held := lockedPaths.m[key]; held {
		lockedPaths.Unlock()
		return nil, fmt.Errorf("runner: %s: %w by another handle in this process", storePath, ErrStoreLocked)
	}
	lockedPaths.m[key] = struct{}{}
	lockedPaths.Unlock()

	unregister := func() {
		lockedPaths.Lock()
		delete(lockedPaths.m, key)
		lockedPaths.Unlock()
	}
	f, err := os.OpenFile(key, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		unregister()
		return nil, fmt.Errorf("runner: creating lock file: %w", err)
	}
	if err := fileLockExcl(f); err != nil {
		f.Close()
		unregister()
		return nil, fmt.Errorf("runner: %s: %w by another process (the lock releases when its holder exits)", storePath, ErrStoreLocked)
	}
	return &fileLock{key: key, f: f}, nil
}

// release drops the lock. Closing the descriptor releases the flock; the
// .lock file stays on disk (see the package comment above). Nil-safe and
// idempotent.
func (l *fileLock) release() {
	if l == nil || l.f == nil {
		return
	}
	l.f.Close()
	l.f = nil
	lockedPaths.Lock()
	delete(lockedPaths.m, l.key)
	lockedPaths.Unlock()
}

// syncDir fsyncs the directory holding path, making a just-renamed file's
// directory entry durable. The rename itself is atomic; without the
// directory sync a power loss immediately after it could resurrect the old
// name on some filesystems.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
