package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// StallError reports a unit cancelled by the pool's watchdog: no heartbeat
// (see Progress) arrived within the configured window. It is not a
// cancellation in the sense of isCancellation — a stall is a real failure
// that wins MapCtx's deterministic error selection — and it is transient:
// with retries configured the unit is re-run from its pre-derived seed, so
// a retry that succeeds is bit-identical to a first attempt that did.
type StallError struct {
	// Index is the unit's submission index within its Map/MapCtx call.
	Index int
	// Key is the unit's canonical scenario key when the unit body supplied
	// one through Protect, "" otherwise.
	Key string
	// LastProgress is the last value the unit reported through Progress
	// (for simulations, simulated time reached), zero if it never did.
	LastProgress time.Duration
	// Window is the watchdog window the unit exceeded.
	Window time.Duration
}

func (e *StallError) Error() string {
	at := "before first progress report"
	if e.LastProgress > 0 {
		at = fmt.Sprintf("at progress %v", e.LastProgress)
	}
	if e.Key != "" {
		return fmt.Sprintf("runner: unit %d (%s) stalled %s: no heartbeat within %v", e.Index, e.Key, at, e.Window)
	}
	return fmt.Sprintf("runner: unit %d stalled %s: no heartbeat within %v", e.Index, at, e.Window)
}

// TransientError marks an error as worth retrying; see MarkTransient.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/errors.As chains.
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err so Transient reports it retryable. Unit bodies
// use it for failures that a fresh attempt can plausibly clear (resource
// exhaustion, a flaky external store); deterministic failures — a spec that
// cannot validate, an invariant violation — must stay permanent, because
// retrying a pure function of (spec, seed) reproduces them exactly.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// Transient reports whether err is worth retrying: a watchdog stall or an
// error marked with MarkTransient. Cancellations and ordinary unit failures
// are permanent.
func Transient(err error) bool {
	var st *StallError
	var tr *TransientError
	return errors.As(err, &st) || errors.As(err, &tr)
}

// SetWatchdog arms a per-unit progress watchdog on subsequent Map/MapCtx
// calls: a unit that goes longer than window without calling Progress (or
// starting/finishing) is cancelled with a *StallError cause. Zero — the
// default — disables the watchdog, so existing callers are unaffected.
// Returns the pool for chaining; must not be called concurrently with Map.
func (p *Pool) SetWatchdog(window time.Duration) *Pool {
	if window < 0 {
		window = 0
	}
	p.watchdogWindow = window
	return p
}

// SetRetry makes subsequent Map/MapCtx calls re-run a unit that failed with
// a Transient error up to retries more times, sleeping backoff<<attempt
// between attempts (exponential, capped at one minute). Because every
// unit's inputs — spec and pre-derived seed — are attempt-independent, a
// retry that succeeds produces exactly the bytes the first attempt would
// have. The default is zero retries. Returns the pool for chaining; must
// not be called concurrently with Map.
func (p *Pool) SetRetry(retries int, backoff time.Duration) *Pool {
	if retries < 0 {
		retries = 0
	}
	if backoff < 0 {
		backoff = 0
	}
	p.retries = retries
	p.backoff = backoff
	return p
}

// ProgressInfo is one periodic snapshot of a Map/MapCtx call's execution
// state, delivered to the reporter installed with SetProgress.
type ProgressInfo struct {
	// Done and Total count units finished (successfully or not) and
	// submitted in the current Map/MapCtx call.
	Done, Total int
	// Elapsed is the wall-clock time since the call began.
	Elapsed time.Duration
	// Jobs, Retries and Stalls are the pool-lifetime counters at snapshot
	// time (see Pool.Jobs, Pool.Retries, Pool.Stalls).
	Jobs    int64
	Retries int64
	Stalls  int64
}

// SetProgress makes subsequent Map/MapCtx calls invoke fn every interval
// with a snapshot of the call's completion state, so a multi-hour sweep can
// report liveness without its units cooperating. fn runs on a dedicated
// goroutine and must be safe to call concurrently with unit execution; the
// zero interval or a nil fn (the defaults) disables reporting. Returns the
// pool for chaining; must not be called concurrently with Map.
func (p *Pool) SetProgress(interval time.Duration, fn func(ProgressInfo)) *Pool {
	if interval < 0 {
		interval = 0
	}
	p.progressEvery = interval
	p.progressFn = fn
	return p
}

// watchdogOf reports the configured watchdog window; nil-safe.
func (p *Pool) watchdogOf() time.Duration {
	if p == nil {
		return 0
	}
	return p.watchdogWindow
}

// retriesOf reports the configured retry budget; nil-safe.
func (p *Pool) retriesOf() int {
	if p == nil {
		return 0
	}
	return p.retries
}

// retryDelay is the pause before retry attempt+1: backoff<<attempt, capped.
func (p *Pool) retryDelay(attempt int) time.Duration {
	const maxDelay = time.Minute
	d := p.backoff
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= maxDelay {
			return maxDelay
		}
	}
	return d
}

// progressKey carries a unit's heartbeat cell through the context passed to
// its body.
type progressKey struct{}

// Progress records a heartbeat for the watchdog monitoring the unit that
// ctx belongs to, with p as an arbitrary monotone progress position (for
// simulations, simulated time completed). It is a no-op — and safe — when
// no watchdog is armed or ctx is not a unit context, so unit bodies can
// call it unconditionally.
func Progress(ctx context.Context, p time.Duration) {
	if c, ok := ctx.Value(progressKey{}).(*heartbeat); ok {
		c.beat(p)
	}
}

// heartbeat is one unit attempt's liveness cell.
type heartbeat struct {
	mu       sync.Mutex
	last     time.Time // wall-clock time of the most recent beat
	progress time.Duration
	index    int
	cancel   context.CancelCauseFunc
	fired    bool
}

func (h *heartbeat) beat(p time.Duration) {
	h.mu.Lock()
	h.last = time.Now()
	h.progress = p
	h.mu.Unlock()
}

// expire cancels the attempt with a *StallError cause if it has gone longer
// than window without a beat.
func (h *heartbeat) expire(now time.Time, window time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fired || now.Sub(h.last) <= window {
		return
	}
	h.fired = true
	h.cancel(&StallError{Index: h.index, LastProgress: h.progress, Window: window})
}

// monitor watches the heartbeat cells of one Map/MapCtx call. One goroutine
// polls at a fraction of the window; cells are armed per attempt, so a
// retried unit restarts its clock.
type monitor struct {
	window time.Duration
	mu     sync.Mutex
	cells  map[*heartbeat]struct{}
	stop   chan struct{}
	done   chan struct{}
}

// startMonitor launches the polling goroutine; callers must call shut.
func startMonitor(window time.Duration) *monitor {
	m := &monitor{
		window: window,
		cells:  make(map[*heartbeat]struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	tick := window / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go func() {
		defer close(m.done)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case now := <-t.C:
				m.mu.Lock()
				for h := range m.cells {
					h.expire(now, m.window)
				}
				m.mu.Unlock()
			}
		}
	}()
	return m
}

// arm registers a fresh heartbeat for one attempt of unit i and returns the
// attempt context (carrying the cell for Progress) plus a disarm function
// that must run when the attempt finishes.
func (m *monitor) arm(ctx context.Context, i int) (context.Context, *heartbeat, func()) {
	actx, cancel := context.WithCancelCause(ctx)
	h := &heartbeat{last: time.Now(), index: i, cancel: cancel}
	actx = context.WithValue(actx, progressKey{}, h)
	m.mu.Lock()
	m.cells[h] = struct{}{}
	m.mu.Unlock()
	disarm := func() {
		m.mu.Lock()
		delete(m.cells, h)
		m.mu.Unlock()
		cancel(nil) // release the attempt context's resources
	}
	return actx, h, disarm
}

// shut stops the polling goroutine and waits for it.
func (m *monitor) shut() {
	close(m.stop)
	<-m.done
}

// sleepCtx pauses for d or until ctx is done, reporting whether the full
// pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
