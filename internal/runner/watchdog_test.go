package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogCancelsStalledUnit: a unit that spins without reporting
// progress is cancelled, and the reported error is a *StallError carrying
// the submission index, the Protect-attached scenario key and the last
// progress it managed to report.
func TestWatchdogCancelsStalledUnit(t *testing.T) {
	p := NewPool(2).SetWatchdog(50 * time.Millisecond)
	_, err := MapCtx(context.Background(), p, 3, func(ctx context.Context, i int) (int, error) {
		return Protect(fmt.Sprintf("scenario|v3|unit%d", i), func() (int, error) {
			if i != 1 {
				return i, nil
			}
			Progress(ctx, 7*time.Second)
			// An "infinite loop": no further heartbeats, only the
			// cooperative cancellation check every simulation chunk has.
			for {
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(time.Millisecond):
				}
			}
		})
	})
	if err == nil {
		t.Fatal("stalled unit not cancelled")
	}
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("error %v is not a StallError", err)
	}
	if st.Index != 1 || st.Key != "scenario|v3|unit1" || st.LastProgress != 7*time.Second {
		t.Errorf("StallError = %+v", st)
	}
	var ue *UnitError
	if !errors.As(err, &ue) || ue.Index != 1 {
		t.Errorf("stall not wrapped as UnitError for unit 1: %v", err)
	}
	if isCancellation(err) {
		t.Error("StallError must not count as a cancellation")
	}
	if !Transient(err) {
		t.Error("StallError must be transient")
	}
}

// TestWatchdogOffByDefault: with no window configured a slow, silent unit
// is left alone — existing callers see no behavior change.
func TestWatchdogOffByDefault(t *testing.T) {
	p := NewPool(2)
	out, err := Map(p, 2, func(i int) (int, error) {
		if i == 0 {
			time.Sleep(80 * time.Millisecond) // never calls Progress
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if out[0] != 0 || out[1] != 10 {
		t.Errorf("out = %v", out)
	}
}

// TestWatchdogSparedByHeartbeats: a unit slower than the window in total
// but beating regularly is not a stall.
func TestWatchdogSparedByHeartbeats(t *testing.T) {
	p := NewPool(1).SetWatchdog(60 * time.Millisecond)
	out, err := MapCtx(context.Background(), p, 1, func(ctx context.Context, i int) (string, error) {
		for step := 0; step < 10; step++ {
			time.Sleep(20 * time.Millisecond) // total 200ms >> window
			Progress(ctx, time.Duration(step)*time.Second)
		}
		return "done", nil
	})
	if err != nil {
		t.Fatalf("heartbeating unit killed: %v", err)
	}
	if out[0] != "done" {
		t.Errorf("out = %v", out)
	}
}

// TestRetryStallThenSucceed: a unit that stalls on its first attempt and
// completes on the second succeeds overall, and the result is what a clean
// first attempt would have produced.
func TestRetryStallThenSucceed(t *testing.T) {
	var attempts atomic.Int32
	p := NewPool(1).SetWatchdog(40*time.Millisecond).SetRetry(2, time.Millisecond)
	out, err := MapCtx(context.Background(), p, 1, func(ctx context.Context, i int) (int, error) {
		if attempts.Add(1) == 1 {
			<-ctx.Done() // stall until the watchdog fires
			return 0, ctx.Err()
		}
		return 42, nil
	})
	if err != nil {
		t.Fatalf("retried unit failed: %v", err)
	}
	if out[0] != 42 {
		t.Errorf("out = %v", out)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestRetryTransientExhausted: a persistently transient failure is retried
// exactly the budgeted number of times, then reported.
func TestRetryTransientExhausted(t *testing.T) {
	var attempts atomic.Int32
	boom := errors.New("flaky store")
	p := NewPool(1).SetRetry(3, 0)
	_, err := Map(p, 1, func(i int) (int, error) {
		attempts.Add(1)
		return 0, MarkTransient(boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if got := attempts.Load(); got != 4 { // 1 initial + 3 retries
		t.Errorf("attempts = %d, want 4", got)
	}
}

// TestRetryPermanentNotRetried: ordinary failures are not retried — a
// deterministic unit would only fail identically again.
func TestRetryPermanentNotRetried(t *testing.T) {
	var attempts atomic.Int32
	p := NewPool(1).SetRetry(5, 0)
	_, err := Map(p, 1, func(i int) (int, error) {
		attempts.Add(1)
		return 0, errors.New("spec invalid")
	})
	if err == nil {
		t.Fatal("permanent failure swallowed")
	}
	if Transient(err) {
		t.Error("plain error reported transient")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1", got)
	}
}

// TestRetryStopsOnCancel: cancelling the parent context interrupts the
// backoff sleep — MapCtx returns promptly, reporting the unit's failure
// after exactly one attempt, instead of sitting out the retry budget.
func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int32
	flaky := errors.New("flaky")
	p := NewPool(1).SetRetry(100, time.Hour) // would take forever if not cancelled
	done := make(chan error, 1)
	go func() {
		_, err := MapCtx(ctx, p, 1, func(ctx context.Context, i int) (int, error) {
			attempts.Add(1)
			return 0, MarkTransient(flaky)
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, flaky) {
			t.Fatalf("err = %v, want the unit's own failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MapCtx did not return after cancel; backoff sleep ignored the context")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (cancel must stop retrying)", got)
	}
}

// TestRetryDelayExponential: retryDelay doubles per attempt and caps.
func TestRetryDelayExponential(t *testing.T) {
	p := NewPool(1).SetRetry(10, 10*time.Millisecond)
	for i, want := range []time.Duration{10, 20, 40, 80} {
		if got := p.retryDelay(i); got != want*time.Millisecond {
			t.Errorf("retryDelay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	if got := p.retryDelay(40); got != time.Minute {
		t.Errorf("retryDelay(40) = %v, want capped at 1m", got)
	}
}

// TestProgressNoopOutsideUnit: Progress on a bare context does nothing.
func TestProgressNoopOutsideUnit(t *testing.T) {
	Progress(context.Background(), time.Second) // must not panic
}

// TestTransientClassification: only stalls and marked errors are transient.
func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Error("nil transient")
	}
	if Transient(context.Canceled) {
		t.Error("cancellation transient")
	}
	if !Transient(&StallError{}) {
		t.Error("StallError not transient")
	}
	if !Transient(MarkTransient(errors.New("x"))) {
		t.Error("marked error not transient")
	}
	if !Transient(&UnitError{Err: &StallError{}}) {
		t.Error("wrapped StallError not transient")
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}
