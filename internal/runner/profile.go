package runner

import (
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
)

// CPUProfile is an in-progress CPU profile started by StartCPUProfile. Stop
// it through the same single-exit cleanup path that saves the result cache:
// a profile stopped by a deferred call that the process skips (os.Exit on a
// signal, a -strict audit failure) is left truncated and unusable by
// `go tool pprof`.
type CPUProfile struct {
	f    *os.File
	once sync.Once
	err  error
}

// StartCPUProfile begins writing a CPU profile to path. It exists so every
// command wires -cpuprofile identically.
func StartCPUProfile(path string) (*CPUProfile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runner: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: starting CPU profile: %w", err)
	}
	return &CPUProfile{f: f}, nil
}

// Stop flushes the profile and closes its file, reporting any write error
// instead of swallowing it — a silently truncated profile looks like a
// mysteriously empty workload. Stop is idempotent (later calls return the
// first outcome) and a nil receiver is a no-op, so every exit path can call
// it unconditionally.
func (p *CPUProfile) Stop() error {
	if p == nil {
		return nil
	}
	p.once.Do(func() {
		pprof.StopCPUProfile()
		if err := p.f.Sync(); err != nil {
			p.err = fmt.Errorf("runner: flushing CPU profile: %w", err)
			p.f.Close()
			return
		}
		if err := p.f.Close(); err != nil {
			p.err = fmt.Errorf("runner: closing CPU profile: %w", err)
		}
	})
	return p.err
}
