package runner

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. It exists so every
// command wires -cpuprofile identically.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runner: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
