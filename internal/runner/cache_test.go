package runner

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bbrnash/internal/scenario"
)

type fakeResult struct {
	Throughput float64
	Drops      int
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache()
	var out fakeResult
	if c.Get("k", &out) {
		t.Fatal("empty cache hit")
	}
	want := fakeResult{Throughput: 12.5, Drops: 3}
	c.Put("k", want)
	if !c.Get("k", &out) || out != want {
		t.Fatalf("Get = %+v, want %+v", out, want)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Errorf("hits/misses/len = %d/%d/%d, want 1/1/1", c.Hits(), c.Misses(), c.Len())
	}
	if r := c.HitRate(); r != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", r)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	var out fakeResult
	if c.Get("k", &out) {
		t.Error("nil cache hit")
	}
	c.Put("k", out) // must not panic
	if err := c.Save(); err != nil {
		t.Error(err)
	}
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.HitRate() != 0 {
		t.Error("nil cache should report zeros")
	}
}

func TestCacheFloatRoundTripExact(t *testing.T) {
	// Cached results must replay bit-for-bit: Go's JSON encoder emits the
	// shortest representation that round-trips exactly.
	c := NewCache()
	values := []float64{1.0 / 3.0, 6.25e7, 0x1.fffffffffffffp+1023, 5e-324}
	c.Put("f", values)
	var got []float64
	if !c.Get("f", &got) {
		t.Fatal("miss")
	}
	for i := range values {
		if got[i] != values[i] {
			t.Errorf("value %d: %x != %x", i, got[i], values[i])
		}
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", fakeResult{Throughput: 1})
	c.Put("b", fakeResult{Throughput: 2})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	re, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	var out fakeResult
	if !re.Get("b", &out) || out.Throughput != 2 {
		t.Errorf("reopened Get(b) = %+v", out)
	}
	// Save with no changes must be a no-op (file untouched).
	before, _ := os.Stat(path)
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("clean Save rewrote the store")
	}
}

// TestOpenCacheSkipsUnrecognizedVersions: opening a store with a
// recognized-version set drops entries from other key generations (and
// keys with no version field at all), and the next Save prunes them from
// disk.
func TestOpenCacheSkipsUnrecognizedVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("scenario|v2|cap=1|g=bbr:1:1:0", fakeResult{Throughput: 1})
	c.Put("mix|v1|cap=1|nx=1", fakeResult{Throughput: 2})
	c.Put("unversioned", fakeResult{Throughput: 3})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	re, err := OpenCache(path, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", re.Len())
	}
	var out fakeResult
	if !re.Get("scenario|v2|cap=1|g=bbr:1:1:0", &out) || out.Throughput != 1 {
		t.Errorf("recognized entry lost: %+v", out)
	}
	if re.Get("mix|v1|cap=1|nx=1", &out) {
		t.Error("v1 entry served despite unrecognized version")
	}
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 1 {
		t.Errorf("Save kept %d entries, want the 1 recognized", re2.Len())
	}
}

func TestOpenCacheMissingAndEmptyPath(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || c.Len() != 0 {
		t.Fatalf("missing file: %v, len %d", err, c.Len())
	}
	if err := c.Save(); err != nil {
		t.Fatal(err) // dirty=false, no entries: still fine
	}
	c2, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Save(); err != nil {
		t.Error("in-memory Save should be a no-op")
	}
}

func TestOpenCacheCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Error("corrupt store accepted")
	}
}

func TestCacheSchemaMismatchIsMiss(t *testing.T) {
	c := NewCache()
	c.Put("k", "a string, not an object")
	var out fakeResult
	if c.Get("k", &out) {
		t.Error("incompatible stored value should miss")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := "shared"
				var out fakeResult
				if !c.Get(key, &out) {
					c.Put(key, fakeResult{Throughput: 42})
				} else if out.Throughput != 42 {
					t.Errorf("read %v", out)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheCorruptEntryEvictedAndRecomputed: a corrupt on-disk entry
// must (a) miss without disturbing the caller's destination, (b) be
// evicted so the recomputed value can be stored, and (c) round-trip the
// recompute bit-identically through Save and reopen.
func TestCacheCorruptEntryEvictedAndRecomputed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	// "Drops" is a string where the schema wants an int: the entry decodes
	// as JSON but not into fakeResult.
	corrupt := `{"k": {"Throughput": 1.5, "Drops": "bad"}}`
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	// Pre-fill the destination: a corrupt hit must not leak partial fields
	// into it.
	out := fakeResult{Throughput: 99, Drops: 7}
	if c.Get("k", &out) {
		t.Fatal("corrupt entry reported as a hit")
	}
	if (out != fakeResult{Throughput: 99, Drops: 7}) {
		t.Errorf("destination mutated by failed decode: %+v", out)
	}
	if c.Len() != 0 {
		t.Errorf("corrupt entry not evicted: Len = %d", c.Len())
	}

	// Recompute, store, persist, reopen: the replacement must replay
	// bit-identically.
	want := fakeResult{Throughput: 1.0 / 3.0, Drops: 3}
	c.Put("k", want)
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	re, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var got fakeResult
	if !re.Get("k", &got) || got != want {
		t.Errorf("reopened Get = %+v, want %+v", got, want)
	}
}

// TestCacheInvalidDestinationDoesNotEvict: a nil or non-pointer
// destination is a caller bug, not a corrupt entry — the stored value
// must survive.
func TestCacheInvalidDestinationDoesNotEvict(t *testing.T) {
	c := NewCache()
	c.Put("k", fakeResult{Throughput: 1})
	if c.Get("k", nil) {
		t.Error("nil destination hit")
	}
	if c.Get("k", fakeResult{}) {
		t.Error("non-pointer destination hit")
	}
	if c.Len() != 1 {
		t.Errorf("valid entry evicted on caller error: Len = %d", c.Len())
	}
	var out fakeResult
	if !c.Get("k", &out) || out.Throughput != 1 {
		t.Errorf("entry lost: %+v", out)
	}
}

// TestCacheSaveFileMode: a fresh store is world-readable (0644, less
// umask is not applied by Chmod), and Save preserves the mode of an
// existing store the operator may have tightened.
func TestCacheSaveFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", fakeResult{Throughput: 1})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("fresh store mode = %o, want 0644", fi.Mode().Perm())
	}

	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	c.Put("k2", fakeResult{Throughput: 2})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Errorf("tightened store mode = %o, want 0600 preserved", fi.Mode().Perm())
	}
}

// TestOpenCacheStaleVersionsPrunedUnderV5: the concrete migrations this
// repo shipped — stores written under key generations v3 (before the
// execution backend entered the canonical key) and v4 (before scenarios
// grew link topologies) opened by a binary recognizing only
// scenario.KeyVersion (v5) serve nothing, and the next Save prunes the
// stale entries from disk. Guards against pre-topology results silently
// answering v5 queries.
func TestOpenCacheStaleVersionsPrunedUnderV5(t *testing.T) {
	if scenario.KeyVersion != "v5" {
		t.Fatalf("scenario.KeyVersion = %q; update this migration test", scenario.KeyVersion)
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	staleKeys := []string{
		"scenario|v3|cap=0x1.908b1p+25|buf=0x1p+20|mss=0x1.77p+10|aj=0|sj=0|dur=10000000000|seed=1|fl=0|al=0|fp=0|fd=0|be=0|bl=0|g=bbr:1:40000000:0",
		"scenario|v4|bk=packet|cap=0x1.908b1p+25|buf=0x1p+20|mss=0x1.77p+10|aj=0|sj=0|dur=10000000000|seed=1|fl=0x0p+00|al=0x0p+00|fp=0|fd=0x0p+00|be=0|bl=0|g=bbr:1:40000000:0",
	}
	for i, k := range staleKeys {
		c.Put(k, fakeResult{Throughput: float64(i + 5)})
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	re, err := OpenCache(path, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var out fakeResult
	for _, k := range staleKeys {
		if re.Get(k, &out) {
			t.Errorf("stale entry served under v5: %s", k)
		}
	}
	if re.Len() != 0 {
		t.Errorf("reopened Len = %d, want 0", re.Len())
	}
	re.Put("scenario|v5|fresh", fakeResult{Throughput: 6})
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "scenario|v3|") || strings.Contains(string(data), "scenario|v4|") {
		t.Error("Save left stale-generation entries on disk")
	}
}
