//go:build !unix

package runner

import "os"

// fileLockExcl is a no-op on platforms without flock(2); the in-process
// registry in acquireLock still catches double opens within one process,
// which covers the tests and the common operator mistake.
func fileLockExcl(*os.File) error { return nil }
