package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
)

// Journal is a crash-safe write-ahead log of completed experiment units:
// one JSON line {"key":…,"value":…} per unit, fsynced as it is recorded, so
// a sweep killed mid-flight — SIGKILL included — loses at most the unit in
// progress. Re-opening the journal and passing it back into the sweep
// replays the completed units without re-simulating them; because every
// unit is a deterministic function of its key, the resumed run's output is
// byte-identical to an uninterrupted one.
//
// The Journal differs from Cache where their jobs differ: a cache is an
// optimization whose failures must never fail the experiment, while the
// journal is a durability promise — Record reports write errors so the
// caller knows resumption is no longer covered. Methods are safe for
// concurrent use; a nil *Journal is valid and never hits.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	m    map[string]json.RawMessage
	lock *fileLock

	hits atomic.Int64
}

// journalLine is the on-disk record format.
type journalLine struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenJournal opens (or creates) the journal at path and loads its
// completed entries. A torn final line — the signature of a crash mid-write
// — is tolerated: entries up to it load and the tail is truncated away.
// When recognized key versions are given (see OpenCache), entries from
// other key generations are dropped. After filtering, the file is
// compacted in place (atomically, temp file + rename) so stale and torn
// bytes do not accumulate across resumes. An empty path returns a nil
// journal, which is valid and inert.
//
// Like OpenCache, opening takes an exclusive advisory lock on a sibling
// "<path>.lock" file, held until Close or process exit: two processes
// appending to one journal would interleave records and corrupt each
// other's durability promise, so the second open fails with ErrStoreLocked
// instead. The kernel releases the lock when the holder dies — SIGKILL
// included — so a crashed sweep's journal is immediately resumable.
func OpenJournal(path string, recognized ...string) (*Journal, error) {
	if path == "" {
		return nil, nil
	}
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Journal, error) {
		lock.release()
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fail(fmt.Errorf("runner: reading journal: %w", err))
	}
	j := &Journal{m: make(map[string]json.RawMessage), lock: lock}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalLine
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			// A torn or foreign line; everything before it already
			// loaded, and compaction below drops it.
			continue
		}
		if len(recognized) > 0 && !versionRecognized(rec.Key, recognized) {
			continue
		}
		// Last entry wins: a unit recorded twice (e.g. across a resume
		// that re-verified it) keeps its most recent bytes.
		j.m[rec.Key] = rec.Value
	}

	// Compact: rewrite only the surviving entries, then reopen for append.
	// Like Cache.Save, an existing file keeps its permission bits.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*.jsonl")
	if err != nil {
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for key, val := range j.m {
		if err := enc.Encode(journalLine{Key: key, Value: val}); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fail(fmt.Errorf("runner: compacting journal: %w", err))
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	// Make the rename durable: without the directory fsync a power loss
	// right after compaction could resurrect the pre-compaction file (which
	// is still correct JSONL, but may hold entries the caller saw dropped).
	if err := syncDir(path); err != nil {
		return fail(fmt.Errorf("runner: compacting journal: %w", err))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("runner: opening journal for append: %w", err))
	}
	j.f = f
	return j, nil
}

// Has reports whether key has a completed entry.
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.m[key]
	return ok
}

// Get looks key up and, when present, unmarshals the recorded value into
// out, returning true and counting a hit. Like Cache.Get it decodes through
// a scratch value so a schema mismatch never leaves out half-filled — but
// unlike the cache a mismatched entry is left in place, since dropping
// journal entries silently would undermine the resumption promise.
func (j *Journal) Get(key string, out any) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	raw, ok := j.m[key]
	j.mu.Unlock()
	if !ok {
		return false
	}
	dst := reflect.ValueOf(out)
	if dst.Kind() != reflect.Pointer || dst.IsNil() {
		return false
	}
	scratch := reflect.New(dst.Type().Elem())
	if json.Unmarshal(raw, scratch.Interface()) != nil {
		return false
	}
	dst.Elem().Set(scratch.Elem())
	j.hits.Add(1)
	return true
}

// Record appends key's completed value to the log and fsyncs before
// returning, so a process killed any time after Record returns will find
// the entry on resume. Errors are reported, not swallowed: a journal that
// cannot persist must fail the unit rather than let the operator believe
// the sweep is resumable.
//
// Durability contract (tested by TestJournalRecordDurableBeforeReturn): the
// full JSON line is on disk — visible to any other reader of the file, and
// flushed through the OS by fsync — before Record returns. A power-loss
// - style kill can therefore lose only entries whose Record had not yet
// returned; acknowledged entries survive. The one non-guarantee is the
// file's *first* creation: the directory entry is made durable at the next
// OpenJournal compaction or Cache.Save in the same directory, not per
// Record — an empty journal lost to power failure is indistinguishable
// from one never started, so nothing acknowledged is lost there either.
func (j *Journal) Record(key string, v any) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: journal: encoding %s: %w", key, err)
	}
	line, err := json.Marshal(journalLine{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("runner: journal: encoding %s: %w", key, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if _, err := j.f.Write(line); err != nil {
			return fmt.Errorf("runner: journal: writing %s: %w", key, err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("runner: journal: syncing %s: %w", key, err)
		}
	}
	j.m[key] = raw
	return nil
}

// Len reports how many completed entries the journal holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.m)
}

// Hits reports how many Gets were served from the journal.
func (j *Journal) Hits() int64 {
	if j == nil {
		return 0
	}
	return j.hits.Load()
}

// Close releases the underlying file and the advisory store lock. Entries
// already recorded stay durable; Record after Close updates only the
// in-memory view.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lock.release()
	j.lock = nil
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
