package runner

import (
	"os"
	"path/filepath"
	"testing"
)

// A profile stopped through Stop must be complete and flushed: the pprof
// writer emits a gzip stream, so a non-empty file starting with the gzip
// magic distinguishes a usable profile from the truncated zero-byte file a
// skipped cleanup leaves behind.
func TestCPUProfileStopFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	prof, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = NewPool(1).Workers()
	}
	if err := prof.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile is not a complete gzip stream (%d bytes)", len(data))
	}
}

// Stop is deferred from multiple cleanup paths; later calls must be no-ops
// returning the first outcome, and a nil profile (no -cpuprofile flag) must
// be callable unconditionally.
func TestCPUProfileStopIdempotentAndNilSafe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	prof, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		t.Fatalf("first Stop: %v", err)
	}
	if err := prof.Stop(); err != nil {
		t.Fatalf("second Stop should repeat the first outcome: %v", err)
	}
	var nilProf *CPUProfile
	if err := nilProf.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}

// StartCPUProfile must fail cleanly on an unwritable path instead of
// leaving a dangling profile session.
func TestCPUProfileStartBadPath(t *testing.T) {
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "no-such-dir", "cpu.prof")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
	// The global profiler must be free for a subsequent Start.
	path := filepath.Join(t.TempDir(), "cpu.prof")
	prof, err := StartCPUProfile(path)
	if err != nil {
		t.Fatalf("profiler left busy after failed Start: %v", err)
	}
	prof.Stop()
}
