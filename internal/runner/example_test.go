package runner_test

import (
	"fmt"

	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
)

// The runner's determinism contract in miniature: seeds are derived from
// the parent rng.Source up front, on the submitting goroutine; each unit
// then owns a private child Source (never the parent, never a sibling's),
// and results come back in submission order. The output is therefore
// identical for any worker count.
func Example() {
	parent := rng.New(42)
	seeds := make([]uint64, 4)
	for i := range seeds {
		// Split-derived child seeds: each unit gets an uncorrelated
		// stream, pre-assigned before any worker starts.
		seeds[i] = parent.Split().Uint64()
	}

	for _, workers := range []int{1, 4} {
		out, err := runner.Map(runner.NewPool(workers), len(seeds), func(i int) (int, error) {
			src := rng.New(seeds[i]) // this unit's private generator
			return src.Intn(1000), nil
		})
		if err != nil {
			panic(err)
		}
		fmt.Println(workers, "workers:", out)
	}
	// Output:
	// 1 workers: [139 407 399 848]
	// 4 workers: [139 407 399 848]
}
