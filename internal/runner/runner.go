// Package runner executes independent experiment units concurrently while
// preserving bit-for-bit determinism.
//
// Every simulation in the harness is an independent, deterministic function
// of its configuration and seed, so the only obstacles to parallelism are
// ordering and seed derivation. The package solves both with one rule:
//
//   - Derive every unit's seed up front, on the submitting goroutine, from
//     the parent rng.Source (see rng.Source.Split); then
//   - collect results in submission order, never completion order.
//
// Under that discipline a sweep run with one worker and with sixteen
// produces byte-identical output. A Pool bounds how many units execute at
// once; a Cache memoizes unit results by canonical scenario key so that
// exhaustive Nash-equilibrium scans and overlapping figure grids stop
// re-simulating identical scenarios.
//
// Execution is fault-tolerant: MapCtx stops dispatching new units as soon
// as the context is cancelled or any unit fails (in-flight units drain), a
// panicking unit is captured instead of crashing the process, and every
// failure is reported as a *UnitError naming the unit by submission index
// and — when the caller wraps its unit bodies in Protect — by canonical
// scenario key. Error selection is deterministic: the lowest-index real
// failure wins regardless of scheduling, and cancellations triggered by the
// abort never mask it.
//
// Concurrency rules at the runner boundary: a rng.Source is not safe for
// concurrent use, and neither is a netsim.Network (which owns one). Each
// submitted unit must build its own Network from its pre-derived seed and
// never share it — or the parent Source — with another unit. See the
// package example.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// UnitError reports the failure of one mapped unit: which submission index
// failed, the canonical scenario key when the caller supplied one (see
// Protect), and either the underlying error or the recovered panic value
// with its stack. Map and MapCtx wrap every unit failure this way, so a
// multi-hour sweep that dies on one pathological scenario names the point
// instead of crashing.
type UnitError struct {
	// Index is the unit's submission index within its Map/MapCtx call.
	Index int
	// Key is the unit's canonical scenario key, "" when not supplied.
	Key string
	// Err is the underlying error; nil when the unit panicked.
	Err error
	// Recovered is the recovered panic value; nil for plain errors.
	Recovered any
	// Stack is the panicking goroutine's stack; nil for plain errors.
	Stack []byte
}

func (e *UnitError) Error() string {
	var what string
	switch {
	case e.Recovered != nil:
		what = fmt.Sprintf("panic: %v", e.Recovered)
	case e.Err != nil:
		what = e.Err.Error()
	default:
		what = "failed"
	}
	if e.Key != "" {
		return fmt.Sprintf("runner: unit %d (%s): %s", e.Index, e.Key, what)
	}
	return fmt.Sprintf("runner: unit %d: %s", e.Index, what)
}

// Unwrap exposes the underlying error to errors.Is/errors.As chains (so a
// unit returning ctx.Err() still matches context.Canceled).
func (e *UnitError) Unwrap() error { return e.Err }

// Protect runs work on behalf of a mapped unit, converting a panic into a
// *UnitError carrying key (the unit's canonical scenario key) and wrapping
// a plain error the same way. MapCtx fills in the submission index; unit
// bodies that know their scenario key wrap themselves in Protect so a
// failure deep in a sweep is reported by scenario, not just by position.
func Protect[T any](key string, work func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &UnitError{Key: key, Recovered: r, Stack: debug.Stack()}
		}
	}()
	out, err = work()
	if err != nil {
		var ue *UnitError
		if !errors.As(err, &ue) {
			err = &UnitError{Key: key, Err: err}
		}
	}
	return out, err
}

// Pool bounds how many units run concurrently and accumulates execution
// statistics for wall-clock/speedup reporting. A nil *Pool is valid and
// means serial execution with no statistics.
//
// A Pool carries no goroutines of its own: each Map call spawns at most
// Workers() goroutines for its duration. The zero worker count is replaced
// by GOMAXPROCS at construction.
type Pool struct {
	workers int

	// Resilience knobs, both off by default; see SetWatchdog and SetRetry.
	watchdogWindow time.Duration
	retries        int
	backoff        time.Duration

	// Progress reporting, off by default; see SetProgress.
	progressEvery time.Duration
	progressFn    func(ProgressInfo)

	jobs    atomic.Int64
	busy    atomic.Int64 // accumulated per-unit execution time, nanoseconds
	maxUnit atomic.Int64 // longest successful unit execution, nanoseconds
	redone  atomic.Int64 // retry attempts actually executed
	stalled atomic.Int64 // watchdog stall cancellations observed
}

// NewPool returns a pool running at most workers units at once; workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency bound. A nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Jobs reports how many units have completed successfully through this
// pool. Failed and cancelled units are excluded, so after an aborted run
// the count is the same at any worker count.
func (p *Pool) Jobs() int64 {
	if p == nil {
		return 0
	}
	return p.jobs.Load()
}

// Busy reports the total execution time spent inside successfully
// completed units. Dividing Busy by elapsed wall-clock time estimates the
// achieved speedup.
func (p *Pool) Busy() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.busy.Load())
}

// MaxUnitWall reports the longest wall-clock time any successfully
// completed unit took (including its retries), for telemetry reports.
func (p *Pool) MaxUnitWall() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.maxUnit.Load())
}

// Retries reports how many retry attempts the pool has executed (an initial
// attempt is not a retry).
func (p *Pool) Retries() int64 {
	if p == nil {
		return 0
	}
	return p.redone.Load()
}

// Stalls reports how many unit attempts were cancelled by the watchdog.
func (p *Pool) Stalls() int64 {
	if p == nil {
		return 0
	}
	return p.stalled.Load()
}

func (p *Pool) account(start time.Time) {
	if p == nil {
		return
	}
	p.jobs.Add(1)
	took := int64(time.Since(start))
	p.busy.Add(took)
	for {
		cur := p.maxUnit.Load()
		if took <= cur || p.maxUnit.CompareAndSwap(cur, took) {
			break
		}
	}
}

// Map runs fn(0) … fn(n-1) through the pool and returns the results indexed
// by submission order. fn must be safe for concurrent invocation across
// distinct indices and must not depend on execution order (derive any
// randomness from pre-split seeds, not from shared state).
//
// Failure semantics are those of MapCtx with a background context: after
// the first failure no further units are dispatched at any worker count,
// started units drain, and the lowest failing index's error is reported as
// a *UnitError.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), p, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cancellation and panic capture. As soon as ctx is
// cancelled or any unit fails, no further units are dispatched; units
// already started drain (they observe the cancellation through the context
// passed to fn) and MapCtx returns only after all of them have finished, so
// it never leaks a goroutine.
//
// Every unit failure — including a recovered panic — is reported as a
// *UnitError. The reported error is the lowest-submission-index failure
// that is not itself a cancellation, so it does not depend on scheduling;
// when execution was aborted by ctx rather than by a unit, ctx.Err() is
// returned.
func MapCtx[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}

	// Cancelling unitCtx — on the first unit failure or when the parent
	// context is cancelled — stops dispatch and lets cooperative in-flight
	// units return early.
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// When the pool has a watchdog window, one monitor goroutine polls the
	// in-flight attempts' heartbeats and cancels any that stall.
	var mon *monitor
	if window := p.watchdogOf(); window > 0 {
		mon = startMonitor(window)
		defer mon.shut()
	}

	// When the pool has a progress reporter, one goroutine snapshots the
	// call's completion state every interval. It observes counters only —
	// never results — so reporting cannot perturb determinism.
	var done atomic.Int64
	if p != nil && p.progressEvery > 0 && p.progressFn != nil {
		begin := time.Now()
		stopProg := make(chan struct{})
		progDone := make(chan struct{})
		go func() {
			defer close(progDone)
			t := time.NewTicker(p.progressEvery)
			defer t.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-t.C:
					p.progressFn(ProgressInfo{
						Done:    int(done.Load()),
						Total:   n,
						Elapsed: time.Since(begin),
						Jobs:    p.Jobs(),
						Retries: p.Retries(),
						Stalls:  p.Stalls(),
					})
				}
			}
		}()
		defer func() { close(stopProg); <-progDone }()
	}

	// runAttempt executes unit i once. With a watchdog armed, the attempt
	// runs under its own cancellable context carrying a heartbeat cell; a
	// stall cancellation surfaces as a *UnitError wrapping the *StallError
	// cause (copying the scenario key from Protect when the body attached
	// one) rather than as a bare context error.
	runAttempt := func(i int) (T, error) {
		actx := unitCtx
		var disarm func()
		if mon != nil {
			actx, _, disarm = mon.arm(unitCtx, i)
		}
		v, err := protectUnit(actx, i, fn)
		if disarm != nil {
			disarm()
		}
		if err != nil && mon != nil {
			var st *StallError
			if errors.As(context.Cause(actx), &st) {
				if p != nil {
					p.stalled.Add(1)
				}
				st.Index = i
				var ue *UnitError
				if errors.As(err, &ue) && ue.Key != "" {
					st.Key = ue.Key
				}
				err = &UnitError{Index: i, Key: st.Key, Err: st}
			}
		}
		return v, err
	}

	errs := make([]error, n)
	runUnit := func(i int) {
		defer done.Add(1)
		start := time.Now()
		v, err := runAttempt(i)
		// Transient failures — stalls, errors marked with MarkTransient —
		// are retried with exponential backoff. Inputs are pre-derived, so
		// a retried unit recomputes the identical result; a permanent
		// failure, a cancelled run or an exhausted budget breaks out.
		for attempt := 0; err != nil && attempt < p.retriesOf(); attempt++ {
			if unitCtx.Err() != nil || !Transient(err) {
				break
			}
			if !sleepCtx(unitCtx, p.retryDelay(attempt)) {
				break
			}
			p.redone.Add(1)
			v, err = runAttempt(i)
		}
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		out[i] = v
		p.account(start)
	}

	if workers <= 1 {
		for i := 0; i < n && unitCtx.Err() == nil; i++ {
			runUnit(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for unitCtx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runUnit(i)
				}
			}()
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err == nil || isCancellation(err) {
			continue
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Only cancellations remain: a unit returned ctx.Err() without the
	// parent context being cancelled. Surface the lowest-index one.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// protectUnit invokes one unit with panic capture and normalizes any
// failure into a *UnitError carrying the submission index.
func protectUnit[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &UnitError{Index: i, Recovered: r, Stack: debug.Stack()}
		}
	}()
	out, err = fn(ctx, i)
	if err != nil {
		var ue *UnitError
		if errors.As(err, &ue) {
			ue.Index = i
		} else {
			err = &UnitError{Index: i, Err: err}
		}
	}
	return out, err
}

// isCancellation reports whether err is a pure context-cancellation
// failure: a drained unit observing the aborted context must never mask
// the real failure that triggered the abort.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
