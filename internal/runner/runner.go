// Package runner executes independent experiment units concurrently while
// preserving bit-for-bit determinism.
//
// Every simulation in the harness is an independent, deterministic function
// of its configuration and seed, so the only obstacles to parallelism are
// ordering and seed derivation. The package solves both with one rule:
//
//   - Derive every unit's seed up front, on the submitting goroutine, from
//     the parent rng.Source (see rng.Source.Split); then
//   - collect results in submission order, never completion order.
//
// Under that discipline a sweep run with one worker and with sixteen
// produces byte-identical output. A Pool bounds how many units execute at
// once; a Cache memoizes unit results by canonical scenario key so that
// exhaustive Nash-equilibrium scans and overlapping figure grids stop
// re-simulating identical scenarios.
//
// Concurrency rules at the runner boundary: a rng.Source is not safe for
// concurrent use, and neither is a netsim.Network (which owns one). Each
// submitted unit must build its own Network from its pre-derived seed and
// never share it — or the parent Source — with another unit. See the
// package example.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool bounds how many units run concurrently and accumulates execution
// statistics for wall-clock/speedup reporting. A nil *Pool is valid and
// means serial execution with no statistics.
//
// A Pool carries no goroutines of its own: each Map call spawns at most
// Workers() goroutines for its duration. The zero worker count is replaced
// by GOMAXPROCS at construction.
type Pool struct {
	workers int

	jobs atomic.Int64
	busy atomic.Int64 // accumulated per-unit execution time, nanoseconds
}

// NewPool returns a pool running at most workers units at once; workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency bound. A nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Jobs reports how many units have completed through this pool.
func (p *Pool) Jobs() int64 {
	if p == nil {
		return 0
	}
	return p.jobs.Load()
}

// Busy reports the total execution time spent inside units. Dividing Busy
// by elapsed wall-clock time estimates the achieved speedup.
func (p *Pool) Busy() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.busy.Load())
}

func (p *Pool) account(start time.Time) {
	if p == nil {
		return
	}
	p.jobs.Add(1)
	p.busy.Add(int64(time.Since(start)))
}

// Map runs fn(0) … fn(n-1) through the pool and returns the results indexed
// by submission order. fn must be safe for concurrent invocation across
// distinct indices and must not depend on execution order (derive any
// randomness from pre-split seeds, not from shared state).
//
// If any invocation fails, Map still waits for all started units and then
// returns the error of the lowest failing index, so the reported error does
// not depend on scheduling.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			start := time.Now()
			v, err := fn(i)
			p.account(start)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				start := time.Now()
				out[i], errs[i] = fn(i)
				p.account(start)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
