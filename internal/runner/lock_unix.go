//go:build unix

package runner

import (
	"os"
	"syscall"
)

// fileLockExcl takes a non-blocking exclusive flock(2) on f. The lock
// belongs to the open file description, so the kernel drops it when the
// holding process exits by any means — which is exactly the recovery story
// a crash-safe store needs (a stale lock file never wedges a resume).
func fileLockExcl(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
