package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type journalResult struct {
	Rate float64 `json:"rate"`
	Runs int     `json:"runs"`
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

// TestJournalRoundTrip: recorded entries survive close and reopen, and Get
// decodes exactly what Record stored.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := journalResult{Rate: 0.1 + 0.2, Runs: 9} // non-representable float round-trips
	if err := j.Record("scenario|v3|a", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("scenario|v3|b", journalResult{Rate: 1, Runs: 1}); err != nil {
		t.Fatal(err)
	}
	if !j.Has("scenario|v3|a") || j.Has("scenario|v3|missing") {
		t.Error("Has wrong before reopen")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", j2.Len())
	}
	var got journalResult
	if !j2.Get("scenario|v3|a", &got) {
		t.Fatal("reopened journal misses recorded key")
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if j2.Hits() != 1 {
		t.Errorf("Hits = %d, want 1", j2.Hits())
	}
}

// TestJournalTornTail: a crash mid-write leaves a truncated final line; the
// journal loads every complete entry, drops the torn bytes, and the
// compacted file is clean JSONL again.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"scenario|v3|a", "scenario|v3|b"} {
		if err := j.Record(k, journalResult{Rate: 2, Runs: 3}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate SIGKILL mid-Record: append half a line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"scenario|v3|c","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 2 || !j2.Has("scenario|v3|a") || !j2.Has("scenario|v3|b") {
		t.Fatalf("after torn tail: Len = %d", j2.Len())
	}
	if j2.Has("scenario|v3|c") {
		t.Error("torn entry resurrected")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("compacted journal holds invalid line %q", line)
		}
	}
}

// TestJournalVersionFilter: entries from an older key generation are
// dropped on open, exactly like OpenCache's version filter, and the
// compaction removes them from disk.
func TestJournalVersionFilter(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("scenario|v2|old", journalResult{Rate: 1})
	j.Record("scenario|v3|new", journalResult{Rate: 2})
	j.Close()

	j2, err := OpenJournal(path, "v3")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Has("scenario|v2|old") {
		t.Error("v2 entry served from a v3 journal")
	}
	if !j2.Has("scenario|v3|new") {
		t.Error("v3 entry lost")
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "v2|old") {
		t.Error("compaction left the v2 entry on disk")
	}
}

// TestJournalLastEntryWins: a key recorded twice keeps its latest value.
func TestJournalLastEntryWins(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path)
	j.Record("scenario|v3|k", journalResult{Runs: 1})
	j.Record("scenario|v3|k", journalResult{Runs: 2})
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got journalResult
	if !j2.Get("scenario|v3|k", &got) || got.Runs != 2 {
		t.Errorf("got %+v, want Runs=2", got)
	}
	if j2.Len() != 1 {
		t.Errorf("Len = %d, want 1", j2.Len())
	}
}

// TestJournalNilSafe: a nil journal accepts every call and never hits —
// the no-resume path costs callers nothing.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Record("k", 1); err != nil {
		t.Error(err)
	}
	var out int
	if j.Has("k") || j.Get("k", &out) || j.Len() != 0 || j.Hits() != 0 {
		t.Error("nil journal not inert")
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if j2, err := OpenJournal(""); err != nil || j2 != nil {
		t.Errorf("OpenJournal(\"\") = %v, %v; want nil, nil", j2, err)
	}
}

// TestJournalConcurrent: concurrent Records and Gets are safe and all
// entries land.
func TestJournalConcurrent(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "scenario|v3|" + string(rune('a'+i%26)) + string(rune('a'+i/26))
			if err := j.Record(key, journalResult{Runs: i}); err != nil {
				t.Error(err)
			}
			var out journalResult
			j.Get(key, &out)
		}(i)
	}
	wg.Wait()
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Errorf("Len = %d, want %d", j2.Len(), n)
	}
}

// TestJournalSchemaMismatchKeptInPlace: unlike the cache, a journal entry
// that fails to decode stays on disk — Get just reports a miss.
func TestJournalSchemaMismatchKeptInPlace(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path)
	j.Record("scenario|v3|k", "a string, not a struct")
	var out journalResult
	if j.Get("scenario|v3|k", &out) {
		t.Error("mismatched schema decoded")
	}
	if !j.Has("scenario|v3|k") {
		t.Error("mismatched entry evicted from journal")
	}
	j.Close()
}
