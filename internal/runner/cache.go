package runner

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache memoizes experiment results by canonical scenario key. Values are
// stored as JSON so one cache can hold heterogeneous result types (mix
// runs, group runs) under namespaced keys, and so the in-memory map and the
// optional on-disk store share one representation.
//
// Because every cached unit is a deterministic function of its key, a
// concurrent duplicate computation is harmless: both goroutines store the
// same bytes. Methods are safe for concurrent use; a nil *Cache is valid
// and never hits.
type Cache struct {
	mu    sync.RWMutex
	m     map[string]json.RawMessage
	path  string
	dirty bool

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty in-memory cache with no backing file.
func NewCache() *Cache {
	return &Cache{m: make(map[string]json.RawMessage)}
}

// OpenCache returns a cache backed by the JSON store at path, loading any
// existing entries. A missing file is an empty cache; Save writes back to
// the same path. An empty path is equivalent to NewCache.
//
// When recognized key versions are given (e.g. scenario.KeyVersion),
// entries whose key does not carry one of them in its version field — the
// second |-separated segment, "v3" in "scenario|v3|…" — are skipped and
// logged instead of silently mixing cache generations: a store written
// before a key-format or semantics bump must not serve stale results. The
// skipped entries are dropped from the store on the next Save.
func OpenCache(path string, recognized ...string) (*Cache, error) {
	c := NewCache()
	if path == "" {
		return c, nil
	}
	c.path = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: reading cache: %w", err)
	}
	if err := json.Unmarshal(data, &c.m); err != nil {
		return nil, fmt.Errorf("runner: cache %s is not a JSON object: %w", path, err)
	}
	if len(recognized) > 0 {
		skipped := 0
		for key := range c.m {
			if !versionRecognized(key, recognized) {
				delete(c.m, key)
				skipped++
			}
		}
		if skipped > 0 {
			c.dirty = true
			log.Printf("runner: cache %s: skipped %d entries with unrecognized key version (recognized: %s)",
				path, skipped, strings.Join(recognized, ", "))
		}
	}
	return c, nil
}

// versionRecognized reports whether key's version field (the second
// |-separated segment) is one of the recognized versions. Keys without a
// version field are never recognized.
func versionRecognized(key string, recognized []string) bool {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) < 3 {
		return false
	}
	for _, v := range recognized {
		if parts[1] == v {
			return true
		}
	}
	return false
}

// Get looks key up and, when present, unmarshals the stored value into out,
// returning true. Hit and miss counts are tracked for reporting. A value
// that no longer unmarshals (e.g. an on-disk store written by an older
// result schema) counts as a miss and is evicted, so the recomputed result
// replaces the stale bytes on the next Put/Save instead of shadowing them
// forever. Decoding goes through a scratch value, so a failed unmarshal
// never leaves out partially populated.
func (c *Cache) Get(key string, out any) bool {
	if c == nil {
		return false
	}
	c.mu.RLock()
	raw, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		dst := reflect.ValueOf(out)
		if dst.Kind() != reflect.Pointer || dst.IsNil() {
			// Invalid destination; the entry itself may be fine, so
			// leave it in place.
			c.misses.Add(1)
			return false
		}
		scratch := reflect.New(dst.Type().Elem())
		if json.Unmarshal(raw, scratch.Interface()) == nil {
			dst.Elem().Set(scratch.Elem())
			c.hits.Add(1)
			return true
		}
		// The entry cannot serve this schema; delete it under the write
		// lock — unless a concurrent Put already replaced it with fresh
		// bytes — and mark the store dirty so Save drops it.
		c.mu.Lock()
		if cur, still := c.m[key]; still && string(cur) == string(raw) {
			delete(c.m, key)
			c.dirty = true
		}
		c.mu.Unlock()
	}
	c.misses.Add(1)
	return false
}

// Put stores v under key, replacing any previous entry. Unmarshalable
// values are dropped silently: a cache failure must never fail the
// experiment.
func (c *Cache) Put(key string, v any) {
	if c == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.m[key] = raw
	c.dirty = true
	c.mu.Unlock()
}

// Len reports the number of stored entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits reports how many Gets were served from the cache.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports how many Gets found nothing.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// HitRate reports Hits / (Hits + Misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Save writes the store back to the path it was opened from, atomically
// (temp file + rename). The written file keeps an existing store's
// permission bits, and a new store is created 0644 — without the chmod the
// rename would inherit os.CreateTemp's private 0600 mode, making a cache
// produced by one user or CI step unreadable to the next. Save is a no-op
// for purely in-memory caches and when nothing changed since open.
func (c *Cache) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	data, err := json.MarshalIndent(c.m, "", "\t")
	if err != nil {
		return fmt.Errorf("runner: encoding cache: %w", err)
	}
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(c.path); err == nil {
		mode = fi.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".cache-*.json")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.dirty = false
	return nil
}
