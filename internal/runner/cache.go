package runner

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache memoizes experiment results by canonical scenario key. Values are
// stored as JSON so one cache can hold heterogeneous result types (mix
// runs, group runs) under namespaced keys, and so the in-memory map and the
// optional on-disk store share one representation.
//
// Because every cached unit is a deterministic function of its key, a
// concurrent duplicate computation is harmless: both goroutines store the
// same bytes. Methods are safe for concurrent use; a nil *Cache is valid
// and never hits.
type Cache struct {
	mu    sync.RWMutex
	m     map[string]json.RawMessage
	path  string
	dirty bool
	lock  *fileLock

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty in-memory cache with no backing file.
func NewCache() *Cache {
	return &Cache{m: make(map[string]json.RawMessage)}
}

// OpenCache returns a cache backed by the JSON store at path, loading any
// existing entries. A missing file is an empty cache; Save writes back to
// the same path. An empty path is equivalent to NewCache.
//
// Opening takes an exclusive advisory lock on a sibling "<path>.lock" file,
// held until Close (or process exit — the lock is kernel-released even on
// SIGKILL): two processes sharing one store would otherwise interleave
// their Saves and silently lose entries. A second open fails with
// ErrStoreLocked.
//
// When recognized key versions are given (e.g. scenario.KeyVersion),
// entries whose key does not carry one of them in its version field — the
// second |-separated segment, "v3" in "scenario|v3|…" — are skipped and
// logged instead of silently mixing cache generations: a store written
// before a key-format or semantics bump must not serve stale results. The
// skipped entries are dropped from the store on the next Save.
func OpenCache(path string, recognized ...string) (*Cache, error) {
	c := NewCache()
	if path == "" {
		return c, nil
	}
	c.path = path
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	c.lock = lock
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		lock.release()
		return nil, fmt.Errorf("runner: reading cache: %w", err)
	}
	if err := json.Unmarshal(data, &c.m); err != nil {
		lock.release()
		return nil, fmt.Errorf("runner: cache %s is not a JSON object: %w", path, err)
	}
	if len(recognized) > 0 {
		skipped := 0
		for key := range c.m {
			if !versionRecognized(key, recognized) {
				delete(c.m, key)
				skipped++
			}
		}
		if skipped > 0 {
			c.dirty = true
			log.Printf("runner: cache %s: skipped %d entries with unrecognized key version (recognized: %s)",
				path, skipped, strings.Join(recognized, ", "))
		}
	}
	return c, nil
}

// versionRecognized reports whether key's version field (the second
// |-separated segment) is one of the recognized versions. Keys without a
// version field are never recognized.
func versionRecognized(key string, recognized []string) bool {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) < 3 {
		return false
	}
	for _, v := range recognized {
		if parts[1] == v {
			return true
		}
	}
	return false
}

// Get looks key up and, when present, unmarshals the stored value into out,
// returning true. Hit and miss counts are tracked for reporting. A value
// that no longer unmarshals (e.g. an on-disk store written by an older
// result schema) counts as a miss and is evicted, so the recomputed result
// replaces the stale bytes on the next Put/Save instead of shadowing them
// forever. Decoding goes through a scratch value, so a failed unmarshal
// never leaves out partially populated.
func (c *Cache) Get(key string, out any) bool {
	if c == nil {
		return false
	}
	c.mu.RLock()
	raw, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		dst := reflect.ValueOf(out)
		if dst.Kind() != reflect.Pointer || dst.IsNil() {
			// Invalid destination; the entry itself may be fine, so
			// leave it in place.
			c.misses.Add(1)
			return false
		}
		scratch := reflect.New(dst.Type().Elem())
		if json.Unmarshal(raw, scratch.Interface()) == nil {
			dst.Elem().Set(scratch.Elem())
			c.hits.Add(1)
			return true
		}
		// The entry cannot serve this schema; delete it under the write
		// lock — unless a concurrent Put already replaced it with fresh
		// bytes — and mark the store dirty so Save drops it.
		c.mu.Lock()
		if cur, still := c.m[key]; still && string(cur) == string(raw) {
			delete(c.m, key)
			c.dirty = true
		}
		c.mu.Unlock()
	}
	c.misses.Add(1)
	return false
}

// GetRaw looks key up and returns the stored JSON verbatim. The serve layer
// uses it to answer cache hits with exactly the bytes Put recorded —
// json.Marshal of the result value — so every reader of one key sees one
// byte sequence, whichever path produced it. Callers must treat the bytes
// as read-only. Hit/miss accounting matches Get.
func (c *Cache) GetRaw(key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	raw, ok := c.m[key]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return raw, true
}

// Put stores v under key, replacing any previous entry. Unmarshalable
// values are dropped silently: a cache failure must never fail the
// experiment.
func (c *Cache) Put(key string, v any) {
	if c == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.m[key] = raw
	c.dirty = true
	c.mu.Unlock()
}

// Len reports the number of stored entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits reports how many Gets were served from the cache.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports how many Gets found nothing.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// HitRate reports Hits / (Hits + Misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Save writes the store back to the path it was opened from,
// crash-atomically: the bytes are written to a temp file in the same
// directory, fsynced, renamed over the target, and the directory entry is
// fsynced too — so a crash (or power loss) at any instant leaves either the
// complete old store or the complete new one, never a torn mix. The written
// file keeps an existing store's permission bits, and a new store is
// created 0644 — without the chmod the rename would inherit os.CreateTemp's
// private 0600 mode, making a cache produced by one user or CI step
// unreadable to the next. Save is a no-op for purely in-memory caches and
// when nothing changed since open.
func (c *Cache) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	data, err := json.MarshalIndent(c.m, "", "\t")
	if err != nil {
		return fmt.Errorf("runner: encoding cache: %w", err)
	}
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(c.path); err == nil {
		mode = fi.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".cache-*.json")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Sync before the rename: renaming an unsynced file can atomically
	// install zero-length or partial content after a power loss.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := syncDir(c.path); err != nil {
		return err
	}
	c.dirty = false
	return nil
}

// Close releases the advisory store lock taken by OpenCache so another
// process (or a later open in this one) can use the store. It does not
// Save — callers persist first, then Close. In-memory caches and repeated
// Closes are no-ops; the lock is also released by process exit, so a
// crashed holder never wedges the store.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lock.release()
	c.lock = nil
	return nil
}
