package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky unit")

// The periodic progress reporter must observe a running map: monotonic
// completion counts bounded by the total, with the pool's cumulative
// counters along for the ride.
func TestPoolProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var infos []ProgressInfo
	p := NewPool(2).SetProgress(5*time.Millisecond, func(pi ProgressInfo) {
		mu.Lock()
		infos = append(infos, pi)
		mu.Unlock()
	})
	const n = 8
	_, err := MapCtx(context.Background(), p, n, func(context.Context, int) (int, error) {
		time.Sleep(20 * time.Millisecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) == 0 {
		t.Fatal("progress callback never fired during a ~80ms map")
	}
	last := -1
	for _, pi := range infos {
		if pi.Total != n {
			t.Errorf("Total = %d, want %d", pi.Total, n)
		}
		if pi.Done < last || pi.Done > n {
			t.Errorf("Done = %d not monotonic in [0,%d]", pi.Done, n)
		}
		last = pi.Done
		if pi.Elapsed <= 0 {
			t.Error("Elapsed not positive")
		}
	}
}

// Retries and MaxUnitWall must count what actually happened: one transient
// failure retried once, and a longest-unit wall time covering the slowest
// unit.
func TestPoolRetryAndWallCounters(t *testing.T) {
	p := NewPool(2).SetRetry(2, time.Millisecond)
	var failed atomic.Bool
	_, err := MapCtx(context.Background(), p, 4, func(_ context.Context, i int) (int, error) {
		if i == 1 && !failed.Swap(true) {
			return 0, MarkTransient(errFlaky)
		}
		if i == 2 {
			time.Sleep(30 * time.Millisecond)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Retries(); got != 1 {
		t.Errorf("Retries = %d, want 1", got)
	}
	if got := p.MaxUnitWall(); got < 30*time.Millisecond {
		t.Errorf("MaxUnitWall = %v, want >= 30ms", got)
	}
	if p.Stalls() != 0 {
		t.Errorf("Stalls = %d, want 0", p.Stalls())
	}
}

// All instrumentation accessors must be nil-safe: the CLIs call them from
// report collection even when no pool was built.
func TestPoolCountersNilSafe(t *testing.T) {
	var p *Pool
	if p.Retries() != 0 || p.Stalls() != 0 || p.MaxUnitWall() != 0 {
		t.Error("nil pool counters should be zero")
	}
}
