package runner

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStoreLockCacheDoubleOpen: a second OpenCache on the same path fails
// loudly with ErrStoreLocked while the first handle is open, and succeeds
// after Close — even though the .lock file is deliberately left on disk.
func TestStoreLockCacheDoubleOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: err = %v, want ErrStoreLocked", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".lock"); err != nil {
		t.Errorf("lock file should remain on disk after Close: %v", err)
	}
	re, err := OpenCache(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	re.Close()
}

// TestStoreLockJournalDoubleOpen: the same protocol guards the journal, and
// a journal lock does not conflict with a cache lock on a different path in
// the same directory.
func TestStoreLockJournalDoubleOpen(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(jpath); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: err = %v, want ErrStoreLocked", err)
	}
	c, err := OpenCache(filepath.Join(dir, "cache.json"))
	if err != nil {
		t.Fatalf("sibling cache in the same directory must not conflict: %v", err)
	}
	c.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Close()
}

// TestStoreLockCrossProcess: the lock is held against other processes, not
// just other handles — a child process opening the same cache path must see
// ErrStoreLocked. The child is this test binary re-executed with the helper
// environment set (see TestStoreLockCrossProcessHelper).
func TestStoreLockCrossProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cmd := exec.Command(os.Args[0], "-test.run", "TestStoreLockCrossProcessHelper", "-test.v")
	cmd.Env = append(os.Environ(), "RUNNER_LOCK_HELPER=1", "RUNNER_LOCK_PATH="+path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "helper: store locked") {
		t.Fatalf("child process acquired a lock the parent holds:\n%s", out)
	}
}

// TestStoreLockCrossProcessHelper is the child half of
// TestStoreLockCrossProcess; it is inert unless re-executed with the helper
// environment.
func TestStoreLockCrossProcessHelper(t *testing.T) {
	if os.Getenv("RUNNER_LOCK_HELPER") == "" {
		t.Skip("helper for TestStoreLockCrossProcess")
	}
	_, err := OpenCache(os.Getenv("RUNNER_LOCK_PATH"))
	if errors.Is(err, ErrStoreLocked) {
		t.Log("helper: store locked")
		return
	}
	t.Fatalf("helper: OpenCache = %v, want ErrStoreLocked", err)
}

// TestJournalRecordDurableBeforeReturn pins the journal's durability
// contract: by the time Record returns, the complete JSON line is visible
// in the file to an independent reader (and fsynced through the OS — the
// flush ordering is what this test can observe; the fsync call is in the
// same critical section).
func TestJournalRecordDurableBeforeReturn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("scenario|v5|durable", journalResult{Rate: 3.5, Runs: 2}); err != nil {
		t.Fatal(err)
	}
	// Independent read: not through the journal's handle or its in-memory
	// map.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	last := lines[len(lines)-1]
	var rec struct {
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal([]byte(last), &rec); err != nil {
		t.Fatalf("acknowledged entry is torn on disk: %q: %v", last, err)
	}
	if rec.Key != "scenario|v5|durable" {
		t.Errorf("on-disk key = %q", rec.Key)
	}
	var val journalResult
	if err := json.Unmarshal(rec.Value, &val); err != nil || val != (journalResult{Rate: 3.5, Runs: 2}) {
		t.Errorf("on-disk value = %s (%v)", rec.Value, err)
	}
}

// TestCacheGetRaw: the raw accessor returns exactly the bytes Put stored
// (json.Marshal of the value) and shares hit/miss accounting with Get.
func TestCacheGetRaw(t *testing.T) {
	c := NewCache()
	want := fakeResult{Throughput: 1.0 / 3.0, Drops: 7}
	c.Put("k", want)
	raw, ok := c.GetRaw("k")
	if !ok {
		t.Fatal("miss on stored key")
	}
	exact, _ := json.Marshal(want)
	if string(raw) != string(exact) {
		t.Errorf("GetRaw = %s, want %s", raw, exact)
	}
	if _, ok := c.GetRaw("absent"); ok {
		t.Error("hit on absent key")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	var nilCache *Cache
	if _, ok := nilCache.GetRaw("k"); ok {
		t.Error("nil cache hit")
	}
}
