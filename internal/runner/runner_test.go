package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Errorf("NewPool(0).Workers() = %d, want >= 1", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Errorf("NewPool(-3).Workers() = %d, want >= 1", w)
	}
	if w := NewPool(5).Workers(); w != 5 {
		t.Errorf("NewPool(5).Workers() = %d", w)
	}
	var nilPool *Pool
	if w := nilPool.Workers(); w != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", w)
	}
	if nilPool.Jobs() != 0 || nilPool.Busy() != 0 {
		t.Error("nil pool should report zero statistics")
	}
}

func TestMapSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		p := NewPool(workers)
		n := 53
		out, err := Map(p, n, func(i int) (int, error) {
			// Finish out of submission order on purpose.
			time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if got := p.Jobs(); got != int64(n) {
			t.Errorf("workers=%d: Jobs() = %d, want %d", workers, got, n)
		}
		if p.Busy() <= 0 {
			t.Errorf("workers=%d: Busy() not accumulated", workers)
		}
	}
}

func TestMapNilPoolIsSerial(t *testing.T) {
	running := 0
	out, err := Map[int](nil, 10, func(i int) (int, error) {
		running++ // would race if anything ran concurrently
		return i, nil
	})
	if err != nil || len(out) != 10 || running != 10 {
		t.Fatalf("Map(nil) = %v, %v (ran %d)", out, err, running)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(p, 40, func(i int) (struct{}, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent units, bound is %d", got, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(NewPool(workers), 20, func(i int) (int, error) {
			switch i {
			case 17:
				return 0, errHigh
			case 3:
				// Make the higher index likely to fail first in real time.
				time.Sleep(5 * time.Millisecond)
				return 0, errLow
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(NewPool(4), 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0 jobs) = %v, %v", out, err)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(NewPool(workers), 25, func(i int) (string, error) {
			return fmt.Sprintf("unit-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 7, 25} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestMapCtxCancelPromptNoLeak: cancelling the context makes MapCtx
// return promptly — cooperative in-flight units observe it, nothing new
// is dispatched — and no worker goroutine outlives the call.
func TestMapCtxCancelPromptNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	_, err := MapCtx(ctx, NewPool(8), 1000, func(ctx context.Context, i int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapCtxPreCancelled: a context cancelled before the call dispatches
// nothing at all.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, NewPool(4), 50, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d units ran under a pre-cancelled context", ran.Load())
	}
}

// TestMapCtxPanicCapture: a panicking unit is captured as a *UnitError
// carrying the index, recovered value and stack — at any worker count —
// instead of crashing the process.
func TestMapCtxPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(context.Background(), NewPool(workers), 10, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				panic("pathological scenario")
			}
			return i, nil
		})
		var ue *UnitError
		if !errors.As(err, &ue) {
			t.Fatalf("workers=%d: err = %v, want *UnitError", workers, err)
		}
		if ue.Index != 5 || ue.Recovered != "pathological scenario" || len(ue.Stack) == 0 {
			t.Errorf("workers=%d: UnitError = index %d, recovered %v, %d stack bytes",
				workers, ue.Index, ue.Recovered, len(ue.Stack))
		}
	}
}

// TestProtectAttachesKey: Protect names the scenario on both error and
// panic paths, and MapCtx adds the submission index.
func TestProtectAttachesKey(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), NewPool(2), 4, func(_ context.Context, i int) (int, error) {
		return Protect(fmt.Sprintf("scenario-%d", i), func() (int, error) {
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	})
	var ue *UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnitError", err)
	}
	if ue.Key != "scenario-2" || ue.Index != 2 || !errors.Is(err, boom) {
		t.Errorf("UnitError = %+v, want key scenario-2, index 2, wrapping boom", ue)
	}

	_, err = Protect("panicky", func() (int, error) { panic(42) })
	if !errors.As(err, &ue) || ue.Key != "panicky" || ue.Recovered != 42 || len(ue.Stack) == 0 {
		t.Errorf("Protect panic = %v", err)
	}
}

// TestMapErrorStateDeterministicAcrossWorkers is the error-path
// determinism contract: after an injected unit failure, completed-job
// counts and cache contents are identical at any worker count. Units
// before the failing index succeed immediately; units after it block on
// the context, so they can never complete regardless of scheduling.
func TestMapErrorStateDeterministicAcrossWorkers(t *testing.T) {
	boom := errors.New("boom")
	run := func(workers int) (*Pool, *Cache, error) {
		p := NewPool(workers)
		c := NewCache()
		_, err := MapCtx(context.Background(), p, 16, func(ctx context.Context, i int) (int, error) {
			switch {
			case i < 3:
				c.Put(fmt.Sprintf("unit-%d", i), i)
				return i, nil
			case i == 3:
				return 0, boom
			default:
				<-ctx.Done()
				return 0, ctx.Err()
			}
		})
		return p, c, err
	}
	for _, workers := range []int{1, 8} {
		p, c, err := run(workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if p.Jobs() != 3 {
			t.Errorf("workers=%d: Jobs() = %d, want 3", workers, p.Jobs())
		}
		if c.Len() != 3 {
			t.Errorf("workers=%d: cache Len() = %d, want 3", workers, c.Len())
		}
		for i := 0; i < 3; i++ {
			var v int
			if !c.Get(fmt.Sprintf("unit-%d", i), &v) || v != i {
				t.Errorf("workers=%d: cache missing unit-%d", workers, i)
			}
		}
	}
}

// TestMapStopsDispatchAfterFailure: once a unit has failed, no new
// indices are claimed — a failure near the start of a large run must not
// burn the remaining budget.
func TestMapStopsDispatchAfterFailure(t *testing.T) {
	const n, workers = 1000, 4
	var ran atomic.Int64
	_, err := Map(NewPool(workers), n, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("immediate failure")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d units dispatched after an immediate failure", got, n)
	}
}

// TestMapCancellationNeverMasksFailure: units that drain with ctx.Err()
// at a lower index than the real failure must not win error selection.
// Workers equal units so every index is claimed concurrently and the
// lower-index units are guaranteed to be in flight when unit 6 fails.
func TestMapCancellationNeverMasksFailure(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), NewPool(8), 8, func(ctx context.Context, i int) (int, error) {
		if i == 6 {
			return 0, boom
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom (cancelled lower-index units must not mask it)", err)
	}
	var ue *UnitError
	if !errors.As(err, &ue) || ue.Index != 6 {
		t.Errorf("err = %v, want UnitError index 6", err)
	}
}
