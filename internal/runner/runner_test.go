package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Errorf("NewPool(0).Workers() = %d, want >= 1", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Errorf("NewPool(-3).Workers() = %d, want >= 1", w)
	}
	if w := NewPool(5).Workers(); w != 5 {
		t.Errorf("NewPool(5).Workers() = %d", w)
	}
	var nilPool *Pool
	if w := nilPool.Workers(); w != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", w)
	}
	if nilPool.Jobs() != 0 || nilPool.Busy() != 0 {
		t.Error("nil pool should report zero statistics")
	}
}

func TestMapSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		p := NewPool(workers)
		n := 53
		out, err := Map(p, n, func(i int) (int, error) {
			// Finish out of submission order on purpose.
			time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if got := p.Jobs(); got != int64(n) {
			t.Errorf("workers=%d: Jobs() = %d, want %d", workers, got, n)
		}
		if p.Busy() <= 0 {
			t.Errorf("workers=%d: Busy() not accumulated", workers)
		}
	}
}

func TestMapNilPoolIsSerial(t *testing.T) {
	running := 0
	out, err := Map[int](nil, 10, func(i int) (int, error) {
		running++ // would race if anything ran concurrently
		return i, nil
	})
	if err != nil || len(out) != 10 || running != 10 {
		t.Fatalf("Map(nil) = %v, %v (ran %d)", out, err, running)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(p, 40, func(i int) (struct{}, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent units, bound is %d", got, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(NewPool(workers), 20, func(i int) (int, error) {
			switch i {
			case 17:
				return 0, errHigh
			case 3:
				// Make the higher index likely to fail first in real time.
				time.Sleep(5 * time.Millisecond)
				return 0, errLow
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(NewPool(4), 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0 jobs) = %v, %v", out, err)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(NewPool(workers), 25, func(i int) (string, error) {
			return fmt.Sprintf("unit-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 7, 25} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], serial[i])
			}
		}
	}
}
