package plot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	c := &Chart{Title: "t", XLabel: "x", YLabel: "y"}
	c.Add("a", []float64{0, 1, 2}, []float64{0, 1, 4})
	c.Add("b", []float64{0, 1, 2}, []float64{4, 1, 0})
	return c
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "series,x,y\n") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "a,1,1\n") || !strings.Contains(got, "b,0,4\n") {
		t.Errorf("missing rows: %q", got)
	}
	if lines := strings.Count(got, "\n"); lines != 7 {
		t.Errorf("expected 7 lines, got %d", lines)
	}
}

func TestCSVEscaping(t *testing.T) {
	c := &Chart{XLabel: `x,label`, YLabel: `y"label`}
	c.Add("s", []float64{1}, []float64{2})
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"x,label"`) || !strings.Contains(b.String(), `"y""label"`) {
		t.Errorf("escaping wrong: %q", b.String())
	}
}

func TestRenderASCII(t *testing.T) {
	out := sampleChart().RenderASCII(40, 10)
	if !strings.Contains(out, "t\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "x: x, y: y") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Error("missing legend")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.RenderASCII(40, 10); !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderASCIIDegenerateRanges(t *testing.T) {
	c := &Chart{}
	c.Add("flat", []float64{1, 1}, []float64{5, 5})
	out := c.RenderASCII(10, 3) // also exercises minimum-size clamping
	if out == "" {
		t.Error("no output for degenerate chart")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "name   value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "alpha  1" {
		t.Errorf("row = %q", lines[1])
	}
}
