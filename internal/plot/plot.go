// Package plot renders experiment results as CSV files and quick ASCII
// charts, standing in for the paper's gnuplot figures. Every figure
// generator emits one CSV (machine-readable, for external plotting) and an
// ASCII chart (for eyeballing shapes directly in a terminal).
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a set of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// WriteCSV emits the chart as CSV: one x column per series' sample grid is
// impractical, so rows are (series, x, y) triples — trivially pivotable.
func (c *Chart) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(c.XLabel), csvEscape(c.YLabel)); err != nil {
		return err
	}
	for _, s := range c.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// markers assigns one rune per series, in order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderASCII draws the chart into a width×height character grid with
// axes and a legend. Series overdraw in order, later series on top.
func (c *Chart) RenderASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return c.Title + "\n(no data)\n"
	}
	if ymin > 0 {
		ymin = 0 // anchor throughput-style charts at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	place := func(x, y float64, m rune) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row = height - 1 - row
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		// Connect consecutive points with linear interpolation so sparse
		// series still read as lines.
		type pt struct{ x, y float64 }
		pts := make([]pt, len(s.X))
		for i := range s.X {
			pts[i] = pt{s.X[i], s.Y[i]}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		for i := range pts {
			place(pts[i].x, pts[i].y, m)
			if i > 0 {
				steps := 2 * width
				for t := 1; t < steps; t++ {
					f := float64(t) / float64(steps)
					place(pts[i-1].x+f*(pts[i].x-pts[i-1].x), pts[i-1].y+f*(pts[i].y-pts[i-1].y), m)
				}
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%10.4g ┤\n", ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g └%s\n", ymin, strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-10.4g%*s%10.4g\n", "", xmin, width-20, "", xmax)
	fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", c.XLabel, c.YLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Table renders aligned columns for printing benchmark rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var parts []string
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
			} else {
				parts = append(parts, c)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
