package numeric

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("Mean wrong")
	}
}

func TestVarianceStddev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); math.Abs(v-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	// Median must not reorder its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {12.5, 15}, {-1, 10}, {101, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(105, 100) != 0.05 {
		t.Error("RelErr wrong")
	}
	if RelErr(3, 0) != 3 {
		t.Error("RelErr with zero want should return |got|")
	}
}
