// Package numeric implements the root-finding and elementary numerical
// routines the analytical model needs: bisection, Brent's method, Newton's
// method, stable quadratic solving, and fixed-point iteration.
//
// Go's ecosystem is thin on numerical code and this module is offline-only,
// so these are written from scratch against the standard references
// (Brent 1973; Press et al., Numerical Recipes §9).
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by the solvers.
var (
	// ErrNoBracket is returned when the supplied interval does not bracket
	// a sign change.
	ErrNoBracket = errors.New("numeric: interval does not bracket a root")
	// ErrNoConverge is returned when an iterative method fails to reach the
	// requested tolerance within its iteration budget.
	ErrNoConverge = errors.New("numeric: failed to converge")
)

// DefaultTol is the default absolute tolerance on the root location.
const DefaultTol = 1e-10

const maxIterations = 200

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (or one endpoint must already be a root). The returned
// value is within tol of a true root.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 2000; i++ {
		mid := a + (b-a)/2
		if b-a < 0 {
			mid = b + (a-b)/2
		}
		fm := f(mid)
		if fm == 0 || math.Abs(b-a) < tol {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return a + (b-a)/2, nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must have opposite
// signs. It converges superlinearly on smooth functions while retaining
// bisection's guarantees.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	// Ensure |f(b)| <= |f(a)|: b is the best estimate.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIterations; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// Newton finds a root of f starting from x0 using Newton's method with the
// derivative df. It falls back on returning ErrNoConverge if the iteration
// does not settle within its budget or the derivative vanishes.
func Newton(f, df func(float64) float64, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	x := x0
	for i := 0; i < maxIterations; i++ {
		fx := f(x)
		if math.Abs(fx) == 0 {
			return x, nil
		}
		dfx := df(x)
		if dfx == 0 || math.IsNaN(dfx) || math.IsInf(dfx, 0) {
			return x, fmt.Errorf("%w: zero or invalid derivative at x=%g", ErrNoConverge, x)
		}
		next := x - fx/dfx
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, ErrNoConverge
}

// Quadratic solves a*x^2 + b*x + c = 0, returning real roots in ascending
// order. It uses the numerically stable formulation that avoids catastrophic
// cancellation. A degenerate (a == 0) equation is solved linearly; if no
// real root exists, roots is empty.
func Quadratic(a, b, c float64) (roots []float64) {
	if a == 0 {
		if b == 0 {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	if disc == 0 {
		return []float64{-b / (2 * a)}
	}
	sq := math.Sqrt(disc)
	// q = -(b + sign(b)*sqrt(disc)) / 2 avoids subtracting nearly equal
	// magnitudes.
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	r1, r2 := q/a, c/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}

// FixedPoint iterates x <- g(x) from x0 until successive iterates differ by
// less than tol, with damping factor damp in (0, 1] applied as
// x <- (1-damp)*x + damp*g(x) to stabilize oscillating maps.
func FixedPoint(g func(float64) float64, x0, tol, damp float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if damp <= 0 || damp > 1 {
		damp = 1
	}
	x := x0
	for i := 0; i < 10000; i++ {
		next := (1-damp)*x + damp*g(x)
		if math.IsNaN(next) || math.IsInf(next, 0) {
			return x, fmt.Errorf("%w: iterate diverged at step %d", ErrNoConverge, i)
		}
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, ErrNoConverge
}

// BracketRoot expands an initial guess interval [a, b] geometrically until it
// brackets a sign change of f, up to maxExpand doublings. It is useful when
// only a rough location of the root is known. The expansion is unbounded;
// when f has a restricted valid domain (a singularity, a physical bound),
// use BracketRootIn instead so the search never evaluates f outside it.
func BracketRoot(f func(float64) float64, a, b float64, maxExpand int) (lo, hi float64, err error) {
	return BracketRootIn(f, a, b, math.Inf(-1), math.Inf(1), maxExpand)
}

// BracketRootIn is BracketRoot restricted to the domain [domLo, domHi]:
// the expanding endpoints are clamped to the domain, so f is never
// evaluated outside it (e.g. below 0 where a residual is singular). The
// initial guesses are clamped too. Once both endpoints are pinned at the
// domain bounds without a sign change, no further expansion can help and
// ErrNoBracket is returned early.
func BracketRootIn(f func(float64) float64, a, b, domLo, domHi float64, maxExpand int) (lo, hi float64, err error) {
	if domLo > domHi {
		domLo, domHi = domHi, domLo
	}
	a = Clamp(a, domLo, domHi)
	b = Clamp(b, domLo, domHi)
	if a == b {
		b = Clamp(a+1, domLo, domHi)
		if a == b { // degenerate domain: a single point cannot bracket
			if f(a) == 0 {
				return a, b, nil
			}
			return 0, 0, ErrNoBracket
		}
	}
	if a > b {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		if a == domLo && b == domHi {
			return 0, 0, ErrNoBracket
		}
		w := b - a
		if math.Abs(fa) < math.Abs(fb) && a > domLo || b == domHi {
			a = math.Max(a-w, domLo)
			fa = f(a)
		} else {
			b = math.Min(b+w, domHi)
			fb = f(b)
		}
	}
	if math.Signbit(fa) != math.Signbit(fb) {
		return a, b, nil
	}
	return 0, 0, ErrNoBracket
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Arange returns values lo, lo+step, ... up to and including hi (within a
// tiny relative tolerance of floating error). step must be positive and
// lo <= hi.
//
// Each value is computed as lo + i*step rather than by repeated addition:
// accumulating x += step drifts by an ulp per step, and across a long grid
// the drift can drop or duplicate the endpoint depending on which way it
// accumulated. The previous accumulate-and-compare form also used a cutoff
// of hi + step/2, which let the grid overshoot hi by up to half a step
// (Arange(1, 50, 2) produced a 51). The index form makes the grid size an
// exact function of (hi-lo)/step and never emits a value beyond hi.
func Arange(lo, hi, step float64) []float64 {
	if step <= 0 {
		panic("numeric: Arange needs positive step")
	}
	// The 1e-9 slack admits an endpoint that lands on hi up to float noise
	// without admitting the next grid point.
	n := int(math.Floor((hi-lo)/step + 1e-9))
	if n < 0 {
		return nil
	}
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lo+float64(i)*step)
	}
	return out
}
