package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimple(t *testing.T) {
	// x^2 - 2 = 0 on [0, 2] -> sqrt(2).
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 0); err != nil || r != 0 {
		t.Errorf("Bisect with root at a: r=%v err=%v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 0); err != nil || r != 0 {
		t.Errorf("Bisect with root at b: r=%v err=%v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 0)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentMatchesKnownRoots(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cbrt5", func(x float64) float64 { return x*x*x - 5 }, 0, 5, math.Cbrt(5)},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"expm1", func(x float64) float64 { return math.Exp(x) - 1 }, -1, 1, 0},
		{"rational", func(x float64) float64 { return 1/(x+1) - 0.25 }, 0, 10, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			root, err := Brent(tt.f, tt.a, tt.b, 1e-13)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(root-tt.want) > 1e-9 {
				t.Errorf("root = %v, want %v", root, tt.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -3, 3, 0)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentRandomQuadraticsProperty(t *testing.T) {
	// For random monotone-bracketed quadratics (x-r1)(x-r2) with r1 < r2,
	// Brent on [r1-1, (r1+r2)/2] finds r1.
	f := func(a, b int8) bool {
		r1 := float64(a%50) / 3
		r2 := r1 + 1 + float64(b%50+50)/17
		g := func(x float64) float64 { return (x - r1) * (x - r2) }
		root, err := Brent(g, r1-1, (r1+r2)/2, 1e-12)
		return err == nil && math.Abs(root-r1) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewton(t *testing.T) {
	root, err := Newton(
		func(x float64) float64 { return x*x*x - 8 },
		func(x float64) float64 { return 3 * x * x },
		3, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-2) > 1e-10 {
		t.Errorf("root = %v, want 2", root)
	}
}

func TestNewtonZeroDerivative(t *testing.T) {
	_, err := Newton(
		func(x float64) float64 { return x*x + 1 },
		func(x float64) float64 { return 0 },
		5, 0)
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("err = %v, want ErrNoConverge", err)
	}
}

func TestQuadratic(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c float64
		want    []float64
	}{
		{"two roots", 1, -3, 2, []float64{1, 2}},
		{"double root", 1, -2, 1, []float64{1}},
		{"no real roots", 1, 0, 1, nil},
		{"linear", 0, 2, -4, []float64{2}},
		{"degenerate", 0, 0, 1, nil},
		{"negative leading", -1, 0, 4, []float64{-2, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Quadratic(tt.a, tt.b, tt.c)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if math.Abs(got[i]-tt.want[i]) > 1e-10 {
					t.Errorf("root[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestQuadraticStability(t *testing.T) {
	// x^2 - 1e8 x + 1 = 0 has roots ~1e8 and ~1e-8; the naive formula
	// loses the small one to cancellation.
	roots := Quadratic(1, -1e8, 1)
	if len(roots) != 2 {
		t.Fatalf("expected 2 roots, got %v", roots)
	}
	if RelErr(roots[0], 1e-8) > 1e-6 {
		t.Errorf("small root = %v, want 1e-8", roots[0])
	}
}

func TestQuadraticVsBrentProperty(t *testing.T) {
	f := func(p, q int8) bool {
		r1 := float64(p) / 4
		r2 := r1 + float64(q%40+41)/10
		// expand (x-r1)(x-r2)
		b, c := -(r1 + r2), r1*r2
		roots := Quadratic(1, b, c)
		if len(roots) != 2 {
			return false
		}
		return math.Abs(roots[0]-r1) < 1e-8 && math.Abs(roots[1]-r2) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedPoint(t *testing.T) {
	// x = cos(x) has the Dottie number as its fixed point.
	x, err := FixedPoint(math.Cos, 1, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Errorf("fixed point = %v", x)
	}
}

func TestFixedPointDamped(t *testing.T) {
	// x = 4 - x oscillates undamped but converges to 2 with damping.
	x, err := FixedPoint(func(x float64) float64 { return 4 - x }, 0, 1e-12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-9 {
		t.Errorf("fixed point = %v, want 2", x)
	}
}

func TestFixedPointDiverges(t *testing.T) {
	_, err := FixedPoint(func(x float64) float64 { return x*x + 1e30 }, 1, 0, 1)
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("err = %v, want ErrNoConverge", err)
	}
}

func TestBracketRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := BracketRoot(f, 0, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= 100 && 100 <= hi) {
		t.Errorf("bracket [%v, %v] does not contain 100", lo, hi)
	}
	if _, _, err := BracketRoot(func(x float64) float64 { return 1 }, 0, 1, 10); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestArange(t *testing.T) {
	xs := Arange(1, 3, 0.5)
	if len(xs) != 5 || xs[0] != 1 || xs[4] != 3 {
		t.Errorf("Arange = %v", xs)
	}
}

func TestArangeFloatAccumulation(t *testing.T) {
	xs := Arange(0.5, 50, 0.5)
	if len(xs) != 100 {
		t.Errorf("Arange(0.5,50,0.5) has %d points, want 100", len(xs))
	}
}

// TestArangeEndpointNoOvershoot pins the regression for the accumulate-and-
// compare Arange: the old hi+step/2 cutoff admitted one grid point beyond
// hi (Arange(1,50,2) emitted a 51).
func TestArangeEndpointNoOvershoot(t *testing.T) {
	xs := Arange(1, 50, 2)
	if last := xs[len(xs)-1]; last > 50 {
		t.Errorf("Arange(1,50,2) overshoots hi: last = %v", last)
	}
	if len(xs) != 25 || xs[len(xs)-1] != 49 {
		t.Errorf("Arange(1,50,2) = %d points ending %v, want 25 ending 49", len(xs), xs[len(xs)-1])
	}
}

// TestArangeFigureGrids pins the exact grid sizes of the figure generators
// (Fig 1, Fig 3, Fig 4 in internal/exp/figures.go): an Arange drift that
// drops or duplicates an endpoint would silently change every downstream
// sweep's cache keys and chart shape.
func TestArangeFigureGrids(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		n            int
		last         float64
	}{
		{1, 50, 2, 25, 49},    // Fig 1
		{1, 30, 0.5, 59, 30},  // Fig 3
		{1, 30, 1, 30, 30},    // Fig 4
	}
	for _, c := range cases {
		xs := Arange(c.lo, c.hi, c.step)
		if len(xs) != c.n {
			t.Errorf("Arange(%v,%v,%v) has %d points, want %d", c.lo, c.hi, c.step, len(xs), c.n)
		}
		if got := xs[len(xs)-1]; got != c.last {
			t.Errorf("Arange(%v,%v,%v) ends at %v, want %v", c.lo, c.hi, c.step, got, c.last)
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				t.Fatalf("Arange(%v,%v,%v) not strictly increasing at %d: %v",
					c.lo, c.hi, c.step, i, xs[i-1:i+1])
			}
		}
	}
}

// TestArangeDriftProneGrids exercises steps that are not exactly
// representable: repeated accumulation drifts across hundreds of points and
// historically dropped or duplicated endpoints.
func TestArangeDriftProneGrids(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		n            int
	}{
		{0, 1, 0.1, 11},
		{0, 10, 0.1, 101},
		{0, 100, 0.1, 1001},
		{0.1, 0.9, 0.2, 5},
		{1, 250, 0.25, 997},
	}
	for _, c := range cases {
		xs := Arange(c.lo, c.hi, c.step)
		if len(xs) != c.n {
			t.Errorf("Arange(%v,%v,%v) has %d points, want %d", c.lo, c.hi, c.step, len(xs), c.n)
		}
	}
}

func TestBracketRootIn(t *testing.T) {
	// The root at 100 is reachable within the domain: same answer as the
	// unbounded form.
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := BracketRootIn(f, 0, 1, 0, 1000, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= 100 && 100 <= hi) {
		t.Errorf("bracket [%v, %v] does not contain 100", lo, hi)
	}

	// A residual singular below zero (as Eq 18's is at b_b = -S): the
	// bounded search must never evaluate f at a negative argument.
	evaluatedNegative := false
	g := func(x float64) float64 {
		if x < 0 {
			evaluatedNegative = true
		}
		return 1 / (x + 0.5) // no root: same sign everywhere in domain
	}
	if _, _, err := BracketRootIn(g, 0.25, 0.5, 0, 10, 60); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
	if evaluatedNegative {
		t.Error("BracketRootIn evaluated f outside [0, 10]")
	}

	// Root near the domain edge: expansion clamps at the bound and still
	// brackets.
	h := func(x float64) float64 { return x - 9.5 }
	lo, hi, err = BracketRootIn(h, 1, 2, 0, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= 9.5 && 9.5 <= hi) || hi > 10 {
		t.Errorf("bracket [%v, %v] wrong for root 9.5 in [0,10]", lo, hi)
	}

	// Pinned-at-both-bounds exits early with ErrNoBracket rather than
	// spinning through maxExpand.
	calls := 0
	k := func(x float64) float64 { calls++; return 1 }
	if _, _, err := BracketRootIn(k, 0, 10, 0, 10, 1 << 20); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
	if calls > 8 {
		t.Errorf("BracketRootIn made %d calls on an unbracketable pinned domain", calls)
	}
}
