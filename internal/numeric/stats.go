package numeric

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// RelErr returns |got-want| / |want|, or |got| when want is zero.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
