package core

import (
	"fmt"
	"time"

	"bbrnash/internal/numeric"
	"bbrnash/internal/units"
)

// PredictExact evaluates a variant of the model that does not make the
// paper's final simplification b_b + b_c ≈ B (the step from Eq 17 to
// Eq 18).
//
// Without that approximation, CUBIC's minimum occupancy must be related to
// BBR's share through Eq 10 using CUBIC's *average* occupancy. Modeling the
// CUBIC sawtooth's average as the midpoint of its minimum and maximum
// occupancy, Eq 10 becomes
//
//	b_b + (b_cmin + (B − b_b))/2 = 2·b_cmin + C·RTT
//	⇒ b_cmin = (b_b + B − 2·C·RTT) / 3
//
// which closes Eq 17 in the single unknown b_b, solved with Brent's method.
// The ablation benchmarks compare this variant against the published
// closed form; both track the simulator closely, which is why the paper's
// simpler form is justified.
func PredictExact(s Scenario, mode SyncMode) (Prediction, error) {
	if err := s.validate(); err != nil {
		return Prediction{}, err
	}
	if s.NumBBR == 0 || s.NumCubic == 0 {
		// Degenerate mixes match the published model exactly.
		return Predict(s, mode)
	}
	cBps := s.Capacity.BytesPerSecond()
	bdp := float64(s.BDP())
	b := float64(s.Buffer)
	p := Prediction{Mode: mode, Regime: regimeFor(s)}

	bcminOf := func(bb float64) float64 { return (bb + b - 2*bdp) / 3 }
	if bcminOf(b) <= 0 {
		// Too shallow for a residual CUBIC queue: boundary behaviour.
		return Predict(s, mode)
	}

	f := mode.backoffFraction(s.NumCubic)
	// Eq 17 with b_cmax = B − b_b and λ_cmax = (B−b_b)/B · C:
	//   b_cmin + b_cmin/(b_cmin+b_b)·C·RTT − f·(B−b_b)(1 + C·RTT/B) = 0
	g := func(bb float64) float64 {
		bcmin := bcminOf(bb)
		if bcmin <= 0 {
			return -f * (b - bb) * (1 + bdp/b)
		}
		return bcmin + bcmin/(bcmin+bb)*bdp - f*(b-bb)*(1+bdp/b)
	}
	// b_b lives in [0, B]; keep the bracketing expansion inside it (the
	// unbounded form could walk below zero, where the model is meaningless).
	lo, hi, err := numeric.BracketRootIn(g, 1, b, 0, b, 60)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: bracketing exact-model root: %w", err)
	}
	bb, err := numeric.Brent(g, lo, hi, 1e-6)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: solving exact model: %w", err)
	}
	bb = numeric.Clamp(bb, 0, b)
	bcmin := bcminOf(bb)

	lambdaCBps := cBps * (2*bcmin + bdp - bb) / (bdp + 2*bcmin)
	lambdaCBps = numeric.Clamp(lambdaCBps, 0, cBps)
	aggCubic := 8 * lambdaCBps

	p.BBRBuffer = fromFloat(bb)
	p.CubicMinBuffer = fromFloat(bcmin)
	p.AggCubic = fromRate(aggCubic)
	p.AggBBR = s.Capacity - p.AggCubic
	p.PerCubic = p.AggCubic / rateOf(s.NumCubic)
	p.PerBBR = p.AggBBR / rateOf(s.NumBBR)
	p.RTTPlus = s.RTT + durationOf(bcmin/cBps)
	return p, nil
}

// Small conversion helpers shared by the exact variant.
func fromFloat(v float64) units.Bytes { return units.Bytes(v) }
func fromRate(v float64) units.Rate   { return units.Rate(v) }
func rateOf(n int) units.Rate         { return units.Rate(n) }
func durationOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
