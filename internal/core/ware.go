package core

import (
	"errors"
	"time"

	"bbrnash/internal/numeric"
	"bbrnash/internal/units"
)

// WareScenario parameterizes the baseline model by Ware et al. ("Modeling
// BBR's Interactions with Loss-Based Congestion Control", IMC 2019) as
// restated in Equations (2)–(4) of the paper.
type WareScenario struct {
	// Capacity is the bottleneck link rate c.
	Capacity units.Rate
	// Buffer is the bottleneck buffer q in bytes.
	Buffer units.Bytes
	// RTT is the flows' base RTT l.
	RTT time.Duration
	// NumBBR is N, the number of competing BBR flows.
	NumBBR int
	// Duration is d, how long the flows compete (the paper's experiments
	// use two minutes).
	Duration time.Duration
	// MSS converts the 4-packet ProbeRTT term to bytes; defaults to
	// units.MSS.
	MSS units.Bytes
}

// WarePrediction is the baseline model's output.
type WarePrediction struct {
	// CubicFraction is p, the competing CUBIC flows' aggregate fraction of
	// the bottleneck bandwidth (Eq 3), clamped to [0, 1].
	CubicFraction float64
	// ProbeTime is the total time lost to ProbeRTT episodes over the
	// duration (Eq 4).
	ProbeTime time.Duration
	// AggBBR is the predicted aggregate BBR bandwidth (Eq 2 times c).
	AggBBR units.Rate
	// AggCubic is the remainder.
	AggCubic units.Rate
}

// PredictWare evaluates the Ware et al. model:
//
//	BBR_frac = (1 − p) · (d − Probe_time)/d                 (Eq 2)
//	p        = 1/2 − 1/(2X) − 4N·MSS/q                      (Eq 3)
//	Probe_time = (q/c + 0.2 + l) · (d/10)                   (Eq 4)
//
// with X the buffer size in BDP and q the buffer size in bytes. The model
// assumes the buffer is always full; the paper (§2.2) demonstrates that this
// assumption makes it inaccurate in shallow-to-moderate buffers.
func PredictWare(ws WareScenario) (WarePrediction, error) {
	if ws.Capacity <= 0 || ws.Buffer <= 0 || ws.RTT <= 0 {
		return WarePrediction{}, errors.New("core: WareScenario needs positive Capacity, Buffer, RTT")
	}
	if ws.NumBBR < 1 {
		return WarePrediction{}, errors.New("core: WareScenario needs at least one BBR flow")
	}
	if ws.Duration <= 0 {
		ws.Duration = 2 * time.Minute
	}
	if ws.MSS <= 0 {
		ws.MSS = units.MSS
	}

	x := units.InBDP(ws.Buffer, ws.Capacity, ws.RTT)
	q := float64(ws.Buffer)
	p := 0.5 - 1/(2*x) - 4*float64(ws.NumBBR)*float64(ws.MSS)/q
	p = numeric.Clamp(p, 0, 1)

	d := ws.Duration.Seconds()
	drain := q / ws.Capacity.BytesPerSecond()
	probe := (drain + 0.2 + ws.RTT.Seconds()) * (d / 10)
	if probe > d {
		probe = d
	}

	frac := (1 - p) * (d - probe) / d
	agg := units.Rate(frac * float64(ws.Capacity))
	return WarePrediction{
		CubicFraction: p,
		ProbeTime:     time.Duration(probe * float64(time.Second)),
		AggBBR:        agg,
		AggCubic:      ws.Capacity - agg,
	}, nil
}
