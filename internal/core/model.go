// Package core implements the paper's primary contribution: the analytical
// model of competing CUBIC and BBR flows (Mishra, Tiu & Leong, "Are we
// heading towards a BBR-dominant Internet?", IMC 2022, §2), the baseline
// model by Ware et al. (IMC 2019) it is compared against, and the Nash
// Equilibrium predictor built on top (§4).
//
// # The model in brief
//
// All flows share one bottleneck of capacity C with a drop-tail buffer of B
// bytes and the same base RTT. BBR competing with CUBIC is cwnd-bound at
// 2·BtlBw·RTT⁺ where RTT⁺ — BBR's over-estimate of the minimum RTT — equals
// the base RTT plus the drain time of CUBIC's *minimum* buffer occupancy
// b_cmin (what remains queued during BBR's ProbeRTT). Writing both flows'
// throughputs as inflight/RTT and eliminating, the paper derives (Eq 10)
//
//	b_b + b_c = 2·b_cmin + C·RTT,
//
// and, approximating b_b + b_c ≈ B, a single equation (Eq 18) for BBR's
// buffer share b_b:
//
//	S + S·(C·RTT)/(S + b_b) = f·(B − b_b)·(1 + C·RTT/B),  S = (B − C·RTT)/2
//
// where f is the CUBIC backoff fraction: 0.7 when all CUBIC flows are
// synchronized (Eq 21) and (Nc − 0.3)/Nc when perfectly de-synchronized
// (Eq 22). The equation reduces to a quadratic with exactly one root in
// (0, B); CUBIC's aggregate bandwidth follows from Eq 19 and BBR's from
// Eq 20. The two synchronization extremes bracket reality, so predictions
// are intervals.
package core

import (
	"errors"
	"fmt"
	"time"

	"bbrnash/internal/numeric"
	"bbrnash/internal/units"
)

// CubicBeta is CUBIC's multiplicative-decrease factor: after a loss the
// window shrinks to this fraction of its peak. It is the f of the
// synchronized bound.
const CubicBeta = 0.7

// UltraDeepBDP is the buffer depth (in BDP multiples) beyond which the
// paper observed its model to over-estimate BBR's throughput because BBR
// stops being cwnd-limited (§5, Figure 12).
const UltraDeepBDP = 100.0

// Scenario describes a modeled bottleneck shared by CUBIC and BBR flows
// with a common base RTT.
type Scenario struct {
	// Capacity is the bottleneck link rate C.
	Capacity units.Rate
	// Buffer is the bottleneck buffer size B in bytes.
	Buffer units.Bytes
	// RTT is the common base round-trip propagation delay.
	RTT time.Duration
	// NumCubic and NumBBR are the competing flow counts.
	NumCubic int
	NumBBR   int
}

// BDP returns the scenario's bandwidth-delay product in bytes.
func (s Scenario) BDP() units.Bytes { return units.BDP(s.Capacity, s.RTT) }

// BufferBDP returns the buffer size as a multiple of the BDP.
func (s Scenario) BufferBDP() float64 { return units.InBDP(s.Buffer, s.Capacity, s.RTT) }

// FairShare returns the per-flow fair share C/N.
func (s Scenario) FairShare() units.Rate {
	n := s.NumCubic + s.NumBBR
	if n == 0 {
		return 0
	}
	return s.Capacity / units.Rate(n)
}

func (s Scenario) validate() error {
	if s.Capacity <= 0 {
		return errors.New("core: Capacity must be positive")
	}
	if s.Buffer <= 0 {
		return errors.New("core: Buffer must be positive")
	}
	if s.RTT <= 0 {
		return errors.New("core: RTT must be positive")
	}
	if s.NumCubic < 0 || s.NumBBR < 0 {
		return errors.New("core: flow counts must be non-negative")
	}
	return nil
}

// SyncMode selects which synchronization extreme of the CUBIC flows the
// model assumes (§2.4).
type SyncMode int

const (
	// Synchronized: all CUBIC flows back off together; aggregate b_cmin is
	// 0.7·Ŵmax (Eq 21). This is the bound the paper found empirical
	// results usually closer to.
	Synchronized SyncMode = iota
	// Desynchronized: only one of Nc CUBIC flows backs off at a time;
	// aggregate b_cmin is ((Nc−0.3)/Nc)·Ŵmax (Eq 22).
	Desynchronized
)

func (m SyncMode) String() string {
	switch m {
	case Synchronized:
		return "synchronized"
	case Desynchronized:
		return "desynchronized"
	default:
		return "unknown"
	}
}

// backoffFraction returns f for the mode: the fraction of the aggregate
// CUBIC window that survives a backoff event.
func (m SyncMode) backoffFraction(numCubic int) float64 {
	switch m {
	case Desynchronized:
		nc := float64(numCubic)
		if nc < 1 {
			nc = 1
		}
		return (nc - (1 - CubicBeta)) / nc
	default:
		return CubicBeta
	}
}

// Regime classifies where a scenario falls relative to the model's validity
// domain (§2.3 assumptions, §5 discussion).
type Regime int

const (
	// RegimeValid: buffer between 1 and ~100 BDP; BBR is cwnd-limited and
	// the model applies.
	RegimeValid Regime = iota
	// RegimeShallow: buffer below 1 BDP; the model's "link always full,
	// BBR cwnd-bound" assumptions break. Predictions are clamped to the
	// 1-BDP boundary behaviour (BBR takes the link).
	RegimeShallow
	// RegimeUltraDeep: buffer beyond ~100 BDP; BBR is no longer reliably
	// cwnd-limited and the model over-estimates BBR's throughput (Fig 12).
	RegimeUltraDeep
)

func (r Regime) String() string {
	switch r {
	case RegimeValid:
		return "valid"
	case RegimeShallow:
		return "shallow(<1BDP)"
	case RegimeUltraDeep:
		return "ultra-deep(>100BDP)"
	default:
		return "unknown"
	}
}

// Prediction is the model's output for one scenario and sync mode.
type Prediction struct {
	// Mode is the synchronization assumption used.
	Mode SyncMode
	// Regime classifies model validity for the scenario.
	Regime Regime
	// BBRBuffer is b_b, the aggregate BBR buffer occupancy, in bytes.
	BBRBuffer units.Bytes
	// CubicMinBuffer is S = (B − C·RTT)/2, the b̂_cmin the closed equations
	// use for the aggregate CUBIC flow.
	CubicMinBuffer units.Bytes
	// AggCubic and AggBBR are the aggregate bandwidths λ̄c, λ̄b.
	AggCubic units.Rate
	AggBBR   units.Rate
	// PerCubic and PerBBR are per-flow averages (zero when the scenario
	// has no flows of that class).
	PerCubic units.Rate
	PerBBR   units.Rate
	// RTTPlus is BBR's over-estimated minimum RTT (Eq 9).
	RTTPlus time.Duration
}

// Predict evaluates the model for one synchronization mode.
//
// Degenerate mixes short-circuit: with no BBR flows CUBIC takes the link
// and vice versa. Scenarios below 1 BDP report RegimeShallow with the
// boundary solution; beyond 100 BDP the prediction is computed as usual but
// flagged RegimeUltraDeep.
func Predict(s Scenario, mode SyncMode) (Prediction, error) {
	if err := s.validate(); err != nil {
		return Prediction{}, err
	}
	if s.NumCubic+s.NumBBR == 0 {
		return Prediction{}, errors.New("core: scenario has no flows")
	}

	p := Prediction{Mode: mode, Regime: regimeFor(s)}

	// Degenerate single-class mixes: the class takes the whole link.
	if s.NumBBR == 0 {
		p.AggCubic = s.Capacity
		p.PerCubic = s.Capacity / units.Rate(s.NumCubic)
		p.RTTPlus = s.RTT
		return p, nil
	}
	if s.NumCubic == 0 {
		p.AggBBR = s.Capacity
		p.PerBBR = s.Capacity / units.Rate(s.NumBBR)
		p.RTTPlus = s.RTT
		return p, nil
	}

	cBps := s.Capacity.BytesPerSecond()
	bdp := float64(s.BDP())
	b := float64(s.Buffer)

	// S = b̂_cmin from Eq 10 with b_b + b_c ≈ B.
	sVal := (b - bdp) / 2
	if sVal <= 0 {
		// At or below 1 BDP the boundary solution has BBR occupying the
		// buffer and CUBIC starved (Figure 3's leftmost points).
		p.BBRBuffer = s.Buffer
		p.CubicMinBuffer = 0
		p.AggBBR = s.Capacity
		p.PerBBR = s.Capacity / units.Rate(s.NumBBR)
		p.RTTPlus = s.RTT
		return p, nil
	}

	f := mode.backoffFraction(s.NumCubic)
	bb, err := solveBBRBuffer(b, bdp, sVal, f)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: solving Eq 18 for b_b: %w", err)
	}

	// Eq 19: λ̄c·(RTT + 2S/C) = 2S + C·RTT − b_b, in byte/s then to bits.
	lambdaCBps := cBps * (2*sVal + bdp - bb) / (bdp + 2*sVal)
	lambdaCBps = numeric.Clamp(lambdaCBps, 0, cBps)
	aggCubic := units.Rate(8 * lambdaCBps)
	aggBBR := s.Capacity - aggCubic // Eq 20

	p.BBRBuffer = units.Bytes(bb)
	p.CubicMinBuffer = units.Bytes(sVal)
	p.AggCubic = aggCubic
	p.AggBBR = aggBBR
	p.PerCubic = aggCubic / units.Rate(s.NumCubic)
	p.PerBBR = aggBBR / units.Rate(s.NumBBR)
	p.RTTPlus = s.RTT + time.Duration(sVal/cBps*float64(time.Second))
	return p, nil
}

// Interval is the model's bracketed prediction: both synchronization
// extremes (§2.4). Lo is the synchronized bound (less BBR bandwidth), Hi
// the de-synchronized bound (more BBR bandwidth).
type Interval struct {
	Sync   Prediction
	Desync Prediction
}

// PredictInterval evaluates both bounds.
func PredictInterval(s Scenario) (Interval, error) {
	sync, err := Predict(s, Synchronized)
	if err != nil {
		return Interval{}, err
	}
	desync, err := Predict(s, Desynchronized)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Sync: sync, Desync: desync}, nil
}

// ContainsBBRPerFlow reports whether rate falls inside the predicted
// per-flow BBR interval, widened by slack (a fraction of each endpoint) on
// both sides.
//
// The endpoints are ordered before the slack is applied: the sync bound is
// usually the lower one, but the interval can invert (Sync.PerBBR >
// Desync.PerBBR, e.g. at Nc = 1 where both modes coincide up to float
// error, or in boundary regimes). Widening before ordering would shrink an
// inverted interval on one side instead of widening it on both.
func (iv Interval) ContainsBBRPerFlow(rate units.Rate, slack float64) bool {
	lo, hi := float64(iv.Sync.PerBBR), float64(iv.Desync.PerBBR)
	if lo > hi {
		lo, hi = hi, lo
	}
	lo *= 1 - slack
	hi *= 1 + slack
	r := float64(rate)
	return r >= lo && r <= hi
}

// Regime classifies the scenario's model validity by buffer depth, the
// same classification Predict stamps on its output — exported so harness
// reports (e.g. backend cross-validation) can label points without running
// the model.
func (s Scenario) Regime() Regime { return regimeFor(s) }

func regimeFor(s Scenario) Regime {
	x := s.BufferBDP()
	switch {
	case x < 1:
		return RegimeShallow
	case x > UltraDeepBDP:
		return RegimeUltraDeep
	default:
		return RegimeValid
	}
}

// solveBBRBuffer solves the generalized Eq 18 for b_b:
//
//	S + S·bdp/(S + b_b) = f·(B − b_b)·(1 + bdp/B)
//
// Multiplying by (S + b_b) gives the quadratic
//
//	K·b_b² + (K·S − K·B + S)·b_b + S² + S·bdp − K·B·S = 0,  K = f·(1 + bdp/B).
//
// For B > bdp (S > 0) and f > 1/2 the constant term is negative and the
// leading coefficient positive, so exactly one root lies in (0, B).
func solveBBRBuffer(b, bdp, s, f float64) (float64, error) {
	k := f * (1 + bdp/b)
	qa := k
	qb := k*s - k*b + s
	qc := s*s + s*bdp - k*b*s
	for _, r := range numeric.Quadratic(qa, qb, qc) {
		if r > 0 && r < b {
			return r, nil
		}
	}
	// Root finding should never fail in the valid domain; fall back to
	// Brent for robustness at extreme parameters. The residual is singular
	// at b_b = -S and meaningless beyond the buffer, so the bracketing
	// expansion is confined to [0, B].
	g := func(bb float64) float64 {
		return s + s*bdp/(s+bb) - k*(b-bb)
	}
	lo, hi, err := numeric.BracketRootIn(g, b/4, 3*b/4, 0, b, 60)
	if err != nil {
		return 0, fmt.Errorf("bracketing Eq 18 residual in [0, %g]: %w", b, err)
	}
	root, err := numeric.Brent(g, lo, hi, 1e-6)
	if err != nil {
		return 0, err
	}
	return root, nil
}

// SolveBBRBufferForTest exposes the Eq 18 solver for cross-validation in
// tests.
func SolveBBRBufferForTest(b, bdp, s, f float64) (float64, error) {
	return solveBBRBuffer(b, bdp, s, f)
}
