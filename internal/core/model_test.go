package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bbrnash/internal/numeric"
	"bbrnash/internal/units"
)

func baseScenario() Scenario {
	return Scenario{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		NumCubic: 1,
		NumBBR:   1,
	}
}

// Hand-computed reference point: C = 50 Mbps, RTT = 40 ms (BDP = 250 kB),
// B = 3 BDP = 750 kB, one CUBIC vs one BBR, synchronized.
// S = 250 kB, K = 0.7·(4/3) = 14/15, and the quadratic root is exactly
// b_b = 375 kB, giving a 25/25 Mbps split.
func TestPredictHandComputedPoint(t *testing.T) {
	p, err := Predict(baseScenario(), Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p.BBRBuffer)-375000) > 1 {
		t.Errorf("b_b = %v, want 375000", float64(p.BBRBuffer))
	}
	if math.Abs(p.AggBBR.Mbit()-25) > 0.01 {
		t.Errorf("AggBBR = %v Mbps, want 25", p.AggBBR.Mbit())
	}
	if math.Abs(p.AggCubic.Mbit()-25) > 0.01 {
		t.Errorf("AggCubic = %v Mbps, want 25", p.AggCubic.Mbit())
	}
	if p.Regime != RegimeValid {
		t.Errorf("Regime = %v, want valid", p.Regime)
	}
	// RTT⁺ = RTT + S/C = 40ms + 250000/6.25e6 s = 80 ms.
	if p.RTTPlus != 80*time.Millisecond {
		t.Errorf("RTTPlus = %v, want 80ms", p.RTTPlus)
	}
}

func TestPredictValidation(t *testing.T) {
	bad := []Scenario{
		{Capacity: 0, Buffer: 1, RTT: time.Millisecond, NumCubic: 1, NumBBR: 1},
		{Capacity: 1, Buffer: 0, RTT: time.Millisecond, NumCubic: 1, NumBBR: 1},
		{Capacity: 1, Buffer: 1, RTT: 0, NumCubic: 1, NumBBR: 1},
		{Capacity: 1, Buffer: 1, RTT: time.Millisecond, NumCubic: -1, NumBBR: 1},
		{Capacity: 1, Buffer: 1, RTT: time.Millisecond},
	}
	for i, s := range bad {
		if _, err := Predict(s, Synchronized); err == nil {
			t.Errorf("scenario %d accepted", i)
		}
	}
}

func TestPredictDegenerateMixes(t *testing.T) {
	s := baseScenario()
	s.NumBBR = 0
	s.NumCubic = 4
	p, err := Predict(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggCubic != s.Capacity || p.AggBBR != 0 {
		t.Errorf("all-CUBIC: agg = %v/%v", p.AggCubic, p.AggBBR)
	}
	if p.PerCubic != s.Capacity/4 {
		t.Errorf("PerCubic = %v", p.PerCubic)
	}

	s.NumBBR = 5
	s.NumCubic = 0
	p, err = Predict(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggBBR != s.Capacity || p.PerBBR != s.Capacity/5 {
		t.Errorf("all-BBR: agg = %v per = %v", p.AggBBR, p.PerBBR)
	}
}

func TestPredictOneBDPBoundary(t *testing.T) {
	s := baseScenario()
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 1)
	p, err := Predict(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggBBR != s.Capacity {
		t.Errorf("at 1 BDP, AggBBR = %v, want full capacity", p.AggBBR)
	}
	if p.Regime != RegimeValid {
		t.Errorf("Regime = %v", p.Regime)
	}
}

func TestRegimes(t *testing.T) {
	s := baseScenario()
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 0.5)
	if p, _ := Predict(s, Synchronized); p.Regime != RegimeShallow {
		t.Errorf("0.5 BDP regime = %v", p.Regime)
	}
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 150)
	if p, _ := Predict(s, Synchronized); p.Regime != RegimeUltraDeep {
		t.Errorf("150 BDP regime = %v", p.Regime)
	}
}

func TestSharesSumToCapacityProperty(t *testing.T) {
	f := func(bufQ uint8, nc, nb uint8) bool {
		s := baseScenario()
		s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 1+float64(bufQ%200)/4) // 1..50.75 BDP
		s.NumCubic = int(nc%10) + 1
		s.NumBBR = int(nb%10) + 1
		for _, mode := range []SyncMode{Synchronized, Desynchronized} {
			p, err := Predict(s, mode)
			if err != nil {
				return false
			}
			if math.Abs(float64(p.AggBBR+p.AggCubic-s.Capacity)) > 1 {
				return false
			}
			if p.AggBBR < 0 || p.AggCubic < 0 {
				return false
			}
			if float64(p.BBRBuffer) < 0 || float64(p.BBRBuffer) > float64(s.Buffer) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBRShareDecreasesWithBuffer(t *testing.T) {
	s := baseScenario()
	prev := math.Inf(1)
	for _, bdp := range []float64{1.5, 2, 3, 5, 10, 20, 30, 50} {
		s.Buffer = units.BufferBytes(s.Capacity, s.RTT, bdp)
		p, err := Predict(s, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		if float64(p.AggBBR) > prev+1 {
			t.Errorf("AggBBR increased at %v BDP: %v > %v", bdp, float64(p.AggBBR), prev)
		}
		prev = float64(p.AggBBR)
	}
}

// The de-synchronized bound always gives BBR at least as much bandwidth as
// the synchronized bound (it is the upper edge of the predicted region).
func TestSyncBoundBelowDesyncBound(t *testing.T) {
	f := func(bufQ uint8, nc uint8) bool {
		s := baseScenario()
		s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 1.2+float64(bufQ%100)/3)
		s.NumCubic = int(nc%15) + 2 // ≥2 so the bounds differ
		s.NumBBR = 3
		iv, err := PredictInterval(s)
		if err != nil {
			return false
		}
		return float64(iv.Desync.AggBBR) >= float64(iv.Sync.AggBBR)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// With one CUBIC flow the two bounds coincide: (1-0.3)/1 = 0.7.
func TestBoundsCoincideForSingleCubic(t *testing.T) {
	iv, err := PredictInterval(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(iv.Sync.AggBBR-iv.Desync.AggBBR)) > 1 {
		t.Errorf("bounds differ for Nc=1: %v vs %v", iv.Sync.AggBBR, iv.Desync.AggBBR)
	}
}

// Per-flow BBR bandwidth must decrease as the proportion of BBR flows grows
// (the diminishing-returns result of §3.3, Figure 5).
func TestDiminishingReturns(t *testing.T) {
	s := baseScenario()
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 10)
	const n = 10
	prev := math.Inf(1)
	for nb := 1; nb < n; nb++ {
		s.NumBBR = nb
		s.NumCubic = n - nb
		p, err := Predict(s, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		if float64(p.PerBBR) >= prev {
			t.Errorf("per-flow BBR bandwidth did not decrease at Nb=%d: %v >= %v", nb, float64(p.PerBBR), prev)
		}
		prev = float64(p.PerBBR)
	}
}

// The quadratic solution of Eq 18 must agree with an independent Brent
// solve of the original rational equation.
func TestQuadraticAgreesWithBrent(t *testing.T) {
	f := func(bufQ, fQ uint8) bool {
		bdp := 250000.0
		b := bdp * (1.2 + float64(bufQ%200)/4)
		sVal := (b - bdp) / 2
		frac := 0.7 + 0.3*float64(fQ%100)/100*0.99 // f in [0.7, ~1)
		bb, err := SolveBBRBufferForTest(b, bdp, sVal, frac)
		if err != nil {
			return false
		}
		k := frac * (1 + bdp/b)
		g := func(x float64) float64 { return sVal + sVal*bdp/(sVal+x) - k*(b-x) }
		ref, err := numeric.Brent(g, 0, b, 1e-9)
		if err != nil {
			return false
		}
		return math.Abs(bb-ref) < 1e-3*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalContains(t *testing.T) {
	iv, err := PredictInterval(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	mid := (iv.Sync.PerBBR + iv.Desync.PerBBR) / 2
	if !iv.ContainsBBRPerFlow(mid, 0.01) {
		t.Error("midpoint not contained")
	}
	if iv.ContainsBBRPerFlow(iv.Desync.PerBBR*2, 0.01) {
		t.Error("far point contained")
	}
}

func TestScenarioHelpers(t *testing.T) {
	s := baseScenario()
	if got := s.BDP(); got != 250000 {
		t.Errorf("BDP = %v", got)
	}
	if got := s.BufferBDP(); math.Abs(got-3) > 1e-9 {
		t.Errorf("BufferBDP = %v", got)
	}
	if got := s.FairShare(); got != 25*units.Mbps {
		t.Errorf("FairShare = %v", got)
	}
	if (Scenario{}).FairShare() != 0 {
		t.Error("FairShare of empty scenario should be 0")
	}
}

func TestStringers(t *testing.T) {
	if Synchronized.String() != "synchronized" || Desynchronized.String() != "desynchronized" || SyncMode(9).String() != "unknown" {
		t.Error("SyncMode.String wrong")
	}
	if RegimeValid.String() != "valid" || RegimeShallow.String() != "shallow(<1BDP)" ||
		RegimeUltraDeep.String() != "ultra-deep(>100BDP)" || Regime(9).String() != "unknown" {
		t.Error("Regime.String wrong")
	}
}

// TestContainsBBRPerFlowInvertedInterval pins the slack-ordering regression:
// slack used to be applied to the endpoints before they were ordered, so an
// inverted interval (Sync.PerBBR > Desync.PerBBR) was narrowed on one side
// — lo became max*(1-slack) only after the swap, while hi had been computed
// from the smaller endpoint — instead of widened on both.
func TestContainsBBRPerFlowInvertedInterval(t *testing.T) {
	iv := Interval{
		Sync:   Prediction{PerBBR: 20 * units.Mbps}, // inverted: sync above desync
		Desync: Prediction{PerBBR: 10 * units.Mbps},
	}
	const slack = 0.1
	// Just below the low endpoint and just above the high one: both are
	// within 10% slack of the ordered interval [10, 20] and must be inside.
	for _, r := range []units.Rate{
		9.5 * units.Mbps,  // 10*(1-slack)=9 <= 9.5
		10 * units.Mbps,   // the (ordered) low endpoint itself
		20 * units.Mbps,   // the (ordered) high endpoint itself
		21.5 * units.Mbps, // 20*(1+slack)=22 >= 21.5
	} {
		if !iv.ContainsBBRPerFlow(r, slack) {
			t.Errorf("inverted interval rejects %v with slack %v", r, slack)
		}
	}
	// Outside the widened bounds stays outside.
	for _, r := range []units.Rate{8 * units.Mbps, 23 * units.Mbps} {
		if iv.ContainsBBRPerFlow(r, slack) {
			t.Errorf("inverted interval accepts %v with slack %v", r, slack)
		}
	}

	// A properly ordered interval behaves identically to before.
	ok := Interval{
		Sync:   Prediction{PerBBR: 10 * units.Mbps},
		Desync: Prediction{PerBBR: 20 * units.Mbps},
	}
	if !ok.ContainsBBRPerFlow(9.5*units.Mbps, slack) || ok.ContainsBBRPerFlow(8*units.Mbps, slack) {
		t.Error("ordered interval misclassifies with slack")
	}
}
