package core

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/units"
)

func baseNash() NashScenario {
	return NashScenario{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		N:        50,
	}
}

// Under the synchronized bound the aggregate BBR bandwidth is independent
// of the flow counts (f is fixed at 0.7), so the NE sits exactly at
// N_b* = N·λ̄b/C. At 3 BDP the hand-computed split is 25/25 Mbps, so the NE
// is at N_b = 25 of 50 flows.
func TestPredictNashHandComputed(t *testing.T) {
	pt, err := PredictNash(baseNash(), Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.BBRFlows-25) > 0.5 {
		t.Errorf("BBRFlows = %v, want 25", pt.BBRFlows)
	}
	if math.Abs(pt.CubicFlows-25) > 0.5 {
		t.Errorf("CubicFlows = %v, want 25", pt.CubicFlows)
	}
	if pt.AllBBR {
		t.Error("AllBBR should be false at 3 BDP")
	}
}

// The de-synchronized bound gives BBR more bandwidth, so its NE has more
// BBR flows (fewer CUBIC flows).
func TestDesyncNEHasFewerCubic(t *testing.T) {
	region, err := PredictNashRegion(baseNash())
	if err != nil {
		t.Fatal(err)
	}
	if region.Desync.CubicFlows > region.Sync.CubicFlows {
		t.Errorf("desync NE (%v cubic) above sync NE (%v cubic)",
			region.Desync.CubicFlows, region.Sync.CubicFlows)
	}
	if region.CubicLow() > region.CubicHigh() {
		t.Error("region bounds inverted")
	}
}

// Deeper buffers favour CUBIC: the number of CUBIC flows at the NE must
// not decrease with buffer size (the trend of Figure 9).
func TestMoreCubicAtNEInDeeperBuffers(t *testing.T) {
	ns := baseNash()
	prev := -1.0
	for _, bdp := range []float64{1.5, 3, 5, 10, 20, 40} {
		ns.Buffer = units.BufferBytes(ns.Capacity, ns.RTT, bdp)
		pt, err := PredictNash(ns, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		if pt.CubicFlows < prev-0.5 {
			t.Errorf("CUBIC flows at NE decreased at %v BDP: %v < %v", bdp, pt.CubicFlows, prev)
		}
		prev = pt.CubicFlows
	}
}

// At 1 BDP the model has BBR taking the whole link for any mix, so the only
// equilibrium is all-BBR.
func TestAllBBRAtOneBDP(t *testing.T) {
	ns := baseNash()
	ns.Buffer = units.BufferBytes(ns.Capacity, ns.RTT, 1)
	pt, err := PredictNash(ns, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.AllBBR {
		t.Errorf("expected AllBBR at 1 BDP, got N_b = %v", pt.BBRFlows)
	}
	if pt.CubicFlows != 0 {
		t.Errorf("CubicFlows = %v, want 0", pt.CubicFlows)
	}
}

// In BDP-normalized coordinates the NE region must be identical across link
// speeds and RTTs (the invariance the paper highlights in §4.4).
func TestNERegionInvariantInBDPUnits(t *testing.T) {
	configs := []struct {
		c   units.Rate
		rtt time.Duration
	}{
		{50 * units.Mbps, 20 * time.Millisecond},
		{50 * units.Mbps, 80 * time.Millisecond},
		{100 * units.Mbps, 40 * time.Millisecond},
	}
	for _, bdp := range []float64{2, 5, 15, 40} {
		var ref float64
		for i, cfg := range configs {
			ns := NashScenario{
				Capacity: cfg.c,
				Buffer:   units.BufferBytes(cfg.c, cfg.rtt, bdp),
				RTT:      cfg.rtt,
				N:        50,
			}
			pt, err := PredictNash(ns, Synchronized)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = pt.CubicFlows
				continue
			}
			if math.Abs(pt.CubicFlows-ref) > 0.01 {
				t.Errorf("NE at %v BDP differs across configs: %v vs %v (%v, %v)",
					bdp, pt.CubicFlows, ref, cfg.c, cfg.rtt)
			}
		}
	}
}

func TestNashValidation(t *testing.T) {
	ns := baseNash()
	ns.N = 1
	if _, err := PredictNash(ns, Synchronized); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestNashRegionContains(t *testing.T) {
	region, err := PredictNashRegion(baseNash())
	if err != nil {
		t.Fatal(err)
	}
	mid := int((region.CubicLow() + region.CubicHigh()) / 2)
	if !region.Contains(mid, 0.5) {
		t.Errorf("region [%v, %v] does not contain midpoint %d",
			region.CubicLow(), region.CubicHigh(), mid)
	}
	if region.Contains(int(region.CubicHigh())+10, 0.5) {
		t.Error("region contains far point")
	}
}
