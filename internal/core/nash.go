package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bbrnash/internal/units"
)

// NashScenario describes a bottleneck whose N same-RTT flows each choose
// CUBIC or BBR to maximize their own throughput (§4.1).
type NashScenario struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTT      time.Duration
	// N is the total number of flows.
	N int
}

// NashPoint is a predicted Nash Equilibrium distribution under one
// synchronization assumption.
type NashPoint struct {
	Mode SyncMode
	// BBRFlows is the (real-valued) N_b at which the aggregate BBR
	// bandwidth crosses the fair-share line (Eq 25), clamped to [0, N].
	BBRFlows float64
	// CubicFlows is N − BBRFlows (the quantity Figure 9 plots).
	CubicFlows float64
	// AllBBR reports that BBR stays above fair share for every mixed
	// distribution, so the only equilibrium is everyone running BBR
	// (Case 1 of §4.1).
	AllBBR bool
}

// NashRegion is the model's predicted NE interval: the band between the two
// synchronization bounds (the shaded "Nash Region" of Figure 9).
type NashRegion struct {
	Sync   NashPoint
	Desync NashPoint
}

// CubicLow and CubicHigh return the region's bounds on the number of CUBIC
// flows at the NE, in ascending order.
func (r NashRegion) CubicLow() float64 {
	return math.Min(r.Sync.CubicFlows, r.Desync.CubicFlows)
}

// CubicHigh returns the upper bound on CUBIC flows at the NE.
func (r NashRegion) CubicHigh() float64 {
	return math.Max(r.Sync.CubicFlows, r.Desync.CubicFlows)
}

// Contains reports whether an observed NE with numCubic CUBIC flows falls
// inside the region, widened by slack flows on both sides.
func (r NashRegion) Contains(numCubic int, slack float64) bool {
	n := float64(numCubic)
	return n >= r.CubicLow()-slack && n <= r.CubicHigh()+slack
}

// PredictNash locates the model's Nash Equilibrium for one synchronization
// mode by solving Eq 25: the N_b at which per-flow BBR bandwidth λ̄b/N_b
// equals the fair share C/N.
//
// Per-flow BBR bandwidth decreases in N_b (§3.3) while the fair share is
// constant, so the crossing is found by scanning the integer distributions
// and interpolating; distributions above the crossing favour CUBIC, below
// favour BBR.
func PredictNash(ns NashScenario, mode SyncMode) (NashPoint, error) {
	if ns.N < 2 {
		return NashPoint{}, errors.New("core: NashScenario needs at least two flows")
	}
	fair := float64(ns.Capacity) / float64(ns.N)

	// advantage(nb) = λ̄b/nb − C/N, positive when BBR flows beat fair share.
	advantage := func(nb int) (float64, error) {
		p, err := Predict(Scenario{
			Capacity: ns.Capacity,
			Buffer:   ns.Buffer,
			RTT:      ns.RTT,
			NumCubic: ns.N - nb,
			NumBBR:   nb,
		}, mode)
		if err != nil {
			return 0, err
		}
		return float64(p.PerBBR) - fair, nil
	}

	prev, err := advantage(1)
	if err != nil {
		return NashPoint{}, err
	}
	if prev <= 0 {
		// Even a lone BBR flow does not beat fair share: the equilibrium
		// sits at (or below) one BBR flow.
		return NashPoint{Mode: mode, BBRFlows: 1, CubicFlows: float64(ns.N - 1)}, nil
	}
	// Scan only the mixed distributions: at nb = N the per-flow bandwidth
	// equals fair share by definition, which is the all-BBR equilibrium,
	// not a crossing.
	for nb := 2; nb < ns.N; nb++ {
		cur, err := advantage(nb)
		if err != nil {
			return NashPoint{}, err
		}
		if cur <= 0 {
			// Crossing between nb−1 and nb; linear interpolation.
			frac := prev / (prev - cur)
			x := float64(nb-1) + frac
			return NashPoint{Mode: mode, BBRFlows: x, CubicFlows: float64(ns.N) - x}, nil
		}
		prev = cur
	}
	// BBR stays above fair share everywhere: all-BBR is the equilibrium
	// (at N_b = N the per-flow bandwidth equals fair share by definition).
	return NashPoint{Mode: mode, BBRFlows: float64(ns.N), CubicFlows: 0, AllBBR: true}, nil
}

// PredictNashRegion evaluates both synchronization bounds.
func PredictNashRegion(ns NashScenario) (NashRegion, error) {
	sync, err := PredictNash(ns, Synchronized)
	if err != nil {
		return NashRegion{}, fmt.Errorf("core: sync bound: %w", err)
	}
	desync, err := PredictNash(ns, Desynchronized)
	if err != nil {
		return NashRegion{}, fmt.Errorf("core: desync bound: %w", err)
	}
	return NashRegion{Sync: sync, Desync: desync}, nil
}
