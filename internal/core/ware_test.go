package core

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/units"
)

func baseWare() WareScenario {
	return WareScenario{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 10),
		RTT:      40 * time.Millisecond,
		NumBBR:   1,
		Duration: 2 * time.Minute,
	}
}

// Hand-computed: X = 10, q = 2.5 MB, N = 1, MSS = 1460.
// p = 0.5 − 0.05 − 5840/2.5e6 = 0.447664
// Probe = (0.4 + 0.2 + 0.04)·12 = 7.68 s
// frac = 0.552336 · 112.32/120 = 0.5169865
func TestWareHandComputed(t *testing.T) {
	p, err := PredictWare(baseWare())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CubicFraction-0.447664) > 1e-6 {
		t.Errorf("p = %v, want 0.447664", p.CubicFraction)
	}
	if math.Abs(p.ProbeTime.Seconds()-7.68) > 1e-9 {
		t.Errorf("ProbeTime = %v, want 7.68s", p.ProbeTime)
	}
	want := 0.5169865 * 50.0
	if math.Abs(p.AggBBR.Mbit()-want) > 0.001 {
		t.Errorf("AggBBR = %v Mbps, want %v", p.AggBBR.Mbit(), want)
	}
	if math.Abs(float64(p.AggBBR+p.AggCubic-50*units.Mbps)) > 1 {
		t.Error("shares do not sum to capacity")
	}
}

func TestWareClampsNegativeP(t *testing.T) {
	ws := baseWare()
	ws.Buffer = units.BufferBytes(ws.Capacity, ws.RTT, 1) // X=1 makes p negative
	p, err := PredictWare(ws)
	if err != nil {
		t.Fatal(err)
	}
	if p.CubicFraction != 0 {
		t.Errorf("p = %v, want clamped to 0", p.CubicFraction)
	}
}

func TestWareDefaults(t *testing.T) {
	ws := baseWare()
	ws.Duration = 0
	ws.MSS = 0
	p, err := PredictWare(ws)
	if err != nil {
		t.Fatal(err)
	}
	if p.ProbeTime <= 0 {
		t.Error("defaults not applied")
	}
}

func TestWareValidation(t *testing.T) {
	bad := []WareScenario{
		{Capacity: 0, Buffer: 1, RTT: time.Millisecond, NumBBR: 1},
		{Capacity: 1, Buffer: 0, RTT: time.Millisecond, NumBBR: 1},
		{Capacity: 1, Buffer: 1, RTT: 0, NumBBR: 1},
		{Capacity: 1, Buffer: 1, RTT: time.Millisecond, NumBBR: 0},
	}
	for i, ws := range bad {
		if _, err := PredictWare(ws); err == nil {
			t.Errorf("scenario %d accepted", i)
		}
	}
}

// Ware's model predicts a near-constant BBR share (around half capacity),
// while our model tracks the declining share — the contrast of Figure 1.
func TestWareNearlyFlatOursDeclines(t *testing.T) {
	ws := baseWare()
	s := baseScenario()
	var wareSpread, oursSpread []float64
	for _, bdp := range []float64{2, 10, 30} {
		ws.Buffer = units.BufferBytes(ws.Capacity, ws.RTT, bdp)
		s.Buffer = ws.Buffer
		wp, err := PredictWare(ws)
		if err != nil {
			t.Fatal(err)
		}
		op, err := Predict(s, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		wareSpread = append(wareSpread, wp.AggBBR.Mbit())
		oursSpread = append(oursSpread, op.AggBBR.Mbit())
	}
	wareDrop := wareSpread[0] - wareSpread[2]
	oursDrop := oursSpread[0] - oursSpread[2]
	if oursDrop <= wareDrop {
		t.Errorf("our model should decline faster than Ware's: ours %v, ware %v", oursDrop, wareDrop)
	}
}
