package core

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/units"
)

// The exact variant must stay close to the published closed form over the
// validity domain — that closeness is what justifies the paper's
// approximation.
func TestExactNearPublishedModel(t *testing.T) {
	s := baseScenario()
	for _, bdp := range []float64{2, 3, 5, 10, 20, 40} {
		s.Buffer = units.BufferBytes(s.Capacity, s.RTT, bdp)
		pub, err := Predict(s, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := PredictExact(s, Synchronized)
		if err != nil {
			t.Fatalf("exact at %v BDP: %v", bdp, err)
		}
		rel := math.Abs(float64(exact.AggBBR-pub.AggBBR)) / float64(s.Capacity)
		if rel > 0.25 {
			t.Errorf("at %v BDP exact %.1f vs published %.1f Mbps differ by %.0f%% of capacity",
				bdp, exact.AggBBR.Mbit(), pub.AggBBR.Mbit(), 100*rel)
		}
	}
}

func TestExactSharesSumToCapacity(t *testing.T) {
	s := baseScenario()
	for _, bdp := range []float64{3, 10, 30} {
		s.Buffer = units.BufferBytes(s.Capacity, s.RTT, bdp)
		p, err := PredictExact(s, Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(p.AggBBR+p.AggCubic-s.Capacity)) > 1 {
			t.Errorf("shares at %v BDP do not sum to capacity", bdp)
		}
		if p.AggBBR < 0 || p.AggCubic < 0 {
			t.Errorf("negative share at %v BDP", bdp)
		}
	}
}

func TestExactDegenerateAndShallowDelegate(t *testing.T) {
	s := baseScenario()
	s.NumBBR = 0
	s.NumCubic = 2
	p, err := PredictExact(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggCubic != s.Capacity {
		t.Error("degenerate all-CUBIC mix wrong")
	}

	s = baseScenario()
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 1)
	p, err = PredictExact(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.AggBBR != s.Capacity {
		t.Error("shallow boundary should give BBR the link")
	}
}

func TestExactBloatsRTT(t *testing.T) {
	s := baseScenario()
	s.Buffer = units.BufferBytes(s.Capacity, s.RTT, 10)
	p, err := PredictExact(s, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if p.RTTPlus <= s.RTT {
		t.Errorf("RTTPlus = %v, want above base %v", p.RTTPlus, s.RTT)
	}
	if p.RTTPlus > s.RTT+10*time.Second {
		t.Errorf("RTTPlus = %v is absurd", p.RTTPlus)
	}
}
