package netsim

import "bbrnash/internal/eventsim"

// Typed event kinds for the per-packet path. Every simulated packet's
// lifecycle — service completion at each link, ACK return, loss
// detection — is scheduled as a typed event with the packet itself as the
// target, so the hot path allocates no closures: scheduling writes a flat
// record into the loop's arena and dispatch is a switch below. Flow-level
// edges (start, transfer restart) use the same mechanism with the Flow as
// target. Cold, self-rescheduling chains (fault flaps and bursts, the
// telemetry samplers) stay on the closure API; they fire a handful of times
// per simulated second and their closures are allocated once at setup.
const (
	// evServiceDone fires when the packet finishes transmission at a
	// forward link (p.hop indexes the flow's path).
	evServiceDone eventsim.Kind = iota
	// evAck fires when the packet's acknowledgement reaches the sender.
	evAck
	// evLoss fires when the sender's loss detection notices the packet's
	// drop (one queue drain plus one base RTT after the drop).
	evLoss
	// evFlowStart fires at the flow's configured start instant.
	evFlowStart
	// evFlowRestart fires when a finite flow's restart interval elapses.
	evFlowRestart
	// evPacerFire fires when the flow's pacing timer elapses (see
	// Flow.pacer, armed from trySend when rate-limited).
	evPacerFire
	// evAckEnqueue fires when the packet's acknowledgment arrives at the
	// reverse link indexed by p.ackHop (after propagation, or after a
	// fault-loss recovery delay).
	evAckEnqueue
	// evAckServiceDone fires when the acknowledgment finishes transmission
	// at the reverse link indexed by p.ackHop.
	evAckServiceDone
	// evAckAdvance fires when an acknowledgment dropped at a full reverse
	// queue has its information recovered (the queue has drained) and
	// moves on to the next reverse hop.
	evAckAdvance
)

// OnEvent dispatches the packet-targeted event kinds. packet implements
// eventsim.Handler; storing the *packet in the event record's interface is
// a pointer store, not a heap allocation.
func (p *packet) OnEvent(k eventsim.Kind) {
	switch k {
	case evServiceDone:
		p.flow.path[p.hop].serviceDone(p)
	case evAck:
		p.flow.ackArrived(p)
	case evLoss:
		p.flow.lossDetected(p)
	case evAckEnqueue:
		p.flow.ackPath[p.ackHop].enqueueAck(p)
	case evAckServiceDone:
		p.flow.ackPath[p.ackHop].ackServiceDone(p)
	case evAckAdvance:
		p.flow.ackAdvance(p)
	}
}

// OnEvent dispatches the flow-targeted event kinds.
func (f *Flow) OnEvent(k eventsim.Kind) {
	switch k {
	case evFlowStart:
		f.start()
	case evFlowRestart:
		f.restart()
	case evPacerFire:
		f.trySend()
	}
}
