package netsim

import (
	"testing"
	"time"

	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/units"
)

func TestSamplerRecordsSeries(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	n.Run(5 * time.Second)
	samples := s.Samples()
	if len(samples) != 50 {
		t.Fatalf("got %d samples, want 50", len(samples))
	}
	// Steady state: a saturating flow's interval throughput matches link
	// capacity.
	last := samples[len(samples)-1]
	if relErr(float64(last.Throughput), float64(cfg.Capacity)) > 0.05 {
		t.Errorf("steady-state sample throughput %v, want about %v", last.Throughput, cfg.Capacity)
	}
	if last.Inflight <= 0 {
		t.Error("inflight sample missing")
	}
	if last.QueueBytes <= 0 {
		t.Error("queue-share sample missing (window exceeds BDP, queue should stand)")
	}
}

func TestSamplerThroughputSumsToDelivered(t *testing.T) {
	cfg := Config{Capacity: 20 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 50*time.Millisecond)
	n.Run(3 * time.Second)
	var sum units.Bytes
	for _, smp := range s.Samples() {
		sum += smp.Throughput.BytesIn(50 * time.Millisecond)
	}
	delivered := units.Bytes(f.arrived.Total())
	if relErr(float64(sum), float64(delivered)) > 0.01 {
		t.Errorf("sample integral %v != delivered %v", sum, delivered)
	}
}

func TestSamplerHelpers(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	n.Run(2 * time.Second)
	if s.MinThroughput(5) <= 0 {
		t.Error("MinThroughput after skip should be positive for a saturating flow")
	}
	if s.MaxInflight() <= 0 {
		t.Error("MaxInflight should be positive")
	}
	empty := &Sampler{}
	if empty.MinThroughput(0) != 0 || empty.MaxInflight() != 0 {
		t.Error("empty sampler helpers should return zero")
	}
}

// BBR's ProbeRTT dips must be visible in a sampled inflight series when
// competing traffic keeps the estimate stale: inflight periodically drops
// to a handful of packets.
func TestSamplerShowsProbeRTTDips(t *testing.T) {
	cfg := Config{Capacity: 50 * units.Mbps, Buffer: units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 5)}
	n := mustNetwork(t, cfg)
	fb, err := n.AddFlow(FlowConfig{Name: "bbr", RTT: 40 * time.Millisecond, Algorithm: bbr.New})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddFlow(FlowConfig{Name: "cubic", RTT: 40 * time.Millisecond, Algorithm: cubic.New}); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(fb, 50*time.Millisecond)
	n.Run(45 * time.Second)
	var min units.Bytes = 1 << 50
	for i, smp := range s.Samples() {
		if i < 100 {
			continue // skip the first 5 seconds
		}
		if smp.Inflight < min {
			min = smp.Inflight
		}
	}
	if min > 8*units.MSS {
		t.Errorf("min inflight %v packets; expected ProbeRTT dips near 4 segments", min.Packets())
	}
}
