package netsim

import (
	"testing"
	"time"

	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/units"
)

func TestSamplerRecordsSeries(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	n.Run(5 * time.Second)
	samples := s.Samples()
	if len(samples) != 50 {
		t.Fatalf("got %d samples, want 50", len(samples))
	}
	// Steady state: a saturating flow's interval throughput matches link
	// capacity.
	last := samples[len(samples)-1]
	if relErr(float64(last.Throughput), float64(cfg.Capacity)) > 0.05 {
		t.Errorf("steady-state sample throughput %v, want about %v", last.Throughput, cfg.Capacity)
	}
	if last.Inflight <= 0 {
		t.Error("inflight sample missing")
	}
	if last.QueueBytes <= 0 {
		t.Error("queue-share sample missing (window exceeds BDP, queue should stand)")
	}
}

func TestSamplerThroughputSumsToDelivered(t *testing.T) {
	cfg := Config{Capacity: 20 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 50*time.Millisecond)
	n.Run(3 * time.Second)
	var sum units.Bytes
	for _, smp := range s.Samples() {
		sum += smp.Throughput.BytesIn(50 * time.Millisecond)
	}
	delivered := units.Bytes(f.arrived.Total())
	if relErr(float64(sum), float64(delivered)) > 0.01 {
		t.Errorf("sample integral %v != delivered %v", sum, delivered)
	}
}

func TestSamplerHelpers(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	n.Run(2 * time.Second)
	if s.MinThroughput(5) <= 0 {
		t.Error("MinThroughput after skip should be positive for a saturating flow")
	}
	if s.MaxInflight() <= 0 {
		t.Error("MaxInflight should be positive")
	}
	empty := &Sampler{}
	if empty.MinThroughput(0) != 0 || empty.MaxInflight() != 0 {
		t.Error("empty sampler helpers should return zero")
	}
}

// A sampler attached to a finite flow must stop ticking once the flow's
// final transfer completes: one closing sample of the drained state, then
// nothing — a long post-completion run must not grow the series.
func TestSamplerStopsAfterFlowFinishes(t *testing.T) {
	cfg := Config{Capacity: 50 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{
		RTT: 20 * time.Millisecond, Algorithm: ctor,
		TransferBytes: 200 * units.MSS,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	n.Run(2 * time.Second)
	if !f.Finished() {
		t.Fatal("flow should have finished its transfer within 2s")
	}
	got := len(s.Samples())
	if got == 0 {
		t.Fatal("sampler recorded nothing before the flow finished")
	}
	n.Run(60 * time.Second)
	if after := len(s.Samples()); after != got {
		t.Errorf("sampler kept ticking after flow finished: %d samples grew to %d", got, after)
	}
}

// Detach must make the pending tick a no-op while keeping the collected
// series readable.
func TestSamplerDetach(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 100*time.Millisecond)
	ls := NewLinkSampler(n, 100*time.Millisecond)
	n.Run(1 * time.Second)
	s.Detach()
	ls.Detach()
	got, lgot := len(s.Samples()), len(ls.Samples())
	if got == 0 || lgot == 0 {
		t.Fatal("samplers recorded nothing before Detach")
	}
	n.Run(5 * time.Second)
	if after := len(s.Samples()); after != got {
		t.Errorf("flow sampler kept ticking after Detach: %d grew to %d", got, after)
	}
	if after := len(ls.Samples()); after != lgot {
		t.Errorf("link sampler kept ticking after Detach: %d grew to %d", lgot, after)
	}
}

// Trailing zero-throughput samples record a stopped sender, not a
// congestion-control dip; MinThroughput must exclude them (and only them —
// an interior zero is a real dip).
func TestMinThroughputIgnoresTrailingZeros(t *testing.T) {
	mk := func(rates ...float64) *Sampler {
		s := &Sampler{}
		for _, r := range rates {
			s.samples = append(s.samples, Sample{Throughput: units.Rate(r)})
		}
		return s
	}
	if got := mk(5, 3, 0, 0).MinThroughput(0); got != 3 {
		t.Errorf("trailing zeros counted: MinThroughput = %v, want 3", got)
	}
	if got := mk(5, 0, 3, 0).MinThroughput(0); got != 0 {
		t.Errorf("interior zero must still count: MinThroughput = %v, want 0", got)
	}
	if got := mk(0, 0).MinThroughput(0); got != 0 {
		t.Errorf("all-zero series: MinThroughput = %v, want 0", got)
	}
}

// The link sampler's throughput integral must match the link's delivered
// byte count, mirroring the per-flow sampler property.
func TestLinkSamplerTracksDeliveredBytes(t *testing.T) {
	cfg := Config{Capacity: 20 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor}); err != nil {
		t.Fatal(err)
	}
	s := NewLinkSampler(n, 50*time.Millisecond)
	n.Run(3 * time.Second)
	var sum units.Bytes
	for _, smp := range s.Samples() {
		sum += smp.Throughput.BytesIn(50 * time.Millisecond)
	}
	delivered := units.Bytes(n.links[0].departed.Total())
	if relErr(float64(sum), float64(delivered)) > 0.01 {
		t.Errorf("link sample integral %v != delivered %v", sum, delivered)
	}
	last := s.Samples()[len(s.Samples())-1]
	if last.Rate != cfg.Capacity {
		t.Errorf("effective rate sample %v, want capacity %v", last.Rate, cfg.Capacity)
	}
}

// A flow's measurement window begins at its own start instant, not at
// time 0: a flow starting halfway through the run must report the link
// rate over its active period, not half of it.
func TestLateStartingFlowThroughputWindow(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{
		RTT: 20 * time.Millisecond, Algorithm: ctor,
		Start: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20 * time.Second)
	got := f.Stats().Throughput
	if relErr(float64(got), float64(cfg.Capacity)) > 0.05 {
		t.Errorf("late-start throughput %v, want about %v (window must start at flow start, not t=0)", got, cfg.Capacity)
	}
}

// BBR's ProbeRTT dips must be visible in a sampled inflight series when
// competing traffic keeps the estimate stale: inflight periodically drops
// to a handful of packets.
func TestSamplerShowsProbeRTTDips(t *testing.T) {
	cfg := Config{Capacity: 50 * units.Mbps, Buffer: units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 5)}
	n := mustNetwork(t, cfg)
	fb, err := n.AddFlow(FlowConfig{Name: "bbr", RTT: 40 * time.Millisecond, Algorithm: bbr.New})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddFlow(FlowConfig{Name: "cubic", RTT: 40 * time.Millisecond, Algorithm: cubic.New}); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(fb, 50*time.Millisecond)
	n.Run(45 * time.Second)
	var min units.Bytes = 1 << 50
	for i, smp := range s.Samples() {
		if i < 100 {
			continue // skip the first 5 seconds
		}
		if smp.Inflight < min {
			min = smp.Inflight
		}
	}
	if min > 8*units.MSS {
		t.Errorf("min inflight %v packets; expected ProbeRTT dips near 4 segments", min.Packets())
	}
}
