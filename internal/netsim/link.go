package netsim

import (
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/metrics"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// link is one directed bottleneck: a drop-tail FIFO of waiting packets plus
// a single transmitter serving them at the link rate. The buffer capacity
// bounds waiting bytes only; the packet being transmitted has left the
// queue, which mirrors how a router's output queue feeds its transmitter.
//
// A link is either a forward (data) link on some flows' paths or the
// reverse-direction twin of a forward link, carrying the ACK stream at
// units.AckBytes per acknowledgment. Both share the service machinery; the
// rev flag selects the serialization size, completion event kind and
// per-flow accounting differences.
type link struct {
	net      *Network
	capacity units.Rate // nominal rate
	rate     units.Rate // effective service rate (capacity, or reduced during a flap's low phase)
	buffer   units.Bytes

	waiting      []*packet // FIFO; head at index `head`
	head         int
	waitingBytes units.Bytes
	busy         bool

	// Service-time cache: TimeToSend costs a float division, and in steady
	// state every packet is MSS-sized at an unchanged rate, so the quotient
	// is recomputed only when size or rate differ from the last service.
	// Same inputs give the identical Duration, so caching cannot perturb
	// event times.
	stepSize units.Bytes
	stepRate units.Rate
	step     time.Duration

	// Topology identity and per-link fault state.
	name   string
	rev    bool  // reverse-direction ACK link
	twin   *link // forward link's reverse twin (nil without one)
	fast   bool  // eligible for the loop's single-slot ScheduleNext lane
	faults scenario.Faults

	burstRemaining int

	occupancy metrics.TimeWeighted
	delay     metrics.Summary
	drops     metrics.Counter
	injected  metrics.Counter
	ackLost   metrics.Counter
	departed  metrics.Counter
}

func newLink(n *Network, name string, capacity units.Rate, buffer units.Bytes, faults scenario.Faults) *link {
	return &link{net: n, name: name, capacity: capacity, rate: capacity, buffer: buffer, faults: faults}
}

// queueDelay is the time a packet arriving now would wait before its own
// transmission begins, at the current effective rate.
func (l *link) queueDelay() time.Duration {
	return l.rate.TimeToSend(l.waitingBytes)
}

// injectDrop decides whether an arriving data packet is claimed by fault
// injection on this link: an open burst episode consumes it unconditionally
// (no RNG draw); otherwise the stochastic loss rate draws once. Called only
// from the single-threaded event loop, in arrival order, and all links
// share the network's one seeded RNG, so the draw sequence — and therefore
// the drop trace — is a pure function of spec and seed.
func (l *link) injectDrop() bool {
	if l.burstRemaining > 0 {
		l.burstRemaining--
		return true
	}
	r := l.faults.LossRate
	return r > 0 && l.net.rng.Float64() < r
}

// enqueue accepts or drops an arriving data packet.
func (l *link) enqueue(p *packet) {
	now := l.net.loop.Now()
	if l.injectDrop() {
		// Fault injection claims the packet before it reaches the queue;
		// the sender detects the loss through the same duplicate-ACK path
		// as an overflow drop.
		l.injected.Add(1)
		l.observeDrop(now, p, true)
		p.flow.packetDropped(p, l.queueDelay())
		return
	}
	if l.waitingBytes+p.size > l.buffer {
		// Drop-tail.
		l.drops.Add(1)
		l.observeDrop(now, p, false)
		p.flow.packetDropped(p, l.queueDelay())
		return
	}
	p.enqueuedAt = now
	l.waiting = append(l.waiting, p)
	l.waitingBytes += p.size
	l.occupancy.Set(now, float64(l.waitingBytes))
	p.flow.queued.Add(now, float64(p.size))
	if !l.busy {
		l.startService()
	}
}

// enqueueAck accepts, delays or drops an acknowledgment arriving at a
// reverse link. ACKs are cumulative, so a lost ACK is not re-detected like
// a data loss: its information is recovered by the next acknowledgment one
// ACK serialization later (fault loss redraws, compounding like the legacy
// modeled return path) or, on overflow, after the queue it failed to enter
// has drained.
func (l *link) enqueueAck(p *packet) {
	now := l.net.loop.Now()
	if alr := l.faults.AckLossRate; alr > 0 && l.net.rng.Float64() < alr {
		l.ackLost.Add(1)
		l.net.loop.AfterEvent(l.rate.TimeToSend(units.AckBytes), evAckEnqueue, p)
		return
	}
	if l.waitingBytes+units.AckBytes > l.buffer {
		l.ackLost.Add(1)
		l.net.loop.AfterEvent(l.queueDelay()+l.rate.TimeToSend(units.AckBytes), evAckAdvance, p)
		return
	}
	p.enqueuedAt = now
	l.waiting = append(l.waiting, p)
	l.waitingBytes += units.AckBytes
	l.occupancy.Set(now, float64(l.waitingBytes))
	if !l.busy {
		l.startService()
	}
}

// startService begins transmitting the head-of-line packet.
func (l *link) startService() {
	now := l.net.loop.Now()
	p := l.waiting[l.head]
	l.waiting[l.head] = nil
	l.head++
	if l.head > 64 && l.head*2 >= len(l.waiting) {
		l.waiting = append(l.waiting[:0], l.waiting[l.head:]...)
		l.head = 0
	}
	size := p.size
	doneKind := evServiceDone
	if l.rev {
		size = units.AckBytes
		doneKind = evAckServiceDone
	}
	l.waitingBytes -= size
	l.occupancy.Set(now, float64(l.waitingBytes))
	if !l.rev {
		p.flow.queued.Add(now, -float64(size))
	}
	l.busy = true
	// The effective rate is sampled at service start: a packet in flight
	// when a flap toggles completes at the rate it started with, like a
	// transmission already on the wire.
	if size != l.stepSize || l.rate != l.stepRate {
		l.stepSize, l.stepRate = size, l.rate
		l.step = l.rate.TimeToSend(size)
	}
	if l.fast {
		// The primary link has exactly one service in flight, making its
		// completion the one event class eligible for the loop's
		// single-slot fast lane.
		l.net.loop.ScheduleNext(now.Add(l.step), doneKind, p)
	} else {
		l.net.loop.ScheduleEvent(now.Add(l.step), doneKind, p)
	}
}

// serviceDone fires when a data packet finishes transmission at this link.
// Mid-path it hops to the next link's queue; at the last hop it departs,
// crosses the remaining propagation path, and its ACK returns to the
// sender — across the reverse twins of the path's links when any exist,
// after one base RTT (plus jitter and modeled ACK-loss delays) otherwise.
func (l *link) serviceDone(p *packet) {
	now := l.net.loop.Now()
	l.busy = false
	l.departed.Add(float64(p.size))
	l.delay.Observe(float64(now.Sub(p.enqueuedAt)))
	f := p.flow
	if int(p.hop)+1 < len(f.path) {
		p.hop++
		f.path[p.hop].enqueue(p)
	} else {
		f.packetDeparted(p)
		ackDelay := f.rtt
		if j := l.net.cfg.AckJitter; j > 0 {
			ackDelay += l.net.rng.Duration(j)
		}
		// Links without a reverse twin model their ACK loss on the ideal
		// return path: a lost ACK's cumulative information is recovered by
		// the next ACK one segment's serialization later; consecutive
		// losses compound. Draws happen here, in departure order, keeping
		// the RNG stream deterministic. Links with a twin apply their ACK
		// loss where it belongs — on the real reverse queue (enqueueAck).
		for _, pl := range f.path {
			if pl.twin != nil {
				continue
			}
			if alr := pl.faults.AckLossRate; alr > 0 {
				for l.net.rng.Float64() < alr {
					pl.ackLost.Add(1)
					ackDelay += pl.rate.TimeToSend(p.size)
				}
			}
		}
		if len(f.ackPath) == 0 {
			l.net.loop.AfterEvent(ackDelay, evAck, p)
		} else {
			p.ackHop = 0
			l.net.loop.AfterEvent(ackDelay, evAckEnqueue, p)
		}
	}
	if l.head < len(l.waiting) {
		l.startService()
	} else if l.head > 0 {
		l.waiting = l.waiting[:0]
		l.head = 0
	}
}

// ackServiceDone fires when an acknowledgment finishes transmission at a
// reverse link: it advances to the next reverse hop, or reaches the sender.
func (l *link) ackServiceDone(p *packet) {
	now := l.net.loop.Now()
	l.busy = false
	l.departed.Add(float64(units.AckBytes))
	l.delay.Observe(float64(now.Sub(p.enqueuedAt)))
	p.flow.ackAdvance(p)
	if l.head < len(l.waiting) {
		l.startService()
	} else if l.head > 0 {
		l.waiting = l.waiting[:0]
		l.head = 0
	}
}

// observeDrop feeds the network's drop hook, when one is registered.
func (l *link) observeDrop(now eventsim.Time, p *packet, injected bool) {
	if h := l.net.dropHook; h != nil {
		h(DropEvent{Time: now, Link: l.name, Flow: p.flow.name, Seq: p.seq, Injected: injected})
	}
}

func (l *link) resetMeasurement(now eventsim.Time) {
	l.occupancy.Reset(now)
	l.delay.Reset()
	l.drops.Reset(now)
	l.injected.Reset(now)
	l.ackLost.Reset(now)
	l.departed.Reset(now)
}
