package netsim

import (
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/metrics"
	"bbrnash/internal/units"
)

// link is the bottleneck: a drop-tail FIFO of waiting packets plus a single
// transmitter serving them at the link rate. The buffer capacity bounds
// waiting bytes only; the packet being transmitted has left the queue, which
// mirrors how a router's output queue feeds its transmitter.
type link struct {
	net      *Network
	capacity units.Rate // nominal rate
	rate     units.Rate // effective service rate (capacity, or reduced during a flap's low phase)
	buffer   units.Bytes

	waiting      []*packet // FIFO; head at index `head`
	head         int
	waitingBytes units.Bytes
	busy         bool

	// Service-time cache: TimeToSend costs a float division, and in steady
	// state every packet is MSS-sized at an unchanged rate, so the quotient
	// is recomputed only when size or rate differ from the last service.
	// Same inputs give the identical Duration, so caching cannot perturb
	// event times.
	stepSize units.Bytes
	stepRate units.Rate
	step     time.Duration

	occupancy metrics.TimeWeighted
	delay     metrics.Summary
	drops     metrics.Counter
	injected  metrics.Counter
	ackLost   metrics.Counter
	departed  metrics.Counter
}

func newLink(n *Network, capacity units.Rate, buffer units.Bytes) *link {
	return &link{net: n, capacity: capacity, rate: capacity, buffer: buffer}
}

// queueDelay is the time a packet arriving now would wait before its own
// transmission begins, at the current effective rate.
func (l *link) queueDelay() time.Duration {
	return l.rate.TimeToSend(l.waitingBytes)
}

// enqueue accepts or drops an arriving packet.
func (l *link) enqueue(p *packet) {
	now := l.net.loop.Now()
	if l.net.injectDrop() {
		// Fault injection claims the packet before it reaches the queue;
		// the sender detects the loss through the same duplicate-ACK path
		// as an overflow drop.
		l.injected.Add(1)
		l.observeDrop(now, p, true)
		p.flow.packetDropped(p, l.queueDelay())
		return
	}
	if l.waitingBytes+p.size > l.buffer {
		// Drop-tail.
		l.drops.Add(1)
		l.observeDrop(now, p, false)
		p.flow.packetDropped(p, l.queueDelay())
		return
	}
	p.enqueuedAt = now
	l.waiting = append(l.waiting, p)
	l.waitingBytes += p.size
	l.occupancy.Set(now, float64(l.waitingBytes))
	p.flow.queued.Add(now, float64(p.size))
	if !l.busy {
		l.startService()
	}
}

// startService begins transmitting the head-of-line packet.
func (l *link) startService() {
	now := l.net.loop.Now()
	p := l.waiting[l.head]
	l.waiting[l.head] = nil
	l.head++
	if l.head > 64 && l.head*2 >= len(l.waiting) {
		l.waiting = append(l.waiting[:0], l.waiting[l.head:]...)
		l.head = 0
	}
	l.waitingBytes -= p.size
	l.occupancy.Set(now, float64(l.waitingBytes))
	p.flow.queued.Add(now, -float64(p.size))
	l.busy = true
	// The effective rate is sampled at service start: a packet in flight
	// when a flap toggles completes at the rate it started with, like a
	// transmission already on the wire.
	if p.size != l.stepSize || l.rate != l.stepRate {
		l.stepSize, l.stepRate = p.size, l.rate
		l.step = l.rate.TimeToSend(p.size)
	}
	// The link has exactly one service in flight, making its completion the
	// one event class eligible for the loop's single-slot fast lane.
	l.net.loop.ScheduleNext(now.Add(l.step), evServiceDone, p)
}

// serviceDone fires when a packet finishes transmission: it departs the
// bottleneck, crosses the propagation path, and its ACK returns to the
// sender one base RTT later.
func (l *link) serviceDone(p *packet) {
	now := l.net.loop.Now()
	l.busy = false
	l.departed.Add(float64(p.size))
	l.delay.Observe(float64(now.Sub(p.enqueuedAt)))
	p.flow.packetDeparted(p)
	ackDelay := p.flow.rtt
	if j := l.net.cfg.AckJitter; j > 0 {
		ackDelay += l.net.rng.Duration(j)
	}
	if alr := l.net.cfg.Faults.AckLossRate; alr > 0 {
		// A lost ACK's cumulative information is recovered by the next
		// ACK one segment's serialization later; consecutive losses
		// compound. Draws happen here, in departure order, keeping the
		// RNG stream deterministic.
		for l.net.rng.Float64() < alr {
			l.ackLost.Add(1)
			ackDelay += l.rate.TimeToSend(p.size)
		}
	}
	l.net.loop.AfterEvent(ackDelay, evAck, p)
	if l.head < len(l.waiting) {
		l.startService()
	} else if l.head > 0 {
		l.waiting = l.waiting[:0]
		l.head = 0
	}
}

// observeDrop feeds the network's drop hook, when one is registered.
func (l *link) observeDrop(now eventsim.Time, p *packet, injected bool) {
	if h := l.net.dropHook; h != nil {
		h(DropEvent{Time: now, Flow: p.flow.name, Seq: p.seq, Injected: injected})
	}
}

func (l *link) resetMeasurement(now eventsim.Time) {
	l.occupancy.Reset(now)
	l.delay.Reset()
	l.drops.Reset(now)
	l.injected.Reset(now)
	l.ackLost.Reset(now)
	l.departed.Reset(now)
}
