package netsim

import (
	"testing"
	"time"

	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// faultedSpec is the shared base for fault tests: two BBR flows on a
// 20 Mbps link, enough traffic that every fault mechanism gets exercised.
func faultedSpec(f scenario.Faults) scenario.Spec {
	sp := scenario.Mix("bbr", 2, 0, 20*units.Mbps,
		units.BufferBytes(20*units.Mbps, 40*time.Millisecond, 2),
		40*time.Millisecond, 10*time.Second)
	sp.Seed = 11
	sp.Faults = f
	return sp
}

func runFaulted(t *testing.T, sp scenario.Spec, chunk time.Duration) ([]FlowStats, LinkStats, []DropEvent) {
	t.Helper()
	n, flows, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	var trace []DropEvent
	n.OnDrop(func(e DropEvent) { trace = append(trace, e) })
	if chunk <= 0 {
		n.Run(sp.Duration)
	} else {
		for done := time.Duration(0); done < sp.Duration; done += chunk {
			step := chunk
			if rem := sp.Duration - done; rem < step {
				step = rem
			}
			n.Run(step)
		}
	}
	var out []FlowStats
	for _, g := range flows {
		for _, f := range g {
			out = append(out, f.Stats())
		}
	}
	return out, n.Link(), trace
}

// TestFaultDropTraceDeterministic: a faulted spec is exactly as reproducible
// as a clean one — two builds give byte-identical drop traces and flow
// stats, and running in chunks (the harness's heartbeat mode) changes
// nothing.
func TestFaultDropTraceDeterministic(t *testing.T) {
	sp := faultedSpec(scenario.Faults{
		LossRate:    0.01,
		AckLossRate: 0.005,
		FlapPeriod:  2 * time.Second,
		FlapDepth:   0.5,
		BurstEvery:  3 * time.Second,
		BurstLen:    4,
	})
	aStats, aLink, aTrace := runFaulted(t, sp, 0)
	bStats, bLink, bTrace := runFaulted(t, sp, 0)
	cStats, cLink, cTrace := runFaulted(t, sp, time.Second)
	if len(aTrace) == 0 {
		t.Fatal("no drops observed in a faulted run")
	}
	for name, got := range map[string][]DropEvent{"rebuild": bTrace, "chunked": cTrace} {
		if len(got) != len(aTrace) {
			t.Fatalf("%s: trace length %d != %d", name, len(got), len(aTrace))
		}
		for i := range got {
			if got[i] != aTrace[i] {
				t.Fatalf("%s: drop %d differs: %+v vs %+v", name, i, got[i], aTrace[i])
			}
		}
	}
	if aLink != bLink || aLink != cLink {
		t.Fatalf("link stats differ:\n%+v\n%+v\n%+v", aLink, bLink, cLink)
	}
	for i := range aStats {
		if aStats[i] != bStats[i] || aStats[i] != cStats[i] {
			t.Fatalf("flow %d stats differ:\n%+v\n%+v\n%+v", i, aStats[i], bStats[i], cStats[i])
		}
	}
}

// TestStochasticLossObserved: a 2% loss rate produces injected drops in
// rough proportion to arrivals, flagged as injected in the trace, and the
// flows keep delivering.
func TestStochasticLossObserved(t *testing.T) {
	sp := faultedSpec(scenario.Faults{LossRate: 0.02})
	stats, link, trace := runFaulted(t, sp, 0)
	if link.InjectedDrops == 0 {
		t.Fatal("no injected drops at 2% loss")
	}
	injected := 0
	for _, e := range trace {
		if e.Injected {
			injected++
		}
	}
	if injected != link.InjectedDrops {
		t.Errorf("trace injected %d != link counter %d", injected, link.InjectedDrops)
	}
	for _, st := range stats {
		if st.Delivered == 0 {
			t.Errorf("flow %s delivered nothing", st.Name)
		}
		if st.Lost == 0 {
			t.Errorf("flow %s saw no losses", st.Name)
		}
	}
}

// TestAckLossCounted: ACK-path loss is counted and delays, but does not
// stall, delivery.
func TestAckLossCounted(t *testing.T) {
	sp := faultedSpec(scenario.Faults{AckLossRate: 0.05})
	stats, link, trace := runFaulted(t, sp, 0)
	if link.AckLosses == 0 {
		t.Fatal("no ACK losses at 5% ack-loss rate")
	}
	for _, e := range trace {
		if e.Injected {
			t.Fatalf("ACK loss must not inject data drops, got %+v", e)
		}
	}
	for _, st := range stats {
		if st.Delivered == 0 {
			t.Errorf("flow %s delivered nothing", st.Name)
		}
	}
}

// TestFlapBoundsThroughput: with a 50%-depth square-wave flap the link
// spends half its time at half rate, so aggregate goodput is bounded by the
// 75% mean capacity (plus a little tolerance for the packet in service at
// each toggle) and still clearly above the low rate.
func TestFlapBoundsThroughput(t *testing.T) {
	f := scenario.Faults{FlapPeriod: 2 * time.Second, FlapDepth: 0.5}
	sp := faultedSpec(f)
	stats, _, _ := runFaulted(t, sp, 0)
	var agg units.Rate
	for _, st := range stats {
		agg += st.Throughput
	}
	mean := f.MeanCapacityOver(sp.Capacity, sp.Duration)
	if agg > units.Rate(float64(mean)*1.01) {
		t.Errorf("aggregate %v exceeds flapped mean capacity %v", agg, mean)
	}
	if low := f.MinCapacity(sp.Capacity); agg < low/2 {
		t.Errorf("aggregate %v implausibly low vs floor %v", agg, low)
	}
}

// TestBurstEpisodes: every burst episode claims exactly BurstLen arrivals,
// so with backlogged flows the injected-drop count is episodes x length.
func TestBurstEpisodes(t *testing.T) {
	f := scenario.Faults{BurstEvery: 2 * time.Second, BurstLen: 5}
	sp := faultedSpec(f)
	sp.Duration = 7 * time.Second // episodes at 2s, 4s, 6s
	_, link, trace := runFaulted(t, sp, 0)
	want := 3 * f.BurstLen
	if link.InjectedDrops != want {
		t.Errorf("injected drops = %d, want %d", link.InjectedDrops, want)
	}
	for _, e := range trace {
		if e.Injected && e.Time.Duration() < 2*time.Second {
			t.Errorf("injected drop before first episode at %v", e.Time)
		}
	}
}

// TestCleanLinkDrawsNothing: the zero Faults value leaves the simulation
// untouched — no injected drops, no ACK losses, and stats identical to a
// spec that never mentioned faults.
func TestCleanLinkDrawsNothing(t *testing.T) {
	sp := faultedSpec(scenario.Faults{})
	stats, link, _ := runFaulted(t, sp, 0)
	if link.InjectedDrops != 0 || link.AckLosses != 0 {
		t.Fatalf("clean link counted faults: %+v", link)
	}
	plain := sp
	plain.Faults = scenario.Faults{}
	pStats, _, _ := runFaulted(t, plain, 0)
	for i := range stats {
		if stats[i] != pStats[i] {
			t.Fatalf("flow %d differs from clean spec:\n%+v\n%+v", i, stats[i], pStats[i])
		}
	}
}
