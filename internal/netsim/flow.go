package netsim

import (
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/metrics"
	"bbrnash/internal/units"
)

// Flow is one bulk sender/receiver pair. The sender has infinite backlog and
// transmits whenever its congestion window (and pacing rate, if any) allows.
//
// Field order is deliberate: the state every ACK touches sits first, packed
// into the leading cache lines, while configuration and measurement state
// the hot path never reads (names, transfer settings, counters snapshotted
// by Stats) trails behind.
type Flow struct {
	// Hot: read and written on every ACK, loss and send.
	net      *Network
	alg      cc.Algorithm
	inflight units.Bytes
	started  bool
	nextSeq  uint64

	// path is the ordered forward links the flow's data traverses; ackPath
	// the reverse twins its ACKs cross on the way back (reverse path
	// order), empty when no traversed link has a twin.
	path    []*link
	ackPath []*link

	// Pacing state. paceRate/paceStep cache the serialization-interval
	// division (see link.step): recomputed only when the algorithm's pacing
	// rate actually changes, which is far rarer than a send.
	pacer    eventsim.Timer
	nextSend eventsim.Time
	paceRate units.Rate
	paceStep time.Duration

	// Delivery-rate estimator connection state (see the BBR delivery-rate
	// estimation draft): total delivered bytes and the timestamps needed to
	// form per-ACK rate samples.
	delivered     units.Bytes
	deliveredTime eventsim.Time
	firstSent     eventsim.Time

	rtt    time.Duration
	minRTT time.Duration

	// Warm: per-ACK statistics kept by value (alloc-free Observe/Add).
	rttStats metrics.Summary
	arrived  metrics.Counter // bytes that crossed the bottleneck
	sent     metrics.Counter
	lost     metrics.Counter
	queued   metrics.TimeWeighted // this flow's waiting bytes at the bottleneck

	// Cold: configuration, identity and observation state.
	id   int
	name string

	// State-transition observation (see Network.OnStateChange): reporter is
	// alg's cc.StateReporter side, asserted once at construction, or nil.
	reporter  cc.StateReporter
	lastState string

	// Finite-transfer state (zero transferSize means infinite backlog).
	transferSize units.Bytes
	restartAfter time.Duration
	sentInXfer   units.Bytes
	transfers    int
}

func (f *Flow) start() {
	f.started = true
	now := f.net.loop.Now()
	f.nextSend = now
	f.deliveredTime = now
	f.firstSent = now
	f.queued.Set(now, 0)
	// Begin the measurement windows at the flow's own start instant. With
	// jittered starts a flow may come to life well after t=0; leaving the
	// counter windows at their implicit zero start would divide the flow's
	// bytes over dead time it never sent in and understate its rate whenever
	// StartMeasurement is never called (measurement from t=0).
	f.arrived.Reset(now)
	f.sent.Reset(now)
	f.lost.Reset(now)
	f.trySend()
}

// trySend transmits as many packets as the window and pacing allow, arming
// the pacing timer when rate-limited.
func (f *Flow) trySend() {
	if !f.started {
		return
	}
	mss := f.net.cfg.MSS
	for f.inflight+mss <= f.alg.CongestionWindow() {
		if f.transferSize > 0 && f.sentInXfer >= f.transferSize {
			f.finishTransfer()
			return
		}
		now := f.net.loop.Now()
		if rate := f.alg.PacingRate(); rate > 0 {
			if f.nextSend > now {
				f.pacer.Arm(f.nextSend)
				return
			}
			if f.nextSend < now {
				// Idle or newly paced: restart the pacing clock.
				f.nextSend = now
			}
			if rate != f.paceRate {
				f.paceRate = rate
				f.paceStep = rate.TimeToSend(mss)
			}
			f.nextSend = f.nextSend.Add(f.paceStep)
		}
		f.sendPacket(now, mss)
	}
}

func (f *Flow) sendPacket(now eventsim.Time, size units.Bytes) {
	if f.inflight == 0 {
		// Restarting from idle: reset the rate-estimator epoch.
		f.firstSent = now
		f.deliveredTime = now
	}
	p := f.net.newPacket()
	p.flow = f
	p.seq = f.nextSeq
	p.size = size
	p.sentAt = now
	p.delivered = f.delivered
	p.deliveredTime = f.deliveredTime
	p.firstSent = f.firstSent
	f.nextSeq++
	f.firstSent = now
	f.inflight += size
	f.sentInXfer += size
	f.sent.Add(float64(size))
	f.alg.OnSent(cc.SendEvent{Now: now, Seq: p.seq, Bytes: size, Inflight: f.inflight})
	f.path[0].enqueue(p)
}

// packetDeparted is called when the packet crosses the last link of its
// path; the receiver will see it one forward propagation later. Throughput
// is counted here.
func (f *Flow) packetDeparted(p *packet) {
	f.arrived.Add(float64(p.size))
}

// ackAdvance moves the packet's acknowledgment to the next reverse link on
// its way back to the sender, delivering it once the reverse path is
// exhausted.
func (f *Flow) ackAdvance(p *packet) {
	p.ackHop++
	if int(p.ackHop) < len(f.ackPath) {
		f.ackPath[p.ackHop].enqueueAck(p)
		return
	}
	f.ackArrived(p)
}

// ackArrived processes the acknowledgement for p at the sender.
func (f *Flow) ackArrived(p *packet) {
	now := f.net.loop.Now()
	f.inflight -= p.size
	f.delivered += p.size
	f.deliveredTime = now

	rtt := now.Sub(p.sentAt)
	f.rttStats.Observe(float64(rtt))
	if f.minRTT == 0 || rtt < f.minRTT {
		f.minRTT = rtt
	}

	// Delivery-rate sample: bytes delivered between this packet's send and
	// its ACK, over the longer of the ACK interval and the send interval
	// (the max suppresses aliasing from ACK compression).
	ackElapsed := now.Sub(p.deliveredTime)
	sendElapsed := p.sentAt.Sub(p.firstSent)
	interval := ackElapsed
	if sendElapsed > interval {
		interval = sendElapsed
	}
	var rate units.Rate
	if interval > 0 {
		rate = units.RateOver(f.delivered-p.delivered, interval)
	}

	f.alg.OnAck(cc.AckEvent{
		Now:       now,
		Seq:       p.seq,
		Bytes:     p.size,
		SentAt:    p.sentAt,
		RTT:       rtt,
		Inflight:  f.inflight,
		Delivered: f.delivered,
		Rate:      rate,
	})
	f.noteState(now)
	f.net.freePacket(p)
	f.maybeSend()
}

// packetDropped is called (at drop time) when the bottleneck discards p.
// The sender detects the loss roughly when duplicate ACKs triggered by
// later packets would arrive: one queue drain plus one base RTT later.
func (f *Flow) packetDropped(p *packet, queueDelay time.Duration) {
	f.net.loop.AfterEvent(queueDelay+f.rtt, evLoss, p)
}

func (f *Flow) lossDetected(p *packet) {
	now := f.net.loop.Now()
	f.inflight -= p.size
	f.lost.Add(1)
	f.alg.OnLoss(cc.LossEvent{
		Now:      now,
		Seq:      p.seq,
		Bytes:    p.size,
		SentAt:   p.sentAt,
		Inflight: f.inflight,
	})
	f.noteState(now)
	f.net.freePacket(p)
	f.maybeSend()
}

// maybeSend runs trySend at the end of an ACK or loss event, batching
// consecutive same-flow feedback: when the next event in the queue is
// another ACK or loss for this same flow at this same instant and trySend
// is provably a no-op right now (not started, or window still full — the
// only two early returns with no side effect), the call is skipped and the
// batch's final event issues it once. The deferred call sees exactly the
// state the skipped calls would have seen had they run (no-ops by
// definition), so event order and RNG/sequence draws are identical to the
// unbatched engine.
func (f *Flow) maybeSend() {
	if !f.started || f.inflight+f.net.cfg.MSS > f.alg.CongestionWindow() {
		if kind, target, ok := f.net.loop.PeekSameInstant(); ok &&
			(kind == evAck || kind == evLoss) {
			if p, ok := target.(*packet); ok && p.flow == f {
				return
			}
		}
	}
	f.trySend()
}

// noteState emits a StateEvent when the flow's congestion-control state
// changed across the last OnAck/OnLoss. With no hook registered (or no
// StateReporter) this is a pointer compare and costs nothing on the hot
// path.
func (f *Flow) noteState(now eventsim.Time) {
	if f.net.stateHook == nil || f.reporter == nil {
		return
	}
	if s := f.reporter.StateName(); s != f.lastState {
		f.lastState = s
		f.net.stateHook(StateEvent{Time: now, Flow: f.name, State: s})
	}
}

// finishTransfer pauses a finite flow at the end of its transfer and, if
// configured, schedules the next one. The congestion-control instance keeps
// its state across restarts, like a persistent connection reused for
// successive objects.
func (f *Flow) finishTransfer() {
	f.started = false
	f.transfers++
	if f.restartAfter <= 0 {
		return
	}
	f.net.loop.AfterEvent(f.restartAfter, evFlowRestart, f)
}

// restart begins the next transfer of an on/off flow (see finishTransfer).
func (f *Flow) restart() {
	f.sentInXfer = 0
	f.started = true
	now := f.net.loop.Now()
	if f.nextSend < now {
		f.nextSend = now
	}
	f.trySend()
}

func (f *Flow) resetMeasurement(now eventsim.Time) {
	f.arrived.Reset(now)
	f.sent.Reset(now)
	f.lost.Reset(now)
	f.rttStats.Reset()
	f.queued.Reset(now)
}

// Name returns the flow's label.
func (f *Flow) Name() string { return f.name }

// AlgorithmName returns the congestion-control algorithm's name.
func (f *Flow) AlgorithmName() string { return f.alg.Name() }

// Algorithm exposes the underlying congestion-control instance (useful for
// white-box tests).
func (f *Flow) Algorithm() cc.Algorithm { return f.alg }

// BaseRTT returns the flow's configured round-trip propagation delay.
func (f *Flow) BaseRTT() time.Duration { return f.rtt }

// Inflight returns the bytes currently outstanding.
func (f *Flow) Inflight() units.Bytes { return f.inflight }

// Transfers reports how many finite transfers the flow has completed (0
// for infinite bulk flows).
func (f *Flow) Transfers() int { return f.transfers }

// Finished reports whether the flow has completed its final transfer and
// will never send again: a finite flow with no restart configured whose
// transfer is done. Infinite bulk flows and flows with a restart interval
// never finish.
func (f *Flow) Finished() bool {
	return !f.started && f.transferSize > 0 && f.restartAfter <= 0 && f.transfers > 0
}

// Stats snapshots the flow's statistics over the current measurement window.
func (f *Flow) Stats() FlowStats {
	now := f.net.loop.Now()
	return FlowStats{
		Name:               f.name,
		Algorithm:          f.alg.Name(),
		Throughput:         f.arrived.RateSince(now),
		Delivered:          units.Bytes(f.arrived.Windowed()),
		SentBytes:          units.Bytes(f.sent.Windowed()),
		Lost:               int(f.lost.Windowed()),
		MeanRTT:            f.rttStats.MeanDuration(),
		MinRTT:             f.minRTT,
		MeanQueueOccupancy: units.Bytes(f.queued.Average(now)),
		MinQueueOccupancy:  units.Bytes(f.queued.Min()),
		MaxQueueOccupancy:  units.Bytes(f.queued.Max()),
	}
}

// FlowStats is a snapshot of per-flow statistics over the current
// measurement window.
type FlowStats struct {
	Name      string
	Algorithm string
	// Throughput is the rate at which this flow's bytes crossed the
	// bottleneck during the measurement window.
	Throughput units.Rate
	// Delivered is the byte count behind Throughput.
	Delivered units.Bytes
	// SentBytes counts transmissions (including bytes later lost).
	SentBytes units.Bytes
	// Lost counts packets dropped at the bottleneck.
	Lost int
	// MeanRTT is the mean round-trip sample.
	MeanRTT time.Duration
	// MinRTT is the smallest round-trip sample ever observed.
	MinRTT time.Duration
	// MeanQueueOccupancy is the time-weighted average of this flow's bytes
	// waiting in the bottleneck buffer.
	MeanQueueOccupancy units.Bytes
	// MinQueueOccupancy and MaxQueueOccupancy bound the flow's waiting
	// bytes over the window.
	MinQueueOccupancy units.Bytes
	MaxQueueOccupancy units.Bytes
}
