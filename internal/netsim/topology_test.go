package netsim

import (
	"reflect"
	"testing"
	"time"

	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// chainConfig builds a forward chain of named links with the given
// capacities, one buffer each.
func chainConfig(bufs units.Bytes, caps ...units.Rate) (Config, []string) {
	cfg := Config{}
	var path []string
	names := []string{"l0", "l1", "l2", "l3"}
	for i, c := range caps {
		cfg.Links = append(cfg.Links, LinkConfig{Name: names[i], Capacity: c, Buffer: bufs})
		path = append(path, names[i])
	}
	return cfg, path
}

// TestChainForwardingConservation: on a two-link chain every delivered
// byte crossed both links, so the upstream link's departures can exceed
// the downstream one's only by what is still sitting in the downstream
// queue or in service (one buffer plus a segment).
func TestChainForwardingConservation(t *testing.T) {
	cfg, path := chainConfig(1e6, 20*units.Mbps, 20*units.Mbps)
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3 * time.Second)
	dep0 := n.links[0].departed.Total()
	dep1 := n.links[1].departed.Total()
	if dep1 <= 0 {
		t.Fatal("nothing crossed the second link")
	}
	if dep0 < dep1 {
		t.Errorf("downstream link departed %v bytes, more than upstream's %v", dep1, dep0)
	}
	if lag := dep0 - dep1; lag > float64(n.links[1].buffer+units.MSS) {
		t.Errorf("per-link conservation: %v bytes left the first link but neither crossed nor wait at the second (buffer %v)",
			lag, n.links[1].buffer)
	}
	if got := units.Bytes(f.arrived.Total()); got != units.Bytes(dep1) {
		t.Errorf("flow delivered %v, last link departed %v; delivery must be measured at the final hop", got, units.Bytes(dep1))
	}
}

// TestChainBottleneckMiddle: in the parking-lot chain 100|40|100 Mbps the
// middle link is the bottleneck — throughput pins to it and the standing
// queue forms there, not at the wide links around it.
func TestChainBottleneckMiddle(t *testing.T) {
	cfg, path := chainConfig(1e6, 100*units.Mbps, 40*units.Mbps, 100*units.Mbps)
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(400*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * time.Second)
	if got := f.Stats().Throughput; relErr(float64(got), float64(40*units.Mbps)) > 0.05 {
		t.Errorf("chain throughput %v, want about the middle link's 40 Mbps", got)
	}
	per := n.PerLink()
	if len(per) != 3 {
		t.Fatalf("PerLink reported %d links, want 3", len(per))
	}
	if per[1].MeanQueueOccupancy < 10*per[0].MeanQueueOccupancy ||
		per[1].MeanQueueOccupancy < 10*per[2].MeanQueueOccupancy {
		t.Errorf("standing queue not at the middle link: occupancies %v | %v | %v",
			per[0].MeanQueueOccupancy, per[1].MeanQueueOccupancy, per[2].MeanQueueOccupancy)
	}
	for i, want := range []string{"l0", "l1", "l2"} {
		if per[i].Name != want {
			t.Errorf("PerLink[%d].Name = %q, want %q", i, per[i].Name, want)
		}
	}
}

// TestPathResolution: flows resolve their paths by link name — unknown
// and repeated links are configuration errors, an empty path means the
// first link, and legacy single-link configs accept the default name.
func TestPathResolution(t *testing.T) {
	cfg, _ := chainConfig(1e6, 20*units.Mbps, 20*units.Mbps)
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(10*units.MSS, 0)
	base := FlowConfig{RTT: 10 * time.Millisecond, Algorithm: ctor}

	bad := base
	bad.Path = []string{"l0", "nope"}
	if _, err := n.AddFlow(bad); err == nil {
		t.Error("unknown link name accepted")
	}
	dup := base
	dup.Path = []string{"l0", "l0"}
	if _, err := n.AddFlow(dup); err == nil {
		t.Error("repeated link accepted")
	}
	one := base
	one.Path = []string{"l1"}
	f, err := n.AddFlow(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.path) != 1 || f.path[0] != n.links[1] {
		t.Error("single-link path did not resolve to the named link")
	}
	empty := base
	f2, err := n.AddFlow(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.path) != 1 || f2.path[0] != n.links[0] {
		t.Error("empty path did not default to the first link")
	}

	legacy := mustNetwork(t, Config{Capacity: 20 * units.Mbps, Buffer: 1e6})
	named := base
	named.Path = []string{scenario.DefaultLinkName}
	if _, err := legacy.AddFlow(named); err != nil {
		t.Errorf("legacy config rejected the default link name: %v", err)
	}
}

// TestExplicitSingleLinkMatchesLegacy: a one-link topology without a
// reverse twin is the legacy configuration spelled out — same flow and
// link statistics to the byte.
func TestExplicitSingleLinkMatchesLegacy(t *testing.T) {
	capacity := 30 * units.Mbps
	buffer := units.BufferBytes(capacity, 40*time.Millisecond, 2)
	faults := scenario.Faults{LossRate: 0.002, FlapPeriod: time.Second, FlapDepth: 0.3}
	run := func(cfg Config) (FlowStats, LinkStats) {
		cfg.Seed = 7
		n := mustNetwork(t, cfg)
		f, err := n.AddFlow(FlowConfig{RTT: 40 * time.Millisecond, Algorithm: bbr.New})
		if err != nil {
			t.Fatal(err)
		}
		n.Run(10 * time.Second)
		return f.Stats(), n.Link()
	}
	lf, ll := run(Config{Capacity: capacity, Buffer: buffer, Faults: faults})
	ef, el := run(Config{Links: []LinkConfig{{Name: scenario.DefaultLinkName, Capacity: capacity, Buffer: buffer, Faults: faults}}})
	if !reflect.DeepEqual(lf, ef) {
		t.Errorf("flow stats diverge:\nlegacy   %+v\nexplicit %+v", lf, ef)
	}
	if !reflect.DeepEqual(ll, el) {
		t.Errorf("link stats diverge:\nlegacy   %+v\nexplicit %+v", ll, el)
	}
}

// TestReverseTwinAckPath: a reverse twin serializes ACKs instead of
// delivering them after a pure delay — RTTs grow by the return queue, a
// congested return link inflates them further, and the twin's statistics
// account for every ACK that crossed it.
func TestReverseTwinAckPath(t *testing.T) {
	capacity := 20 * units.Mbps
	mk := func(rev units.Rate) (*Network, *Flow) {
		cfg := Config{Links: []LinkConfig{{
			Name: "b", Capacity: capacity, Buffer: 1e6,
			RevCapacity: rev, RevBuffer: 1 << 16,
		}}}
		n := mustNetwork(t, cfg)
		ctor, _ := fixedCtor(100*units.MSS, 0)
		f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor, Path: []string{"b"}})
		if err != nil {
			t.Fatal(err)
		}
		return n, f
	}
	n, f := mk(10 * units.Mbps)
	n.Run(5 * time.Second)
	st := f.Stats()
	if st.Throughput <= 0 {
		t.Fatal("no progress through a reverse twin")
	}
	if st.MinRTT <= 20*time.Millisecond {
		t.Errorf("min RTT %v does not include reverse-path serialization", st.MinRTT)
	}
	per := n.PerLink()
	if len(per) != 2 || per[1].Name != "b~rev" {
		t.Fatalf("PerLink = %v, want forward link then its ~rev twin", per)
	}
	if per[1].Utilization <= 0 {
		t.Error("reverse twin recorded no ACK departures")
	}

	nSlow, fSlow := mk(100 * units.Kbps)
	nSlow.Run(5 * time.Second)
	slow := fSlow.Stats()
	if slow.MeanRTT <= 2*st.MeanRTT {
		t.Errorf("congested return link: mean RTT %v, want far above the uncongested %v", slow.MeanRTT, st.MeanRTT)
	}
	if slow.Throughput >= st.Throughput {
		t.Errorf("reverse congestion did not slow the forward path: %v >= %v", slow.Throughput, st.Throughput)
	}
}

// TestPerLinkFaults: faults attach to the link they are configured on —
// stochastic loss on the second link injects drops there and only there,
// and an ACK-loss fault on a twinned link loses ACKs on the twin.
func TestPerLinkFaults(t *testing.T) {
	cfg, path := chainConfig(1e6, 20*units.Mbps, 20*units.Mbps)
	cfg.Links[1].Faults = scenario.Faults{LossRate: 0.02}
	cfg.Seed = 3
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(100*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor, Path: path}); err != nil {
		t.Fatal(err)
	}
	n.Run(5 * time.Second)
	per := n.PerLink()
	if per[0].InjectedDrops != 0 {
		t.Errorf("fault-free first link injected %d drops", per[0].InjectedDrops)
	}
	if per[1].InjectedDrops == 0 {
		t.Error("lossy second link injected no drops")
	}

	cfg2 := Config{Seed: 5, Links: []LinkConfig{{
		Name: "b", Capacity: 20 * units.Mbps, Buffer: 1e6,
		Faults:      scenario.Faults{AckLossRate: 0.05},
		RevCapacity: 10 * units.Mbps, RevBuffer: 1 << 16,
	}}}
	n2 := mustNetwork(t, cfg2)
	ctor2, _ := fixedCtor(100*units.MSS, 0)
	if _, err := n2.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor2, Path: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	n2.Run(5 * time.Second)
	per2 := n2.PerLink()
	if per2[1].AckLosses == 0 {
		t.Error("ACK-loss fault on a twinned link lost nothing on the twin")
	}
}
