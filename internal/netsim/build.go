package netsim

import (
	"fmt"

	"bbrnash/internal/cc"
	"bbrnash/internal/rng"
	"bbrnash/internal/scenario"
)

// Build instantiates a scenario: the bottleneck from the spec's link
// parameters and one flow per group member, named "g<group>.<alg><i>".
// Per-flow start jitter is drawn from the spec's seed in group order, so a
// spec fully determines the simulation — same spec, same run.
//
// The flows come back grouped in spec order (empty groups yield empty
// slices), ready for per-class aggregation after Run.
func Build(sp scenario.Spec) (*Network, [][]*Flow, error) {
	return BuildOverride(sp, nil)
}

// BuildOverride is Build with constructor substitution: override maps
// algorithm names to constructors consulted before the registry, letting
// the harness run variants outside it. A spec needing an override has no
// canonical identity and must not be cached under its key.
func BuildOverride(sp scenario.Spec, override map[string]cc.Constructor) (*Network, [][]*Flow, error) {
	sp = sp.WithDefaults()
	if err := sp.ValidateTopology(); err != nil {
		return nil, nil, err
	}
	ctors := make([]cc.Constructor, len(sp.Groups))
	for i, g := range sp.Groups {
		if ctor, ok := override[g.Algorithm]; ok {
			ctors[i] = ctor
			continue
		}
		ctor, err := cc.AlgorithmByName(g.Algorithm)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: group %d: %w", i, err)
		}
		ctors[i] = ctor
	}
	cfg := Config{
		MSS:       sp.MSS,
		AckJitter: sp.AckJitter,
		Seed:      sp.Seed,
	}
	if len(sp.Links) > 0 {
		cfg.Links = make([]LinkConfig, len(sp.Links))
		for i, l := range sp.Links {
			cfg.Links[i] = LinkConfig{
				Name:        l.Name,
				Capacity:    l.Capacity,
				Buffer:      l.Buffer,
				Faults:      l.Faults,
				RevCapacity: l.RevCapacity,
				RevBuffer:   l.RevBuffer,
			}
		}
	} else {
		cfg.Capacity = sp.Capacity
		cfg.Buffer = sp.Buffer
		cfg.Faults = sp.Faults
	}
	n, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	r := rng.New(sp.Seed)
	flows := make([][]*Flow, len(sp.Groups))
	for gi, g := range sp.Groups {
		for i := 0; i < g.Count; i++ {
			f, err := n.AddFlow(FlowConfig{
				Name:      fmt.Sprintf("g%d.%s%d", gi, g.Algorithm, i),
				RTT:       g.RTT,
				Start:     g.Start + r.Duration(sp.StartJitter),
				Algorithm: ctors[gi],
				Path:      g.Path,
			})
			if err != nil {
				return nil, nil, err
			}
			flows[gi] = append(flows[gi], f)
		}
	}
	n.Presize()
	return n, flows, nil
}
