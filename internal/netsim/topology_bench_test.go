package netsim_test

// BenchmarkTopology measures what multi-link forwarding costs: the same
// flow population runs once over a single 80 Mbps bottleneck and once
// over the 100|80|100 Mbps parking-lot chain whose middle link is that
// same bottleneck. Steady-state throughput is identical by construction,
// so the ns/event and events/sec deltas between the two scenarios are
// pure per-hop overhead — extra enqueue/service events, per-link queue
// state, path bookkeeping. scripts/bench.sh -s topology parses the
// results into BENCH_*.json records alongside the engine trajectory.
//
// Scenario parameters are frozen for comparability, same rule as
// BenchmarkEngine: add a new scenario rather than editing these.

import (
	"testing"
	"time"

	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"

	_ "bbrnash/internal/cc/bbr"
	_ "bbrnash/internal/cc/cubic"
)

// topologyScenarios is the frozen single-vs-chain benchmark pair.
func topologyScenarios() map[string]scenario.Spec {
	groups := func(path ...string) []scenario.Group {
		return []scenario.Group{
			{Algorithm: "bbr", Count: 2, RTT: 40 * time.Millisecond, Path: path},
			{Algorithm: "cubic", Count: 2, RTT: 40 * time.Millisecond, Path: path},
		}
	}
	buf := func(c units.Rate) units.Bytes {
		return units.BufferBytes(c, 40*time.Millisecond, 2)
	}
	return map[string]scenario.Spec{
		// single: the legacy one-bottleneck form, the chain's middle link
		// on its own.
		"single": {
			Capacity:    80 * units.Mbps,
			Buffer:      buf(80 * units.Mbps),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    time.Hour, // never reached; ops advance 1s at a time
			Seed:        11,
			Groups:      groups(),
		},
		// chain3: the same flows threaded through the parking-lot chain;
		// the middle link is the bottleneck, the outer links add two
		// extra hops of forwarding work per packet.
		"chain3": {
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    time.Hour,
			Seed:        11,
			Links: []scenario.Link{
				{Name: "l0", Capacity: 100 * units.Mbps, Buffer: buf(100 * units.Mbps)},
				{Name: "l1", Capacity: 80 * units.Mbps, Buffer: buf(80 * units.Mbps)},
				{Name: "l2", Capacity: 100 * units.Mbps, Buffer: buf(100 * units.Mbps)},
			},
			Groups: groups("l0", "l1", "l2"),
		},
	}
}

// BenchmarkTopology advances each warmed scenario one simulated second
// per op, exactly like BenchmarkEngine, so the two series are directly
// comparable event for event.
func BenchmarkTopology(b *testing.B) {
	for _, name := range []string{"single", "chain3"} {
		sp := topologyScenarios()[name]
		b.Run(name, func(b *testing.B) {
			n, _, err := netsim.Build(sp)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(5 * time.Second) // warm up past slow start
			start := n.Events()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Run(time.Second)
			}
			b.StopTimer()
			events := n.Events() - start
			if events == 0 {
				b.Fatal("no events processed")
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// TestTopologyScenariosValid pins the benchmark pair: both specs must
// validate and build, and they must stay comparable — same groups, and
// the chain's bottleneck equal to the single link's capacity.
func TestTopologyScenariosValid(t *testing.T) {
	specs := topologyScenarios()
	for name, sp := range specs {
		if _, _, err := netsim.Build(sp); err != nil {
			t.Errorf("benchmark scenario %s no longer builds: %v", name, err)
		}
	}
	single, chain := specs["single"], specs["chain3"]
	if min := chain.PathMinCapacity(0); min != single.Capacity {
		t.Errorf("chain bottleneck %v != single-link capacity %v; the pair is no longer comparable", min, single.Capacity)
	}
	if len(single.Groups) != len(chain.Groups) {
		t.Errorf("group sets diverge: %d vs %d", len(single.Groups), len(chain.Groups))
	}
}
