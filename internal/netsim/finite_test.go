package netsim

import (
	"testing"
	"time"

	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/units"
)

func TestFiniteFlowStopsAfterTransfer(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, holder := fixedCtor(50*units.MSS, 0)
	size := 200 * units.MSS
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor, TransferBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(30 * time.Second)
	fw := *holder
	if got := units.Bytes(fw.sent) * units.MSS; got != size {
		t.Errorf("sent %v, want exactly the transfer size %v", got, size)
	}
	if f.Transfers() != 1 {
		t.Errorf("Transfers = %d, want 1", f.Transfers())
	}
	if f.Inflight() != 0 {
		t.Errorf("inflight = %v after completed transfer", f.Inflight())
	}
}

func TestOnOffFlowRestarts(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{
		RTT: 20 * time.Millisecond, Algorithm: ctor,
		TransferBytes: 100 * units.MSS, RestartAfter: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20 * time.Second)
	// Each transfer of 100 packets at 10 Mbps takes ~120 ms plus the
	// 500 ms off period: expect dozens of completed transfers.
	if f.Transfers() < 10 {
		t.Errorf("Transfers = %d, want at least 10", f.Transfers())
	}
}

func TestInfiniteFlowUnaffected(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(50*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)
	if f.Transfers() != 0 {
		t.Errorf("infinite flow reported %d transfers", f.Transfers())
	}
	if f.Stats().Throughput <= 0 {
		t.Error("infinite flow idle")
	}
}

// A bulk BBR vs CUBIC contest should be robust to background on/off
// short-flow traffic: both still share the remaining capacity, and the
// short flows complete (the §5 "more diverse workloads" probe).
func TestBulkContestWithShortFlowBackground(t *testing.T) {
	const rtt = 40 * time.Millisecond
	capacity := 50 * units.Mbps
	cfg := Config{Capacity: capacity, Buffer: units.BufferBytes(capacity, rtt, 3), AckJitter: time.Millisecond, Seed: 5}
	n := mustNetwork(t, cfg)
	fb, err := n.AddFlow(FlowConfig{Name: "bbr", RTT: rtt, Algorithm: bbr.New})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := n.AddFlow(FlowConfig{Name: "cubic", RTT: rtt, Algorithm: cubic.New})
	if err != nil {
		t.Fatal(err)
	}
	var shorts []*Flow
	for i := 0; i < 4; i++ {
		f, err := n.AddFlow(FlowConfig{
			RTT: rtt, Algorithm: cubic.New,
			TransferBytes: 500 * units.MSS, // ~730 kB objects
			RestartAfter:  2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		shorts = append(shorts, f)
	}
	n.Run(60 * time.Second)
	for i, f := range shorts {
		if f.Transfers() < 5 {
			t.Errorf("short flow %d completed only %d transfers", i, f.Transfers())
		}
	}
	bbrT, cubicT := float64(fb.Stats().Throughput), float64(fc.Stats().Throughput)
	if bbrT <= 0 || cubicT <= 0 {
		t.Fatalf("bulk flows starved: bbr %v cubic %v", bbrT, cubicT)
	}
	// The two bulk flows should still consume the majority of the link.
	if share := (bbrT + cubicT) / float64(capacity); share < 0.5 {
		t.Errorf("bulk flows hold only %.0f%% of the link", 100*share)
	}
}
