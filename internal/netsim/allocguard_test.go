package netsim_test

import (
	"testing"
	"time"

	"bbrnash/internal/netsim"
)

// TestSteadyStateZeroAllocs pins the engine's core invariant: once a
// simulation is warmed up (free lists populated, queues at their high-water
// marks), advancing simulated time allocates nothing. Every packet, ACK,
// loss, pacer fire and flow edge must ride the typed event arena and the
// packet free list. A regression here — a closure creeping into the hot
// path, an event queue growing past its Presize reservation — shows up as a
// nonzero count.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for name, sp := range engineScenarios() {
		t.Run(name, func(t *testing.T) {
			n, _, err := netsim.Build(sp)
			if err != nil {
				t.Fatal(err)
			}
			// Warm until slow start, queue growth and the congestion
			// windows' overshoot have pushed every pool to its peak.
			n.Run(8 * time.Second)
			allocs := testing.AllocsPerRun(5, func() {
				n.Run(time.Second)
			})
			if allocs != 0 {
				t.Fatalf("steady state allocated %.1f times per simulated second; want 0", allocs)
			}
		})
	}
}
