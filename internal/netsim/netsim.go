// Package netsim is a deterministic, packet-level, discrete-event simulator
// of the paper's experimental topology and its multi-bottleneck
// generalizations: bulk TCP senders crossing one or more drop-tail FIFO
// links, with per-flow round-trip propagation delays.
//
// It substitutes for the paper's Linux testbed. The abstractions match what
// the paper's model depends on:
//
//   - drop-tail queues of configurable byte capacity, each served at its
//     link rate (the paper's single shared bottleneck is the one-link
//     special case),
//   - per-packet ACK clocking with one-RTT feedback delay; when a link has
//     a reverse-direction twin the ACK stream crosses a real return queue,
//   - loss only by queue overflow, detected by the sender about one RTT
//     after the drop (as duplicate ACKs would reveal it),
//   - per-packet delivery-rate samples computed with the estimator BBR
//     specifies, so rate-based algorithms behave faithfully.
//
// Senders have infinite backlog: a "retransmission" is indistinguishable
// from new data, so goodput equals delivered bytes. Simulations are
// single-threaded and fully deterministic given the configuration and seed.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/rng"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// LinkConfig describes one named directed link of a multi-link topology
// (see scenario.Link for the spec-level form and field semantics).
type LinkConfig struct {
	// Name identifies the link in flow paths, statistics and traces.
	Name string
	// Capacity is the link rate; Buffer the drop-tail queue capacity.
	Capacity units.Rate
	Buffer   units.Bytes
	// Faults injects deterministic adverse conditions on this link.
	Faults scenario.Faults
	// RevCapacity/RevBuffer, when set, give the link a reverse-direction
	// twin that the ACK stream traverses at units.AckBytes per ACK.
	RevCapacity units.Rate
	RevBuffer   units.Bytes
}

// Config describes the network: either the legacy single shared bottleneck
// (Capacity/Buffer/Faults) or an explicit multi-link topology (Links). The
// two forms are mutually exclusive; the scalar form is exactly a one-link
// topology named scenario.DefaultLinkName.
type Config struct {
	// Capacity is the bottleneck link rate (legacy single-link form).
	Capacity units.Rate
	// Buffer is the drop-tail queue capacity in bytes (waiting room).
	Buffer units.Bytes
	// MSS is the segment size used by all flows; defaults to units.MSS.
	MSS units.Bytes
	// AckJitter adds a uniform random delay in [0, AckJitter) to every
	// ACK's return path. Deterministic drop-tail simulations exhibit
	// phase effects (Floyd & Jacobson's "traffic phase effects"): one
	// flow's ack-clocked arrivals can lock onto the queue's free slots
	// and systematically win or lose at overflow instants. A jitter of a
	// fraction of the RTT models real paths' delay variation and breaks
	// the lockout. Zero (the default) keeps the simulator fully
	// deterministic given flow start times.
	AckJitter time.Duration
	// Seed drives AckJitter randomness; runs are reproducible for a
	// given seed.
	Seed uint64
	// Faults injects deterministic adverse-link conditions — stochastic
	// data-packet loss, ACK-path loss, capacity flaps, burst-loss
	// episodes — driven off the same seeded RNG stream as AckJitter, so a
	// faulted run is exactly as reproducible as a clean one. The zero
	// value is a clean link and draws nothing from the RNG. With Links
	// set, faults are per-link instead.
	Faults scenario.Faults
	// Links, when set, replaces the scalar bottleneck with an explicit
	// topology. Flow paths (FlowConfig.Path) then name these links.
	Links []LinkConfig
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.MSS
	}
	return c
}

// linkConfigs returns the canonical link list: Links when set, otherwise
// the scalar bottleneck as a one-link topology.
func (c Config) linkConfigs() []LinkConfig {
	if len(c.Links) > 0 {
		return c.Links
	}
	return []LinkConfig{{Name: scenario.DefaultLinkName, Capacity: c.Capacity, Buffer: c.Buffer, Faults: c.Faults}}
}

func (c Config) validate() error {
	c = c.withDefaults()
	if len(c.Links) > 0 && (c.Capacity != 0 || c.Buffer != 0 || c.Faults != (scenario.Faults{})) {
		return errors.New("netsim: Links and scalar Capacity/Buffer/Faults are mutually exclusive")
	}
	seen := make(map[string]bool, len(c.linkConfigs()))
	for _, lc := range c.linkConfigs() {
		if lc.Name == "" {
			return errors.New("netsim: link needs a Name")
		}
		if seen[lc.Name] {
			return fmt.Errorf("netsim: duplicate link name %q", lc.Name)
		}
		seen[lc.Name] = true
		if lc.Capacity <= 0 {
			return fmt.Errorf("netsim: link %q: Capacity must be positive", lc.Name)
		}
		if lc.Buffer < c.MSS {
			return fmt.Errorf("netsim: link %q: Buffer (%v) must hold at least one segment (%v)", lc.Name, lc.Buffer, c.MSS)
		}
		if err := lc.Faults.Validate(); err != nil {
			return fmt.Errorf("netsim: link %q: %w", lc.Name, err)
		}
		if lc.RevCapacity < 0 {
			return fmt.Errorf("netsim: link %q: RevCapacity must be non-negative", lc.Name)
		}
		if lc.RevCapacity > 0 && lc.RevBuffer < units.AckBytes {
			return fmt.Errorf("netsim: link %q: RevBuffer (%v) must hold at least one ACK (%v)", lc.Name, lc.RevBuffer, units.AckBytes)
		}
	}
	return nil
}

// FlowConfig describes one sender.
type FlowConfig struct {
	// Name labels the flow in statistics.
	Name string
	// RTT is the flow's base round-trip propagation delay (no queueing).
	RTT time.Duration
	// Start is when the flow begins sending.
	Start time.Duration
	// Algorithm constructs the congestion-control instance for this flow.
	Algorithm cc.Constructor
	// Path is the ordered list of link names the flow's data traverses.
	// Empty means the first configured link — the legacy single-bottleneck
	// path. ACKs return across the reverse twins of the path's links (in
	// reverse order) when any are configured.
	Path []string
	// TransferBytes, when positive, makes the flow finite: it stops after
	// sending this much data. The default (zero) is an infinite bulk flow,
	// the paper's workload.
	TransferBytes units.Bytes
	// RestartAfter, with TransferBytes set, restarts the transfer this
	// long after it completes — an on/off source modeling the chunky
	// short-flow traffic the paper's §5 discussion raises. Zero means the
	// flow stays stopped after one transfer.
	RestartAfter time.Duration
}

// Network is one simulation instance. Create with New, add flows, then Run.
// A Network is not safe for concurrent use; run independent simulations in
// separate Networks.
type Network struct {
	cfg    Config
	loop   eventsim.Loop
	links  []*link // forward links, in configuration order
	revs   []*link // reverse twins, in forward-link order
	byName map[string]*link
	flows  []*Flow
	free   []*packet
	rng    *rng.Source

	// Observation hooks (see OnDrop, OnStateChange, OnRateChange). All are
	// nil by default; a nil hook costs one pointer compare on its path.
	dropHook  func(DropEvent)
	stateHook func(StateEvent)
	rateHook  func(RateEvent)
}

// New creates a network with the given configuration.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, rng: rng.New(cfg.Seed)}
	lcs := cfg.linkConfigs()
	n.byName = make(map[string]*link, len(lcs))
	for i, lc := range lcs {
		l := newLink(n, lc.Name, lc.Capacity, lc.Buffer, lc.Faults)
		// The first link's service completions ride the loop's single-slot
		// fast lane (it is the only link of every legacy scenario); the
		// rest use the regular queue.
		l.fast = i == 0
		n.links = append(n.links, l)
		n.byName[lc.Name] = l
		if lc.RevCapacity > 0 {
			r := newLink(n, lc.Name+"~rev", lc.RevCapacity, lc.RevBuffer,
				scenario.Faults{AckLossRate: lc.Faults.AckLossRate})
			r.rev = true
			l.twin = r
			n.revs = append(n.revs, r)
		}
	}
	n.scheduleFaults()
	return n, nil
}

// scheduleFaults arms the time-driven fault machinery per forward link: the
// capacity flap's square wave and the burst-loss episode clock. Both are
// self-rescheduling event chains driven purely by simulated time, so they
// consume no RNG draws and a fault-free configuration changes nothing at
// all.
func (n *Network) scheduleFaults() {
	for _, l := range n.links {
		l := l
		f := l.faults
		if f.FlapDepth > 0 && f.FlapPeriod > 0 {
			half := f.FlapPeriod / 2
			low := units.Rate(float64(l.capacity) * (1 - f.FlapDepth))
			up := true
			var toggle func()
			toggle = func() {
				up = !up
				if up {
					l.rate = l.capacity
				} else {
					l.rate = low
				}
				if h := n.rateHook; h != nil {
					h(RateEvent{Time: n.loop.Now(), Link: l.name, Rate: l.rate})
				}
				n.loop.After(half, toggle)
			}
			n.loop.After(half, toggle)
		}
		if f.BurstLen > 0 && f.BurstEvery > 0 {
			var episode func()
			episode = func() {
				l.burstRemaining = f.BurstLen
				n.loop.After(f.BurstEvery, episode)
			}
			n.loop.After(f.BurstEvery, episode)
		}
	}
}

// DropEvent describes one packet dropped at a link, for drop-trace
// observation in tests and tools.
type DropEvent struct {
	// Time is the simulated drop instant.
	Time eventsim.Time
	// Link names the link that dropped the packet.
	Link string
	// Flow is the owning flow's name; Seq its sequence number.
	Flow string
	Seq  uint64
	// Injected distinguishes fault-injected drops (stochastic or burst)
	// from drop-tail buffer overflow.
	Injected bool
}

// OnDrop registers fn to observe every drop, in drop order. Set it before
// Run; a nil fn disables observation.
func (n *Network) OnDrop(fn func(DropEvent)) { n.dropHook = fn }

// StateEvent describes one congestion-control state transition of a flow
// whose algorithm implements cc.StateReporter (e.g. BBR entering ProbeRTT).
type StateEvent struct {
	// Time is the simulated instant the transition was observed — the ACK
	// or loss event that caused it.
	Time eventsim.Time
	// Flow is the owning flow's name.
	Flow string
	// State is the name of the state entered.
	State string
}

// OnStateChange registers fn to observe congestion-control state
// transitions, in event order. Only flows whose algorithm implements
// cc.StateReporter produce events; the first event for a flow reports the
// state observed at its first ACK or loss. Set it before Run; a nil fn
// disables observation at zero cost on the ACK path.
func (n *Network) OnStateChange(fn func(StateEvent)) { n.stateHook = fn }

// RateEvent describes one change of a link's effective service rate (a
// capacity flap edge).
type RateEvent struct {
	// Time is the simulated instant of the rate change.
	Time eventsim.Time
	// Link names the flapping link.
	Link string
	// Rate is the new effective service rate.
	Rate units.Rate
}

// OnRateChange registers fn to observe effective-rate changes, in event
// order. Set it before Run; a nil fn disables observation.
func (n *Network) OnRateChange(fn func(RateEvent)) { n.rateHook = fn }

// AddFlow attaches a sender. All flows must be added before Run is first
// called.
func (n *Network) AddFlow(fc FlowConfig) (*Flow, error) {
	if fc.RTT <= 0 {
		return nil, errors.New("netsim: flow RTT must be positive")
	}
	if fc.Algorithm == nil {
		return nil, errors.New("netsim: flow needs an Algorithm constructor")
	}
	if fc.Start < 0 {
		return nil, errors.New("netsim: flow Start must be non-negative")
	}
	if fc.Name == "" {
		fc.Name = fmt.Sprintf("flow%d", len(n.flows))
	}
	path := n.links[:1]
	if len(fc.Path) > 0 {
		path = make([]*link, len(fc.Path))
		seen := make(map[*link]bool, len(fc.Path))
		for i, name := range fc.Path {
			l, ok := n.byName[name]
			if !ok {
				return nil, fmt.Errorf("netsim: flow path names unknown link %q", name)
			}
			if seen[l] {
				return nil, fmt.Errorf("netsim: flow path repeats link %q", name)
			}
			seen[l] = true
			path[i] = l
		}
	}
	alg := fc.Algorithm(cc.Params{MSS: n.cfg.MSS}.WithDefaults())
	f := &Flow{
		net:          n,
		id:           len(n.flows),
		name:         fc.Name,
		rtt:          fc.RTT,
		alg:          alg,
		path:         path,
		transferSize: fc.TransferBytes,
		restartAfter: fc.RestartAfter,
	}
	// ACKs cross the reverse twins of the path's links in reverse order;
	// links without a twin contribute only the propagation delay already
	// inside rtt.
	for i := len(path) - 1; i >= 0; i-- {
		if t := path[i].twin; t != nil {
			f.ackPath = append(f.ackPath, t)
		}
	}
	// The type assertion happens once here, not per event; the pacer's
	// method-value closure is the flow's only per-flow allocation beyond
	// the struct itself, and arming it never allocates again.
	f.reporter, _ = alg.(cc.StateReporter)
	f.pacer.InitEvent(&n.loop, evPacerFire, f)
	n.flows = append(n.flows, f)
	n.loop.ScheduleEvent(eventsim.At(fc.Start), evFlowStart, f)
	return f, nil
}

// Presize reserves event-queue and packet-pool capacity for the attached
// flows so steady state is reached without growth reallocations: one
// potential in-flight packet per BDP-plus-buffer segment of every forward
// link (each holding at most one pending event), one slot per ACK a
// reverse twin can hold, plus per-flow timers and fault chains. Called by
// Build once the flow set is known; harmless to skip or call again — it
// only ever grows capacity and never changes behavior.
func (n *Network) Presize() {
	maxRTT := time.Duration(0)
	for _, f := range n.flows {
		if f.rtt > maxRTT {
			maxRTT = f.rtt
		}
	}
	total := 0
	for _, l := range n.links {
		inflight := int((units.BDP(l.capacity, maxRTT)+l.buffer)/n.cfg.MSS) + 1
		total += inflight
		if cap(l.waiting) < inflight {
			waiting := make([]*packet, len(l.waiting), 2*inflight)
			copy(waiting, l.waiting)
			l.waiting = waiting
		}
	}
	for _, r := range n.revs {
		acks := int(r.buffer/units.AckBytes) + 1
		total += acks
		if cap(r.waiting) < acks {
			waiting := make([]*packet, len(r.waiting), 2*acks)
			copy(waiting, r.waiting)
			r.waiting = waiting
		}
	}
	// Congestion windows overshoot the pipe between loss events (that is
	// what fills the buffer); double the physical bound and add per-flow
	// slack for pacer, start and restart events.
	events := 2*total + 4*len(n.flows) + 16
	n.loop.Reserve(events)
	if cap(n.free) < total {
		free := make([]*packet, len(n.free), 2*total)
		copy(free, n.free)
		n.free = free
		arena := make([]packet, total)
		for i := range arena {
			n.freePacket(&arena[i])
		}
	}
}

// Run advances the simulation by d of simulated time.
func (n *Network) Run(d time.Duration) { n.loop.RunFor(d) }

// Now returns the current simulation time.
func (n *Network) Now() eventsim.Time { return n.loop.Now() }

// Events reports how many events have been processed (for benchmarks).
func (n *Network) Events() uint64 { return n.loop.Processed() }

// StartMeasurement resets all measurement windows (flow throughput, queue
// statistics) at the current instant. Call it after a warm-up period; the
// paper's experiments measure from flow start, which corresponds to calling
// it at time zero (or never).
func (n *Network) StartMeasurement() {
	now := n.loop.Now()
	for _, f := range n.flows {
		f.resetMeasurement(now)
	}
	for _, l := range n.links {
		l.resetMeasurement(now)
	}
	for _, r := range n.revs {
		r.resetMeasurement(now)
	}
}

// Flows returns the attached flows in creation order.
func (n *Network) Flows() []*Flow { return n.flows }

// Capacity returns the first (for legacy configurations, the only) link's
// nominal rate.
func (n *Network) Capacity() units.Rate { return n.links[0].capacity }

// Buffer returns the first link's queue capacity in bytes.
func (n *Network) Buffer() units.Bytes { return n.links[0].buffer }

// MSS returns the segment size in use.
func (n *Network) MSS() units.Bytes { return n.cfg.MSS }

// QueueBytes returns the bytes currently waiting in the first link's
// buffer (the bottleneck of every legacy configuration).
func (n *Network) QueueBytes() units.Bytes { return n.links[0].waitingBytes }

// EffectiveRate returns the first link's current service rate: its
// capacity, or less during a capacity flap's low phase.
func (n *Network) EffectiveRate() units.Rate { return n.links[0].rate }

// linkStats snapshots one link's statistics over the current measurement
// window.
func (n *Network) linkStats(l *link) LinkStats {
	now := n.loop.Now()
	util := 0.0
	if r := l.departed.RateSince(now); l.capacity > 0 {
		util = float64(r / l.capacity)
	}
	return LinkStats{
		Name:               l.name,
		Utilization:        util,
		MeanQueueOccupancy: units.Bytes(l.occupancy.Average(now)),
		MaxQueueOccupancy:  units.Bytes(l.occupancy.Max()),
		MeanQueueDelay:     l.delay.MeanDuration(),
		MaxQueueDelay:      time.Duration(l.delay.Max()),
		Drops:              int(l.drops.Windowed()),
		InjectedDrops:      int(l.injected.Windowed()),
		AckLosses:          int(l.ackLost.Windowed()),
	}
}

// Link returns statistics for the first link (the bottleneck of every
// legacy configuration). Multi-link topologies use PerLink.
func (n *Network) Link() LinkStats { return n.linkStats(n.links[0]) }

// PerLink returns statistics for every link: the forward links in
// configuration order, then the reverse twins in the same order.
func (n *Network) PerLink() []LinkStats {
	out := make([]LinkStats, 0, len(n.links)+len(n.revs))
	for _, l := range n.links {
		out = append(out, n.linkStats(l))
	}
	for _, r := range n.revs {
		out = append(out, n.linkStats(r))
	}
	return out
}

// LinkStats is a snapshot of link-level statistics over the current
// measurement window.
type LinkStats struct {
	// Name identifies the link; reverse twins carry the forward link's
	// name with a "~rev" suffix.
	Name string
	// Utilization is delivered rate divided by capacity (0..1).
	Utilization float64
	// MeanQueueOccupancy is the time-weighted average of waiting bytes.
	MeanQueueOccupancy units.Bytes
	// MaxQueueOccupancy is the peak of waiting bytes.
	MaxQueueOccupancy units.Bytes
	// MeanQueueDelay is the mean per-packet queueing delay (wait plus
	// transmission time).
	MeanQueueDelay time.Duration
	// MaxQueueDelay is the largest per-packet queueing delay.
	MaxQueueDelay time.Duration
	// Drops counts packets lost to buffer overflow.
	Drops int
	// InjectedDrops counts packets dropped by fault injection (stochastic
	// loss and burst episodes), disjoint from Drops.
	InjectedDrops int
	// AckLosses counts ACKs lost on the return path by fault injection —
	// or, on a reverse twin, lost to its queue as well.
	AckLosses int
}

// packet is an in-flight segment. Packets are pooled per network.
type packet struct {
	flow *Flow
	seq  uint64
	size units.Bytes

	// hop indexes the flow's forward path while the packet is in transit;
	// ackHop indexes the flow's reverse (ACK) path afterwards.
	hop    int32
	ackHop int32

	sentAt     eventsim.Time
	enqueuedAt eventsim.Time

	// Delivery-rate estimator state captured at send time (per the BBR
	// delivery-rate-estimation algorithm).
	delivered     units.Bytes
	deliveredTime eventsim.Time
	firstSent     eventsim.Time
}

func (n *Network) newPacket() *packet {
	if len(n.free) == 0 {
		return &packet{}
	}
	p := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	*p = packet{}
	return p
}

func (n *Network) freePacket(p *packet) {
	p.flow = nil
	n.free = append(n.free, p)
}
