// Package netsim is a deterministic, packet-level, discrete-event simulator
// of the paper's experimental topology: N bulk TCP senders sharing a single
// drop-tail FIFO bottleneck, with per-flow round-trip propagation delays.
//
// It substitutes for the paper's Linux testbed. The abstractions match what
// the paper's model depends on:
//
//   - a drop-tail queue of configurable byte capacity served at link rate C,
//   - per-packet ACK clocking with one-RTT feedback delay,
//   - loss only by queue overflow, detected by the sender about one RTT
//     after the drop (as duplicate ACKs would reveal it),
//   - per-packet delivery-rate samples computed with the estimator BBR
//     specifies, so rate-based algorithms behave faithfully.
//
// Senders have infinite backlog: a "retransmission" is indistinguishable
// from new data, so goodput equals delivered bytes. Simulations are
// single-threaded and fully deterministic given the configuration and seed.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/rng"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// Config describes the shared bottleneck.
type Config struct {
	// Capacity is the bottleneck link rate.
	Capacity units.Rate
	// Buffer is the drop-tail queue capacity in bytes (waiting room).
	Buffer units.Bytes
	// MSS is the segment size used by all flows; defaults to units.MSS.
	MSS units.Bytes
	// AckJitter adds a uniform random delay in [0, AckJitter) to every
	// ACK's return path. Deterministic drop-tail simulations exhibit
	// phase effects (Floyd & Jacobson's "traffic phase effects"): one
	// flow's ack-clocked arrivals can lock onto the queue's free slots
	// and systematically win or lose at overflow instants. A jitter of a
	// fraction of the RTT models real paths' delay variation and breaks
	// the lockout. Zero (the default) keeps the simulator fully
	// deterministic given flow start times.
	AckJitter time.Duration
	// Seed drives AckJitter randomness; runs are reproducible for a
	// given seed.
	Seed uint64
	// Faults injects deterministic adverse-link conditions — stochastic
	// data-packet loss, ACK-path loss, capacity flaps, burst-loss
	// episodes — driven off the same seeded RNG stream as AckJitter, so a
	// faulted run is exactly as reproducible as a clean one. The zero
	// value is a clean link and draws nothing from the RNG.
	Faults scenario.Faults
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.MSS
	}
	return c
}

func (c Config) validate() error {
	c = c.withDefaults()
	if c.Capacity <= 0 {
		return errors.New("netsim: Capacity must be positive")
	}
	if c.Buffer < c.MSS {
		return fmt.Errorf("netsim: Buffer (%v) must hold at least one segment (%v)", c.Buffer, c.MSS)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	return nil
}

// FlowConfig describes one sender.
type FlowConfig struct {
	// Name labels the flow in statistics.
	Name string
	// RTT is the flow's base round-trip propagation delay (no queueing).
	RTT time.Duration
	// Start is when the flow begins sending.
	Start time.Duration
	// Algorithm constructs the congestion-control instance for this flow.
	Algorithm cc.Constructor
	// TransferBytes, when positive, makes the flow finite: it stops after
	// sending this much data. The default (zero) is an infinite bulk flow,
	// the paper's workload.
	TransferBytes units.Bytes
	// RestartAfter, with TransferBytes set, restarts the transfer this
	// long after it completes — an on/off source modeling the chunky
	// short-flow traffic the paper's §5 discussion raises. Zero means the
	// flow stays stopped after one transfer.
	RestartAfter time.Duration
}

// Network is one simulation instance. Create with New, add flows, then Run.
// A Network is not safe for concurrent use; run independent simulations in
// separate Networks.
type Network struct {
	cfg   Config
	loop  eventsim.Loop
	link  *link
	flows []*Flow
	free  []*packet
	rng   *rng.Source

	// Fault-injection state (see Config.Faults).
	burstRemaining int

	// Observation hooks (see OnDrop, OnStateChange, OnRateChange). All are
	// nil by default; a nil hook costs one pointer compare on its path.
	dropHook  func(DropEvent)
	stateHook func(StateEvent)
	rateHook  func(RateEvent)
}

// New creates a network with the given bottleneck configuration.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, rng: rng.New(cfg.Seed)}
	n.link = newLink(n, cfg.Capacity, cfg.Buffer)
	n.scheduleFaults()
	return n, nil
}

// scheduleFaults arms the time-driven fault machinery: the capacity flap's
// square wave and the burst-loss episode clock. Both are self-rescheduling
// event chains driven purely by simulated time, so they consume no RNG
// draws and a fault-free configuration changes nothing at all.
func (n *Network) scheduleFaults() {
	f := n.cfg.Faults
	if f.FlapDepth > 0 && f.FlapPeriod > 0 {
		half := f.FlapPeriod / 2
		low := units.Rate(float64(n.cfg.Capacity) * (1 - f.FlapDepth))
		up := true
		var toggle func()
		toggle = func() {
			up = !up
			if up {
				n.link.rate = n.cfg.Capacity
			} else {
				n.link.rate = low
			}
			if h := n.rateHook; h != nil {
				h(RateEvent{Time: n.loop.Now(), Rate: n.link.rate})
			}
			n.loop.After(half, toggle)
		}
		n.loop.After(half, toggle)
	}
	if f.BurstLen > 0 && f.BurstEvery > 0 {
		var episode func()
		episode = func() {
			n.burstRemaining = f.BurstLen
			n.loop.After(f.BurstEvery, episode)
		}
		n.loop.After(f.BurstEvery, episode)
	}
}

// injectDrop decides whether an arriving data packet is claimed by fault
// injection: an open burst episode consumes it unconditionally (no RNG
// draw); otherwise the stochastic loss rate draws once. Called only from
// the single-threaded event loop, in arrival order, so the draw sequence —
// and therefore the drop trace — is a pure function of spec and seed.
func (n *Network) injectDrop() bool {
	if n.burstRemaining > 0 {
		n.burstRemaining--
		return true
	}
	r := n.cfg.Faults.LossRate
	return r > 0 && n.rng.Float64() < r
}

// DropEvent describes one packet dropped at the bottleneck, for drop-trace
// observation in tests and tools.
type DropEvent struct {
	// Time is the simulated drop instant.
	Time eventsim.Time
	// Flow is the owning flow's name; Seq its sequence number.
	Flow string
	Seq  uint64
	// Injected distinguishes fault-injected drops (stochastic or burst)
	// from drop-tail buffer overflow.
	Injected bool
}

// OnDrop registers fn to observe every drop at the bottleneck, in drop
// order. Set it before Run; a nil fn disables observation.
func (n *Network) OnDrop(fn func(DropEvent)) { n.dropHook = fn }

// StateEvent describes one congestion-control state transition of a flow
// whose algorithm implements cc.StateReporter (e.g. BBR entering ProbeRTT).
type StateEvent struct {
	// Time is the simulated instant the transition was observed — the ACK
	// or loss event that caused it.
	Time eventsim.Time
	// Flow is the owning flow's name.
	Flow string
	// State is the name of the state entered.
	State string
}

// OnStateChange registers fn to observe congestion-control state
// transitions, in event order. Only flows whose algorithm implements
// cc.StateReporter produce events; the first event for a flow reports the
// state observed at its first ACK or loss. Set it before Run; a nil fn
// disables observation at zero cost on the ACK path.
func (n *Network) OnStateChange(fn func(StateEvent)) { n.stateHook = fn }

// RateEvent describes one change of the bottleneck's effective service rate
// (a capacity flap edge).
type RateEvent struct {
	// Time is the simulated instant of the rate change.
	Time eventsim.Time
	// Rate is the new effective service rate.
	Rate units.Rate
}

// OnRateChange registers fn to observe effective-rate changes, in event
// order. Set it before Run; a nil fn disables observation.
func (n *Network) OnRateChange(fn func(RateEvent)) { n.rateHook = fn }

// AddFlow attaches a sender to the bottleneck. All flows must be added
// before Run is first called.
func (n *Network) AddFlow(fc FlowConfig) (*Flow, error) {
	if fc.RTT <= 0 {
		return nil, errors.New("netsim: flow RTT must be positive")
	}
	if fc.Algorithm == nil {
		return nil, errors.New("netsim: flow needs an Algorithm constructor")
	}
	if fc.Start < 0 {
		return nil, errors.New("netsim: flow Start must be non-negative")
	}
	if fc.Name == "" {
		fc.Name = fmt.Sprintf("flow%d", len(n.flows))
	}
	alg := fc.Algorithm(cc.Params{MSS: n.cfg.MSS}.WithDefaults())
	f := &Flow{
		net:          n,
		id:           len(n.flows),
		name:         fc.Name,
		rtt:          fc.RTT,
		alg:          alg,
		transferSize: fc.TransferBytes,
		restartAfter: fc.RestartAfter,
	}
	// The type assertion happens once here, not per event; the pacer's
	// method-value closure is the flow's only per-flow allocation beyond
	// the struct itself, and arming it never allocates again.
	f.reporter, _ = alg.(cc.StateReporter)
	f.pacer.InitEvent(&n.loop, evPacerFire, f)
	n.flows = append(n.flows, f)
	n.loop.ScheduleEvent(eventsim.At(fc.Start), evFlowStart, f)
	return f, nil
}

// Presize reserves event-queue and packet-pool capacity for the attached
// flows so steady state is reached without growth reallocations: one
// potential in-flight packet per BDP-plus-buffer segment (each holding at
// most one pending event), plus per-flow timers and fault chains. Called
// by Build once the flow set is known; harmless to skip or call again —
// it only ever grows capacity and never changes behavior.
func (n *Network) Presize() {
	maxRTT := time.Duration(0)
	for _, f := range n.flows {
		if f.rtt > maxRTT {
			maxRTT = f.rtt
		}
	}
	inflight := int((units.BDP(n.cfg.Capacity, maxRTT)+n.cfg.Buffer)/n.cfg.MSS) + 1
	// Congestion windows overshoot the pipe between loss events (that is
	// what fills the buffer); double the physical bound and add per-flow
	// slack for pacer, start and restart events.
	events := 2*inflight + 4*len(n.flows) + 16
	n.loop.Reserve(events)
	if cap(n.link.waiting) < inflight {
		waiting := make([]*packet, len(n.link.waiting), 2*inflight)
		copy(waiting, n.link.waiting)
		n.link.waiting = waiting
	}
	if cap(n.free) < inflight {
		free := make([]*packet, len(n.free), 2*inflight)
		copy(free, n.free)
		n.free = free
		arena := make([]packet, inflight)
		for i := range arena {
			n.freePacket(&arena[i])
		}
	}
}

// Run advances the simulation by d of simulated time.
func (n *Network) Run(d time.Duration) { n.loop.RunFor(d) }

// Now returns the current simulation time.
func (n *Network) Now() eventsim.Time { return n.loop.Now() }

// Events reports how many events have been processed (for benchmarks).
func (n *Network) Events() uint64 { return n.loop.Processed() }

// StartMeasurement resets all measurement windows (flow throughput, queue
// statistics) at the current instant. Call it after a warm-up period; the
// paper's experiments measure from flow start, which corresponds to calling
// it at time zero (or never).
func (n *Network) StartMeasurement() {
	now := n.loop.Now()
	for _, f := range n.flows {
		f.resetMeasurement(now)
	}
	n.link.resetMeasurement(now)
}

// Flows returns the attached flows in creation order.
func (n *Network) Flows() []*Flow { return n.flows }

// Capacity returns the bottleneck rate.
func (n *Network) Capacity() units.Rate { return n.cfg.Capacity }

// Buffer returns the bottleneck queue capacity in bytes.
func (n *Network) Buffer() units.Bytes { return n.cfg.Buffer }

// MSS returns the segment size in use.
func (n *Network) MSS() units.Bytes { return n.cfg.MSS }

// QueueBytes returns the bytes currently waiting in the bottleneck buffer.
func (n *Network) QueueBytes() units.Bytes { return n.link.waitingBytes }

// EffectiveRate returns the bottleneck's current service rate: Capacity, or
// less during a capacity flap's low phase.
func (n *Network) EffectiveRate() units.Rate { return n.link.rate }

// Link returns statistics for the bottleneck.
func (n *Network) Link() LinkStats {
	now := n.loop.Now()
	l := n.link
	util := 0.0
	if r := l.departed.RateSince(now); n.cfg.Capacity > 0 {
		util = float64(r / n.cfg.Capacity)
	}
	return LinkStats{
		Utilization:        util,
		MeanQueueOccupancy: units.Bytes(l.occupancy.Average(now)),
		MaxQueueOccupancy:  units.Bytes(l.occupancy.Max()),
		MeanQueueDelay:     l.delay.MeanDuration(),
		MaxQueueDelay:      time.Duration(l.delay.Max()),
		Drops:              int(l.drops.Windowed()),
		InjectedDrops:      int(l.injected.Windowed()),
		AckLosses:          int(l.ackLost.Windowed()),
	}
}

// LinkStats is a snapshot of bottleneck-level statistics over the current
// measurement window.
type LinkStats struct {
	// Utilization is delivered rate divided by capacity (0..1).
	Utilization float64
	// MeanQueueOccupancy is the time-weighted average of waiting bytes.
	MeanQueueOccupancy units.Bytes
	// MaxQueueOccupancy is the peak of waiting bytes.
	MaxQueueOccupancy units.Bytes
	// MeanQueueDelay is the mean per-packet queueing delay (wait plus
	// transmission time).
	MeanQueueDelay time.Duration
	// MaxQueueDelay is the largest per-packet queueing delay.
	MaxQueueDelay time.Duration
	// Drops counts packets lost to buffer overflow.
	Drops int
	// InjectedDrops counts packets dropped by fault injection (stochastic
	// loss and burst episodes), disjoint from Drops.
	InjectedDrops int
	// AckLosses counts ACKs lost on the return path by fault injection.
	AckLosses int
}

// packet is an in-flight segment. Packets are pooled per network.
type packet struct {
	flow *Flow
	seq  uint64
	size units.Bytes

	sentAt     eventsim.Time
	enqueuedAt eventsim.Time

	// Delivery-rate estimator state captured at send time (per the BBR
	// delivery-rate-estimation algorithm).
	delivered     units.Bytes
	deliveredTime eventsim.Time
	firstSent     eventsim.Time
}

func (n *Network) newPacket() *packet {
	if len(n.free) == 0 {
		return &packet{}
	}
	p := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	*p = packet{}
	return p
}

func (n *Network) freePacket(p *packet) {
	p.flow = nil
	n.free = append(n.free, p)
}
