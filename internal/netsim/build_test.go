package netsim

import (
	"testing"
	"time"

	"bbrnash/internal/scenario"
	"bbrnash/internal/units"

	// Build resolves algorithm names through the registry; link the ones
	// this test's specs name.
	_ "bbrnash/internal/cc/reno"
)

// TestBuildRunsSpec: a heterogeneous-RTT mixed-algorithm spec builds and
// runs, flows come back grouped in spec order, and the groups share the
// link.
func TestBuildRunsSpec(t *testing.T) {
	capacity := 50 * units.Mbps
	sp := scenario.Spec{
		Capacity:    capacity,
		Buffer:      units.BufferBytes(capacity, 40*time.Millisecond, 3),
		AckJitter:   scenario.DefaultAckJitter,
		StartJitter: scenario.DefaultStartJitter,
		Duration:    8 * time.Second,
		Seed:        3,
		Groups: []scenario.Group{
			{Algorithm: "bbr", Count: 2, RTT: 40 * time.Millisecond},
			{Algorithm: "cubic", Count: 0, RTT: 40 * time.Millisecond},
			{Algorithm: "reno", Count: 1, RTT: 80 * time.Millisecond},
		},
	}
	n, flows, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 || len(flows[0]) != 2 || len(flows[1]) != 0 || len(flows[2]) != 1 {
		t.Fatalf("group shape = %d/%d/%d groups=%d", len(flows[0]), len(flows[1]), len(flows[2]), len(flows))
	}
	if got := flows[2][0].Stats().Name; got != "g2.reno0" {
		t.Errorf("flow name = %q", got)
	}
	n.Run(sp.Duration)
	var agg units.Rate
	for _, g := range flows {
		for _, f := range g {
			st := f.Stats()
			if st.Throughput <= 0 {
				t.Errorf("flow %s throughput %v", st.Name, st.Throughput)
			}
			agg += st.Throughput
		}
	}
	if agg > capacity {
		t.Errorf("aggregate %v exceeds capacity %v", agg, capacity)
	}
	if util := n.Link().Utilization; util < 0.5 {
		t.Errorf("utilization %v", util)
	}
}

// TestBuildDeterministic: one spec, one simulation — identical stats on
// every build.
func TestBuildDeterministic(t *testing.T) {
	run := func() []FlowStats {
		sp := scenario.Mix("bbr", 1, 1, 50*units.Mbps,
			units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
			40*time.Millisecond, 8*time.Second)
		sp.Seed = 7
		n, flows, err := Build(sp)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(sp.Duration)
		var out []FlowStats
		for _, g := range flows {
			for _, f := range g {
				out = append(out, f.Stats())
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestBuildRejectsBadSpecs: topology validation and algorithm resolution
// both gate construction.
func TestBuildRejectsBadSpecs(t *testing.T) {
	sp := scenario.Mix("bbr", 1, 1, 50*units.Mbps, units.MB, 40*time.Millisecond, time.Second)
	sp.Capacity = 0
	if _, _, err := Build(sp); err == nil {
		t.Error("zero capacity accepted")
	}
	sp = scenario.Mix("hybla", 1, 1, 50*units.Mbps, units.MB, 40*time.Millisecond, time.Second)
	if _, _, err := Build(sp); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
