package netsim_test

// BenchmarkEngine is the canonical packet-engine benchmark: a fixed,
// versioned scenario set measured in simulated packet-events per second.
// scripts/bench.sh runs it and appends the parsed results (events/sec,
// ns/event, allocs/event, git SHA) to the checked-in BENCH_*.json
// trajectory files, so the perf curve of the engine survives re-anchors.
//
// The set deliberately spans the engine's regimes: a clean ack-clocked
// mix, a fault-heavy jittered link (drop/loss-detection path, RNG draws,
// flap and burst event chains), and a many-flow bottleneck (queue depth,
// pacer-timer churn). Scenario parameters are frozen — changing them
// breaks comparability of the BENCH_*.json series; add a new scenario
// instead.
//
// Each op advances an already-warmed simulation by one simulated second,
// so the numbers reflect steady state, not construction or slow-start.

import (
	"testing"
	"time"

	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"

	_ "bbrnash/internal/cc/bbr"
	_ "bbrnash/internal/cc/cubic"
	_ "bbrnash/internal/cc/reno"
)

// engineScenarios is the frozen benchmark scenario set.
func engineScenarios() map[string]scenario.Spec {
	return map[string]scenario.Spec{
		// mix10: the paper's bread-and-butter shape — 5 BBR vs 5 CUBIC on a
		// moderately buffered link, with the protocol's default jitters.
		"mix10": {
			Capacity:    80 * units.Mbps,
			Buffer:      units.BufferBytes(80*units.Mbps, 40*time.Millisecond, 2),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    time.Hour, // never reached; ops advance 1s at a time
			Seed:        1,
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 5, RTT: 40 * time.Millisecond},
				{Algorithm: "cubic", Count: 5, RTT: 40 * time.Millisecond},
			},
		},
		// faulted: every fault mechanism at once — stochastic loss, ACK
		// loss, capacity flaps, burst episodes — exercising the drop and
		// loss-detection event paths and the seeded RNG stream.
		"faulted": {
			Capacity:    60 * units.Mbps,
			Buffer:      units.BufferBytes(60*units.Mbps, 30*time.Millisecond, 1),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    time.Hour,
			Seed:        7,
			Faults: scenario.Faults{
				LossRate:    0.005,
				AckLossRate: 0.01,
				FlapPeriod:  2 * time.Second,
				FlapDepth:   0.3,
				BurstEvery:  3 * time.Second,
				BurstLen:    16,
			},
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 3, RTT: 30 * time.Millisecond},
				{Algorithm: "cubic", Count: 3, RTT: 30 * time.Millisecond},
				{Algorithm: "reno", Count: 2, RTT: 60 * time.Millisecond},
			},
		},
		// flows40: a deeper bottleneck with heterogeneous RTT groups; queue
		// pressure and pacer-timer churn dominate.
		"flows40": {
			Capacity:    300 * units.Mbps,
			Buffer:      units.BufferBytes(300*units.Mbps, 40*time.Millisecond, 3),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    time.Hour,
			Seed:        3,
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 10, RTT: 20 * time.Millisecond},
				{Algorithm: "cubic", Count: 10, RTT: 20 * time.Millisecond},
				{Algorithm: "bbr", Count: 10, RTT: 80 * time.Millisecond},
				{Algorithm: "cubic", Count: 10, RTT: 80 * time.Millisecond},
			},
		},
	}
}

// BenchmarkEngine advances each warmed scenario one simulated second per op
// and reports events/op alongside the standard ns/op and allocs/op, from
// which scripts/bench.sh derives events/sec, ns/event and allocs/event.
func BenchmarkEngine(b *testing.B) {
	for _, name := range []string{"mix10", "faulted", "flows40"} {
		sp := engineScenarios()[name]
		b.Run(name, func(b *testing.B) {
			n, _, err := netsim.Build(sp)
			if err != nil {
				b.Fatal(err)
			}
			n.Run(5 * time.Second) // warm up past slow start
			start := n.Events()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Run(time.Second)
			}
			b.StopTimer()
			events := n.Events() - start
			if events == 0 {
				b.Fatal("no events processed")
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// TestEngineScenariosValid pins the benchmark scenario set: every spec must
// validate and build, so a refactor cannot silently invalidate the BENCH
// trajectory's workload.
func TestEngineScenariosValid(t *testing.T) {
	for name, sp := range engineScenarios() {
		if _, _, err := netsim.Build(sp); err != nil {
			t.Errorf("benchmark scenario %s no longer builds: %v", name, err)
		}
	}
	for _, name := range []string{"mix10", "faulted", "flows40"} {
		if _, ok := engineScenarios()[name]; !ok {
			t.Errorf("benchmark scenario %s missing from set", name)
		}
	}
}
