package netsim

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/units"
)

// fixedWindow is a test algorithm with a constant congestion window and
// optional pacing rate.
type fixedWindow struct {
	cwnd   units.Bytes
	pacing units.Rate

	acks    int
	losses  int
	sent    int
	lastAck cc.AckEvent
}

func (f *fixedWindow) Name() string                  { return "fixed" }
func (f *fixedWindow) OnAck(e cc.AckEvent)           { f.acks++; f.lastAck = e }
func (f *fixedWindow) OnLoss(e cc.LossEvent)         { f.losses++ }
func (f *fixedWindow) OnSent(e cc.SendEvent)         { f.sent++ }
func (f *fixedWindow) CongestionWindow() units.Bytes { return f.cwnd }
func (f *fixedWindow) PacingRate() units.Rate        { return f.pacing }

func fixedCtor(cwnd units.Bytes, pacing units.Rate) (cc.Constructor, **fixedWindow) {
	holder := new(*fixedWindow)
	return func(p cc.Params) cc.Algorithm {
		fw := &fixedWindow{cwnd: cwnd, pacing: pacing}
		*holder = fw
		return fw
	}, holder
}

func mustNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0, Buffer: 1e6}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{Capacity: 10 * units.Mbps, Buffer: 100}); err == nil {
		t.Error("sub-MSS buffer accepted")
	}
	if _, err := New(Config{Capacity: 10 * units.Mbps, Buffer: 1e6}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAddFlowValidation(t *testing.T) {
	n := mustNetwork(t, Config{Capacity: 10 * units.Mbps, Buffer: 1e6})
	ctor, _ := fixedCtor(10*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 0, Algorithm: ctor}); err == nil {
		t.Error("zero RTT accepted")
	}
	if _, err := n.AddFlow(FlowConfig{RTT: time.Millisecond}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := n.AddFlow(FlowConfig{RTT: time.Millisecond, Start: -time.Second, Algorithm: ctor}); err == nil {
		t.Error("negative start accepted")
	}
	f, err := n.AddFlow(FlowConfig{RTT: time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "flow0" {
		t.Errorf("default name = %q", f.Name())
	}
}

// A single window-limited flow with cwnd below the BDP should achieve
// exactly cwnd per RTT.
func TestWindowLimitedThroughput(t *testing.T) {
	const rtt = 100 * time.Millisecond
	cfg := Config{Capacity: 100 * units.Mbps, Buffer: 10e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(10*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: rtt, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(30 * time.Second)
	st := f.Stats()
	// Effective RTT includes one transmission time per packet.
	effRTT := rtt + cfg.Capacity.TimeToSend(units.MSS)
	want := units.RateOver(10*units.MSS, effRTT)
	if err := relErr(float64(st.Throughput), float64(want)); err > 0.02 {
		t.Errorf("throughput = %v, want about %v (relerr %.3f)", st.Throughput, want, err)
	}
	if st.Lost != 0 {
		t.Errorf("unexpected losses: %d", st.Lost)
	}
}

// A flow with a huge window should saturate the link, and the queue should
// sit at its cap minus what is in flight... at minimum, utilization ~ 1.
func TestSaturation(t *testing.T) {
	cfg := Config{Capacity: 50 * units.Mbps, Buffer: 0.5e6}
	n := mustNetwork(t, cfg)
	ctor, holder := fixedCtor(10000*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * time.Second)
	n.StartMeasurement()
	n.Run(20 * time.Second)
	link := n.Link()
	if link.Utilization < 0.99 {
		t.Errorf("utilization = %v, want ~1", link.Utilization)
	}
	if (*holder).losses == 0 {
		t.Error("expected overflow losses with oversized window")
	}
	st := f.Stats()
	if st.Lost == 0 {
		t.Error("flow stats recorded no losses")
	}
	// Queue should be pinned near full.
	if float64(link.MeanQueueOccupancy) < 0.9*float64(cfg.Buffer) {
		t.Errorf("mean queue occupancy = %v, want near %v", link.MeanQueueOccupancy, cfg.Buffer)
	}
}

// Conservation: every sent byte is delivered, dropped, or still in flight.
func TestByteConservation(t *testing.T) {
	cfg := Config{Capacity: 20 * units.Mbps, Buffer: 200e3}
	n := mustNetwork(t, cfg)
	ctor, holder := fixedCtor(300*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: 30 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)
	fw := *holder
	sentBytes := float64(fw.sent) * float64(units.MSS)
	ackedBytes := float64(fw.acks) * float64(units.MSS)
	lostBytes := float64(fw.losses) * float64(units.MSS)
	inflight := float64(f.Inflight())
	if math.Abs(sentBytes-(ackedBytes+lostBytes+inflight)) > 1 {
		t.Errorf("conservation violated: sent %v != acked %v + lost %v + inflight %v",
			sentBytes, ackedBytes, lostBytes, inflight)
	}
}

// The minimum RTT sample equals propagation plus one transmission time when
// the queue is empty.
func TestMinRTT(t *testing.T) {
	const rtt = 40 * time.Millisecond
	cfg := Config{Capacity: 100 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(2*units.MSS, 0)
	f, err := n.AddFlow(FlowConfig{RTT: rtt, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5 * time.Second)
	want := rtt + cfg.Capacity.TimeToSend(units.MSS)
	got := f.Stats().MinRTT
	if got != want {
		t.Errorf("MinRTT = %v, want %v", got, want)
	}
}

// RTT samples grow with queue occupancy.
func TestQueueingInflatesRTT(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(200*units.MSS, 0) // deep standing queue
	f, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)
	st := f.Stats()
	if st.MeanRTT < 2*st.MinRTT {
		t.Errorf("MeanRTT = %v should be well above MinRTT = %v with a standing queue", st.MeanRTT, st.MinRTT)
	}
}

// Pacing: a paced flow with ample window sends at its pacing rate.
func TestPacedThroughput(t *testing.T) {
	cfg := Config{Capacity: 100 * units.Mbps, Buffer: 5e6}
	n := mustNetwork(t, cfg)
	pace := 20 * units.Mbps
	ctor, _ := fixedCtor(10000*units.MSS, pace)
	f, err := n.AddFlow(FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2 * time.Second)
	n.StartMeasurement()
	n.Run(10 * time.Second)
	st := f.Stats()
	if err := relErr(float64(st.Throughput), float64(pace)); err > 0.02 {
		t.Errorf("paced throughput = %v, want %v", st.Throughput, pace)
	}
	// No queue should build: pacing is below capacity.
	if q := n.Link().MeanQueueOccupancy; q > 2*units.MSS {
		t.Errorf("queue built up under pacing: %v", q)
	}
}

// Two identical unpaced flows whose combined windows fit in BDP+buffer (no
// drops) share the link equally: with a shared queue, throughput is
// proportional to window share. Note that in the lossy regime drop-tail
// phase effects can split deterministic identical flows unevenly — that is
// expected queue behaviour, not a simulator artifact.
func TestSymmetricSharing(t *testing.T) {
	cfg := Config{Capacity: 50 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctorA, _ := fixedCtor(250*units.MSS, 0)
	ctorB, _ := fixedCtor(250*units.MSS, 0)
	fa, _ := n.AddFlow(FlowConfig{Name: "a", RTT: 40 * time.Millisecond, Algorithm: ctorA})
	fb, _ := n.AddFlow(FlowConfig{Name: "b", RTT: 40 * time.Millisecond, Algorithm: ctorB})
	n.Run(5 * time.Second)
	n.StartMeasurement()
	n.Run(30 * time.Second)
	ta, tb := float64(fa.Stats().Throughput), float64(fb.Stats().Throughput)
	if math.Abs(ta-tb)/(ta+tb) > 0.1 {
		t.Errorf("asymmetric split: %v vs %v", ta, tb)
	}
	total := units.Rate(ta + tb)
	if err := relErr(float64(total), float64(cfg.Capacity)); err > 0.02 {
		t.Errorf("total = %v, want %v", total, cfg.Capacity)
	}
}

// Delivery-rate samples approximate the bottleneck rate for a saturating
// flow.
func TestDeliveryRateSample(t *testing.T) {
	cfg := Config{Capacity: 40 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, holder := fixedCtor(400*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 40 * time.Millisecond, Algorithm: ctor}); err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)
	got := (*holder).lastAck.Rate
	if err := relErr(float64(got), float64(cfg.Capacity)); err > 0.05 {
		t.Errorf("delivery rate sample = %v, want about %v", got, cfg.Capacity)
	}
}

// A later-starting flow must not send before its start time.
func TestStartTime(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 1e6}
	n := mustNetwork(t, cfg)
	ctor, holder := fixedCtor(10*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 10 * time.Millisecond, Start: 5 * time.Second, Algorithm: ctor}); err != nil {
		t.Fatal(err)
	}
	n.Run(4 * time.Second)
	if (*holder).sent != 0 {
		t.Error("flow sent before its start time")
	}
	n.Run(2 * time.Second)
	if (*holder).sent == 0 {
		t.Error("flow never started")
	}
}

// Per-flow queue occupancies sum to the link occupancy.
func TestPerFlowOccupancySumsToLink(t *testing.T) {
	cfg := Config{Capacity: 20 * units.Mbps, Buffer: 400e3}
	n := mustNetwork(t, cfg)
	for i := 0; i < 3; i++ {
		ctor, _ := fixedCtor(200*units.MSS, 0)
		if _, err := n.AddFlow(FlowConfig{RTT: 30 * time.Millisecond, Algorithm: ctor}); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(3 * time.Second)
	n.StartMeasurement()
	n.Run(20 * time.Second)
	sum := 0.0
	for _, f := range n.Flows() {
		sum += float64(f.Stats().MeanQueueOccupancy)
	}
	link := float64(n.Link().MeanQueueOccupancy)
	if relErr(sum, link) > 0.01 {
		t.Errorf("per-flow occupancy sum %v != link occupancy %v", sum, link)
	}
}

// The queue never holds more than the configured buffer.
func TestBufferNeverExceeded(t *testing.T) {
	cfg := Config{Capacity: 10 * units.Mbps, Buffer: 100e3}
	n := mustNetwork(t, cfg)
	ctor, _ := fixedCtor(1000*units.MSS, 0)
	if _, err := n.AddFlow(FlowConfig{RTT: 20 * time.Millisecond, Algorithm: ctor}); err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)
	if got := n.Link().MaxQueueOccupancy; float64(got) > float64(cfg.Buffer) {
		t.Errorf("max occupancy %v exceeded buffer %v", got, cfg.Buffer)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
