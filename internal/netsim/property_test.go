package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bbrnash/internal/units"
)

// Property: for any sane configuration and any mix of fixed windows, every
// byte sent is delivered, dropped, or still in flight, the buffer bound is
// respected, and utilization never exceeds 1.
func TestInvariantsUnderRandomConfigs(t *testing.T) {
	type tc struct {
		CapMbps  uint8
		BufKB    uint16
		RTTms    uint8
		Windows  [3]uint8
		Paced    [3]bool
		Duration uint8
	}
	f := func(c tc) bool {
		capacity := units.Rate(c.CapMbps%90+10) * units.Mbps
		buffer := units.Bytes(c.BufKB%2000)*units.KB + 10*units.MSS
		rtt := time.Duration(c.RTTms%90+5) * time.Millisecond
		n, err := New(Config{Capacity: capacity, Buffer: buffer})
		if err != nil {
			return false
		}
		type probe struct {
			flow *Flow
			alg  **fixedWindow
		}
		var probes []probe
		for i, w := range c.Windows {
			cwnd := units.Bytes(int(w)%400+2) * units.MSS
			var pace units.Rate
			if c.Paced[i] {
				pace = capacity / 2
			}
			ctor, holder := fixedCtor(cwnd, pace)
			fl, err := n.AddFlow(FlowConfig{RTT: rtt, Algorithm: ctor})
			if err != nil {
				return false
			}
			probes = append(probes, probe{flow: fl, alg: holder})
		}
		n.Run(time.Duration(c.Duration%5+1) * time.Second)

		for _, p := range probes {
			fw := *p.alg
			sent := float64(fw.sent) * float64(units.MSS)
			acked := float64(fw.acks) * float64(units.MSS)
			lost := float64(fw.losses) * float64(units.MSS)
			inflight := float64(p.flow.Inflight())
			if math.Abs(sent-(acked+lost+inflight)) > 1 {
				return false
			}
			if inflight < 0 {
				return false
			}
		}
		link := n.Link()
		if float64(link.MaxQueueOccupancy) > float64(buffer) {
			return false
		}
		if link.Utilization > 1.001 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: simulations are deterministic — identical configurations give
// bit-identical statistics.
func TestDeterminismProperty(t *testing.T) {
	run := func(cwnd units.Bytes) (units.Bytes, int) {
		n := mustNetwork(t, Config{Capacity: 30 * units.Mbps, Buffer: 300e3})
		ctor, _ := fixedCtor(cwnd, 0)
		fl, err := n.AddFlow(FlowConfig{RTT: 25 * time.Millisecond, Algorithm: ctor})
		if err != nil {
			t.Fatal(err)
		}
		n.Run(4 * time.Second)
		st := fl.Stats()
		return st.Delivered, st.Lost
	}
	f := func(w uint8) bool {
		cwnd := units.Bytes(int(w)%300+2) * units.MSS
		d1, l1 := run(cwnd)
		d2, l2 := run(cwnd)
		return d1 == d2 && l1 == l2
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: total throughput never exceeds capacity, and with an aggregate
// window above BDP+buffer the link saturates.
func TestThroughputBoundsProperty(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		capacity := 40 * units.Mbps
		rtt := 30 * time.Millisecond
		buffer := units.BufferBytes(capacity, rtt, 2)
		n, err := New(Config{Capacity: capacity, Buffer: buffer})
		if err != nil {
			return false
		}
		ctorA, _ := fixedCtor(units.Bytes(int(w1)%500+2)*units.MSS, 0)
		ctorB, _ := fixedCtor(units.Bytes(int(w2)%500+2)*units.MSS, 0)
		fa, _ := n.AddFlow(FlowConfig{RTT: rtt, Algorithm: ctorA})
		fb, _ := n.AddFlow(FlowConfig{RTT: rtt, Algorithm: ctorB})
		n.Run(2 * time.Second)
		n.StartMeasurement()
		n.Run(6 * time.Second)
		total := float64(fa.Stats().Throughput + fb.Stats().Throughput)
		if total > float64(capacity)*1.001 {
			return false
		}
		aggWindow := float64((units.Bytes(int(w1)%500+2) + units.Bytes(int(w2)%500+2)) * units.MSS)
		if aggWindow > float64(units.BDP(capacity, rtt))+float64(buffer) {
			// Saturating windows must keep the link busy.
			return total > float64(capacity)*0.95
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
