package netsim

import (
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

// Sample is one periodic observation of a flow.
type Sample struct {
	// At is the simulation time of the observation.
	At eventsim.Time
	// Throughput is the delivery rate over the sampling interval.
	Throughput units.Rate
	// Inflight is the flow's outstanding bytes at sampling time.
	Inflight units.Bytes
	// QueueBytes is the flow's share of the bottleneck buffer.
	QueueBytes units.Bytes
}

// Sampler records a periodic time series for one flow: interval throughput,
// in-flight data and buffer share. Attach with NewSampler before running
// the simulation; the series is available from Samples afterwards.
//
// The experiment harness reports run-wide averages; samplers exist for
// inspecting dynamics (e.g. BBR's ProbeRTT dips or CUBIC's sawtooth) in
// tests, examples and debugging sessions.
type Sampler struct {
	flow     *Flow
	interval time.Duration
	lastSeen float64
	samples  []Sample
}

// NewSampler attaches a sampler to f with the given interval. The first
// sample is taken one interval after the current simulation time.
func NewSampler(f *Flow, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s := &Sampler{flow: f, interval: interval, lastSeen: f.arrived.Total()}
	var tick func()
	tick = func() {
		s.take()
		f.net.loop.After(interval, tick)
	}
	f.net.loop.After(interval, tick)
	return s
}

func (s *Sampler) take() {
	now := s.flow.net.loop.Now()
	total := s.flow.arrived.Total()
	delta := units.Bytes(total - s.lastSeen)
	s.lastSeen = total
	s.samples = append(s.samples, Sample{
		At:         now,
		Throughput: units.RateOver(delta, s.interval),
		Inflight:   s.flow.inflight,
		QueueBytes: units.Bytes(s.flow.queued.Value()),
	})
}

// Samples returns the recorded series.
func (s *Sampler) Samples() []Sample { return s.samples }

// MinThroughput returns the smallest interval throughput recorded after
// skipping the first skip samples (useful for ignoring slow start).
func (s *Sampler) MinThroughput(skip int) units.Rate {
	min := units.Rate(-1)
	for i, smp := range s.samples {
		if i < skip {
			continue
		}
		if min < 0 || smp.Throughput < min {
			min = smp.Throughput
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// MaxInflight returns the largest in-flight observation.
func (s *Sampler) MaxInflight() units.Bytes {
	var max units.Bytes
	for _, smp := range s.samples {
		if smp.Inflight > max {
			max = smp.Inflight
		}
	}
	return max
}
