package netsim

import (
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

// Sample is one periodic observation of a flow.
type Sample struct {
	// At is the simulation time of the observation.
	At eventsim.Time
	// Throughput is the delivery rate over the sampling interval.
	Throughput units.Rate
	// Inflight is the flow's outstanding bytes at sampling time.
	Inflight units.Bytes
	// QueueBytes is the flow's share of the bottleneck buffer.
	QueueBytes units.Bytes
}

// Sampler records a periodic time series for one flow: interval throughput,
// in-flight data and buffer share. Attach with NewSampler before running
// the simulation; the series is available from Samples afterwards.
//
// The experiment harness reports run-wide averages; samplers exist for
// inspecting dynamics (e.g. BBR's ProbeRTT dips or CUBIC's sawtooth) in
// traces, tests, examples and debugging sessions.
type Sampler struct {
	flow     *Flow
	interval time.Duration
	lastSeen float64
	detached bool
	samples  []Sample
}

// NewSampler attaches a sampler to f with the given interval. The first
// sample is taken one interval after the current simulation time. The tick
// stops once the flow has finished its final transfer (after one closing
// sample of the drained state) or after Detach, so a sampler cannot grow
// without bound past its flow's lifetime.
func NewSampler(f *Flow, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s := &Sampler{flow: f, interval: interval, lastSeen: f.arrived.Total()}
	var tick func()
	tick = func() {
		if s.detached {
			return
		}
		s.take()
		if f.Finished() {
			return
		}
		f.net.loop.After(interval, tick)
	}
	f.net.loop.After(interval, tick)
	return s
}

// Detach stops the sampler: the next pending tick becomes a no-op and
// nothing further is recorded. The collected series stays available.
func (s *Sampler) Detach() { s.detached = true }

func (s *Sampler) take() {
	now := s.flow.net.loop.Now()
	total := s.flow.arrived.Total()
	delta := units.Bytes(total - s.lastSeen)
	s.lastSeen = total
	s.samples = append(s.samples, Sample{
		At:         now,
		Throughput: units.RateOver(delta, s.interval),
		Inflight:   s.flow.inflight,
		QueueBytes: units.Bytes(s.flow.queued.Value()),
	})
}

// Samples returns the recorded series.
func (s *Sampler) Samples() []Sample { return s.samples }

// MinThroughput returns the smallest interval throughput recorded after
// skipping the first skip samples (useful for ignoring slow start).
// Trailing zero-throughput samples are excluded: they record a flow that
// has stopped sending (finished, or idle between transfers at the end of
// the run), not a congestion-control dip, and counting them would make any
// finished flow appear to hit zero like a bogus ProbeRTT.
func (s *Sampler) MinThroughput(skip int) units.Rate {
	samples := s.samples
	for len(samples) > 0 && samples[len(samples)-1].Throughput == 0 {
		samples = samples[:len(samples)-1]
	}
	min := units.Rate(-1)
	for i, smp := range samples {
		if i < skip {
			continue
		}
		if min < 0 || smp.Throughput < min {
			min = smp.Throughput
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// MaxInflight returns the largest in-flight observation.
func (s *Sampler) MaxInflight() units.Bytes {
	var max units.Bytes
	for _, smp := range s.samples {
		if smp.Inflight > max {
			max = smp.Inflight
		}
	}
	return max
}

// LinkSample is one periodic observation of the bottleneck.
type LinkSample struct {
	// At is the simulation time of the observation.
	At eventsim.Time
	// QueueBytes is the occupancy of the drop-tail buffer.
	QueueBytes units.Bytes
	// Throughput is the aggregate departure rate over the sampling
	// interval.
	Throughput units.Rate
	// Rate is the effective service rate at sampling time (capacity, or
	// reduced during a flap's low phase).
	Rate units.Rate
}

// LinkSampler records a periodic time series for one link: buffer
// occupancy, aggregate departure throughput and the effective service rate.
// Attach with NewLinkSampler (the first link) or Network.LinkSamplers
// (every link) before running the simulation.
type LinkSampler struct {
	net      *Network
	link     *link
	interval time.Duration
	lastSeen float64
	detached bool
	samples  []LinkSample
}

// NewLinkSampler attaches a link sampler for the first configured link (the
// bottleneck of every legacy configuration) with the given interval. The
// first sample is taken one interval after the current simulation time; the
// tick runs until Detach.
func NewLinkSampler(n *Network, interval time.Duration) *LinkSampler {
	return newLinkSampler(n, n.links[0], interval)
}

// LinkSamplers attaches one sampler per link — the forward links in
// configuration order, then the reverse twins in the same order — matching
// the ordering of PerLink.
func (n *Network) LinkSamplers(interval time.Duration) []*LinkSampler {
	out := make([]*LinkSampler, 0, len(n.links)+len(n.revs))
	for _, l := range n.links {
		out = append(out, newLinkSampler(n, l, interval))
	}
	for _, r := range n.revs {
		out = append(out, newLinkSampler(n, r, interval))
	}
	return out
}

func newLinkSampler(n *Network, l *link, interval time.Duration) *LinkSampler {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s := &LinkSampler{net: n, link: l, interval: interval, lastSeen: l.departed.Total()}
	var tick func()
	tick = func() {
		if s.detached {
			return
		}
		s.take()
		n.loop.After(interval, tick)
	}
	n.loop.After(interval, tick)
	return s
}

// LinkName names the sampled link.
func (s *LinkSampler) LinkName() string { return s.link.name }

// Detach stops the link sampler; the collected series stays available.
func (s *LinkSampler) Detach() { s.detached = true }

func (s *LinkSampler) take() {
	l := s.link
	total := l.departed.Total()
	delta := units.Bytes(total - s.lastSeen)
	s.lastSeen = total
	s.samples = append(s.samples, LinkSample{
		At:         s.net.loop.Now(),
		QueueBytes: l.waitingBytes,
		Throughput: units.RateOver(delta, s.interval),
		Rate:       l.rate,
	})
}

// Samples returns the recorded series.
func (s *LinkSampler) Samples() []LinkSample { return s.samples }
