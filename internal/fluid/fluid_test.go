package fluid

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/core"
	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

func mixSpec(numBBR, numCubic int, bufBDP float64) scenario.Spec {
	capacity := 40 * units.Mbps
	rtt := 40 * time.Millisecond
	sp := scenario.Mix("bbr", numBBR, numCubic, capacity,
		units.BufferBytes(capacity, rtt, bufBDP), rtt, 2*time.Minute)
	sp.Backend = scenario.BackendFluid
	return sp
}

func runStats(t *testing.T, sp scenario.Spec, chunk time.Duration) ([][]netsim.FlowStats, netsim.LinkStats) {
	t.Helper()
	m, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if chunk <= 0 {
		chunk = sp.Duration
	}
	for done := time.Duration(0); done < sp.Duration; done += chunk {
		step := chunk
		if rem := sp.Duration - done; rem < step {
			step = rem
		}
		m.Run(step)
	}
	gs, link := m.Stats()
	return gs, link
}

// TestTrajectoryDeterministic: the integration is a pure recurrence — two
// fresh models of the same spec report bit-identical statistics, and
// chunked execution (the harness's progress heartbeat mode) changes
// nothing. This is the fluid backend's analogue of netsim's trace goldens:
// any drift here would silently split cache entries.
func TestTrajectoryDeterministic(t *testing.T) {
	sp := mixSpec(2, 3, 6)
	sp.Faults = scenario.Faults{LossRate: 0.0005, FlapPeriod: 5 * time.Second, FlapDepth: 0.3}
	aG, aL := runStats(t, sp, 0)
	bG, bL := runStats(t, sp, 0)
	cG, cL := runStats(t, sp, time.Second)
	dG, dL := runStats(t, sp, 7*time.Millisecond) // deliberately step-misaligned
	for name, got := range map[string][][]netsim.FlowStats{"rebuild": bG, "chunk1s": cG, "chunk7ms": dG} {
		if !reflect.DeepEqual(aG, got) {
			t.Errorf("%s: flow stats differ from reference run", name)
		}
	}
	for name, got := range map[string]netsim.LinkStats{"rebuild": bL, "chunk1s": cL, "chunk7ms": dL} {
		if aL != got {
			t.Errorf("%s: link stats differ: %+v vs %+v", name, got, aL)
		}
	}
}

// TestGoldenSteadyState pins a representative trajectory's outcome to
// exact values. The float64 recurrence has no legitimate reason to drift:
// if this fails, the integration changed and every fluid cache entry is
// stale — bump scenario.KeyVersion and regenerate.
func TestGoldenSteadyState(t *testing.T) {
	gs, link := runStats(t, mixSpec(2, 2, 6), 0)
	var agg units.Rate
	for _, g := range gs {
		for _, f := range g {
			agg += f.Throughput
		}
	}
	// Pin to full float64 text precision.
	got := fmt.Sprintf("agg=%x util=%x drops=%d", float64(agg), link.Utilization, link.Drops)
	const want = "agg=0x1.30ef26e90032ap+25 util=0x1.ff983c7bb1ab4p-01 drops=34302"
	if got != want {
		t.Errorf("golden steady state drifted:\ngot  %s\nwant %s", got, want)
	}
}

// TestSteadyStateMatchesModel: the property the backend exists for — on
// the paper's valid regime, the fluid fixed point lands inside the
// closed-form sync/desync prediction interval (with slack: the fluid
// dynamics resolve transients the algebra idealizes away).
func TestSteadyStateMatchesModel(t *testing.T) {
	cases := []struct {
		numBBR, numCubic int
		bufBDP           float64
	}{
		{1, 1, 4}, {1, 1, 8}, {2, 2, 4}, {2, 2, 8}, {1, 3, 6}, {3, 1, 6},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("b%d_c%d_buf%g", tc.numBBR, tc.numCubic, tc.bufBDP)
		t.Run(name, func(t *testing.T) {
			sp := mixSpec(tc.numBBR, tc.numCubic, tc.bufBDP)
			gs, _ := runStats(t, sp, 0)
			perBBR := gs[0][0].Throughput
			iv, err := core.PredictInterval(core.Scenario{
				Capacity: sp.Capacity,
				Buffer:   sp.Buffer,
				RTT:      40 * time.Millisecond,
				NumBBR:   tc.numBBR,
				NumCubic: tc.numCubic,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("fluid per-BBR %.2f Mbps, model sync %.2f / desync %.2f Mbps",
				float64(perBBR)/1e6, float64(iv.Sync.PerBBR)/1e6, float64(iv.Desync.PerBBR)/1e6)
			if !iv.ContainsBBRPerFlow(perBBR, 0.30) {
				t.Errorf("fluid per-BBR share %.2f Mbps outside model interval [%.2f, %.2f] ±30%%",
					float64(perBBR)/1e6, float64(iv.Sync.PerBBR)/1e6, float64(iv.Desync.PerBBR)/1e6)
			}
		})
	}
}

// TestAuditClean: fluid statistics satisfy the same physical invariants the
// packet engine's do — the harness audits cached and fresh fluid results
// with check.Flows, so a violation here would poison strict runs.
func TestAuditClean(t *testing.T) {
	specs := map[string]scenario.Spec{
		"mix":     mixSpec(2, 2, 6),
		"shallow": mixSpec(2, 2, 0.5),
		"bbronly": mixSpec(3, 0, 4),
		"cubonly": mixSpec(0, 3, 4),
		"faulted": func() scenario.Spec {
			sp := mixSpec(2, 2, 4)
			sp.Faults = scenario.Faults{LossRate: 0.001, FlapPeriod: 4 * time.Second, FlapDepth: 0.4,
				BurstEvery: 10 * time.Second, BurstLen: 8}
			return sp
		}(),
	}
	for name, sp := range specs {
		sp := sp
		t.Run(name, func(t *testing.T) {
			gs, link := runStats(t, sp, 0)
			lim := check.Limits{
				Capacity:     sp.Capacity,
				Buffer:       sp.Buffer,
				Pipe:         sp.Buffer + units.BDP(sp.Capacity, sp.MaxRTT()),
				MinCapacity:  sp.Faults.MinCapacity(sp.Capacity),
				MeanCapacity: sp.Faults.MeanCapacityOver(sp.Capacity, sp.Duration),
			}
			var flows []netsim.FlowStats
			for _, g := range gs {
				flows = append(flows, g...)
			}
			for _, v := range check.Flows(sp.Key(), lim, flows, &link) {
				t.Errorf("invariant violation: %s", v)
			}
		})
	}
}

// TestUnsupportedAlgorithm: algorithms without a fluid form are a loud
// error, not a silent misrun — unless the group is empty, which sweeps
// legitimately produce.
func TestUnsupportedAlgorithm(t *testing.T) {
	for _, alg := range []string{"bbrv2", "copa", "vivace"} {
		sp := mixSpec(1, 1, 4)
		sp.Groups[0].Algorithm = alg
		if _, err := New(sp); err == nil {
			t.Errorf("New accepted unsupported algorithm %q", alg)
		}
		sp.Groups[0].Count = 0
		if _, err := New(sp); err != nil {
			t.Errorf("New rejected empty group of %q: %v", alg, err)
		}
	}
}

// TestEmptyGroupShape: empty groups keep their slot (group indices are
// part of the result contract) and flows are named exactly as netsim names
// them.
func TestEmptyGroupShape(t *testing.T) {
	gs, _ := runStats(t, mixSpec(0, 2, 4), 0)
	if len(gs) != 2 {
		t.Fatalf("got %d groups, want 2", len(gs))
	}
	if len(gs[0]) != 0 {
		t.Errorf("empty BBR group reported %d flows", len(gs[0]))
	}
	if len(gs[1]) != 2 {
		t.Fatalf("CUBIC group reported %d flows, want 2", len(gs[1]))
	}
	if gs[1][0].Name != "g1.cubic0" || gs[1][1].Name != "g1.cubic1" {
		t.Errorf("flow names %q, %q; want netsim naming g1.cubic0/g1.cubic1", gs[1][0].Name, gs[1][1].Name)
	}
}

// TestBBRAloneStandingQueue: a lone BBR class settles at the paper's
// 2·BDP inflight — a standing queue of about one BDP — and full link
// utilization, the baseline behaviour Eq 9 reduces to without competitors.
func TestBBRAloneStandingQueue(t *testing.T) {
	sp := mixSpec(2, 0, 8)
	gs, link := runStats(t, sp, 0)
	if link.Utilization < 0.9 {
		t.Errorf("BBR-only utilization %.3f, want near 1", link.Utilization)
	}
	bdp := float64(units.BDP(sp.Capacity, 40*time.Millisecond))
	q := float64(link.MeanQueueOccupancy)
	if q < 0.5*bdp || q > 1.6*bdp {
		t.Errorf("BBR-only standing queue %.0fB, want ≈1 BDP (%.0fB)", q, bdp)
	}
	_ = gs
	if math.IsNaN(link.Utilization) {
		t.Error("NaN utilization")
	}
}

// TestTopologyReduction: a chain whose narrowest link is shared by every
// group, with fault-free wider links around it, reduces to exactly the
// single-queue model of that link — bit-identical statistics to the
// equivalent legacy spec, since the integration is a pure function of the
// reduced (capacity, buffer, faults) and the groups.
func TestTopologyReduction(t *testing.T) {
	legacy := mixSpec(2, 2, 4)
	chain := legacy
	chain.Groups = append([]scenario.Group(nil), legacy.Groups...)
	chain.Capacity, chain.Buffer = 0, 0
	chain.Links = []scenario.Link{
		{Name: "access", Capacity: 100 * units.Mbps, Buffer: 1 << 20},
		{Name: "core", Capacity: legacy.Capacity, Buffer: legacy.Buffer},
	}
	for gi := range chain.Groups {
		chain.Groups[gi].Path = []string{"access", "core"}
	}
	lG, lL := runStats(t, legacy, 0)
	cG, cL := runStats(t, chain, 0)
	if !reflect.DeepEqual(lG, cG) {
		t.Error("chain flow stats differ from the equivalent single-link spec")
	}
	lL.Name, cL.Name = "", "" // the reduced link legitimately keeps its own name
	if !reflect.DeepEqual(lL, cL) {
		t.Errorf("chain link stats differ from the equivalent single-link spec:\n got %+v\nwant %+v", cL, lL)
	}
	m, err := New(chain)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if _, link := m.Stats(); link.Name != "core" {
		t.Errorf("reduced link name = %q, want the bottleneck %q", link.Name, "core")
	}
}

// TestTopologyRejection: anything without a single-queue reduction —
// reverse ACK twins, disjoint bottlenecks, off-bottleneck faults,
// comparably tight links — errors loudly instead of silently
// approximating.
func TestTopologyRejection(t *testing.T) {
	base := func() scenario.Spec {
		sp := mixSpec(1, 1, 4)
		sp.Capacity, sp.Buffer, sp.Faults = 0, 0, scenario.Faults{}
		sp.Links = []scenario.Link{
			{Name: "a", Capacity: 100 * units.Mbps, Buffer: 1 << 20},
			{Name: "b", Capacity: 40 * units.Mbps, Buffer: 1 << 19},
		}
		for gi := range sp.Groups {
			sp.Groups[gi].Path = []string{"a", "b"}
		}
		return sp
	}
	cases := map[string]func(sp *scenario.Spec){
		"reverse-twin": func(sp *scenario.Spec) {
			sp.Links[0].RevCapacity = 10 * units.Mbps
			sp.Links[0].RevBuffer = 1 << 16
		},
		"disjoint-paths": func(sp *scenario.Spec) {
			sp.Groups[0].Path = []string{"a"}
		},
		"off-bottleneck-fault": func(sp *scenario.Spec) {
			sp.Links[0].Faults = scenario.Faults{LossRate: 0.01}
		},
		"equal-capacity": func(sp *scenario.Spec) {
			sp.Links[0].Capacity = sp.Links[1].Capacity
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			sp := base()
			mutate(&sp)
			if err := sp.ValidateTopology(); err != nil {
				t.Fatalf("spec unexpectedly invalid: %v", err)
			}
			if _, err := New(sp); err == nil {
				t.Error("New accepted a spec with no single-queue reduction")
			}
		})
	}
}
