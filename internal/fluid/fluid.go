// Package fluid is the deterministic fixed-step fluid-model execution
// backend: the second engine behind scenario.Spec, trading the packet
// simulator's per-packet fidelity for a per-scenario cost that is orders of
// magnitude lower. Where internal/netsim schedules every segment and ACK,
// this package integrates aggregate per-group ODEs — window growth, a
// shared FIFO fluid queue, drop-tail overflow — at a fixed step, and
// reports the same netsim.FlowStats / netsim.LinkStats shapes, so the
// experiment harness can swap engines without changing a single figure
// path.
//
// The model is the paper's steady-state story made dynamic:
//
//   - BBR keeps inflight pinned to its cwnd bound 2·btlbw·rttEst (Eq 9's
//     cap), pushing bytes at cwnd/RTT(t) where RTT(t) = τ + q(t)/C. Its
//     bandwidth estimate btlbw tracks its delivered share through a
//     max-then-decay filter, and rttEst is a windowed minimum refreshed by
//     a synchronized ProbeRTT every 10 s: while probing, the group's
//     inflight collapses to 4·MSS, its queue share drains, and the minimum
//     RTT observed is τ plus the *competitors'* residual queue over C —
//     exactly the RTT⁺ = τ + b_cmin/C sampling of Eq 9. The fixed point of
//     these dynamics is Eq 10: q = C·τ + 2·q_min.
//   - CUBIC and Reno are window-limited: arrival rate w/RTT(t) per flow,
//     multiplicative backoff on buffer overflow (at most once per RTT,
//     synchronized across loss-based groups — the paper's Sync regime),
//     then concave-convex cube-root growth (CUBIC, β = 0.7) or one
//     segment per RTT (Reno, β = 0.5).
//   - The bottleneck is a single fluid FIFO: arrivals a_i(t) split the
//     service rate in proportion to bytes present, the queue integrates
//     Σa_i − C and clamps to [0, B], and the clamp's excess is drop-tail
//     loss attributed to groups by arrival share.
//
// Determinism is structural rather than seeded: the integration is a pure
// float64 recurrence over a fixed group order with no RNG, no maps and no
// wall clock, so a spec's trajectory is byte-identical across reruns,
// worker counts and Run() chunkings (time advances only in whole steps at
// absolute indices; see Run). Spec fields the packet engine randomizes —
// Seed, AckJitter, StartJitter — are ignored here, and of the fault
// fields, capacity flaps follow netsim's square wave exactly, stochastic
// loss becomes an expected-loss accumulator that triggers backoffs, burst
// episodes become synchronized backoff events, and ACK loss is a no-op.
// Those approximations are the point: the fluid backend answers "where is
// the steady state" cheaply, and internal/exp's cross-validation harness
// quantifies where the two engines diverge.
package fluid

import (
	"fmt"
	"math"
	"time"

	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// Model constants. The BBR numbers mirror the v1 state machine the paper
// models: a 2× cwnd gain over the estimated BDP, a 10 s min-RTT window
// ending in a 200 ms ProbeRTT drain, and a bandwidth filter that forgets a
// stale maximum over ~10 RTTs. The CUBIC/Reno constants are the standard
// ones (RFC 8312 / RFC 5681).
const (
	cwndGain      = 2.0  // BBR inflight cap as a multiple of btlbw·rttEst (Eq 9)
	probeInterval = 10.0 // seconds between synchronized ProbeRTT episodes
	probeDuration = 0.2  // minimum seconds spent draining in ProbeRTT
	probeRTTCwnd  = 4.0  // MSS held in flight while probing
	btlbwHorizon  = 10.0 // RTTs over which a stale bandwidth maximum decays
	cubicC        = 0.4  // CUBIC's C, in segments/s³
	cubicBeta     = 0.7  // CUBIC multiplicative-decrease factor
	renoBeta      = 0.5  // Reno multiplicative-decrease factor
)

// maxStep is the integration ceiling; steep RTTs refine it (see stepFor).
const maxStep = 1e-3 // seconds

// stepFor picks the fixed integration step for a spec: 1 ms, refined to
// RTT/20 when the fastest group's control loop is quicker than 20 ms, with
// a 10 µs floor. The step is a pure function of the spec, so it is part of
// the scenario's deterministic identity just like the group order.
func stepFor(sp scenario.Spec) float64 {
	stp := maxStep
	for _, g := range sp.Groups {
		if g.Count == 0 {
			continue
		}
		if s := g.RTT.Seconds() / 20; s < stp {
			stp = s
		}
	}
	return math.Max(stp, 1e-5)
}

// group is the aggregate state of one spec group: Count identical flows
// integrated as one fluid class.
type group struct {
	alg   string
	count float64
	rtt   float64 // base RTT τ, seconds
	start float64 // activation time, seconds

	// Loss-based window state (cubic, reno). w is the per-flow window in
	// bytes; wmax the pre-backoff plateau CUBIC curves toward; epoch the
	// time of the last backoff (the CUBIC time origin); lastBackoff gates
	// the one-backoff-per-RTT rule.
	w           float64
	wmax        float64
	epoch       float64
	lastBackoff float64

	// BBR state: per-flow delivered-rate estimate (bytes/s), the min-RTT
	// estimate the cwnd bound uses, and the running window minimum that
	// replaces it when the current ProbeRTT cycle closes.
	btlbw  float64
	rttEst float64
	winMin float64

	// q is the group's bytes currently waiting in the bottleneck buffer.
	q float64

	// lossAcc accumulates expected fault-injected loss per flow (bytes);
	// each MSS of it triggers one backoff, the fluid analogue of a
	// stochastic drop.
	lossAcc float64

	// Aggregate accumulators over the whole run (group totals, bytes or
	// byte-seconds; divided per flow in Stats).
	sent, delivered, dropped   float64
	rttAcc, activeTime, rttMin float64
	qAcc, qMin, qMax           float64
}

func (g *group) lossBased() bool { return g.alg != "bbr" }

func (g *group) beta() float64 {
	if g.alg == "reno" {
		return renoBeta
	}
	return cubicBeta
}

// backoff applies one multiplicative decrease at time t.
func (g *group) backoff(t float64, mss float64) {
	g.wmax = g.w
	g.w = math.Max(g.w*g.beta(), mss)
	g.epoch = t
	g.lastBackoff = t
}

// grow advances the post-backoff window to time t: CUBIC's closed-form
// cube-root curve through (epoch, β·wmax) with plateau wmax, or Reno's one
// segment per RTT.
func (g *group) grow(t, dt, rttNow, mss float64) {
	switch g.alg {
	case "cubic":
		c := cubicC * mss // bytes/s³
		k := math.Cbrt(g.wmax * (1 - cubicBeta) / c)
		te := t - g.epoch
		g.w = math.Max(c*(te-k)*(te-k)*(te-k)+g.wmax, mss)
	case "reno":
		g.w += mss * dt / rttNow
	}
}

// Model integrates one scenario. Create with New, advance with Run, read
// with Stats; a Model is single-goroutine like netsim.Network.
type Model struct {
	sp     scenario.Spec
	groups []*group

	stp      float64 // integration step, seconds
	step     int64   // whole steps completed; model time is step·stp
	grantedN int64   // total nanoseconds granted via Run

	capBytes float64 // bottleneck capacity, bytes/s
	buffer   float64 // bytes
	mss      float64 // bytes
	linkName string          // the modeled bottleneck link
	faults   scenario.Faults // the bottleneck link's faults

	// Link accumulators.
	qIntAcc, qMaxSeen   float64 // ∫q dt, max q
	delayAcc, delayMax  float64 // ∫(q/cEff) dt, max q/cEff
	deliveredTotal      float64 // bytes through the bottleneck
	capIntAcc           float64 // ∫cEff dt (mean-capacity bookkeeping)
	overflowPkts        float64 // drop-tail loss, packets (fractional)
	injectedBytes       float64 // stochastic fault loss, bytes
	burstPkts           int     // burst-episode loss, packets
	burstsDone          int64   // episodes already applied
	probeStarts         int64   // ProbeRTT episodes already entered
	probeUntil          float64 // current episode's end time, seconds
	probing, wasProbing bool    // shared ProbeRTT phase, for edge detection

	// Per-step scratch, preallocated once (the loop runs ~10⁵ steps per
	// simulated scenario and must not allocate).
	inflows, servedBy []float64
}

// reduceTopology maps a spec's topology onto the model's single FIFO
// queue. A one-link topology without a reverse twin is the link itself —
// every legacy spec lands here. A chain reduces only when one link is the
// unambiguous shared bottleneck: it lies on every active group's path, it
// has the strictly smallest capacity, and every other link is fault-free
// with at least its capacity (so at fluid granularity the others are
// transparent pipes). Everything else — reverse ACK twins, faults off the
// bottleneck, disjoint or comparably-tight links — is genuinely
// multi-bottleneck and errors loudly: the packet backend is the tool for
// those, and a silent approximation here would poison cross-validation.
func reduceTopology(sp scenario.Spec) (scenario.Link, error) {
	links := sp.Topology()
	for _, l := range links {
		if l.HasReverse() {
			return scenario.Link{}, fmt.Errorf(
				"fluid: link %q carries a reverse ACK path; the fluid equations have no return-path queue — use the packet backend", l.Name)
		}
	}
	if len(links) == 1 {
		return links[0], nil
	}
	bl := links[0]
	for _, l := range links[1:] {
		if l.Capacity < bl.Capacity {
			bl = l
		}
	}
	for gi := range sp.Groups {
		if sp.Groups[gi].Count == 0 {
			continue
		}
		if !pathContains(sp.PathOf(gi), bl.Name) {
			return scenario.Link{}, fmt.Errorf(
				"fluid: group %d's path misses the narrowest link %q; disjoint bottlenecks have no single-queue reduction — use the packet backend", gi, bl.Name)
		}
	}
	for _, l := range links {
		if l.Name == bl.Name {
			continue
		}
		if l.Faults != (scenario.Faults{}) {
			return scenario.Link{}, fmt.Errorf(
				"fluid: link %q carries faults but is not the bottleneck %q; off-bottleneck faults have no single-queue reduction — use the packet backend", l.Name, bl.Name)
		}
		if l.Capacity <= bl.Capacity {
			return scenario.Link{}, fmt.Errorf(
				"fluid: links %q and %q are comparably tight (%v vs %v); a multi-bottleneck chain has no single-queue reduction — use the packet backend",
				l.Name, bl.Name, l.Capacity, bl.Capacity)
		}
	}
	return bl, nil
}

// pathContains reports whether a path traverses the named link.
func pathContains(path []string, name string) bool {
	for _, p := range path {
		if p == name {
			return true
		}
	}
	return false
}

// New builds the fluid model for a spec. The spec's topology must be valid
// and every non-empty group's algorithm must be one the fluid equations
// cover: bbr, cubic or reno (the model-driven algorithms — bbrv2, copa,
// vivace — have no fluid form here and error out rather than silently
// running as something else). A multi-link topology must reduce to one
// shared bottleneck (see reduceTopology); anything genuinely
// multi-bottleneck is rejected loudly in favor of the packet backend.
func New(sp scenario.Spec) (*Model, error) {
	sp = sp.WithDefaults()
	if err := sp.ValidateTopology(); err != nil {
		return nil, err
	}
	bl, err := reduceTopology(sp)
	if err != nil {
		return nil, err
	}
	m := &Model{
		sp:       sp,
		stp:      stepFor(sp),
		capBytes: bl.Capacity.BytesPerSecond(),
		buffer:   float64(bl.Buffer),
		mss:      float64(sp.MSS),
		linkName: bl.Name,
		faults:   bl.Faults,
	}
	total := float64(sp.TotalFlows())
	share := m.capBytes / total // fair-share bytes/s per flow
	for i, sg := range sp.Groups {
		g := &group{
			alg:    sg.Algorithm,
			count:  float64(sg.Count),
			rtt:    sg.RTT.Seconds(),
			start:  sg.Start.Seconds(),
			rttMin: math.Inf(1),
			qMin:   math.Inf(1),
			winMin: math.Inf(1),
		}
		switch sg.Algorithm {
		case "bbr":
			g.btlbw = share
			g.rttEst = g.rtt
		case "cubic", "reno":
			// Fair-share initial conditions: the window that carries the
			// share at base RTT, entering mid-epoch so growth resumes from
			// it (wmax = w/β puts the plateau just above).
			g.w = math.Max(share*g.rtt, m.mss)
			g.wmax = g.w / g.beta()
			g.epoch = g.start
			g.lastBackoff = g.start
		default:
			if sg.Count > 0 {
				return nil, fmt.Errorf("fluid: group %d: no fluid model for algorithm %q (want bbr, cubic or reno)", i, sg.Algorithm)
			}
		}
		m.groups = append(m.groups, g)
	}
	m.inflows = make([]float64, len(m.groups))
	m.servedBy = make([]float64, len(m.groups))
	return m, nil
}

// Step returns the model's fixed integration step.
func (m *Model) Step() time.Duration { return time.Duration(m.stp * float64(time.Second)) }

// Now returns the simulated time reached.
func (m *Model) Now() time.Duration {
	return time.Duration(float64(m.step) * m.stp * float64(time.Second))
}

// Run advances the integration by d. Time only ever advances in whole
// steps at absolute indices — Run(2s) and Run(1s);Run(1s) execute the
// identical step sequence — so the harness's progress-chunked execution is
// exactly resumable, the same contract netsim.Network.Run keeps. A
// sub-step remainder is carried, not integrated.
func (m *Model) Run(d time.Duration) {
	if d <= 0 {
		return
	}
	m.grantedN += d.Nanoseconds()
	granted := float64(m.grantedN) / float64(time.Second)
	for float64(m.step+1)*m.stp <= granted {
		m.advance()
		m.step++
	}
}

// cEffAt is the instantaneous service rate in bytes/s: nominal capacity,
// reduced by the flap square wave's second half-period (the exact waveform
// netsim schedules and scenario.Faults.MeanCapacityOver integrates).
func (m *Model) cEffAt(t float64) float64 {
	f := m.faults
	if f.FlapDepth <= 0 || f.FlapPeriod <= 0 {
		return m.capBytes
	}
	period := f.FlapPeriod.Seconds()
	if math.Mod(t, period) >= period/2 {
		return m.capBytes * (1 - f.FlapDepth)
	}
	return m.capBytes
}

// advance integrates one step [t, t+dt).
func (m *Model) advance() {
	t := float64(m.step) * m.stp
	dt := m.stp
	cEff := m.cEffAt(t)
	m.capIntAcc += cEff * dt

	qTotal := 0.0
	for _, g := range m.groups {
		qTotal += g.q
	}

	// Shared ProbeRTT phase: after the first 10 s, every BBR group drains
	// simultaneously at each 10 s boundary (real BBR flows sharing a
	// bottleneck synchronize their ProbeRTT; the paper's Eq 9 sampling
	// assumes exactly this). An episode lasts max(200 ms, one RTT as
	// currently observed) — the spec's floor — which is what lets the
	// probe drain even a deep buffer's standing queue far enough to sample
	// the competitors' minimum occupancy.
	m.wasProbing = m.probing
	if due := int64(t / probeInterval); due > m.probeStarts && t >= probeInterval {
		m.probeStarts = due
		rttMax := 0.0
		for _, g := range m.groups {
			if g.alg == "bbr" && g.count > 0 && t >= g.start {
				rttMax = math.Max(rttMax, g.rtt+qTotal/cEff)
			}
		}
		if rttMax > 0 {
			m.probeUntil = t + math.Max(probeDuration, rttMax)
		}
	}
	m.probing = t < m.probeUntil

	// Arrival rates. RTT(t) = τ + q/cEff: the whole queue delays everyone.
	inflows := m.inflows
	inflowTotal := 0.0
	for i, g := range m.groups {
		a := 0.0
		if g.count > 0 && t >= g.start {
			rttNow := g.rtt + qTotal/cEff
			switch {
			case g.alg == "bbr" && m.probing:
				a = g.count * probeRTTCwnd * m.mss / rttNow
			case g.alg == "bbr":
				a = g.count * cwndGain * g.btlbw * g.rttEst / rttNow
			default:
				g.grow(t, dt, rttNow, m.mss)
				a = g.count * g.w / rttNow
			}
			// Stats: time-weighted RTT while active.
			g.rttAcc += rttNow * dt
			g.activeTime += dt
			g.rttMin = math.Min(g.rttMin, rttNow)
			// BBR's min-RTT window watches continuously; its estimate
			// absorbs new lows immediately and rises only when a cycle
			// closes (below).
			if g.alg == "bbr" {
				g.winMin = math.Min(g.winMin, rttNow)
				g.rttEst = math.Min(g.rttEst, rttNow)
			}
		}
		inflows[i] = a * dt
		inflowTotal += a * dt
		g.sent += a * dt
	}

	// Fault injection ahead of the queue: stochastic loss thins arrivals
	// and accumulates expected per-flow drops; a crossed burst boundary
	// claims BurstLen packets and acts as one synchronized loss event.
	f := m.faults
	burst := false
	if f.BurstLen > 0 && f.BurstEvery > 0 {
		if due := int64((t + dt) / f.BurstEvery.Seconds()); due > m.burstsDone {
			m.burstPkts += int(due-m.burstsDone) * f.BurstLen
			m.burstsDone = due
			burst = true
		}
	}
	if f.LossRate > 0 && inflowTotal > 0 {
		for i, g := range m.groups {
			lost := inflows[i] * f.LossRate
			inflows[i] -= lost
			m.injectedBytes += lost
			g.dropped += lost
			if g.count > 0 {
				g.lossAcc += lost / g.count
			}
		}
		inflowTotal *= 1 - f.LossRate
	}

	// FIFO fluid queue: serve up to cEff·dt from the bytes present, split
	// service by presence share, clamp to the buffer, and attribute the
	// clamp's excess (drop-tail loss) by arrival share.
	avail := qTotal + inflowTotal
	served := math.Min(avail, cEff*dt)
	left := avail - served
	overflow := math.Max(left-m.buffer, 0)
	for i, g := range m.groups {
		present := g.q + inflows[i]
		var servedI, overflowI float64
		if avail > 0 {
			servedI = served * present / avail
		}
		if overflow > 0 && inflowTotal > 0 {
			overflowI = overflow * inflows[i] / inflowTotal
		}
		m.servedBy[i] = servedI
		g.delivered += servedI
		g.dropped += overflowI
		g.q = math.Max(present-servedI-overflowI, 0)
	}
	m.deliveredTotal += served
	m.overflowPkts += overflow / m.mss

	// Loss response: overflow or a burst episode backs off every
	// loss-based group that is sending and out of its post-backoff RTT —
	// synchronized decrease, the paper's Sync regime. Accumulated
	// stochastic loss triggers per-group backoffs the same way. BBR v1 is
	// loss-blind and ignores all of it.
	qAfter := 0.0
	for _, g := range m.groups {
		qAfter += g.q
	}
	for i, g := range m.groups {
		if !g.lossBased() || g.count == 0 || t < g.start {
			continue
		}
		rttNow := g.rtt + qAfter/cEff
		canBack := t+dt-g.lastBackoff >= rttNow
		if (overflow > 0 || burst) && inflows[i] > 0 && canBack {
			g.backoff(t+dt, m.mss)
		} else if g.lossAcc >= m.mss && canBack {
			g.lossAcc -= m.mss
			g.backoff(t+dt, m.mss)
		}
	}

	// BBR filters: the delivered-rate sample feeds a max filter that
	// forgets over btlbwHorizon RTTs; a closing min-RTT cycle commits the
	// window minimum. Estimates freeze during ProbeRTT — the drain is
	// self-inflicted, not evidence about the path.
	probeEnded := m.wasProbing && !m.probing
	for i, g := range m.groups {
		if g.alg != "bbr" || g.count == 0 || t < g.start {
			continue
		}
		if !m.probing && avail > 0 {
			// Per-flow delivered rate this step.
			rate := m.servedBy[i] / (g.count * dt)
			if rate > g.btlbw {
				g.btlbw = rate
			} else {
				g.btlbw += (rate - g.btlbw) * dt / (btlbwHorizon * g.rtt)
			}
		}
		if probeEnded && !math.IsInf(g.winMin, 1) {
			g.rttEst = math.Max(g.winMin, g.rtt)
			g.winMin = math.Inf(1)
		}
	}

	// Link and per-group queue statistics for the step.
	m.qIntAcc += qAfter * dt
	m.qMaxSeen = math.Max(m.qMaxSeen, qAfter)
	delay := qAfter / cEff
	m.delayAcc += delay * dt
	m.delayMax = math.Max(m.delayMax, delay)
	for _, g := range m.groups {
		if g.count == 0 || t < g.start {
			continue
		}
		g.qAcc += g.q * dt
		g.qMin = math.Min(g.qMin, g.q)
		g.qMax = math.Max(g.qMax, g.q)
	}
}

// Stats reports per-flow statistics in spec group order plus the link's,
// in exactly netsim's shapes and naming (flow i of group gi is
// "g<gi>.<alg><i>"), so exp.SpecResult is backend-agnostic. Flows within a
// group are identical by construction — the fluid class integrates them as
// one — so each reports the group aggregate divided by count.
func (m *Model) Stats() ([][]netsim.FlowStats, netsim.LinkStats) {
	dur := float64(m.step) * m.stp
	groups := make([][]netsim.FlowStats, len(m.groups))
	for gi, g := range m.groups {
		if g.count == 0 {
			continue
		}
		n := g.count
		st := netsim.FlowStats{
			Algorithm:  g.alg,
			Delivered:  units.Bytes(g.delivered / n),
			SentBytes:  units.Bytes(g.sent / n),
			Lost:       int(g.dropped / (n * m.mss)),
			MinRTT:     finiteDuration(g.rttMin),
			MeanQueueOccupancy: units.Bytes(0),
		}
		if dur > 0 {
			st.Throughput = units.Rate(g.delivered / n * 8 / dur)
			st.MeanQueueOccupancy = units.Bytes(g.qAcc / (n * dur))
		}
		if g.activeTime > 0 {
			st.MeanRTT = time.Duration(g.rttAcc / g.activeTime * float64(time.Second))
		}
		if !math.IsInf(g.qMin, 1) {
			st.MinQueueOccupancy = units.Bytes(g.qMin / n)
		}
		st.MaxQueueOccupancy = units.Bytes(g.qMax / n)
		for i := 0; i < int(g.count); i++ {
			fi := st
			fi.Name = fmt.Sprintf("g%d.%s%d", gi, g.alg, i)
			groups[gi] = append(groups[gi], fi)
		}
	}
	link := netsim.LinkStats{
		Name:              m.linkName,
		MaxQueueOccupancy: units.Bytes(m.qMaxSeen),
		MaxQueueDelay:     time.Duration(m.delayMax * float64(time.Second)),
		Drops:             int(m.overflowPkts),
		InjectedDrops:     int(m.injectedBytes/m.mss) + m.burstPkts,
	}
	if dur > 0 {
		link.Utilization = m.deliveredTotal / dur / m.capBytes
		link.MeanQueueOccupancy = units.Bytes(m.qIntAcc / dur)
		link.MeanQueueDelay = time.Duration(m.delayAcc / dur * float64(time.Second))
	}
	return groups, link
}

// finiteDuration converts a possibly-unset (+Inf) seconds minimum.
func finiteDuration(s float64) time.Duration {
	if math.IsInf(s, 1) {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
