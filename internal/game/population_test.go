package game

import (
	"reflect"
	"strings"
	"testing"

	"bbrnash/internal/rng"
)

// Memo keys must be injective over profiles well past 255 per count: the
// former byte(v) encoding collided (300) with (44), which silently served a
// cached payoff for the wrong profile once group sizes entered the
// population-scale regime. The property test drives random (group, profile)
// pairs through keyOf and asserts distinct inputs never share a key.
func TestKeyOfInjective(t *testing.T) {
	src := rng.New(42)
	seen := make(map[string][2]interface{})
	for trial := 0; trial < 20000; trial++ {
		group := src.Intn(4)
		k := make([]int, 1+src.Intn(4))
		for i := range k {
			// Counts straddle the byte boundary: the old encoding mapped
			// v and v+256 to one key.
			k[i] = src.Intn(1024)
		}
		key := keyOf(group, k)
		if prev, dup := seen[key]; dup {
			pg, pk := prev[0].(int), prev[1].([]int)
			if pg != group || !reflect.DeepEqual(pk, k) {
				t.Fatalf("key %q collides: (%d, %v) and (%d, %v)", key, pg, pk, group, k)
			}
		} else {
			seen[key] = [2]interface{}{group, append([]int(nil), k...)}
		}
	}
	// The adversarial pair for the old byte(v) cast, checked explicitly.
	if keyOf(0, []int{300}) == keyOf(0, []int{44}) {
		t.Fatal("profiles (300) and (44) share a memo key")
	}
	if keyOf(1, []int{0}) == keyOf(257, []int{0}) {
		t.Fatal("groups 1 and 257 share a memo key")
	}
}

// A group of size > 255 must produce the same equilibria as an unmemoized
// reference computation. Pre-fix, payoffs for k ≥ 256 hit the memo entries
// of k−256 and steered the enumeration to bogus equilibria.
func TestGroupSymmetricLargeGroupMatchesUnmemoized(t *testing.T) {
	const n = 300
	payX := func(k int) float64 { return 0.4 * 1000 / float64(k) }
	payC := func(k int) float64 {
		if k == n {
			return 0
		}
		return 0.6 * 1000 / float64(n-k)
	}
	g := &GroupSymmetric{
		Groups:      []GroupSpec{{Size: n}},
		PayoffX:     func(_ int, k []int) float64 { return payX(k[0]) },
		PayoffCubic: func(_ int, k []int) float64 { return payC(k[0]) },
	}
	got, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the crossing 0.4·C/k = 0.6·C/(n−k) sits at k = 0.4n = 120.
	want := [][]int{{120}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NE = %v, want %v", got, want)
	}
}

// Malformed profiles must panic on the memoized IsEquilibrium path, not
// get memoized under a valid-looking key.
func TestGroupSymmetricIsEquilibriumValidatesProfile(t *testing.T) {
	g := &GroupSymmetric{
		Groups:      []GroupSpec{{Size: 2}, {Size: 2}},
		PayoffX:     func(int, []int) float64 { return 1 },
		PayoffCubic: func(int, []int) float64 { return 1 },
	}
	for _, bad := range [][]int{{1}, {1, 2, 3}, {-1, 0}, {3, 0}} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("profile %v accepted", bad)
				} else if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "game:") {
					t.Errorf("profile %v: unexpected panic %v", bad, r)
				}
			}()
			g.IsEquilibrium(bad, 0)
		}()
	}
}

// A two-strategy MultiSymmetric must agree with SymmetricBinary on the
// fig6 crossing game (strategy 0 = X, strategy 1 = CUBIC).
func TestMultiSymmetricMatchesSymmetricBinary(t *testing.T) {
	bin := fig6Game(10, 100)
	multi := &MultiSymmetric{
		N:          10,
		Strategies: 2,
		Payoff: func(s int, k []int) float64 {
			if s == 0 {
				return bin.PayoffX(k[0])
			}
			return bin.PayoffCubic(k[0])
		},
	}
	wantKs, err := bin.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := multi.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	var gotKs []int
	for _, k := range got {
		gotKs = append(gotKs, k[0])
	}
	if !reflect.DeepEqual(gotKs, wantKs) {
		t.Errorf("multi NE %v != binary NE %v", gotKs, wantKs)
	}
}

// Three strategies with a strictly dominant one: the only equilibrium puts
// every player on it, and IsEquilibrium rejects interior profiles.
func TestMultiSymmetricDominantStrategy(t *testing.T) {
	g := &MultiSymmetric{
		N:          6,
		Strategies: 3,
		Payoff: func(s int, k []int) float64 {
			return float64(s) // strategy 2 strictly dominates
		},
	}
	ne, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ne, [][]int{{0, 0, 6}}) {
		t.Errorf("NE = %v, want [[0 0 6]]", ne)
	}
	if g.IsEquilibrium([]int{2, 2, 2}, 0) {
		t.Error("interior profile accepted as equilibrium")
	}
	if !g.IsEquilibrium([]int{0, 0, 6}, 0) {
		t.Error("dominant-strategy profile rejected")
	}
}

// A congestion-flavoured 3-strategy game: per-player payoff falls with the
// strategy's own occupancy, so the equilibrium spreads players evenly.
func TestMultiSymmetricSplitsLoad(t *testing.T) {
	g := &MultiSymmetric{
		N:          6,
		Strategies: 3,
		Payoff: func(s int, k []int) float64 {
			return 12 / float64(k[s])
		},
	}
	ne, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ne, [][]int{{2, 2, 2}}) {
		t.Errorf("NE = %v, want [[2 2 2]]", ne)
	}
}

func TestMultiSymmetricValidation(t *testing.T) {
	if _, err := (&MultiSymmetric{Strategies: 2}).Equilibria(0); err == nil {
		t.Error("zero-N game accepted")
	}
	if _, err := (&MultiSymmetric{N: 3, Strategies: 1, Payoff: func(int, []int) float64 { return 0 }}).Equilibria(0); err == nil {
		t.Error("single-strategy game accepted")
	}
	if _, err := (&MultiSymmetric{N: 3, Strategies: 2}).Equilibria(0); err == nil {
		t.Error("nil payoff accepted")
	}
	g := &MultiSymmetric{N: 4, Strategies: 2, Payoff: func(int, []int) float64 { return 0 }}
	for _, bad := range [][]int{{4}, {1, 1}, {-1, 5}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("profile %v accepted", bad)
				}
			}()
			g.IsEquilibrium(bad, 0)
		}()
	}
}

func TestDeviations(t *testing.T) {
	got := Deviations([]int{1, 0, 1})
	want := [][]int{{0, 1, 1}, {0, 0, 2}, {2, 0, 0}, {1, 1, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Deviations = %v, want %v", got, want)
	}
	if Deviations([]int{3}) != nil {
		t.Error("single-strategy profile has deviations")
	}
}
