package game

import "testing"

// A cycling payoff landscape (rock-paper-scissors flavoured) must make the
// incentive walk give up rather than loop forever.
func TestFirstEquilibriumCyclingPayoffs(t *testing.T) {
	// Construct payoffs with no equilibrium at any k: whichever side you
	// are on, switching always looks strictly better.
	g := &SymmetricBinary{
		N: 4,
		PayoffX: func(k int) float64 {
			if k%2 == 0 {
				return 10
			}
			return 0
		},
		PayoffCubic: func(k int) float64 {
			if k%2 == 0 {
				return 0
			}
			return 10
		},
	}
	_, ok := g.FirstEquilibrium(2, 0, 20)
	if ok {
		// With these payoffs some k may still satisfy the two one-sided
		// checks; verify against the exhaustive enumeration.
		ne, err := g.Equilibria(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ne) == 0 {
			t.Error("walk claimed an equilibrium the enumeration does not find")
		}
	}
}

// The walk must respect the step budget.
func TestFirstEquilibriumStepBudget(t *testing.T) {
	calls := 0
	g := &SymmetricBinary{
		N: 1000,
		PayoffX: func(k int) float64 {
			calls++
			return 1000 // always switch to X
		},
		PayoffCubic: func(k int) float64 {
			calls++
			return 0
		},
	}
	k, ok := g.FirstEquilibrium(0, 0, 5)
	if ok {
		t.Errorf("walk claimed convergence after 5 steps at k=%d", k)
	}
	if k != 5 {
		t.Errorf("walk should have advanced exactly 5 steps, got %d", k)
	}
}

// Equilibria and IsEquilibrium must agree for random-ish payoff tables.
func TestEquilibriaConsistentWithIsEquilibrium(t *testing.T) {
	g := &SymmetricBinary{
		N:           12,
		PayoffX:     func(k int) float64 { return float64((k*7)%5) + 40/float64(k+1) },
		PayoffCubic: func(k int) float64 { return float64((k*3)%4) + 60/float64(13-k) },
	}
	ne, err := g.Equilibria(0.5)
	if err != nil {
		t.Fatal(err)
	}
	inNE := map[int]bool{}
	for _, k := range ne {
		inNE[k] = true
	}
	for k := 0; k <= g.N; k++ {
		if g.IsEquilibrium(k, 0.5) != inNE[k] {
			t.Errorf("IsEquilibrium(%d) disagrees with Equilibria", k)
		}
	}
}

// GroupSymmetric equilibria must be invariant to group order relabeling.
func TestGroupSymmetricRelabelInvariance(t *testing.T) {
	payX := func(group int, k []int) float64 {
		// Higher group index prefers X more.
		return float64(group*5) + 10/float64(k[group]+1)
	}
	payC := func(group int, k []int) float64 {
		return float64((2-group)*5) + 5/float64(1+TotalX(k))
	}
	g1 := &GroupSymmetric{
		Groups:      []GroupSpec{{Size: 2}, {Size: 2}, {Size: 2}},
		PayoffX:     payX,
		PayoffCubic: payC,
	}
	ne1, err := g1.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	// Relabel groups in reverse: payoffs see the mirrored group index and
	// mirrored profile.
	g2 := &GroupSymmetric{
		Groups: []GroupSpec{{Size: 2}, {Size: 2}, {Size: 2}},
		PayoffX: func(group int, k []int) float64 {
			m := []int{k[2], k[1], k[0]}
			return payX(2-group, m)
		},
		PayoffCubic: func(group int, k []int) float64 {
			m := []int{k[2], k[1], k[0]}
			return payC(2-group, m)
		},
	}
	ne2, err := g2.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne1) != len(ne2) {
		t.Fatalf("relabeled game has %d NE, original %d", len(ne2), len(ne1))
	}
	for i, k := range ne1 {
		m := ne2[len(ne2)-1-i]
		if k[0] != m[2] || k[1] != m[1] || k[2] != m[0] {
			t.Errorf("NE %v has no mirrored counterpart %v", k, m)
		}
	}
}
