package game

import (
	"errors"
	"fmt"
)

// MultiSymmetric generalizes SymmetricBinary from two strategies to m: N
// indistinguishable players each pick one of Strategies algorithms, so a
// strategy profile is fully described by the count vector k with k[s]
// players on strategy s (Σk = N). It is the game the adoption dynamics
// (internal/adopt) evolve over: each RTT class of a flow population is one
// MultiSymmetric whose payoffs come from mixture-fraction simulations.
//
// Payoff(s, k) is the per-player utility of a strategy-s player under
// profile k; it is only ever called with k[s] ≥ 1 (a payoff of an
// unoccupied strategy is evaluated in the deviated profile that occupies
// it, mirroring SymmetricBinary's PayoffX(k+1) convention).
// Implementations may assume k is not retained after the call returns.
// Payoffs are memoized: empirical evaluation costs a simulation each.
type MultiSymmetric struct {
	N          int
	Strategies int
	Payoff     func(s int, k []int) float64

	memo map[string]float64
}

func (g *MultiSymmetric) payoff(s int, k []int) float64 {
	if g.memo == nil {
		g.memo = make(map[string]float64)
	}
	key := keyOf(s, k)
	if v, ok := g.memo[key]; ok {
		return v
	}
	v := g.Payoff(s, k)
	g.memo[key] = v
	return v
}

// validateProfile panics when k does not describe a distribution of this
// game's N players over its strategies; as with GroupSymmetric, a malformed
// profile would be memoized under a valid-looking key and poison later
// lookups, so it is a wiring bug.
func (g *MultiSymmetric) validateProfile(k []int) {
	if len(k) != g.Strategies {
		panic(fmt.Sprintf("game: profile has %d strategies, game has %d", len(k), g.Strategies))
	}
	total := 0
	for s, v := range k {
		if v < 0 {
			panic(fmt.Sprintf("game: strategy %d has negative count %d", s, v))
		}
		total += v
	}
	if total != g.N {
		panic(fmt.Sprintf("game: profile sums to %d players, game has %d", total, g.N))
	}
}

// IsEquilibrium reports whether profile k is a Nash Equilibrium with
// tolerance eps: no player on any occupied strategy gains more than eps by
// unilaterally switching to any other strategy. The switcher's payoff is
// evaluated in the deviated profile (one player moved from s to t), exactly
// as SymmetricBinary scores a switch at k±1.
func (g *MultiSymmetric) IsEquilibrium(k []int, eps float64) bool {
	g.validateProfile(k)
	for s := 0; s < g.Strategies; s++ {
		if k[s] == 0 {
			continue
		}
		stay := g.payoff(s, k)
		for t := 0; t < g.Strategies; t++ {
			if t == s {
				continue
			}
			k[s]--
			k[t]++
			gain := g.payoff(t, k)
			k[t]--
			k[s]++
			if gain > stay+eps {
				return false
			}
		}
	}
	return true
}

// Deviations lists every unilateral-switch profile reachable from k: for
// each occupied strategy s and each t ≠ s, the profile with one player
// moved from s to t, in (s, t) lexicographic order. Callers use it to
// pre-warm payoff caches before an IsEquilibrium check so the memoized
// lookups fan out through a worker pool instead of running serially.
func Deviations(k []int) [][]int {
	var out [][]int
	for s := range k {
		if k[s] == 0 {
			continue
		}
		for t := range k {
			if t == s {
				continue
			}
			d := append([]int(nil), k...)
			d[s]--
			d[t]++
			out = append(out, d)
		}
	}
	return out
}

// Equilibria enumerates every equilibrium profile over the compositions of
// N players into Strategies counts, in lexicographic order. The profile
// space has C(N+m−1, m−1) points; as with GroupSymmetric, bounding that is
// the caller's business.
func (g *MultiSymmetric) Equilibria(eps float64) ([][]int, error) {
	if g.N < 1 {
		return nil, errors.New("game: MultiSymmetric needs N >= 1")
	}
	if g.Strategies < 2 {
		return nil, errors.New("game: MultiSymmetric needs at least 2 strategies")
	}
	if g.Payoff == nil {
		return nil, errors.New("game: MultiSymmetric needs a payoff function")
	}
	k := make([]int, g.Strategies)
	var out [][]int
	var walk func(s, left int)
	walk = func(s, left int) {
		if s == g.Strategies-1 {
			k[s] = left
			if g.IsEquilibrium(k, eps) {
				out = append(out, append([]int(nil), k...))
			}
			k[s] = 0
			return
		}
		for v := 0; v <= left; v++ {
			k[s] = v
			walk(s+1, left-v)
		}
		k[s] = 0
	}
	walk(0, g.N)
	return out, nil
}
