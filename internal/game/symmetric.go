package game

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// SymmetricBinary is the congestion-control choice game of §4.1: N
// indistinguishable players each run either CUBIC or an alternative
// algorithm X (BBR in the paper's main experiments). Because players are
// symmetric, a strategy profile is fully described by k, the number of
// players choosing X, so there are only N+1 distinct distributions.
//
// PayoffX(k) is the per-flow utility of an X player when k players run X
// (1 ≤ k ≤ N); PayoffCubic(k) is the per-flow utility of a CUBIC player
// when k players run X (0 ≤ k ≤ N−1). Payoffs are memoized: empirical
// payoff evaluation costs a simulation each.
type SymmetricBinary struct {
	N           int
	PayoffX     func(k int) float64
	PayoffCubic func(k int) float64

	memoX map[int]float64
	memoC map[int]float64
}

func (g *SymmetricBinary) payoffX(k int) float64 {
	if g.memoX == nil {
		g.memoX = make(map[int]float64)
	}
	if v, ok := g.memoX[k]; ok {
		return v
	}
	v := g.PayoffX(k)
	g.memoX[k] = v
	return v
}

func (g *SymmetricBinary) payoffC(k int) float64 {
	if g.memoC == nil {
		g.memoC = make(map[int]float64)
	}
	if v, ok := g.memoC[k]; ok {
		return v
	}
	v := g.PayoffCubic(k)
	g.memoC[k] = v
	return v
}

// IsEquilibrium reports whether the distribution with k X-players is a Nash
// Equilibrium with tolerance eps: no CUBIC player gains more than eps by
// switching to X, and no X player gains more than eps by switching to
// CUBIC.
func (g *SymmetricBinary) IsEquilibrium(k int, eps float64) bool {
	if k > 0 {
		// An X player switching to CUBIC lands in distribution k−1.
		if g.payoffC(k-1) > g.payoffX(k)+eps {
			return false
		}
	}
	if k < g.N {
		// A CUBIC player switching to X lands in distribution k+1.
		if g.payoffX(k+1) > g.payoffC(k)+eps {
			return false
		}
	}
	return true
}

// Equilibria enumerates every equilibrium distribution, returned as counts
// of X players in ascending order. Noisy payoffs commonly produce several
// adjacent equilibria, as the paper observes in §4.4.
func (g *SymmetricBinary) Equilibria(eps float64) ([]int, error) {
	if g.N < 1 {
		return nil, errors.New("game: SymmetricBinary needs N >= 1")
	}
	if g.PayoffX == nil || g.PayoffCubic == nil {
		return nil, errors.New("game: SymmetricBinary needs both payoff functions")
	}
	var out []int
	for k := 0; k <= g.N; k++ {
		if g.IsEquilibrium(k, eps) {
			out = append(out, k)
		}
	}
	return out, nil
}

// FirstEquilibrium performs the §4.1 line-walk: starting from k X-players,
// follow unilateral switching incentives until a distribution with no
// incentive remains, mirroring how a population would evolve. It is faster
// than Equilibria when payoff evaluations are expensive because it only
// explores the walked path. maxSteps bounds the walk (N suffices when
// payoffs are monotone; noisy payoffs may cycle, in which case the last
// visited distribution is returned with ok == false).
func (g *SymmetricBinary) FirstEquilibrium(start int, eps float64, maxSteps int) (k int, ok bool) {
	k = start
	if k < 0 {
		k = 0
	}
	if k > g.N {
		k = g.N
	}
	for step := 0; step < maxSteps; step++ {
		switch {
		case k < g.N && g.payoffX(k+1) > g.payoffC(k)+eps:
			k++
		case k > 0 && g.payoffC(k-1) > g.payoffX(k)+eps:
			k--
		default:
			return k, true
		}
	}
	return k, false
}

// GroupSpec is one same-RTT group in the group-symmetric game.
type GroupSpec struct {
	// Size is the number of flows in the group.
	Size int
}

// GroupSymmetric generalizes SymmetricBinary to m groups of symmetric
// players (the §4.5 multi-RTT experiments: 3 groups of 10 flows). A profile
// is a vector k with k[i] X-players in group i; the state space is
// Π(Size_i + 1) instead of 2^N.
//
// PayoffX(i, k) is an X player's utility in group i under profile k;
// PayoffCubic(i, k) likewise for a CUBIC player. Implementations may assume
// k is not retained after the call returns.
type GroupSymmetric struct {
	Groups      []GroupSpec
	PayoffX     func(group int, k []int) float64
	PayoffCubic func(group int, k []int) float64

	memoX map[string]float64
	memoC map[string]float64
}

// keyOf encodes a memo key for (group, profile) collision-free: decimal
// counts with explicit separators. The previous encoding cast each count
// with byte(v), which silently collided once counts exceeded 255 — profile
// (300) and profile (44) shared a key — exactly the regime population-scale
// games enter. Decimal digits plus separators are trivially injective: the
// key is parseable back into the profile.
func keyOf(group int, k []int) string {
	b := make([]byte, 0, 4+4*len(k))
	b = strconv.AppendInt(b, int64(group), 10)
	b = append(b, ':')
	for _, v := range k {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

func (g *GroupSymmetric) payoffX(group int, k []int) float64 {
	if g.memoX == nil {
		g.memoX = make(map[string]float64)
	}
	key := keyOf(group, k)
	if v, ok := g.memoX[key]; ok {
		return v
	}
	v := g.PayoffX(group, k)
	g.memoX[key] = v
	return v
}

func (g *GroupSymmetric) payoffC(group int, k []int) float64 {
	if g.memoC == nil {
		g.memoC = make(map[string]float64)
	}
	key := keyOf(group, k)
	if v, ok := g.memoC[key]; ok {
		return v
	}
	v := g.PayoffCubic(group, k)
	g.memoC[key] = v
	return v
}

// validateProfile panics when profile k does not fit the game's groups: a
// malformed profile would be memoized under a syntactically valid key and
// silently poison every later lookup, so it is a wiring bug, not a runtime
// condition. Validation runs on the memoized IsEquilibrium path — not only
// inside Equilibria — because external callers (incentive walks, adoption
// dynamics) hand IsEquilibrium profiles they built themselves.
func (g *GroupSymmetric) validateProfile(k []int) {
	if len(k) != len(g.Groups) {
		panic(fmt.Sprintf("game: profile has %d groups, game has %d", len(k), len(g.Groups)))
	}
	for i, spec := range g.Groups {
		if k[i] < 0 || k[i] > spec.Size {
			panic(fmt.Sprintf("game: group %d count %d outside [0, %d]", i, k[i], spec.Size))
		}
	}
}

// IsEquilibrium reports whether profile k is a Nash Equilibrium with
// tolerance eps. A profile that does not fit the game's groups panics (see
// validateProfile).
func (g *GroupSymmetric) IsEquilibrium(k []int, eps float64) bool {
	g.validateProfile(k)
	for i, spec := range g.Groups {
		if k[i] > 0 {
			// An X player in group i switches to CUBIC.
			k[i]--
			gain := g.payoffC(i, k)
			k[i]++
			if gain > g.payoffX(i, k)+eps {
				return false
			}
		}
		if k[i] < spec.Size {
			// A CUBIC player in group i switches to X.
			k[i]++
			gain := g.payoffX(i, k)
			k[i]--
			if gain > g.payoffC(i, k)+eps {
				return false
			}
		}
	}
	return true
}

// Equilibria enumerates all equilibrium profiles.
func (g *GroupSymmetric) Equilibria(eps float64) ([][]int, error) {
	if len(g.Groups) == 0 {
		return nil, errors.New("game: GroupSymmetric needs at least one group")
	}
	for _, spec := range g.Groups {
		// No upper bound: memo keys are collision-free at any count (the
		// former 250 cap guarded the byte(v) key encoding). The profile
		// space is Π(Size+1) — bounding enumeration cost is the caller's
		// business.
		if spec.Size < 0 {
			return nil, errors.New("game: negative group size")
		}
	}
	if g.PayoffX == nil || g.PayoffCubic == nil {
		return nil, errors.New("game: GroupSymmetric needs both payoff functions")
	}
	k := make([]int, len(g.Groups))
	var out [][]int
	var walk func(i int)
	walk = func(i int) {
		if i == len(g.Groups) {
			if g.IsEquilibrium(k, eps) {
				out = append(out, append([]int(nil), k...))
			}
			return
		}
		for v := 0; v <= g.Groups[i].Size; v++ {
			k[i] = v
			walk(i + 1)
		}
		k[i] = 0
	}
	walk(0)
	return out, nil
}

// TotalX sums the X players in a profile.
func TotalX(k []int) int {
	t := 0
	for _, v := range k {
		t += v
	}
	return t
}

// Epsilon suggests an equilibrium tolerance for throughput payoffs: frac of
// the fair share. The paper notes that gains around the NE are marginal,
// which is why multiple neighbouring NE distributions appear across trials.
func Epsilon(capacity float64, n int, frac float64) float64 {
	if n <= 0 {
		return 0
	}
	return math.Abs(frac) * capacity / float64(n)
}
