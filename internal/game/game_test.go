package game

import (
	"reflect"
	"testing"
)

// Prisoner's dilemma: defect/defect is the unique pure NE.
func TestNormalFormPrisonersDilemma(t *testing.T) {
	// Strategy 0 = cooperate, 1 = defect.
	payoffs := map[[2]int][2]float64{
		{0, 0}: {3, 3},
		{0, 1}: {0, 5},
		{1, 0}: {5, 0},
		{1, 1}: {1, 1},
	}
	g := &NormalForm{
		NumStrategies: []int{2, 2},
		Payoff: func(p []int) []float64 {
			v := payoffs[[2]int{p[0], p[1]}]
			return v[:]
		},
	}
	ne, err := g.PureNash(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 1}}
	if !reflect.DeepEqual(ne, want) {
		t.Errorf("NE = %v, want %v", ne, want)
	}
}

// Matching pennies has no pure-strategy NE.
func TestNormalFormMatchingPennies(t *testing.T) {
	g := &NormalForm{
		NumStrategies: []int{2, 2},
		Payoff: func(p []int) []float64 {
			if p[0] == p[1] {
				return []float64{1, -1}
			}
			return []float64{-1, 1}
		},
	}
	ne, err := g.PureNash(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne) != 0 {
		t.Errorf("NE = %v, want none", ne)
	}
}

// Coordination game: both all-0 and all-1 are equilibria.
func TestNormalFormCoordination(t *testing.T) {
	g := &NormalForm{
		NumStrategies: []int{2, 2},
		Payoff: func(p []int) []float64 {
			if p[0] == p[1] {
				return []float64{1, 1}
			}
			return []float64{0, 0}
		},
	}
	ne, err := g.PureNash(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0}, {1, 1}}
	if !reflect.DeepEqual(ne, want) {
		t.Errorf("NE = %v, want %v", ne, want)
	}
}

func TestNormalFormValidation(t *testing.T) {
	if _, err := (&NormalForm{}).PureNash(0); err == nil {
		t.Error("empty game accepted")
	}
	if _, err := (&NormalForm{NumStrategies: []int{0}}).PureNash(0); err == nil {
		t.Error("player with no strategies accepted")
	}
	if _, err := (&NormalForm{NumStrategies: []int{2}}).PureNash(0); err == nil {
		t.Error("nil payoff accepted")
	}
}

// The paper's Figure 6 construction: per-flow X payoff declines in k and
// crosses the constant fair share; the crossing point is the equilibrium.
func fig6Game(n int, capacity float64) *SymmetricBinary {
	// Aggregate X bandwidth fixed at 40% of capacity: per-flow X payoff
	// 0.4·C/k; CUBIC players split the rest.
	return &SymmetricBinary{
		N: n,
		PayoffX: func(k int) float64 {
			return 0.4 * capacity / float64(k)
		},
		PayoffCubic: func(k int) float64 {
			if k == n {
				return 0
			}
			return 0.6 * capacity / float64(n-k)
		},
	}
}

func TestSymmetricBinaryCrossingNE(t *testing.T) {
	// n=10, C=100: X payoff 40/k, CUBIC payoff 60/(10−k); crossing where
	// 40/k = 60/(10−k) → k = 4.
	g := fig6Game(10, 100)
	ne, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ne, []int{4}) {
		t.Errorf("NE = %v, want [4]", ne)
	}
}

func TestSymmetricBinaryToleranceWidensNESet(t *testing.T) {
	g := fig6Game(10, 100)
	strict, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := g.Equilibria(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) < len(strict) {
		t.Errorf("tolerance shrank the NE set: %v vs %v", loose, strict)
	}
}

// If X always beats CUBIC, all-X is the only equilibrium (Case 1 of §4.1).
func TestSymmetricBinaryAllXNE(t *testing.T) {
	g := &SymmetricBinary{
		N:           8,
		PayoffX:     func(k int) float64 { return 100 },
		PayoffCubic: func(k int) float64 { return 1 },
	}
	ne, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ne, []int{8}) {
		t.Errorf("NE = %v, want [8]", ne)
	}
}

func TestSymmetricBinaryValidation(t *testing.T) {
	if _, err := (&SymmetricBinary{}).Equilibria(0); err == nil {
		t.Error("zero-N game accepted")
	}
	if _, err := (&SymmetricBinary{N: 3}).Equilibria(0); err == nil {
		t.Error("nil payoffs accepted")
	}
}

func TestFirstEquilibriumWalk(t *testing.T) {
	g := fig6Game(10, 100)
	for _, start := range []int{0, 4, 10} {
		k, ok := g.FirstEquilibrium(start, 0, 100)
		if !ok || k != 4 {
			t.Errorf("walk from %d gave k=%d ok=%v, want 4", start, k, ok)
		}
	}
	// Out-of-range starts are clamped.
	if k, ok := g.FirstEquilibrium(-5, 0, 100); !ok || k != 4 {
		t.Errorf("walk from -5 gave %d,%v", k, ok)
	}
}

func TestFirstEquilibriumMemoizes(t *testing.T) {
	calls := 0
	g := &SymmetricBinary{
		N: 10,
		PayoffX: func(k int) float64 {
			calls++
			return 40 / float64(k)
		},
		PayoffCubic: func(k int) float64 {
			if k == 10 {
				return 0
			}
			return 60 / float64(10-k)
		},
	}
	g.FirstEquilibrium(0, 0, 100)
	first := calls
	g.FirstEquilibrium(0, 0, 100)
	if calls != first {
		t.Errorf("payoffs re-evaluated despite memoization: %d then %d", first, calls)
	}
}

// Group-symmetric game reproducing the §4.5 structure: short-RTT flows
// prefer CUBIC, long-RTT flows prefer X.
func TestGroupSymmetricEquilibria(t *testing.T) {
	// Two groups of 2. Group 0 players always do better with CUBIC;
	// group 1 players always do better with X.
	g := &GroupSymmetric{
		Groups: []GroupSpec{{Size: 2}, {Size: 2}},
		PayoffX: func(group int, k []int) float64 {
			if group == 0 {
				return 1
			}
			return 10
		},
		PayoffCubic: func(group int, k []int) float64 {
			if group == 0 {
				return 10
			}
			return 1
		},
	}
	ne, err := g.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}}
	if !reflect.DeepEqual(ne, want) {
		t.Errorf("NE = %v, want %v", ne, want)
	}
}

func TestGroupSymmetricMatchesSymmetricBinary(t *testing.T) {
	// A single group must agree with the symmetric binary game.
	bin := fig6Game(6, 100)
	grp := &GroupSymmetric{
		Groups:      []GroupSpec{{Size: 6}},
		PayoffX:     func(_ int, k []int) float64 { return bin.PayoffX(k[0]) },
		PayoffCubic: func(_ int, k []int) float64 { return bin.PayoffCubic(k[0]) },
	}
	wantKs, err := bin.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := grp.Equilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	var gotKs []int
	for _, k := range got {
		gotKs = append(gotKs, k[0])
	}
	if !reflect.DeepEqual(gotKs, wantKs) {
		t.Errorf("group NE %v != binary NE %v", gotKs, wantKs)
	}
}

func TestGroupSymmetricValidation(t *testing.T) {
	if _, err := (&GroupSymmetric{}).Equilibria(0); err == nil {
		t.Error("no groups accepted")
	}
	g := &GroupSymmetric{Groups: []GroupSpec{{Size: -1}}}
	if _, err := g.Equilibria(0); err == nil {
		t.Error("negative group size accepted")
	}
	// Sizes above 255 are legal since the memo keys became collision-free
	// (the former 250 cap guarded the byte-truncating key encoding).
	big := &GroupSymmetric{
		Groups:      []GroupSpec{{Size: 300}},
		PayoffX:     func(int, []int) float64 { return 1 },
		PayoffCubic: func(int, []int) float64 { return 0 },
	}
	ne, err := big.Equilibria(0)
	if err != nil {
		t.Fatalf("size-300 group rejected: %v", err)
	}
	if !reflect.DeepEqual(ne, [][]int{{300}}) {
		t.Errorf("NE = %v, want [[300]]", ne)
	}
}

func TestTotalX(t *testing.T) {
	if TotalX([]int{1, 2, 3}) != 6 {
		t.Error("TotalX wrong")
	}
}

func TestEpsilon(t *testing.T) {
	if Epsilon(100, 10, 0.05) != 0.5 {
		t.Error("Epsilon wrong")
	}
	if Epsilon(100, 0, 0.05) != 0 {
		t.Error("Epsilon with zero flows should be 0")
	}
}
