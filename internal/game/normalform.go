// Package game provides the game-theoretic machinery of §4 of the paper:
// generic normal-form games with pure-strategy Nash Equilibrium enumeration,
// plus the two specializations the experiments use — the symmetric binary
// congestion-control choice game (every flow picks CUBIC or X) and its
// group-symmetric extension for flows with different RTTs.
//
// Payoffs are supplied by the caller: the analytical model (internal/core)
// for predictions, or measured simulator throughput for empirical
// equilibria. Because measured payoffs are noisy, equilibrium checks accept
// a tolerance: a deviation only counts as an incentive when it improves the
// payoff by more than epsilon.
package game

import (
	"errors"
	"fmt"
)

// NormalForm is a finite normal-form game. Strategy profiles are slices
// with one strategy index per player.
type NormalForm struct {
	// NumStrategies[i] is the number of strategies available to player i.
	NumStrategies []int
	// Payoff returns each player's utility for a profile. The slice it
	// returns must have one entry per player.
	Payoff func(profile []int) []float64
}

// Validate checks the game definition.
func (g *NormalForm) Validate() error {
	if len(g.NumStrategies) == 0 {
		return errors.New("game: no players")
	}
	for i, n := range g.NumStrategies {
		if n < 1 {
			return fmt.Errorf("game: player %d has no strategies", i)
		}
	}
	if g.Payoff == nil {
		return errors.New("game: nil payoff function")
	}
	return nil
}

// PureNash enumerates all pure-strategy Nash Equilibria with tolerance eps:
// a profile is an equilibrium if no unilateral deviation improves the
// deviating player's payoff by more than eps.
//
// Enumeration is exhaustive over the product strategy space, so this is
// intended for small games; the symmetric specializations below scale to
// the paper's 50-flow experiments.
func (g *NormalForm) PureNash(eps float64) ([][]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.NumStrategies)
	profile := make([]int, n)
	var equilibria [][]int
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			if g.isNash(profile, eps) {
				equilibria = append(equilibria, append([]int(nil), profile...))
			}
			return
		}
		for s := 0; s < g.NumStrategies[i]; s++ {
			profile[i] = s
			walk(i + 1)
		}
	}
	walk(0)
	return equilibria, nil
}

func (g *NormalForm) isNash(profile []int, eps float64) bool {
	base := g.Payoff(profile)
	for i := range profile {
		orig := profile[i]
		for s := 0; s < g.NumStrategies[i]; s++ {
			if s == orig {
				continue
			}
			profile[i] = s
			if g.Payoff(profile)[i] > base[i]+eps {
				profile[i] = orig
				return false
			}
		}
		profile[i] = orig
	}
	return true
}
