package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bbrnash/internal/rng"
	"bbrnash/internal/units"

	// Validate resolves algorithm names through the registry; link the
	// full built-in set for the tests. (The package itself cannot link
	// them — see the Algorithms doc comment.)
	_ "bbrnash/internal/cc/bbr"
	_ "bbrnash/internal/cc/bbrv2"
	_ "bbrnash/internal/cc/copa"
	_ "bbrnash/internal/cc/cubic"
	_ "bbrnash/internal/cc/reno"
	_ "bbrnash/internal/cc/vivace"
)

func validSpec() Spec {
	sp := Mix("bbr", 3, 2, 100*units.Mbps,
		units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 2),
		40*time.Millisecond, 2*time.Minute)
	sp.Seed = 42
	return sp
}

// TestKeyGolden pins the canonical encoding byte for byte. If this test
// fails, the key format changed: bump KeyVersion and update the golden
// string — silent drift is exactly what the pin exists to catch.
func TestKeyGolden(t *testing.T) {
	const want = "scenario|v5|" +
		"bk=packet|" +
		"mss=0x1.6dp+10|" +
		"aj=1000000|sj=10000000|dur=120000000000|seed=42|" +
		"tp=bottleneck:0x1.7d784p+26:0x1.e848p+19:" +
		"0x0p+00:0x0p+00:0:0x0p+00:0:0:0x0p+00:0x0p+00|" +
		"g=bbr:3:40000000:0:bottleneck,cubic:2:40000000:0:bottleneck"
	if got := validSpec().Key(); got != want {
		t.Errorf("Key() =\n %q\nwant\n %q", got, want)
	}
}

// TestKeyGoldenFaults pins the fault fields' encoding: exact hex rates and
// depth, nanosecond periods, integer burst length.
func TestKeyGoldenFaults(t *testing.T) {
	sp := validSpec()
	sp.Faults = Faults{
		LossRate:    0.02,
		AckLossRate: 0.01,
		FlapPeriod:  2 * time.Second,
		FlapDepth:   0.5,
		BurstEvery:  30 * time.Second,
		BurstLen:    8,
	}
	const want = "scenario|v5|" +
		"bk=packet|" +
		"mss=0x1.6dp+10|" +
		"aj=1000000|sj=10000000|dur=120000000000|seed=42|" +
		"tp=bottleneck:0x1.7d784p+26:0x1.e848p+19:" +
		"0x1.47ae147ae147bp-06:0x1.47ae147ae147bp-07:" +
		"2000000000:0x1p-01:30000000000:8:0x0p+00:0x0p+00|" +
		"g=bbr:3:40000000:0:bottleneck,cubic:2:40000000:0:bottleneck"
	if got := sp.Key(); got != want {
		t.Errorf("Key() =\n %q\nwant\n %q", got, want)
	}
	if sp.Key() == validSpec().Key() {
		t.Error("faulted and clean specs share a key")
	}
}

// TestKeyBackend: the backend is part of the scenario's identity — the
// packet and fluid engines must never share a cache entry — while an empty
// Backend resolves to the packet default and shares its key.
func TestKeyBackend(t *testing.T) {
	pkt := validSpec()
	fl := validSpec()
	fl.Backend = BackendFluid
	if pkt.Key() == fl.Key() {
		t.Fatalf("packet and fluid specs share a key: %q", pkt.Key())
	}
	if !strings.Contains(fl.Key(), "|bk=fluid|") {
		t.Errorf("fluid key missing bk=fluid field: %q", fl.Key())
	}
	explicit := validSpec()
	explicit.Backend = BackendPacket
	if pkt.Key() != explicit.Key() {
		t.Errorf("zero-Backend key %q != explicit-packet key %q", pkt.Key(), explicit.Key())
	}
}

// TestValidateBackend: unknown backends are rejected; both registered
// backends validate.
func TestValidateBackend(t *testing.T) {
	for _, bk := range Backends() {
		sp := validSpec()
		sp.Backend = bk
		if err := sp.Validate(); err != nil {
			t.Errorf("backend %q: %v", bk, err)
		}
	}
	sp := validSpec()
	sp.Backend = "quantum"
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend validated: err=%v", err)
	}
}

// TestJSONBackendRoundTrip: the backend survives the file form.
func TestJSONBackendRoundTrip(t *testing.T) {
	sp := validSpec()
	sp.Backend = BackendFluid
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Backend != BackendFluid {
		t.Errorf("round-tripped backend %q, want %q", back.Backend, BackendFluid)
	}
	// The default stays out of the file form entirely.
	data, err = json.Marshal(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "backend") {
		t.Errorf("zero backend serialized: %s", data)
	}
}

// TestKeyDefaultsResolved: an explicit default MSS and a zero MSS are the
// same scenario and must share a key.
func TestKeyDefaultsResolved(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.MSS = units.MSS
	if a.Key() != b.Key() {
		t.Errorf("zero-MSS key %q != explicit-default key %q", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), KeyPrefix) {
		t.Errorf("key %q lacks prefix %q", a.Key(), KeyPrefix)
	}
}

// randomSpec draws a structurally arbitrary spec — including values no
// experiment would use — to exercise the JSON round-trip.
func randomSpec(r *rng.Source) Spec {
	algs := []string{"bbr", "bbrv2", "copa", "cubic", "reno", "vivace"}
	sp := Spec{
		Capacity:    units.Rate(r.Float64()*1e9) + 1,
		Buffer:      units.Bytes(r.Float64() * 1e7),
		MSS:         units.Bytes(r.Intn(3000)),
		AckJitter:   time.Duration(r.Intn(int(5 * time.Millisecond))),
		StartJitter: time.Duration(r.Intn(int(50 * time.Millisecond))),
		Duration:    time.Duration(r.Intn(int(5*time.Minute))) + 1,
		Seed:        r.Uint64(),
	}
	if r.Float64() < 0.5 {
		sp.Faults = Faults{
			LossRate:    r.Float64() * 0.5,
			AckLossRate: r.Float64() * 0.5,
			FlapPeriod:  time.Duration(r.Intn(int(10*time.Second))) + 1,
			FlapDepth:   r.Float64() * 0.9,
			BurstEvery:  time.Duration(r.Intn(int(time.Minute))) + 1,
			BurstLen:    r.Intn(20),
		}
	}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		sp.Groups = append(sp.Groups, Group{
			Algorithm: algs[r.Intn(len(algs))],
			Count:     r.Intn(10),
			RTT:       time.Duration(r.Intn(int(400*time.Millisecond))) + 1,
			Start:     time.Duration(r.Intn(int(10 * time.Second))),
		})
	}
	return sp
}

// TestJSONRoundTrip: for arbitrary specs, Marshal→Unmarshal reproduces the
// spec exactly — same struct, same canonical key — so the spec a run emits
// reproduces that run.
func TestJSONRoundTrip(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		sp := randomSpec(r)
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("spec %d: %v (json %s)", i, err, data)
		}
		if back.Key() != sp.Key() {
			t.Fatalf("spec %d: round-trip key drift\n got %q\nwant %q\njson %s",
				i, back.Key(), sp.Key(), data)
		}
	}
}

// TestJSONConveniences: the human-friendly input spellings decode to the
// intended base-unit values.
func TestJSONConveniences(t *testing.T) {
	const in = `{
		"capacity_mbps": 100,
		"buffer_bdp": 2, "buffer_bdp_rtt": "40ms",
		"duration": "2m", "seed": 1,
		"groups": [
			{"algorithm": "bbr", "count": 3, "rtt": "40ms"},
			{"algorithm": "cubic", "count": 2, "rtt": "80ms", "start": "1s"}
		]
	}`
	var sp Spec
	if err := json.Unmarshal([]byte(in), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Capacity != 100*units.Mbps {
		t.Errorf("Capacity = %v", sp.Capacity)
	}
	if want := units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 2); sp.Buffer != want {
		t.Errorf("Buffer = %v, want %v", sp.Buffer, want)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Groups[1].Start != time.Second || sp.Groups[1].RTT != 80*time.Millisecond {
		t.Errorf("group 1 = %+v", sp.Groups[1])
	}
	// Ambiguous spellings are rejected.
	for _, bad := range []string{
		`{"capacity_bps": 1, "capacity_mbps": 1}`,
		`{"buffer_bytes": 1, "buffer_bdp": 1}`,
		`{"buffer_bdp": 2}`,
	} {
		var s Spec
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

// TestValidate covers the rejection cases.
func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero capacity", func(s *Spec) { s.Capacity = 0 }},
		{"sub-MSS buffer", func(s *Spec) { s.Buffer = 100 }},
		{"zero duration", func(s *Spec) { s.Duration = 0 }},
		{"negative ack jitter", func(s *Spec) { s.AckJitter = -1 }},
		{"negative start jitter", func(s *Spec) { s.StartJitter = -1 }},
		{"empty groups", func(s *Spec) { s.Groups = nil }},
		{"unnamed algorithm", func(s *Spec) { s.Groups[0].Algorithm = "" }},
		{"unknown algorithm", func(s *Spec) { s.Groups[0].Algorithm = "hybla" }},
		{"negative count", func(s *Spec) { s.Groups[0].Count = -1 }},
		{"zero RTT", func(s *Spec) { s.Groups[0].RTT = 0 }},
		{"negative start", func(s *Spec) { s.Groups[0].Start = -time.Second }},
		{"no flows", func(s *Spec) { s.Groups[0].Count = 0; s.Groups[1].Count = 0 }},
		{"loss rate one", func(s *Spec) { s.Faults.LossRate = 1 }},
		{"negative loss rate", func(s *Spec) { s.Faults.LossRate = -0.1 }},
		{"ack loss rate one", func(s *Spec) { s.Faults.AckLossRate = 1 }},
		{"flap depth one", func(s *Spec) { s.Faults.FlapDepth = 1; s.Faults.FlapPeriod = time.Second }},
		{"flap depth without period", func(s *Spec) { s.Faults.FlapDepth = 0.5 }},
		{"negative flap period", func(s *Spec) { s.Faults.FlapPeriod = -time.Second }},
		{"burst length without interval", func(s *Spec) { s.Faults.BurstLen = 4 }},
		{"negative burst length", func(s *Spec) { s.Faults.BurstLen = -1; s.Faults.BurstEvery = time.Second }},
		{"negative burst interval", func(s *Spec) { s.Faults.BurstEvery = -time.Second }},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// Zero-count groups are legal as long as some flow exists: sweeps keep
	// empty classes so group indices stay stable.
	sp := validSpec()
	sp.Groups[0].Count = 0
	if err := sp.Validate(); err != nil {
		t.Errorf("zero-count group rejected: %v", err)
	}
}

func TestParseGroups(t *testing.T) {
	gs, err := ParseGroups("bbr:2, cubic:3", 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || gs[0].Algorithm != "bbr" || gs[0].Count != 2 ||
		gs[1].Algorithm != "cubic" || gs[1].Count != 3 ||
		gs[0].RTT != 40*time.Millisecond {
		t.Errorf("ParseGroups = %+v", gs)
	}
	if gs, err = ParseGroups("vivace,copa", time.Millisecond); err != nil || gs[0].Count != 1 || gs[1].Count != 1 {
		t.Errorf("bare names: %+v, %v", gs, err)
	}
	for _, bad := range []string{"", "  ", "bbr:", "bbr:0", "bbr:-1", "bbr:x", "unknownalg:2", "bbr:2,,cubic:1"} {
		if _, err := ParseGroups(bad, time.Millisecond); err == nil {
			t.Errorf("list %q accepted", bad)
		}
	}
}

// TestFaultsHelpers covers the audit-bound helpers: the lowest effective
// rate under a flap and the exact time-average over a window.
func TestFaultsHelpers(t *testing.T) {
	f := Faults{FlapPeriod: 2 * time.Second, FlapDepth: 0.5}
	c := 100 * units.Mbps
	if got := f.MinCapacity(c); got != 50*units.Mbps {
		t.Errorf("MinCapacity = %v, want 50Mbps", got)
	}
	if got := (Faults{}).MinCapacity(c); got != c {
		t.Errorf("clean MinCapacity = %v, want %v", got, c)
	}
	cases := []struct {
		dur  time.Duration
		want units.Rate
	}{
		// Whole periods average to (1 − depth/2)·C.
		{4 * time.Second, 75 * units.Mbps},
		// Half a period is all up-phase.
		{time.Second, 100 * units.Mbps},
		// 1.5 periods: 2s up, 1s down → (2·100 + 1·50)/3.
		{3 * time.Second, units.Rate(float64(250*units.Mbps) / 3)},
	}
	for _, tc := range cases {
		if got := f.MeanCapacityOver(c, tc.dur); !closeRate(got, tc.want) {
			t.Errorf("MeanCapacityOver(%v) = %v, want %v", tc.dur, got, tc.want)
		}
	}
	if got := (Faults{}).MeanCapacityOver(c, time.Minute); got != c {
		t.Errorf("clean MeanCapacityOver = %v, want %v", got, c)
	}
	// A valid faulted spec passes Validate, and Active distinguishes the
	// clean zero value.
	sp := validSpec()
	sp.Faults = Faults{LossRate: 0.02, FlapPeriod: 2 * time.Second, FlapDepth: 0.5}
	if err := sp.Validate(); err != nil {
		t.Errorf("valid faulted spec rejected: %v", err)
	}
	if !sp.Faults.Active() || (Faults{}).Active() {
		t.Errorf("Active: faulted %v, clean %v", sp.Faults.Active(), (Faults{}).Active())
	}
}

func closeRate(a, b units.Rate) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*float64(b)
}
