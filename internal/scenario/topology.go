package scenario

import (
	"fmt"
	"time"

	"bbrnash/internal/units"
)

// DefaultLinkName names the implicit bottleneck of a legacy single-link
// spec. A spec written with the scalar Capacity/Buffer/Faults fields and a
// spec written with one explicit link of this name and the same parameters
// are the same scenario: Topology and PathOf canonicalize both to the same
// form, so they share one canonical key and one cache entry.
const DefaultLinkName = "bottleneck"

// Link is one named directed bottleneck in a topology: a FIFO drop-tail
// queue of Buffer bytes drained at Capacity, with optional per-link faults
// and an optional reverse-direction twin that carries the ACK stream of
// every path traversing this link.
type Link struct {
	// Name identifies the link in group paths, fault targets, audit
	// violations and trace records. Names are restricted to letters,
	// digits, '.', '_' and '-' so they embed safely in canonical keys.
	Name     string
	Capacity units.Rate
	Buffer   units.Bytes
	// Faults injects deterministic adverse conditions on this link (loss,
	// capacity flaps, bursts). AckLossRate applies to the ACK stream
	// returning across this link — on the reverse twin when one is
	// configured, on the modeled zero-delay return path otherwise.
	Faults Faults
	// RevCapacity, when positive, gives the link a reverse-direction twin:
	// a real queue of RevBuffer bytes drained at RevCapacity that ACKs
	// traverse (at units.AckBytes each) on their way back, so reverse-path
	// congestion delays and drops acknowledgments. Zero means the reverse
	// direction is ideal (ACKs return after the path's propagation delay).
	RevCapacity units.Rate
	// RevBuffer is the reverse twin's queue size; it must hold at least
	// one ACK (units.AckBytes) when RevCapacity is set.
	RevBuffer units.Bytes
}

// HasReverse reports whether the link has a reverse-direction twin.
func (l Link) HasReverse() bool { return l.RevCapacity > 0 }

// validLinkName reports whether a link name uses only the characters safe
// for canonical keys and trace records.
func validLinkName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

var defaultPath = []string{DefaultLinkName}

// Topology returns the spec's canonical link list: Links when set,
// otherwise one synthesized DefaultLinkName link carrying the legacy
// scalar Capacity/Buffer/Faults fields. Every layer that needs the
// topology (key, builder, audit, fluid reduction) goes through this, so
// the legacy form is exactly a one-link special case.
func (s Spec) Topology() []Link {
	if len(s.Links) > 0 {
		return s.Links
	}
	return []Link{{Name: DefaultLinkName, Capacity: s.Capacity, Buffer: s.Buffer, Faults: s.Faults}}
}

// MultiLink reports whether the spec needs the multi-link machinery:
// more than one link, or any reverse-direction twin.
func (s Spec) MultiLink() bool {
	if len(s.Links) == 0 {
		return false
	}
	if len(s.Links) > 1 {
		return true
	}
	return s.Links[0].HasReverse()
}

// PathOf returns group gi's resolved path as ordered link names: the
// group's explicit Path when set, the implicit single-bottleneck path
// otherwise. The returned slice must not be mutated.
func (s Spec) PathOf(gi int) []string {
	if gi >= 0 && gi < len(s.Groups) && len(s.Groups[gi].Path) > 0 {
		return s.Groups[gi].Path
	}
	return defaultPath
}

// LinkByName looks a link up in the canonical topology.
func (s Spec) LinkByName(name string) (Link, bool) {
	for _, l := range s.Topology() {
		if l.Name == name {
			return l, true
		}
	}
	return Link{}, false
}

// PathLinks resolves group gi's path to Link values, in path order. It
// panics on an unvalidated spec whose path names an unknown link.
func (s Spec) PathLinks(gi int) []Link {
	names := s.PathOf(gi)
	links := make([]Link, len(names))
	for i, name := range names {
		l, ok := s.LinkByName(name)
		if !ok {
			panic(fmt.Sprintf("scenario: group %d path names unknown link %q", gi, name))
		}
		links[i] = l
	}
	return links
}

// validateLinks checks the explicit topology: link names, per-link
// parameters and reverse twins. The caller has already applied defaults.
func (s Spec) validateLinks() error {
	if s.Capacity != 0 || s.Buffer != 0 {
		return fmt.Errorf("scenario: links and top-level capacity/buffer are mutually exclusive")
	}
	if s.Faults != (Faults{}) {
		return fmt.Errorf("scenario: links and top-level faults are mutually exclusive (faults are per-link)")
	}
	seen := make(map[string]bool, len(s.Links))
	for i, l := range s.Links {
		if !validLinkName(l.Name) {
			return fmt.Errorf("scenario: link %d has invalid name %q (want letters, digits, '.', '_', '-')", i, l.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("scenario: duplicate link name %q", l.Name)
		}
		seen[l.Name] = true
		if l.Capacity <= 0 {
			return fmt.Errorf("scenario: link %q: non-positive capacity %v", l.Name, l.Capacity)
		}
		if l.Buffer < s.MSS {
			return fmt.Errorf("scenario: link %q: buffer %v below one segment (%v)", l.Name, l.Buffer, s.MSS)
		}
		if err := l.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario: link %q: %w", l.Name, err)
		}
		if l.RevCapacity < 0 {
			return fmt.Errorf("scenario: link %q: negative reverse capacity %v", l.Name, l.RevCapacity)
		}
		if l.RevCapacity > 0 && l.RevBuffer < units.AckBytes {
			return fmt.Errorf("scenario: link %q: reverse buffer %v below one ACK (%v)", l.Name, l.RevBuffer, units.AckBytes)
		}
		if l.RevCapacity == 0 && l.RevBuffer != 0 {
			return fmt.Errorf("scenario: link %q: reverse buffer without reverse capacity", l.Name)
		}
	}
	return nil
}

// validatePath checks one group's path against the topology.
func (s Spec) validatePath(gi int, path []string) error {
	if len(s.Links) == 0 {
		if len(path) > 0 {
			return fmt.Errorf("scenario: group %d names a path but the spec defines no links", gi)
		}
		return nil
	}
	if len(path) == 0 {
		return fmt.Errorf("scenario: group %d: empty path (specs with links need an explicit path per group)", gi)
	}
	seen := make(map[string]bool, len(path))
	for _, name := range path {
		if _, ok := s.LinkByName(name); !ok {
			return fmt.Errorf("scenario: group %d path names unknown link %q", gi, name)
		}
		if seen[name] {
			return fmt.Errorf("scenario: group %d path repeats link %q", gi, name)
		}
		seen[name] = true
	}
	return nil
}

// Path-aggregate bounds used by the invariant audit and the CLIs: a
// multi-hop path queues at every link it crosses, so delay and pipe bounds
// sum over the path rather than reading one bottleneck.

// PathBufferSum is the total forward buffering along group gi's path.
func (s Spec) PathBufferSum(gi int) units.Bytes {
	var sum units.Bytes
	for _, l := range s.PathLinks(gi) {
		sum += l.Buffer
	}
	return sum
}

// PathMinCapacity is the tightest nominal capacity along group gi's path —
// the rate that bounds the group's long-run throughput.
func (s Spec) PathMinCapacity(gi int) units.Rate {
	var m units.Rate
	for _, l := range s.PathLinks(gi) {
		if m == 0 || l.Capacity < m {
			m = l.Capacity
		}
	}
	return m
}

// PathQueueDelayBound is the worst-case total queuing delay along group
// gi's path: each forward link can hold Buffer+MSS bytes draining at its
// flap-reduced minimum rate, and each reverse twin RevBuffer+AckBytes at
// its own rate. Adding the group's base RTT gives the audit's per-flow
// mean-RTT bound.
func (s Spec) PathQueueDelayBound(gi int) time.Duration {
	mss := s.MSS
	if mss <= 0 {
		mss = units.MSS
	}
	var d time.Duration
	for _, l := range s.PathLinks(gi) {
		d += l.Faults.MinCapacity(l.Capacity).TimeToSend(l.Buffer + mss)
		if l.HasReverse() {
			d += l.RevCapacity.TimeToSend(l.RevBuffer + units.AckBytes)
		}
	}
	return d
}
