package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// KeyVersion is the canonical-encoding generation. Every cache entry, audit
// violation and UnitError carries it as the second |-separated key field;
// bump it here — and only here — whenever the encoding or the simulation
// semantics behind it change, and stores written by older generations are
// skipped on load (runner.OpenCache) instead of silently mixed in.
//
// v4 added the execution-backend field (bk) so packet-level and fluid-model
// results can never collide; v3 added the fault-injection fields
// (fl/al/fp/fd/be/bl). Stores written by older generations are accepted by
// OpenCache's version filter in the sense that opening them is not an error
// — their entries are skipped and pruned on the next save.
const KeyVersion = "v4"

// KeyPrefix starts every canonical scenario key.
const KeyPrefix = "scenario|" + KeyVersion + "|"

// fx renders a float64 exactly (hex mantissa), keeping keys canonical.
func fx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// Key is the canonical deterministic encoding of the spec — everything a
// simulation's output is a function of, in one fixed order. It is *the*
// identity every layer keys by: runner.Cache entries, check.Auditor
// violations and runner.UnitError all use this exact string, so "which
// scenario was that" has one answer across the whole stack. Floats are
// encoded as exact hex mantissas and durations as nanosecond integers; the
// golden test in key_test.go pins the format.
func (s Spec) Key() string {
	s = s.WithDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%sbk=%s|cap=%s|buf=%s|mss=%s|aj=%d|sj=%d|dur=%d|seed=%d|",
		KeyPrefix, s.Backend, fx(float64(s.Capacity)), fx(float64(s.Buffer)), fx(float64(s.MSS)),
		int64(s.AckJitter), int64(s.StartJitter), int64(s.Duration), s.Seed)
	f := s.Faults
	fmt.Fprintf(&b, "fl=%s|al=%s|fp=%d|fd=%s|be=%d|bl=%d|g=",
		fx(f.LossRate), fx(f.AckLossRate), int64(f.FlapPeriod),
		fx(f.FlapDepth), int64(f.BurstEvery), f.BurstLen)
	for i, g := range s.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d", g.Algorithm, g.Count, int64(g.RTT), int64(g.Start))
	}
	return b.String()
}
