package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// KeyVersion is the canonical-encoding generation. Every cache entry, audit
// violation and UnitError carries it as the second |-separated key field;
// bump it here — and only here — whenever the encoding or the simulation
// semantics behind it change, and stores written by older generations are
// skipped on load (runner.OpenCache) instead of silently mixed in.
//
// v5 replaced the single-bottleneck fields (cap/buf and the top-level fault
// fields) with a topology section (tp=) of named per-link records plus
// per-group paths — a legacy scalar spec canonicalizes to the one-link
// "bottleneck" form, so the legacy and explicit spellings of the same
// scenario share a key. v4 added the execution-backend field (bk) so
// packet-level and fluid-model results can never collide; v3 added the
// fault-injection fields. Stores written by older generations are accepted
// by OpenCache's version filter in the sense that opening them is not an
// error — their entries are skipped and pruned on the next save.
const KeyVersion = "v5"

// KeyPrefix starts every canonical scenario key.
const KeyPrefix = "scenario|" + KeyVersion + "|"

// fx renders a float64 exactly (hex mantissa), keeping keys canonical.
func fx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// Key is the canonical deterministic encoding of the spec — everything a
// simulation's output is a function of, in one fixed order. It is *the*
// identity every layer keys by: runner.Cache entries, check.Auditor
// violations and runner.UnitError all use this exact string, so "which
// scenario was that" has one answer across the whole stack. Floats are
// encoded as exact hex mantissas and durations as nanosecond integers; the
// golden test in scenario_test.go pins the format.
//
// The topology section (tp=) lists the canonical links in declaration
// order, each as name:cap:buf:fl:al:fp:fd:be:bl:rcap:rbuf; each group
// carries its resolved path as +-joined link names. Both come from
// Topology/PathOf, so a legacy scalar spec and its explicit one-link
// equivalent encode identically.
func (s Spec) Key() string {
	s = s.WithDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%sbk=%s|mss=%s|aj=%d|sj=%d|dur=%d|seed=%d|tp=",
		KeyPrefix, s.Backend, fx(float64(s.MSS)),
		int64(s.AckJitter), int64(s.StartJitter), int64(s.Duration), s.Seed)
	for i, l := range s.Topology() {
		if i > 0 {
			b.WriteByte(';')
		}
		f := l.Faults
		fmt.Fprintf(&b, "%s:%s:%s:%s:%s:%d:%s:%d:%d:%s:%s",
			l.Name, fx(float64(l.Capacity)), fx(float64(l.Buffer)),
			fx(f.LossRate), fx(f.AckLossRate), int64(f.FlapPeriod),
			fx(f.FlapDepth), int64(f.BurstEvery), f.BurstLen,
			fx(float64(l.RevCapacity)), fx(float64(l.RevBuffer)))
	}
	b.WriteString("|g=")
	for i, g := range s.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d:%s",
			g.Algorithm, g.Count, int64(g.RTT), int64(g.Start),
			strings.Join(s.PathOf(i), "+"))
	}
	return b.String()
}
