// Package scenario defines the canonical, declarative description of one
// bottleneck experiment: "N flows of these algorithms, at these RTTs,
// through this link". The paper's figures, the Nash-equilibrium searches
// and the CLIs are all instances of this one object, and every layer
// agrees on it — the CLIs parse into it (flags or JSON files), netsim
// builds networks from it, runner.Cache and check.Auditor key results by
// its canonical encoding (Key), and a failing sweep unit names it in
// runner.UnitError. A new scenario shape is a data change, not a code
// change.
package scenario

import (
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/units"
)

// The experiment protocol's jitter defaults (DESIGN.md): flow starts are
// staggered uniformly within DefaultStartJitter and ACK paths carry up to
// DefaultAckJitter of per-packet noise, breaking the phase effects a
// perfectly symmetric deterministic simulation would otherwise lock into.
const (
	DefaultStartJitter = 10 * time.Millisecond
	DefaultAckJitter   = time.Millisecond
)

// Algorithms lists the registered algorithm names in sorted order. The
// listing covers whatever algorithm packages the program links; the
// experiment harness (internal/exp) links the full built-in set, so any
// program that can run a scenario sees every algorithm a scenario may
// name. (The underscore imports live in exp, not here, because the
// algorithms' own tests import netsim, which imports this package.)
func Algorithms() []string { return cc.Algorithms() }

// Group is an ordered set of identical flows: Count senders running
// Algorithm over a path with base RTT, starting at offset Start (plus the
// spec's per-flow start jitter). Group order is part of the scenario's
// identity — it fixes flow construction order and therefore the
// deterministic jitter draws.
type Group struct {
	Algorithm string
	Count     int
	RTT       time.Duration
	Start     time.Duration
	// Path is the ordered list of link names the group's flows traverse,
	// for specs that define an explicit Links topology. Legacy
	// single-bottleneck specs leave it empty and implicitly traverse the
	// one DefaultLinkName link; specs with Links must set it on every
	// group. Path order is part of the scenario's identity.
	Path []string
}

// Execution backends. A spec names which engine evaluates it: the
// packet-level event simulator (internal/netsim) or the deterministic
// fixed-step fluid model (internal/fluid). The backend is part of the
// scenario's identity — the two engines approximate the same physics at
// very different fidelity and cost, so their results must never share a
// cache entry (the canonical key carries the backend since generation v4).
const (
	// BackendPacket is the packet-level event simulator, the default.
	BackendPacket = "packet"
	// BackendFluid is the fixed-step fluid-model integrator.
	BackendFluid = "fluid"
)

// Backends lists the valid backend names.
func Backends() []string { return []string{BackendPacket, BackendFluid} }

// Spec is one complete scenario: the bottleneck, the simulated duration,
// the deterministic seed, and the ordered flow groups sharing the link.
// Groups with Count 0 are legal and meaningful — a sweep over "k BBR vs
// n−k CUBIC" keeps both groups at every point so group indices (and the
// canonical key shape) stay stable across the sweep.
type Spec struct {
	// Capacity and Buffer describe the legacy single-bottleneck form.
	// They are mutually exclusive with Links: a spec either sets these
	// scalars (one implicit DefaultLinkName link) or an explicit topology.
	Capacity    units.Rate
	Buffer      units.Bytes
	MSS         units.Bytes // 0 means units.MSS
	AckJitter   time.Duration
	StartJitter time.Duration
	Duration    time.Duration
	Seed        uint64
	// Backend selects the execution engine: BackendPacket (the event
	// simulator) or BackendFluid (the fixed-step fluid model). Empty means
	// BackendPacket.
	Backend string
	// Faults injects deterministic adverse-link conditions (loss, ACK
	// loss, capacity flaps, loss bursts) on the legacy single bottleneck;
	// the zero value is a clean link. Specs with explicit Links attach
	// faults per link instead.
	Faults Faults
	// Links, when set, replaces the scalar bottleneck with a validated
	// multi-link topology; each group then names its Path through it.
	// Topology() canonicalizes both forms to one link list.
	Links  []Link
	Groups []Group
}

// WithDefaults fills the zero-value fields that have canonical defaults.
// Key and the builders resolve defaults first, so a spec written with
// MSS 0 and one written with the explicit default are the same scenario
// (and likewise Backend "" and "packet").
func (s Spec) WithDefaults() Spec {
	if s.MSS <= 0 {
		s.MSS = units.MSS
	}
	if s.Backend == "" {
		s.Backend = BackendPacket
	}
	return s
}

// TotalFlows counts the senders across all groups.
func (s Spec) TotalFlows() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// ValidateTopology checks everything about a spec except that its
// algorithm names resolve — the harness substitutes constructors for
// unregistered names (netsim.BuildOverride), so name resolution is the
// builder's job. Everyone else should call Validate.
func (s Spec) ValidateTopology() error {
	s = s.WithDefaults()
	if len(s.Links) > 0 {
		if err := s.validateLinks(); err != nil {
			return err
		}
	} else {
		if s.Capacity <= 0 {
			return fmt.Errorf("scenario: non-positive capacity %v", s.Capacity)
		}
		if s.Buffer < s.MSS {
			return fmt.Errorf("scenario: buffer %v below one segment (%v)", s.Buffer, s.MSS)
		}
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
	}
	if s.AckJitter < 0 {
		return fmt.Errorf("scenario: negative ack jitter %v", s.AckJitter)
	}
	if s.StartJitter < 0 {
		return fmt.Errorf("scenario: negative start jitter %v", s.StartJitter)
	}
	if s.Backend != BackendPacket && s.Backend != BackendFluid {
		return fmt.Errorf("scenario: unknown backend %q (want %q or %q)", s.Backend, BackendPacket, BackendFluid)
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario: no flow groups")
	}
	for i, g := range s.Groups {
		if g.Algorithm == "" {
			return fmt.Errorf("scenario: group %d names no algorithm", i)
		}
		if g.Count < 0 {
			return fmt.Errorf("scenario: group %d has negative count %d", i, g.Count)
		}
		if g.RTT <= 0 {
			return fmt.Errorf("scenario: group %d has non-positive RTT %v", i, g.RTT)
		}
		if g.Start < 0 {
			return fmt.Errorf("scenario: group %d has negative start offset %v", i, g.Start)
		}
		if err := s.validatePath(i, g.Path); err != nil {
			return err
		}
	}
	if s.TotalFlows() == 0 {
		return fmt.Errorf("scenario: no flows")
	}
	return nil
}

// Validate checks the spec completely: topology plus algorithm names
// against the cc registry.
func (s Spec) Validate() error {
	if err := s.ValidateTopology(); err != nil {
		return err
	}
	for i, g := range s.Groups {
		if _, err := cc.AlgorithmByName(g.Algorithm); err != nil {
			return fmt.Errorf("scenario: group %d: %w", i, err)
		}
	}
	return nil
}

// MaxRTT is the largest base RTT across groups (the bound the invariant
// audit sizes the pipe with).
func (s Spec) MaxRTT() time.Duration {
	var m time.Duration
	for _, g := range s.Groups {
		if g.RTT > m {
			m = g.RTT
		}
	}
	return m
}

// Mix is the paper's canonical two-class scenario: numX flows of algorithm
// x against numCubic CUBIC flows at one shared RTT, with the experiment
// protocol's jitters. Both groups are always present (possibly empty) so
// group 0 is the x class and group 1 the CUBIC class at every sweep point.
func Mix(x string, numX, numCubic int, capacity units.Rate, buffer units.Bytes, rtt, duration time.Duration) Spec {
	return Spec{
		Capacity:    capacity,
		Buffer:      buffer,
		AckJitter:   DefaultAckJitter,
		StartJitter: DefaultStartJitter,
		Duration:    duration,
		Groups: []Group{
			{Algorithm: x, Count: numX, RTT: rtt},
			{Algorithm: "cubic", Count: numCubic, RTT: rtt},
		},
	}
}
