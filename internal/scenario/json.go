package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/units"
)

// Scenarios are files: the JSON form below round-trips exactly (base units
// and nanosecond-exact duration strings), so the spec a run emits re-parses
// to the same canonical key. Unmarshal additionally accepts two
// human-friendly input spellings — "capacity_mbps" instead of
// "capacity_bps", and "buffer_bdp"+"buffer_bdp_rtt" instead of
// "buffer_bytes" — which Marshal never emits.

type groupJSON struct {
	Algorithm string `json:"algorithm"`
	Count     int    `json:"count"`
	RTT       string `json:"rtt"`
	Start     string `json:"start,omitempty"`
}

type faultsJSON struct {
	LossRate    float64 `json:"loss_rate,omitempty"`
	AckLossRate float64 `json:"ack_loss_rate,omitempty"`
	FlapPeriod  string  `json:"flap_period,omitempty"`
	FlapDepth   float64 `json:"flap_depth,omitempty"`
	BurstEvery  string  `json:"burst_every,omitempty"`
	BurstLen    int     `json:"burst_len,omitempty"`
}

type specJSON struct {
	CapacityBps  float64     `json:"capacity_bps,omitempty"`
	CapacityMbps float64     `json:"capacity_mbps,omitempty"`
	BufferBytes  float64     `json:"buffer_bytes,omitempty"`
	BufferBDP    float64     `json:"buffer_bdp,omitempty"`
	BufferBDPRTT string      `json:"buffer_bdp_rtt,omitempty"`
	MSSBytes     float64     `json:"mss_bytes,omitempty"`
	AckJitter    string      `json:"ack_jitter,omitempty"`
	StartJitter  string      `json:"start_jitter,omitempty"`
	Duration     string      `json:"duration"`
	Seed         uint64      `json:"seed"`
	Backend      string      `json:"backend,omitempty"`
	Faults       *faultsJSON `json:"faults,omitempty"`
	Groups       []groupJSON `json:"groups"`
}

func formatDuration(d time.Duration) string {
	if d == 0 {
		return ""
	}
	return d.String()
}

func parseDuration(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %w", field, err)
	}
	return d, nil
}

// MarshalJSON encodes the spec in its canonical file form.
func (s Spec) MarshalJSON() ([]byte, error) {
	out := specJSON{
		CapacityBps: float64(s.Capacity),
		BufferBytes: float64(s.Buffer),
		MSSBytes:    float64(s.MSS),
		AckJitter:   formatDuration(s.AckJitter),
		StartJitter: formatDuration(s.StartJitter),
		Duration:    s.Duration.String(),
		Seed:        s.Seed,
		Backend:     s.Backend,
		Groups:      make([]groupJSON, len(s.Groups)),
	}
	if s.Faults != (Faults{}) {
		out.Faults = &faultsJSON{
			LossRate:    s.Faults.LossRate,
			AckLossRate: s.Faults.AckLossRate,
			FlapPeriod:  formatDuration(s.Faults.FlapPeriod),
			FlapDepth:   s.Faults.FlapDepth,
			BurstEvery:  formatDuration(s.Faults.BurstEvery),
			BurstLen:    s.Faults.BurstLen,
		}
	}
	for i, g := range s.Groups {
		out.Groups[i] = groupJSON{
			Algorithm: g.Algorithm,
			Count:     g.Count,
			RTT:       g.RTT.String(),
			Start:     formatDuration(g.Start),
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes either the canonical file form or the
// human-friendly input spellings. It only decodes; call Validate to check
// the result.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var in specJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case in.CapacityBps != 0 && in.CapacityMbps != 0:
		return fmt.Errorf("scenario: specify capacity_bps or capacity_mbps, not both")
	case in.CapacityMbps != 0:
		s.Capacity = units.Rate(in.CapacityMbps) * units.Mbps
	default:
		s.Capacity = units.Rate(in.CapacityBps)
	}
	switch {
	case in.BufferBytes != 0 && in.BufferBDP != 0:
		return fmt.Errorf("scenario: specify buffer_bytes or buffer_bdp, not both")
	case in.BufferBDP != 0:
		rtt, err := parseDuration("buffer_bdp_rtt", in.BufferBDPRTT)
		if err != nil {
			return err
		}
		if rtt <= 0 {
			return fmt.Errorf("scenario: buffer_bdp needs a positive buffer_bdp_rtt")
		}
		s.Buffer = units.BufferBytes(s.Capacity, rtt, in.BufferBDP)
	default:
		s.Buffer = units.Bytes(in.BufferBytes)
	}
	s.MSS = units.Bytes(in.MSSBytes)
	var err error
	if s.AckJitter, err = parseDuration("ack_jitter", in.AckJitter); err != nil {
		return err
	}
	if s.StartJitter, err = parseDuration("start_jitter", in.StartJitter); err != nil {
		return err
	}
	if s.Duration, err = parseDuration("duration", in.Duration); err != nil {
		return err
	}
	s.Seed = in.Seed
	s.Backend = in.Backend
	s.Faults = Faults{}
	if in.Faults != nil {
		s.Faults.LossRate = in.Faults.LossRate
		s.Faults.AckLossRate = in.Faults.AckLossRate
		s.Faults.FlapDepth = in.Faults.FlapDepth
		s.Faults.BurstLen = in.Faults.BurstLen
		if s.Faults.FlapPeriod, err = parseDuration("faults.flap_period", in.Faults.FlapPeriod); err != nil {
			return err
		}
		if s.Faults.BurstEvery, err = parseDuration("faults.burst_every", in.Faults.BurstEvery); err != nil {
			return err
		}
	}
	s.Groups = make([]Group, len(in.Groups))
	for i, g := range in.Groups {
		rtt, err := parseDuration(fmt.Sprintf("groups[%d].rtt", i), g.RTT)
		if err != nil {
			return err
		}
		start, err := parseDuration(fmt.Sprintf("groups[%d].start", i), g.Start)
		if err != nil {
			return err
		}
		s.Groups[i] = Group{Algorithm: g.Algorithm, Count: g.Count, RTT: rtt, Start: start}
	}
	return nil
}

// Load reads and validates a scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseGroups parses the CLIs' comma-separated "name[:count]" flow list,
// e.g. "bbr:2,cubic:3" or "bbr,cubic", into same-RTT groups. Counts
// default to 1 and must be positive; names must exist in the algorithm
// registry.
func ParseGroups(list string, rtt time.Duration) ([]Group, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("scenario: empty flow list")
	}
	var groups []Group
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("scenario: empty element in flow list %q", list)
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		count := 1
		if hasCount {
			var err error
			count, err = strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || count < 1 {
				return nil, fmt.Errorf("scenario: bad flow count in %q", part)
			}
		}
		if _, err := cc.AlgorithmByName(name); err != nil {
			return nil, err
		}
		groups = append(groups, Group{Algorithm: name, Count: count, RTT: rtt})
	}
	return groups, nil
}
