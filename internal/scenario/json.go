package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/units"
)

// Scenarios are files: the JSON form below round-trips exactly (base units
// and nanosecond-exact duration strings), so the spec a run emits re-parses
// to the same canonical key. Unmarshal additionally accepts two
// human-friendly input spellings — "capacity_mbps" instead of
// "capacity_bps", and "buffer_bdp"+"buffer_bdp_rtt" instead of
// "buffer_bytes" — which Marshal never emits.

type groupJSON struct {
	Algorithm string   `json:"algorithm"`
	Count     int      `json:"count"`
	RTT       string   `json:"rtt"`
	Start     string   `json:"start,omitempty"`
	Path      []string `json:"path,omitempty"`
}

type faultsJSON struct {
	LossRate    float64 `json:"loss_rate,omitempty"`
	AckLossRate float64 `json:"ack_loss_rate,omitempty"`
	FlapPeriod  string  `json:"flap_period,omitempty"`
	FlapDepth   float64 `json:"flap_depth,omitempty"`
	BurstEvery  string  `json:"burst_every,omitempty"`
	BurstLen    int     `json:"burst_len,omitempty"`
}

type reverseJSON struct {
	CapacityBps  float64 `json:"capacity_bps,omitempty"`
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`
	BufferBytes  float64 `json:"buffer_bytes,omitempty"`
}

type linkJSON struct {
	Name         string       `json:"name"`
	CapacityBps  float64      `json:"capacity_bps,omitempty"`
	CapacityMbps float64      `json:"capacity_mbps,omitempty"`
	BufferBytes  float64      `json:"buffer_bytes,omitempty"`
	BufferBDP    float64      `json:"buffer_bdp,omitempty"`
	BufferBDPRTT string       `json:"buffer_bdp_rtt,omitempty"`
	Faults       *faultsJSON  `json:"faults,omitempty"`
	Reverse      *reverseJSON `json:"reverse,omitempty"`
}

type specJSON struct {
	CapacityBps  float64     `json:"capacity_bps,omitempty"`
	CapacityMbps float64     `json:"capacity_mbps,omitempty"`
	BufferBytes  float64     `json:"buffer_bytes,omitempty"`
	BufferBDP    float64     `json:"buffer_bdp,omitempty"`
	BufferBDPRTT string      `json:"buffer_bdp_rtt,omitempty"`
	MSSBytes     float64     `json:"mss_bytes,omitempty"`
	AckJitter    string      `json:"ack_jitter,omitempty"`
	StartJitter  string      `json:"start_jitter,omitempty"`
	Duration     string      `json:"duration"`
	Seed         uint64      `json:"seed"`
	Backend      string      `json:"backend,omitempty"`
	Faults       *faultsJSON `json:"faults,omitempty"`
	Links        []linkJSON  `json:"links,omitempty"`
	Groups       []groupJSON `json:"groups"`
}

func formatDuration(d time.Duration) string {
	if d == 0 {
		return ""
	}
	return d.String()
}

func parseDuration(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %w", field, err)
	}
	return d, nil
}

// faultsToJSON renders a fault block in file form, nil when clean.
func faultsToJSON(f Faults) *faultsJSON {
	if f == (Faults{}) {
		return nil
	}
	return &faultsJSON{
		LossRate:    f.LossRate,
		AckLossRate: f.AckLossRate,
		FlapPeriod:  formatDuration(f.FlapPeriod),
		FlapDepth:   f.FlapDepth,
		BurstEvery:  formatDuration(f.BurstEvery),
		BurstLen:    f.BurstLen,
	}
}

// faultsFromJSON decodes a fault block; a nil input is a clean link.
func faultsFromJSON(field string, in *faultsJSON) (Faults, error) {
	if in == nil {
		return Faults{}, nil
	}
	f := Faults{
		LossRate:    in.LossRate,
		AckLossRate: in.AckLossRate,
		FlapDepth:   in.FlapDepth,
		BurstLen:    in.BurstLen,
	}
	var err error
	if f.FlapPeriod, err = parseDuration(field+".flap_period", in.FlapPeriod); err != nil {
		return Faults{}, err
	}
	if f.BurstEvery, err = parseDuration(field+".burst_every", in.BurstEvery); err != nil {
		return Faults{}, err
	}
	return f, nil
}

// MarshalJSON encodes the spec in its canonical file form: base units and
// nanosecond-exact duration strings, links (when present) with canonical
// capacity_bps/buffer_bytes spellings. Legacy single-bottleneck specs emit
// exactly the pre-topology form — links and paths are omitted empty.
func (s Spec) MarshalJSON() ([]byte, error) {
	out := specJSON{
		CapacityBps: float64(s.Capacity),
		BufferBytes: float64(s.Buffer),
		MSSBytes:    float64(s.MSS),
		AckJitter:   formatDuration(s.AckJitter),
		StartJitter: formatDuration(s.StartJitter),
		Duration:    s.Duration.String(),
		Seed:        s.Seed,
		Backend:     s.Backend,
		Faults:      faultsToJSON(s.Faults),
		Groups:      make([]groupJSON, len(s.Groups)),
	}
	if len(s.Links) > 0 {
		out.Links = make([]linkJSON, len(s.Links))
		for i, l := range s.Links {
			lj := linkJSON{
				Name:        l.Name,
				CapacityBps: float64(l.Capacity),
				BufferBytes: float64(l.Buffer),
				Faults:      faultsToJSON(l.Faults),
			}
			if l.RevCapacity != 0 || l.RevBuffer != 0 {
				lj.Reverse = &reverseJSON{
					CapacityBps: float64(l.RevCapacity),
					BufferBytes: float64(l.RevBuffer),
				}
			}
			out.Links[i] = lj
		}
	}
	for i, g := range s.Groups {
		out.Groups[i] = groupJSON{
			Algorithm: g.Algorithm,
			Count:     g.Count,
			RTT:       g.RTT.String(),
			Start:     formatDuration(g.Start),
			Path:      g.Path,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes either the canonical file form or the
// human-friendly input spellings. It only decodes; call Validate to check
// the result.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var in specJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case in.CapacityBps != 0 && in.CapacityMbps != 0:
		return fmt.Errorf("scenario: specify capacity_bps or capacity_mbps, not both")
	case in.CapacityMbps != 0:
		s.Capacity = units.Rate(in.CapacityMbps) * units.Mbps
	default:
		s.Capacity = units.Rate(in.CapacityBps)
	}
	switch {
	case in.BufferBytes != 0 && in.BufferBDP != 0:
		return fmt.Errorf("scenario: specify buffer_bytes or buffer_bdp, not both")
	case in.BufferBDP != 0:
		rtt, err := parseDuration("buffer_bdp_rtt", in.BufferBDPRTT)
		if err != nil {
			return err
		}
		if rtt <= 0 {
			return fmt.Errorf("scenario: buffer_bdp needs a positive buffer_bdp_rtt")
		}
		s.Buffer = units.BufferBytes(s.Capacity, rtt, in.BufferBDP)
	default:
		s.Buffer = units.Bytes(in.BufferBytes)
	}
	s.MSS = units.Bytes(in.MSSBytes)
	var err error
	if s.AckJitter, err = parseDuration("ack_jitter", in.AckJitter); err != nil {
		return err
	}
	if s.StartJitter, err = parseDuration("start_jitter", in.StartJitter); err != nil {
		return err
	}
	if s.Duration, err = parseDuration("duration", in.Duration); err != nil {
		return err
	}
	s.Seed = in.Seed
	s.Backend = in.Backend
	if s.Faults, err = faultsFromJSON("faults", in.Faults); err != nil {
		return err
	}
	s.Links = nil
	if len(in.Links) > 0 {
		s.Links = make([]Link, len(in.Links))
		for i, lj := range in.Links {
			l := Link{Name: lj.Name}
			field := fmt.Sprintf("links[%d]", i)
			switch {
			case lj.CapacityBps != 0 && lj.CapacityMbps != 0:
				return fmt.Errorf("scenario: %s: specify capacity_bps or capacity_mbps, not both", field)
			case lj.CapacityMbps != 0:
				l.Capacity = units.Rate(lj.CapacityMbps) * units.Mbps
			default:
				l.Capacity = units.Rate(lj.CapacityBps)
			}
			switch {
			case lj.BufferBytes != 0 && lj.BufferBDP != 0:
				return fmt.Errorf("scenario: %s: specify buffer_bytes or buffer_bdp, not both", field)
			case lj.BufferBDP != 0:
				rtt, err := parseDuration(field+".buffer_bdp_rtt", lj.BufferBDPRTT)
				if err != nil {
					return err
				}
				if rtt <= 0 {
					return fmt.Errorf("scenario: %s: buffer_bdp needs a positive buffer_bdp_rtt", field)
				}
				l.Buffer = units.BufferBytes(l.Capacity, rtt, lj.BufferBDP)
			default:
				l.Buffer = units.Bytes(lj.BufferBytes)
			}
			if l.Faults, err = faultsFromJSON(field+".faults", lj.Faults); err != nil {
				return err
			}
			if lj.Reverse != nil {
				switch {
				case lj.Reverse.CapacityBps != 0 && lj.Reverse.CapacityMbps != 0:
					return fmt.Errorf("scenario: %s.reverse: specify capacity_bps or capacity_mbps, not both", field)
				case lj.Reverse.CapacityMbps != 0:
					l.RevCapacity = units.Rate(lj.Reverse.CapacityMbps) * units.Mbps
				default:
					l.RevCapacity = units.Rate(lj.Reverse.CapacityBps)
				}
				l.RevBuffer = units.Bytes(lj.Reverse.BufferBytes)
			}
			s.Links[i] = l
		}
	}
	s.Groups = make([]Group, len(in.Groups))
	for i, g := range in.Groups {
		rtt, err := parseDuration(fmt.Sprintf("groups[%d].rtt", i), g.RTT)
		if err != nil {
			return err
		}
		start, err := parseDuration(fmt.Sprintf("groups[%d].start", i), g.Start)
		if err != nil {
			return err
		}
		s.Groups[i] = Group{Algorithm: g.Algorithm, Count: g.Count, RTT: rtt, Start: start, Path: g.Path}
	}
	return nil
}

// Load reads and validates a scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseGroups parses the CLIs' comma-separated "name[:count]" flow list,
// e.g. "bbr:2,cubic:3" or "bbr,cubic", into same-RTT groups. Counts
// default to 1 and must be positive; names must exist in the algorithm
// registry.
func ParseGroups(list string, rtt time.Duration) ([]Group, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("scenario: empty flow list")
	}
	var groups []Group
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("scenario: empty element in flow list %q", list)
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		count := 1
		if hasCount {
			var err error
			count, err = strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || count < 1 {
				return nil, fmt.Errorf("scenario: bad flow count in %q", part)
			}
		}
		if _, err := cc.AlgorithmByName(name); err != nil {
			return nil, err
		}
		groups = append(groups, Group{Algorithm: name, Count: count, RTT: rtt})
	}
	return groups, nil
}
