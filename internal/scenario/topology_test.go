package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bbrnash/internal/rng"
	"bbrnash/internal/units"
)

// parkingLotSpec is a three-link chain with one long-path group crossing
// all links and one cross-traffic group per link — the classic parking-lot
// shape the topology layer exists for.
func parkingLotSpec() Spec {
	link := func(name string, mbps float64) Link {
		c := units.Rate(mbps) * units.Mbps
		return Link{Name: name, Capacity: c, Buffer: units.BufferBytes(c, 40*time.Millisecond, 2)}
	}
	return Spec{
		AckJitter:   DefaultAckJitter,
		StartJitter: DefaultStartJitter,
		Duration:    30 * time.Second,
		Seed:        7,
		Links:       []Link{link("l0", 100), link("l1", 80), link("l2", 100)},
		Groups: []Group{
			{Algorithm: "bbr", Count: 2, RTT: 60 * time.Millisecond, Path: []string{"l0", "l1", "l2"}},
			{Algorithm: "cubic", Count: 1, RTT: 20 * time.Millisecond, Path: []string{"l0"}},
			{Algorithm: "cubic", Count: 1, RTT: 20 * time.Millisecond, Path: []string{"l1"}},
			{Algorithm: "cubic", Count: 1, RTT: 20 * time.Millisecond, Path: []string{"l2"}},
		},
	}
}

// TestKeyLegacyEquivalence: a legacy scalar spec and its explicit one-link
// spelling are the same scenario and must share a canonical key.
func TestKeyLegacyEquivalence(t *testing.T) {
	legacy := validSpec()
	legacy.Faults = Faults{LossRate: 0.01}

	explicit := legacy
	explicit.Links = []Link{{
		Name:     DefaultLinkName,
		Capacity: legacy.Capacity,
		Buffer:   legacy.Buffer,
		Faults:   legacy.Faults,
	}}
	explicit.Capacity, explicit.Buffer, explicit.Faults = 0, 0, Faults{}
	explicit.Groups = append([]Group(nil), legacy.Groups...)
	for i := range explicit.Groups {
		explicit.Groups[i].Path = []string{DefaultLinkName}
	}

	if err := explicit.Validate(); err != nil {
		t.Fatalf("explicit one-link spec rejected: %v", err)
	}
	if legacy.Key() != explicit.Key() {
		t.Errorf("legacy and explicit one-link keys differ:\n legacy   %q\n explicit %q",
			legacy.Key(), explicit.Key())
	}
}

// TestTopologyKeyGolden pins the multi-link tp= encoding, including a
// reverse twin and per-link faults.
func TestTopologyKeyGolden(t *testing.T) {
	sp := Spec{
		Duration: 10 * time.Second,
		Seed:     3,
		Links: []Link{
			{Name: "access", Capacity: 20 * units.Mbps, Buffer: 50000,
				RevCapacity: 2 * units.Mbps, RevBuffer: 6400},
			{Name: "core", Capacity: 100 * units.Mbps, Buffer: 250000,
				Faults: Faults{LossRate: 0.01}},
		},
		Groups: []Group{
			{Algorithm: "bbr", Count: 1, RTT: 40 * time.Millisecond, Path: []string{"access", "core"}},
			{Algorithm: "cubic", Count: 1, RTT: 40 * time.Millisecond, Path: []string{"core"}},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	const want = "scenario|v5|bk=packet|mss=0x1.6dp+10|aj=0|sj=0|dur=10000000000|seed=3|" +
		"tp=access:0x1.312dp+24:0x1.86ap+15:0x0p+00:0x0p+00:0:0x0p+00:0:0:0x1.e848p+20:0x1.9p+12;" +
		"core:0x1.7d784p+26:0x1.e848p+17:0x1.47ae147ae147bp-07:0x0p+00:0:0x0p+00:0:0:0x0p+00:0x0p+00|" +
		"g=bbr:1:40000000:0:access+core,cubic:1:40000000:0:core"
	if got := sp.Key(); got != want {
		t.Errorf("Key() =\n %q\nwant\n %q", got, want)
	}
}

// TestTopologyJSONRoundTrip: topology specs re-encode byte-identically
// (marshal → unmarshal → marshal), and the round trip preserves the key.
func TestTopologyJSONRoundTrip(t *testing.T) {
	specs := []Spec{parkingLotSpec()}
	withRev := parkingLotSpec()
	withRev.Links[0].RevCapacity = 10 * units.Mbps
	withRev.Links[0].RevBuffer = 12800
	withRev.Links[1].Faults = Faults{AckLossRate: 0.02, BurstEvery: 5 * time.Second, BurstLen: 3}
	specs = append(specs, withRev)

	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("spec %d: %v (json %s)", i, err, data)
		}
		if back.Key() != sp.Key() {
			t.Fatalf("spec %d: round-trip key drift\n got %q\nwant %q", i, back.Key(), sp.Key())
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("spec %d: re-encode not byte-identical\n first  %s\n second %s", i, data, again)
		}
	}
}

// randomTopologySpec draws an arbitrary multi-link spec for the fuzzing
// round trip.
func randomTopologySpec(r *rng.Source) Spec {
	algs := []string{"bbr", "bbrv2", "copa", "cubic", "reno", "vivace"}
	nl := 1 + r.Intn(4)
	sp := Spec{
		MSS:         units.Bytes(r.Intn(3000)),
		AckJitter:   time.Duration(r.Intn(int(5 * time.Millisecond))),
		StartJitter: time.Duration(r.Intn(int(50 * time.Millisecond))),
		Duration:    time.Duration(r.Intn(int(5*time.Minute))) + 1,
		Seed:        r.Uint64(),
	}
	names := []string{"a", "b.1", "c_2", "d-3"}
	for i := 0; i < nl; i++ {
		l := Link{
			Name:     names[i],
			Capacity: units.Rate(r.Float64()*1e9) + 1,
			Buffer:   units.Bytes(r.Float64() * 1e7),
		}
		if r.Float64() < 0.4 {
			l.Faults = Faults{
				LossRate:    r.Float64() * 0.5,
				AckLossRate: r.Float64() * 0.5,
				FlapPeriod:  time.Duration(r.Intn(int(10*time.Second))) + 1,
				FlapDepth:   r.Float64() * 0.9,
				BurstEvery:  time.Duration(r.Intn(int(time.Minute))) + 1,
				BurstLen:    r.Intn(20),
			}
		}
		if r.Float64() < 0.3 {
			l.RevCapacity = units.Rate(r.Float64()*1e8) + 1
			l.RevBuffer = units.Bytes(r.Float64()*1e5) + units.AckBytes
		}
		sp.Links = append(sp.Links, l)
	}
	ng := 1 + r.Intn(4)
	for i := 0; i < ng; i++ {
		// A contiguous slice of the chain, always non-empty.
		lo := r.Intn(nl)
		hi := lo + 1 + r.Intn(nl-lo)
		var path []string
		for _, l := range sp.Links[lo:hi] {
			path = append(path, l.Name)
		}
		sp.Groups = append(sp.Groups, Group{
			Algorithm: algs[r.Intn(len(algs))],
			Count:     r.Intn(10),
			RTT:       time.Duration(r.Intn(int(400*time.Millisecond))) + 1,
			Start:     time.Duration(r.Intn(int(10 * time.Second))),
			Path:      path,
		})
	}
	return sp
}

// TestTopologyJSONRoundTripRandom fuzzes the topology round trip the same
// way TestJSONRoundTrip fuzzes the legacy form.
func TestTopologyJSONRoundTripRandom(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 200; i++ {
		sp := randomTopologySpec(r)
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("spec %d: %v (json %s)", i, err, data)
		}
		if back.Key() != sp.Key() {
			t.Fatalf("spec %d: round-trip key drift\n got %q\nwant %q\njson %s",
				i, back.Key(), sp.Key(), data)
		}
	}
}

// TestTopologyValidate covers the topology rejection cases.
func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown link id", func(s *Spec) { s.Groups[0].Path = []string{"l0", "nosuch"} }, "unknown link"},
		{"empty path", func(s *Spec) { s.Groups[1].Path = nil }, "empty path"},
		{"duplicate link names", func(s *Spec) { s.Links[2].Name = "l0" }, "duplicate link name"},
		{"invalid link name", func(s *Spec) { s.Links[0].Name = "l 0" }, "invalid name"},
		{"empty link name", func(s *Spec) { s.Links[0].Name = "" }, "invalid name"},
		{"path repeats link", func(s *Spec) { s.Groups[0].Path = []string{"l0", "l1", "l0"} }, "repeats link"},
		{"links plus capacity", func(s *Spec) { s.Capacity = units.Mbps }, "mutually exclusive"},
		{"links plus buffer", func(s *Spec) { s.Buffer = 1e6 }, "mutually exclusive"},
		{"links plus faults", func(s *Spec) { s.Faults.LossRate = 0.1 }, "mutually exclusive"},
		{"zero link capacity", func(s *Spec) { s.Links[1].Capacity = 0 }, "non-positive capacity"},
		{"sub-MSS link buffer", func(s *Spec) { s.Links[1].Buffer = 100 }, "below one segment"},
		{"bad link faults", func(s *Spec) { s.Links[1].Faults.LossRate = 1 }, "outside [0,1)"},
		{"negative reverse capacity", func(s *Spec) { s.Links[0].RevCapacity = -1 }, "negative reverse capacity"},
		{"sub-ACK reverse buffer", func(s *Spec) {
			s.Links[0].RevCapacity = units.Mbps
			s.Links[0].RevBuffer = 10
		}, "below one ACK"},
		{"reverse buffer without capacity", func(s *Spec) { s.Links[0].RevBuffer = 1000 }, "reverse buffer without reverse capacity"},
	}
	for _, tc := range cases {
		sp := parkingLotSpec()
		tc.mutate(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := parkingLotSpec().Validate(); err != nil {
		t.Errorf("valid topology spec rejected: %v", err)
	}
	// A path on a legacy spec is rejected: paths name explicit links.
	legacy := validSpec()
	legacy.Groups[0].Path = []string{DefaultLinkName}
	if err := legacy.Validate(); err == nil || !strings.Contains(err.Error(), "defines no links") {
		t.Errorf("path without links: err=%v", err)
	}
}

// TestTopologyHelpers covers the canonicalization and path-aggregate
// helpers the audit and CLIs use.
func TestTopologyHelpers(t *testing.T) {
	legacy := validSpec()
	topo := legacy.Topology()
	if len(topo) != 1 || topo[0].Name != DefaultLinkName ||
		topo[0].Capacity != legacy.Capacity || topo[0].Buffer != legacy.Buffer {
		t.Errorf("legacy Topology() = %+v", topo)
	}
	if legacy.MultiLink() {
		t.Error("legacy spec reported as multi-link")
	}
	if got := legacy.PathOf(0); len(got) != 1 || got[0] != DefaultLinkName {
		t.Errorf("legacy PathOf(0) = %v", got)
	}

	sp := parkingLotSpec()
	if !sp.MultiLink() {
		t.Error("parking-lot spec not multi-link")
	}
	if _, ok := sp.LinkByName("l1"); !ok {
		t.Error("LinkByName(l1) not found")
	}
	if _, ok := sp.LinkByName("nosuch"); ok {
		t.Error("LinkByName(nosuch) found")
	}
	if got, want := sp.PathMinCapacity(0), 80*units.Mbps; got != want {
		t.Errorf("PathMinCapacity(0) = %v, want %v", got, want)
	}
	wantBuf := sp.Links[0].Buffer + sp.Links[1].Buffer + sp.Links[2].Buffer
	if got := sp.PathBufferSum(0); got != wantBuf {
		t.Errorf("PathBufferSum(0) = %v, want %v", got, wantBuf)
	}
	// The chain's delay bound strictly exceeds any single link's.
	if sp.PathQueueDelayBound(0) <= sp.PathQueueDelayBound(1) {
		t.Errorf("chain delay bound %v not above single-link bound %v",
			sp.PathQueueDelayBound(0), sp.PathQueueDelayBound(1))
	}
	// A reverse twin adds reverse drain time to the bound.
	rev := parkingLotSpec()
	rev.Links[0].RevCapacity = units.Mbps
	rev.Links[0].RevBuffer = 6400
	if rev.PathQueueDelayBound(1) <= sp.PathQueueDelayBound(1) {
		t.Error("reverse twin did not increase the delay bound")
	}
	// A single-link explicit topology with no reverse twin is not
	// multi-link: it is the legacy special case spelled out.
	one := Spec{
		Duration: time.Second, Seed: 1,
		Links:  []Link{{Name: "only", Capacity: units.Mbps, Buffer: 1e6}},
		Groups: []Group{{Algorithm: "bbr", Count: 1, RTT: time.Millisecond, Path: []string{"only"}}},
	}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	if one.MultiLink() {
		t.Error("single explicit link reported as multi-link")
	}
}
