package scenario

import (
	"fmt"
	"time"

	"bbrnash/internal/units"
)

// Faults describes deterministic adverse-link conditions injected at the
// bottleneck: stochastic data-packet loss, ACK-path loss, periodic link
// capacity flaps, and burst-loss episodes. The zero value is a clean link.
//
// All randomness is drawn from the simulation's seeded RNG stream, so a
// faulted scenario is exactly as reproducible as a clean one: same spec +
// seed ⇒ byte-identical drop traces and statistics at any worker count.
// Faults participate in the spec's canonical key (generation v3), so a
// faulted and a clean variant of the same topology never share a cache
// entry.
type Faults struct {
	// LossRate is the probability that an arriving data packet is dropped
	// before queueing (in addition to drop-tail overflow), in [0, 1).
	LossRate float64
	// AckLossRate is the probability that a returning ACK is lost, in
	// [0, 1). A lost ACK's information is recovered by the next cumulative
	// ACK one segment's serialization time later; consecutive losses
	// compound.
	AckLossRate float64
	// FlapPeriod is the period of a square-wave capacity flap: the link
	// serves at full capacity for FlapPeriod/2, then at the reduced rate
	// for FlapPeriod/2, starting full at time zero. Zero disables flaps.
	FlapPeriod time.Duration
	// FlapDepth is the fractional capacity reduction during the low phase:
	// the link serves at Capacity·(1−FlapDepth), in [0, 1). A positive
	// depth requires a positive FlapPeriod.
	FlapDepth float64
	// BurstEvery schedules burst-loss episodes: every BurstEvery of
	// simulated time, the next BurstLen arriving data packets are dropped.
	// Zero disables bursts.
	BurstEvery time.Duration
	// BurstLen is the number of consecutive arrivals dropped per episode.
	// A positive length requires a positive BurstEvery.
	BurstLen int
}

// Active reports whether any fault effect is enabled.
func (f Faults) Active() bool {
	return f.LossRate > 0 || f.AckLossRate > 0 || f.FlapDepth > 0 || f.BurstLen > 0
}

// Validate checks the fault block's internal consistency.
func (f Faults) Validate() error {
	if f.LossRate < 0 || f.LossRate >= 1 {
		return fmt.Errorf("scenario: loss rate %v outside [0,1)", f.LossRate)
	}
	if f.AckLossRate < 0 || f.AckLossRate >= 1 {
		return fmt.Errorf("scenario: ack loss rate %v outside [0,1)", f.AckLossRate)
	}
	if f.FlapDepth < 0 || f.FlapDepth >= 1 {
		return fmt.Errorf("scenario: flap depth %v outside [0,1)", f.FlapDepth)
	}
	if f.FlapPeriod < 0 {
		return fmt.Errorf("scenario: negative flap period %v", f.FlapPeriod)
	}
	if f.FlapDepth > 0 && f.FlapPeriod <= 0 {
		return fmt.Errorf("scenario: flap depth %v needs a positive flap period", f.FlapDepth)
	}
	if f.BurstEvery < 0 {
		return fmt.Errorf("scenario: negative burst interval %v", f.BurstEvery)
	}
	if f.BurstLen < 0 {
		return fmt.Errorf("scenario: negative burst length %d", f.BurstLen)
	}
	if f.BurstLen > 0 && f.BurstEvery <= 0 {
		return fmt.Errorf("scenario: burst length %d needs a positive burst interval", f.BurstLen)
	}
	return nil
}

// MinCapacity returns the lowest effective link rate under the flap: the
// full capacity when flaps are off, Capacity·(1−FlapDepth) otherwise. The
// invariant audit bounds queue-drain delays with it.
func (f Faults) MinCapacity(c units.Rate) units.Rate {
	if f.FlapDepth <= 0 {
		return c
	}
	return units.Rate(float64(c) * (1 - f.FlapDepth))
}

// MeanCapacityOver returns the exact time-average of the flapping link's
// service rate over [0, dur]: full capacity for the first half period,
// reduced for the second, repeating. The invariant audit bounds aggregate
// throughput and utilization with it — the share-sum invariant under flaps
// is "delivered rate fits the integral of capacity", not the nominal rate.
func (f Faults) MeanCapacityOver(c units.Rate, dur time.Duration) units.Rate {
	if f.FlapDepth <= 0 || f.FlapPeriod <= 0 || dur <= 0 {
		return c
	}
	half := f.FlapPeriod / 2
	up := time.Duration(dur/f.FlapPeriod) * half
	if rem := dur % f.FlapPeriod; rem > half {
		up += half
	} else {
		up += rem
	}
	down := dur - up
	low := float64(f.MinCapacity(c))
	return units.Rate((float64(up)*float64(c) + float64(down)*low) / float64(dur))
}
