package metrics

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

func at(d time.Duration) eventsim.Time { return eventsim.At(d) }

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(at(0), 10)
	w.Set(at(time.Second), 20)            // 10 held for 1s
	w.Set(at(3*time.Second), 0)           // 20 held for 2s
	got := w.Average(at(4 * time.Second)) // 0 held for 1s
	want := (10.0*1 + 20*2 + 0*1) / 4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Average = %v, want %v", got, want)
	}
}

func TestTimeWeightedMinMaxValue(t *testing.T) {
	var w TimeWeighted
	w.Set(at(0), 5)
	w.Add(at(time.Second), 10)
	w.Add(at(2*time.Second), -12)
	if w.Value() != 3 {
		t.Errorf("Value = %v, want 3", w.Value())
	}
	if w.Min() != 3 || w.Max() != 15 {
		t.Errorf("Min,Max = %v,%v want 3,15", w.Min(), w.Max())
	}
}

func TestTimeWeightedAverageNoElapsed(t *testing.T) {
	var w TimeWeighted
	w.Set(at(time.Second), 7)
	if got := w.Average(at(time.Second)); got != 7 {
		t.Errorf("Average with no elapsed time = %v, want 7", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(at(0), 100)
	w.Set(at(time.Second), 2)
	w.Reset(at(time.Second))
	// After the reset only the value 2 is visible.
	if got := w.Average(at(2 * time.Second)); got != 2 {
		t.Errorf("Average after reset = %v, want 2", got)
	}
	if w.Min() != 2 || w.Max() != 2 {
		t.Errorf("Min,Max after reset = %v,%v want 2,2", w.Min(), w.Max())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Reset(at(0))
	c.Add(50)
	c.Add(25)
	if c.Total() != 175 {
		t.Errorf("Total = %v, want 175", c.Total())
	}
	if c.Windowed() != 75 {
		t.Errorf("Windowed = %v, want 75", c.Windowed())
	}
}

func TestCounterRateSince(t *testing.T) {
	var c Counter
	c.Reset(at(0))
	c.Add(1.25e6) // 1.25 MB in one second = 10 Mbps
	got := c.RateSince(at(time.Second))
	if got != 10*units.Mbps {
		t.Errorf("RateSince = %v, want 10Mbps", got)
	}
	if c.RateSince(at(0)) != 0 {
		t.Error("RateSince with no elapsed time should be 0")
	}
}

// A counter that was never Reset has no measurement window: WindowStart
// must say so instead of implying a window anchored at time 0 — the
// implicit-zero-start reading understates every rate computed for a
// counter whose flow started late.
func TestCounterWindowStart(t *testing.T) {
	var c Counter
	if _, ok := c.WindowStart(); ok {
		t.Error("fresh counter should report no window")
	}
	c.Reset(at(3 * time.Second))
	since, ok := c.WindowStart()
	if !ok || since != at(3*time.Second) {
		t.Errorf("WindowStart = %v,%v want 3s,true", since, ok)
	}
	// RateSince measures from the explicit window start, not from 0: 1.25MB
	// over the 1s window is 10 Mbps, not 2.5 Mbps over 4s.
	c.Add(1.25e6)
	if got := c.RateSince(at(4 * time.Second)); got != 10*units.Mbps {
		t.Errorf("RateSince after late Reset = %v, want 10Mbps", got)
	}
}

// Average asked about an instant before the last observation (a late Reset
// racing a stale caller) must clamp to the observation, not divide by a
// negative interval.
func TestTimeWeightedAverageBeforeLast(t *testing.T) {
	var w TimeWeighted
	w.Set(at(0), 10)
	w.Reset(at(2 * time.Second))
	if got := w.Average(at(time.Second)); got != 10 {
		t.Errorf("Average before last observation = %v, want clamp to 10", got)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min,Max = %v,%v", s.Min(), s.Max())
	}
	if math.Abs(s.Stddev()-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s.Stddev())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSummaryMeanDuration(t *testing.T) {
	var s Summary
	s.Observe(float64(time.Millisecond))
	s.Observe(float64(3 * time.Millisecond))
	if got := s.MeanDuration(); got != 2*time.Millisecond {
		t.Errorf("MeanDuration = %v, want 2ms", got)
	}
}
