// Package metrics provides the measurement accumulators used by the network
// simulator and the experiment harness: time-weighted averages for queue
// occupancy, interval counters for throughput, and streaming min/max/mean
// trackers.
//
// All accumulators support a measurement window that starts part-way through
// a run, so experiments can exclude (or, like the paper, include) slow-start
// transients explicitly.
package metrics

import (
	"math"
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

// TimeWeighted accumulates the time-weighted average of a piecewise-constant
// signal, e.g. queue occupancy in bytes.
type TimeWeighted struct {
	started bool
	start   eventsim.Time
	last    eventsim.Time
	value   float64
	area    float64
	min     float64
	max     float64
}

// Set records that the signal takes value v from time now onward.
// Timestamps must be nondecreasing.
func (w *TimeWeighted) Set(now eventsim.Time, v float64) {
	if !w.started {
		w.started = true
		w.start, w.last = now, now
		w.value = v
		w.min, w.max = v, v
		return
	}
	w.area += w.value * float64(now-w.last)
	w.last = now
	w.value = v
	if v < w.min {
		w.min = v
	}
	if v > w.max {
		w.max = v
	}
}

// Add adjusts the current value by delta at time now.
func (w *TimeWeighted) Add(now eventsim.Time, delta float64) {
	w.Set(now, w.value+delta)
}

// Value returns the current value of the signal.
func (w *TimeWeighted) Value() float64 { return w.value }

// Average returns the time-weighted mean over [start, now]. It returns the
// current value when no time has elapsed. A now earlier than the last
// recorded change — possible when a Reset or Set lands after the instant
// being queried — is clamped to that change, so the mean is taken over the
// observed window instead of subtracting a negative final segment.
func (w *TimeWeighted) Average(now eventsim.Time) float64 {
	if !w.started || now <= w.start {
		return w.value
	}
	if now < w.last {
		now = w.last
	}
	area := w.area + w.value*float64(now-w.last)
	return area / float64(now-w.start)
}

// Min returns the smallest value observed since the accumulator started.
func (w *TimeWeighted) Min() float64 { return w.min }

// Max returns the largest value observed since the accumulator started.
func (w *TimeWeighted) Max() float64 { return w.max }

// Reset restarts accumulation at time now, keeping the current value. Use it
// at the start of a measurement window so transients before now are
// discarded.
func (w *TimeWeighted) Reset(now eventsim.Time) {
	w.start, w.last = now, now
	w.area = 0
	w.min, w.max = w.value, w.value
	w.started = true
}

// Counter counts a quantity (bytes, packets) over a measurement window.
//
// The window start is explicit: until Reset establishes one, the window
// implicitly begins at simulation time zero, which is only correct for
// signals that exist from the start of the run. Anything that comes to life
// later — a flow with a start offset, a jittered sender — must Reset at its
// own start time, or RateSince divides its bytes over dead time it never
// sent in and understates the rate (conversely, a counter recycled across
// windows without a Reset reports inflated windowed sums).
type Counter struct {
	total   float64
	window  float64
	since   eventsim.Time
	started bool
}

// Add increments the counter.
func (c *Counter) Add(v float64) {
	c.total += v
	c.window += v
}

// Total returns the all-time sum.
func (c *Counter) Total() float64 { return c.total }

// Windowed returns the sum since the last Reset.
func (c *Counter) Windowed() float64 { return c.window }

// Reset starts a new measurement window at time now, making the window
// start explicit.
func (c *Counter) Reset(now eventsim.Time) {
	c.window = 0
	c.since = now
	c.started = true
}

// WindowStart reports when the current measurement window began and whether
// that start was set explicitly by a Reset. A false second return means the
// window is the implicit [0, now) of a counter that was never Reset.
func (c *Counter) WindowStart() (eventsim.Time, bool) {
	return c.since, c.started
}

// RateSince returns the windowed sum expressed as a per-second rate of bits,
// interpreting the counted quantity as bytes. The rate is taken over
// [WindowStart, now].
func (c *Counter) RateSince(now eventsim.Time) units.Rate {
	d := now.Sub(c.since)
	if d <= 0 {
		return 0
	}
	return units.RateOver(units.Bytes(c.window), d)
}

// Summary tracks streaming count/mean/min/max of a sampled quantity, e.g.
// per-packet queueing delay.
type Summary struct {
	n    int
	sum  float64
	min  float64
	max  float64
	sumq float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.sumq += v * v
}

// Count returns the number of samples.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the population standard deviation of the samples.
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Reset discards all samples.
func (s *Summary) Reset() { *s = Summary{} }

// MeanDuration returns the mean interpreted as a duration in nanoseconds.
func (s *Summary) MeanDuration() time.Duration { return time.Duration(s.Mean()) }
