// Package telemetry is the harness's observability layer: deterministic run
// traces of individual simulations and machine-readable reports of sweep
// execution.
//
// A Recorder attaches per-flow and link samplers plus event hooks (drops,
// congestion-control state transitions, capacity-flap edges) to a
// netsim.Network and emits one versioned JSONL trace plus a flat CSV per
// canonical scenario key. Because the simulator is a deterministic function
// of (spec, seed) and observation never mutates simulation state, two runs
// of the same spec produce byte-identical trace files — which is why trace
// configuration is deliberately excluded from the scenario cache key: a
// traced and an untraced run of one spec are the same experiment.
//
// Everything is zero-cost when disabled: a nil *Recorder is valid, attaches
// nothing, registers no hooks and allocates nothing on the simulator's
// packet hot path (asserted by an allocation-guard test).
package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bbrnash/internal/eventsim"
	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// TraceVersion is the trace file format generation, recorded in every trace
// header. Bump it when the record shapes below change incompatibly.
//
// Version 2 added topology-aware link identity: the header counts sampled
// links, and multi-bottleneck traces key their link series, drop events and
// rate events by link name. Single-link traces omit every link field, so
// their record bodies are byte-identical to version 1.
const TraceVersion = 2

// DefaultInterval is the sampling interval used when none is configured.
const DefaultInterval = 100 * time.Millisecond

// Recorder writes run traces into one directory. Construct with
// NewRecorder; a nil *Recorder is valid and disabled — every method is a
// no-op — so callers thread one pointer instead of branching.
//
// Within one Recorder each canonical key is traced once: repeated runs of
// the same spec (cache misses across trials, NE re-evaluations) would
// rewrite identical bytes. Methods are safe for concurrent use by parallel
// sweep workers.
type Recorder struct {
	dir      string
	interval time.Duration

	mu      sync.Mutex
	written map[string]struct{}
	files   atomic.Int64
}

// NewRecorder returns a recorder writing traces into dir, creating it if
// needed.
func NewRecorder(dir string) (*Recorder, error) {
	if dir == "" {
		return nil, errors.New("telemetry: trace directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: creating trace directory: %w", err)
	}
	return &Recorder{dir: dir, interval: DefaultInterval, written: make(map[string]struct{})}, nil
}

// SetInterval sets the sampling interval for subsequently attached
// captures; non-positive values are ignored. Returns the recorder for
// chaining; nil-safe.
func (r *Recorder) SetInterval(d time.Duration) *Recorder {
	if r != nil && d > 0 {
		r.interval = d
	}
	return r
}

// Dir reports the trace directory, "" for a disabled recorder.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Traces reports how many distinct scenario traces have been written.
func (r *Recorder) Traces() int64 {
	if r == nil {
		return 0
	}
	return r.files.Load()
}

// TraceID names a trace on disk: the first 16 hex digits of the canonical
// key's SHA-256. Keys contain '|' and ':' and can exceed filename limits,
// so the files are trace-<id>.jsonl / trace-<id>.csv with the full key in
// the JSONL header.
func TraceID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// TracePaths returns the JSONL and CSV paths a trace of key would be
// written to under dir.
func TracePaths(dir, key string) (jsonl, csv string) {
	id := TraceID(key)
	return filepath.Join(dir, "trace-"+id+".jsonl"),
		filepath.Join(dir, "trace-"+id+".csv")
}

// Event is one discrete occurrence in a traced run, in global event order.
// Kind selects which fields are meaningful: "drop" (Link, Flow, Seq,
// Injected), "state" (Flow, State) or "rate" (Link, Rate). Link names which
// link the event happened on; it is recorded but not emitted for
// single-link scenarios, whose traces stay in the version-1 body shape.
type Event struct {
	At       eventsim.Time
	Kind     string
	Link     string
	Flow     string
	Seq      uint64
	Injected bool
	State    string
	Rate     units.Rate
}

// Capture observes one simulation: samplers on every flow and on every
// link, plus the network's drop/state/rate hooks merged into one ordered
// event stream. Obtain one from Recorder.Attach before running the network;
// call Finish afterwards to emit the trace. A nil *Capture is valid and
// inert.
type Capture struct {
	rec      *Recorder
	spec     scenario.Spec
	interval time.Duration
	flows    []*netsim.Flow
	samplers []*netsim.Sampler
	links    []*netsim.LinkSampler
	multi    bool
	events   []Event
}

// Attach instruments n for tracing: one sampler per flow, one per link
// (every forward link and reverse ACK twin of a multi-bottleneck topology;
// just the bottleneck otherwise), and the drop, state-change and
// rate-change hooks (replacing any previously registered ones). Call before
// running n; sp is recorded in the trace header so the trace is replayable.
// A nil recorder returns a nil capture and touches nothing.
func (r *Recorder) Attach(n *netsim.Network, sp scenario.Spec) *Capture {
	if r == nil || n == nil {
		return nil
	}
	c := &Capture{rec: r, spec: sp, interval: r.interval, multi: sp.MultiLink()}
	if c.multi {
		c.links = n.LinkSamplers(c.interval)
	} else {
		c.links = []*netsim.LinkSampler{netsim.NewLinkSampler(n, c.interval)}
	}
	for _, f := range n.Flows() {
		c.flows = append(c.flows, f)
		c.samplers = append(c.samplers, netsim.NewSampler(f, c.interval))
	}
	n.OnDrop(func(e netsim.DropEvent) {
		c.events = append(c.events, Event{At: e.Time, Kind: "drop", Link: e.Link, Flow: e.Flow, Seq: e.Seq, Injected: e.Injected})
	})
	n.OnStateChange(func(e netsim.StateEvent) {
		c.events = append(c.events, Event{At: e.Time, Kind: "state", Flow: e.Flow, State: e.State})
	})
	n.OnRateChange(func(e netsim.RateEvent) {
		c.events = append(c.events, Event{At: e.Time, Kind: "rate", Link: e.Link, Rate: e.Rate})
	})
	return c
}

// Finish detaches the capture's samplers and writes the trace files for
// key, atomically (temp file + rename), so a process killed mid-write never
// leaves a partial trace under the trace-* name. A key already traced by
// this recorder is skipped — the bytes would be identical. Write failures
// are returned: a trace the operator asked for that cannot persist must not
// fail silently. Nil-safe; an empty key detaches without writing.
func (c *Capture) Finish(key string) error {
	if c == nil {
		return nil
	}
	for _, s := range c.samplers {
		s.Detach()
	}
	for _, ls := range c.links {
		ls.Detach()
	}
	if key == "" {
		return nil
	}
	r := c.rec
	r.mu.Lock()
	if _, dup := r.written[key]; dup {
		r.mu.Unlock()
		return nil
	}
	r.written[key] = struct{}{}
	r.mu.Unlock()

	jsonlPath, csvPath := TracePaths(r.dir, key)
	if err := writeFileAtomic(jsonlPath, c.encodeJSONL(key)); err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	if err := writeFileAtomic(csvPath, c.encodeCSV()); err != nil {
		return fmt.Errorf("telemetry: writing trace CSV: %w", err)
	}
	r.files.Add(1)
	return nil
}

// Events returns the captured event stream (for tests).
func (c *Capture) Events() []Event {
	if c == nil {
		return nil
	}
	return c.events
}

// The JSONL record shapes. Field order within each struct fixes the byte
// layout; encoding/json renders float64 values in their shortest exact
// form, so the encoding is a pure function of the captured values.
type traceHeader struct {
	Record     string        `json:"record"` // "trace"
	Version    int           `json:"version"`
	Key        string        `json:"key"`
	IntervalNS int64         `json:"interval_ns"`
	Flows      int           `json:"flows"`
	Links      int           `json:"links"`
	Events     int           `json:"events"`
	Spec       scenario.Spec `json:"spec"`
}

type flowHeader struct {
	Record    string `json:"record"` // "flow"
	Flow      string `json:"flow"`
	Algorithm string `json:"algorithm"`
	RTTNS     int64  `json:"rtt_ns"`
}

type flowSample struct {
	Record        string  `json:"record"` // "sample"
	Flow          string  `json:"flow"`
	AtNS          int64   `json:"at_ns"`
	ThroughputBPS float64 `json:"throughput_bps"`
	InflightBytes float64 `json:"inflight_bytes"`
	QueueBytes    float64 `json:"queue_bytes"`
}

type linkSample struct {
	Record        string  `json:"record"` // "link"
	Link          string  `json:"link,omitempty"`
	AtNS          int64   `json:"at_ns"`
	QueueBytes    float64 `json:"queue_bytes"`
	ThroughputBPS float64 `json:"throughput_bps"`
	RateBPS       float64 `json:"rate_bps"`
}

type dropEvent struct {
	Record   string `json:"record"` // "event"
	Kind     string `json:"kind"`   // "drop"
	Link     string `json:"link,omitempty"`
	AtNS     int64  `json:"at_ns"`
	Flow     string `json:"flow"`
	Seq      uint64 `json:"seq"`
	Injected bool   `json:"injected"`
}

type stateEvent struct {
	Record string `json:"record"` // "event"
	Kind   string `json:"kind"`   // "state"
	AtNS   int64  `json:"at_ns"`
	Flow   string `json:"flow"`
	State  string `json:"state"`
}

type rateEvent struct {
	Record  string  `json:"record"` // "event"
	Kind    string  `json:"kind"`   // "rate"
	Link    string  `json:"link,omitempty"`
	AtNS    int64   `json:"at_ns"`
	RateBPS float64 `json:"rate_bps"`
}

// encodeJSONL renders the trace: one header line, one flow-header line per
// flow, the per-flow sample series (flows in spec order), the link series
// (links in netsim.PerLink order), then the event stream in simulation
// order. Link fields appear only in multi-bottleneck traces; a single-link
// trace's record bodies match the version-1 layout byte for byte.
func (c *Capture) encodeJSONL(key string) []byte {
	var buf []byte
	line := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			// Record shapes are plain structs of strings and numbers; a
			// marshal failure is a programming error.
			panic(fmt.Sprintf("telemetry: encoding trace record: %v", err))
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	line(traceHeader{
		Record:     "trace",
		Version:    TraceVersion,
		Key:        key,
		IntervalNS: int64(c.interval),
		Flows:      len(c.flows),
		Links:      len(c.links),
		Events:     len(c.events),
		Spec:       c.spec,
	})
	for _, f := range c.flows {
		line(flowHeader{Record: "flow", Flow: f.Name(), Algorithm: f.AlgorithmName(), RTTNS: int64(f.BaseRTT())})
	}
	for i, f := range c.flows {
		name := f.Name()
		for _, s := range c.samplers[i].Samples() {
			line(flowSample{
				Record:        "sample",
				Flow:          name,
				AtNS:          int64(s.At),
				ThroughputBPS: float64(s.Throughput),
				InflightBytes: float64(s.Inflight),
				QueueBytes:    float64(s.QueueBytes),
			})
		}
	}
	for _, ls := range c.links {
		rec := linkSample{Record: "link"}
		if c.multi {
			rec.Link = ls.LinkName()
		}
		for _, s := range ls.Samples() {
			rec.AtNS = int64(s.At)
			rec.QueueBytes = float64(s.QueueBytes)
			rec.ThroughputBPS = float64(s.Throughput)
			rec.RateBPS = float64(s.Rate)
			line(rec)
		}
	}
	for _, e := range c.events {
		link := ""
		if c.multi {
			link = e.Link
		}
		switch e.Kind {
		case "drop":
			line(dropEvent{Record: "event", Kind: "drop", Link: link, AtNS: int64(e.At), Flow: e.Flow, Seq: e.Seq, Injected: e.Injected})
		case "state":
			line(stateEvent{Record: "event", Kind: "state", AtNS: int64(e.At), Flow: e.Flow, State: e.State})
		case "rate":
			line(rateEvent{Record: "event", Kind: "rate", Link: link, AtNS: int64(e.At), RateBPS: float64(e.Rate)})
		}
	}
	return buf
}

// encodeCSV renders the per-flow sample series flat for spreadsheet and
// plotting tools; the JSONL file is the complete record (link series and
// events included).
func (c *Capture) encodeCSV() []byte {
	buf := []byte("at_ns,flow,algorithm,throughput_bps,inflight_bytes,queue_bytes\n")
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, f := range c.flows {
		name, alg := f.Name(), f.AlgorithmName()
		for _, s := range c.samplers[i].Samples() {
			buf = append(buf, strconv.FormatInt(int64(s.At), 10)...)
			buf = append(buf, ',')
			buf = append(buf, name...)
			buf = append(buf, ',')
			buf = append(buf, alg...)
			buf = append(buf, ',')
			buf = append(buf, num(float64(s.Throughput))...)
			buf = append(buf, ',')
			buf = append(buf, num(float64(s.Inflight))...)
			buf = append(buf, ',')
			buf = append(buf, num(float64(s.QueueBytes))...)
			buf = append(buf, '\n')
		}
	}
	return buf
}

// writeFileAtomic writes data to path via a temp file and rename. The temp
// name starts with ".tmp-" so a leftover from a killed process never
// matches the trace-* glob tools and tests scan; mode 0644 keeps traces
// readable across users and CI steps.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-trace-*")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
