package telemetry_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/exp"
	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// testSpec is a small but non-trivial scenario: a shallow buffer forces
// drops and BBR contributes congestion-control state transitions, so the
// trace exercises samples and both event kinds.
func testSpec() scenario.Spec {
	capacity := 20 * units.Mbps
	rtt := 20 * time.Millisecond
	sp := scenario.Mix("bbr", 1, 1, capacity, units.BufferBytes(capacity, rtt, 1), rtt, 5*time.Second)
	sp.Seed = 7
	return sp
}

func readTrace(t *testing.T, dir string, key string) (jsonl, csv []byte) {
	t.Helper()
	jp, cp := telemetry.TracePaths(dir, key)
	jsonl, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	csv, err = os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csv
}

// Two traced runs of the same spec and seed must produce byte-identical
// trace files, and tracing must not change the simulation's result — the
// reason trace configuration is excluded from the scenario cache key.
func TestTraceDeterminismAndResultNeutrality(t *testing.T) {
	sp := testSpec()
	plain, err := exp.RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	var traces [2][2][]byte
	for i := range traces {
		dir := t.TempDir()
		rec, err := telemetry.NewRecorder(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.RunSpecTraced(context.Background(), sp, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, plain) {
			t.Fatal("traced run's result differs from untraced run")
		}
		if rec.Traces() != 1 {
			t.Fatalf("Traces = %d, want 1", rec.Traces())
		}
		traces[i][0], traces[i][1] = readTrace(t, dir, sp.Key())
	}
	if !bytes.Equal(traces[0][0], traces[1][0]) {
		t.Error("JSONL traces of identical runs differ")
	}
	if !bytes.Equal(traces[0][1], traces[1][1]) {
		t.Error("CSV traces of identical runs differ")
	}
}

// The JSONL trace must carry a versioned header with the canonical key and
// replayable spec, per-flow sample records, link records, and the discrete
// event stream (drops from the shallow buffer, BBR state transitions).
func TestTraceContents(t *testing.T) {
	sp := testSpec()
	dir := t.TempDir()
	rec, err := telemetry.NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.RunSpecTraced(context.Background(), sp, rec); err != nil {
		t.Fatal(err)
	}
	jsonl, csv := readTrace(t, dir, sp.Key())

	type record struct {
		Record  string `json:"record"`
		Version int    `json:"version"`
		Key     string `json:"key"`
		Kind    string `json:"kind"`
		State   string `json:"state"`
	}
	counts := map[string]int{}
	kinds := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(jsonl))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if first {
			if r.Record != "trace" || r.Version != telemetry.TraceVersion || r.Key != sp.Key() {
				t.Fatalf("bad header: %+v", r)
			}
			first = false
		}
		counts[r.Record]++
		if r.Record == "event" {
			kinds[r.Kind]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["trace"] != 1 || counts["flow"] != 2 {
		t.Errorf("header/flow records = %d/%d, want 1/2", counts["trace"], counts["flow"])
	}
	if counts["sample"] == 0 || counts["link"] == 0 {
		t.Errorf("missing time series: %d flow samples, %d link samples", counts["sample"], counts["link"])
	}
	if kinds["drop"] == 0 {
		t.Error("shallow-buffer run recorded no drop events")
	}
	if kinds["state"] == 0 {
		t.Error("BBR run recorded no congestion-control state transitions")
	}
	if !bytes.HasPrefix(csv, []byte("at_ns,flow,algorithm,")) {
		t.Error("CSV missing header row")
	}
}

// Within one recorder a canonical key is traced once: repeated runs of the
// same spec would rewrite identical bytes.
func TestRecorderDedupsKeys(t *testing.T) {
	sp := testSpec()
	rec, err := telemetry.NewRecorder(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := exp.RunSpecTraced(context.Background(), sp, rec); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Traces() != 1 {
		t.Errorf("Traces = %d, want 1 (second run of the same key must not re-trace)", rec.Traces())
	}
}

// A trace the operator asked for that cannot persist must fail the run, not
// vanish silently.
func TestFinishReportsWriteFailure(t *testing.T) {
	sp := testSpec()
	dir := filepath.Join(t.TempDir(), "traces")
	rec, err := telemetry.NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.RunSpecTraced(context.Background(), sp, rec); err == nil {
		t.Fatal("expected an error when the trace directory is gone")
	}
}

func TestTraceIDAndPaths(t *testing.T) {
	if id := telemetry.TraceID("scenario|v3|a"); len(id) != 16 {
		t.Errorf("TraceID length = %d, want 16", len(id))
	}
	if telemetry.TraceID("a") == telemetry.TraceID("b") {
		t.Error("distinct keys must map to distinct trace IDs")
	}
	j, c := telemetry.TracePaths("dir", "k")
	if filepath.Dir(j) != "dir" || filepath.Ext(j) != ".jsonl" || filepath.Ext(c) != ".csv" {
		t.Errorf("TracePaths = %q, %q", j, c)
	}
}

// Every entry point must be a no-op on a nil recorder/capture, so callers
// thread one pointer with no branching.
func TestNilRecorderIsInert(t *testing.T) {
	var rec *telemetry.Recorder
	if rec.SetInterval(time.Second) != nil {
		t.Error("nil SetInterval should return nil")
	}
	if rec.Dir() != "" || rec.Traces() != 0 {
		t.Error("nil accessors should return zero values")
	}
	if cap := rec.Attach(nil, scenario.Spec{}); cap != nil {
		t.Error("nil Attach should return nil")
	}
	var cap *telemetry.Capture
	if err := cap.Finish("key"); err != nil {
		t.Error("nil Finish should be a no-op")
	}
	if cap.Events() != nil {
		t.Error("nil Events should be nil")
	}
}

// The zero-cost-when-disabled guarantee: threading a nil recorder through a
// simulation must add no allocations over not mentioning telemetry at all.
// The simulator is deterministic, so the two allocation counts are exactly
// comparable.
func TestDisabledRecorderAddsNoAllocations(t *testing.T) {
	capacity := 20 * units.Mbps
	rtt := 20 * time.Millisecond
	runSim := func(attach bool) {
		n, err := netsim.New(netsim.Config{Capacity: capacity, Buffer: units.BufferBytes(capacity, rtt, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddFlow(netsim.FlowConfig{Name: "b", RTT: rtt, Algorithm: bbr.New}); err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddFlow(netsim.FlowConfig{Name: "c", RTT: rtt, Algorithm: cubic.New}); err != nil {
			t.Fatal(err)
		}
		if attach {
			var rec *telemetry.Recorder
			cap := rec.Attach(n, scenario.Spec{})
			defer func() {
				if err := cap.Finish(""); err != nil {
					t.Fatal(err)
				}
			}()
		}
		n.Run(2 * time.Second)
	}
	base := testing.AllocsPerRun(3, func() { runSim(false) })
	withNil := testing.AllocsPerRun(3, func() { runSim(true) })
	if withNil > base {
		t.Errorf("disabled telemetry allocated: %.0f allocs with nil recorder vs %.0f without", withNil, base)
	}
}

// Collect is nil-safe across all components and Write round-trips through
// JSON.
func TestReportCollectAndWrite(t *testing.T) {
	rep := telemetry.Collect("test", "ok", 2*time.Second, nil, nil, nil, nil)
	if rep.Version != telemetry.ReportVersion || rep.Command != "test" || rep.Outcome != "ok" {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.WallNS != int64(2*time.Second) {
		t.Errorf("WallNS = %d", rep.WallNS)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Errorf("report round-trip mismatch: %+v != %+v", back, rep)
	}
}
