package telemetry

import (
	"encoding/json"
	"fmt"
	"time"

	"bbrnash/internal/runner"
)

// ReportVersion is the run-report format generation.
const ReportVersion = 1

// Report is the machine-readable summary of one command's execution:
// worker-pool occupancy, retry and stall counts, cache and journal
// effectiveness, trace output. It complements the trace files — a trace
// explains one simulation's dynamics, a report explains the sweep around
// it — and is written by the CLIs' -report flag on every exit path, so an
// interrupted or failed run still leaves an inspectable record.
type Report struct {
	Version int    `json:"version"`
	Command string `json:"command"`
	// Outcome is "ok", "interrupted" or "failed".
	Outcome string `json:"outcome"`
	Workers int    `json:"workers"`
	// UnitsCompleted counts successfully completed pool units; BusyNS is
	// the wall time spent inside them and MaxUnitNS the longest single
	// unit. Speedup is BusyNS over WallNS — the effective parallelism.
	UnitsCompleted int64   `json:"units_completed"`
	WallNS         int64   `json:"wall_ns"`
	BusyNS         int64   `json:"busy_ns"`
	MaxUnitNS      int64   `json:"max_unit_ns"`
	Speedup        float64 `json:"speedup"`
	// Retries counts re-executed unit attempts; Stalls counts watchdog
	// cancellations.
	Retries int64 `json:"retries"`
	Stalls  int64 `json:"stalls"`
	// Cache and journal effectiveness.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	JournalHits  int64   `json:"journal_hits"`
	// TraceFiles counts distinct scenario traces written (0 without
	// -trace); TraceDir is where.
	TraceFiles int64  `json:"trace_files"`
	TraceDir   string `json:"trace_dir,omitempty"`
}

// Collect assembles a report from the run's components; any of them may be
// nil (all are nil-safe).
func Collect(command, outcome string, wall time.Duration, pool *runner.Pool, cache *runner.Cache, journal *runner.Journal, rec *Recorder) Report {
	rep := Report{
		Version:        ReportVersion,
		Command:        command,
		Outcome:        outcome,
		Workers:        pool.Workers(),
		UnitsCompleted: pool.Jobs(),
		WallNS:         int64(wall),
		BusyNS:         int64(pool.Busy()),
		MaxUnitNS:      int64(pool.MaxUnitWall()),
		Retries:        pool.Retries(),
		Stalls:         pool.Stalls(),
		CacheHits:      cache.Hits(),
		CacheMisses:    cache.Misses(),
		CacheHitRate:   cache.HitRate(),
		JournalHits:    journal.Hits(),
		TraceFiles:     rec.Traces(),
		TraceDir:       rec.Dir(),
	}
	if wall > 0 && rep.BusyNS > 0 {
		rep.Speedup = float64(rep.BusyNS) / float64(wall)
	}
	return rep
}

// Write persists the report as indented JSON, atomically, so a report file
// is always either the previous run's or this one's — never a torn mix.
func (rep Report) Write(path string) error {
	data, err := json.MarshalIndent(rep, "", "\t")
	if err != nil {
		return fmt.Errorf("telemetry: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("telemetry: writing report: %w", err)
	}
	return nil
}
