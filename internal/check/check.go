// Package check audits experiment results against physical invariants.
//
// Every figure and equilibrium in the pipeline is hours of accumulated
// simulation; a silent NaN or a conservation bug in a congestion-control
// implementation poisons everything downstream. The auditor validates each
// simulation's statistics as they are produced — throughput shares must fit
// the link, delivered bytes must be accounted for by sent bytes, queues
// must respect the buffer bound, and nothing may be NaN, Inf or negative —
// and records violations under the canonical scenario key, so one bad unit
// in a sweep is reported by scenario instead of discovered in a plot.
//
// A nil *Auditor is valid and disables auditing, mirroring the nil
// *runner.Pool / *runner.Cache convention; the CLIs attach one behind
// their -strict flag.
package check

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bbrnash/internal/netsim"
	"bbrnash/internal/units"
)

// relTol absorbs measurement-window rounding: utilization and share sums
// may exceed their ideal bounds by a fraction of a percent when a window
// opens on a full queue (netsim's own property tests allow the same
// drift). Real corruption — a NaN, a negative rate, a share twice the
// capacity — is far outside this band.
const relTol = 5e-3

// Limits carries the scenario bounds a result is audited against.
type Limits struct {
	// Capacity is the bottleneck rate; shares must sum to at most
	// Capacity (within tolerance).
	Capacity units.Rate
	// Buffer bounds queue occupancy and queueing delay.
	Buffer units.Bytes
	// Pipe bounds one flow's unaccounted bytes — sent but neither
	// delivered nor dropped — as the buffer plus the longest path's
	// bandwidth-delay product. A measurement window can open with a
	// pipe-full outstanding, so conservation is enforced up to this
	// slack.
	Pipe units.Bytes
	// MinCapacity is the lowest instantaneous service rate the link ever
	// offers — under a capacity flap, Capacity*(1-depth). Queue drain (and
	// so the delay bound) must be computed at this rate, not the nominal
	// one. Zero means Capacity (a steady link).
	MinCapacity units.Rate
	// MeanCapacity is the time-averaged service rate over the measurement
	// window — under a flap, below Capacity — and bounds what flows can
	// collectively deliver (share-sum, utilization). Zero means Capacity.
	MeanCapacity units.Rate
	// RTTBound caps a flow's mean RTT sample: the base RTT plus ACK jitter
	// plus the worst-case queueing delay of every link on the flow's path
	// (forward queues at the slowest flapped rate, reverse ACK queues at
	// theirs). Zero disables the check — either the path is unknown, or an
	// ACK-loss fault is active and its modeled retransmission delays
	// compound without bound.
	RTTBound time.Duration
}

// minCapacity is the effective floor rate, defaulting to Capacity.
func (l Limits) minCapacity() units.Rate {
	if l.MinCapacity > 0 {
		return l.MinCapacity
	}
	return l.Capacity
}

// meanCapacity is the effective average rate, defaulting to Capacity.
func (l Limits) meanCapacity() units.Rate {
	if l.MeanCapacity > 0 {
		return l.MeanCapacity
	}
	return l.Capacity
}

// Violation is one failed invariant.
type Violation struct {
	// Key is the canonical scenario key of the violating result ("" when
	// the scenario is uncacheable).
	Key string
	// Invariant names the failed rule: "finite", "non-negative",
	// "conservation", "share-sum", "queue-bound", "utilization",
	// "delay-bound" or "rtt-order".
	Invariant string
	// Detail is the measured-vs-bound evidence.
	Detail string
}

func (v Violation) String() string {
	key := v.Key
	if key == "" {
		key = "<uncacheable scenario>"
	}
	return fmt.Sprintf("%s: %s [%s]", v.Invariant, v.Detail, key)
}

// violations accumulates failed invariants for one audited result.
type violations struct {
	key string
	vs  []Violation
}

func (a *violations) add(invariant, format string, args ...any) {
	a.vs = append(a.vs, Violation{Key: a.key, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// finite flags NaN and Inf, the poison values a long sweep must never
// average into a figure.
func (a *violations) finite(what string, v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		a.add("finite", "%s = %v", what, v)
		return false
	}
	return true
}

func (a *violations) nonNegative(what string, v float64) bool {
	if !a.finite(what, v) {
		return false
	}
	if v < 0 {
		a.add("non-negative", "%s = %v", what, v)
		return false
	}
	return true
}

// Rate audits one reported rate: finite and non-negative.
func Rate(key, what string, r units.Rate) []Violation {
	a := &violations{key: key}
	a.nonNegative(what, float64(r))
	return a.vs
}

// ShareSum audits that an aggregate of per-flow shares fits the link:
// flows cannot collectively deliver more than the bottleneck forwards —
// over a flapping link, no more than its time-averaged rate.
func ShareSum(key string, lim Limits, agg units.Rate) []Violation {
	a := &violations{key: key}
	if a.nonNegative("aggregate throughput", float64(agg)) && lim.Capacity > 0 &&
		float64(agg) > float64(lim.meanCapacity())*(1+relTol) {
		a.add("share-sum", "aggregate throughput %v exceeds mean capacity %v", agg, lim.meanCapacity())
	}
	return a.vs
}

// Flows audits the per-flow and link statistics of one simulation run
// against lim, returning every violated invariant. link may be nil when
// only per-flow statistics are available.
func Flows(key string, lim Limits, flows []netsim.FlowStats, link *netsim.LinkStats) []Violation {
	a := &violations{key: key}
	var agg units.Rate
	for _, f := range flows {
		if a.nonNegative("flow "+f.Name+" throughput", float64(f.Throughput)) {
			agg += f.Throughput
		}
		ok := a.nonNegative("flow "+f.Name+" delivered bytes", float64(f.Delivered))
		ok = a.nonNegative("flow "+f.Name+" sent bytes", float64(f.SentBytes)) && ok
		if f.Lost < 0 {
			a.add("non-negative", "flow %s lost packets = %d", f.Name, f.Lost)
			ok = false
		}
		// Conservation: every delivered or dropped byte was sent. The
		// measurement window may open with up to a pipe-full already in
		// flight, hence the slack.
		if ok {
			accounted := float64(f.Delivered) + float64(f.Lost)*float64(units.MSS)
			if accounted > float64(f.SentBytes)+float64(lim.Pipe)+float64(units.MSS) {
				a.add("conservation", "flow %s delivered+dropped %.0fB exceeds sent %v + pipe %v",
					f.Name, accounted, f.SentBytes, lim.Pipe)
			}
		}
		if a.nonNegative("flow "+f.Name+" max queue occupancy", float64(f.MaxQueueOccupancy)) &&
			lim.Buffer > 0 && float64(f.MaxQueueOccupancy) > float64(lim.Buffer)*(1+relTol) {
			a.add("queue-bound", "flow %s max queue occupancy %v exceeds buffer %v",
				f.Name, f.MaxQueueOccupancy, lim.Buffer)
		}
		if f.MeanRTT < 0 || f.MinRTT < 0 {
			a.add("non-negative", "flow %s RTT mean %v / min %v", f.Name, f.MeanRTT, f.MinRTT)
		} else if f.MeanRTT > 0 && f.MinRTT > 0 && f.MeanRTT < f.MinRTT {
			a.add("rtt-order", "flow %s mean RTT %v below min RTT %v", f.Name, f.MeanRTT, f.MinRTT)
		} else if lim.RTTBound > 0 &&
			float64(f.MeanRTT) > float64(lim.RTTBound)*(1+relTol) {
			// Every RTT sample is the base RTT plus jitter plus whatever the
			// path's queues added; the mean cannot exceed the sum of their
			// worst cases.
			a.add("delay-bound", "flow %s mean RTT %v exceeds path bound %v",
				f.Name, f.MeanRTT, lim.RTTBound)
		}
	}
	a.vs = append(a.vs, ShareSum(key, lim, agg)...)
	if link != nil {
		a.link(lim, link)
	}
	return a.vs
}

// Link audits one link's statistics against its own bounds: utilization
// against the (time-averaged) capacity, occupancy and drain delay against
// the buffer, and drop-count sanity. Multi-bottleneck results audit each
// link — reverse ACK twins included — with per-link limits.
func Link(key string, lim Limits, l *netsim.LinkStats) []Violation {
	a := &violations{key: key}
	a.link(lim, l)
	return a.vs
}

// link audits bottleneck-level statistics.
func (a *violations) link(lim Limits, l *netsim.LinkStats) {
	name := "link"
	if l.Name != "" {
		name = "link " + l.Name
	}
	// Utilization is delivered rate over *nominal* capacity, so over a
	// flapping link it cannot exceed the mean-to-nominal fraction.
	utilBound := 1.0
	if lim.Capacity > 0 {
		utilBound = float64(lim.meanCapacity()) / float64(lim.Capacity)
	}
	if a.finite(name+" utilization", l.Utilization) &&
		(l.Utilization < 0 || l.Utilization > utilBound*(1+relTol)) {
		a.add("utilization", "%s utilization = %v, want 0..%v", name, l.Utilization, utilBound)
	}
	if a.nonNegative(name+" mean queue occupancy", float64(l.MeanQueueOccupancy)) &&
		lim.Buffer > 0 && float64(l.MeanQueueOccupancy) > float64(lim.Buffer)*(1+relTol) {
		a.add("queue-bound", "%s mean queue occupancy %v exceeds buffer %v",
			name, l.MeanQueueOccupancy, lim.Buffer)
	}
	if l.MeanQueueDelay < 0 {
		a.add("non-negative", "%s mean queue delay = %v", name, l.MeanQueueDelay)
	} else if lim.Capacity > 0 && lim.Buffer > 0 {
		// A drop-tail queue never holds more than the buffer ahead of a
		// packet, so its delay through the bottleneck is bounded by the
		// time to transmit buffer + its own size — at the slowest rate the
		// link ever serves, when it flaps.
		bound := time.Duration(float64(lim.Buffer+units.MSS) * 8 / float64(lim.minCapacity()) *
			(1 + relTol) * float64(time.Second))
		if l.MeanQueueDelay > bound {
			a.add("delay-bound", "%s mean queue delay %v exceeds drain bound %v",
				name, l.MeanQueueDelay, bound)
		}
	}
	if l.Drops < 0 {
		a.add("non-negative", "%s drops = %d", name, l.Drops)
	}
}

// Auditor collects violations across a run; methods are safe for
// concurrent use and a nil *Auditor disables auditing entirely.
type Auditor struct {
	mu sync.Mutex
	vs []Violation
}

// New returns an empty auditor.
func New() *Auditor { return &Auditor{} }

// Enabled reports whether results should be audited at all.
func (a *Auditor) Enabled() bool { return a != nil }

// Record appends violations; recording nothing is a no-op.
func (a *Auditor) Record(vs ...Violation) {
	if a == nil || len(vs) == 0 {
		return
	}
	a.mu.Lock()
	a.vs = append(a.vs, vs...)
	a.mu.Unlock()
}

// Len reports how many violations have been recorded.
func (a *Auditor) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.vs)
}

// Violations returns a copy of everything recorded, in record order.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.vs...)
}

// ViolationsFor returns the recorded violations carrying this canonical
// key, in record order. A long-running service audits thousands of
// unrelated scenarios through one auditor; this is how it fails a single
// submission on its own violations without adopting everyone else's.
func (a *Auditor) ViolationsFor(key string) []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Violation
	for _, v := range a.vs {
		if v.Key == key {
			out = append(out, v)
		}
	}
	return out
}

// Err summarizes the recorded violations as one error, nil when clean.
func (a *Auditor) Err() error {
	vs := a.Violations()
	if len(vs) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s", len(vs), vs[0])
}
