package check

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"bbrnash/internal/netsim"
	"bbrnash/internal/units"
)

// testLimits is a plausible 100 Mbps / 40 ms / 3 BDP scenario.
func testLimits() Limits {
	capacity := 100 * units.Mbps
	buffer := units.BufferBytes(capacity, 40*time.Millisecond, 3)
	return Limits{
		Capacity: capacity,
		Buffer:   buffer,
		Pipe:     buffer + units.BDP(capacity, 50*time.Millisecond),
	}
}

// cleanFlow builds statistics that satisfy every invariant under
// testLimits.
func cleanFlow(name string, tput units.Rate, dur time.Duration) netsim.FlowStats {
	return netsim.FlowStats{
		Name:               name,
		Throughput:         tput,
		Delivered:          units.Bytes(float64(tput) / 8 * dur.Seconds()),
		SentBytes:          units.Bytes(float64(tput)/8*dur.Seconds()) + 20*units.MSS,
		Lost:               10,
		MaxQueueOccupancy:  units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 2),
		MeanQueueOccupancy: units.BufferBytes(100*units.Mbps, 40*time.Millisecond, 1),
		MinRTT:             40 * time.Millisecond,
		MeanRTT:            55 * time.Millisecond,
	}
}

func invariants(vs []Violation) []string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Invariant)
	}
	return names
}

func requireInvariant(t *testing.T, vs []Violation, want string) {
	t.Helper()
	for _, v := range vs {
		if v.Invariant == want {
			return
		}
	}
	t.Errorf("violations %v missing invariant %q", invariants(vs), want)
}

func TestFlowsCleanResultPasses(t *testing.T) {
	lim := testLimits()
	flows := []netsim.FlowStats{
		cleanFlow("bbr0", 60*units.Mbps, time.Minute),
		cleanFlow("cubic0", 35*units.Mbps, time.Minute),
	}
	link := &netsim.LinkStats{
		Utilization:        0.95,
		MeanQueueOccupancy: lim.Buffer / 2,
		MeanQueueDelay:     10 * time.Millisecond,
		Drops:              42,
	}
	if vs := Flows("key", lim, flows, link); len(vs) != 0 {
		t.Errorf("clean result flagged: %v", vs)
	}
}

func TestFlowsConservation(t *testing.T) {
	lim := testLimits()
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	// Claim to have delivered far more than was sent: a pipe-full of slack
	// cannot explain two extra pipes.
	f.Delivered = f.SentBytes + 3*lim.Pipe
	vs := Flows("key", lim, []netsim.FlowStats{f}, nil)
	requireInvariant(t, vs, "conservation")
}

func TestFlowsNaNThroughput(t *testing.T) {
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	f.Throughput = units.Rate(math.NaN())
	vs := Flows("key", testLimits(), []netsim.FlowStats{f}, nil)
	requireInvariant(t, vs, "finite")
}

func TestFlowsNegativeLost(t *testing.T) {
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	f.Lost = -1
	vs := Flows("key", testLimits(), []netsim.FlowStats{f}, nil)
	requireInvariant(t, vs, "non-negative")
}

func TestFlowsQueueOverBuffer(t *testing.T) {
	lim := testLimits()
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	f.MaxQueueOccupancy = 2 * lim.Buffer
	vs := Flows("key", lim, []netsim.FlowStats{f}, nil)
	requireInvariant(t, vs, "queue-bound")
}

func TestFlowsRTTOrder(t *testing.T) {
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	f.MeanRTT = f.MinRTT / 2
	vs := Flows("key", testLimits(), []netsim.FlowStats{f}, nil)
	requireInvariant(t, vs, "rtt-order")
}

func TestShareSumOverCapacity(t *testing.T) {
	lim := testLimits()
	vs := ShareSum("key", lim, lim.Capacity*2)
	requireInvariant(t, vs, "share-sum")
	// Within tolerance is fine: utilization measurement can round a hair
	// above the line rate.
	if vs := ShareSum("key", lim, lim.Capacity*units.Rate(1+relTol/2)); len(vs) != 0 {
		t.Errorf("in-tolerance aggregate flagged: %v", vs)
	}
}

func TestLinkUtilizationAndDelayBounds(t *testing.T) {
	lim := testLimits()
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)
	link := &netsim.LinkStats{Utilization: 1.2}
	requireInvariant(t, Flows("key", lim, []netsim.FlowStats{f}, link), "utilization")

	link = &netsim.LinkStats{Utilization: 0.9, MeanQueueDelay: time.Hour}
	requireInvariant(t, Flows("key", lim, []netsim.FlowStats{f}, link), "delay-bound")
}

func TestRate(t *testing.T) {
	if vs := Rate("key", "per-flow", 10*units.Mbps); len(vs) != 0 {
		t.Errorf("clean rate flagged: %v", vs)
	}
	requireInvariant(t, Rate("key", "per-flow", units.Rate(math.Inf(1))), "finite")
	requireInvariant(t, Rate("key", "per-flow", -1*units.Mbps), "non-negative")
}

func TestViolationStringNamesScenario(t *testing.T) {
	v := Violation{Key: "mix|v1|cap=1", Invariant: "share-sum", Detail: "d"}
	if s := v.String(); !strings.Contains(s, "mix|v1|cap=1") || !strings.Contains(s, "share-sum") {
		t.Errorf("String() = %q", s)
	}
	v.Key = ""
	if s := v.String(); !strings.Contains(s, "<uncacheable scenario>") {
		t.Errorf("String() = %q", s)
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	if a.Enabled() {
		t.Error("nil auditor enabled")
	}
	a.Record(Violation{Invariant: "finite"}) // must not panic
	if a.Len() != 0 || a.Violations() != nil || a.Err() != nil {
		t.Error("nil auditor should report nothing")
	}
}

func TestAuditorConcurrentRecord(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Record(Violation{Invariant: "finite", Detail: "x"})
			}
		}()
	}
	wg.Wait()
	if a.Len() != 800 {
		t.Errorf("Len = %d, want 800", a.Len())
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "800") {
		t.Errorf("Err = %v", err)
	}
}

func TestAuditorEmptyRecordIsNoOp(t *testing.T) {
	a := New()
	a.Record()
	if a.Len() != 0 || a.Err() != nil {
		t.Error("empty Record changed state")
	}
}

// TestFaultAwareLimits: MinCapacity relaxes the drain/delay bound and
// MeanCapacity tightens the share-sum and utilization bounds, so a flapped
// link is audited against what it actually offered — and the zero values
// keep the steady-link behavior.
func TestFaultAwareLimits(t *testing.T) {
	lim := testLimits()
	f := cleanFlow("bbr0", 60*units.Mbps, time.Minute)

	// Drain bound at the nominal rate flags a delay the flapped floor
	// rate explains; setting MinCapacity to that floor accepts it.
	drainAtNominal := time.Duration(float64(lim.Buffer+units.MSS) * 8 / float64(lim.Capacity) * float64(time.Second))
	link := &netsim.LinkStats{Utilization: 0.6, MeanQueueDelay: 3 * drainAtNominal}
	requireInvariant(t, Flows("key", lim, []netsim.FlowStats{f}, link), "delay-bound")
	relaxed := lim
	relaxed.MinCapacity = lim.Capacity / 4
	if vs := Flows("key", relaxed, []netsim.FlowStats{f}, link); len(vs) != 0 {
		t.Errorf("delay within flapped drain bound flagged: %v", vs)
	}

	// A share sum legal for the nominal rate violates the flapped mean.
	tight := lim
	tight.MeanCapacity = lim.Capacity / 2
	requireInvariant(t, ShareSum("key", tight, lim.Capacity*3/4), "share-sum")
	if vs := ShareSum("key", tight, lim.Capacity*2/5); len(vs) != 0 {
		t.Errorf("aggregate under mean capacity flagged: %v", vs)
	}

	// Utilization is measured against nominal capacity, so its ceiling
	// under a flap is the mean fraction.
	link = &netsim.LinkStats{Utilization: 0.8}
	requireInvariant(t, Flows("key", tight, []netsim.FlowStats{cleanFlow("bbr0", 40*units.Mbps, time.Minute)}, link), "utilization")
	link = &netsim.LinkStats{Utilization: 0.45}
	if vs := Flows("key", tight, []netsim.FlowStats{cleanFlow("bbr0", 40*units.Mbps, time.Minute)}, link); len(vs) != 0 {
		t.Errorf("utilization under mean fraction flagged: %v", vs)
	}

	// Zero values mean a steady link: defaults preserved.
	if lim.minCapacity() != lim.Capacity || lim.meanCapacity() != lim.Capacity {
		t.Error("zero Min/MeanCapacity must default to Capacity")
	}
}
