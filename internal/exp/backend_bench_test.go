package exp

import (
	"testing"
	"time"

	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// BenchmarkBackendScenario runs the same canonical scenarios on each
// execution backend. One op is one complete fresh simulation, so ns/op is
// ns per scenario and the packet/fluid ratio at a given scenario is the
// fluid fast path's per-scenario speedup (scripts/bench.sh -s backends
// turns the pairs into a BENCH_*.json record).
//
// The packet engine's cost scales with the packet arrival rate (capacity ×
// duration), while the fluid model's cost is fixed by step count and group
// count — so the speedup grows with scenario weight: modest at the 40 Mbps
// figure point, two orders of magnitude at the gigabit point.
func BenchmarkBackendScenario(b *testing.B) {
	scenarios := []struct {
		name     string
		capacity units.Rate
		nbbr, nc int
	}{
		// The paper's common figure operating point.
		{"mix40M_2v2", 40 * units.Mbps, 2, 2},
		// A gigabit bottleneck at the same 6 BDP depth: ~10M packets of
		// work for the packet engine, the same 120k steps for the fluid
		// model.
		{"mix1G_10v10", units.Gbps, 10, 10},
	}
	const rtt = 40 * time.Millisecond
	for _, sc := range scenarios {
		for _, backend := range scenario.Backends() {
			b.Run(sc.name+"/"+backend, func(b *testing.B) {
				sp := scenario.Mix("bbr", sc.nbbr, sc.nc, sc.capacity,
					units.BufferBytes(sc.capacity, rtt, 6), rtt, 2*time.Minute)
				sp.Seed = 1
				sp.Backend = backend
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := RunSpec(sp); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
