package exp

import (
	"testing"
	"time"

	"bbrnash/internal/core"
	"bbrnash/internal/units"
)

// §5 of the paper leaves open how the predictions scale to "hundreds of
// concurrent flows". The packet simulator's cost is set by the link's
// packet rate, not the flow count, so a 200-flow bottleneck is directly
// testable: the diminishing-returns mechanism must survive, with per-flow
// BBR bandwidth above fair share when BBR is rare and at or below it when
// BBR dominates.
func TestLargeNDiminishingReturns(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N 2-minute simulations")
	}
	const n = 200
	const rtt = 40 * time.Millisecond
	capacity := units.Gbps // fair share 5 Mbps/flow; min windows stay feasible
	buf := units.BufferBytes(capacity, rtt, 3)
	fair := float64(capacity) / n

	per := func(nb int) float64 {
		res, err := RunMix(MixConfig{
			Capacity: capacity, Buffer: buf, RTT: rtt,
			Duration: 2 * time.Minute, NumX: nb, NumCubic: n - nb, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerFlowX)
	}

	rare := per(10) // 5% BBR
	if rare <= fair {
		t.Errorf("with 10/200 BBR flows, per-flow BBR %.2e not above fair %.2e", rare, fair)
	}
	common := per(160) // 80% BBR
	if common >= rare {
		t.Errorf("per-flow BBR did not diminish: %.2e at 160 flows vs %.2e at 10", common, rare)
	}
	if common > 1.2*fair {
		t.Errorf("with 160/200 BBR flows, per-flow BBR %.2e still far above fair %.2e", common, fair)
	}

	// The model extends to N=200 without modification.
	region, err := core.PredictNashRegion(core.NashScenario{
		Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if region.CubicLow() <= 0 || region.CubicHigh() >= n {
		t.Errorf("model NE region for N=200 should be mixed, got [%.0f, %.0f]",
			region.CubicLow(), region.CubicHigh())
	}
}
