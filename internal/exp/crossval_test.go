package exp

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

func crossValSmokeConfig(pool *runner.Pool, cache *runner.Cache) CrossValConfig {
	return CrossValConfig{
		Capacity:   20 * units.Mbps,
		RTT:        30 * time.Millisecond,
		Duration:   3 * time.Second,
		Seed:       7,
		BufferBDPs: []float64{2, 6},
		Mixes:      [][2]int{{1, 1}},
		Scale: Scale{
			Name:         "crossval-smoke",
			FlowDuration: 3 * time.Second,
			Trials:       1,
			Pool:         pool,
			Cache:        cache,
		},
	}
}

// TestCrossValidateReport: the harness runs both backends over the grid
// and produces a schema-complete, internally consistent report. Divergence
// must be reported, never turned into an error.
func TestCrossValidateReport(t *testing.T) {
	rep, err := CrossValidate(crossValSmokeConfig(nil, runner.NewCache()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != CrossValSchemaVersion {
		t.Errorf("schema version %d, want %d", rep.SchemaVersion, CrossValSchemaVersion)
	}
	if rep.KeyVersion != scenario.KeyVersion {
		t.Errorf("key version %q, want %q", rep.KeyVersion, scenario.KeyVersion)
	}
	if len(rep.Points) != 2 || rep.Summary.Points != 2 {
		t.Fatalf("got %d points (summary %d), want 2", len(rep.Points), rep.Summary.Points)
	}
	for _, p := range rep.Points {
		if p.Regime == "" {
			t.Errorf("point buf=%g has no regime label", p.BufferBDP)
		}
		if p.PacketBBRMbps <= 0 || p.FluidBBRMbps <= 0 {
			t.Errorf("point buf=%g has non-positive BBR rates: packet %g fluid %g",
				p.BufferBDP, p.PacketBBRMbps, p.FluidBBRMbps)
		}
		if p.RelErrBBR < 0 || p.RelErrCubic < 0 {
			t.Errorf("point buf=%g has negative relative error", p.BufferBDP)
		}
	}
	if rep.Summary.MaxRelErr < rep.Summary.MeanRelErr {
		t.Errorf("summary max %g below mean %g", rep.Summary.MaxRelErr, rep.Summary.MeanRelErr)
	}
	// The report must be valid JSON round-trippable by downstream tooling.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back CrossValReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Error("report does not survive a JSON round trip")
	}
}

// TestCrossValidateDeterministicAcrossWorkers: the report — including
// every fluid trajectory in it — is byte-identical at any worker count,
// the same contract figure sweeps keep.
func TestCrossValidateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) CrossValReport {
		cfg := crossValSmokeConfig(runner.NewPool(workers), runner.NewCache())
		rep, err := CrossValidate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("report differs between 1 and 8 workers:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestFluidBackendCachedDistinct: the same scenario on the two backends
// produces two distinct cache entries (bk= is in the key) and the fluid
// entry replays from cache byte-identically.
func TestFluidBackendCachedDistinct(t *testing.T) {
	sp := scenario.Mix("bbr", 1, 1, 20*units.Mbps,
		units.BufferBytes(20*units.Mbps, 30*time.Millisecond, 4),
		30*time.Millisecond, 2*time.Second)
	sp.Seed = 11
	fl := sp
	fl.Backend = scenario.BackendFluid
	if sp.Key() == fl.Key() {
		t.Fatalf("backends share a cache key: %q", sp.Key())
	}
	cache := runner.NewCache()
	ctx := context.Background()
	pktRes, hit, err := RunSpecCached(ctx, sp, cache, nil, nil)
	if err != nil || hit {
		t.Fatalf("packet run: hit=%v err=%v", hit, err)
	}
	flRes, hit, err := RunSpecCached(ctx, fl, cache, nil, nil)
	if err != nil || hit {
		t.Fatalf("fluid run: hit=%v err=%v", hit, err)
	}
	if reflect.DeepEqual(pktRes, flRes) {
		t.Error("packet and fluid results are identical — dispatch did not switch engines")
	}
	replay, hit, err := RunSpecCached(ctx, fl, cache, nil, nil)
	if err != nil || !hit {
		t.Fatalf("fluid replay: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(flRes, replay) {
		t.Error("cached fluid result differs from fresh run")
	}
}

// TestFluidRejectsOverrides: a fluid spec with a constructor override is a
// loud error — packet-engine constructors have no fluid form.
func TestFluidRejectsOverrides(t *testing.T) {
	cfg := MixConfig{
		Capacity: 20 * units.Mbps,
		Buffer:   units.BufferBytes(20*units.Mbps, 30*time.Millisecond, 4),
		RTT:      30 * time.Millisecond,
		Duration: time.Second,
		NumX:     1,
		NumCubic: 1,
		Backend:  scenario.BackendFluid,
		X:        constantWindowCtor(10 * units.MSS),
	}
	if _, err := RunMix(cfg); err == nil {
		t.Error("RunMix accepted a fluid run with a non-registry constructor")
	}
}
