package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/fluid"
	"bbrnash/internal/netsim"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/scenario: every run —
// mixed-distribution, multi-RTT group, sweep point, NE payoff — is first
// expressed as a scenario.Spec, and the spec's canonical key is the one
// identity used by the result cache, the invariant auditor and unit-failure
// reports. MixConfig and GroupConfig survive as convenience views that
// compile down to specs.

// SpecResult is the raw outcome of one scenario run: per-flow statistics in
// spec group order (group i of the spec is Groups[i], empty groups stay
// empty) plus per-link statistics. It is the one value type stored in the
// result cache, so mix and group runs of the same spec share an entry
// instead of evicting each other.
//
// Link is the first configured link — the bottleneck of every legacy
// single-link scenario — kept both as the convenience view the mix/group
// projections read and as the only link record in results cached before
// topologies existed. Links holds every link in netsim.PerLink order
// (forward links in configuration order, then reverse ACK twins); it is
// empty in old cached values, and audits fall back to Link then.
type SpecResult struct {
	Groups [][]netsim.FlowStats
	Link   netsim.LinkStats
	Links  []netsim.LinkStats
}

// group returns group i's stats, tolerating shape drift in cached values
// (an on-disk store written against a different spec must degrade to empty
// classes, not panic).
func (r SpecResult) group(i int) []netsim.FlowStats {
	if i >= 0 && i < len(r.Groups) {
		return r.Groups[i]
	}
	return nil
}

// aggRate sums a class's throughputs in flow order.
func aggRate(stats []netsim.FlowStats) units.Rate {
	var agg units.Rate
	for _, st := range stats {
		agg += st.Throughput
	}
	return agg
}

// RunSpec executes one scenario and reports per-group statistics.
func RunSpec(sp scenario.Spec) (SpecResult, error) {
	return runSpecOverride(context.Background(), sp, nil, nil)
}

// RunSpecTraced is RunSpec with a telemetry recorder: the run is
// instrumented and its trace written under the spec's canonical key before
// returning. A nil recorder degrades to RunSpec exactly.
func RunSpecTraced(ctx context.Context, sp scenario.Spec, rec *telemetry.Recorder) (SpecResult, error) {
	return runSpecOverride(ctx, sp, nil, rec)
}

// progressSlice is how much simulated time one execution chunk covers. The
// event loop's RunFor is exactly resumable, so chunking changes nothing
// about the result; between chunks the run checks for cancellation and
// heartbeats the runner's watchdog with the simulated time reached, which
// is what lets a stalled simulation be distinguished from a slow one.
const progressSlice = time.Second

// runSpecOverride is RunSpec with constructor substitution for algorithm
// variants outside the registry (see netsim.BuildOverride). The simulation
// executes in progressSlice chunks under ctx: cancellation is observed at
// chunk boundaries and each boundary reports progress (see runner.Progress).
//
// With a recorder, the run is instrumented before it starts and its trace
// is written — atomically, under the spec's canonical key — before this
// function returns, which is what lets the cached path order trace files
// ahead of journal records (see runSpecCachedOverride). Observation never
// mutates simulation state, so a traced run's SpecResult is byte-identical
// to an untraced one. Override runs have no canonical key and are never
// traced.
func runSpecOverride(ctx context.Context, sp scenario.Spec, override map[string]cc.Constructor, rec *telemetry.Recorder) (SpecResult, error) {
	if sp.WithDefaults().Backend == scenario.BackendFluid {
		return runSpecFluid(ctx, sp, override)
	}
	n, flows, err := netsim.BuildOverride(sp, override)
	if err != nil {
		return SpecResult{}, err
	}
	sp = sp.WithDefaults()
	var cap *telemetry.Capture
	traceKey := ""
	if rec != nil && override == nil {
		traceKey = sp.Key()
		cap = rec.Attach(n, sp)
	}
	for done := time.Duration(0); done < sp.Duration; {
		if err := ctx.Err(); err != nil {
			return SpecResult{}, err
		}
		step := progressSlice
		if rem := sp.Duration - done; rem < step {
			step = rem
		}
		n.Run(step)
		done += step
		runner.Progress(ctx, done)
	}
	res := SpecResult{Groups: make([][]netsim.FlowStats, len(flows)), Link: n.Link(), Links: n.PerLink()}
	for gi, fs := range flows {
		for _, f := range fs {
			res.Groups[gi] = append(res.Groups[gi], f.Stats())
		}
	}
	if err := cap.Finish(traceKey); err != nil {
		return SpecResult{}, err
	}
	return res, nil
}

// runSpecFluid executes a spec on the fluid-model backend under the same
// chunked cancellation/heartbeat protocol as the packet path. Two
// deliberate gaps: constructor overrides have no fluid form (the fluid
// equations model registry algorithms, not arbitrary packet-engine
// constructors), and fluid runs are never traced — telemetry instruments
// *netsim.Network event flow, which a fixed-step integration does not
// have. Both the cached and fresh paths land here, so fluid results are
// cached, journaled and audited exactly like packet results, under keys
// that differ by the spec's bk= field.
func runSpecFluid(ctx context.Context, sp scenario.Spec, override map[string]cc.Constructor) (SpecResult, error) {
	if override != nil {
		return SpecResult{}, errors.New("exp: the fluid backend cannot run constructor overrides; use the packet backend for algorithm variants")
	}
	sp = sp.WithDefaults()
	m, err := fluid.New(sp)
	if err != nil {
		return SpecResult{}, err
	}
	for done := time.Duration(0); done < sp.Duration; {
		if err := ctx.Err(); err != nil {
			return SpecResult{}, err
		}
		step := progressSlice
		if rem := sp.Duration - done; rem < step {
			step = rem
		}
		m.Run(step)
		done += step
		runner.Progress(ctx, done)
	}
	groups, link := m.Stats()
	return SpecResult{Groups: groups, Link: link, Links: []netsim.LinkStats{link}}, nil
}

// RunSpecCached is RunSpec behind the memoizing cache, the resumption
// journal and the invariant auditor, keyed by the spec's canonical key. hit
// reports whether the result came from either store; errors are never
// cached or journaled. Cached replays are audited too: a store written by
// an older build should not smuggle a bad result past a strict run.
func RunSpecCached(ctx context.Context, sp scenario.Spec, cache *runner.Cache, journal *runner.Journal, audit *check.Auditor) (SpecResult, bool, error) {
	return runSpecCachedOverride(ctx, sp, nil, true, cache, journal, audit, nil)
}

// RunSpecCachedTraced is RunSpecCached with a telemetry recorder: a fresh
// run's trace is written before its journal record, so any journaled unit's
// trace is already on disk when a resumed sweep skips the unit. Cache and
// journal hits skip re-tracing (the files were written by whichever run
// populated the store; a store warmed before tracing existed has no traces
// for its prior entries). A nil recorder degrades to RunSpecCached exactly.
func RunSpecCachedTraced(ctx context.Context, sp scenario.Spec, cache *runner.Cache, journal *runner.Journal, audit *check.Auditor, rec *telemetry.Recorder) (SpecResult, bool, error) {
	return runSpecCachedOverride(ctx, sp, nil, true, cache, journal, audit, rec)
}

// runSpecCachedOverride threads an uncanonical spec (one whose constructors
// come from an override map, so its key does not identify the run) past the
// cache and journal: it is executed fresh and audited under the empty key.
//
// Store discipline: the cache is consulted first, then the journal (a
// journal hit is promoted into the cache); a fresh result lands in both.
// Either store satisfying a lookup also ensures the journal holds the key,
// so a resumed run skips it even when the cache file was lost. Journal
// write failures fail the unit — a journal that cannot persist must not let
// the operator believe the sweep is resumable — while cache failures stay
// silent as before.
func runSpecCachedOverride(ctx context.Context, sp scenario.Spec, override map[string]cc.Constructor, canonical bool, cache *runner.Cache, journal *runner.Journal, audit *check.Auditor, rec *telemetry.Recorder) (res SpecResult, hit bool, err error) {
	key := ""
	if canonical {
		key = sp.Key()
		if cache.Get(key, &res) {
			auditSpec(audit, key, sp, res)
			if !journal.Has(key) {
				if err := journal.Record(key, res); err != nil {
					return SpecResult{}, false, err
				}
			}
			return res, true, nil
		}
		if journal.Get(key, &res) {
			cache.Put(key, res)
			auditSpec(audit, key, sp, res)
			return res, true, nil
		}
	}
	if !canonical {
		rec = nil // an override run has no canonical identity to trace under
	}
	res, err = runSpecOverride(ctx, sp, override, rec)
	if err != nil {
		return SpecResult{}, false, err
	}
	if canonical {
		cache.Put(key, res)
		if err := journal.Record(key, res); err != nil {
			return SpecResult{}, false, err
		}
	}
	auditSpec(audit, key, sp, res)
	return res, false, nil
}

// specOf resolves the X constructor to a registry name. Constructors
// outside the registry (test closures, option-wrapped variants) have no
// canonical name: they run under the placeholder name "custom" with an
// override map, and the scenario is uncacheable.
func specOf(x cc.Constructor) (name string, override map[string]cc.Constructor, canonical bool) {
	if x == nil {
		return "bbr", nil, true // RunMix's default
	}
	if n, ok := cc.NameOf(x); ok {
		return n, nil, true
	}
	return "custom", map[string]cc.Constructor{"custom": x}, false
}

// spec compiles the mix down to its scenario: group 0 is the X class,
// group 1 the CUBIC class, both at the shared RTT, with the experiment
// protocol's jitter parameters. canonical is false when X has no registry
// name (the spec then carries an override and must not be cached).
func (cfg MixConfig) spec() (sp scenario.Spec, override map[string]cc.Constructor, canonical bool) {
	name, override, canonical := specOf(cfg.X)
	sp = scenario.Spec{
		Capacity:    cfg.Capacity,
		Buffer:      cfg.Buffer,
		AckJitter:   scenario.DefaultAckJitter,
		StartJitter: scenario.DefaultStartJitter,
		Duration:    cfg.Duration,
		Seed:        cfg.Seed,
		Backend:     cfg.Backend,
		Groups: []scenario.Group{
			{Algorithm: name, Count: cfg.NumX, RTT: cfg.RTT},
			{Algorithm: "cubic", Count: cfg.NumCubic, RTT: cfg.RTT},
		},
	}
	return sp, override, canonical
}

// key is the mix's canonical cache key, or "" when the scenario cannot be
// canonically identified (non-registry X).
func (cfg MixConfig) key() string {
	sp, _, canonical := cfg.spec()
	if !canonical {
		return ""
	}
	return sp.Key()
}

// mixView projects a spec result back into the mix's class view: group 0
// is X, group 1 is CUBIC.
func mixView(res SpecResult) MixResult {
	out := MixResult{
		XStats:         res.group(0),
		CubicStats:     res.group(1),
		Utilization:    res.Link.Utilization,
		MeanQueueDelay: res.Link.MeanQueueDelay,
	}
	out.AggX = aggRate(out.XStats)
	out.AggCubic = aggRate(out.CubicStats)
	if n := len(out.XStats); n > 0 {
		out.PerFlowX = out.AggX / units.Rate(n)
	}
	if n := len(out.CubicStats); n > 0 {
		out.PerFlowCubic = out.AggCubic / units.Rate(n)
	}
	return out
}

// spec compiles the multi-RTT run down to its scenario: RTT group g
// becomes spec groups 2g (X class) and 2g+1 (CUBIC class). Both classes are
// always present — zero-count groups are legal — so every profile of one
// search shares a single key shape, and the X-before-CUBIC order within
// each RTT group pins the per-flow jitter assignment.
func (cfg GroupConfig) spec() (sp scenario.Spec, override map[string]cc.Constructor, canonical bool, err error) {
	if len(cfg.RTTs) == 0 || len(cfg.RTTs) != len(cfg.Sizes) || len(cfg.RTTs) != len(cfg.NumX) {
		return sp, nil, false, errors.New("exp: RTTs, Sizes and NumX must be equal-length and non-empty")
	}
	name, override, canonical := specOf(cfg.X)
	groups := make([]scenario.Group, 0, 2*len(cfg.RTTs))
	for g := range cfg.RTTs {
		if cfg.NumX[g] < 0 || cfg.NumX[g] > cfg.Sizes[g] {
			return sp, nil, false, fmt.Errorf("exp: group %d has NumX %d of %d", g, cfg.NumX[g], cfg.Sizes[g])
		}
		groups = append(groups,
			scenario.Group{Algorithm: name, Count: cfg.NumX[g], RTT: cfg.RTTs[g]},
			scenario.Group{Algorithm: "cubic", Count: cfg.Sizes[g] - cfg.NumX[g], RTT: cfg.RTTs[g]},
		)
	}
	sp = scenario.Spec{
		Capacity:    cfg.Capacity,
		Buffer:      cfg.Buffer,
		AckJitter:   scenario.DefaultAckJitter,
		StartJitter: scenario.DefaultStartJitter,
		Duration:    cfg.Duration,
		Seed:        cfg.Seed,
		Backend:     cfg.Backend,
		Groups:      groups,
	}
	return sp, override, canonical, nil
}

// key is the group run's canonical cache key, or "" when the config is
// invalid or carries a non-registry X.
func (cfg GroupConfig) key() string {
	sp, _, canonical, err := cfg.spec()
	if err != nil || !canonical {
		return ""
	}
	return sp.Key()
}

// groupView projects a spec result back into per-RTT-group class averages:
// spec groups 2g and 2g+1 are RTT group g's X and CUBIC classes.
func groupView(ngroups int, res SpecResult) GroupResult {
	out := GroupResult{
		PerFlowX:     make([]units.Rate, ngroups),
		PerFlowCubic: make([]units.Rate, ngroups),
	}
	for g := 0; g < ngroups; g++ {
		if xs := res.group(2 * g); len(xs) > 0 {
			out.PerFlowX[g] = aggRate(xs) / units.Rate(len(xs))
		}
		if cs := res.group(2*g + 1); len(cs) > 0 {
			out.PerFlowCubic[g] = aggRate(cs) / units.Rate(len(cs))
		}
	}
	return out
}
