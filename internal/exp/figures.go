package exp

import (
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/cc/bbrv2"
	"bbrnash/internal/core"
	"bbrnash/internal/numeric"
	"bbrnash/internal/plot"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// Figure is one reproducible artifact from the paper's evaluation.
type Figure struct {
	// ID matches the paper's numbering ("1", "3a", ..., "12").
	ID string
	// Title describes the experiment.
	Title string
	// Generate runs the experiment at the given scale.
	Generate func(Scale) (*FigureResult, error)
}

// FigureResult is a generated figure: one or more charts plus notes
// summarizing the headline comparison for EXPERIMENTS.md.
type FigureResult struct {
	ID     string
	Title  string
	Charts []*plot.Chart
	Notes  []string
}

// Figures returns the full registry in paper order.
func Figures() []Figure {
	var figs []Figure
	add := func(id, title string, gen func(Scale) (*FigureResult, error)) {
		figs = append(figs, Figure{ID: id, Title: title, Generate: gen})
	}

	add("1", "Ware et al. prediction vs BBR's actual share (50 Mbps, 40 ms)", Fig1)

	for _, v := range []struct {
		id  string
		cap units.Rate
		rtt time.Duration
	}{
		{"3a", 50 * units.Mbps, 40 * time.Millisecond},
		{"3b", 50 * units.Mbps, 80 * time.Millisecond},
		{"3c", 100 * units.Mbps, 40 * time.Millisecond},
		{"3d", 100 * units.Mbps, 80 * time.Millisecond},
	} {
		v := v
		add(v.id, fmt.Sprintf("2-flow model validation (%v, %v)", v.cap, v.rtt),
			func(s Scale) (*FigureResult, error) { return Fig3(s, v.id, v.cap, v.rtt) })
	}

	for _, v := range []struct {
		id    string
		nEach int
	}{{"4a", 5}, {"4b", 10}} {
		v := v
		add(v.id, fmt.Sprintf("multi-flow model validation (%dv%d, 100 Mbps, 40 ms)", v.nEach, v.nEach),
			func(s Scale) (*FigureResult, error) { return Fig4(s, v.id, v.nEach) })
	}

	for _, v := range []struct {
		id     string
		n      int
		bufBDP float64
	}{{"5a", 10, 3}, {"5b", 20, 3}, {"5c", 10, 10}, {"5d", 20, 10}} {
		v := v
		add(v.id, fmt.Sprintf("diminishing returns (%d flows, %g BDP buffer)", v.n, v.bufBDP),
			func(s Scale) (*FigureResult, error) { return Fig5(s, v.id, v.n, v.bufBDP) })
	}

	add("6", "Nash Equilibrium construction (model per-flow BBR bandwidth vs fair share)", Fig6)
	add("7", "disproportionate share for BBR/BBRv2/Copa/Vivace vs CUBIC (10 flows, 2 BDP)", Fig7)
	add("8", "throughput and queueing delay vs distribution (10 flows, 2 BDP)", Fig8)

	for _, v := range []struct {
		id  string
		cap units.Rate
		rtt time.Duration
	}{
		{"9a", 50 * units.Mbps, 20 * time.Millisecond},
		{"9b", 50 * units.Mbps, 40 * time.Millisecond},
		{"9c", 50 * units.Mbps, 80 * time.Millisecond},
		{"9d", 100 * units.Mbps, 20 * time.Millisecond},
		{"9e", 100 * units.Mbps, 40 * time.Millisecond},
		{"9f", 100 * units.Mbps, 80 * time.Millisecond},
	} {
		v := v
		add(v.id, fmt.Sprintf("predicted vs observed NE, 50 flows (%v, %v)", v.cap, v.rtt),
			func(s Scale) (*FigureResult, error) { return Fig9(s, v.id, v.cap, v.rtt, nil, "bbr") })
	}

	add("10", "NE with mixed RTTs (30 flows: 10/30/50 ms)", Fig10)

	for _, v := range []struct {
		id  string
		cap units.Rate
	}{{"11a", 50 * units.Mbps}, {"11b", 100 * units.Mbps}} {
		v := v
		add(v.id, fmt.Sprintf("NE for BBRv2, 50 flows (%v)", v.cap),
			func(s Scale) (*FigureResult, error) { return Fig11(s, v.id, v.cap) })
	}

	add("12", "ultra-deep buffers: model validity limit (1-250 BDP)", Fig12)
	return figs
}

// FigureByID finds a figure.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("exp: unknown figure %q", id)
}

// Fig1 reproduces Figure 1: Ware et al.'s prediction against BBR's actual
// bandwidth share for one CUBIC vs one BBR flow at 50 Mbps / 40 ms, buffer
// 1-50 BDP.
func Fig1(s Scale) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 50 * units.Mbps
	grid := s.thin(numeric.Arange(1, 50, 2))

	sims, err := s.Sweep(1, len(grid), func(i int) scenario.Spec {
		return scenario.Mix("bbr", 1, 1, capacity,
			units.BufferBytes(capacity, rtt, grid[i]), rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var ware, actual []float64
	for i, bdp := range grid {
		buf := units.BufferBytes(capacity, rtt, bdp)
		wp, err := core.PredictWare(core.WareScenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumBBR: 1, Duration: s.FlowDuration,
		})
		if err != nil {
			return nil, err
		}
		ware = append(ware, wp.AggBBR.Mbit())
		actual = append(actual, sims[i].Agg[0].Mbit())
	}
	chart := &plot.Chart{Title: "Fig 1: BBR bandwidth share, 50 Mbps / 40 ms", XLabel: "buffer (BDP)", YLabel: "bandwidth (Mbps)"}
	chart.Add("ware", grid, ware)
	chart.Add("actual", grid, actual)
	return &FigureResult{
		ID: "1", Title: "Ware et al. vs actual", Charts: []*plot.Chart{chart},
		Notes: []string{
			fmt.Sprintf("mean |ware-actual| error %.0f%% (paper: at least 30%% in shallow buffers)",
				100*meanRelErr(ware, actual)),
		},
	}, nil
}

// Fig3 reproduces Figure 3: the 2-flow model against Ware et al. and the
// simulator across buffer sizes 1-30 BDP.
func Fig3(s Scale, id string, capacity units.Rate, rtt time.Duration) (*FigureResult, error) {
	grid := s.thin(numeric.Arange(1, 30, 0.5))

	sims, err := s.Sweep(3, len(grid), func(i int) scenario.Spec {
		return scenario.Mix("bbr", 1, 1, capacity,
			units.BufferBytes(capacity, rtt, grid[i]), rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var ours, ware, actual []float64
	for i, bdp := range grid {
		buf := units.BufferBytes(capacity, rtt, bdp)
		p, err := core.Predict(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: 1, NumBBR: 1,
		}, core.Synchronized)
		if err != nil {
			return nil, err
		}
		ours = append(ours, p.AggBBR.Mbit())
		wp, err := core.PredictWare(core.WareScenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumBBR: 1, Duration: s.FlowDuration,
		})
		if err != nil {
			return nil, err
		}
		ware = append(ware, wp.AggBBR.Mbit())
		actual = append(actual, sims[i].Agg[0].Mbit())
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig %s: BBR share, %v / %v", id, capacity, rtt),
		XLabel: "buffer (BDP)", YLabel: "bandwidth (Mbps)",
	}
	chart.Add("ware", grid, ware)
	chart.Add("actual", grid, actual)
	chart.Add("our model", grid, ours)
	return &FigureResult{
		ID: id, Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{
			fmt.Sprintf("our model mean error %.0f%%, ware mean error %.0f%% (paper: ~5%% vs >30%%)",
				100*meanRelErr(ours, actual), 100*meanRelErr(ware, actual)),
		},
	}, nil
}

// Fig4 reproduces Figure 4: the multi-flow model's confidence interval
// (sync and de-sync bounds) against measured per-flow BBR throughput for
// nEach vs nEach flows at 100 Mbps / 40 ms.
func Fig4(s Scale, id string, nEach int) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	grid := s.thin(numeric.Arange(1, 30, 1))

	sims, err := s.Sweep(4, len(grid), func(i int) scenario.Spec {
		return scenario.Mix("bbr", nEach, nEach, capacity,
			units.BufferBytes(capacity, rtt, grid[i]), rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var syncB, desyncB, ware, actual []float64
	for i, bdp := range grid {
		buf := units.BufferBytes(capacity, rtt, bdp)
		iv, err := core.PredictInterval(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: nEach, NumBBR: nEach,
		})
		if err != nil {
			return nil, err
		}
		syncB = append(syncB, iv.Sync.PerBBR.Mbit())
		desyncB = append(desyncB, iv.Desync.PerBBR.Mbit())
		wp, err := core.PredictWare(core.WareScenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumBBR: nEach, Duration: s.FlowDuration,
		})
		if err != nil {
			return nil, err
		}
		ware = append(ware, wp.AggBBR.Mbit()/float64(nEach))
		actual = append(actual, sims[i].PerFlow[0].Mbit())
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig %s: %dv%d per-flow BBR bandwidth", id, nEach, nEach),
		XLabel: "buffer (BDP)", YLabel: "avg per-flow bandwidth (Mbps)",
	}
	chart.Add("ware", grid, ware)
	chart.Add("sync bound", grid, syncB)
	chart.Add("desync bound", grid, desyncB)
	chart.Add("actual", grid, actual)
	inBand := 0
	for i := range actual {
		lo, hi := syncB[i], desyncB[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if actual[i] >= lo*0.95 && actual[i] <= hi*1.05 {
			inBand++
		}
	}
	return &FigureResult{
		ID: id, Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{fmt.Sprintf("%d/%d measured points inside the predicted region (±5%%)", inBand, len(actual))},
	}, nil
}

// Fig5 reproduces Figure 5: per-flow BBR bandwidth as the number of BBR
// flows grows, against both model bounds (diminishing returns).
func Fig5(s Scale, id string, n int, bufBDP float64) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	buf := units.BufferBytes(capacity, rtt, bufBDP)

	var grid []float64
	for nb := 1; nb <= n; nb++ {
		grid = append(grid, float64(nb))
	}
	grid = s.thin(grid)

	sims, err := s.Sweep(5, len(grid), func(i int) scenario.Spec {
		nb := int(grid[i])
		return scenario.Mix("bbr", nb, n-nb, capacity, buf, rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var syncB, desyncB, actual []float64
	for i, g := range grid {
		nb := int(g)
		iv, err := core.PredictInterval(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: n - nb, NumBBR: nb,
		})
		if err != nil {
			return nil, err
		}
		syncB = append(syncB, iv.Sync.PerBBR.Mbit())
		desyncB = append(desyncB, iv.Desync.PerBBR.Mbit())
		actual = append(actual, sims[i].PerFlow[0].Mbit())
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig %s: diminishing returns, %d flows, %g BDP", id, n, bufBDP),
		XLabel: "# of BBR flows", YLabel: "avg per-flow bandwidth (Mbps)",
	}
	chart.Add("sync bound", grid, syncB)
	chart.Add("desync bound", grid, desyncB)
	chart.Add("actual", grid, actual)
	// The headline is the diminishing-returns trend; individual trials
	// jitter, so report the overall decline and any local inversions.
	inversions := 0
	for i := 1; i < len(actual); i++ {
		if actual[i] > actual[i-1]*1.02 {
			inversions++
		}
	}
	first, last := actual[0], actual[len(actual)-1]
	return &FigureResult{
		ID: id, Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{fmt.Sprintf(
			"per-flow BBR bandwidth declines %.1f -> %.1f Mbps as BBR flows go %d -> %d (%d local inversions; paper: monotone decline)",
			first, last, int(grid[0]), int(grid[len(grid)-1]), inversions)},
	}, nil
}

// Fig6 reproduces the Figure 6 construction from the model: per-flow BBR
// bandwidth against the number of BBR flows with the fair-share line; the
// crossing is the Nash Equilibrium.
func Fig6(s Scale) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	const n = 10
	buf := units.BufferBytes(capacity, rtt, 3)

	var grid, perBBR, fair []float64
	for nb := 1; nb <= n; nb++ {
		p, err := core.Predict(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: n - nb, NumBBR: nb,
		}, core.Synchronized)
		if err != nil {
			return nil, err
		}
		grid = append(grid, float64(nb))
		perBBR = append(perBBR, p.PerBBR.Mbit())
		fair = append(fair, capacity.Mbit()/n)
	}
	pt, err := core.PredictNash(core.NashScenario{Capacity: capacity, Buffer: buf, RTT: rtt, N: n}, core.Synchronized)
	if err != nil {
		return nil, err
	}
	chart := &plot.Chart{
		Title:  "Fig 6: NE where per-flow BBR bandwidth crosses fair share",
		XLabel: "# of BBR flows", YLabel: "per-flow bandwidth (Mbps)",
	}
	chart.Add("BBR per-flow (model)", grid, perBBR)
	chart.Add("fair share", grid, fair)
	return &FigureResult{
		ID: "6", Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{fmt.Sprintf("model NE at N_b = %.1f of %d flows (3 BDP buffer)", pt.BBRFlows, n)},
	}, nil
}

// Fig7 reproduces Figure 7: average per-flow throughput of algorithm X
// versus the number of X flows (out of 10) for X in {Vivace, BBR, BBRv2,
// Copa}, at 100 Mbps with a 2 BDP buffer.
func Fig7(s Scale) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	const n = 10
	buf := units.BufferBytes(capacity, rtt, 2)

	var grid []float64
	for nx := 1; nx <= n; nx++ {
		grid = append(grid, float64(nx))
	}
	grid = s.thin(grid)

	chart := &plot.Chart{
		Title:  "Fig 7: avg per-flow bandwidth vs # of non-CUBIC flows (2 BDP)",
		XLabel: "# of non-CUBIC flows", YLabel: "avg per-flow bandwidth (Mbps)",
	}
	fair := make([]float64, len(grid))
	for i := range fair {
		fair[i] = capacity.Mbit() / n
	}
	chart.Add("fair-share", grid, fair)

	notes := []string{}
	for _, name := range []string{"vivace", "bbr", "bbrv2", "copa"} {
		name := name
		sims, err := s.Sweep(7, len(grid), func(i int) scenario.Spec {
			nx := int(grid[i])
			return scenario.Mix(name, nx, n-nx, capacity, buf, rtt, s.FlowDuration)
		})
		if err != nil {
			return nil, err
		}
		var ys []float64
		for i := range grid {
			ys = append(ys, sims[i].PerFlow[0].Mbit())
		}
		chart.Add(name, grid, ys)
		notes = append(notes, fmt.Sprintf("%s at 1 flow: %.1f Mbps vs fair %.1f (disproportionate: %v)",
			name, ys[0], capacity.Mbit()/n, ys[0] > capacity.Mbit()/n))
	}
	return &FigureResult{ID: "7", Title: chart.Title, Charts: []*plot.Chart{chart}, Notes: notes}, nil
}

// Fig8 reproduces Figure 8: (a) average per-flow throughput of CUBIC and
// BBR and (b) shared average queueing delay, as the distribution varies.
func Fig8(s Scale) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	const n = 10
	buf := units.BufferBytes(capacity, rtt, 2)

	var grid []float64
	for nb := 0; nb <= n; nb++ {
		grid = append(grid, float64(nb))
	}
	grid = s.thin(grid)

	sims, err := s.Sweep(8, len(grid), func(i int) scenario.Spec {
		nb := int(grid[i])
		return scenario.Mix("bbr", nb, n-nb, capacity, buf, rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var cubicY, bbrY, delayY []float64
	var gx []float64
	for i, g := range grid {
		gx = append(gx, g)
		cubicY = append(cubicY, sims[i].PerFlow[1].Mbit())
		bbrY = append(bbrY, sims[i].PerFlow[0].Mbit())
		delayY = append(delayY, float64(sims[i].MeanQueueDelay.Milliseconds()))
	}
	tputChart := &plot.Chart{
		Title:  "Fig 8a: avg per-flow throughput vs distribution",
		XLabel: "# of non-CUBIC (BBR) flows", YLabel: "avg per-flow bandwidth (Mbps)",
	}
	tputChart.Add("cubic", gx, cubicY)
	tputChart.Add("bbr", gx, bbrY)
	delayChart := &plot.Chart{
		Title:  "Fig 8b: avg queueing delay vs distribution",
		XLabel: "# of non-CUBIC (BBR) flows", YLabel: "queueing delay (ms)",
	}
	delayChart.Add("queueing delay", gx, delayY)

	// The §4.3 argument: delay barely moves until every flow is BBR,
	// while the throughput gap is large — so throughput drives switching.
	spread := 0.0
	for i := range bbrY {
		if d := bbrY[i] - cubicY[i]; d > spread {
			spread = d
		}
	}
	return &FigureResult{
		ID: "8", Title: "Fig 8: throughput vs delay asymmetry",
		Charts: []*plot.Chart{tputChart, delayChart},
		Notes: []string{
			fmt.Sprintf("max per-flow throughput gap %.1f Mbps; delay at all-BBR %.1f ms vs mixed %.1f ms",
				spread, delayY[len(delayY)-1], delayY[0]),
		},
	}, nil
}

// Fig9 reproduces Figure 9: the model's predicted NE region against
// empirically found NE distributions, for 50 flows across buffer sizes.
// extraBuf overrides the default sweep grid; algName labels the X class.
func Fig9(s Scale, id string, capacity units.Rate, rtt time.Duration, bufGrid []float64, algName string) (*FigureResult, error) {
	const n = 50
	grid := bufGrid
	if grid == nil {
		grid = s.thin([]float64{0.5, 1, 2, 3, 5, 8, 12, 16, 22, 30, 40, 50})
	}
	ctor, err := cc.AlgorithmByName(algName)
	if err != nil {
		return nil, err
	}

	var syncY, desyncY []float64
	var neX, neY []float64
	for _, bdp := range grid {
		buf := units.BufferBytes(capacity, rtt, bdp)
		region, err := core.PredictNashRegion(core.NashScenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
		})
		if err != nil {
			return nil, err
		}
		syncY = append(syncY, region.Sync.CubicFlows)
		desyncY = append(desyncY, region.Desync.CubicFlows)
		for trial := 0; trial < s.Trials; trial++ {
			res, err := FindNE(NESearchConfig{
				Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
				Duration: s.FlowDuration, Seed: uint64(trial+1) * 1e6,
				X: ctor, Exhaustive: s.Exhaustive,
				Pool: s.Pool, Cache: s.Cache,
			})
			if err != nil {
				return nil, err
			}
			for _, k := range res.EquilibriaX {
				neX = append(neX, bdp)
				neY = append(neY, float64(n-k))
			}
		}
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig %s: NE region, 50 flows, %v / %v (%s)", id, capacity, rtt, algName),
		XLabel: "buffer (BDP)", YLabel: "# CUBIC flows at NE",
	}
	chart.Add("sync bound", grid, syncY)
	chart.Add("desync bound", grid, desyncY)
	chart.Add("observed NE", neX, neY)

	inRegion, total := 0, 0
	for i := range neX {
		lo, hi := regionAt(grid, desyncY, neX[i]), regionAt(grid, syncY, neX[i])
		if lo > hi {
			lo, hi = hi, lo
		}
		total++
		if neY[i] >= lo-3 && neY[i] <= hi+3 {
			inRegion++
		}
	}
	return &FigureResult{
		ID: id, Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{fmt.Sprintf("%d/%d observed NE inside predicted region (±3 flows)", inRegion, total)},
	}, nil
}

// regionAt linearly interpolates a bound curve at x.
func regionAt(xs, ys []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			f := (x - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + f*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// Fig10 reproduces Figure 10: NE distributions for 30 flows in three
// same-RTT groups (10, 30, 50 ms) sharing a 100 Mbps bottleneck. Buffer
// sizes are multiples of the shortest-RTT flow's BDP, as in the paper.
func Fig10(s Scale) (*FigureResult, error) {
	capacity := 100 * units.Mbps
	rtts := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	sizes := []int{10, 10, 10}
	grid := s.thin([]float64{2, 5, 10, 20, 35, 50})

	var neX, neY []float64
	shortRTTCubicBias := 0
	totalNE := 0
	for _, bdp := range grid {
		buf := units.BufferBytes(capacity, rtts[0], bdp)
		for trial := 0; trial < s.Trials; trial++ {
			res, err := FindGroupNE(GroupNEConfig{
				Capacity: capacity, Buffer: buf, RTTs: rtts, Sizes: sizes,
				Duration: s.FlowDuration, Seed: uint64(trial+1) * 31337,
				Exhaustive: false,
				Pool:       s.Pool, Cache: s.Cache,
			})
			if err != nil {
				return nil, err
			}
			for _, k := range res.Equilibria {
				numCubic := 30 - (k[0] + k[1] + k[2])
				neX = append(neX, bdp)
				neY = append(neY, float64(numCubic))
				totalNE++
				// The paper's observation: CUBIC slots fill short-RTT
				// groups first (k counts X flows, so CUBIC count per
				// group is size − k).
				if sizes[0]-k[0] >= sizes[2]-k[2] {
					shortRTTCubicBias++
				}
			}
		}
	}
	chart := &plot.Chart{
		Title:  "Fig 10: NE with mixed RTTs (10/30/50 ms)",
		XLabel: "buffer (BDP of 10 ms flow)", YLabel: "# CUBIC flows at NE",
	}
	chart.Add("observed NE", neX, neY)
	return &FigureResult{
		ID: "10", Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{
			fmt.Sprintf("found %d NE profiles; short-RTT group had >= as many CUBIC flows as long-RTT in %d/%d",
				totalNE, shortRTTCubicBias, totalNE),
		},
	}, nil
}

// Fig11 reproduces Figure 11: empirical NE for CUBIC vs BBRv2 compared to
// the region the model predicts for BBR, at three RTTs per link speed.
func Fig11(s Scale, id string, capacity units.Rate) (*FigureResult, error) {
	const n = 50
	grid := s.thin([]float64{0.5, 1, 2, 3, 5, 8, 12, 16, 22, 30, 40, 50})
	rtts := []time.Duration{20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}

	// Model region for BBR (the comparison the paper plots).
	var syncY, desyncY []float64
	for _, bdp := range grid {
		buf := units.BufferBytes(capacity, 40*time.Millisecond, bdp)
		region, err := core.PredictNashRegion(core.NashScenario{
			Capacity: capacity, Buffer: buf, RTT: 40 * time.Millisecond, N: n,
		})
		if err != nil {
			return nil, err
		}
		syncY = append(syncY, region.Sync.CubicFlows)
		desyncY = append(desyncY, region.Desync.CubicFlows)
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig %s: BBRv2 NE vs BBR-predicted region (%v)", id, capacity),
		XLabel: "buffer (BDP)", YLabel: "# CUBIC flows at NE",
	}
	chart.Add("bbr sync bound", grid, syncY)
	chart.Add("bbr desync bound", grid, desyncY)

	rttGrid := rtts
	if s.SweepPoints > 0 && s.SweepPoints < 3 {
		rttGrid = rtts[:1]
	}
	// Two observations from §4.6: BBRv2 equilibria are never below the
	// BBR-predicted region (the BBR model "works well for BBRv2 when the
	// RTT is relatively small"), and in deeper buffers they have strictly
	// more CUBIC flows than the BBR prediction.
	inOrAbove, total := 0, 0
	deepMoreCubic, deepTotal := 0, 0
	deepest := grid[len(grid)-1]
	for _, rtt := range rttGrid {
		var xs, ys []float64
		for _, bdp := range grid {
			buf := units.BufferBytes(capacity, rtt, bdp)
			for trial := 0; trial < s.Trials; trial++ {
				res, err := FindNE(NESearchConfig{
					Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
					Duration: s.FlowDuration, Seed: uint64(trial+1) * 424243,
					X: bbrv2.New, Exhaustive: s.Exhaustive,
					Pool: s.Pool, Cache: s.Cache,
				})
				if err != nil {
					return nil, err
				}
				for _, k := range res.EquilibriaX {
					cubicAtNE := float64(n - k)
					xs = append(xs, bdp)
					ys = append(ys, cubicAtNE)
					total++
					if cubicAtNE >= regionAt(grid, desyncY, bdp)-3 {
						inOrAbove++
					}
					if bdp == deepest {
						deepTotal++
						if cubicAtNE > regionAt(grid, syncY, bdp) {
							deepMoreCubic++
						}
					}
				}
			}
		}
		chart.Add(fmt.Sprintf("%v RTT", rtt), xs, ys)
	}
	return &FigureResult{
		ID: id, Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{
			fmt.Sprintf("%d/%d BBRv2 NE inside or above the BBR-predicted region (±3)", inOrAbove, total),
			fmt.Sprintf("%d/%d at the deepest buffer strictly above the BBR sync bound (paper: v2 NEs have more CUBIC flows)",
				deepMoreCubic, deepTotal),
		},
	}, nil
}

// Fig12 reproduces Figure 12: model vs actual in ultra-deep buffers
// (1-250 BDP), where BBR stops being cwnd-limited and the model
// over-estimates.
func Fig12(s Scale) (*FigureResult, error) {
	const rtt = 40 * time.Millisecond
	capacity := 50 * units.Mbps
	grid := s.thin([]float64{1, 5, 10, 20, 40, 60, 80, 100, 130, 160, 200, 250})

	sims, err := s.Sweep(12, len(grid), func(i int) scenario.Spec {
		return scenario.Mix("bbr", 1, 1, capacity,
			units.BufferBytes(capacity, rtt, grid[i]), rtt, s.FlowDuration)
	})
	if err != nil {
		return nil, err
	}
	var ours, ware, actual []float64
	for i, bdp := range grid {
		buf := units.BufferBytes(capacity, rtt, bdp)
		p, err := core.Predict(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: 1, NumBBR: 1,
		}, core.Synchronized)
		if err != nil {
			return nil, err
		}
		ours = append(ours, p.AggBBR.Mbit())
		wp, err := core.PredictWare(core.WareScenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumBBR: 1, Duration: s.FlowDuration,
		})
		if err != nil {
			return nil, err
		}
		ware = append(ware, wp.AggBBR.Mbit())
		actual = append(actual, sims[i].Agg[0].Mbit())
	}
	chart := &plot.Chart{
		Title:  "Fig 12: ultra-deep buffers (model over-estimates beyond ~100 BDP)",
		XLabel: "buffer (BDP)", YLabel: "bandwidth (Mbps)",
	}
	chart.Add("ware", grid, ware)
	chart.Add("actual", grid, actual)
	chart.Add("our model", grid, ours)

	over := 0
	deepPoints := 0
	for i, bdp := range grid {
		if bdp >= 100 {
			deepPoints++
			if ours[i] > actual[i] {
				over++
			}
		}
	}
	return &FigureResult{
		ID: "12", Title: chart.Title, Charts: []*plot.Chart{chart},
		Notes: []string{fmt.Sprintf("model over-estimates at %d/%d points beyond 100 BDP (paper: always)", over, deepPoints)},
	}, nil
}

// meanRelErr is the mean relative error of got against want, skipping
// zero references.
func meanRelErr(got, want []float64) float64 {
	sum, n := 0.0, 0
	for i := range got {
		if want[i] == 0 {
			continue
		}
		sum += numeric.RelErr(got[i], want[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
