package exp

// Link the full built-in algorithm registry: any program that can run an
// experiment can run every algorithm a scenario may name. The underscore
// imports live here rather than in internal/scenario because the
// algorithm packages' own tests import netsim, which imports scenario —
// linking the registry there would be an import cycle in test binaries.
import (
	_ "bbrnash/internal/cc/bbr"
	_ "bbrnash/internal/cc/bbrv2"
	_ "bbrnash/internal/cc/copa"
	_ "bbrnash/internal/cc/cubic"
	_ "bbrnash/internal/cc/reno"
	_ "bbrnash/internal/cc/vivace"
)
