package exp

import (
	"sort"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/core"
	"bbrnash/internal/game"
	"bbrnash/internal/units"
)

// NESearchConfig describes one empirical Nash-Equilibrium search (§4.4
// methodology): N same-RTT flows each running CUBIC or X, a payoff table
// built from simulations, and equilibrium enumeration over the N+1
// distributions.
type NESearchConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTT      time.Duration
	N        int
	Duration time.Duration
	Seed     uint64
	// X is the non-CUBIC algorithm (defaults to BBR).
	X cc.Constructor
	// EpsFraction widens the equilibrium condition: a switch only counts
	// as an incentive if it gains more than EpsFraction of the fair share
	// (defaults to 5%). The paper observes that near the NE the gains are
	// marginal, which is exactly why multiple NE appear across trials.
	EpsFraction float64
	// Exhaustive scans all N+1 distributions; otherwise the search walks
	// switching incentives from a model-predicted starting distribution
	// and then checks that point's neighbourhood. The walk evaluates far
	// fewer distributions (each evaluation is one simulation).
	Exhaustive bool
}

// NESearchResult is the outcome of one trial's search.
type NESearchResult struct {
	// EquilibriaX lists equilibrium distributions as numbers of X flows.
	EquilibriaX []int
	// Simulations counts simulator runs spent.
	Simulations int
}

// FindNE runs the empirical search for one trial (one jitter seed).
func FindNE(cfg NESearchConfig) (NESearchResult, error) {
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	sims := 0
	dur := nePayoffDuration(cfg.Duration)
	payoff := func(numX int) (x, c units.Rate) {
		res, err := RunMix(MixConfig{
			Capacity: cfg.Capacity,
			Buffer:   cfg.Buffer,
			RTT:      cfg.RTT,
			Duration: dur,
			Seed:     cfg.Seed + uint64(numX)*7919,
			X:        cfg.X,
			NumX:     numX,
			NumCubic: cfg.N - numX,
		})
		if err != nil {
			return 0, 0
		}
		sims++
		return res.PerFlowX, res.PerFlowCubic
	}
	// Each distribution is one simulation that yields both classes'
	// payoffs; cache jointly.
	type pair struct{ x, c units.Rate }
	cache := map[int]pair{}
	eval := func(numX int) pair {
		if p, ok := cache[numX]; ok {
			return p
		}
		x, c := payoff(numX)
		p := pair{x, c}
		cache[numX] = p
		return p
	}
	g := &game.SymmetricBinary{
		N:           cfg.N,
		PayoffX:     func(k int) float64 { return float64(eval(k).x) },
		PayoffCubic: func(k int) float64 { return float64(eval(k).c) },
	}
	eps := game.Epsilon(float64(cfg.Capacity), cfg.N, cfg.EpsFraction)

	if cfg.Exhaustive {
		ks, err := g.Equilibria(eps)
		if err != nil {
			return NESearchResult{}, err
		}
		return NESearchResult{EquilibriaX: ks, Simulations: sims}, nil
	}

	// Walk from the model's predicted equilibrium, then report every
	// equilibrium in the landing zone's neighbourhood.
	start := cfg.N / 2
	if pt, err := core.PredictNash(core.NashScenario{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer, RTT: cfg.RTT, N: cfg.N,
	}, core.Synchronized); err == nil {
		start = int(pt.BBRFlows + 0.5)
	}
	k, _ := g.FirstEquilibrium(start, eps, 3*cfg.N)
	var ks []int
	for cand := k - 2; cand <= k+2; cand++ {
		if cand < 0 || cand > cfg.N {
			continue
		}
		if g.IsEquilibrium(cand, eps) {
			ks = append(ks, cand)
		}
	}
	return NESearchResult{EquilibriaX: ks, Simulations: sims}, nil
}

// nePayoffDuration enforces the paper's two-minute protocol on equilibrium
// payoff measurements. Equilibrium positions are set by BBR's converged
// share, and BBR's RTT+ mechanism converges over multiples of its ten-second
// ProbeRTT cycle, so shorter runs systematically understate BBR and push the
// observed equilibrium toward CUBIC at every buffer depth.
func nePayoffDuration(base time.Duration) time.Duration {
	if base > 2*time.Minute {
		return base
	}
	return 2 * time.Minute
}

// GroupNEConfig describes the §4.5 multi-RTT equilibrium search.
type GroupNEConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTTs     []time.Duration
	Sizes    []int
	Duration time.Duration
	Seed     uint64
	X        cc.Constructor
	// EpsFraction as in NESearchConfig.
	EpsFraction float64
	// Exhaustive enumerates the whole Π(Size+1) profile space; otherwise
	// a greedy incentive walk is used.
	Exhaustive bool
}

// GroupNEResult is the outcome of a multi-RTT search.
type GroupNEResult struct {
	// Equilibria are profiles: Equilibria[j][i] X flows in group i.
	Equilibria [][]int
	// Simulations counts simulator runs spent.
	Simulations int
}

// FindGroupNE runs the multi-RTT equilibrium search for one trial.
func FindGroupNE(cfg GroupNEConfig) (GroupNEResult, error) {
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	sims := 0
	type pair struct {
		x, c []units.Rate
	}
	cache := map[string]pair{}
	keyOf := func(k []int) string {
		b := make([]byte, len(k))
		for i, v := range k {
			b[i] = byte(v)
		}
		return string(b)
	}
	eval := func(k []int) pair {
		key := keyOf(k)
		if p, ok := cache[key]; ok {
			return p
		}
		res, err := RunGroups(GroupConfig{
			Capacity: cfg.Capacity,
			Buffer:   cfg.Buffer,
			Duration: nePayoffDuration(cfg.Duration),
			Seed:     cfg.Seed + uint64(len(cache))*104729,
			X:        cfg.X,
			RTTs:     cfg.RTTs,
			Sizes:    cfg.Sizes,
			NumX:     append([]int(nil), k...),
		})
		p := pair{}
		if err == nil {
			p = pair{x: res.PerFlowX, c: res.PerFlowCubic}
			sims++
		} else {
			p = pair{x: make([]units.Rate, len(k)), c: make([]units.Rate, len(k))}
		}
		cache[key] = p
		return p
	}
	groups := make([]game.GroupSpec, len(cfg.Sizes))
	total := 0
	for i, sz := range cfg.Sizes {
		groups[i] = game.GroupSpec{Size: sz}
		total += sz
	}
	g := &game.GroupSymmetric{
		Groups:      groups,
		PayoffX:     func(i int, k []int) float64 { return float64(eval(k).x[i]) },
		PayoffCubic: func(i int, k []int) float64 { return float64(eval(k).c[i]) },
	}
	eps := game.Epsilon(float64(cfg.Capacity), total, cfg.EpsFraction)

	if cfg.Exhaustive {
		ks, err := g.Equilibria(eps)
		if err != nil {
			return GroupNEResult{}, err
		}
		return GroupNEResult{Equilibria: ks, Simulations: sims}, nil
	}

	// Incentive walk with first-improvement moves: start from a
	// model-informed profile, and at each step take the first unilateral
	// switch that gains more than eps. First-improvement costs far fewer
	// payoff evaluations (simulations) than best-improvement, and the
	// landing profile is an equilibrium either way.
	k := groupWalkStart(cfg)
	maxSteps := 3 * total
	for step := 0; step < maxSteps; step++ {
		moved := false
		for i, sz := range cfg.Sizes {
			if k[i] < sz {
				k[i]++
				gain := float64(eval(k).x[i])
				k[i]--
				if gain > float64(eval(k).c[i])+eps {
					k[i]++
					moved = true
					break
				}
			}
			if k[i] > 0 {
				k[i]--
				gain := float64(eval(k).c[i])
				k[i]++
				if gain > float64(eval(k).x[i])+eps {
					k[i]--
					moved = true
					break
				}
			}
		}
		if !moved {
			break
		}
	}
	var out [][]int
	if g.IsEquilibrium(k, eps) {
		out = append(out, append([]int(nil), k...))
	}
	return GroupNEResult{Equilibria: out, Simulations: sims}, nil
}

// groupWalkStart picks the walk's starting profile: the single-RTT model's
// equilibrium BBR count at the mean RTT, assigned to groups from the
// longest RTT down — the composition the paper observed at multi-RTT
// equilibria (§4.5: long-RTT flows choose BBR, short-RTT flows CUBIC).
func groupWalkStart(cfg GroupNEConfig) []int {
	total := 0
	var meanRTT time.Duration
	for i, sz := range cfg.Sizes {
		total += sz
		meanRTT += cfg.RTTs[i] * time.Duration(sz)
	}
	k := make([]int, len(cfg.Sizes))
	if total == 0 {
		return k
	}
	meanRTT /= time.Duration(total)
	want := total / 2
	if pt, err := core.PredictNash(core.NashScenario{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer, RTT: meanRTT, N: total,
	}, core.Synchronized); err == nil {
		want = int(pt.BBRFlows + 0.5)
	}
	// Order groups by RTT descending and fill X slots from the top.
	order := make([]int, len(cfg.Sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cfg.RTTs[order[a]] > cfg.RTTs[order[b]] })
	for _, i := range order {
		if want <= 0 {
			break
		}
		take := cfg.Sizes[i]
		if take > want {
			take = want
		}
		k[i] = take
		want -= take
	}
	return k
}
