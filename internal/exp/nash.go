package exp

import (
	"context"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/core"
	"bbrnash/internal/game"
	"bbrnash/internal/runner"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// ctxOr resolves an optional search context, defaulting to Background.
func ctxOr(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	return context.Background()
}

// evalFailure records the first payoff-evaluation failure of a search.
// Game callbacks cannot return errors, so without this an erroring or
// panicking payoff simulation would silently score zero and steer the
// equilibrium enumeration to a bogus answer.
type evalFailure struct {
	mu  sync.Mutex
	err error
}

func (f *evalFailure) note(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *evalFailure) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// NESearchConfig describes one empirical Nash-Equilibrium search (§4.4
// methodology): N same-RTT flows each running CUBIC or X, a payoff table
// built from simulations, and equilibrium enumeration over the N+1
// distributions.
type NESearchConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTT      time.Duration
	N        int
	Duration time.Duration
	Seed     uint64
	// X is the non-CUBIC algorithm (defaults to BBR).
	X cc.Constructor
	// EpsFraction widens the equilibrium condition: a switch only counts
	// as an incentive if it gains more than EpsFraction of the fair share
	// (defaults to 5%). The paper observes that near the NE the gains are
	// marginal, which is exactly why multiple NE appear across trials.
	EpsFraction float64
	// Exhaustive scans all N+1 distributions; otherwise the search walks
	// switching incentives from a model-predicted starting distribution
	// and then checks that point's neighbourhood. The walk evaluates far
	// fewer distributions (each evaluation is one simulation).
	Exhaustive bool
	// Pool parallelizes the payoff-table build of exhaustive scans; nil
	// means serial. Results are identical at any worker count.
	Pool *runner.Pool
	// Cache memoizes payoff simulations by canonical scenario key. When
	// nil, a search-local cache still deduplicates repeated distribution
	// evaluations within this call; a shared cache additionally carries
	// results across trials and figures.
	Cache *runner.Cache
	// Journal write-ahead-logs completed payoff simulations for crash
	// resumption (see Scale.Journal); nil disables journaling.
	Journal *runner.Journal
	// Ctx cancels the search: no further payoff simulations are
	// dispatched once it is done. Nil means context.Background().
	Ctx context.Context
	// Audit, when non-nil, validates every payoff simulation against
	// physical invariants (see internal/check).
	Audit *check.Auditor
	// Trace, when non-nil, records every fresh payoff simulation's run
	// trace under its canonical scenario key (see internal/telemetry).
	Trace *telemetry.Recorder
	// Backend selects the execution engine for every payoff simulation
	// (see scenario.Backends); empty means the packet simulator. The fluid
	// backend makes exhaustive payoff tables cheap, at fluid-model
	// fidelity.
	Backend string
}

// NESearchResult is the outcome of one trial's search.
type NESearchResult struct {
	// EquilibriaX lists equilibrium distributions as numbers of X flows.
	EquilibriaX []int
	// Simulations counts simulator runs spent (memoized lookups excluded).
	Simulations int
	// CacheHits counts this search's payoff lookups served by the
	// memoizing cache (or the resume journal) instead of a fresh
	// simulation. The count is per-search — it was formerly a delta of the
	// cache's global hit counter, so concurrent searches sharing one cache
	// attributed each other's hits to themselves.
	CacheHits int
	// Converged reports whether the search settled: exhaustive scans always
	// converge, and walk mode converges when the incentive walk reached an
	// incentive-free distribution within its step budget. When false, the
	// walk cycled or exhausted its budget, EquilibriaX is only the ±2
	// neighbourhood of wherever it stopped — possibly empty, possibly not
	// the full answer — and the non-convergence has been logged. Formerly
	// this outcome was silently discarded.
	Converged bool
}

// FindNE runs the empirical search for one trial (one jitter seed).
//
// Every distribution's payoff simulation gets a seed pre-derived from
// cfg.Seed (a pure function of the distribution, not of visit order), so
// the payoff table can be built in parallel and re-checks of a
// distribution — the equilibrium test probes each point's neighbours —
// hit the cache instead of re-simulating.
func FindNE(cfg NESearchConfig) (NESearchResult, error) {
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	cache := cfg.Cache
	if cache == nil {
		cache = runner.NewCache()
	}
	var sims, hits atomic.Int64
	dur := nePayoffDuration(cfg.Duration)
	seeds := trialSeeds(cfg.Seed, cfg.N+1)
	mixAt := func(numX int) MixConfig {
		return MixConfig{
			Capacity: cfg.Capacity,
			Buffer:   cfg.Buffer,
			RTT:      cfg.RTT,
			Duration: dur,
			Seed:     seeds[numX],
			X:        cfg.X,
			NumX:     numX,
			NumCubic: cfg.N - numX,
			Backend:  cfg.Backend,
		}
	}
	type pair struct{ x, c units.Rate }
	// evalErr is the fallible payoff evaluation: panic-protected and
	// reported under the distribution's canonical scenario key. ctx is the
	// executing unit's context when the evaluation runs through MapCtx (so
	// the watchdog sees its heartbeats) and the search context otherwise.
	evalErr := func(ctx context.Context, numX int) (pair, error) {
		mix := mixAt(numX)
		return runner.Protect(mix.key(), func() (pair, error) {
			res, hit, err := runMixCached(ctx, mix, cache, cfg.Journal, cfg.Audit, cfg.Trace)
			if err != nil {
				return pair{}, err
			}
			if hit {
				hits.Add(1)
			} else {
				sims.Add(1)
			}
			return pair{res.PerFlowX, res.PerFlowCubic}, nil
		})
	}
	searchCtx := ctxOr(cfg.Ctx)
	var failed evalFailure
	eval := func(numX int) pair {
		p, err := evalErr(searchCtx, numX)
		failed.note(err)
		return p
	}
	g := &game.SymmetricBinary{
		N:           cfg.N,
		PayoffX:     func(k int) float64 { return float64(eval(k).x) },
		PayoffCubic: func(k int) float64 { return float64(eval(k).c) },
	}
	eps := game.Epsilon(float64(cfg.Capacity), cfg.N, cfg.EpsFraction)

	if cfg.Exhaustive {
		// An exhaustive scan evaluates every distribution anyway, so
		// build the whole payoff table up front through the pool; the
		// enumeration below is then pure cache hits.
		if _, err := runner.MapCtx(searchCtx, cfg.Pool, cfg.N+1, func(uctx context.Context, numX int) (struct{}, error) {
			_, err := evalErr(uctx, numX)
			return struct{}{}, err
		}); err != nil {
			return NESearchResult{}, err
		}
		ks, err := g.Equilibria(eps)
		if err != nil {
			return NESearchResult{}, err
		}
		if err := failed.get(); err != nil {
			return NESearchResult{}, err
		}
		return NESearchResult{
			EquilibriaX: ks,
			Simulations: int(sims.Load()),
			CacheHits:   int(hits.Load()),
			Converged:   true,
		}, nil
	}

	// Walk from the model's predicted equilibrium, then report every
	// equilibrium in the landing zone's neighbourhood.
	start := cfg.N / 2
	if pt, err := core.PredictNash(core.NashScenario{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer, RTT: cfg.RTT, N: cfg.N,
	}, core.Synchronized); err == nil {
		start = int(pt.BBRFlows + 0.5)
	}
	ks, converged := walkNeighborhood(g, cfg.N, start, eps, 3*cfg.N)
	if err := failed.get(); err != nil {
		return NESearchResult{}, err
	}
	return NESearchResult{
		EquilibriaX: ks,
		Simulations: int(sims.Load()),
		CacheHits:   int(hits.Load()),
		Converged:   converged,
	}, nil
}

// walkNeighborhood is the walk-mode search core shared by FindNE and
// FindNEUtility: follow unilateral switching incentives from start, then
// report every equilibrium in the landing zone's ±2 neighbourhood.
// converged is FirstEquilibrium's verdict — false when the walk cycled or
// exhausted maxSteps, in which case the neighbourhood is centred on
// wherever the walk stopped rather than on an equilibrium, and the caller
// must surface that instead of passing the neighbourhood off as the answer
// (the pre-fix code discarded it).
func walkNeighborhood(g *game.SymmetricBinary, n, start int, eps float64, maxSteps int) (ks []int, converged bool) {
	k, ok := g.FirstEquilibrium(start, eps, maxSteps)
	if !ok {
		log.Printf("exp: NE walk from %d did not converge within %d steps (stopped at %d); reporting that point's ±2 neighbourhood only", start, maxSteps, k)
	}
	for cand := k - 2; cand <= k+2; cand++ {
		if cand < 0 || cand > n {
			continue
		}
		if g.IsEquilibrium(cand, eps) {
			ks = append(ks, cand)
		}
	}
	return ks, ok
}

// nePayoffDuration enforces the paper's two-minute protocol on equilibrium
// payoff measurements. Equilibrium positions are set by BBR's converged
// share, and BBR's RTT+ mechanism converges over multiples of its ten-second
// ProbeRTT cycle, so shorter runs systematically understate BBR and push the
// observed equilibrium toward CUBIC at every buffer depth.
func nePayoffDuration(base time.Duration) time.Duration {
	if base > 2*time.Minute {
		return base
	}
	return 2 * time.Minute
}

// PayoffDuration exposes the two-minute payoff-measurement floor to other
// game-on-simulation layers (internal/adopt), so adoption-dynamics payoffs
// and NE-search payoffs obey the same measurement protocol and their
// equilibria are comparable.
func PayoffDuration(base time.Duration) time.Duration {
	return nePayoffDuration(base)
}

// GroupNEConfig describes the §4.5 multi-RTT equilibrium search.
type GroupNEConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTTs     []time.Duration
	Sizes    []int
	Duration time.Duration
	Seed     uint64
	X        cc.Constructor
	// EpsFraction as in NESearchConfig.
	EpsFraction float64
	// Exhaustive enumerates the whole Π(Size+1) profile space; otherwise
	// a greedy incentive walk is used.
	Exhaustive bool
	// Pool, Cache, Journal, Ctx, Audit and Trace as in NESearchConfig.
	Pool    *runner.Pool
	Cache   *runner.Cache
	Journal *runner.Journal
	Ctx     context.Context
	Audit   *check.Auditor
	Trace   *telemetry.Recorder
}

// GroupNEResult is the outcome of a multi-RTT search.
type GroupNEResult struct {
	// Equilibria are profiles: Equilibria[j][i] X flows in group i.
	Equilibria [][]int
	// Simulations counts simulator runs spent (memoized lookups excluded).
	Simulations int
	// CacheHits counts this search's payoff lookups served by the
	// memoizing cache; per-search, as in NESearchResult.
	CacheHits int
	// Converged reports whether the search settled (always true for
	// exhaustive scans; for the incentive walk, whether it reached a
	// move-free profile within its step budget). As in NESearchResult, a
	// non-converged walk's Equilibria may be empty or incomplete.
	Converged bool
}

// FindGroupNE runs the multi-RTT equilibrium search for one trial. Each
// profile's payoff seed is a pure function of (cfg.Seed, profile), so the
// profile space can be evaluated in parallel and memoized canonically.
func FindGroupNE(cfg GroupNEConfig) (GroupNEResult, error) {
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	cache := cfg.Cache
	if cache == nil {
		cache = runner.NewCache()
	}
	var sims, hits atomic.Int64
	type pair struct {
		x, c []units.Rate
	}
	evalErr := func(ctx context.Context, k []int) (pair, error) {
		gcfg := GroupConfig{
			Capacity: cfg.Capacity,
			Buffer:   cfg.Buffer,
			Duration: nePayoffDuration(cfg.Duration),
			Seed:     profileSeed(cfg.Seed, k),
			X:        cfg.X,
			RTTs:     cfg.RTTs,
			Sizes:    cfg.Sizes,
			NumX:     append([]int(nil), k...),
		}
		return runner.Protect(gcfg.key(), func() (pair, error) {
			res, hit, err := runGroupsCached(ctx, gcfg, cache, cfg.Journal, cfg.Audit, cfg.Trace)
			if err != nil {
				return pair{x: make([]units.Rate, len(k)), c: make([]units.Rate, len(k))}, err
			}
			if hit {
				hits.Add(1)
			} else {
				sims.Add(1)
			}
			return pair{x: res.PerFlowX, c: res.PerFlowCubic}, nil
		})
	}
	searchCtx := ctxOr(cfg.Ctx)
	var failed evalFailure
	eval := func(k []int) pair {
		p, err := evalErr(searchCtx, k)
		failed.note(err)
		if p.x == nil || p.c == nil {
			p = pair{x: make([]units.Rate, len(k)), c: make([]units.Rate, len(k))}
		}
		return p
	}
	groups := make([]game.GroupSpec, len(cfg.Sizes))
	total := 0
	for i, sz := range cfg.Sizes {
		groups[i] = game.GroupSpec{Size: sz}
		total += sz
	}
	g := &game.GroupSymmetric{
		Groups:      groups,
		PayoffX:     func(i int, k []int) float64 { return float64(eval(k).x[i]) },
		PayoffCubic: func(i int, k []int) float64 { return float64(eval(k).c[i]) },
	}
	eps := game.Epsilon(float64(cfg.Capacity), total, cfg.EpsFraction)

	if cfg.Exhaustive {
		// The exhaustive enumeration touches every profile, so build the
		// whole payoff table up front through the pool.
		profiles := enumerateProfiles(cfg.Sizes)
		if _, err := runner.MapCtx(searchCtx, cfg.Pool, len(profiles), func(uctx context.Context, i int) (struct{}, error) {
			_, err := evalErr(uctx, profiles[i])
			return struct{}{}, err
		}); err != nil {
			return GroupNEResult{}, err
		}
		ks, err := g.Equilibria(eps)
		if err != nil {
			return GroupNEResult{}, err
		}
		if err := failed.get(); err != nil {
			return GroupNEResult{}, err
		}
		return GroupNEResult{
			Equilibria:  ks,
			Simulations: int(sims.Load()),
			CacheHits:   int(hits.Load()),
			Converged:   true,
		}, nil
	}

	// Incentive walk with first-improvement moves: start from a
	// model-informed profile, and at each step take the first unilateral
	// switch that gains more than eps. First-improvement costs far fewer
	// payoff evaluations (simulations) than best-improvement, and the
	// landing profile is an equilibrium either way.
	k := groupWalkStart(cfg)
	maxSteps := 3 * total
	settled := false
	for step := 0; step < maxSteps; step++ {
		moved := false
		for i, sz := range cfg.Sizes {
			if k[i] < sz {
				k[i]++
				gain := float64(eval(k).x[i])
				k[i]--
				if gain > float64(eval(k).c[i])+eps {
					k[i]++
					moved = true
					break
				}
			}
			if k[i] > 0 {
				k[i]--
				gain := float64(eval(k).c[i])
				k[i]++
				if gain > float64(eval(k).x[i])+eps {
					k[i]--
					moved = true
					break
				}
			}
		}
		if !moved {
			settled = true
			break
		}
	}
	if !settled {
		// The walk was still moving when the budget ran out: unlike the
		// binary line-walk, first-improvement moves over coupled groups can
		// genuinely cycle, so surface the non-convergence instead of
		// passing the last profile off as the answer.
		log.Printf("exp: group NE walk did not settle within %d steps (stopped at %v)", maxSteps, k)
	}
	var out [][]int
	if g.IsEquilibrium(k, eps) {
		out = append(out, append([]int(nil), k...))
	}
	if err := failed.get(); err != nil {
		return GroupNEResult{}, err
	}
	return GroupNEResult{
		Equilibria:  out,
		Simulations: int(sims.Load()),
		CacheHits:   int(hits.Load()),
		Converged:   settled,
	}, nil
}

// enumerateProfiles lists every profile of the Π(Size+1) space in the same
// lexicographic order game.GroupSymmetric.Equilibria visits.
func enumerateProfiles(sizes []int) [][]int {
	total := 1
	for _, sz := range sizes {
		total *= sz + 1
	}
	out := make([][]int, 0, total)
	k := make([]int, len(sizes))
	var walk func(i int)
	walk = func(i int) {
		if i == len(sizes) {
			out = append(out, append([]int(nil), k...))
			return
		}
		for v := 0; v <= sizes[i]; v++ {
			k[i] = v
			walk(i + 1)
		}
		k[i] = 0
	}
	walk(0)
	return out
}

// groupWalkStart picks the walk's starting profile: the single-RTT model's
// equilibrium BBR count at the mean RTT, assigned to groups from the
// longest RTT down — the composition the paper observed at multi-RTT
// equilibria (§4.5: long-RTT flows choose BBR, short-RTT flows CUBIC).
func groupWalkStart(cfg GroupNEConfig) []int {
	total := 0
	var meanRTT time.Duration
	for i, sz := range cfg.Sizes {
		total += sz
		meanRTT += cfg.RTTs[i] * time.Duration(sz)
	}
	k := make([]int, len(cfg.Sizes))
	if total == 0 {
		return k
	}
	meanRTT /= time.Duration(total)
	want := total / 2
	if pt, err := core.PredictNash(core.NashScenario{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer, RTT: meanRTT, N: total,
	}, core.Synchronized); err == nil {
		want = int(pt.BBRFlows + 0.5)
	}
	// Order groups by RTT descending and fill X slots from the top.
	order := make([]int, len(cfg.Sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cfg.RTTs[order[a]] > cfg.RTTs[order[b]] })
	for _, i := range order {
		if want <= 0 {
			break
		}
		take := cfg.Sizes[i]
		if take > want {
			take = want
		}
		k[i] = take
		want -= take
	}
	return k
}
