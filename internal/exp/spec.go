package exp

import (
	"fmt"
	"strconv"
	"strings"

	"bbrnash/internal/cc"
)

// FlowSpec is one parsed element of a command-line flow specification.
type FlowSpec struct {
	// Name is the algorithm name as registered.
	Name string
	// Count is how many flows run it.
	Count int
	// Ctor is the resolved constructor.
	Ctor cc.Constructor
}

// ParseFlowSpec parses a comma-separated list of name[:count] pairs, e.g.
// "bbr:2,cubic:3" or "bbr,cubic". Counts default to 1 and must be
// positive; names must exist in the algorithm registry.
func ParseFlowSpec(spec string) ([]FlowSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("exp: empty flow spec")
	}
	var out []FlowSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("exp: empty element in flow spec %q", spec)
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		count := 1
		if hasCount {
			var err error
			count, err = strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || count < 1 {
				return nil, fmt.Errorf("exp: bad flow count in %q", part)
			}
		}
		ctor, err := AlgorithmByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, FlowSpec{Name: name, Count: count, Ctor: ctor})
	}
	return out, nil
}

// TotalFlows sums the counts in a parsed spec.
func TotalFlows(specs []FlowSpec) int {
	total := 0
	for _, s := range specs {
		total += s.Count
	}
	return total
}
