package exp

// Event-order equivalence goldens for the packet engine.
//
// The event queue was rebuilt from a container/heap of closures into a
// typed, allocation-free indexed heap (internal/eventsim), and the
// single-bottleneck forwarding path was later generalized to multi-link
// topologies. The refactor's correctness contract is that the *event
// order* — and therefore every trace record — is identical to the old
// engine's (same (at, seq) FIFO tie-break). These golden .jsonl bodies
// were generated with the old closure-based single-link engine and are
// deliberately kept as that engine's evidence; the test replays the
// paper's figure-grid corner scenarios (faults and AckJitter enabled,
// every registered algorithm covered) and asserts byte-identical record
// bodies at worker counts 1 and GOMAXPROCS. The header line is compared
// structurally instead: the trace format version and the canonical key
// scheme legitimately move ahead of the goldens (keys.txt tracks the
// current scheme), while the sampling interval, flow count, event count
// and embedded spec must still match the old engine exactly.
//
// Regenerate only on a deliberate, understood behaviour change (existing
// golden bodies are preserved; keys.txt is always rewritten):
//
//	go test ./internal/exp -run TestEngineTraceGoldens -update-engine-goldens

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

var updateEngineGoldens = flag.Bool("update-engine-goldens", false,
	"rewrite the engine trace goldens from the current engine")

// engineCornerSpecs returns the figure-grid corner scenarios: shallow and
// deep buffers, homogeneous and mixed RTTs, every fault mechanism, and all
// registered algorithms. Short durations keep the suite fast; the point is
// ordering coverage, not steady-state statistics.
func engineCornerSpecs() map[string]scenario.Spec {
	const rtt = 30 * time.Millisecond
	capacity := 20 * units.Mbps
	return map[string]scenario.Spec{
		// Shallow buffer: constant overflow, the drop/loss-detection path
		// under both drop-tail and stochastic loss, plus ACK-path loss.
		"shallowbuf": {
			Capacity:    capacity,
			Buffer:      units.BufferBytes(capacity, rtt, 0.5),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    2 * time.Second,
			Seed:        21,
			Faults:      scenario.Faults{LossRate: 0.01, AckLossRate: 0.02},
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 2, RTT: rtt},
				{Algorithm: "cubic", Count: 2, RTT: rtt},
			},
		},
		// Deep buffer with capacity flaps: rate-change edges interleave
		// with a standing queue.
		"deepbuf-flap": {
			Capacity:    capacity,
			Buffer:      units.BufferBytes(capacity, rtt, 8),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    2 * time.Second,
			Seed:        22,
			Faults:      scenario.Faults{FlapPeriod: 500 * time.Millisecond, FlapDepth: 0.4},
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 1, RTT: rtt},
				{Algorithm: "cubic", Count: 1, RTT: rtt},
				{Algorithm: "reno", Count: 1, RTT: rtt},
			},
		},
		// Mixed RTT groups with burst-loss episodes: many same-instant
		// loss-detection events for one flow, the ordering corner the
		// batched dispatch must preserve.
		"mixedrtt-burst": {
			Capacity:    capacity,
			Buffer:      units.BufferBytes(capacity, rtt, 2),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    2 * time.Second,
			Seed:        23,
			Faults:      scenario.Faults{BurstEvery: 400 * time.Millisecond, BurstLen: 12},
			Groups: []scenario.Group{
				{Algorithm: "bbr", Count: 2, RTT: 15 * time.Millisecond},
				{Algorithm: "cubic", Count: 2, RTT: 90 * time.Millisecond},
			},
		},
		// The rest of the registry under combined faults: the paced and
		// model-driven algorithms (bbrv2, copa, vivace) exercise the pacer
		// timer far harder than the loss-based ones.
		"paced-registry": {
			Capacity:    capacity,
			Buffer:      units.BufferBytes(capacity, rtt, 1),
			AckJitter:   scenario.DefaultAckJitter,
			StartJitter: scenario.DefaultStartJitter,
			Duration:    2 * time.Second,
			Seed:        24,
			Faults:      scenario.Faults{LossRate: 0.005, FlapPeriod: time.Second, FlapDepth: 0.25},
			Groups: []scenario.Group{
				{Algorithm: "bbrv2", Count: 1, RTT: rtt},
				{Algorithm: "copa", Count: 1, RTT: rtt},
				{Algorithm: "vivace", Count: 1, RTT: rtt},
			},
		},
	}
}

func engineGoldenDir(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "engine")
}

// traceSpecs runs every corner spec through the harness with the given
// worker count, tracing into a fresh directory, and returns it.
func traceSpecs(t *testing.T, specs map[string]scenario.Spec, order []string, workers int) string {
	t.Helper()
	dir := t.TempDir()
	rec, err := telemetry.NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.NewPool(workers)
	_, err = runner.Map(pool, len(order), func(i int) (struct{}, error) {
		_, err := RunSpecTraced(t.Context(), specs[order[i]], rec)
		return struct{}{}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestEngineTraceGoldens asserts byte-identical trace JSONL and cache keys
// against the goldens generated by the pre-refactor engine, at one worker
// and at GOMAXPROCS workers.
func TestEngineTraceGoldens(t *testing.T) {
	specs := engineCornerSpecs()
	order := []string{"shallowbuf", "deepbuf-flap", "mixedrtt-burst", "paced-registry"}
	golden := engineGoldenDir(t)

	if *updateEngineGoldens {
		if err := os.MkdirAll(golden, 0o755); err != nil {
			t.Fatal(err)
		}
		dir := traceSpecs(t, specs, order, 1)
		var keys []byte
		for _, name := range order {
			key := specs[name].Key()
			jsonl, _ := telemetry.TracePaths(dir, key)
			data, err := os.ReadFile(jsonl)
			if err != nil {
				t.Fatalf("golden trace for %s missing: %v", name, err)
			}
			out := filepath.Join(golden, name+".jsonl")
			if _, err := os.Stat(out); os.IsNotExist(err) {
				// Existing bodies are old-engine evidence; only a missing
				// golden is (re)generated from the current engine.
				if err := os.WriteFile(out, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			keys = append(keys, fmt.Sprintf("%s\t%s\n", name, key)...)
		}
		if err := os.WriteFile(filepath.Join(golden, "keys.txt"), keys, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("engine trace goldens rewritten")
		return
	}

	// The canonical keys must match the goldens exactly: the key is the
	// cache identity, and a drifting key silently orphans every cached
	// result and journal entry.
	wantKeys, err := os.ReadFile(filepath.Join(golden, "keys.txt"))
	if err != nil {
		t.Fatalf("missing goldens (run with -update-engine-goldens on a known-good engine): %v", err)
	}
	var gotKeys []byte
	for _, name := range order {
		gotKeys = append(gotKeys, fmt.Sprintf("%s\t%s\n", name, specs[name].Key())...)
	}
	if string(gotKeys) != string(wantKeys) {
		t.Fatalf("cache keys drifted from goldens:\ngot:\n%swant:\n%s", gotKeys, wantKeys)
	}

	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			dir := traceSpecs(t, specs, order, workers)
			for _, name := range order {
				want, err := os.ReadFile(filepath.Join(golden, name+".jsonl"))
				if err != nil {
					t.Fatal(err)
				}
				jsonl, _ := telemetry.TracePaths(dir, specs[name].Key())
				got, err := os.ReadFile(jsonl)
				if err != nil {
					t.Fatalf("%s: trace not written: %v", name, err)
				}
				gotHdr, gotBody, okG := strings.Cut(string(got), "\n")
				wantHdr, wantBody, okW := strings.Cut(string(want), "\n")
				if !okG || !okW {
					t.Fatalf("%s: trace has no header line", name)
				}
				if gotBody != wantBody {
					t.Errorf("%s: trace record body differs from old-engine golden (%d vs %d bytes); event order is not equivalent",
						name, len(gotBody), len(wantBody))
				}
				compareTraceHeader(t, name, gotHdr, wantHdr, specs[name])
			}
		})
	}
}

// goldenHeader mirrors the trace header fields the golden comparison
// reads; Links is absent from version-1 goldens and decodes as zero.
type goldenHeader struct {
	Record     string          `json:"record"`
	Version    int             `json:"version"`
	Key        string          `json:"key"`
	IntervalNS int64           `json:"interval_ns"`
	Flows      int             `json:"flows"`
	Links      int             `json:"links"`
	Events     int             `json:"events"`
	Spec       json.RawMessage `json:"spec"`
}

// compareTraceHeader checks the header structurally: format version and
// key scheme follow the current code (the goldens predate both), while
// everything describing the captured run — interval, flow count, event
// count, the embedded spec — must match the old engine's exactly.
func compareTraceHeader(t *testing.T, name, gotLine, wantLine string, sp scenario.Spec) {
	t.Helper()
	var got, want goldenHeader
	if err := json.Unmarshal([]byte(gotLine), &got); err != nil {
		t.Fatalf("%s: decoding trace header: %v", name, err)
	}
	if err := json.Unmarshal([]byte(wantLine), &want); err != nil {
		t.Fatalf("%s: decoding golden header: %v", name, err)
	}
	if got.Record != "trace" || got.Version != telemetry.TraceVersion {
		t.Errorf("%s: header record %q version %d, want trace version %d", name, got.Record, got.Version, telemetry.TraceVersion)
	}
	if wantKey := sp.Key(); got.Key != wantKey {
		t.Errorf("%s: header key %q, want %q", name, got.Key, wantKey)
	}
	if got.Links != 1 {
		t.Errorf("%s: header links = %d, want 1 for a single-bottleneck spec", name, got.Links)
	}
	if got.IntervalNS != want.IntervalNS || got.Flows != want.Flows || got.Events != want.Events {
		t.Errorf("%s: header run shape (interval %d, flows %d, events %d) differs from golden (interval %d, flows %d, events %d)",
			name, got.IntervalNS, got.Flows, got.Events, want.IntervalNS, want.Flows, want.Events)
	}
	var gotSpec, wantSpec scenario.Spec
	if err := json.Unmarshal(got.Spec, &gotSpec); err != nil {
		t.Fatalf("%s: decoding header spec: %v", name, err)
	}
	if err := json.Unmarshal(want.Spec, &wantSpec); err != nil {
		t.Fatalf("%s: decoding golden header spec: %v", name, err)
	}
	if !reflect.DeepEqual(gotSpec, wantSpec) {
		t.Errorf("%s: header spec drifted from golden:\n got %+v\nwant %+v", name, gotSpec, wantSpec)
	}
}
