package exp

import (
	"context"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/runner: seed
// pre-derivation and the parallel sweep fan-out.
//
// Determinism contract: every simulation unit's seed is derived up front
// from the submitting goroutine's rng stream, units never share state, and
// results are collected in submission order — so a sweep produces
// byte-identical output at any worker count, with or without the cache.

// trialSeeds pre-derives n unit seeds from base. Element i is the seed the
// i-th successive rng.Source.Split child would be constructed from, so the
// assignment is fixed before any worker starts.
func trialSeeds(base uint64, n int) []uint64 {
	r := rng.New(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// profileSeed derives the jitter seed for one group profile as a pure
// function of (base, profile) — FNV-1a over the profile folded into the
// base — so a profile's payoff simulation has one canonical key no matter
// in which order a search visits it.
func profileSeed(base uint64, k []int) uint64 {
	const offset, prime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)
	h := offset
	for _, v := range k {
		h ^= uint64(v) + 1
		h *= prime
	}
	return rng.New(base ^ h).Uint64()
}

// ProfileSeed exposes profileSeed to other layers that evaluate payoffs by
// count profile (internal/adopt): revisiting a profile — in any order, in
// any generation — re-derives the same seed and therefore the same
// canonical scenario key, which is what makes repeated mixture visits cache
// hits instead of fresh simulations.
func ProfileSeed(base uint64, k []int) uint64 {
	return profileSeed(base, k)
}

// runMixCached is RunMix behind the memoizing cache, the resumption
// journal and the invariant auditor: the config compiles to its
// scenario.Spec, and cache entries, journal records, audit records and
// failures all use the spec's canonical key.
func runMixCached(ctx context.Context, cfg MixConfig, cache *runner.Cache, journal *runner.Journal, audit *check.Auditor, rec *telemetry.Recorder) (MixResult, bool, error) {
	sp, override, canonical := cfg.spec()
	res, hit, err := runSpecCachedOverride(ctx, sp, override, canonical, cache, journal, audit, rec)
	if err != nil {
		return MixResult{}, false, err
	}
	return mixView(res), hit, nil
}

// runGroupsCached is RunGroups behind the memoizing cache, the resumption
// journal and the invariant auditor.
func runGroupsCached(ctx context.Context, cfg GroupConfig, cache *runner.Cache, journal *runner.Journal, audit *check.Auditor, rec *telemetry.Recorder) (GroupResult, bool, error) {
	sp, override, canonical, err := cfg.spec()
	if err != nil {
		return GroupResult{}, false, err
	}
	res, hit, err := runSpecCachedOverride(ctx, sp, override, canonical, cache, journal, audit, rec)
	if err != nil {
		return GroupResult{}, false, err
	}
	return groupView(len(cfg.RTTs), res), hit, nil
}

// SweepPoint is one averaged point of a scenario sweep: per-group class
// averages and aggregates in spec group order, plus the shared link
// statistics, each averaged over the sweep's trials.
type SweepPoint struct {
	// PerFlow[g] is spec group g's average per-flow throughput (0 if the
	// group is empty); Agg[g] is the group's aggregate.
	PerFlow []units.Rate
	Agg     []units.Rate
	// Utilization is total delivered rate over capacity.
	Utilization float64
	// MeanQueueDelay is the average bottleneck queueing delay.
	MeanQueueDelay time.Duration
}

// Sweep runs the n-point scenario sweep specAt(0) … specAt(n-1), each
// point averaged over the scale's jittered trials (the spec's Seed field is
// overwritten with the trial seed). The flat point×trial job list fans out
// through the scale's Pool, per-simulation results are memoized in the
// scale's Cache under each spec's canonical key, and collection order is
// submission order — output is byte-identical at any worker count.
// Per-trial seeds are pre-derived from seed and shared across points,
// matching the paper's protocol of repeating one jitter schedule over a
// sweep.
//
// Execution is fault-tolerant: cancelling s.Ctx or one unit failing stops
// dispatch at any worker count, in-flight units drain, and the returned
// error is a *runner.UnitError naming the failing scenario's canonical key
// (a panicking simulation is captured the same way).
func (s Scale) Sweep(seed uint64, n int, specAt func(i int) scenario.Spec) ([]SweepPoint, error) {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	seeds := trialSeeds(seed, trials)
	flat, err := runner.MapCtx(s.ctx(), s.Pool, n*trials, func(uctx context.Context, j int) (SpecResult, error) {
		sp := specAt(j / trials)
		sp.Seed = seeds[j%trials]
		if s.Backend != "" {
			sp.Backend = s.Backend
		}
		return runner.Protect(sp.Key(), func() (SpecResult, error) {
			res, _, err := RunSpecCachedTraced(uctx, sp, s.Cache, s.Journal, s.Audit, s.Trace)
			return res, err
		})
	})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, n)
	for i := range out {
		out[i] = averageSpecs(len(specAt(i).Groups), flat[i*trials:(i+1)*trials])
	}
	return out, nil
}

// SweepMix is Sweep for MixConfig points, reporting the mix class view.
// It shares Sweep's determinism and fault-tolerance contract; unlike
// Sweep, it accepts non-registry X constructors (such points run fresh
// and uncached).
func (s Scale) SweepMix(seed uint64, n int, cfgAt func(i int) MixConfig) ([]MixResult, error) {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	seeds := trialSeeds(seed, trials)
	flat, err := runner.MapCtx(s.ctx(), s.Pool, n*trials, func(uctx context.Context, j int) (MixResult, error) {
		cfg := cfgAt(j / trials)
		cfg.Seed = seeds[j%trials]
		if s.Backend != "" {
			cfg.Backend = s.Backend
		}
		return runner.Protect(cfg.key(), func() (MixResult, error) {
			res, _, err := runMixCached(uctx, cfg, s.Cache, s.Journal, s.Audit, s.Trace)
			return res, err
		})
	})
	if err != nil {
		return nil, err
	}
	out := make([]MixResult, n)
	for i := range out {
		out[i] = averageMix(flat[i*trials : (i+1)*trials])
	}
	return out, nil
}

// averageSpecs folds per-trial spec results into one sweep point with ng
// groups (the spec's group count — a cached result with a drifted shape
// degrades to empty classes). Per-flow stats are per-trial artifacts and
// are not aggregated.
func averageSpecs(ng int, rs []SpecResult) SweepPoint {
	pt := SweepPoint{
		PerFlow: make([]units.Rate, ng),
		Agg:     make([]units.Rate, ng),
	}
	for _, r := range rs {
		for g := 0; g < ng; g++ {
			stats := r.group(g)
			agg := aggRate(stats)
			pt.Agg[g] += agg
			if len(stats) > 0 {
				pt.PerFlow[g] += agg / units.Rate(len(stats))
			}
		}
		pt.Utilization += r.Link.Utilization
		pt.MeanQueueDelay += r.Link.MeanQueueDelay
	}
	f := units.Rate(len(rs))
	for g := 0; g < ng; g++ {
		pt.Agg[g] /= f
		pt.PerFlow[g] /= f
	}
	pt.Utilization /= float64(len(rs))
	pt.MeanQueueDelay /= time.Duration(len(rs))
	return pt
}

// averageMix folds per-trial results into the class averages the figures
// report. Per-flow stats are per-trial artifacts and are not aggregated.
func averageMix(rs []MixResult) MixResult {
	var acc MixResult
	for _, r := range rs {
		acc.PerFlowX += r.PerFlowX
		acc.PerFlowCubic += r.PerFlowCubic
		acc.AggX += r.AggX
		acc.AggCubic += r.AggCubic
		acc.Utilization += r.Utilization
		acc.MeanQueueDelay += r.MeanQueueDelay
	}
	f := units.Rate(len(rs))
	acc.PerFlowX /= f
	acc.PerFlowCubic /= f
	acc.AggX /= f
	acc.AggCubic /= f
	acc.Utilization /= float64(len(rs))
	acc.MeanQueueDelay /= time.Duration(len(rs))
	return acc
}
