package exp

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/runner: seed
// pre-derivation, canonical cache keys, and the parallel sweep fan-out.
//
// Determinism contract: every simulation unit's seed is derived up front
// from the submitting goroutine's rng stream, units never share state, and
// results are collected in submission order — so a sweep produces
// byte-identical output at any worker count, with or without the cache.

// trialSeeds pre-derives n unit seeds from base. Element i is the seed the
// i-th successive rng.Source.Split child would be constructed from, so the
// assignment is fixed before any worker starts.
func trialSeeds(base uint64, n int) []uint64 {
	r := rng.New(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// profileSeed derives the jitter seed for one group profile as a pure
// function of (base, profile) — FNV-1a over the profile folded into the
// base — so a profile's payoff simulation has one canonical key no matter
// in which order a search visits it.
func profileSeed(base uint64, k []int) uint64 {
	const offset, prime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)
	h := offset
	for _, v := range k {
		h ^= uint64(v) + 1
		h *= prime
	}
	return rng.New(base ^ h).Uint64()
}

// ctorNames maps registry constructor code pointers back to their names,
// so cache keys can canonically identify the algorithm mix. Constructors
// outside the registry (test closures, option-wrapped variants) have no
// canonical name and make a scenario uncacheable.
var ctorNames struct {
	once sync.Once
	m    map[uintptr]string
}

func constructorName(c cc.Constructor) (string, bool) {
	if c == nil {
		return "bbr", true // RunMix's default
	}
	ctorNames.once.Do(func() {
		m := make(map[uintptr]string, len(Algorithms()))
		for name, ctor := range Algorithms() {
			m[reflect.ValueOf(ctor).Pointer()] = name
		}
		ctorNames.m = m
	})
	name, ok := ctorNames.m[reflect.ValueOf(c).Pointer()]
	return name, ok
}

// fx renders a float64 exactly (hex mantissa), keeping keys canonical.
func fx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// mixKey builds the canonical cache key of one mixed-distribution run:
// capacity, buffer, MSS, RTT, algorithm mix, duration, seed and the jitter
// parameters — everything RunMix's output is a function of. ok is false
// when the scenario cannot be canonically identified (non-registry X).
func mixKey(cfg MixConfig) (key string, ok bool) {
	xName, ok := constructorName(cfg.X)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("mix|v1|cap=%s|buf=%s|mss=%s|rtt=%d|dur=%d|sj=%d|aj=%d|x=%s|nx=%d|nc=%d|seed=%d",
		fx(float64(cfg.Capacity)), fx(float64(cfg.Buffer)), fx(float64(units.MSS)),
		int64(cfg.RTT), int64(cfg.Duration), int64(startJitter), int64(ackJitter),
		xName, cfg.NumX, cfg.NumCubic, cfg.Seed), true
}

// groupKey is mixKey for multi-RTT group runs.
func groupKey(cfg GroupConfig) (key string, ok bool) {
	xName, ok := constructorName(cfg.X)
	if !ok {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "groups|v1|cap=%s|buf=%s|mss=%s|dur=%d|sj=%d|aj=%d|x=%s|seed=%d|g=",
		fx(float64(cfg.Capacity)), fx(float64(cfg.Buffer)), fx(float64(units.MSS)),
		int64(cfg.Duration), int64(startJitter), int64(ackJitter), xName, cfg.Seed)
	for i := range cfg.RTTs {
		fmt.Fprintf(&b, "%d:%d:%d,", int64(cfg.RTTs[i]), cfg.Sizes[i], cfg.NumX[i])
	}
	return b.String(), true
}

// runMixCached is RunMix behind the memoizing cache and the invariant
// auditor. hit reports whether the result came from the cache; errors are
// never cached. Cached replays are audited too: a store written by an
// older build should not smuggle a bad result past a strict run.
func runMixCached(cfg MixConfig, cache *runner.Cache, audit *check.Auditor) (res MixResult, hit bool, err error) {
	key, canonical := mixKey(cfg)
	if canonical {
		if cache.Get(key, &res) {
			auditMix(audit, key, cfg, res)
			return res, true, nil
		}
	}
	res, err = RunMix(cfg)
	if err != nil {
		return MixResult{}, false, err
	}
	if canonical {
		cache.Put(key, res)
		auditMix(audit, key, cfg, res)
	} else {
		auditMix(audit, "", cfg, res)
	}
	return res, false, nil
}

// runGroupsCached is RunGroups behind the memoizing cache and the
// invariant auditor.
func runGroupsCached(cfg GroupConfig, cache *runner.Cache, audit *check.Auditor) (res GroupResult, hit bool, err error) {
	key, canonical := groupKey(cfg)
	if canonical {
		if cache.Get(key, &res) {
			auditGroups(audit, key, cfg, res)
			return res, true, nil
		}
	}
	res, err = RunGroups(cfg)
	if err != nil {
		return GroupResult{}, false, err
	}
	if canonical {
		cache.Put(key, res)
		auditGroups(audit, key, cfg, res)
	} else {
		auditGroups(audit, "", cfg, res)
	}
	return res, false, nil
}

// SweepMix runs the n-point sweep cfgAt(0) … cfgAt(n-1), each point
// averaged over the scale's jittered trials. The flat point×trial job list
// fans out through the scale's Pool, per-simulation results are memoized
// in the scale's Cache, and collection order is submission order — output
// is byte-identical at any worker count. Per-trial seeds are pre-derived
// from seed and shared across points, matching the paper's protocol of
// repeating one jitter schedule over a sweep.
//
// Execution is fault-tolerant: cancelling s.Ctx or one unit failing stops
// dispatch at any worker count, in-flight units drain, and the returned
// error is a *runner.UnitError naming the failing scenario's canonical key
// (a panicking simulation is captured the same way).
func (s Scale) SweepMix(seed uint64, n int, cfgAt func(i int) MixConfig) ([]MixResult, error) {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	seeds := trialSeeds(seed, trials)
	flat, err := runner.MapCtx(s.ctx(), s.Pool, n*trials, func(_ context.Context, j int) (MixResult, error) {
		cfg := cfgAt(j / trials)
		cfg.Seed = seeds[j%trials]
		key, _ := mixKey(cfg)
		return runner.Protect(key, func() (MixResult, error) {
			res, _, err := runMixCached(cfg, s.Cache, s.Audit)
			return res, err
		})
	})
	if err != nil {
		return nil, err
	}
	out := make([]MixResult, n)
	for i := range out {
		out[i] = averageMix(flat[i*trials : (i+1)*trials])
	}
	return out, nil
}

// averageMix folds per-trial results into the class averages the figures
// report. Per-flow stats are per-trial artifacts and are not aggregated.
func averageMix(rs []MixResult) MixResult {
	var acc MixResult
	for _, r := range rs {
		acc.PerFlowX += r.PerFlowX
		acc.PerFlowCubic += r.PerFlowCubic
		acc.AggX += r.AggX
		acc.AggCubic += r.AggCubic
		acc.Utilization += r.Utilization
		acc.MeanQueueDelay += r.MeanQueueDelay
	}
	f := units.Rate(len(rs))
	acc.PerFlowX /= f
	acc.PerFlowCubic /= f
	acc.AggX /= f
	acc.AggCubic /= f
	acc.Utilization /= float64(len(rs))
	acc.MeanQueueDelay /= time.Duration(len(rs))
	return acc
}
