package exp

import (
	"testing"
	"time"

	"bbrnash/internal/core"
	"bbrnash/internal/numeric"
	"bbrnash/internal/units"
)

// Integration: the analytical model must track the simulator for the
// paper's central 2-flow setting across buffer depths (the Figure 3 claim,
// with a tolerance suited to single trials).
func TestModelTracksSimulator2Flow(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulations")
	}
	const rtt = 40 * time.Millisecond
	capacity := 50 * units.Mbps
	for _, bdp := range []float64{3, 10, 25} {
		buf := units.BufferBytes(capacity, rtt, bdp)
		pred, err := core.Predict(core.Scenario{
			Capacity: capacity, Buffer: buf, RTT: rtt, NumCubic: 1, NumBBR: 1,
		}, core.Synchronized)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMix(MixConfig{
			Capacity: capacity, Buffer: buf, RTT: rtt,
			Duration: 2 * time.Minute, NumX: 1, NumCubic: 1, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := numeric.RelErr(float64(pred.AggBBR), float64(res.AggX)); e > 0.40 {
			t.Errorf("at %v BDP: model %.1f vs sim %.1f Mbps (relerr %.0f%%)",
				bdp, pred.AggBBR.Mbit(), res.AggX.Mbit(), 100*e)
		}
	}
}

// Integration: diminishing returns (Figure 5) — per-flow BBR throughput
// falls as the BBR proportion grows.
func TestDiminishingReturnsEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulations")
	}
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	buf := units.BufferBytes(capacity, rtt, 10)
	per := func(nb int) float64 {
		res, err := RunMix(MixConfig{
			Capacity: capacity, Buffer: buf, RTT: rtt,
			Duration: 2 * time.Minute, NumX: nb, NumCubic: 10 - nb, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerFlowX)
	}
	few, many := per(2), per(8)
	if many >= few {
		t.Errorf("per-flow BBR with 8 flows (%.2e) not below with 2 flows (%.2e)", many, few)
	}
}

// Integration: the empirically found equilibrium sits in (or near) the
// model's predicted region (the Figure 9 claim).
func TestEmpiricalNENearModelRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulations")
	}
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	buf := units.BufferBytes(capacity, rtt, 5)
	const n = 20

	region, err := core.PredictNashRegion(core.NashScenario{
		Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindNE(NESearchConfig{
		Capacity: capacity, Buffer: buf, RTT: rtt, N: n,
		Duration: 2 * time.Minute, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EquilibriaX) == 0 {
		t.Fatal("no equilibrium found")
	}
	for _, k := range res.EquilibriaX {
		if !region.Contains(n-k, 4) {
			t.Errorf("observed NE with %d CUBIC outside region [%.1f, %.1f] ±4",
				n-k, region.CubicLow(), region.CubicHigh())
		}
	}
}

// Integration (§4.3): with a mild delay term in the utility, the
// equilibrium stays near the throughput-only position, because queueing
// delay is shared between the algorithms.
func TestUtilityNEStableUnderMildDelayWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulations")
	}
	const rtt = 40 * time.Millisecond
	capacity := 100 * units.Mbps
	cfg := NESearchConfig{
		Capacity: capacity,
		Buffer:   units.BufferBytes(capacity, rtt, 3),
		RTT:      rtt,
		N:        10,
		Duration: 2 * time.Minute,
		Seed:     23,
	}
	tputOnly, err := FindNEUtility(cfg, ThroughputUtility)
	if err != nil {
		t.Fatal(err)
	}
	mildDelay, err := FindNEUtility(cfg, LinearUtility(1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if len(tputOnly.EquilibriaX) == 0 || len(mildDelay.EquilibriaX) == 0 {
		t.Fatalf("missing equilibria: %v vs %v", tputOnly.EquilibriaX, mildDelay.EquilibriaX)
	}
	d := tputOnly.EquilibriaX[0] - mildDelay.EquilibriaX[0]
	if d < -3 || d > 3 {
		t.Errorf("mild delay weight moved the NE from %v to %v",
			tputOnly.EquilibriaX, mildDelay.EquilibriaX)
	}
}

func TestLinearUtility(t *testing.T) {
	u := LinearUtility(2, 0.5)
	got := u(10*units.Mbps, 20*time.Millisecond)
	want := 2*10.0 - 0.5*20.0
	if got != want {
		t.Errorf("LinearUtility = %v, want %v", got, want)
	}
	if ThroughputUtility(5*units.Mbps, time.Hour) != 5e6 {
		t.Error("ThroughputUtility should ignore delay")
	}
}
