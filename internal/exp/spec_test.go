package exp

import "testing"

func TestParseFlowSpec(t *testing.T) {
	specs, err := ParseFlowSpec("bbr:2, cubic:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Name != "bbr" || specs[0].Count != 2 || specs[0].Ctor == nil {
		t.Errorf("spec[0] = %+v", specs[0])
	}
	if specs[1].Name != "cubic" || specs[1].Count != 3 {
		t.Errorf("spec[1] = %+v", specs[1])
	}
	if TotalFlows(specs) != 5 {
		t.Errorf("TotalFlows = %d", TotalFlows(specs))
	}
}

func TestParseFlowSpecDefaultsCountToOne(t *testing.T) {
	specs, err := ParseFlowSpec("vivace,copa")
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Count != 1 || specs[1].Count != 1 {
		t.Errorf("default counts wrong: %+v", specs)
	}
}

func TestParseFlowSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"  ",
		"bbr:",
		"bbr:0",
		"bbr:-1",
		"bbr:x",
		"unknownalg:2",
		"bbr:2,,cubic:1",
	}
	for _, spec := range bad {
		if _, err := ParseFlowSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
