package exp

import (
	"context"
	"sync/atomic"
	"time"

	"bbrnash/internal/game"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// UtilityFunc scores one flow's outcome: its average throughput and the
// bottleneck's average queueing delay (shared by every flow regardless of
// algorithm — the asymmetry §4.3 builds its argument on).
type UtilityFunc func(throughput units.Rate, queueDelay time.Duration) float64

// ThroughputUtility is the paper's default: utility is throughput alone.
func ThroughputUtility(throughput units.Rate, _ time.Duration) float64 {
	return float64(throughput)
}

// LinearUtility builds the §4.3 family: α·throughput − γ·delay, with
// throughput in Mbps and delay in milliseconds.
func LinearUtility(alpha, gamma float64) UtilityFunc {
	return func(throughput units.Rate, queueDelay time.Duration) float64 {
		return alpha*throughput.Mbit() - gamma*float64(queueDelay.Milliseconds())
	}
}

// FindNEUtility is FindNE with an arbitrary utility function: the §4.3
// extension. A flow switches algorithm when doing so raises its utility by
// more than eps (EpsFraction of the fair-share utility scale).
//
// Because queueing delay is shared between CUBIC and X flows at the same
// bottleneck, delay terms shift both strategies' utilities almost equally;
// the paper conjectures — and this search confirms for linear utilities —
// that equilibria stay near the throughput-only positions until the delay
// weight dominates.
func FindNEUtility(cfg NESearchConfig, utility UtilityFunc) (NESearchResult, error) {
	if utility == nil {
		utility = ThroughputUtility
	}
	if cfg.EpsFraction == 0 {
		cfg.EpsFraction = 0.05
	}
	cache := cfg.Cache
	if cache == nil {
		cache = runner.NewCache()
	}
	var sims, hits atomic.Int64
	dur := nePayoffDuration(cfg.Duration)
	seeds := trialSeeds(cfg.Seed, cfg.N+1)
	type pair struct{ x, c float64 }
	// What is memoized is the underlying MixResult — shared with FindNE's
	// throughput-only searches — and the utility is recomputed per lookup.
	evalErr := func(ctx context.Context, numX int) (pair, error) {
		mix := MixConfig{
			Capacity: cfg.Capacity,
			Buffer:   cfg.Buffer,
			RTT:      cfg.RTT,
			Duration: dur,
			Seed:     seeds[numX],
			X:        cfg.X,
			NumX:     numX,
			NumCubic: cfg.N - numX,
		}
		return runner.Protect(mix.key(), func() (pair, error) {
			res, hit, err := runMixCached(ctx, mix, cache, cfg.Journal, cfg.Audit, cfg.Trace)
			if err != nil {
				return pair{}, err
			}
			if hit {
				hits.Add(1)
			} else {
				sims.Add(1)
			}
			return pair{
				x: utility(res.PerFlowX, res.MeanQueueDelay),
				c: utility(res.PerFlowCubic, res.MeanQueueDelay),
			}, nil
		})
	}
	searchCtx := ctxOr(cfg.Ctx)
	var failed evalFailure
	eval := func(numX int) pair {
		p, err := evalErr(searchCtx, numX)
		failed.note(err)
		return p
	}
	g := &game.SymmetricBinary{
		N:           cfg.N,
		PayoffX:     func(k int) float64 { return eval(k).x },
		PayoffCubic: func(k int) float64 { return eval(k).c },
	}
	// Scale eps to the utility of a fair share so EpsFraction keeps its
	// "fraction of what is at stake" meaning.
	fairUtil := utility(cfg.Capacity/units.Rate(cfg.N), 0)
	if fairUtil < 0 {
		fairUtil = -fairUtil
	}
	eps := cfg.EpsFraction * fairUtil

	if cfg.Exhaustive {
		if _, err := runner.MapCtx(searchCtx, cfg.Pool, cfg.N+1, func(uctx context.Context, numX int) (struct{}, error) {
			_, err := evalErr(uctx, numX)
			return struct{}{}, err
		}); err != nil {
			return NESearchResult{}, err
		}
		ks, err := g.Equilibria(eps)
		if err != nil {
			return NESearchResult{}, err
		}
		if err := failed.get(); err != nil {
			return NESearchResult{}, err
		}
		return NESearchResult{
			EquilibriaX: ks,
			Simulations: int(sims.Load()),
			CacheHits:   int(hits.Load()),
			Converged:   true,
		}, nil
	}
	ks, converged := walkNeighborhood(g, cfg.N, cfg.N/2, eps, 3*cfg.N)
	if err := failed.get(); err != nil {
		return NESearchResult{}, err
	}
	return NESearchResult{
		EquilibriaX: ks,
		Simulations: int(sims.Load()),
		CacheHits:   int(hits.Load()),
		Converged:   converged,
	}, nil
}
