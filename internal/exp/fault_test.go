package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
)

// TestSweepMixCancelledContext: a sweep under a cancelled context returns
// promptly with context.Canceled instead of simulating anything.
func TestSweepMixCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := testScale()
	s.Pool = runner.NewPool(4)
	s.Ctx = ctx

	start := time.Now()
	_, err := s.SweepMix(1, 4, func(int) MixConfig { return smokeMix() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A single smoke simulation takes seconds; a cancelled sweep must not
	// run even one.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled sweep took %v", elapsed)
	}
}

// TestSweepMixFailureNamesScenario: a failing simulation unit surfaces as
// a *runner.UnitError carrying the scenario's canonical cache key.
func TestSweepMixFailureNamesScenario(t *testing.T) {
	s := testScale()
	s.Pool = runner.NewPool(2)
	_, err := s.SweepMix(1, 2, func(i int) MixConfig {
		cfg := smokeMix()
		if i == 1 {
			cfg.Duration = 0 // RunMix rejects non-positive durations
		}
		return cfg
	})
	if err == nil {
		t.Fatal("expected sweep failure")
	}
	var ue *runner.UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *runner.UnitError", err)
	}
	if !strings.HasPrefix(ue.Key, scenario.KeyPrefix) {
		t.Errorf("UnitError.Key = %q, want canonical scenario key", ue.Key)
	}
	if !strings.Contains(err.Error(), "non-positive duration") {
		t.Errorf("err = %v, want wrapped validation error", err)
	}
}

// TestSweepMixAuditClean: real simulation output passes the strict
// invariant audit — on fresh computes and on cached replays.
func TestSweepMixAuditClean(t *testing.T) {
	s := testScale()
	s.Pool = runner.NewPool(4)
	s.Cache = runner.NewCache()
	s.Audit = check.New()

	cfgAt := func(int) MixConfig {
		c := smokeMix()
		c.NumX, c.NumCubic = 2, 1
		return c
	}
	if _, err := s.SweepMix(9, 1, cfgAt); err != nil {
		t.Fatal(err)
	}
	if s.Audit.Len() != 0 {
		t.Fatalf("fresh run violated invariants: %v", s.Audit.Violations())
	}
	// Replay from the warm cache: the audit re-runs on cached results.
	if _, err := s.SweepMix(9, 1, cfgAt); err != nil {
		t.Fatal(err)
	}
	if s.Audit.Len() != 0 {
		t.Fatalf("cached replay violated invariants: %v", s.Audit.Violations())
	}
	if err := s.Audit.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFindNECancelledContext: the exhaustive equilibrium search honours
// its config context.
func TestFindNECancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mix := smokeMix()
	_, err := FindNE(NESearchConfig{
		Capacity: mix.Capacity, Buffer: mix.Buffer, RTT: mix.RTT,
		N: 3, Duration: mix.Duration, Seed: 11,
		Exhaustive: true, Pool: runner.NewPool(4), Ctx: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
