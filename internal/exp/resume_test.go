package exp

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// faultedSpecAt builds the i-th point of a small faulted sweep: 1% loss and
// a 50%-depth capacity flap, the acceptance scenario of the fault-injection
// layer, with the flow split varying across points.
func faultedSpecAt(i int) scenario.Spec {
	capacity := 20 * units.Mbps
	sp := scenario.Mix("bbr", 1+i, 1, capacity,
		units.BufferBytes(capacity, 40*time.Millisecond, 2),
		40*time.Millisecond, 8*time.Second)
	sp.Faults = scenario.Faults{
		LossRate:   0.01,
		FlapPeriod: 2 * time.Second,
		FlapDepth:  0.5,
	}
	return sp
}

// TestFaultedSweepDeterministicAcrossWorkers: the acceptance criterion of
// the fault-injection layer — a sweep of fault-injected specs (loss >= 1%,
// a capacity flap) is byte-identical at any worker count, with the
// fault-aware invariant audit attached and clean.
func TestFaultedSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]SweepPoint, *check.Auditor) {
		audit := check.New()
		s := Scale{Trials: 2, Pool: runner.NewPool(workers), Cache: runner.NewCache(), Audit: audit}
		pts, err := s.Sweep(5, 3, faultedSpecAt)
		if err != nil {
			t.Fatal(err)
		}
		return pts, audit
	}
	a, auditA := run(1)
	b, auditB := run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed faulted sweep output:\n1: %+v\n8: %+v", a, b)
	}
	for _, audit := range []*check.Auditor{auditA, auditB} {
		if err := audit.Err(); err != nil {
			t.Errorf("fault-aware invariants violated: %v", err)
		}
	}
}

// TestSweepWatchdogCleanRun: with a watchdog armed, the chunked simulation
// loop's Progress heartbeats keep healthy units alive — the window here is
// far shorter than a unit's runtime, so only the heartbeats save them.
func TestSweepWatchdogCleanRun(t *testing.T) {
	base := Scale{Trials: 2, Cache: runner.NewCache()}
	want, err := base.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatal(err)
	}
	s := Scale{Trials: 2, Pool: runner.NewPool(2).SetWatchdog(2 * time.Second), Cache: runner.NewCache()}
	got, err := s.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatalf("watchdogged sweep failed: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("watchdog changed sweep output")
	}
}

// TestSweepJournalResume: the resumption contract end to end — a sweep
// records every completed unit in the journal; a fresh process (cold
// cache) resuming from that journal reproduces byte-identical output
// without re-simulating, even though the cache file was never saved.
func TestSweepJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := runner.OpenJournal(path, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Scale{Trials: 2, Cache: runner.NewCache(), Journal: j1}
	want, err := s1.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatal(err)
	}
	wantUnits := j1.Len()
	if wantUnits == 0 {
		t.Fatal("sweep recorded nothing in the journal")
	}
	j1.Close()

	// "Crash" and resume: new journal handle, cold cache, same sweep.
	j2, err := runner.OpenJournal(path, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pool := runner.NewPool(2)
	s2 := Scale{Trials: 2, Pool: pool, Cache: runner.NewCache(), Journal: j2}
	got, err := s2.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed sweep output differs:\nfirst: %+v\nresumed: %+v", want, got)
	}
	if j2.Hits() == 0 {
		t.Error("resumed sweep never hit the journal")
	}
	if j2.Len() != wantUnits {
		t.Errorf("resume changed journal size: %d -> %d", wantUnits, j2.Len())
	}
}

// TestSweepJournalPartialResume: a journal holding only a prefix of the
// sweep (the crash-mid-sweep shape) serves what it has and the rest is
// simulated fresh; output matches an uninterrupted run.
func TestSweepJournalPartialResume(t *testing.T) {
	clean := Scale{Trials: 2, Cache: runner.NewCache()}
	want, err := clean.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := runner.OpenJournal(path, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Complete only the first point before the "crash".
	s1 := Scale{Trials: 2, Cache: runner.NewCache(), Journal: j1}
	if _, err := s1.Sweep(5, 1, faultedSpecAt); err != nil {
		t.Fatal(err)
	}
	partial := j1.Len()
	j1.Close()

	j2, err := runner.OpenJournal(path, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := Scale{Trials: 2, Cache: runner.NewCache(), Journal: j2}
	got, err := s2.Sweep(5, 2, faultedSpecAt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("partially resumed sweep differs:\nclean: %+v\nresumed: %+v", want, got)
	}
	if j2.Hits() == 0 {
		t.Error("resume ignored the partial journal")
	}
	if j2.Len() <= partial {
		t.Errorf("resume did not journal the remaining units: %d -> %d", partial, j2.Len())
	}
}
