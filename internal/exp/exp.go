// Package exp is the experiment harness: it assembles simulator runs into
// the measurements the paper reports, and exposes one generator per figure
// (internal/exp/figures.go) that regenerates the corresponding table or
// chart at a configurable scale.
//
// The paper's protocol is: all flows start (nearly) simultaneously, send
// for two minutes, and the average throughput over the whole run is
// reported. Trials differ through small start-time jitter, which plays the
// role the testbed's kernel/timing noise played.
package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/cc/bbr"
	"bbrnash/internal/cc/bbrv2"
	"bbrnash/internal/cc/copa"
	"bbrnash/internal/cc/cubic"
	"bbrnash/internal/cc/reno"
	"bbrnash/internal/cc/vivace"
	"bbrnash/internal/netsim"
	"bbrnash/internal/rng"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// Scale selects experiment fidelity. The paper's protocol is Full; Quick
// trades precision for wall-clock time (used by benchmarks); Smoke is for
// unit tests.
type Scale struct {
	// Name identifies the scale in output.
	Name string
	// FlowDuration is how long flows send (paper: 2 minutes).
	FlowDuration time.Duration
	// Trials is how many jittered repetitions to run where the paper runs
	// ten.
	Trials int
	// SweepPoints bounds the number of x-axis points in parameter sweeps
	// (buffer sizes, flow counts). Zero means the paper's full grid.
	SweepPoints int
	// Exhaustive selects full n+1 distribution scans for empirical NE
	// searches; when false, the incentive-following walk is used.
	Exhaustive bool
	// Pool bounds how many simulations run concurrently; nil means serial.
	// Parallelism never changes results: every unit's seed is derived up
	// front and results are collected in submission order, so any worker
	// count yields byte-identical output (see internal/runner).
	Pool *runner.Pool
	// Cache memoizes simulation results under canonical scenario keys
	// across a run; nil disables memoization.
	Cache *runner.Cache
	// Ctx cancels experiment execution: once it is done, no further
	// simulation units are dispatched, in-flight units drain, and sweeps
	// return the context's error (the CLIs wire SIGINT here). Nil means
	// context.Background().
	Ctx context.Context
	// Audit, when non-nil, validates every simulation result against
	// physical invariants (share sums, byte conservation, queue bounds,
	// NaN/Inf) and records violations under the canonical scenario key;
	// see internal/check. Nil disables auditing.
	Audit *check.Auditor
}

// ctx resolves the scale's context, defaulting to Background.
func (s Scale) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Predefined scales. All three use the paper's two-minute flows: BBR's
// bandwidth share converges over multiples of its ten-second ProbeRTT
// cycle, so shorter flows systematically understate BBR at every buffer
// depth. The scales differ in trial counts, sweep density and NE search
// strategy instead.
var (
	Full  = Scale{Name: "full", FlowDuration: 2 * time.Minute, Trials: 10, Exhaustive: true}
	Quick = Scale{Name: "quick", FlowDuration: 2 * time.Minute, Trials: 2, SweepPoints: 6}
	Smoke = Scale{Name: "smoke", FlowDuration: 2 * time.Minute, Trials: 1, SweepPoints: 3}
)

// ScaleByName resolves a scale name from the command line.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return Full, nil
	case "quick":
		return Quick, nil
	case "smoke":
		return Smoke, nil
	default:
		return Scale{}, fmt.Errorf("exp: unknown scale %q (want full, quick or smoke)", name)
	}
}

// thin reduces a sweep grid to at most s.SweepPoints values, always keeping
// the first and last.
func (s Scale) thin(xs []float64) []float64 {
	if s.SweepPoints <= 0 || len(xs) <= s.SweepPoints {
		return xs
	}
	if s.SweepPoints == 1 {
		// A single-point budget keeps the first point; the i*(n-1)/(p-1)
		// spacing below would divide by zero.
		return xs[:1:1]
	}
	out := make([]float64, 0, s.SweepPoints)
	n := len(xs)
	for i := 0; i < s.SweepPoints; i++ {
		idx := i * (n - 1) / (s.SweepPoints - 1)
		out = append(out, xs[idx])
	}
	return out
}

// Algorithms returns the registry of constructors by name.
func Algorithms() map[string]cc.Constructor {
	return map[string]cc.Constructor{
		"cubic":  cubic.New,
		"reno":   reno.New,
		"bbr":    bbr.New,
		"bbrv2":  bbrv2.New,
		"copa":   copa.New,
		"vivace": vivace.New,
	}
}

// AlgorithmByName resolves a constructor.
func AlgorithmByName(name string) (cc.Constructor, error) {
	if ctor, ok := Algorithms()[name]; ok {
		return ctor, nil
	}
	return nil, fmt.Errorf("exp: unknown algorithm %q", name)
}

// startJitter is the maximum flow start offset; it supplies the
// trial-to-trial stochasticity of the testbed.
const startJitter = 10 * time.Millisecond

// ackJitter is the per-packet ACK path delay variation used by all
// experiment runs. A perfectly deterministic drop-tail simulation exhibits
// traffic phase effects — a flow's ack-clocked arrivals can lock onto the
// queue's free slots and systematically win or lose at overflow instants —
// that real paths' delay variation washes out. A millisecond (a few packet
// service times at the experiment link speeds) is enough to break the
// lockout without perturbing RTTs meaningfully.
const ackJitter = time.Millisecond

// MixConfig describes one same-RTT mixed-distribution run: NumX flows of
// algorithm X against NumCubic flows of CUBIC.
type MixConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTT      time.Duration
	Duration time.Duration
	// Seed controls start jitter; the same seed reproduces the run.
	Seed uint64
	// X is the non-CUBIC algorithm (defaults to BBR).
	X        cc.Constructor
	NumX     int
	NumCubic int
}

// MixResult aggregates a run.
type MixResult struct {
	// PerFlowX and PerFlowCubic are class averages (0 if the class is
	// empty).
	PerFlowX     units.Rate
	PerFlowCubic units.Rate
	AggX         units.Rate
	AggCubic     units.Rate
	// Utilization is total delivered rate over capacity.
	Utilization float64
	// MeanQueueDelay is the average bottleneck queueing delay.
	MeanQueueDelay time.Duration
	// XStats and CubicStats are the raw per-flow statistics.
	XStats     []netsim.FlowStats
	CubicStats []netsim.FlowStats
}

// RunMix executes one mixed-distribution simulation.
func RunMix(cfg MixConfig) (MixResult, error) {
	if cfg.NumX+cfg.NumCubic == 0 {
		return MixResult{}, errors.New("exp: no flows")
	}
	if cfg.Duration <= 0 {
		return MixResult{}, errors.New("exp: non-positive duration")
	}
	x := cfg.X
	if x == nil {
		x = bbr.New
	}
	n, err := netsim.New(netsim.Config{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer,
		AckJitter: ackJitter, Seed: cfg.Seed,
	})
	if err != nil {
		return MixResult{}, err
	}
	r := rng.New(cfg.Seed)
	var xFlows, cFlows []*netsim.Flow
	for i := 0; i < cfg.NumX; i++ {
		f, err := n.AddFlow(netsim.FlowConfig{
			Name:      fmt.Sprintf("x%d", i),
			RTT:       cfg.RTT,
			Start:     r.Duration(startJitter),
			Algorithm: x,
		})
		if err != nil {
			return MixResult{}, err
		}
		xFlows = append(xFlows, f)
	}
	for i := 0; i < cfg.NumCubic; i++ {
		f, err := n.AddFlow(netsim.FlowConfig{
			Name:      fmt.Sprintf("cubic%d", i),
			RTT:       cfg.RTT,
			Start:     r.Duration(startJitter),
			Algorithm: cubic.New,
		})
		if err != nil {
			return MixResult{}, err
		}
		cFlows = append(cFlows, f)
	}
	n.Run(cfg.Duration)

	var res MixResult
	for _, f := range xFlows {
		st := f.Stats()
		res.XStats = append(res.XStats, st)
		res.AggX += st.Throughput
	}
	for _, f := range cFlows {
		st := f.Stats()
		res.CubicStats = append(res.CubicStats, st)
		res.AggCubic += st.Throughput
	}
	if cfg.NumX > 0 {
		res.PerFlowX = res.AggX / units.Rate(cfg.NumX)
	}
	if cfg.NumCubic > 0 {
		res.PerFlowCubic = res.AggCubic / units.Rate(cfg.NumCubic)
	}
	link := n.Link()
	res.Utilization = link.Utilization
	res.MeanQueueDelay = link.MeanQueueDelay
	return res, nil
}

// RunMixTrials averages RunMix over trials jittered repetitions, deriving
// per-trial seeds from seed up front. It runs serially and uncached; use
// Scale.RunMixTrials to fan the trials through a worker pool.
func RunMixTrials(cfg MixConfig, trials int, seed uint64) (MixResult, error) {
	return Scale{Trials: trials}.RunMixTrials(cfg, seed)
}

// RunMixTrials averages RunMix over the scale's trial count, fanning the
// trials through the scale's Pool and Cache.
func (s Scale) RunMixTrials(cfg MixConfig, seed uint64) (MixResult, error) {
	out, err := s.SweepMix(seed, 1, func(int) MixConfig { return cfg })
	if err != nil {
		return MixResult{}, err
	}
	return out[0], nil
}

// GroupConfig describes a multi-RTT run: flows come in same-RTT groups and
// each group has a number of X flows (the rest run CUBIC).
type GroupConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	Duration time.Duration
	Seed     uint64
	X        cc.Constructor
	// RTTs and Sizes describe the groups; NumX[i] of Sizes[i] flows in
	// group i run X.
	RTTs  []time.Duration
	Sizes []int
	NumX  []int
}

// GroupResult carries per-group class averages.
type GroupResult struct {
	// PerFlowX[i] and PerFlowCubic[i] are group i's class averages.
	PerFlowX     []units.Rate
	PerFlowCubic []units.Rate
}

// RunGroups executes one multi-RTT simulation.
func RunGroups(cfg GroupConfig) (GroupResult, error) {
	if len(cfg.RTTs) == 0 || len(cfg.RTTs) != len(cfg.Sizes) || len(cfg.RTTs) != len(cfg.NumX) {
		return GroupResult{}, errors.New("exp: RTTs, Sizes and NumX must be equal-length and non-empty")
	}
	x := cfg.X
	if x == nil {
		x = bbr.New
	}
	n, err := netsim.New(netsim.Config{
		Capacity: cfg.Capacity, Buffer: cfg.Buffer,
		AckJitter: ackJitter, Seed: cfg.Seed,
	})
	if err != nil {
		return GroupResult{}, err
	}
	r := rng.New(cfg.Seed)
	xFlows := make([][]*netsim.Flow, len(cfg.RTTs))
	cFlows := make([][]*netsim.Flow, len(cfg.RTTs))
	for g := range cfg.RTTs {
		if cfg.NumX[g] < 0 || cfg.NumX[g] > cfg.Sizes[g] {
			return GroupResult{}, fmt.Errorf("exp: group %d has NumX %d of %d", g, cfg.NumX[g], cfg.Sizes[g])
		}
		for i := 0; i < cfg.Sizes[g]; i++ {
			ctor := cubic.New
			if i < cfg.NumX[g] {
				ctor = x
			}
			f, err := n.AddFlow(netsim.FlowConfig{
				Name:      fmt.Sprintf("g%df%d", g, i),
				RTT:       cfg.RTTs[g],
				Start:     r.Duration(startJitter),
				Algorithm: ctor,
			})
			if err != nil {
				return GroupResult{}, err
			}
			if i < cfg.NumX[g] {
				xFlows[g] = append(xFlows[g], f)
			} else {
				cFlows[g] = append(cFlows[g], f)
			}
		}
	}
	n.Run(cfg.Duration)

	res := GroupResult{
		PerFlowX:     make([]units.Rate, len(cfg.RTTs)),
		PerFlowCubic: make([]units.Rate, len(cfg.RTTs)),
	}
	for g := range cfg.RTTs {
		for _, f := range xFlows[g] {
			res.PerFlowX[g] += f.Stats().Throughput
		}
		if len(xFlows[g]) > 0 {
			res.PerFlowX[g] /= units.Rate(len(xFlows[g]))
		}
		for _, f := range cFlows[g] {
			res.PerFlowCubic[g] += f.Stats().Throughput
		}
		if len(cFlows[g]) > 0 {
			res.PerFlowCubic[g] /= units.Rate(len(cFlows[g]))
		}
	}
	return res, nil
}
