// Package exp is the experiment harness: it assembles simulator runs into
// the measurements the paper reports, and exposes one generator per figure
// (internal/exp/figures.go) that regenerates the corresponding table or
// chart at a configurable scale.
//
// The paper's protocol is: all flows start (nearly) simultaneously, send
// for two minutes, and the average throughput over the whole run is
// reported. Trials differ through small start-time jitter, which plays the
// role the testbed's kernel/timing noise played.
//
// Every run is expressed as a scenario.Spec before it executes (see
// internal/exp/run.go): the spec's canonical key is the single identity
// shared by the result cache, the invariant auditor and failure reports.
package exp

import (
	"context"
	"fmt"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/check"
	"bbrnash/internal/netsim"
	"bbrnash/internal/runner"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// Scale selects experiment fidelity. The paper's protocol is Full; Quick
// trades precision for wall-clock time (used by benchmarks); Smoke is for
// unit tests.
type Scale struct {
	// Name identifies the scale in output.
	Name string
	// FlowDuration is how long flows send (paper: 2 minutes).
	FlowDuration time.Duration
	// Trials is how many jittered repetitions to run where the paper runs
	// ten.
	Trials int
	// SweepPoints bounds the number of x-axis points in parameter sweeps
	// (buffer sizes, flow counts). Zero means the paper's full grid.
	SweepPoints int
	// Exhaustive selects full n+1 distribution scans for empirical NE
	// searches; when false, the incentive-following walk is used.
	Exhaustive bool
	// Pool bounds how many simulations run concurrently; nil means serial.
	// Parallelism never changes results: every unit's seed is derived up
	// front and results are collected in submission order, so any worker
	// count yields byte-identical output (see internal/runner).
	Pool *runner.Pool
	// Cache memoizes simulation results under canonical scenario keys
	// across a run; nil disables memoization.
	Cache *runner.Cache
	// Journal, when non-nil, write-ahead-logs every completed simulation
	// unit (fsynced per record) so a sweep killed mid-flight resumes from
	// its completed units instead of restarting; see runner.Journal. Since
	// every unit is a deterministic function of its key, a resumed sweep's
	// output is byte-identical to an uninterrupted one. Nil disables
	// journaling.
	Journal *runner.Journal
	// Ctx cancels experiment execution: once it is done, no further
	// simulation units are dispatched, in-flight units drain, and sweeps
	// return the context's error (the CLIs wire SIGINT here). Nil means
	// context.Background().
	Ctx context.Context
	// Audit, when non-nil, validates every simulation result against
	// physical invariants (share sums, byte conservation, queue bounds,
	// NaN/Inf) and records violations under the canonical scenario key;
	// see internal/check. Nil disables auditing.
	Audit *check.Auditor
	// Trace, when non-nil, records every fresh simulation's run trace
	// (per-flow and link time series plus discrete events) under its
	// canonical scenario key; see internal/telemetry. Tracing never changes
	// a result or a cache key. Nil disables tracing.
	Trace *telemetry.Recorder
	// Backend overrides the execution engine for every spec the scale
	// runs: scenario.BackendPacket or scenario.BackendFluid. Empty leaves
	// each spec's own backend in force (the packet default). The backend
	// is part of every canonical key, so switching it re-keys — never
	// collides with — existing cached results.
	Backend string
}

// ctx resolves the scale's context, defaulting to Background.
func (s Scale) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Predefined scales. All three use the paper's two-minute flows: BBR's
// bandwidth share converges over multiples of its ten-second ProbeRTT
// cycle, so shorter flows systematically understate BBR at every buffer
// depth. The scales differ in trial counts, sweep density and NE search
// strategy instead.
var (
	Full  = Scale{Name: "full", FlowDuration: 2 * time.Minute, Trials: 10, Exhaustive: true}
	Quick = Scale{Name: "quick", FlowDuration: 2 * time.Minute, Trials: 2, SweepPoints: 6}
	Smoke = Scale{Name: "smoke", FlowDuration: 2 * time.Minute, Trials: 1, SweepPoints: 3}
)

// ScaleByName resolves a scale name from the command line.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return Full, nil
	case "quick":
		return Quick, nil
	case "smoke":
		return Smoke, nil
	default:
		return Scale{}, fmt.Errorf("exp: unknown scale %q (want full, quick or smoke)", name)
	}
}

// thin reduces a sweep grid to at most s.SweepPoints values, always keeping
// the first and last.
func (s Scale) thin(xs []float64) []float64 {
	if s.SweepPoints <= 0 || len(xs) <= s.SweepPoints {
		return xs
	}
	if s.SweepPoints == 1 {
		// A single-point budget keeps the first point; the i*(n-1)/(p-1)
		// spacing below would divide by zero.
		return xs[:1:1]
	}
	out := make([]float64, 0, s.SweepPoints)
	n := len(xs)
	for i := 0; i < s.SweepPoints; i++ {
		idx := i * (n - 1) / (s.SweepPoints - 1)
		out = append(out, xs[idx])
	}
	return out
}

// MixConfig describes one same-RTT mixed-distribution run: NumX flows of
// algorithm X against NumCubic flows of CUBIC.
type MixConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	RTT      time.Duration
	Duration time.Duration
	// Seed controls start jitter; the same seed reproduces the run.
	Seed uint64
	// X is the non-CUBIC algorithm (defaults to BBR).
	X        cc.Constructor
	NumX     int
	NumCubic int
	// Backend selects the execution engine (see scenario.Backends); empty
	// means the packet simulator.
	Backend string
}

// MixResult aggregates a run.
type MixResult struct {
	// PerFlowX and PerFlowCubic are class averages (0 if the class is
	// empty).
	PerFlowX     units.Rate
	PerFlowCubic units.Rate
	AggX         units.Rate
	AggCubic     units.Rate
	// Utilization is total delivered rate over capacity.
	Utilization float64
	// MeanQueueDelay is the average bottleneck queueing delay.
	MeanQueueDelay time.Duration
	// XStats and CubicStats are the raw per-flow statistics.
	XStats     []netsim.FlowStats
	CubicStats []netsim.FlowStats
}

// RunMix executes one mixed-distribution simulation: the config is
// compiled to its scenario.Spec and run through the shared spec path.
func RunMix(cfg MixConfig) (MixResult, error) {
	sp, override, _ := cfg.spec()
	res, err := runSpecOverride(context.Background(), sp, override, nil)
	if err != nil {
		return MixResult{}, err
	}
	return mixView(res), nil
}

// RunMixTrials averages RunMix over trials jittered repetitions, deriving
// per-trial seeds from seed up front. It runs serially and uncached; use
// Scale.RunMixTrials to fan the trials through a worker pool.
func RunMixTrials(cfg MixConfig, trials int, seed uint64) (MixResult, error) {
	return Scale{Trials: trials}.RunMixTrials(cfg, seed)
}

// RunMixTrials averages RunMix over the scale's trial count, fanning the
// trials through the scale's Pool and Cache.
func (s Scale) RunMixTrials(cfg MixConfig, seed uint64) (MixResult, error) {
	out, err := s.SweepMix(seed, 1, func(int) MixConfig { return cfg })
	if err != nil {
		return MixResult{}, err
	}
	return out[0], nil
}

// GroupConfig describes a multi-RTT run: flows come in same-RTT groups and
// each group has a number of X flows (the rest run CUBIC).
type GroupConfig struct {
	Capacity units.Rate
	Buffer   units.Bytes
	Duration time.Duration
	Seed     uint64
	X        cc.Constructor
	// RTTs and Sizes describe the groups; NumX[i] of Sizes[i] flows in
	// group i run X.
	RTTs  []time.Duration
	Sizes []int
	NumX  []int
	// Backend selects the execution engine (see scenario.Backends); empty
	// means the packet simulator.
	Backend string
}

// GroupResult carries per-group class averages.
type GroupResult struct {
	// PerFlowX[i] and PerFlowCubic[i] are group i's class averages.
	PerFlowX     []units.Rate
	PerFlowCubic []units.Rate
}

// RunGroups executes one multi-RTT simulation: the config is compiled to
// its scenario.Spec (two spec groups per RTT group) and run through the
// shared spec path.
func RunGroups(cfg GroupConfig) (GroupResult, error) {
	sp, override, _, err := cfg.spec()
	if err != nil {
		return GroupResult{}, err
	}
	res, err := runSpecOverride(context.Background(), sp, override, nil)
	if err != nil {
		return GroupResult{}, err
	}
	return groupView(len(cfg.RTTs), res), nil
}
