package exp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bbrnash/internal/core"
	"bbrnash/internal/numeric"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// Cross-validation of the two execution backends. The fluid model is only
// trustworthy where it agrees with the packet engine, and the places it
// does not are themselves findings — the fluid equations are the paper's
// steady-state idealization, so a divergence localizes where that
// idealization breaks (shallow buffers where loss dynamics dominate,
// regimes where ProbeRTT cannot drain the queue, and so on). CrossValidate
// therefore runs both backends over the paper's figure grid and emits a
// machine-readable report; divergence sets a flag and is never an error.

// CrossValSchemaVersion identifies the report layout for downstream
// tooling; bump it when the JSON shape changes.
const CrossValSchemaVersion = 1

// CrossValConfig describes one cross-validation sweep: a buffer-depth ×
// flow-mix grid at a single capacity and RTT, every point run on both
// backends.
type CrossValConfig struct {
	Capacity units.Rate
	RTT      time.Duration
	// Duration is each simulation's length (the paper's two minutes by
	// default; verify.sh's smoke uses seconds).
	Duration time.Duration
	Seed     uint64
	// BufferBDPs are the buffer depths in BDP multiples (default: the
	// paper's figure grid, 1–50 in steps of 2 — pinned by the Arange
	// regression tests).
	BufferBDPs []float64
	// Mixes are the (NumBBR, NumCubic) flow mixes to run at every depth.
	Mixes [][2]int
	// Threshold is the relative throughput error above which a point is
	// flagged as diverged (default 0.25).
	Threshold float64
	// Scale supplies execution machinery: Pool, Cache, Journal, Ctx,
	// Audit, Trials. The scale's Backend override is ignored — the whole
	// point is to run both.
	Scale Scale
}

func (c CrossValConfig) withDefaults() CrossValConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	if len(c.BufferBDPs) == 0 {
		// The paper's Fig 1 buffer grid (see figures.go and the Arange
		// regression tests pinning its size).
		c.BufferBDPs = numeric.Arange(1, 50, 2)
	}
	if len(c.Mixes) == 0 {
		c.Mixes = [][2]int{{1, 1}, {2, 2}, {4, 4}}
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	return c
}

// CrossValPoint is one grid point's paired measurement. Rates are per-flow
// class averages in Mbps (the figures' unit); relative errors are
// |fluid−packet|/packet against the packet engine as reference, zero when
// the class is empty.
type CrossValPoint struct {
	BufferBDP float64 `json:"buffer_bdp"`
	NumBBR    int     `json:"num_bbr"`
	NumCubic  int     `json:"num_cubic"`
	// Regime is the model-validity classification of the scenario
	// (internal/core): "valid", "shallow(<1BDP)" or "ultradeep".
	Regime string `json:"regime"`

	PacketBBRMbps   float64 `json:"packet_bbr_mbps"`
	FluidBBRMbps    float64 `json:"fluid_bbr_mbps"`
	PacketCubicMbps float64 `json:"packet_cubic_mbps"`
	FluidCubicMbps  float64 `json:"fluid_cubic_mbps"`

	RelErrBBR   float64 `json:"rel_err_bbr"`
	RelErrCubic float64 `json:"rel_err_cubic"`
	// Diverged marks a relative error above the configured threshold — a
	// finding about where the fluid idealization breaks, not a failure.
	Diverged bool `json:"diverged"`
}

// CrossValSummary aggregates the grid.
type CrossValSummary struct {
	Points    int     `json:"points"`
	Diverged  int     `json:"diverged"`
	MaxRelErr float64 `json:"max_rel_err"`
	// MeanRelErr averages the per-point maximum class error.
	MeanRelErr float64 `json:"mean_rel_err"`
	// WorstPoint names the point with the largest error, as
	// "buf=<bdp> bbr=<n> cubic=<n>".
	WorstPoint string `json:"worst_point,omitempty"`
}

// CrossValReport is the machine-readable divergence report.
type CrossValReport struct {
	SchemaVersion int     `json:"schema_version"`
	CapacityMbps  float64 `json:"capacity_mbps"`
	RTTMs         float64 `json:"rtt_ms"`
	DurationS     float64 `json:"duration_s"`
	Threshold     float64 `json:"threshold"`
	// KeyVersion records the canonical-encoding generation the results
	// were produced (and cached) under.
	KeyVersion string          `json:"key_version"`
	Points     []CrossValPoint `json:"points"`
	Summary    CrossValSummary `json:"summary"`
}

// relErr is the relative error of got against a reference, zero when the
// reference is zero (empty class or starved flow — a starved reference
// would make every finite error infinite and drown the signal).
func relErr(ref, got float64) float64 {
	if ref <= 0 {
		return 0
	}
	d := got - ref
	if d < 0 {
		d = -d
	}
	return d / ref
}

// CrossValidate runs every (buffer, mix) grid point on both backends and
// reports per-point divergence. Point×backend units fan out through the
// scale's pool with results collected in submission order, so the report
// is byte-identical at any worker count; each unit goes through the cached
// spec path, so a warmed cache (or a prior figure run) satisfies the
// packet half for free. Trials average exactly like figure sweeps.
func CrossValidate(cfg CrossValConfig) (CrossValReport, error) {
	cfg = cfg.withDefaults()
	s := cfg.Scale
	rep := CrossValReport{
		SchemaVersion: CrossValSchemaVersion,
		CapacityMbps:  float64(cfg.Capacity) / 1e6,
		RTTMs:         float64(cfg.RTT) / float64(time.Millisecond),
		DurationS:     cfg.Duration.Seconds(),
		Threshold:     cfg.Threshold,
		KeyVersion:    scenario.KeyVersion,
	}

	type cell struct {
		buf float64
		mix [2]int
	}
	var grid []cell
	for _, b := range cfg.BufferBDPs {
		for _, m := range cfg.Mixes {
			grid = append(grid, cell{b, m})
		}
	}

	specAt := func(i int, backend string) scenario.Spec {
		c := grid[i/2]
		sp := scenario.Mix("bbr", c.mix[0], c.mix[1], cfg.Capacity,
			units.BufferBytes(cfg.Capacity, cfg.RTT, c.buf), cfg.RTT, cfg.Duration)
		sp.Backend = backend
		return sp
	}
	// One flat unit list, packet and fluid interleaved per cell, run
	// through the scale's sweep machinery (trial averaging, cache,
	// journal, audit, watchdog).
	backends := [2]string{scenario.BackendPacket, scenario.BackendFluid}
	pts, err := s.Sweep(cfg.Seed, 2*len(grid), func(i int) scenario.Spec {
		return specAt(i, backends[i%2])
	})
	if err != nil {
		return CrossValReport{}, err
	}

	var errSum float64
	for i, c := range grid {
		packet, fl := pts[2*i], pts[2*i+1]
		sc := core.Scenario{
			Capacity: cfg.Capacity,
			Buffer:   units.BufferBytes(cfg.Capacity, cfg.RTT, c.buf),
			RTT:      cfg.RTT,
			NumBBR:   c.mix[0],
			NumCubic: c.mix[1],
		}
		p := CrossValPoint{
			BufferBDP:       c.buf,
			NumBBR:          c.mix[0],
			NumCubic:        c.mix[1],
			Regime:          sc.Regime().String(),
			PacketBBRMbps:   float64(packet.PerFlow[0]) / 1e6,
			FluidBBRMbps:    float64(fl.PerFlow[0]) / 1e6,
			PacketCubicMbps: float64(packet.PerFlow[1]) / 1e6,
			FluidCubicMbps:  float64(fl.PerFlow[1]) / 1e6,
		}
		p.RelErrBBR = relErr(p.PacketBBRMbps, p.FluidBBRMbps)
		p.RelErrCubic = relErr(p.PacketCubicMbps, p.FluidCubicMbps)
		worst := math.Max(p.RelErrBBR, p.RelErrCubic)
		p.Diverged = worst > cfg.Threshold
		rep.Points = append(rep.Points, p)

		errSum += worst
		if worst > rep.Summary.MaxRelErr {
			rep.Summary.MaxRelErr = worst
			rep.Summary.WorstPoint = fmt.Sprintf("buf=%g bbr=%d cubic=%d", c.buf, c.mix[0], c.mix[1])
		}
		if p.Diverged {
			rep.Summary.Diverged++
		}
	}
	rep.Summary.Points = len(grid)
	if len(grid) > 0 {
		rep.Summary.MeanRelErr = errSum / float64(len(grid))
	}
	// Stable presentation order regardless of grid construction: by
	// buffer, then mix.
	sort.SliceStable(rep.Points, func(i, j int) bool {
		a, b := rep.Points[i], rep.Points[j]
		if a.BufferBDP != b.BufferBDP {
			return a.BufferBDP < b.BufferBDP
		}
		if a.NumBBR != b.NumBBR {
			return a.NumBBR < b.NumBBR
		}
		return a.NumCubic < b.NumCubic
	})
	return rep, nil
}
