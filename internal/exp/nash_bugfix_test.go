package exp

import (
	"sync"
	"testing"
	"time"

	"bbrnash/internal/game"
	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// fluidNE is a cheap NE search config: payoff simulations run on the fluid
// backend (a 2-minute payoff sim costs ~20 ms of wall time there).
func fluidNE(n int, seed uint64) NESearchConfig {
	return NESearchConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		N:        n,
		Duration: 2 * time.Minute,
		Seed:     seed,
		Backend:  "fluid",
	}
}

// The walk core must surface FirstEquilibrium's non-convergence instead of
// discarding it (the pre-fix code dropped the ok return and reported the
// stopping point's ±2 neighbourhood as the answer). With memoized payoffs
// the binary line-walk cannot genuinely cycle — an up-move from k and a
// down-move to k would need contradictory comparisons — so the reachable
// non-convergence arm is step-budget exhaustion; cycling payoff functions
// themselves are covered by internal/game's walk tests.
func TestWalkNeighborhoodSurfacesNonConvergence(t *testing.T) {
	g := &game.SymmetricBinary{
		N:           50,
		PayoffX:     func(k int) float64 { return 100 }, // always switch to X
		PayoffCubic: func(k int) float64 { return 0 },
	}
	ks, converged := walkNeighborhood(g, 50, 0, 0, 5)
	if converged {
		t.Fatal("a walk cut off after 5 of 50 required steps claimed convergence")
	}
	// The ±2 neighbourhood of the stopping point (k=5) holds no
	// equilibrium: a non-converged walk must not smuggle one in.
	if len(ks) != 0 {
		t.Errorf("non-converged walk reported equilibria %v", ks)
	}

	// A walk that does reach the equilibrium reports convergence.
	g2 := &game.SymmetricBinary{
		N:           10,
		PayoffX:     func(k int) float64 { return 40 / float64(k) },
		PayoffCubic: func(k int) float64 { return 60 / float64(10-k+1) },
	}
	ks, converged = walkNeighborhood(g2, 10, 5, 0, 30)
	if !converged {
		t.Fatal("converging walk reported non-convergence")
	}
	if len(ks) == 0 {
		t.Error("converged walk found no equilibria in its neighbourhood")
	}
}

// Both search modes of a healthy FindNE must report Converged.
func TestFindNEReportsConverged(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, exhaustive := range []bool{false, true} {
		cfg := fluidNE(4, 7)
		cfg.Exhaustive = exhaustive
		res, err := FindNE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("exhaustive=%v: search did not report convergence", exhaustive)
		}
		if len(res.EquilibriaX) == 0 {
			t.Errorf("exhaustive=%v: no equilibria found", exhaustive)
		}
	}
}

// CacheHits must be attributed per-search. Pre-fix it was a delta of the
// cache's global hit counter, so concurrent searches sharing one cache
// counted each other's hits. An exhaustive FindNE over a fully warmed
// cache performs exactly 3N+1 cache lookups — N+1 building the payoff
// table plus 2N re-looking up distributions during the equilibrium
// enumeration (payoffX at 1..N, payoffCubic at 0..N−1, one lookup per
// fresh game-memo entry) — so each concurrent search must report exactly
// that, not the sum over its neighbours' windows.
func TestFindNECacheHitsPerSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 4
	cache := runner.NewCache()
	cfg := fluidNE(n, 11)
	cfg.Exhaustive = true
	cfg.Cache = cache

	warm, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulations != n+1 {
		t.Fatalf("warm-up ran %d simulations, want %d", warm.Simulations, n+1)
	}
	// The warm-up itself re-looks distributions up during enumeration.
	if warm.CacheHits != 2*n {
		t.Fatalf("warm-up CacheHits = %d, want %d", warm.CacheHits, 2*n)
	}

	const searchers = 4
	var wg sync.WaitGroup
	results := make([]NESearchResult, searchers)
	errs := make([]error, searchers)
	start := make(chan struct{})
	for i := 0; i < searchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = FindNE(cfg)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < searchers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Simulations != 0 {
			t.Errorf("search %d re-simulated %d warmed distributions", i, results[i].Simulations)
		}
		if results[i].CacheHits != 3*n+1 {
			t.Errorf("search %d CacheHits = %d, want %d (cross-search attribution)",
				i, results[i].CacheHits, 3*n+1)
		}
	}
}
