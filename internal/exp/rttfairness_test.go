package exp

import (
	"testing"
	"time"

	"bbrnash/internal/units"
)

// §4.5's mechanism, CUBIC side: among CUBIC flows sharing a bottleneck,
// the short-RTT flow gets more bandwidth (quicker feedback, faster
// probing).
func TestCubicFavorsShortRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulation")
	}
	// A shallow buffer keeps queueing delay small relative to the base
	// RTT spread; in very deep buffers the shared queue dominates both
	// flows' effective RTTs and the asymmetry washes out.
	res, err := RunGroups(GroupConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 10*time.Millisecond, 2),
		Duration: 2 * time.Minute,
		RTTs:     []time.Duration{10 * time.Millisecond, 50 * time.Millisecond},
		Sizes:    []int{2, 2},
		NumX:     []int{0, 0}, // all CUBIC
	})
	if err != nil {
		t.Fatal(err)
	}
	short, long := float64(res.PerFlowCubic[0]), float64(res.PerFlowCubic[1])
	if short <= long {
		t.Errorf("short-RTT CUBIC (%.2e) did not beat long-RTT CUBIC (%.2e)", short, long)
	}
}

// §4.5's mechanism, BBR side: among BBR flows, the long-RTT flow keeps a
// buffer share proportional to its RTT and so gets more bandwidth.
func TestBBRFavorsLongRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("2-minute simulation")
	}
	res, err := RunGroups(GroupConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 10*time.Millisecond, 20),
		Duration: 2 * time.Minute,
		RTTs:     []time.Duration{10 * time.Millisecond, 50 * time.Millisecond},
		Sizes:    []int{2, 2},
		NumX:     []int{2, 2}, // all BBR
	})
	if err != nil {
		t.Fatal(err)
	}
	short, long := float64(res.PerFlowX[0]), float64(res.PerFlowX[1])
	if long <= short {
		t.Errorf("long-RTT BBR (%.2e) did not beat short-RTT BBR (%.2e)", long, short)
	}
}
