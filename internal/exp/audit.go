package exp

import (
	"strings"

	"bbrnash/internal/check"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/check: it derives each
// scenario's physical bounds from its spec and audits every SpecResult as
// it is produced (fresh or replayed from the cache — a store written by an
// older, buggier build should not escape the audit). Violations are
// recorded under the spec's canonical key, never fatal: a strict run
// completes its sweep and reports all of them at once.
//
// Topology-aware scenarios are audited per layer: each group's flows
// against its own path's bounds (queue occupancy against the sum of the
// path's buffers, mean RTT against the sum of per-link drain delays), each
// link's share sum against the flows that traverse it, and each link's own
// statistics — reverse ACK twins included — against its capacity and
// buffer. A legacy single-bottleneck spec reduces exactly to the old
// single-link bounds.

// linkLimits derives the audit bounds of one link.
//
// Fault injection reshapes the bounds. A capacity flap lowers the drain
// floor to Capacity*(1-depth) — the delay bound must use it — and caps what
// the link can deliver at its time-averaged rate; that mean gets one
// segment of slack per flap phase boundary, because a packet in service
// when the link flaps down completes at the rate it started with.
func linkLimits(sp scenario.Spec, l scenario.Link) check.Limits {
	lim := check.Limits{
		Capacity: l.Capacity,
		Buffer:   l.Buffer,
	}
	f := l.Faults
	if f.FlapDepth > 0 && f.FlapPeriod > 0 && sp.Duration > 0 {
		lim.MinCapacity = f.MinCapacity(l.Capacity)
		mean := f.MeanCapacityOver(l.Capacity, sp.Duration)
		boundaries := units.Bytes(sp.Duration/(f.FlapPeriod/2)) + 1
		mean += units.RateOver(boundaries*sp.MSS, sp.Duration)
		if mean > l.Capacity {
			mean = l.Capacity
		}
		lim.MeanCapacity = mean
	}
	return lim
}

// groupLimits derives the audit bounds of one group's flows from the links
// its path traverses. The conservation slack is one pipe-full: the path's
// buffers plus the bandwidth-delay product of its narrowest link at the
// longest RTT (jitter included), the most a flow can have in flight when a
// measurement window opens; burst episodes on any path link widen it by
// one burst's worth of segments. The RTT bound sums the drain delay of
// every queue on the path — forward links at their slowest flapped rate,
// reverse ACK queues at theirs — and is disabled under ACK-loss faults,
// whose modeled retransmission delays compound without bound.
func groupLimits(sp scenario.Spec, gi int) check.Limits {
	lim := check.Limits{
		Buffer: sp.PathBufferSum(gi),
	}
	lim.Pipe = lim.Buffer + units.BDP(sp.PathMinCapacity(gi), sp.MaxRTT()+sp.StartJitter+sp.AckJitter)
	rttBound := sp.Groups[gi].RTT + sp.AckJitter + sp.PathQueueDelayBound(gi)
	for _, l := range sp.PathLinks(gi) {
		if l.Faults.BurstLen > 0 {
			lim.Pipe += units.Bytes(l.Faults.BurstLen) * sp.MSS
		}
		if l.Faults.AckLossRate > 0 {
			rttBound = 0
		}
	}
	if rttBound > 0 {
		lim.RTTBound = rttBound
	}
	return lim
}

// revLimits derives the audit bounds of a reverse ACK twin: its own
// capacity and buffer, no faults (an ACK-loss fault drops before the
// queue, and reverse links do not flap). The drain-delay bound inside
// check is stated in MSS terms and so is merely generous for a queue
// serving AckBytes-sized packets.
func revLimits(l scenario.Link) check.Limits {
	return check.Limits{Capacity: l.RevCapacity, Buffer: l.RevBuffer}
}

// limitsForLink resolves audit bounds for a named per-link statistics
// entry, handling the "~rev" suffix reverse twins carry. Unknown names
// (a cached result whose spec has since drifted) are skipped rather than
// mis-audited.
func limitsForLink(sp scenario.Spec, name string) (check.Limits, bool) {
	if base, isRev := strings.CutSuffix(name, "~rev"); isRev {
		l, ok := sp.LinkByName(base)
		if !ok || !l.HasReverse() {
			return check.Limits{}, false
		}
		return revLimits(l), true
	}
	l, ok := sp.LinkByName(name)
	if !ok {
		return check.Limits{}, false
	}
	return linkLimits(sp, l), true
}

// auditSpec validates one SpecResult against its scenario's invariants:
// per-flow non-negativity, byte conservation and the path delay bound;
// per-link share sums over the flows that traverse each link; and every
// link's own statistics.
func auditSpec(a *check.Auditor, key string, sp scenario.Spec, res SpecResult) {
	if !a.Enabled() {
		return
	}
	sp = sp.WithDefaults()
	for gi := range sp.Groups {
		a.Record(check.Flows(key, groupLimits(sp, gi), res.group(gi), nil)...)
	}
	for _, l := range sp.Topology() {
		a.Record(check.ShareSum(key, shareLimits(sp, l), linkAggregate(sp, l.Name, res))...)
	}
	if len(res.Links) == 0 {
		// Older cached results carry only the first link's statistics.
		lim := linkLimits(sp, sp.Topology()[0])
		link := res.Link
		a.Record(check.Link(key, lim, &link)...)
		return
	}
	for i := range res.Links {
		link := res.Links[i]
		if lim, ok := limitsForLink(sp, link.Name); ok {
			a.Record(check.Link(key, lim, &link)...)
		}
	}
}

// linkAggregate sums the measured throughput of every flow whose path
// traverses the named link.
func linkAggregate(sp scenario.Spec, name string, res SpecResult) units.Rate {
	var agg units.Rate
	for gi := range sp.Groups {
		if pathContains(sp.PathOf(gi), name) {
			agg += aggRate(res.group(gi))
		}
	}
	return agg
}

// shareLimits derives the share-sum bound for one link. Flow throughput is
// measured where a flow's bytes leave its *last* link, so against an
// upstream link the sum carries a transient: bytes already sitting in
// downstream queues when a flow's measurement window opens cross the final
// link during the window without crossing this one. The mean is widened by
// the largest such backlog spread over the shortest window of any counted
// flow; on a legacy single-bottleneck spec the slack is exactly zero and
// the bound reduces to the old capacity check.
func shareLimits(sp scenario.Spec, l scenario.Link) check.Limits {
	lim := linkLimits(sp, l)
	var down units.Bytes
	window := sp.Duration
	for gi, g := range sp.Groups {
		path := sp.PathOf(gi)
		idx := -1
		for i, name := range path {
			if name == l.Name {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		var d units.Bytes
		for _, dn := range path[idx+1:] {
			if dl, ok := sp.LinkByName(dn); ok {
				d += dl.Buffer
			}
		}
		if d > down {
			down = d
		}
		if w := sp.Duration - g.Start - sp.StartJitter; w < window {
			window = w
		}
	}
	if down > 0 {
		if window <= 0 {
			// A flow may spend its whole life draining a prior backlog;
			// nothing meaningful to bound.
			lim.Capacity = 0
			return lim
		}
		mean := lim.MeanCapacity
		if mean == 0 {
			mean = lim.Capacity
		}
		lim.MeanCapacity = mean + units.RateOver(down, window)
	}
	return lim
}

// pathContains reports whether a path traverses the named link.
func pathContains(path []string, name string) bool {
	for _, p := range path {
		if p == name {
			return true
		}
	}
	return false
}
