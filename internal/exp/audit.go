package exp

import (
	"fmt"
	"time"

	"bbrnash/internal/check"
	"bbrnash/internal/netsim"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/check: it derives each
// scenario's physical bounds from its configuration and audits every
// MixResult/GroupResult as it is produced (fresh or replayed from the
// cache — a store written by an older, buggier build should not escape the
// audit). Violations are recorded, never fatal: a strict run completes its
// sweep and reports all of them at once.

// mixLimits derives the audit bounds of one mixed-distribution run. The
// conservation slack is one pipe-full: the buffer plus the path's
// bandwidth-delay product (jitter included), the most a flow can have in
// flight when a measurement window opens.
func mixLimits(cfg MixConfig) check.Limits {
	return check.Limits{
		Capacity: cfg.Capacity,
		Buffer:   cfg.Buffer,
		Pipe:     cfg.Buffer + units.BDP(cfg.Capacity, cfg.RTT+startJitter+ackJitter),
	}
}

// auditMix validates one MixResult against its scenario's invariants.
func auditMix(a *check.Auditor, key string, cfg MixConfig, res MixResult) {
	if !a.Enabled() {
		return
	}
	lim := mixLimits(cfg)
	stats := make([]netsim.FlowStats, 0, len(res.XStats)+len(res.CubicStats))
	stats = append(append(stats, res.XStats...), res.CubicStats...)
	link := netsim.LinkStats{Utilization: res.Utilization, MeanQueueDelay: res.MeanQueueDelay}
	a.Record(check.Flows(key, lim, stats, &link)...)
	a.Record(check.Rate(key, "PerFlowX", res.PerFlowX)...)
	a.Record(check.Rate(key, "PerFlowCubic", res.PerFlowCubic)...)
	a.Record(check.ShareSum(key, lim, res.AggX+res.AggCubic)...)
}

// auditGroups validates one GroupResult against its scenario's invariants:
// per-group class averages must be finite and non-negative, and weighted
// by their class sizes they must fit the link.
func auditGroups(a *check.Auditor, key string, cfg GroupConfig, res GroupResult) {
	if !a.Enabled() {
		return
	}
	var maxRTT time.Duration
	for _, rtt := range cfg.RTTs {
		if rtt > maxRTT {
			maxRTT = rtt
		}
	}
	lim := check.Limits{
		Capacity: cfg.Capacity,
		Buffer:   cfg.Buffer,
		Pipe:     cfg.Buffer + units.BDP(cfg.Capacity, maxRTT+startJitter+ackJitter),
	}
	var agg units.Rate
	for i := range res.PerFlowX {
		a.Record(check.Rate(key, fmt.Sprintf("group %d PerFlowX", i), res.PerFlowX[i])...)
		a.Record(check.Rate(key, fmt.Sprintf("group %d PerFlowCubic", i), res.PerFlowCubic[i])...)
		if i < len(cfg.NumX) && i < len(cfg.Sizes) {
			agg += res.PerFlowX[i]*units.Rate(cfg.NumX[i]) +
				res.PerFlowCubic[i]*units.Rate(cfg.Sizes[i]-cfg.NumX[i])
		}
	}
	a.Record(check.ShareSum(key, lim, agg)...)
}
