package exp

import (
	"bbrnash/internal/check"
	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/check: it derives each
// scenario's physical bounds from its spec and audits every SpecResult as
// it is produced (fresh or replayed from the cache — a store written by an
// older, buggier build should not escape the audit). Violations are
// recorded under the spec's canonical key, never fatal: a strict run
// completes its sweep and reports all of them at once.

// specLimits derives the audit bounds of one scenario. The conservation
// slack is one pipe-full: the buffer plus the path's bandwidth-delay
// product at the longest RTT (jitter included), the most a flow can have
// in flight when a measurement window opens.
func specLimits(sp scenario.Spec) check.Limits {
	sp = sp.WithDefaults()
	return check.Limits{
		Capacity: sp.Capacity,
		Buffer:   sp.Buffer,
		Pipe:     sp.Buffer + units.BDP(sp.Capacity, sp.MaxRTT()+sp.StartJitter+sp.AckJitter),
	}
}

// auditSpec validates one SpecResult against its scenario's invariants:
// per-flow non-negativity and byte conservation, the share sum against
// capacity, queue occupancy against the buffer, and the link statistics.
func auditSpec(a *check.Auditor, key string, sp scenario.Spec, res SpecResult) {
	if !a.Enabled() {
		return
	}
	lim := specLimits(sp)
	var stats []netsim.FlowStats
	for _, g := range res.Groups {
		stats = append(stats, g...)
	}
	link := res.Link
	a.Record(check.Flows(key, lim, stats, &link)...)
}
