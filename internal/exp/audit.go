package exp

import (
	"bbrnash/internal/check"
	"bbrnash/internal/netsim"
	"bbrnash/internal/scenario"
	"bbrnash/internal/units"
)

// This file is the harness's boundary with internal/check: it derives each
// scenario's physical bounds from its spec and audits every SpecResult as
// it is produced (fresh or replayed from the cache — a store written by an
// older, buggier build should not escape the audit). Violations are
// recorded under the spec's canonical key, never fatal: a strict run
// completes its sweep and reports all of them at once.

// specLimits derives the audit bounds of one scenario. The conservation
// slack is one pipe-full: the buffer plus the path's bandwidth-delay
// product at the longest RTT (jitter included), the most a flow can have
// in flight when a measurement window opens.
//
// Fault injection reshapes the bounds. A capacity flap lowers the drain
// floor to Capacity*(1-depth) — the delay bound must use it — and caps what
// the link can deliver at its time-averaged rate; that mean gets one
// segment of slack per flap phase boundary, because a packet in service
// when the link flaps down completes at the rate it started with. Burst
// episodes widen the conservation slack by one burst's worth of segments.
func specLimits(sp scenario.Spec) check.Limits {
	sp = sp.WithDefaults()
	lim := check.Limits{
		Capacity: sp.Capacity,
		Buffer:   sp.Buffer,
		Pipe:     sp.Buffer + units.BDP(sp.Capacity, sp.MaxRTT()+sp.StartJitter+sp.AckJitter),
	}
	f := sp.Faults
	if f.FlapDepth > 0 && f.FlapPeriod > 0 && sp.Duration > 0 {
		lim.MinCapacity = f.MinCapacity(sp.Capacity)
		mean := f.MeanCapacityOver(sp.Capacity, sp.Duration)
		boundaries := units.Bytes(sp.Duration/(f.FlapPeriod/2)) + 1
		mean += units.RateOver(boundaries*sp.MSS, sp.Duration)
		if mean > sp.Capacity {
			mean = sp.Capacity
		}
		lim.MeanCapacity = mean
	}
	if f.BurstLen > 0 {
		lim.Pipe += units.Bytes(f.BurstLen) * sp.MSS
	}
	return lim
}

// auditSpec validates one SpecResult against its scenario's invariants:
// per-flow non-negativity and byte conservation, the share sum against
// capacity, queue occupancy against the buffer, and the link statistics.
func auditSpec(a *check.Auditor, key string, sp scenario.Spec, res SpecResult) {
	if !a.Enabled() {
		return
	}
	lim := specLimits(sp)
	var stats []netsim.FlowStats
	for _, g := range res.Groups {
		stats = append(stats, g...)
	}
	link := res.Link
	a.Record(check.Flows(key, lim, stats, &link)...)
}
