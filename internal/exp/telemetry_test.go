package exp

import (
	"context"
	"os"
	"testing"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
	"bbrnash/internal/telemetry"
	"bbrnash/internal/units"
)

// constantWindow is a minimal unregistered algorithm, so a MixConfig using
// it compiles to an override (non-canonical) run.
type constantWindow struct{ cwnd units.Bytes }

func (constantWindow) Name() string                    { return "const" }
func (constantWindow) OnAck(cc.AckEvent)               {}
func (constantWindow) OnLoss(cc.LossEvent)             {}
func (constantWindow) OnSent(cc.SendEvent)             {}
func (a constantWindow) CongestionWindow() units.Bytes { return a.cwnd }
func (constantWindow) PacingRate() units.Rate          { return 0 }

func constantWindowCtor(cwnd units.Bytes) cc.Constructor {
	return func(cc.Params) cc.Algorithm { return constantWindow{cwnd: cwnd} }
}

func traceTestSpec() scenario.Spec {
	capacity := 20 * units.Mbps
	rtt := 20 * time.Millisecond
	sp := scenario.Mix("bbr", 1, 1, capacity, units.BufferBytes(capacity, rtt, 2), rtt, 3*time.Second)
	sp.Seed = 11
	return sp
}

// Tracing must not perturb the spec's identity: a traced and an untraced
// run of one spec share a cache entry in both directions, and a hit (the
// result was not re-simulated) skips re-tracing.
func TestTracedAndUntracedRunsShareCacheEntry(t *testing.T) {
	sp := traceTestSpec()
	ctx := context.Background()

	// Untraced first: the traced rerun must hit and write no trace.
	cache := runner.NewCache()
	if _, hit, err := RunSpecCached(ctx, sp, cache, nil, nil); err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v", hit, err)
	}
	rec, err := telemetry.NewRecorder(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := RunSpecCachedTraced(ctx, sp, cache, nil, nil, rec); err != nil || !hit {
		t.Fatalf("traced rerun: hit=%v err=%v", hit, err)
	}
	if rec.Traces() != 0 {
		t.Errorf("cache hit wrote %d traces; hits must skip re-tracing", rec.Traces())
	}

	// Traced first: the trace is written and the untraced rerun hits.
	cache = runner.NewCache()
	rec, err = telemetry.NewRecorder(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := RunSpecCachedTraced(ctx, sp, cache, nil, nil, rec); err != nil || hit {
		t.Fatalf("traced first run: hit=%v err=%v", hit, err)
	}
	if rec.Traces() != 1 {
		t.Fatalf("traced first run wrote %d traces, want 1", rec.Traces())
	}
	if _, hit, err := RunSpecCached(ctx, sp, cache, nil, nil); err != nil || !hit {
		t.Fatalf("untraced rerun: hit=%v err=%v", hit, err)
	}
}

// A journal hit serves the result without re-simulating, so it must also
// skip tracing — the trace from the original run is already on disk
// (written before the journal record, so no journaled unit lacks one).
func TestJournalHitSkipsRetracing(t *testing.T) {
	sp := traceTestSpec()
	ctx := context.Background()
	dir := t.TempDir()
	jpath := dir + "/journal.jsonl"

	journal, err := runner.OpenJournal(jpath, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := telemetry.NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSpecCachedTraced(ctx, sp, runner.NewCache(), journal, nil, rec); err != nil {
		t.Fatal(err)
	}
	journal.Close()
	jp, _ := telemetry.TracePaths(dir, sp.Key())
	if _, err := os.Stat(jp); err != nil {
		t.Fatalf("journaled unit has no trace on disk: %v", err)
	}

	// Resume with the same journal and a fresh recorder: the journal serves
	// the result and nothing is re-traced.
	journal, err = runner.OpenJournal(jpath, scenario.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	rec2, err := telemetry.NewRecorder(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := RunSpecCachedTraced(ctx, sp, runner.NewCache(), journal, nil, rec2); err != nil || !hit {
		t.Fatalf("resumed run: hit=%v err=%v", hit, err)
	}
	if rec2.Traces() != 0 {
		t.Errorf("journal hit wrote %d traces; hits must skip re-tracing", rec2.Traces())
	}
}

// Non-canonical runs (override constructors whose key does not identify the
// simulation) must never be traced: a trace claiming a canonical key must
// actually be that scenario.
func TestOverrideRunsAreNotTraced(t *testing.T) {
	cfg := MixConfig{
		Capacity: 20 * units.Mbps,
		Buffer:   units.BufferBytes(20*units.Mbps, 20*time.Millisecond, 2),
		RTT:      20 * time.Millisecond,
		Duration: 3 * time.Second,
		Seed:     5,
		X:        constantWindowCtor(8 * units.MSS),
		NumX:     1,
		NumCubic: 1,
	}
	rec, err := telemetry.NewRecorder(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runMixCached(context.Background(), cfg, runner.NewCache(), nil, nil, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Traces() != 0 {
		t.Errorf("override run wrote %d traces, want 0", rec.Traces())
	}
}
