package exp

import (
	"errors"
	"strings"
	"testing"

	"bbrnash/internal/check"
	"bbrnash/internal/netsim"
	"bbrnash/internal/runner"
	"bbrnash/internal/scenario"
)

// TestCanonicalKeyUnifiesCacheAuditAndErrors is the one-identity contract:
// the cache entry, the audit record and the unit-failure report of a run
// all carry the byte-identical canonical key of its scenario.Spec.
func TestCanonicalKeyUnifiesCacheAuditAndErrors(t *testing.T) {
	const seed = 9
	keyFor := func(cfg MixConfig) string {
		cfg.Seed = trialSeeds(seed, 1)[0] // the seed SweepMix assigns to trial 0
		return cfg.key()
	}

	cfg := smokeMix()
	key := keyFor(cfg)
	if !strings.HasPrefix(key, scenario.KeyPrefix) {
		t.Fatalf("key %q lacks prefix %q", key, scenario.KeyPrefix)
	}

	// Cache and audit: poison the cache under the derived key with a
	// physically impossible result. The sweep must replay it (proving the
	// cache lookup uses this exact key) and the auditor must flag it under
	// the same key (proving the audit does too).
	s := testScale()
	s.Trials = 1
	s.Cache = runner.NewCache()
	s.Audit = check.New()
	s.Cache.Put(key, SpecResult{
		Groups: [][]netsim.FlowStats{{{Name: "g0.bbr0", Throughput: -1}}, {}},
	})
	if _, err := s.SweepMix(seed, 1, func(int) MixConfig { return cfg }); err != nil {
		t.Fatal(err)
	}
	if s.Cache.Hits() == 0 {
		t.Error("poisoned entry not replayed: cache key differs from the spec key")
	}
	vs := s.Audit.Violations()
	if len(vs) == 0 {
		t.Fatal("negative cached throughput not flagged by the audit")
	}
	for _, v := range vs {
		if v.Key != key {
			t.Errorf("audit key %q != cache key %q", v.Key, key)
		}
	}

	// Failure reports: a failing unit's *runner.UnitError names the same
	// canonical key.
	bad := cfg
	bad.Duration = 0
	s2 := testScale()
	s2.Trials = 1
	_, err := s2.SweepMix(seed, 1, func(int) MixConfig { return bad })
	var ue *runner.UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *runner.UnitError", err)
	}
	if want := keyFor(bad); ue.Key != want {
		t.Errorf("UnitError.Key = %q, want %q", ue.Key, want)
	}

	// The spec path and the mix view derive the identical key for the same
	// scenario: Sweep and SweepMix share cache entries.
	sp, _, canonical := cfg.spec()
	if !canonical {
		t.Fatal("registry mix reported uncacheable")
	}
	sp.Seed = trialSeeds(seed, 1)[0]
	if sp.Key() != key {
		t.Errorf("spec key %q != mix key %q", sp.Key(), key)
	}
}
