package exp

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/units"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "quick", "smoke"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = %v, %v", name, s.Name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestThin(t *testing.T) {
	s := Scale{SweepPoints: 3}
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := s.thin(xs)
	if len(got) != 3 || got[0] != 1 || got[2] != 7 {
		t.Errorf("thin = %v", got)
	}
	if got := (Scale{}).thin(xs); len(got) != len(xs) {
		t.Errorf("unbounded thin changed length: %v", got)
	}
	if got := (Scale{SweepPoints: 10}).thin(xs); len(got) != len(xs) {
		t.Errorf("oversized thin changed length: %v", got)
	}
	// Regression: SweepPoints == 1 used to divide by zero in the spacing
	// formula; it must keep exactly the first point.
	if got := (Scale{SweepPoints: 1}).thin(xs); len(got) != 1 || got[0] != 1 {
		t.Errorf("single-point thin = %v", got)
	}
	if got := (Scale{SweepPoints: 2}).thin(xs); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Errorf("two-point thin = %v", got)
	}
}

func smokeMix() MixConfig {
	return MixConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		Duration: 8 * time.Second,
		NumX:     1,
		NumCubic: 1,
	}
}

func TestRunMix(t *testing.T) {
	res, err := RunMix(smokeMix())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.8 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	if res.AggX <= 0 || res.AggCubic <= 0 {
		t.Errorf("agg = %v / %v", res.AggX, res.AggCubic)
	}
	if len(res.XStats) != 1 || len(res.CubicStats) != 1 {
		t.Error("missing per-flow stats")
	}
	if res.PerFlowX != res.AggX {
		t.Error("single-flow per-flow != aggregate")
	}
}

func TestRunMixValidation(t *testing.T) {
	cfg := smokeMix()
	cfg.NumX, cfg.NumCubic = 0, 0
	if _, err := RunMix(cfg); err == nil {
		t.Error("no flows accepted")
	}
	cfg = smokeMix()
	cfg.Duration = 0
	if _, err := RunMix(cfg); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunMixDeterministic(t *testing.T) {
	cfg := smokeMix()
	cfg.Seed = 42
	a, err := RunMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AggX != b.AggX || a.AggCubic != b.AggCubic {
		t.Errorf("same seed gave different results: %v/%v vs %v/%v", a.AggX, a.AggCubic, b.AggX, b.AggCubic)
	}
}

func TestRunMixTrialsAverages(t *testing.T) {
	cfg := smokeMix()
	res, err := RunMixTrials(cfg, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggX <= 0 {
		t.Error("trial average empty")
	}
	// trials < 1 clamps to 1
	if _, err := RunMixTrials(cfg, 0, 7); err != nil {
		t.Error(err)
	}
}

func TestRunGroups(t *testing.T) {
	res, err := RunGroups(GroupConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 10*time.Millisecond, 10),
		Duration: 8 * time.Second,
		RTTs:     []time.Duration{10 * time.Millisecond, 50 * time.Millisecond},
		Sizes:    []int{2, 2},
		NumX:     []int{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if res.PerFlowX[g] <= 0 || res.PerFlowCubic[g] <= 0 {
			t.Errorf("group %d has empty payoffs: %+v", g, res)
		}
	}
}

func TestRunGroupsValidation(t *testing.T) {
	if _, err := RunGroups(GroupConfig{}); err == nil {
		t.Error("empty group config accepted")
	}
	if _, err := RunGroups(GroupConfig{
		Capacity: 50 * units.Mbps, Buffer: 1e6, Duration: time.Second,
		RTTs:  []time.Duration{time.Millisecond},
		Sizes: []int{2},
		NumX:  []int{3}, // more X than flows
	}); err == nil {
		t.Error("NumX > Size accepted")
	}
}

func TestFindNESmoke(t *testing.T) {
	cfg := NESearchConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		N:        6,
		Duration: 8 * time.Second,
		Seed:     1,
	}
	res, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EquilibriaX) == 0 {
		t.Error("walk search found no equilibrium")
	}
	if res.Simulations == 0 {
		t.Error("no simulations recorded")
	}
	for _, k := range res.EquilibriaX {
		if k < 0 || k > cfg.N {
			t.Errorf("equilibrium out of range: %d", k)
		}
	}
}

func TestFindNEExhaustiveCoversWalk(t *testing.T) {
	cfg := NESearchConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:      40 * time.Millisecond,
		N:        5,
		Duration: 8 * time.Second,
		Seed:     2,
	}
	walk, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exhaustive = true
	full, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.EquilibriaX) == 0 {
		t.Fatal("exhaustive search found no equilibrium")
	}
	// Every walk-found equilibrium must also be in the exhaustive set
	// (identical seeds make payoffs identical).
	inFull := map[int]bool{}
	for _, k := range full.EquilibriaX {
		inFull[k] = true
	}
	for _, k := range walk.EquilibriaX {
		if !inFull[k] {
			t.Errorf("walk NE %d missing from exhaustive set %v", k, full.EquilibriaX)
		}
	}
	if full.Simulations != cfg.N+1 {
		t.Errorf("exhaustive used %d sims, want %d", full.Simulations, cfg.N+1)
	}
}

func TestFindGroupNESmoke(t *testing.T) {
	res, err := FindGroupNE(GroupNEConfig{
		Capacity: 50 * units.Mbps,
		Buffer:   units.BufferBytes(50*units.Mbps, 10*time.Millisecond, 10),
		RTTs:     []time.Duration{10 * time.Millisecond, 50 * time.Millisecond},
		Sizes:    []int{3, 3},
		Duration: 8 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulations == 0 {
		t.Error("no simulations recorded")
	}
	for _, k := range res.Equilibria {
		if len(k) != 2 {
			t.Errorf("bad profile %v", k)
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	want := []string{"1", "3a", "3b", "3c", "3d", "4a", "4b", "5a", "5b", "5c", "5d",
		"6", "7", "8", "9a", "9b", "9c", "9d", "9e", "9f", "10", "11a", "11b", "12"}
	if len(figs) != len(want) {
		t.Fatalf("registry has %d figures, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("figure %d = %q, want %q", i, figs[i].ID, id)
		}
		if figs[i].Generate == nil || figs[i].Title == "" {
			t.Errorf("figure %q incomplete", id)
		}
	}
	if _, err := FigureByID("3c"); err != nil {
		t.Error(err)
	}
	if _, err := FigureByID("99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

// Fig6 is model-only and must run instantly at any scale.
func TestFig6(t *testing.T) {
	res, err := Fig6(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Charts) != 1 || len(res.Charts[0].Series) != 2 {
		t.Fatalf("unexpected chart shape")
	}
	if len(res.Notes) == 0 {
		t.Error("missing notes")
	}
}

// One simulation-backed figure end-to-end at smoke scale.
func TestFig1Smoke(t *testing.T) {
	res, err := Fig1(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Charts) != 1 {
		t.Fatal("missing chart")
	}
	series := res.Charts[0].Series
	if len(series) != 2 {
		t.Fatalf("want ware+actual series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != Smoke.SweepPoints {
			t.Errorf("series %q has %d points, want %d", s.Name, len(s.X), Smoke.SweepPoints)
		}
		for _, y := range s.Y {
			if y < 0 || y > 55 {
				t.Errorf("series %q value %v outside [0, 55] Mbps", s.Name, y)
			}
		}
	}
}

func TestRegionAt(t *testing.T) {
	xs := []float64{0, 10}
	ys := []float64{0, 100}
	tests := []struct{ x, want float64 }{{-5, 0}, {0, 0}, {5, 50}, {10, 100}, {15, 100}}
	for _, tt := range tests {
		if got := regionAt(xs, ys, tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("regionAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if regionAt(nil, nil, 1) != 0 {
		t.Error("empty regionAt should be 0")
	}
}
