package exp

import (
	"bytes"
	"testing"
	"time"

	"bbrnash/internal/runner"
	"bbrnash/internal/units"
)

// testScale is a cut-down scale for determinism tests: short flows keep
// the cost low, two trials and two sweep points still exercise the
// point×trial fan-out.
func testScale() Scale {
	return Scale{Name: "test", FlowDuration: 8 * time.Second, Trials: 2, SweepPoints: 2}
}

// fig1CSV renders Fig1's charts at the given scale to CSV bytes.
func fig1CSV(t *testing.T, s Scale) []byte {
	t.Helper()
	res, err := Fig1(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, c := range res.Charts {
		if err := c.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFigureDeterministicAcrossWorkers is the parallelism contract: a
// figure generated with 1 worker and with 8 workers has byte-identical
// CSV output (same seeds, same ordering), and replaying from a warm
// cache changes nothing either.
func TestFigureDeterministicAcrossWorkers(t *testing.T) {
	serial := testScale()
	serial.Pool = runner.NewPool(1)
	serial.Cache = runner.NewCache()

	parallel := testScale()
	parallel.Pool = runner.NewPool(8)
	parallel.Cache = runner.NewCache()

	a := fig1CSV(t, serial)
	b := fig1CSV(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("worker count changed figure output:\n1 worker:\n%s\n8 workers:\n%s", a, b)
	}

	hits0 := parallel.Cache.Hits()
	c := fig1CSV(t, parallel)
	if !bytes.Equal(a, c) {
		t.Fatalf("cache replay changed figure output:\nfresh:\n%s\ncached:\n%s", a, c)
	}
	if parallel.Cache.Hits() == hits0 {
		t.Error("second generation did not hit the warm cache")
	}
}

// TestSweepMixUncachedMatchesCached: the cache is an optimization, never
// an approximation — results with and without it are identical.
func TestSweepMixUncachedMatchesCached(t *testing.T) {
	cached := testScale()
	cached.Pool = runner.NewPool(4)
	cached.Cache = runner.NewCache()
	uncached := testScale()

	cfgAt := func(int) MixConfig {
		c := smokeMix()
		c.NumX, c.NumCubic = 2, 1
		return c
	}
	a, err := cached.SweepMix(9, 1, cfgAt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uncached.SweepMix(9, 1, cfgAt)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].AggX != b[0].AggX || a[0].AggCubic != b[0].AggCubic ||
		a[0].MeanQueueDelay != b[0].MeanQueueDelay {
		t.Errorf("cache/pool changed results: %+v vs %+v", a[0], b[0])
	}
}

// TestFindNEExhaustiveCacheHits: an exhaustive NE search revisits the
// same distributions when the game probes payoffs, so with a shared cache
// it must report nonzero hits, and an identical second search must be
// served entirely from the cache.
func TestFindNEExhaustiveCacheHits(t *testing.T) {
	cfg := NESearchConfig{
		Capacity:   50 * units.Mbps,
		Buffer:     units.BufferBytes(50*units.Mbps, 40*time.Millisecond, 3),
		RTT:        40 * time.Millisecond,
		N:          3,
		Duration:   8 * time.Second,
		Seed:       11,
		Exhaustive: true,
		Pool:       runner.NewPool(4),
		Cache:      runner.NewCache(),
	}
	first, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Simulations != cfg.N+1 {
		t.Errorf("exhaustive search ran %d sims, want %d", first.Simulations, cfg.N+1)
	}
	if first.CacheHits == 0 {
		t.Error("exhaustive search reported no cache hits despite repeated distributions")
	}

	second, err := FindNE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulations != 0 {
		t.Errorf("repeat search re-simulated %d scenarios", second.Simulations)
	}
	if len(first.EquilibriaX) != len(second.EquilibriaX) {
		t.Fatalf("cache changed equilibria: %v vs %v", first.EquilibriaX, second.EquilibriaX)
	}
	for i := range first.EquilibriaX {
		if first.EquilibriaX[i] != second.EquilibriaX[i] {
			t.Fatalf("cache changed equilibria: %v vs %v", first.EquilibriaX, second.EquilibriaX)
		}
	}
}
