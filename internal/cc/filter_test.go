package cc

import (
	"testing"
	"testing/quick"

	"bbrnash/internal/eventsim"
)

func TestMaxFilterBasic(t *testing.T) {
	f := NewMaxFilter(10)
	if _, ok := f.Get(0); ok {
		t.Error("empty filter reported a value")
	}
	f.Update(0, 5)
	f.Update(1, 3)
	f.Update(2, 7)
	if v, ok := f.Get(2); !ok || v != 7 {
		t.Errorf("max = %v,%v want 7,true", v, ok)
	}
}

func TestMaxFilterExpiry(t *testing.T) {
	f := NewMaxFilter(10)
	f.Update(0, 100)
	f.Update(5, 50)
	if v, _ := f.Get(9); v != 100 {
		t.Errorf("max at 9 = %v, want 100", v)
	}
	// At t=11 the window is [1, 11]; the 100 at t=0 has aged out.
	if v, _ := f.Get(11); v != 50 {
		t.Errorf("max at 11 = %v, want 50", v)
	}
	// At t=16 everything has aged out.
	if _, ok := f.Get(16); ok {
		t.Error("fully expired filter reported a value")
	}
}

func TestMinFilterBasic(t *testing.T) {
	f := NewMinFilter(10)
	f.Update(0, 5)
	f.Update(1, 8)
	f.Update(2, 3)
	if v, ok := f.Get(2); !ok || v != 3 {
		t.Errorf("min = %v,%v want 3,true", v, ok)
	}
	// New minimum displaces the old immediately.
	f.Update(3, 1)
	if v, _ := f.Get(3); v != 1 {
		t.Errorf("min = %v, want 1", v)
	}
}

func TestMinFilterExpiry(t *testing.T) {
	f := NewMinFilter(10)
	f.Update(0, 1)
	f.Update(5, 9)
	if v, _ := f.Get(12); v != 9 {
		t.Errorf("min at 12 = %v, want 9", v)
	}
}

func TestFiltersMatchBruteForceProperty(t *testing.T) {
	type sample struct {
		Dt uint8
		V  uint16
	}
	f := func(samples []sample) bool {
		const window = 50
		maxF := NewMaxFilter(window)
		minF := NewMinFilter(window)
		var hist []filterEntry
		now := eventsim.Time(0)
		for _, s := range samples {
			now += eventsim.Time(s.Dt % 20)
			v := float64(s.V % 1000)
			maxF.Update(now, v)
			minF.Update(now, v)
			hist = append(hist, filterEntry{at: now, v: v})

			// Brute-force expected values over the window [now-window, now].
			bmax, bmin := -1.0, 1e18
			for _, h := range hist {
				if h.at >= now-window {
					if h.v > bmax {
						bmax = h.v
					}
					if h.v < bmin {
						bmin = h.v
					}
				}
			}
			gmax, ok1 := maxF.Get(now)
			gmin, ok2 := minF.Get(now)
			if !ok1 || !ok2 || gmax != bmax || gmin != bmin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterReset(t *testing.T) {
	f := NewMaxFilter(100)
	f.Update(0, 42)
	f.Reset()
	if _, ok := f.Get(0); ok {
		t.Error("reset filter reported a value")
	}
	g := NewMinFilter(100)
	g.Update(0, 42)
	g.Reset()
	if _, ok := g.Get(0); ok {
		t.Error("reset filter reported a value")
	}
}

func TestFilterSetWindow(t *testing.T) {
	f := NewMaxFilter(100)
	f.Update(0, 10)
	f.Update(50, 5)
	f.SetWindow(10)
	if v, _ := f.Get(55); v != 5 {
		t.Errorf("after narrowing window, max = %v, want 5", v)
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.MSS != 1460 {
		t.Errorf("default MSS = %v", p.MSS)
	}
	if p.InitialCwnd != 14600 {
		t.Errorf("default InitialCwnd = %v", p.InitialCwnd)
	}
	q := Params{MSS: 100, InitialCwnd: 500}.WithDefaults()
	if q.MSS != 100 || q.InitialCwnd != 500 {
		t.Error("explicit params overwritten")
	}
}
