package cc

import (
	"bbrnash/internal/eventsim"
)

// MaxFilter tracks the running maximum of a signal over a sliding window.
// It is the exact deque-based formulation: Get returns the true maximum of
// all samples whose timestamps lie within the window. BBR uses one for its
// bottleneck-bandwidth estimate (window measured in round trips, supplied by
// the caller as synthetic timestamps) and a MinFilter for its RTprop
// estimate (window in wall-clock time).
type MaxFilter struct {
	window  eventsim.Time // in the same units as the sample timestamps
	entries []filterEntry
}

// MinFilter tracks the running minimum of a signal over a sliding window.
type MinFilter struct {
	window  eventsim.Time
	entries []filterEntry
}

type filterEntry struct {
	at eventsim.Time
	v  float64
}

// NewMaxFilter returns a max filter with the given window width.
func NewMaxFilter(window eventsim.Time) *MaxFilter { return &MaxFilter{window: window} }

// NewMinFilter returns a min filter with the given window width.
func NewMinFilter(window eventsim.Time) *MinFilter { return &MinFilter{window: window} }

// Update inserts a sample at time now. Timestamps must be nondecreasing.
func (f *MaxFilter) Update(now eventsim.Time, v float64) {
	// Drop entries dominated by the new sample: they can never be the
	// maximum again.
	for n := len(f.entries); n > 0 && f.entries[n-1].v <= v; n = len(f.entries) {
		f.entries = f.entries[:n-1]
	}
	f.entries = append(f.entries, filterEntry{at: now, v: v})
	f.expire(now)
}

// Get returns the maximum over the window ending at now, and whether any
// sample is present.
func (f *MaxFilter) Get(now eventsim.Time) (float64, bool) {
	f.expire(now)
	if len(f.entries) == 0 {
		return 0, false
	}
	return f.entries[0].v, true
}

// Reset discards all samples.
func (f *MaxFilter) Reset() { f.entries = f.entries[:0] }

// SetWindow changes the window width.
func (f *MaxFilter) SetWindow(w eventsim.Time) { f.window = w }

func (f *MaxFilter) expire(now eventsim.Time) {
	cutoff := now - f.window
	i := 0
	for i < len(f.entries) && f.entries[i].at < cutoff {
		i++
	}
	if i > 0 {
		f.entries = f.entries[:copy(f.entries, f.entries[i:])]
	}
}

// Update inserts a sample at time now. Timestamps must be nondecreasing.
func (f *MinFilter) Update(now eventsim.Time, v float64) {
	for n := len(f.entries); n > 0 && f.entries[n-1].v >= v; n = len(f.entries) {
		f.entries = f.entries[:n-1]
	}
	f.entries = append(f.entries, filterEntry{at: now, v: v})
	f.expire(now)
}

// Get returns the minimum over the window ending at now, and whether any
// sample is present.
func (f *MinFilter) Get(now eventsim.Time) (float64, bool) {
	f.expire(now)
	if len(f.entries) == 0 {
		return 0, false
	}
	return f.entries[0].v, true
}

// Best returns the minimum over the window ending at now along with the
// time that minimum was sampled. BBRv2 uses the sample age to decide when a
// fresh ProbeRTT is due.
func (f *MinFilter) Best(now eventsim.Time) (v float64, at eventsim.Time, ok bool) {
	f.expire(now)
	if len(f.entries) == 0 {
		return 0, 0, false
	}
	return f.entries[0].v, f.entries[0].at, true
}

// Reset discards all samples.
func (f *MinFilter) Reset() { f.entries = f.entries[:0] }

// SetWindow changes the window width.
func (f *MinFilter) SetWindow(w eventsim.Time) { f.window = w }

func (f *MinFilter) expire(now eventsim.Time) {
	cutoff := now - f.window
	i := 0
	for i < len(f.entries) && f.entries[i].at < cutoff {
		i++
	}
	if i > 0 {
		f.entries = f.entries[:copy(f.entries, f.entries[i:])]
	}
}
