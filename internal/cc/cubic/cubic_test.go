package cubic

import (
	"math"
	"testing"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/cc/cctest"
	"bbrnash/internal/cc/reno"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

func newCubic() *Cubic { return New(cc.Params{}).(*Cubic) }

func ackAt(seq uint64, at time.Duration, rtt time.Duration) cc.AckEvent {
	return cc.AckEvent{Now: eventsim.At(at), Seq: seq, Bytes: units.MSS, RTT: rtt}
}

func TestBackoffFactorIs0_7(t *testing.T) {
	c := newCubic()
	c.cwnd = 100 * units.MSS
	c.ssthresh = 10 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 50})
	c.OnLoss(cc.LossEvent{Seq: 1, Now: eventsim.At(time.Second)})
	want := units.Bytes(float64(100*units.MSS) * Beta)
	if got := c.CongestionWindow(); math.Abs(float64(got-want)) > 1 {
		t.Errorf("cwnd after loss = %v, want %v", got, want)
	}
}

func TestSameEpisodeLossIgnored(t *testing.T) {
	c := newCubic()
	c.cwnd = 100 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 99})
	c.OnLoss(cc.LossEvent{Seq: 1, Now: eventsim.At(time.Second)})
	after := c.CongestionWindow()
	c.OnLoss(cc.LossEvent{Seq: 50, Now: eventsim.At(time.Second)})
	if got := c.CongestionWindow(); got != after {
		t.Errorf("same-episode loss changed cwnd %v -> %v", after, got)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	c := newCubic()
	start := c.CongestionWindow()
	n := start.WholePackets()
	for i := 0; i < n; i++ {
		c.OnAck(ackAt(uint64(i), time.Millisecond, 10*time.Millisecond))
	}
	if got := c.CongestionWindow(); got != 2*start {
		t.Errorf("slow start after one window: %v, want %v", got, 2*start)
	}
}

// After a backoff, the window must recover to Wmax at t = K following the
// cubic curve W(t) = C(t-K)^3 + Wmax.
func TestCubicRecoveryShape(t *testing.T) {
	// Disable the TCP-friendly region: with Wmax=100 segments and a 40 ms
	// RTT, Reno-emulation growth legitimately outpaces the cubic curve and
	// would mask the shape under test.
	c := NewWithOptions(cc.Params{}, WithoutTCPFriendliness())
	c.cwnd = 100 * units.MSS
	c.ssthresh = 10 * units.MSS
	c.srtt = 40 * time.Millisecond
	c.OnSent(cc.SendEvent{Seq: 0})
	c.OnLoss(cc.LossEvent{Seq: 0, Now: eventsim.At(0)})

	wMax := c.WMax() // 100 segments (no fast convergence on first loss)
	if math.Abs(wMax-100) > 1e-9 {
		t.Fatalf("WMax = %v, want 100", wMax)
	}
	// K = cbrt(Wmax(1-beta)/C) = cbrt(100*0.3/0.4) = cbrt(75) ≈ 4.217 s.
	wantK := math.Cbrt(100 * (1 - Beta) / ScalingC)
	if math.Abs(c.k-wantK) > 1e-9 {
		t.Fatalf("K = %v, want %v", c.k, wantK)
	}

	// Feed ACKs densely; the window must track the cubic target closely.
	seq := uint64(1)
	dt := 5 * time.Millisecond
	for at := dt; at <= time.Duration(wantK*float64(time.Second)); at += dt {
		// cwnd worth of ACKs per RTT is what a real flow gets; sending a
		// fixed 8 ACKs per 5ms is dense enough for convergence checking.
		for i := 0; i < 8; i++ {
			c.OnAck(ackAt(seq, at, 40*time.Millisecond))
			seq++
		}
	}
	// At t = K the cubic target equals Wmax; allow the 1.5x-per-RTT clamp
	// and discreteness to leave it slightly below.
	segs := float64(c.CongestionWindow() / units.MSS)
	if segs < 0.9*wMax || segs > 1.15*wMax {
		t.Errorf("cwnd at t=K is %v segments, want about %v", segs, wMax)
	}
}

func TestFastConvergenceShrinksWmax(t *testing.T) {
	c := newCubic()
	c.ssthresh = 1 * units.MSS
	c.srtt = 40 * time.Millisecond
	// First loss at 100 segments.
	c.cwnd = 100 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 10})
	c.OnLoss(cc.LossEvent{Seq: 1, Now: eventsim.At(0)})
	// Second loss below the previous plateau (e.g. at 80 segments).
	c.cwnd = 80 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 20})
	c.OnLoss(cc.LossEvent{Seq: 12, Now: eventsim.At(time.Second)})
	want := 80 * fastConvergenceFactor
	if math.Abs(c.WMax()-want) > 1e-9 {
		t.Errorf("WMax after fast convergence = %v, want %v", c.WMax(), want)
	}
}

func TestWithoutFastConvergence(t *testing.T) {
	c := NewWithOptions(cc.Params{}, WithoutFastConvergence())
	c.ssthresh = 1 * units.MSS
	c.cwnd = 100 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 10})
	c.OnLoss(cc.LossEvent{Seq: 1, Now: eventsim.At(0)})
	c.cwnd = 80 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 20})
	c.OnLoss(cc.LossEvent{Seq: 12, Now: eventsim.At(time.Second)})
	if math.Abs(c.WMax()-80) > 1e-9 {
		t.Errorf("WMax = %v, want 80 (fast convergence disabled)", c.WMax())
	}
}

func TestMinimumWindow(t *testing.T) {
	c := newCubic()
	c.cwnd = 2 * units.MSS
	c.OnSent(cc.SendEvent{Seq: 1})
	c.OnLoss(cc.LossEvent{Seq: 0, Now: eventsim.At(0)})
	if c.CongestionWindow() < 2*units.MSS {
		t.Errorf("cwnd fell below 2 MSS: %v", c.CongestionWindow())
	}
}

func TestUnpacedAndName(t *testing.T) {
	c := newCubic()
	if c.PacingRate() != 0 {
		t.Error("CUBIC must not pace")
	}
	if c.Name() != "cubic" {
		t.Error("wrong name")
	}
}

func TestSingleFlowUtilizesLink(t *testing.T) {
	res := cctest.Run(t, cctest.Scenario{
		Capacity:  50 * units.Mbps,
		BufferBDP: 1,
		Flows:     []cctest.FlowSpec{{RTT: 40 * time.Millisecond, Alg: New}},
		Warmup:    5 * time.Second,
		Duration:  30 * time.Second,
	})
	if res.Link.Utilization < 0.85 {
		t.Errorf("utilization = %v, want >= 0.85", res.Link.Utilization)
	}
}

func TestSawtoothTouchesBufferLimit(t *testing.T) {
	// A lone CUBIC flow should periodically fill the buffer (loss) and its
	// occupancy should dip after backoff.
	res := cctest.Run(t, cctest.Scenario{
		Capacity:  20 * units.Mbps,
		BufferBDP: 2,
		Flows:     []cctest.FlowSpec{{RTT: 40 * time.Millisecond, Alg: New}},
		Warmup:    10 * time.Second,
		Duration:  60 * time.Second,
	})
	st := res.Stats[0]
	if st.Lost == 0 {
		t.Error("CUBIC never filled the buffer")
	}
	buf := float64(res.Net.Buffer())
	if float64(st.MaxQueueOccupancy) < 0.9*buf {
		t.Errorf("max occupancy %v never approached buffer %v", st.MaxQueueOccupancy, res.Net.Buffer())
	}
	if float64(st.MinQueueOccupancy) > 0.8*buf {
		t.Errorf("min occupancy %v shows no sawtooth", st.MinQueueOccupancy)
	}
}

func TestTwoCubicFlowsFair(t *testing.T) {
	res := cctest.Run(t, cctest.Scenario{
		Capacity:  50 * units.Mbps,
		BufferBDP: 2,
		Flows: []cctest.FlowSpec{
			{RTT: 40 * time.Millisecond, Alg: New},
			{RTT: 40 * time.Millisecond, Alg: New},
		},
		Warmup:   15 * time.Second,
		Duration: 90 * time.Second,
	})
	if idx := res.JainIndex(); idx < 0.85 {
		t.Errorf("Jain index = %v, want >= 0.85", idx)
	}
}

// CUBIC outgrows Reno on a high-BDP path — the reason it displaced Reno
// (paper §5 "Incentives to switch").
func TestCubicBeatsRenoAtHighBDP(t *testing.T) {
	res := cctest.Run(t, cctest.Scenario{
		Capacity:  100 * units.Mbps,
		BufferBDP: 1,
		Flows: []cctest.FlowSpec{
			{Name: "cubic", RTT: 80 * time.Millisecond, Alg: New},
			{Name: "reno", RTT: 80 * time.Millisecond, Start: 50 * time.Millisecond, Alg: reno.New},
		},
		Warmup:   20 * time.Second,
		Duration: 100 * time.Second,
	})
	cubicTput := float64(res.Stats[0].Throughput)
	renoTput := float64(res.Stats[1].Throughput)
	if cubicTput <= renoTput {
		t.Errorf("CUBIC (%v) did not beat Reno (%v) at high BDP", cubicTput, renoTput)
	}
}
