// Package cubic implements TCP CUBIC congestion control following RFC 8312
// and the Linux implementation's constants: C = 0.4, β = 0.7 (the window
// shrinks to 0.7·Wmax on loss — the property the paper's model is built on),
// fast convergence, and the TCP-friendly (Reno-emulation) region.
package cubic

import (
	"math"
	"time"

	"bbrnash/internal/cc"
	"bbrnash/internal/eventsim"
	"bbrnash/internal/units"
)

// Constants from RFC 8312 §5 / Linux tcp_cubic.c.
const (
	// ScalingC is CUBIC's scaling constant C in (segments/second³)^(1/3)
	// terms: W(t) = C·(t−K)³ + Wmax with W in segments and t in seconds.
	ScalingC = 0.4
	// Beta is the multiplicative decrease factor: cwnd ← Beta·cwnd on loss.
	Beta = 0.7
	// fastConvergenceFactor shrinks the remembered Wmax when a flow backs
	// off before regaining its previous peak, releasing bandwidth faster:
	// (1+Beta)/2.
	fastConvergenceFactor = (1 + Beta) / 2
)

// Option customizes a CUBIC instance.
type Option func(*Cubic)

// WithoutFastConvergence disables the fast-convergence heuristic (used by
// ablation benchmarks; the kernel default is on).
func WithoutFastConvergence() Option {
	return func(c *Cubic) { c.fastConvergence = false }
}

// WithoutTCPFriendliness disables the Reno-emulation region.
func WithoutTCPFriendliness() Option {
	return func(c *Cubic) { c.tcpFriendly = false }
}

// Cubic is a CUBIC congestion-control instance.
type Cubic struct {
	mss      units.Bytes
	cwnd     units.Bytes
	ssthresh units.Bytes

	fastConvergence bool
	tcpFriendly     bool

	// Cubic epoch state (reset on every loss backoff).
	epochStart eventsim.Time // zero value means "no epoch yet"
	hasEpoch   bool
	wMax       float64 // segments
	k          float64 // seconds
	originW    float64 // cwnd in segments at epoch start

	// Reno-emulation state.
	wEst      float64 // segments
	renoAcked units.Bytes

	// Loss-episode bookkeeping.
	recoverSeq uint64
	inRecovery bool
	maxSeqSent uint64

	// Smoothed RTT for the friendly region's per-RTT increments.
	srtt time.Duration
}

// New constructs a CUBIC instance with kernel defaults. It satisfies
// cc.Constructor.
func New(p cc.Params) cc.Algorithm { return NewWithOptions(p) }

func init() { cc.Register("cubic", New) }

// NewWithOptions constructs a CUBIC instance with options applied.
func NewWithOptions(p cc.Params, opts ...Option) *Cubic {
	p = p.WithDefaults()
	c := &Cubic{
		mss:             p.MSS,
		cwnd:            p.InitialCwnd,
		ssthresh:        1 << 40,
		fastConvergence: true,
		tcpFriendly:     true,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name implements cc.Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// OnSent implements cc.Algorithm.
func (c *Cubic) OnSent(e cc.SendEvent) {
	if e.Seq > c.maxSeqSent {
		c.maxSeqSent = e.Seq
	}
}

// OnAck implements cc.Algorithm.
func (c *Cubic) OnAck(e cc.AckEvent) {
	if c.srtt == 0 {
		c.srtt = e.RTT
	} else {
		c.srtt = (7*c.srtt + e.RTT) / 8
	}
	if c.inRecovery && e.Seq > c.recoverSeq {
		c.inRecovery = false
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += e.Bytes
		return
	}
	c.congestionAvoidance(e)
}

func (c *Cubic) congestionAvoidance(e cc.AckEvent) {
	segs := float64(c.cwnd / c.mss)
	if !c.hasEpoch {
		// First CA epoch (e.g. after slow start without a remembered Wmax):
		// treat the current window as the plateau.
		c.beginEpoch(e.Now, segs, segs)
	}
	t := e.Now.Sub(c.epochStart).Seconds()
	target := ScalingC*math.Pow(t-c.k, 3) + c.wMax

	// RFC 8312 §4.4: limit target growth to 1.5x cwnd per RTT.
	if target > 1.5*segs {
		target = 1.5 * segs
	}

	var increment float64 // segments per ACK
	if target > segs {
		increment = (target - segs) / segs
	} else {
		// In the TCP-friendly/plateau region cwnd still creeps up very
		// slowly (Linux uses 1% per ACK bound); keep it effectively flat.
		increment = 0.01 / segs
	}

	if c.tcpFriendly {
		// RFC 8312 §4.2: W_est(t) = Wmax·β + 3(1−β)/(1+β) · t/RTT.
		rtt := c.srtt.Seconds()
		if rtt > 0 {
			c.wEst = c.wMax*Beta + 3*(1-Beta)/(1+Beta)*(t/rtt)
			if c.wEst > segs && c.wEst > target {
				// Grow at Reno-emulation speed: (wEst−cwnd)/cwnd per ACK.
				increment = (c.wEst - segs) / segs
			}
		}
	}

	c.cwnd += units.Bytes(increment * float64(e.Bytes/c.mss) * float64(c.mss))
}

func (c *Cubic) beginEpoch(now eventsim.Time, wMax, origin float64) {
	c.hasEpoch = true
	c.epochStart = now
	c.wMax = wMax
	c.originW = origin
	diff := (wMax - origin) / ScalingC
	if diff < 0 {
		diff = 0
	}
	c.k = math.Cbrt(diff)
	c.wEst = origin
}

// OnLoss implements cc.Algorithm.
func (c *Cubic) OnLoss(e cc.LossEvent) {
	if c.inRecovery && e.Seq <= c.recoverSeq {
		return // same loss episode
	}
	c.inRecovery = true
	c.recoverSeq = c.maxSeqSent

	segs := float64(c.cwnd / c.mss)
	wMax := segs
	if c.fastConvergence && wMax < c.wMax {
		// Backed off below the previous plateau: release bandwidth faster.
		wMax *= fastConvergenceFactor
	}
	c.cwnd = units.Bytes(float64(c.cwnd) * Beta)
	if c.cwnd < 2*c.mss {
		c.cwnd = 2 * c.mss
	}
	c.ssthresh = c.cwnd
	c.beginEpoch(e.Now, wMax, float64(c.cwnd/c.mss))
}

// CongestionWindow implements cc.Algorithm.
func (c *Cubic) CongestionWindow() units.Bytes { return c.cwnd }

// PacingRate implements cc.Algorithm. CUBIC is ack-clocked.
func (c *Cubic) PacingRate() units.Rate { return 0 }

// WMax returns the remembered plateau window in segments (for tests and the
// model-validation experiments).
func (c *Cubic) WMax() float64 { return c.wMax }

// InSlowStart reports whether the window is still below ssthresh.
func (c *Cubic) InSlowStart() bool { return c.cwnd < c.ssthresh }
